// Imagesearch: distributed image retrieval over color histograms — the
// paper's §6 effectiveness setting. Fifty devices share a photo collection
// (the ALOI-substitute corpus: objects photographed under varying angle and
// illumination); the example measures range-query recall against a
// centralized exact index, demonstrates the no-false-dismissal guarantee,
// and shows how the k-nn C knob trades precision for recall.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hyperm"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/flatindex"
)

func main() {
	const (
		peers   = 50
		objects = 300
		views   = 12
		bins    = 64
	)
	rng := rand.New(rand.NewSource(13))
	fmt.Printf("photo sharing: %d devices, %d objects x %d views\n", peers, objects, views)
	data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: objects, Views: views, Bins: bins}, rng)

	net, err := hyperm.New(hyperm.Options{
		Peers: peers, Dim: bins, Levels: 4, ClustersPerPeer: 10, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	// People photograph whole objects: all views of an object live on one
	// device.
	for i, x := range data {
		if err := net.AddItems(labels[i]%peers, []int{i}, [][]float64{x}); err != nil {
			log.Fatal(err)
		}
	}
	rep, err := net.Publish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d histograms as %d summaries (%.3f hops/item)\n\n",
		rep.Items, rep.Clusters, rep.HopsPerItem())

	truth := flatindex.New(data)

	// Range queries at increasing peer budgets, averaged over a query
	// sample: precision is always 1.0; recall climbs to 1.0 once every
	// candidate peer is contacted (the Figure 10a curve).
	fmt.Println("range queries 'find similar photos' (radius 0.12, avg of 10 queries):")
	qrng := rand.New(rand.NewSource(77))
	var queries []int
	for len(queries) < 10 {
		id := qrng.Intn(len(data))
		if len(truth.Range(data[id], 0.12)) >= 3 {
			queries = append(queries, id)
		}
	}
	for _, budget := range []int{2, 5, 15, 0} {
		var sumP, sumR float64
		contacted := 0
		for _, id := range queries {
			rel := truth.Range(data[id], 0.12)
			ans, err := net.RangeBudget(0, data[id], 0.12, budget)
			if err != nil {
				log.Fatal(err)
			}
			p, r := eval.PrecisionRecall(ans.Items, rel)
			if len(ans.Items) > 0 {
				sumP += p
			} else {
				sumP++ // nothing wrong returned
			}
			sumR += r
			if ans.PeersContacted > contacted {
				contacted = ans.PeersContacted
			}
		}
		label := fmt.Sprintf("budget %d", budget)
		if budget == 0 {
			label = fmt.Sprintf("all (%d)", contacted)
		}
		fmt.Printf("  %-10s -> precision %.2f recall %.2f\n", label, sumP/10, sumR/10)
	}

	// k-nn with the C knob, averaged over the same sample: C=1 asks peers
	// for exactly the estimated share, C=2 over-fetches for recall at the
	// cost of precision (§6.1).
	fmt.Println("\nk-nn 'top 10 most similar' with the C knob (avg of 10 queries):")
	for _, c := range []float64{1, 1.5, 2} {
		var sumP, sumR float64
		for _, id := range queries {
			relKNN := truth.KNN(data[id], 10)
			ans, err := net.KNNWithC(0, data[id], 10, c)
			if err != nil {
				log.Fatal(err)
			}
			p, r := eval.PrecisionRecall(ans.Items, relKNN)
			sumP += p
			sumR += r
		}
		fmt.Printf("  C=%.1f -> precision %.2f recall %.2f\n", c, sumP/10, sumR/10)
	}
	q := data[100]

	// Same-object retrieval: do the other views of the query photo surface?
	fmt.Println("\nviews of the query photo's object found in its top-12:")
	ans, err := net.KNN(0, q, views)
	if err != nil {
		log.Fatal(err)
	}
	same := 0
	limit := views
	if len(ans.Items) < limit {
		limit = len(ans.Items)
	}
	for _, id := range ans.Items[:limit] {
		if labels[id] == labels[100] {
			same++
		}
	}
	fmt.Printf("  %d of %d\n", same, views)
}
