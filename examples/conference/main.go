// Conference: the paper's motivating scenario (§1) — researchers at a
// conference session share their document collections over an ad-hoc
// network for an hour. The deployment window is short, so what matters is
// how fast the index comes up; the example contrasts Hyper-M's summary
// publication with conventional per-item CAN insertion on the same corpus,
// including the modeled radio energy and parallel-construction makespan on
// a MANET physical layer.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hyperm"
	"hyperm/internal/dataset"
	"hyperm/internal/flatindex"
	"hyperm/internal/manet"
)

func main() {
	const (
		attendees     = 40
		docsPerPerson = 250
		dim           = 128 // term-distribution feature vectors
	)
	rng := rand.New(rand.NewSource(2007))

	// Document features: the Markov generator's smooth high-dimensional
	// vectors stand in for per-document term histograms; the assignment
	// step groups people by research interest (8-10 people per topic).
	fmt.Printf("conference session: %d attendees, %d docs each\n", attendees, docsPerPerson)
	data := dataset.Markov(dataset.MarkovConfig{N: attendees * docsPerPerson, Dim: dim}, rng)
	asg := dataset.AssignToPeers(data, dataset.AssignConfig{Peers: attendees}, rng)

	// Physical layer: a 40 m conference room, Bluetooth-class radios.
	phys, err := manet.New(manet.Config{Nodes: attendees, ArenaSide: 40, Range: 12}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("room: %d devices, avg physical path %.1f radio hops\n", attendees, phys.AvgPathHops())

	net, err := hyperm.New(hyperm.Options{
		Peers: attendees, Dim: dim, Levels: 4, ClustersPerPeer: 10, Seed: 2007,
	})
	if err != nil {
		log.Fatal(err)
	}
	for p, ids := range asg.PeerItems {
		vecs := make([][]float64, len(ids))
		for i, id := range ids {
			vecs[i] = data[id]
		}
		if err := net.AddItems(p, ids, vecs); err != nil {
			log.Fatal(err)
		}
	}

	rep, err := net.Publish()
	if err != nil {
		log.Fatal(err)
	}

	// Price the construction: each overlay hop is a multi-radio-hop
	// message; assume 256-byte summaries and 20 ms per radio hop. Peers
	// publish in parallel, so the session is searchable after roughly the
	// slowest peer's share.
	const msgBytes, hopLatency = 256, 0.020
	avgPhys := phys.AvgPathHops()
	energy := manet.DefaultEnergy.MessageEnergy(msgBytes, 1) * avgPhys * float64(rep.OverlayHops)
	makespan := float64(rep.OverlayHops) / float64(attendees) * avgPhys * hopLatency

	fmt.Printf("\nHyper-M publication:\n")
	fmt.Printf("  %d docs -> %d cluster summaries (%.0fx compression)\n",
		rep.Items, rep.Clusters, float64(rep.Items)/float64(rep.Clusters))
	fmt.Printf("  %d overlay hops (%.3f per doc), ~%.2f J radio energy, ~%.1f s parallel makespan\n",
		rep.OverlayHops, rep.HopsPerItem(), energy, makespan)

	// The conventional alternative for comparison: one overlay insert per
	// document at the typical per-insert cost observed for this network.
	perItemHops := 2.5 // measured order for a 40-node CAN (see fig8b)
	convHops := perItemHops * float64(rep.Items)
	fmt.Printf("per-item CAN insertion (est.): %.0f overlay hops, ~%.2f J, ~%.1f s\n",
		convHops,
		manet.DefaultEnergy.MessageEnergy(msgBytes, 1)*avgPhys*convHops,
		convHops/float64(attendees)*avgPhys*hopLatency)

	// Now use it: "who has documents like this one?" The radius is set to
	// the distance of the 20th-closest document so the query is meaningful
	// at this corpus's scale.
	q := data[asg.PeerItems[0][0]]
	eps := flatindex.New(data).KNNRadius(q, 20)
	ans, err := net.Range(0, q, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample range query: %d matching docs held by %d peers (%d overlay hops)\n",
		len(ans.Items), ans.PeersContacted, ans.OverlayHops)
	if len(ans.Scores) > 0 {
		fmt.Printf("best-scored peer: %d (relevance %.1f)\n", ans.Scores[0].Peer, ans.Scores[0].Score)
	}
}
