// Quickstart: the minimal end-to-end Hyper-M flow — build a network, give
// each peer some vectors, publish the wavelet-cluster summaries, and run a
// range and a k-nn query.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hyperm"
)

func main() {
	const (
		peers = 8
		dim   = 16 // must be a power of two
	)
	net, err := hyperm.New(hyperm.Options{
		Peers:           peers,
		Dim:             dim,
		Levels:          3,  // overlays: A, D_0, D_1
		ClustersPerPeer: 4,  // summaries per peer per level
		Seed:            42, // fully deterministic
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every peer holds 50 vectors drawn around its own "interest" center —
	// like a phone full of similar songs.
	rng := rand.New(rand.NewSource(7))
	id := 0
	var q []float64
	for p := 0; p < peers; p++ {
		center := make([]float64, dim)
		for i := range center {
			center[i] = rng.Float64() * 10
		}
		ids := make([]int, 50)
		vecs := make([][]float64, 50)
		for j := range vecs {
			v := make([]float64, dim)
			for i := range v {
				v[i] = center[i] + rng.NormFloat64()*0.3
			}
			ids[j] = id
			vecs[j] = v
			id++
		}
		if p == 3 {
			q = append([]float64(nil), vecs[0]...) // remember a query target
		}
		if err := net.AddItems(p, ids, vecs); err != nil {
			log.Fatal(err)
		}
	}

	// Publish: each peer announces ~12 cluster spheres instead of 50 items.
	rep, err := net.Publish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %d items as %d summaries: %d overlay hops (%.2f hops/item)\n",
		rep.Items, rep.Clusters, rep.OverlayHops, rep.HopsPerItem())

	// Range query: find everything within radius 2 of q. No false
	// dismissals — every true match is returned, and nothing else.
	ans, err := net.Range(0, q, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query: %d items from %d peers (%d overlay hops)\n",
		len(ans.Items), ans.PeersContacted, ans.OverlayHops)

	// k-nn query: the 5 closest items (approximate, Fig 5 heuristic).
	knn, err := net.KNN(0, q, 5)
	if err != nil {
		log.Fatal(err)
	}
	top := knn.Items
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Printf("k-nn query: top-5 = %v (%d peers contacted)\n", top, knn.PeersContacted)
}
