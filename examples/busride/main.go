// Busride: a short-lived commuter network (§1's public-transport scenario)
// exercising the paper's Figure 10c setting. Passengers publish their music
// collections when the ride starts; new tracks keep arriving mid-ride and
// are inserted without re-announcing summaries (the network is too
// short-lived to amortize republication). The example quantifies how
// retrieval quality degrades as the share of unannounced content grows, and
// shows that a cheap re-publication restores it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hyperm"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/flatindex"
)

const (
	passengers = 20
	objects    = 120 // albums
	views      = 10  // tracks per album (views share an acoustic signature)
	bins       = 64  // tone-histogram features
)

func main() {
	rng := rand.New(rand.NewSource(88))
	data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: objects, Views: views, Bins: bins}, rng)

	// 70% of each album is on someone's phone when the bus departs; the
	// remaining tracks arrive mid-ride (downloads, AirDrops) on arbitrary
	// phones.
	var base, late []int
	for i := range data {
		if i%views < 7 {
			base = append(base, i)
		} else {
			late = append(late, i)
		}
	}
	fmt.Printf("bus departs: %d passengers, %d tracks on board, %d arriving mid-ride\n",
		passengers, len(base), len(late))

	net := buildAndPublish(base, data, labels, 88)

	// Ride progresses: late tracks arrive in three waves on whichever phone
	// downloads them; after each wave, measure recall against the exact
	// index over everything on the bus.
	irng := rand.New(rand.NewSource(99))
	holder := make(map[int]int) // item -> phone actually storing it
	for _, i := range base {
		holder[i] = labels[i] % passengers
	}
	live := append([]int(nil), base...)
	third := len(late) / 3
	for wave := 0; wave < 3; wave++ {
		for _, i := range late[wave*third : (wave+1)*third] {
			p := irng.Intn(passengers)
			if err := net.Insert(p, i, data[i]); err != nil {
				log.Fatal(err)
			}
			holder[i] = p
			live = append(live, i)
		}
		recall := measureRecall(net, data, live, int64(wave))
		fmt.Printf("wave %d: %d unannounced tracks on board -> range recall %.3f\n",
			wave+1, (wave+1)*third, recall)
	}

	// A stop: three passengers get off. Graceful departure (the CAN leave
	// protocol) hands their stored index records to neighbors, so the
	// remaining network keeps finding everything that is still on board.
	for _, p := range []int{2, 9, 14} {
		if _, err := net.LeavePeer(p); err != nil {
			log.Fatal(err)
		}
	}
	var onBoard []int
	for _, i := range live {
		if h := holder[i]; h != 2 && h != 9 && h != 14 {
			onBoard = append(onBoard, i)
		}
	}
	fmt.Printf("stop: 3 passengers got off (%d peers remain) -> recall over on-board tracks %.3f\n",
		net.AlivePeers(), measureRecall(net, data, onBoard, 5))

	// End of the line for stale summaries: a fresh publication (e.g. at a
	// terminus stop, or every N minutes) re-announces everything.
	fresh := buildAndPublishAll(onBoard, data, labels, 89)
	recall := measureRecall(fresh, data, onBoard, 7)
	fmt.Printf("after re-publication: range recall %.3f\n", recall)
}

// buildAndPublish creates the network with the given items pre-loaded on the
// phones that own their albums, and publishes.
func buildAndPublish(items []int, data [][]float64, labels []int, seed int64) *hyperm.Network {
	net, err := hyperm.New(hyperm.Options{
		Peers: passengers, Dim: bins, Levels: 4, ClustersPerPeer: 6, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, i := range items {
		if err := net.AddItems(labels[i]%passengers, []int{i}, [][]float64{data[i]}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := net.Publish(); err != nil {
		log.Fatal(err)
	}
	return net
}

func buildAndPublishAll(items []int, data [][]float64, labels []int, seed int64) *hyperm.Network {
	return buildAndPublish(items, data, labels, seed)
}

// measureRecall averages range-query recall over a sample of live tracks.
func measureRecall(net *hyperm.Network, data [][]float64, live []int, seed int64) float64 {
	liveVecs := make([][]float64, len(live))
	for j, i := range live {
		liveVecs[j] = data[i]
	}
	truth := flatindex.New(liveVecs)
	qrng := rand.New(rand.NewSource(1000 + seed))
	var sum float64
	var n int
	for n < 15 {
		pick := qrng.Intn(len(live))
		q := data[live[pick]]
		eps := 0.04 + qrng.Float64()*0.06
		relLocal := truth.Range(q, eps)
		if len(relLocal) < 2 {
			continue
		}
		rel := make([]int, len(relLocal))
		for j, id := range relLocal {
			rel[j] = live[id]
		}
		ans, err := net.Range(0, q, eps)
		if err != nil {
			log.Fatal(err)
		}
		_, rec := eval.PrecisionRecall(ans.Items, rel)
		sum += rec
		n++
	}
	return sum / float64(n)
}
