# Developer entry points. `make check` is the tier-1 gate (format, vet,
# build, test); `make race` runs the concurrency-sensitive packages under the
# race detector. See README.md "Development".

GO ?= go

.PHONY: check fmt vet build test race bench bench-kernels bench-serve bench-serve-smoke bench-mem bench-mem-smoke fuzz soak

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that use or implement the worker pool, plus the serving
# runtime (concurrent RPC handlers over both transports), the membership
# protocol (failure detector, takeovers), the routing core, the view cache
# (shared by handler goroutines and α-parallel lookups), and the
# now-concurrent simulator counters, under -race.
race:
	$(GO) test -race ./internal/parallel ./internal/core ./internal/experiments ./internal/transport ./internal/node ./internal/membership ./internal/can ./internal/route ./internal/sim ./internal/viewcache

# The full churn soak: a 16-node TCP cluster absorbing scripted joins,
# graceful leaves, and probe-detected crashes under live query load, checked
# byte-identical against the simulator oracle afterwards. `go test ./...`
# runs the reduced 8-node variant via -short in CI's tier-1 gate; this target
# is the full-size run, with the membership protocol under -race for free.
soak:
	$(GO) test -race -run 'TestChurnSoak|TestProtocolMatchesOracle' -count=1 -v ./internal/node ./internal/membership

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Optimized-vs-reference kernel microbenchmarks (k-means and the Eq 8
# solver), 5 repetitions for benchstat-grade numbers.
bench-kernels:
	$(GO) test -run=^$$ -bench='^(BenchmarkKMeans|BenchmarkSolveEps)$$' -benchmem -count=5 ./internal/cluster ./internal/geometry

# Serving-runtime load benchmark: 64 TCP nodes, 8k mixed closed-loop
# requests plus an open-loop latency-under-load sweep, writes
# BENCH_serve.json (fails on any request error). The second phase repeats the
# run on a skewed (Zipf + repeat) stream with the view cache and hot
# replication on, appending its rows to the same artifact — the before/after
# pair the cache's speedup claim is measured from. The skewed phases also run
# a cache-cleared cold phase (-cold): 500 distinct first-touch queries whose
# "cold" row carries coordinator RPCs per query — the Θ(N)-vs-delegated
# number — so the artifact holds the serial reference, cached, and delegated
# (can_search_agg + warm push) cold paths side by side. BENCH_CPUS pins
# GOMAXPROCS for reproducible numbers (recorded in the artifact's env stamp).
BENCH_CPUS ?= 0
bench-serve:
	$(GO) run ./cmd/hyperm-load -nodes 64 -requests 8000 -clients 32 -transport tcp -cpus $(BENCH_CPUS) -sweep 40,80,120,160,200 -sweep-seconds 5s -out BENCH_serve.json
	$(GO) run ./cmd/hyperm-load -nodes 64 -requests 16000 -clients 32 -transport tcp -cpus $(BENCH_CPUS) -zipf 1.5 -repeat 0.5 -cold 500 -append -out BENCH_serve.json
	$(GO) run ./cmd/hyperm-load -nodes 64 -requests 16000 -clients 32 -transport tcp -cpus $(BENCH_CPUS) -zipf 1.5 -repeat 0.5 -cache-views -hot-replicate -cold 500 -append -out BENCH_serve.json
	$(GO) run ./cmd/hyperm-load -nodes 64 -requests 16000 -clients 32 -transport tcp -cpus $(BENCH_CPUS) -zipf 1.5 -repeat 0.5 -cache-views -hot-replicate -affinity -append -out BENCH_serve.json
	$(GO) run ./cmd/hyperm-load -nodes 64 -requests 16000 -clients 32 -transport tcp -cpus $(BENCH_CPUS) -zipf 1.5 -repeat 0.5 -cache-views -hot-replicate -affinity -agg-fanout 3 -warm-push 4 -cold 500 -append -out BENCH_serve.json

# Quick serving smoke for CI: a small 8-node TCP run that fails on any
# request error — catches transport or coordinator regressions in seconds —
# then the same run cache-on over a skewed stream (the cached-vs-uncached
# differential smoke: both must come back clean).
bench-serve-smoke:
	$(GO) run ./cmd/hyperm-load -nodes 8 -requests 2000 -clients 8 -transport tcp
	$(GO) run ./cmd/hyperm-load -nodes 8 -requests 2000 -clients 8 -transport tcp -zipf 1.5 -repeat 0.5 -cache-views -hot-replicate -affinity -agg-fanout 3 -warm-push 2 -cold 200

# Memory-scale serving benchmark: first the flat-store layout accounting
# (live-heap bytes/item, flat vs the parallel-slice layout it replaced) and
# the arena decode fence benchmark, then a 4-node TCP cluster at 100k
# items/node serving the query mix while an open-loop -publish-rate ingest
# stream grows the stores through the streaming incremental kernel
# (re-clustering after 1000 streamed inserts). The "all" row carries
# heap_bytes, store_bytes(_per_item), gc_pause_p99_ms, and
# store_rec_per_publish — the O(changed clusters) announcement payload; the
# "ingest" row the ingest latencies. Rows append to BENCH_serve.json. The
# offered rates are sized for the single-CPU CI box (a 100k-item first-touch
# fetch scan is ~5-10 ms there); scale them up with the cores.
bench-mem:
	$(GO) test -run TestFlatLayoutHeapBytesPerItem -v ./internal/store
	$(GO) test -run=^$$ -bench='^(BenchmarkFloatsSharedDecode|BenchmarkAppend)$$' -benchmem ./internal/transport ./internal/store
	$(GO) run ./cmd/hyperm-load -nodes 4 -items 100000 -requests 4000 -clients 8 -transport tcp -cpus $(BENCH_CPUS) -cache-views -stream-publish -recluster-every 1000 -publish-rate 50 -append -out BENCH_serve.json

# CI-sized bench-mem: same shape (streamed publishes + ingest under query
# load, memory telemetry on), small enough for seconds-long smoke. Fails on
# any request or ingest error.
bench-mem-smoke:
	$(GO) run ./cmd/hyperm-load -nodes 4 -items 2000 -requests 1500 -clients 8 -transport tcp -cache-views -stream-publish -recluster-every 100 -publish-rate 100

# Short fuzz sessions: the wavelet round-trip invariant, the routing core vs
# the frozen pre-extraction sphere-search reference, the zone split/takeover
# tiling invariants under random churn schedules, the first-wins merge of
# delegated gather results against claimed-set consistency, and the store_rec
# wire round-trip (bounded-count decode: a corrupt length prefix must error,
# never allocate).
fuzz:
	$(GO) test -fuzz=FuzzDecomposeReconstruct -fuzztime=30s ./internal/wavelet
	$(GO) test -fuzz=FuzzSearchSphere -fuzztime=30s ./internal/can
	$(GO) test -fuzz=FuzzZoneSplitTakeover -fuzztime=30s ./internal/can
	$(GO) test -fuzz=FuzzDelegateMerge -fuzztime=30s ./internal/route
	$(GO) test -fuzz=FuzzStoreRecRoundTrip -fuzztime=30s ./internal/membership
