# Developer entry points. `make check` is the tier-1 gate (format, vet,
# build, test); `make race` runs the concurrency-sensitive packages under the
# race detector. See README.md "Development".

GO ?= go

.PHONY: check fmt vet build test race bench fuzz

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages that use or implement the worker pool, under -race.
race:
	$(GO) test -race ./internal/parallel ./internal/core ./internal/experiments

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Short fuzz session for the wavelet round-trip invariant.
fuzz:
	$(GO) test -fuzz=FuzzDecomposeReconstruct -fuzztime=30s ./internal/wavelet
