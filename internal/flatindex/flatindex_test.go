package flatindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hyperm/internal/vec"
)

func grid() [][]float64 {
	// 0..9 on a line.
	var data [][]float64
	for i := 0; i < 10; i++ {
		data = append(data, []float64{float64(i)})
	}
	return data
}

func TestRange(t *testing.T) {
	ix := New(grid())
	got := ix.Range([]float64{5}, 1.5)
	want := []int{4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
}

func TestRangeBoundaryInclusive(t *testing.T) {
	ix := New(grid())
	got := ix.Range([]float64{5}, 1.0)
	if len(got) != 3 {
		t.Fatalf("radius exactly 1 should include both neighbors: %v", got)
	}
}

func TestRangeEmpty(t *testing.T) {
	ix := New(grid())
	if got := ix.Range([]float64{100}, 0.5); len(got) != 0 {
		t.Fatalf("expected empty, got %v", got)
	}
}

func TestKNN(t *testing.T) {
	ix := New(grid())
	got := ix.KNN([]float64{5.1}, 3)
	want := []int{5, 6, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("KNN = %v, want %v", got, want)
		}
	}
}

func TestKNNTieBreaksByID(t *testing.T) {
	ix := New([][]float64{{1}, {1}, {1}})
	got := ix.KNN([]float64{1}, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("KNN ties = %v, want [0 1]", got)
	}
}

func TestKNNClampedToCorpus(t *testing.T) {
	ix := New(grid())
	if got := ix.KNN([]float64{0}, 100); len(got) != 10 {
		t.Fatalf("KNN k>n returned %d ids", len(got))
	}
	if got := ix.KNN([]float64{0}, 0); got != nil {
		t.Fatalf("KNN k=0 should be nil, got %v", got)
	}
}

func TestKNNRadius(t *testing.T) {
	ix := New(grid())
	if got := ix.KNNRadius([]float64{0}, 3); got != 2 {
		t.Fatalf("KNNRadius = %v, want 2", got)
	}
	empty := New(nil)
	if got := empty.KNNRadius([]float64{0}, 3); got != 0 {
		t.Fatalf("empty KNNRadius = %v", got)
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New([][]float64{{1, 2}, {1}}) },
		func() { New(grid()).Range([]float64{0}, -1) },
		func() { New(grid()).KNN([]float64{0}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: KNN results are exactly the k smallest distances, and Range(q,
// KNNRadius) is a superset of KNN.
func TestPropKNNConsistentWithRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		d := 1 + rng.Intn(5)
		data := make([][]float64, n)
		for i := range data {
			data[i] = make([]float64, d)
			for j := range data[i] {
				data[i][j] = rng.NormFloat64()
			}
		}
		ix := New(data)
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(n)
		knn := ix.KNN(q, k)
		if len(knn) != k {
			return false
		}
		// Distances must be nondecreasing.
		for i := 0; i+1 < len(knn); i++ {
			if vec.Dist(q, data[knn[i]]) > vec.Dist(q, data[knn[i+1]])+1e-12 {
				return false
			}
		}
		// Range at the k-th distance contains all of knn. The radius is a
		// sqrt of the stored squared distance, so give one ulp of slack to
		// absorb the sqrt/square round trip.
		r := ix.Range(q, ix.KNNRadius(q, k)*(1+1e-12))
		set := map[int]bool{}
		for _, id := range r {
			set[id] = true
		}
		for _, id := range knn {
			if !set[id] {
				return false
			}
		}
		// Range output is sorted by id.
		return sort.IntsAreSorted(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRange10000x64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([][]float64, 10000)
	for i := range data {
		data[i] = make([]float64, 64)
		for j := range data[i] {
			data[i][j] = rng.Float64()
		}
	}
	ix := New(data)
	q := data[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Range(q, 0.5)
	}
}
