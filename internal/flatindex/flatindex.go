// Package flatindex is the centralized exact-search baseline of the paper's
// effectiveness experiments (§6): "we implemented a centralized flat file
// system that indexes the data using the original vectors, and use the
// retrieval results as the basis for evaluating the effectiveness of our
// proposal". Range and k-nn results from this index are the ground truth
// that Hyper-M's precision and recall are measured against.
package flatindex

import (
	"fmt"
	"sort"

	"hyperm/internal/vec"
)

// Index is a linear-scan exact index over a fixed corpus. Item identifiers
// are the row indices of the corpus passed to New.
type Index struct {
	data [][]float64
}

// New builds an index over data. The slice is retained, not copied; callers
// must not mutate the rows afterwards.
func New(data [][]float64) *Index {
	if len(data) > 0 {
		d := len(data[0])
		for i, row := range data {
			if len(row) != d {
				panic(fmt.Sprintf("flatindex: row %d has dim %d, want %d", i, len(row), d))
			}
		}
	}
	return &Index{data: data}
}

// Len returns the corpus size.
func (ix *Index) Len() int { return len(ix.data) }

// Item returns the vector of item id.
func (ix *Index) Item(id int) []float64 { return ix.data[id] }

// Range returns the ids of every item within distance eps of q, in
// ascending id order.
func (ix *Index) Range(q []float64, eps float64) []int {
	if eps < 0 {
		panic("flatindex: negative range radius")
	}
	var out []int
	eps2 := eps * eps
	for id, x := range ix.data {
		if vec.Dist2(q, x) <= eps2 {
			out = append(out, id)
		}
	}
	return out
}

// KNN returns the ids of the k items closest to q, ordered by ascending
// distance (ties broken by id). If k exceeds the corpus, every id is
// returned.
func (ix *Index) KNN(q []float64, k int) []int {
	if k < 0 {
		panic("flatindex: negative k")
	}
	if k > len(ix.data) {
		k = len(ix.data)
	}
	if k == 0 {
		return nil
	}
	type cand struct {
		id int
		d2 float64
	}
	cands := make([]cand, len(ix.data))
	for id, x := range ix.data {
		cands[id] = cand{id: id, d2: vec.Dist2(q, x)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].id < cands[j].id
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// KNNRadius returns the distance from q to its k-th nearest neighbor —
// the ideal range radius a perfect k-nn-to-range reduction would use.
func (ix *Index) KNNRadius(q []float64, k int) float64 {
	ids := ix.KNN(q, k)
	if len(ids) == 0 {
		return 0
	}
	return vec.Dist(q, ix.data[ids[len(ids)-1]])
}
