// Package eval provides the evaluation metrics of the paper's experiments:
// precision/recall against the exact baseline (§6) and the load-distribution
// statistics behind the Figure 9 data-dissemination analysis (§5.3).
package eval

import (
	"math"
	"sort"
)

// PrecisionRecall compares a retrieved id set against the relevant
// (ground-truth) id set, returning the standard measures. An empty retrieved
// set has precision 1 if nothing was relevant, else 0; symmetrically for
// recall.
func PrecisionRecall(retrieved, relevant []int) (precision, recall float64) {
	rel := make(map[int]bool, len(relevant))
	for _, id := range relevant {
		rel[id] = true
	}
	seen := make(map[int]bool, len(retrieved))
	hits := 0
	distinct := 0
	for _, id := range retrieved {
		if seen[id] {
			continue
		}
		seen[id] = true
		distinct++
		if rel[id] {
			hits++
		}
	}
	if distinct == 0 {
		if len(rel) == 0 {
			precision = 1
		}
	} else {
		precision = float64(hits) / float64(distinct)
	}
	if len(rel) == 0 {
		recall = 1
	} else {
		recall = float64(hits) / float64(len(rel))
	}
	return precision, recall
}

// F1 returns the harmonic mean of precision and recall (0 when both are 0).
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// LoadStats summarizes how evenly data items are spread over peers — the
// quantity Figure 9 plots per overlay configuration.
type LoadStats struct {
	// Total is the sum of all loads.
	Total int
	// Mean is the average load per peer (over all peers, including empty).
	Mean float64
	// Max is the largest per-peer load.
	Max int
	// NonEmpty is the number of peers holding at least one item — the
	// paper's "average number of peers holding the data".
	NonEmpty int
	// CV is the coefficient of variation (stddev/mean); 0 is perfectly
	// uniform. Zero mean yields CV 0.
	CV float64
	// Gini is the Gini coefficient of the load distribution in [0,1);
	// 0 is perfectly uniform, values near 1 mean a few peers hold
	// everything.
	Gini float64
}

// Load computes LoadStats over per-peer item counts.
func Load(loads []int) LoadStats {
	var st LoadStats
	n := len(loads)
	if n == 0 {
		return st
	}
	for _, l := range loads {
		st.Total += l
		if l > st.Max {
			st.Max = l
		}
		if l > 0 {
			st.NonEmpty++
		}
	}
	st.Mean = float64(st.Total) / float64(n)
	if st.Mean > 0 {
		var ss float64
		for _, l := range loads {
			d := float64(l) - st.Mean
			ss += d * d
		}
		st.CV = math.Sqrt(ss/float64(n)) / st.Mean
	}
	st.Gini = gini(loads)
	return st
}

// gini computes the Gini coefficient via the sorted-rank formula.
func gini(loads []int) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	var total float64
	for i, l := range loads {
		sorted[i] = float64(l)
		total += float64(l)
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(sorted)
	var cum float64
	for i, v := range sorted {
		cum += v * float64(2*(i+1)-n-1)
	}
	return cum / (float64(n) * total)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the smallest and largest of xs (zeros for empty input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
