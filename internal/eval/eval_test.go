package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrecisionRecallBasics(t *testing.T) {
	cases := []struct {
		name                string
		retrieved, relevant []int
		wantP, wantR        float64
	}{
		{"perfect", []int{1, 2, 3}, []int{1, 2, 3}, 1, 1},
		{"half precision", []int{1, 2, 3, 4}, []int{1, 2}, 0.5, 1},
		{"half recall", []int{1}, []int{1, 2}, 1, 0.5},
		{"disjoint", []int{4, 5}, []int{1, 2}, 0, 0},
		{"empty retrieved nonempty relevant", nil, []int{1}, 0, 0},
		{"both empty", nil, nil, 1, 1},
		{"empty relevant nonempty retrieved", []int{1}, nil, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, r := PrecisionRecall(tc.retrieved, tc.relevant)
			if p != tc.wantP || r != tc.wantR {
				t.Errorf("P=%v R=%v, want P=%v R=%v", p, r, tc.wantP, tc.wantR)
			}
		})
	}
}

func TestPrecisionRecallDeduplicates(t *testing.T) {
	p, r := PrecisionRecall([]int{1, 1, 1, 2}, []int{1, 2})
	if p != 1 || r != 1 {
		t.Errorf("duplicates should not hurt precision: P=%v R=%v", p, r)
	}
}

func TestF1(t *testing.T) {
	if got := F1(1, 1); got != 1 {
		t.Errorf("F1(1,1) = %v", got)
	}
	if got := F1(0, 0); got != 0 {
		t.Errorf("F1(0,0) = %v", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1(0.5,1) = %v, want 2/3", got)
	}
}

// Property: precision and recall always lie in [0,1].
func TestPropPRInRange(t *testing.T) {
	f := func(ret, rel []uint8) bool {
		a := make([]int, len(ret))
		for i, v := range ret {
			a[i] = int(v % 16)
		}
		b := make([]int, len(rel))
		for i, v := range rel {
			b[i] = int(v % 16)
		}
		p, r := PrecisionRecall(a, b)
		return p >= 0 && p <= 1 && r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadUniform(t *testing.T) {
	st := Load([]int{5, 5, 5, 5})
	if st.Total != 20 || st.Mean != 5 || st.Max != 5 || st.NonEmpty != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.CV != 0 || st.Gini != 0 {
		t.Errorf("uniform load should have CV=Gini=0: %+v", st)
	}
}

func TestLoadConcentrated(t *testing.T) {
	st := Load([]int{20, 0, 0, 0})
	if st.NonEmpty != 1 || st.Max != 20 {
		t.Errorf("stats = %+v", st)
	}
	// All mass on one of four peers: Gini = (n-1)/n = 0.75.
	if math.Abs(st.Gini-0.75) > 1e-12 {
		t.Errorf("Gini = %v, want 0.75", st.Gini)
	}
	if st.CV <= 1 {
		t.Errorf("CV = %v, want > 1 for this skew", st.CV)
	}
}

func TestLoadEmptyAndZeros(t *testing.T) {
	if st := Load(nil); st != (LoadStats{}) {
		t.Errorf("empty load stats = %+v", st)
	}
	st := Load([]int{0, 0})
	if st.Gini != 0 || st.CV != 0 || st.NonEmpty != 0 {
		t.Errorf("all-zero load stats = %+v", st)
	}
}

// Property: Gini is within [0,1) and invariant under scaling of the loads.
func TestPropGiniScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		loads := make([]int, n)
		scaled := make([]int, n)
		for i := range loads {
			loads[i] = rng.Intn(50)
			scaled[i] = loads[i] * 7
		}
		g1, g2 := Load(loads).Gini, Load(scaled).Gini
		if g1 < 0 || g1 >= 1 {
			return false
		}
		return math.Abs(g1-g2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: spreading the same total mass over more peers never increases
// Gini (comparing fully concentrated vs uniform).
func TestGiniOrdering(t *testing.T) {
	uniform := Load([]int{3, 3, 3, 3, 3, 3}).Gini
	skewed := Load([]int{18, 0, 0, 0, 0, 0}).Gini
	mild := Load([]int{6, 5, 3, 2, 1, 1}).Gini
	if !(uniform < mild && mild < skewed) {
		t.Errorf("Gini ordering violated: uniform=%v mild=%v skewed=%v", uniform, mild, skewed)
	}
}

func TestMeanMinMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	lo, hi := MinMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("MinMax(nil) should be zeros")
	}
}
