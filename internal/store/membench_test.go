package store

import (
	"runtime"
	"testing"
)

// Live-heap accounting of the flat layout versus the parallel-slice layout it
// replaced (`[]int` ids + `[][]float64` rows, one heap object per vector).
// The flat store wins on three axes: no 24-byte slice header per row, no
// size-class rounding per vector, and no per-object GC scan work — blocks are
// pointer-free. These tests measure the first two directly with MemStats and
// keep Store.HeapBytes honest against what the runtime actually charges.

// liveHeap forces a collection and returns the live heap.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func TestFlatLayoutHeapBytesPerItem(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement at 100k items")
	}
	const items = 100_000
	for _, dim := range []int{8, 32} {
		row := make([]float64, dim)
		for d := range row {
			row[d] = float64(d)
		}

		base := liveHeap()
		s := New(dim)
		for i := 0; i < items; i++ {
			s.Append(i, row)
		}
		flat := liveHeap() - base
		accounted := uint64(s.HeapBytes())

		base = liveHeap()
		ids := make([]int, 0)
		rows := make([][]float64, 0)
		for i := 0; i < items; i++ {
			v := make([]float64, dim)
			copy(v, row)
			ids = append(ids, i)
			rows = append(rows, v)
		}
		naive := liveHeap() - base
		runtime.KeepAlive(ids)
		runtime.KeepAlive(rows)
		runtime.KeepAlive(s)

		t.Logf("dim=%d: flat %.1f B/item (HeapBytes accounts %.1f), parallel slices %.1f B/item (%.2fx)",
			dim, float64(flat)/items, float64(accounted)/items, float64(naive)/items, float64(naive)/float64(flat))
		if flat >= naive {
			t.Errorf("dim=%d: flat layout (%d B) not below parallel slices (%d B)", dim, flat, naive)
		}
		// HeapBytes must track the real charge closely — it is the number the
		// serving bench reports. Allow slack for allocator rounding of the id
		// column and block bookkeeping.
		if accounted > flat+flat/8 || flat > accounted+accounted/8 {
			t.Errorf("dim=%d: HeapBytes accounts %d, runtime charged %d (>12.5%% apart)", dim, accounted, flat)
		}
	}
}

// BenchmarkAppend pins the steady-state ingest cost of the flat layout: one
// block allocation per BlockRows appends, everything else a copy.
func BenchmarkAppend(b *testing.B) {
	const dim = 32
	row := make([]float64, dim)
	b.ReportAllocs()
	b.SetBytes(int64(8 * dim))
	s := New(dim)
	for i := 0; i < b.N; i++ {
		s.Append(i, row)
	}
}
