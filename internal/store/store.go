// Package store is the flat item store of the serving path: one id column
// plus the item vectors coalesced into fixed-size row blocks, replacing the
// pointer-rich `[]int` + `[][]float64` parallel slices that made million-item
// nodes GC-bound. The layout extends the PR 2 coalesced-buffer idea (the
// k-means kernel's flat state) to the long-lived stores read by
// core.LocalRange/LocalKNN, core.System's peers, and node.Node.
//
// Two properties matter to the callers:
//
//   - Stable handles: Vec(i) returns a subslice of a block, and appends never
//     move existing rows (a full block is immutable; growth allocates a new
//     block). Scans and decode paths may hold row views across appends.
//   - Explicit copy points: Append copies the incoming vector into the arena.
//     That is THE copy point of the zero-copy decode path — wire decoders
//     hand out arena-backed views of the frame (transport.Decoder.FloatsShared)
//     and the store is where retained item data becomes owned memory.
//
// A Store is not safe for concurrent mutation; readers and the single writer
// are serialized by the owner (node.Node's mu, the single-threaded simulator).
package store

import "fmt"

// BlockRows is the number of rows per arena block. Blocks hold
// BlockRows*dim float64s contiguously; at dim 32 a block is 256 KiB.
const BlockRows = 1024

// Store holds items as a flat id column plus row blocks of dim-wide vectors.
type Store struct {
	dim    int
	ids    []int
	blocks [][]float64 // each block has capacity BlockRows*dim floats
	n      int
}

// New returns an empty store for dim-wide vectors.
func New(dim int) *Store {
	if dim < 1 {
		panic(fmt.Sprintf("store: dim must be >= 1, got %d", dim))
	}
	return &Store{dim: dim}
}

// FromRows builds a store from parallel id/vector slices, copying the vectors
// into the arena.
func FromRows(dim int, ids []int, rows [][]float64) *Store {
	s := New(dim)
	if len(ids) != len(rows) {
		panic(fmt.Sprintf("store: %d ids for %d rows", len(ids), len(rows)))
	}
	for i, r := range rows {
		s.Append(ids[i], r)
	}
	return s
}

// Dim returns the vector width.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of stored items.
func (s *Store) Len() int { return s.n }

// ID returns item i's global id.
func (s *Store) ID(i int) int { return s.ids[i] }

// Vec returns a view of item i's vector. The view is stable: appends never
// move existing rows. Callers must treat it as read-only.
func (s *Store) Vec(i int) []float64 {
	b := s.blocks[i/BlockRows]
	off := (i % BlockRows) * s.dim
	return b[off : off+s.dim : off+s.dim]
}

// Append copies (id, v) into the store — the copy point where wire-decoded
// views become owned memory. Existing row views stay valid.
func (s *Store) Append(id int, v []float64) {
	if len(v) != s.dim {
		panic(fmt.Sprintf("store: vector dim %d, want %d", len(v), s.dim))
	}
	bi := s.n / BlockRows
	if bi == len(s.blocks) {
		s.blocks = append(s.blocks, make([]float64, 0, BlockRows*s.dim))
	}
	s.blocks[bi] = append(s.blocks[bi], v...)
	s.ids = append(s.ids, id)
	s.n++
}

// IDs returns the id column. It is a view; callers must not mutate it and
// must not retain it across appends (the column may be reallocated).
func (s *Store) IDs() []int { return s.ids }

// Rows materializes the outer slice of row views (one allocation). Used to
// feed batch kernels (wavelet.DecomposeAll) that consume [][]float64.
func (s *Store) Rows() [][]float64 {
	out := make([][]float64, s.n)
	for i := range out {
		out[i] = s.Vec(i)
	}
	return out
}

// Clone returns an independent store over the same rows. Full blocks are
// shared (they are immutable — appends only ever extend the last, partial
// block); the partial tail block and the id column are copied, so appends to
// either store never reach the other.
func (s *Store) Clone() *Store {
	c := &Store{dim: s.dim, n: s.n}
	c.ids = append([]int(nil), s.ids...)
	if len(s.blocks) > 0 {
		c.blocks = append([][]float64(nil), s.blocks...)
		last := s.blocks[len(s.blocks)-1]
		if len(last) < cap(last) {
			cp := make([]float64, len(last), BlockRows*s.dim)
			copy(cp, last)
			c.blocks[len(c.blocks)-1] = cp
		}
	}
	return c
}

// HeapBytes estimates the store's heap footprint: the id column plus the
// allocated block capacity. It deliberately counts capacity, not length —
// that is what the process actually holds.
func (s *Store) HeapBytes() int {
	bytes := cap(s.ids) * 8
	for _, b := range s.blocks {
		bytes += cap(b) * 8
	}
	return bytes
}
