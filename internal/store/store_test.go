package store

import (
	"math/rand"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const dim, n = 8, 3*BlockRows + 17
	ids := make([]int, n)
	rows := make([][]float64, n)
	for i := range rows {
		ids[i] = 1000 + i
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	s := FromRows(dim, ids, rows)
	if s.Len() != n || s.Dim() != dim {
		t.Fatalf("Len/Dim = %d/%d, want %d/%d", s.Len(), s.Dim(), n, dim)
	}
	for i := 0; i < n; i++ {
		if s.ID(i) != ids[i] {
			t.Fatalf("ID(%d) = %d, want %d", i, s.ID(i), ids[i])
		}
		v := s.Vec(i)
		for j := range v {
			if v[j] != rows[i][j] {
				t.Fatalf("Vec(%d)[%d] = %v, want %v", i, j, v[j], rows[i][j])
			}
		}
	}
}

func TestStableHandles(t *testing.T) {
	s := New(4)
	s.Append(0, []float64{1, 2, 3, 4})
	v0 := s.Vec(0)
	for i := 1; i < 2*BlockRows; i++ {
		s.Append(i, []float64{float64(i), 0, 0, 0})
	}
	if &v0[0] != &s.Vec(0)[0] {
		t.Fatal("row 0 moved after appends")
	}
	if v0[0] != 1 || v0[3] != 4 {
		t.Fatalf("row 0 corrupted: %v", v0)
	}
}

func TestAppendCopies(t *testing.T) {
	s := New(2)
	src := []float64{1, 2}
	s.Append(7, src)
	src[0] = 99
	if s.Vec(0)[0] != 1 {
		t.Fatal("Append aliased the caller's slice")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(2)
	for i := 0; i < BlockRows+3; i++ {
		s.Append(i, []float64{float64(i), -float64(i)})
	}
	c := s.Clone()
	s.Append(9999, []float64{42, 42})
	c.Append(8888, []float64{7, 7})
	if c.Len() != BlockRows+4 || s.Len() != BlockRows+4 {
		t.Fatalf("lens diverged wrong: %d %d", s.Len(), c.Len())
	}
	if s.ID(BlockRows+3) != 9999 || c.ID(BlockRows+3) != 8888 {
		t.Fatalf("appended ids crossed: %d %d", s.ID(BlockRows+3), c.ID(BlockRows+3))
	}
	if s.Vec(BlockRows + 3)[0] != 42 || c.Vec(BlockRows + 3)[0] != 7 {
		t.Fatalf("appended rows crossed: %v %v", s.Vec(BlockRows+3), c.Vec(BlockRows+3))
	}
	// Shared full-block rows still agree.
	if s.Vec(5)[0] != c.Vec(5)[0] {
		t.Fatal("shared rows diverged")
	}
}

func TestRowsViews(t *testing.T) {
	s := New(2)
	s.Append(1, []float64{3, 4})
	rows := s.Rows()
	if len(rows) != 1 || rows[0][1] != 4 {
		t.Fatalf("Rows = %v", rows)
	}
	if &rows[0][0] != &s.Vec(0)[0] {
		t.Fatal("Rows copied instead of viewing")
	}
}

func TestHeapBytes(t *testing.T) {
	s := New(8)
	if s.HeapBytes() != 0 {
		t.Fatalf("empty store HeapBytes = %d", s.HeapBytes())
	}
	s.Append(0, make([]float64, 8))
	if got := s.HeapBytes(); got < 8*BlockRows*8 {
		t.Fatalf("HeapBytes = %d, want at least one block", got)
	}
}
