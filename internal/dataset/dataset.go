// Package dataset generates the two workloads of the paper's evaluation and
// assigns data items to peers the way §5.1 describes.
//
//   - Markov: the synthetic efficiency dataset (§5.1, Fig 7) — feature
//     vectors produced by a two-state (Increasing/Decreasing) Markov process
//     with randomized transition probabilities, start value and step sizes.
//   - ALOI: a stand-in for the Amsterdam Library of Object Images used in
//     the effectiveness experiments (§6). The real library is 1,000 objects
//     photographed under varying viewing angle and illumination; we generate
//     one base color histogram per object and derive each "view" by shifting,
//     rescaling and perturbing it, which reproduces the property the paper's
//     retrieval experiments rely on: views of the same object form tight
//     clusters, distinct objects lie far apart.
//   - AssignToPeers: cluster the corpus with k-means in the original space
//     and spread each cluster over 8–10 peers, simulating users whose
//     collections cover a limited set of interests.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"hyperm/internal/cluster"
)

// MarkovConfig parameterizes the synthetic dissemination dataset.
type MarkovConfig struct {
	// N is the number of feature vectors (the paper uses 100,000).
	N int
	// Dim is the vector dimensionality (the paper uses 512).
	Dim int
	// MaxStart bounds the uniformly drawn starting value (default 100).
	MaxStart float64
	// MaxStepCeil bounds the uniformly drawn per-vector maximum step
	// (default 5).
	MaxStepCeil float64
}

func (c MarkovConfig) withDefaults() MarkovConfig {
	if c.MaxStart == 0 {
		c.MaxStart = 100
	}
	if c.MaxStepCeil == 0 {
		c.MaxStepCeil = 5
	}
	return c
}

// Markov generates cfg.N vectors of cfg.Dim dimensions following §5.1:
// a two-state Markov chain with p1 drawn uniformly from [0, 0.5),
// p2 = p1 + x with x uniform in [-0.05, 0.05], and random start value,
// initial state, step and maximum step. Values are floored at zero.
func Markov(cfg MarkovConfig, rng *rand.Rand) [][]float64 {
	cfg = cfg.withDefaults()
	if cfg.N < 0 || cfg.Dim < 1 {
		panic(fmt.Sprintf("dataset: invalid Markov config N=%d Dim=%d", cfg.N, cfg.Dim))
	}
	if rng == nil {
		panic("dataset: rng must be non-nil")
	}
	data := make([][]float64, cfg.N)
	for i := range data {
		data[i] = markovVector(cfg, rng)
	}
	return data
}

func markovVector(cfg MarkovConfig, rng *rand.Rand) []float64 {
	// p1: probability of switching out of Increasing;
	// p2 = p1 + x: probability of switching out of Decreasing.
	p1 := rng.Float64() * 0.5
	p2 := p1 + (rng.Float64()*0.1 - 0.05)
	if p2 < 0 {
		p2 = 0
	}
	if p2 > 1 {
		p2 = 1
	}
	increasing := rng.Intn(2) == 0
	value := rng.Float64() * cfg.MaxStart
	maxStep := rng.Float64() * cfg.MaxStepCeil
	v := make([]float64, cfg.Dim)
	for j := range v {
		step := rng.Float64() * maxStep
		if increasing {
			value += step
			if rng.Float64() < p1 {
				increasing = false
			}
		} else {
			value -= step
			if value < 0 {
				value = 0
			}
			if rng.Float64() < p2 {
				increasing = true
			}
		}
		v[j] = value
	}
	return v
}

// ALOIConfig parameterizes the ALOI-substitute image-histogram corpus.
type ALOIConfig struct {
	// Objects is the number of distinct objects (the real ALOI has 1,000).
	Objects int
	// Views is the number of views per object (angle/illumination variants;
	// 12 gives the paper's 12,000 items at 1,000 objects).
	Views int
	// Bins is the color-histogram dimensionality; must be a power of two
	// for the wavelet hierarchy (default 64).
	Bins int
	// Peaks bounds the number of dominant colors per object (default 4).
	Peaks int
}

func (c ALOIConfig) withDefaults() ALOIConfig {
	if c.Bins == 0 {
		c.Bins = 64
	}
	if c.Peaks == 0 {
		c.Peaks = 4
	}
	return c
}

// ALOI generates Objects*Views color histograms (each row sums to 1) and a
// parallel label slice giving the object id of each row. Views of an object
// are perturbations — bin shift (viewing angle), intensity rescale
// (illumination) and multiplicative noise — of the object's base histogram.
func ALOI(cfg ALOIConfig, rng *rand.Rand) (data [][]float64, labels []int) {
	cfg = cfg.withDefaults()
	if cfg.Objects < 1 || cfg.Views < 1 {
		panic(fmt.Sprintf("dataset: invalid ALOI config %+v", cfg))
	}
	if rng == nil {
		panic("dataset: rng must be non-nil")
	}
	data = make([][]float64, 0, cfg.Objects*cfg.Views)
	labels = make([]int, 0, cfg.Objects*cfg.Views)
	for obj := 0; obj < cfg.Objects; obj++ {
		base := baseHistogram(cfg, rng)
		for v := 0; v < cfg.Views; v++ {
			data = append(data, perturbView(base, rng))
			labels = append(labels, obj)
		}
	}
	return data, labels
}

// baseHistogram builds an object's signature: a mixture of 2..Peaks Gaussian
// color peaks over the bins, normalized to unit mass.
func baseHistogram(cfg ALOIConfig, rng *rand.Rand) []float64 {
	h := make([]float64, cfg.Bins)
	peaks := 2 + rng.Intn(cfg.Peaks-1)
	for p := 0; p < peaks; p++ {
		center := rng.Float64() * float64(cfg.Bins)
		width := 1 + rng.Float64()*float64(cfg.Bins)/8
		weight := 0.2 + rng.Float64()
		for b := range h {
			d := (float64(b) - center) / width
			h[b] += weight * gauss(d)
		}
	}
	// A small uniform floor keeps histograms strictly positive, like real
	// images with background pixels in every color bucket.
	for b := range h {
		h[b] += 0.01
	}
	normalize(h)
	return h
}

func gauss(d float64) float64 {
	return math.Exp(-d * d / 2)
}

// perturbView derives one view of an object: circular bin shift of up to two
// bins (viewing angle), global intensity scale (illumination), and 10%
// multiplicative speckle, then renormalization.
func perturbView(base []float64, rng *rand.Rand) []float64 {
	bins := len(base)
	shift := rng.Intn(5) - 2 // -2..+2 bins
	out := make([]float64, bins)
	for b := range out {
		src := ((b-shift)%bins + bins) % bins
		noise := 1 + (rng.Float64()*0.2 - 0.1)
		out[b] = base[src] * noise
	}
	// Illumination changes darken/brighten the image: mass shifts toward
	// the low or high end before renormalization.
	tilt := rng.Float64()*0.4 - 0.2
	for b := range out {
		out[b] *= 1 + tilt*(float64(b)/float64(bins)-0.5)
	}
	normalize(out)
	return out
}

func normalize(h []float64) {
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum <= 0 {
		return
	}
	for i := range h {
		h[i] /= sum
	}
}

// Assignment maps peers to the data items they hold.
type Assignment struct {
	// PeerItems[p] lists the global item indices stored on peer p.
	PeerItems [][]int
	// ItemPeer[i] is the peer holding item i (-1 if unassigned, which only
	// happens when items were filtered out by skew selection).
	ItemPeer []int
	// Clusters is the number of interest clusters the assignment used.
	Clusters int
}

// AssignConfig tunes AssignToPeers.
type AssignConfig struct {
	// Peers is the number of peers.
	Peers int
	// Clusters is the number of k-means interest clusters (default
	// Peers/8+2, so that 8–10 peers per cluster roughly covers the network).
	Clusters int
	// MinSpread and MaxSpread bound how many peers share one cluster
	// (defaults 8 and 10, per §5.1).
	MinSpread, MaxSpread int
	// SampleCap bounds the number of items used to fit the k-means
	// centroids (the full corpus is then assigned to the nearest centroid).
	// Zero means the default (4,096). Keeps 100k×512 workloads tractable.
	SampleCap int
	// KeepClusters, when positive, keeps only the items of that many
	// clusters — the intentional skew of the Figure 9 experiment
	// ("we cluster our original data and select only a fixed number of
	// clusters, two to five").
	KeepClusters int
}

func (c AssignConfig) withDefaults() AssignConfig {
	if c.Clusters == 0 {
		c.Clusters = c.Peers/8 + 2
	}
	if c.MinSpread == 0 {
		c.MinSpread = 8
	}
	if c.MaxSpread == 0 {
		c.MaxSpread = 10
	}
	if c.SampleCap == 0 {
		c.SampleCap = 4096
	}
	return c
}

// AssignToPeers reproduces §5.1's data placement: k-means the corpus in the
// original space, then redistribute each cluster among MinSpread..MaxSpread
// randomly chosen peers. Every peer therefore holds items from a limited set
// of interest clusters, simulating users with focused collections.
func AssignToPeers(data [][]float64, cfg AssignConfig, rng *rand.Rand) Assignment {
	cfg = cfg.withDefaults()
	if cfg.Peers < 1 {
		panic("dataset: need at least one peer")
	}
	if rng == nil {
		panic("dataset: rng must be non-nil")
	}
	if cfg.MinSpread > cfg.MaxSpread {
		panic("dataset: MinSpread > MaxSpread")
	}

	// Fit centroids on a sample, then assign every item.
	sample := data
	if len(data) > cfg.SampleCap {
		sample = make([][]float64, cfg.SampleCap)
		perm := rng.Perm(len(data))
		for i := range sample {
			sample[i] = data[perm[i]]
		}
	}
	res := cluster.KMeans(sample, cluster.Config{K: cfg.Clusters, Rng: rng})
	centroids := make([][]float64, len(res.Clusters))
	for i, c := range res.Clusters {
		centroids[i] = c.Centroid
	}
	memberOf := make([][]int, len(centroids))
	for i, x := range data {
		c := nearest(x, centroids)
		memberOf[c] = append(memberOf[c], i)
	}

	keep := make([]bool, len(centroids))
	if cfg.KeepClusters > 0 && cfg.KeepClusters < len(centroids) {
		for _, c := range rng.Perm(len(centroids))[:cfg.KeepClusters] {
			keep[c] = true
		}
	} else {
		for c := range keep {
			keep[c] = true
		}
	}

	asg := Assignment{
		PeerItems: make([][]int, cfg.Peers),
		ItemPeer:  make([]int, len(data)),
		Clusters:  len(centroids),
	}
	for i := range asg.ItemPeer {
		asg.ItemPeer[i] = -1
	}
	for c, items := range memberOf {
		if !keep[c] || len(items) == 0 {
			continue
		}
		spread := cfg.MinSpread + rng.Intn(cfg.MaxSpread-cfg.MinSpread+1)
		if spread > cfg.Peers {
			spread = cfg.Peers
		}
		peers := rng.Perm(cfg.Peers)[:spread]
		for j, item := range items {
			p := peers[j%len(peers)]
			asg.PeerItems[p] = append(asg.PeerItems[p], item)
			asg.ItemPeer[item] = p
		}
	}
	return asg
}

func nearest(x []float64, centroids [][]float64) int {
	best, bestD := 0, -1.0
	for c, cent := range centroids {
		var d float64
		for i, v := range x {
			diff := v - cent[i]
			d += diff * diff
		}
		if bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
