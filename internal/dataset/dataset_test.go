package dataset

import (
	"math"
	"math/rand"
	"testing"

	"hyperm/internal/vec"
)

func TestMarkovShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := Markov(MarkovConfig{N: 100, Dim: 512}, rng)
	if len(data) != 100 {
		t.Fatalf("N = %d", len(data))
	}
	for _, v := range data {
		if len(v) != 512 {
			t.Fatalf("dim = %d", len(v))
		}
		for _, x := range v {
			if x < 0 || math.IsNaN(x) {
				t.Fatalf("invalid value %v", x)
			}
		}
	}
}

// The Markov walk should look like Fig 7b: consecutive coordinates are
// strongly correlated (small steps), so lag-1 autocorrelation must be high.
func TestMarkovAutocorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := Markov(MarkovConfig{N: 50, Dim: 256}, rng)
	var num, den float64
	for _, v := range data {
		mean := 0.0
		for _, x := range v {
			mean += x
		}
		mean /= float64(len(v))
		for j := 0; j+1 < len(v); j++ {
			num += (v[j] - mean) * (v[j+1] - mean)
		}
		for j := range v {
			den += (v[j] - mean) * (v[j] - mean)
		}
	}
	if den == 0 {
		t.Skip("degenerate data")
	}
	if r := num / den; r < 0.5 {
		t.Errorf("lag-1 autocorrelation %v, want > 0.5 for a random walk", r)
	}
}

func TestMarkovDeterministic(t *testing.T) {
	a := Markov(MarkovConfig{N: 10, Dim: 32}, rand.New(rand.NewSource(5)))
	b := Markov(MarkovConfig{N: 10, Dim: 32}, rand.New(rand.NewSource(5)))
	for i := range a {
		if !vec.ApproxEqual(a[i], b[i], 0) {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestMarkovPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Markov(MarkovConfig{N: 1, Dim: 0}, rand.New(rand.NewSource(1))) },
		func() { Markov(MarkovConfig{N: 1, Dim: 4}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestALOIShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, labels := ALOI(ALOIConfig{Objects: 20, Views: 12, Bins: 64}, rng)
	if len(data) != 240 || len(labels) != 240 {
		t.Fatalf("got %d items, %d labels", len(data), len(labels))
	}
	for i, h := range data {
		if len(h) != 64 {
			t.Fatalf("bins = %d", len(h))
		}
		var sum float64
		for _, v := range h {
			if v < 0 {
				t.Fatalf("negative bin value %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("histogram %d sums to %v, want 1", i, sum)
		}
	}
	// Labels group views: items 0..11 are object 0, etc.
	if labels[0] != 0 || labels[11] != 0 || labels[12] != 1 {
		t.Errorf("label layout unexpected: %v...", labels[:13])
	}
}

// The property the retrieval experiments rely on: views of the same object
// are, on average, much closer to each other than to views of other objects.
func TestALOIIntraVsInterObjectDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, labels := ALOI(ALOIConfig{Objects: 30, Views: 8, Bins: 64}, rng)
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < len(data); i++ {
		for j := i + 1; j < len(data); j += 7 { // sample pairs
			d := vec.Dist(data[i], data[j])
			if labels[i] == labels[j] {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra*2 > inter {
		t.Errorf("intra-object distance %v vs inter-object %v: clusters not tight enough", intra, inter)
	}
}

func TestAssignToPeersCoversAllItems(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := Markov(MarkovConfig{N: 2000, Dim: 32}, rng)
	asg := AssignToPeers(data, AssignConfig{Peers: 20}, rng)
	if len(asg.PeerItems) != 20 {
		t.Fatalf("peers = %d", len(asg.PeerItems))
	}
	seen := make([]bool, len(data))
	for p, items := range asg.PeerItems {
		for _, i := range items {
			if seen[i] {
				t.Fatalf("item %d assigned twice", i)
			}
			seen[i] = true
			if asg.ItemPeer[i] != p {
				t.Fatalf("ItemPeer inconsistent for %d", i)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("item %d unassigned", i)
		}
	}
}

func TestAssignToPeersSkewDropsItems(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := Markov(MarkovConfig{N: 1000, Dim: 16}, rng)
	asg := AssignToPeers(data, AssignConfig{Peers: 20, Clusters: 10, KeepClusters: 2}, rng)
	assigned := 0
	for _, items := range asg.PeerItems {
		assigned += len(items)
	}
	if assigned == 0 {
		t.Fatal("skewed assignment kept nothing")
	}
	if assigned == len(data) {
		t.Error("KeepClusters=2 of 10 should drop some items")
	}
	// ItemPeer must be -1 exactly for dropped items.
	dropped := 0
	for _, p := range asg.ItemPeer {
		if p == -1 {
			dropped++
		}
	}
	if dropped != len(data)-assigned {
		t.Errorf("dropped %d, want %d", dropped, len(data)-assigned)
	}
}

// §5.1: each cluster is spread over 8-10 peers, so each peer should hold
// items from only a few clusters — verify peers have focused interests by
// checking that no peer holds items from every cluster (with enough
// clusters).
func TestAssignToPeersFocusedInterests(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := Markov(MarkovConfig{N: 5000, Dim: 16}, rng)
	cfg := AssignConfig{Peers: 100, Clusters: 14}
	asg := AssignToPeers(data, cfg, rng)
	if asg.Clusters < 2 {
		t.Skip("degenerate clustering")
	}
	// With 14 clusters spread over <=10 of 100 peers each, the expected
	// number of clusters per peer is ~1.4; assert nobody is near 14.
	for p, items := range asg.PeerItems {
		if len(items) > len(data)/2 {
			t.Errorf("peer %d holds %d items — distribution far too skewed", p, len(items))
		}
	}
}

func TestAssignPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := [][]float64{{1, 2}}
	for _, fn := range []func(){
		func() { AssignToPeers(data, AssignConfig{Peers: 0}, rng) },
		func() { AssignToPeers(data, AssignConfig{Peers: 2}, nil) },
		func() { AssignToPeers(data, AssignConfig{Peers: 2, MinSpread: 5, MaxSpread: 3}, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkMarkov1000x512(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Markov(MarkovConfig{N: 1000, Dim: 512}, rand.New(rand.NewSource(int64(i))))
	}
}

func BenchmarkALOI100x12x64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ALOI(ALOIConfig{Objects: 100, Views: 12, Bins: 64}, rand.New(rand.NewSource(int64(i))))
	}
}
