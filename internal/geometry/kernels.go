package geometry

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// RandomSpheres draws n cluster spheres of the shape levelEps feeds the Eq 8
// solver: centroid distances uniform in [0,5), radii in [0,1), and 1–50
// items each. Shared by the solver benchmarks and the `kernels` experiment.
func RandomSpheres(n int, rng *rand.Rand) []SphereAt {
	spheres := make([]SphereAt, n)
	for i := range spheres {
		spheres[i] = SphereAt{
			Dist:   rng.Float64() * 5,
			Radius: rng.Float64(),
			Items:  1 + rng.Intn(50),
		}
	}
	return spheres
}

// CompareSolvers times the optimized SolveEpsForCount against the retained
// Newton-iteration solveEpsReference over rounds random sphere sets of the
// given size and dimension, at target count k. It returns total wall time and
// continued-fraction RegIncBeta evaluations for each solver, and errors if
// the two roots ever disagree (see solutionsAgree). It backs the `kernels`
// experiment of cmd/hyperm-bench.
func CompareSolvers(d, nSpheres, rounds int, k float64, seed int64) (refSeconds, optSeconds float64, refEvals, optEvals int64, err error) {
	if rounds < 1 {
		return 0, 0, 0, 0, fmt.Errorf("geometry: CompareSolvers needs rounds >= 1, got %d", rounds)
	}
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rounds; r++ {
		spheres := RandomSpheres(nSpheres, rng)
		hi := 0.0
		for _, s := range spheres {
			if reach := s.Dist + s.Radius; reach > hi {
				hi = reach
			}
		}

		evals0 := RegIncBetaEvals()
		start := time.Now()
		ref := solveEpsReference(d, k, spheres)
		refSeconds += time.Since(start).Seconds()
		refEvals += RegIncBetaEvals() - evals0

		evals0 = RegIncBetaEvals()
		start = time.Now()
		opt := SolveEpsForCount(d, k, spheres)
		optSeconds += time.Since(start).Seconds()
		optEvals += RegIncBetaEvals() - evals0

		if err := solutionsAgree(d, k, hi, ref, opt, spheres); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("geometry: solvers diverged (d=%d n=%d k=%g round=%d): %w",
				d, nSpheres, k, r, err)
		}
	}
	return refSeconds, optSeconds, refEvals, optEvals, nil
}

// solutionsAgree decides whether two Eq 8 roots are the same answer. Where
// the expected-count curve has healthy slope the roots must coincide to
// 1e-9 (relative to the bracket top hi). On flat plateaus — every sphere
// fully covered or fully disjoint over a stretch of eps — any point of the
// plateau satisfies the solver's |f| stopping tolerance, so two correct
// solvers may legitimately stop at different eps; there the roots agree
// when both reproduce the target count within (a small multiple of) that
// same tolerance.
func solutionsAgree(d int, k, hi, ref, opt float64, spheres []SphereAt) error {
	diff := ref - opt
	if diff < 0 {
		diff = -diff
	}
	if diff <= 1e-9*math.Max(1, hi) {
		return nil
	}
	tol := 2e-9 * math.Max(1, k)
	fr := math.Abs(ExpectedCount(d, ref, spheres) - k)
	fo := math.Abs(ExpectedCount(d, opt, spheres) - k)
	if fr <= tol && fo <= tol {
		return nil
	}
	return fmt.Errorf("ref=%.15g (|f|=%g) opt=%.15g (|f|=%g)", ref, fr, opt, fo)
}
