// Package geometry implements the hypersphere volume machinery behind
// Hyper-M's peer relevance score (Eq 1) and k-nn radius estimation (Eq 5–8):
//
//   - the volume fraction of a hyperspherical cap, both as the paper's
//     closed-form series for even dimensionality (Eq 5) and as a regularized
//     incomplete beta expression valid for every dimensionality d >= 1 (this
//     is the "odd-d analogue" the paper elides for space);
//   - the sphere–sphere intersection fraction (Eq 6–7), i.e. the share of a
//     data-cluster sphere's volume covered by a query sphere;
//   - the numeric inversion of the expected-retrieved-items function (Eq 8)
//     that turns "I need k items" into a range-query radius ε, using a
//     Newton iteration safeguarded by bisection.
package geometry

import (
	"fmt"
	"math"
)

// BallVolume returns the volume of a d-dimensional ball of radius r:
// pi^(d/2) / Gamma(d/2+1) * r^d.
func BallVolume(d int, r float64) float64 {
	if d < 0 {
		panic("geometry: negative dimension")
	}
	if d == 0 {
		return 1
	}
	logV := float64(d)/2*math.Log(math.Pi) - lgamma(float64(d)/2+1) + float64(d)*math.Log(r)
	return math.Exp(logV)
}

// CapFraction returns the fraction of a d-dimensional ball's volume contained
// in the spherical cap of colatitude half-angle phi, measured at the ball's
// center (phi = 0 is an empty cap, phi = pi/2 a half ball, phi = pi the whole
// ball). Valid for every d >= 1.
func CapFraction(d int, phi float64) float64 {
	if d < 1 {
		panic("geometry: CapFraction requires d >= 1")
	}
	switch {
	case phi <= 0:
		return 0
	case phi >= math.Pi:
		return 1
	case phi > math.Pi/2:
		return 1 - CapFraction(d, math.Pi-phi)
	}
	s := math.Sin(phi)
	return 0.5 * RegIncBeta((float64(d)+1)/2, 0.5, s*s)
}

// CapFractionPaperSeries evaluates the paper's Equation 5 verbatim for even
// dimensionality:
//
//	Vcap/Vsphere = (1/pi) * (alpha - cos(alpha) * sum_{i=0}^{(d-2)/2}
//	                (2^{2i} (i!)^2 / (2i+1)!) * sin(alpha)^{2i+1})
//
// It panics when d is odd (the paper's series only covers even d; use
// CapFraction for the general case).
func CapFractionPaperSeries(d int, alpha float64) float64 {
	if d < 2 || d%2 != 0 {
		panic(fmt.Sprintf("geometry: paper series requires even d >= 2, got %d", d))
	}
	if alpha <= 0 {
		return 0
	}
	if alpha >= math.Pi {
		return 1
	}
	sin, cos := math.Sin(alpha), math.Cos(alpha)
	term := 1.0 // 2^{2i}(i!)^2/(2i+1)! at i=0
	sum := 0.0
	sinPow := sin // sin^{2i+1} at i=0
	for i := 0; ; i++ {
		sum += term * sinPow
		if i == (d-2)/2 {
			break
		}
		// ratio of consecutive coefficients: 2(i+1)/(2i+3)
		term *= 2 * float64(i+1) / float64(2*i+3)
		sinPow *= sin * sin
	}
	return (alpha - cos*sum) / math.Pi
}

// IntersectFraction returns Vol(data ∩ query) / Vol(data), the fraction of a
// data-cluster sphere of radius r covered by a query sphere of radius eps
// whose center is at distance b from the cluster centroid, in dimension d
// (paper Eq 6–7 with the containment cases made explicit).
//
// A zero-radius cluster is treated as a point mass: fraction 1 if it lies
// within the query sphere, else 0. A zero-radius query covers zero volume.
func IntersectFraction(d int, r, eps, b float64) float64 {
	if d < 1 {
		panic("geometry: IntersectFraction requires d >= 1")
	}
	if r < 0 || eps < 0 || b < 0 {
		panic("geometry: negative radius or distance")
	}
	if r == 0 {
		if b <= eps {
			return 1
		}
		return 0
	}
	if eps == 0 {
		return 0
	}
	switch {
	case b >= r+eps:
		return 0 // disjoint
	case b+r <= eps:
		return 1 // data sphere inside query sphere
	case b+eps <= r:
		// query sphere inside data sphere: ratio of ball volumes (eps/r)^d
		return math.Exp(float64(d) * (math.Log(eps) - math.Log(r)))
	}
	// Proper lens: the intersection is the sum of two caps (Eq 6). The
	// intersection hyperplane sits at distance x from the data centroid
	// along the center line (cosine rule, Eq 7).
	x := (b*b + r*r - eps*eps) / (2 * b)
	alpha := math.Acos(clamp(x/r, -1, 1))      // half-angle of the data-sphere cap
	beta := math.Acos(clamp((b-x)/eps, -1, 1)) // half-angle of the query-sphere cap
	frac := CapFraction(d, alpha) + CapFraction(d, beta)*math.Exp(float64(d)*(math.Log(eps)-math.Log(r)))
	return clamp(frac, 0, 1)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SphereAt describes a cluster sphere as seen from a query point: its
// centroid distance, radius, and item count. It is the input to the
// expected-count model of Eq 8.
type SphereAt struct {
	Dist   float64 // distance from the query center to the cluster centroid
	Radius float64 // cluster sphere radius
	Items  int     // number of data items the cluster summarizes
}

// ExpectedCount evaluates Eq 8: the number of items a range query of radius
// eps is expected to retrieve, summing each reachable cluster's covered
// volume fraction times its item count.
func ExpectedCount(d int, eps float64, spheres []SphereAt) float64 {
	var k float64
	for _, s := range spheres {
		k += IntersectFraction(d, s.Radius, eps, s.Dist) * float64(s.Items)
	}
	return k
}

// SolveEpsForCount inverts Eq 8: it returns the smallest query radius eps
// whose expected retrieved-item count reaches k, using a Newton iteration
// with a bisection safeguard (the function is monotonically non-decreasing
// in eps, so bracketing is exact).
//
// If k meets or exceeds the total item mass, the radius that covers every
// sphere entirely is returned. If the sphere list is empty or k <= 0, zero
// is returned.
func SolveEpsForCount(d int, k float64, spheres []SphereAt) float64 {
	if len(spheres) == 0 || k <= 0 {
		return 0
	}
	var total float64
	hi := 0.0
	for _, s := range spheres {
		total += float64(s.Items)
		if reach := s.Dist + s.Radius; reach > hi {
			hi = reach
		}
	}
	if k >= total {
		return hi
	}
	lo := 0.0
	f := func(eps float64) float64 { return ExpectedCount(d, eps, spheres) - k }
	// Newton with numeric derivative, safeguarded: every step must stay in
	// [lo, hi]; otherwise fall back to bisection on the bracketing interval.
	eps := hi / 2
	const iters = 100
	for i := 0; i < iters; i++ {
		fv := f(eps)
		if math.Abs(fv) < 1e-9*math.Max(1, k) || hi-lo < 1e-12*math.Max(1, hi) {
			break
		}
		if fv > 0 {
			hi = eps
		} else {
			lo = eps
		}
		h := 1e-6 * math.Max(eps, 1e-6)
		df := (f(eps+h) - f(eps-h)) / (2 * h)
		var next float64
		if df > 0 {
			next = eps - fv/df
		}
		if df <= 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2 // bisection fallback
		}
		eps = next
	}
	return eps
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// computed by the standard continued-fraction expansion (Lentz's method).
func RegIncBeta(a, b, x float64) float64 {
	if a <= 0 || b <= 0 {
		panic("geometry: RegIncBeta requires a, b > 0")
	}
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	logBt := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log1p(-x)
	bt := math.Exp(logBt)
	if x < (a+1)/(a+b+2) {
		return bt * betacf(a, b, x) / a
	}
	return 1 - bt*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// (Numerical Recipes §6.4, modified Lentz).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		epsTol  = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsTol {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
