// Package geometry implements the hypersphere volume machinery behind
// Hyper-M's peer relevance score (Eq 1) and k-nn radius estimation (Eq 5–8):
//
//   - the volume fraction of a hyperspherical cap, both as the paper's
//     closed-form series for even dimensionality (Eq 5) and as a regularized
//     incomplete beta expression valid for every dimensionality d >= 1 (this
//     is the "odd-d analogue" the paper elides for space);
//   - the sphere–sphere intersection fraction (Eq 6–7), i.e. the share of a
//     data-cluster sphere's volume covered by a query sphere;
//   - the numeric inversion of the expected-retrieved-items function (Eq 8)
//     that turns "I need k items" into a range-query radius ε, using a
//     Newton iteration safeguarded by bisection.
package geometry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// BallVolume returns the volume of a d-dimensional ball of radius r:
// pi^(d/2) / Gamma(d/2+1) * r^d.
func BallVolume(d int, r float64) float64 {
	if d < 0 {
		panic("geometry: negative dimension")
	}
	if d == 0 {
		return 1
	}
	logV := float64(d)/2*math.Log(math.Pi) - lgamma(float64(d)/2+1) + float64(d)*math.Log(r)
	return math.Exp(logV)
}

// CapFraction returns the fraction of a d-dimensional ball's volume contained
// in the spherical cap of colatitude half-angle phi, measured at the ball's
// center (phi = 0 is an empty cap, phi = pi/2 a half ball, phi = pi the whole
// ball). Valid for every d >= 1.
func CapFraction(d int, phi float64) float64 {
	if d < 1 {
		panic("geometry: CapFraction requires d >= 1")
	}
	switch {
	case phi <= 0:
		return 0
	case phi >= math.Pi:
		return 1
	case phi > math.Pi/2:
		return 1 - CapFraction(d, math.Pi-phi)
	}
	s := math.Sin(phi)
	return 0.5 * RegIncBeta((float64(d)+1)/2, 0.5, s*s)
}

// CapFractionPaperSeries evaluates the paper's Equation 5 verbatim for even
// dimensionality:
//
//	Vcap/Vsphere = (1/pi) * (alpha - cos(alpha) * sum_{i=0}^{(d-2)/2}
//	                (2^{2i} (i!)^2 / (2i+1)!) * sin(alpha)^{2i+1})
//
// It panics when d is odd (the paper's series only covers even d; use
// CapFraction for the general case).
func CapFractionPaperSeries(d int, alpha float64) float64 {
	if d < 2 || d%2 != 0 {
		panic(fmt.Sprintf("geometry: paper series requires even d >= 2, got %d", d))
	}
	if alpha <= 0 {
		return 0
	}
	if alpha >= math.Pi {
		return 1
	}
	sin, cos := math.Sin(alpha), math.Cos(alpha)
	term := 1.0 // 2^{2i}(i!)^2/(2i+1)! at i=0
	sum := 0.0
	sinPow := sin // sin^{2i+1} at i=0
	for i := 0; ; i++ {
		sum += term * sinPow
		if i == (d-2)/2 {
			break
		}
		// ratio of consecutive coefficients: 2(i+1)/(2i+3)
		term *= 2 * float64(i+1) / float64(2*i+3)
		sinPow *= sin * sin
	}
	return (alpha - cos*sum) / math.Pi
}

// IntersectFraction returns Vol(data ∩ query) / Vol(data), the fraction of a
// data-cluster sphere of radius r covered by a query sphere of radius eps
// whose center is at distance b from the cluster centroid, in dimension d
// (paper Eq 6–7 with the containment cases made explicit).
//
// A zero-radius cluster is treated as a point mass: fraction 1 if it lies
// within the query sphere, else 0. A zero-radius query covers zero volume.
func IntersectFraction(d int, r, eps, b float64) float64 {
	if d < 1 {
		panic("geometry: IntersectFraction requires d >= 1")
	}
	if r < 0 || eps < 0 || b < 0 {
		panic("geometry: negative radius or distance")
	}
	if r == 0 {
		if b <= eps {
			return 1
		}
		return 0
	}
	if eps == 0 {
		return 0
	}
	switch {
	case b >= r+eps:
		return 0 // disjoint
	case b+r <= eps:
		return 1 // data sphere inside query sphere
	case b+eps <= r:
		// query sphere inside data sphere: ratio of ball volumes (eps/r)^d
		return math.Exp(float64(d) * (math.Log(eps) - math.Log(r)))
	}
	// Proper lens: the intersection is the sum of two caps (Eq 6). The
	// intersection hyperplane sits at distance x from the data centroid
	// along the center line (cosine rule, Eq 7).
	x := (b*b + r*r - eps*eps) / (2 * b)
	alpha := math.Acos(clamp(x/r, -1, 1))      // half-angle of the data-sphere cap
	beta := math.Acos(clamp((b-x)/eps, -1, 1)) // half-angle of the query-sphere cap
	frac := CapFraction(d, alpha) + CapFraction(d, beta)*math.Exp(float64(d)*(math.Log(eps)-math.Log(r)))
	return clamp(frac, 0, 1)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SphereAt describes a cluster sphere as seen from a query point: its
// centroid distance, radius, and item count. It is the input to the
// expected-count model of Eq 8.
type SphereAt struct {
	Dist   float64 // distance from the query center to the cluster centroid
	Radius float64 // cluster sphere radius
	Items  int     // number of data items the cluster summarizes
}

// ExpectedCount evaluates Eq 8: the number of items a range query of radius
// eps is expected to retrieve, summing each reachable cluster's covered
// volume fraction times its item count.
func ExpectedCount(d int, eps float64, spheres []SphereAt) float64 {
	var k float64
	for _, s := range spheres {
		k += IntersectFraction(d, s.Radius, eps, s.Dist) * float64(s.Items)
	}
	return k
}

// sphereInv is one sphere of an epsSolver with its eps-independent
// invariants precomputed: the items count as a float, log(Radius) for the
// containment-ratio case, and the point-mass flag.
type sphereInv struct {
	dist, radius float64
	items        float64
	logR         float64
	point        bool // radius == 0: treated as a point mass
}

// epsSolver evaluates Eq 8 repeatedly at fixed dimension and sphere set —
// the shape of the root-finding loop inside SolveEpsForCount. Everything
// that does not depend on eps is computed once: per-sphere invariants, the
// dimension as a float, and either the Eq 5 series coefficients (even d) or
// the lgamma prefactor of the one RegIncBeta (a, b) pair a fixed subspace
// dimension ever uses (odd d). The eps-dependent case analysis mirrors
// ExpectedCount/IntersectFraction exactly; the cap fraction itself comes
// from whichever of the paper's two equivalent forms is cheaper for the
// dimension's parity, with the forms pinned together to 1e-9 by
// TestCapFractionPaperSeriesAllEvenD.
type epsSolver struct {
	d      int
	df     float64 // float64(d)
	a, b   float64 // CapFraction's RegIncBeta parameters: ((d+1)/2, 1/2)
	lg     float64 // lgamma prefactor for (a, b); symmetric, so valid for (b, a)
	series []float64
	sph    []sphereInv
}

func newEpsSolver(d int, spheres []SphereAt) *epsSolver {
	if d < 1 {
		panic("geometry: SolveEpsForCount requires d >= 1")
	}
	s := &epsSolver{
		d:   d,
		df:  float64(d),
		a:   (float64(d) + 1) / 2,
		b:   0.5,
		sph: make([]sphereInv, len(spheres)),
	}
	s.lg = lgammaPrefactor(s.a, s.b)
	if d >= 2 && d%2 == 0 {
		// For even d the paper's Eq 5 closed-form series evaluates the cap
		// fraction with (d/2) multiply-adds and no continued fraction at
		// all. Precompute its coefficients 2^{2i}(i!)^2/(2i+1)! once. (The
		// lgamma prefactor is still kept: tiny caps feeding the scaled lens
		// term fall back to the beta form, see capFraction.)
		s.series = make([]float64, d/2)
		term := 1.0
		for i := range s.series {
			s.series[i] = term
			term *= 2 * float64(i+1) / float64(2*i+3)
		}
	}
	for i, sp := range spheres {
		if sp.Radius < 0 || sp.Dist < 0 {
			panic("geometry: negative radius or distance")
		}
		s.sph[i] = sphereInv{
			dist:   sp.Dist,
			radius: sp.Radius,
			items:  float64(sp.Items),
			point:  sp.Radius == 0,
		}
		if !s.sph[i].point {
			s.sph[i].logR = math.Log(sp.Radius)
		}
	}
	return s
}

// expected is ExpectedCount with the solver's precomputed invariants:
// bit-identical results, none of the per-call recomputation.
func (s *epsSolver) expected(eps float64) float64 {
	var k float64
	for i := range s.sph {
		k += s.intersect(&s.sph[i], eps) * s.sph[i].items
	}
	return k
}

// intersect mirrors IntersectFraction case-for-case using the precomputed
// invariants. The cheap disjoint/containment classifications run before any
// transcendental work, so fully-covered and unreached spheres never touch
// the RegIncBeta path.
func (s *epsSolver) intersect(p *sphereInv, eps float64) float64 {
	if p.point {
		if p.dist <= eps {
			return 1
		}
		return 0
	}
	if eps == 0 {
		return 0
	}
	b, r := p.dist, p.radius
	switch {
	case b >= r+eps:
		return 0 // disjoint
	case b+r <= eps:
		return 1 // data sphere inside query sphere
	case b+eps <= r:
		// query sphere inside data sphere: ratio of ball volumes (eps/r)^d
		return math.Exp(s.df * (math.Log(eps) - p.logR))
	}
	x := (b*b + r*r - eps*eps) / (2 * b)
	alpha := math.Acos(clamp(x/r, -1, 1))      // half-angle of the data-sphere cap
	beta := math.Acos(clamp((b-x)/eps, -1, 1)) // half-angle of the query-sphere cap
	frac := s.capFraction(alpha, false) + s.capFraction(beta, true)*math.Exp(s.df*(math.Log(eps)-p.logR))
	return clamp(frac, 0, 1)
}

// capFraction is CapFraction specialized to the solver's fixed dimension.
// Even d uses the precomputed Eq 5 series — a handful of multiply-adds in
// place of a Lentz continued fraction; TestCapFractionPaperSeriesAllEvenD
// pins the two forms together to 1e-9 for every even d <= 512. Odd d keeps
// the incomplete-beta form with the memoized lgamma prefactor.
//
// The series computes (phi - cos*sum)/pi, a difference of near-equal O(1)
// terms when the cap is tiny: its ~1e-16 ABSOLUTE error is fine wherever
// the fraction enters the lens sum directly, but the query-sphere cap is
// multiplied by (eps/r)^d — up to ~1e18 — so that operand needs RELATIVE
// accuracy a cancelled difference cannot offer. Callers flag that scaled
// position; small series results there fall back to the beta form, whose
// continued fraction is relatively accurate at any magnitude. Reflection at
// pi/2 happens first, so the series always runs with cos(phi) >= 0
// (all-positive terms) and a reflected complement only ever needs absolute
// accuracy.
func (s *epsSolver) capFraction(phi float64, scaled bool) float64 {
	switch {
	case phi <= 0:
		return 0
	case phi >= math.Pi:
		return 1
	case phi > math.Pi/2:
		return 1 - s.capFraction(math.Pi-phi, false)
	}
	if s.series != nil {
		sin, cos := math.Sin(phi), math.Cos(phi)
		sum := 0.0
		sinPow := sin
		for _, c := range s.series {
			sum += c * sinPow
			sinPow *= sin * sin
		}
		v := (phi - cos*sum) / math.Pi
		if !scaled || v >= 1e-3 {
			return v
		}
	}
	sin := math.Sin(phi)
	return 0.5 * regIncBetaPre(s.a, s.b, sin*sin, s.lg)
}

// SolveEpsForCount inverts Eq 8: it returns the smallest query radius eps
// whose expected retrieved-item count reaches k. The function is
// monotonically non-decreasing in eps and bracketed by construction, so the
// root is found with an Illinois-damped secant/bisection hybrid — one Eq 8
// evaluation per step, against the three (value plus centered numeric
// derivative) the previous Newton iteration spent — over an evaluator with
// all eps-independent sphere invariants precomputed (see epsSolver). The
// stopping tolerances are the old solver's; solveEpsReference agreement is
// covered by TestPropSolverMatchesReference.
//
// If k meets or exceeds the total item mass, the radius that covers every
// sphere entirely is returned. If the sphere list is empty or k <= 0, zero
// is returned.
func SolveEpsForCount(d int, k float64, spheres []SphereAt) float64 {
	if len(spheres) == 0 || k <= 0 {
		return 0
	}
	var total float64
	hi := 0.0
	for _, s := range spheres {
		total += float64(s.Items)
		if reach := s.Dist + s.Radius; reach > hi {
			hi = reach
		}
	}
	if k >= total {
		return hi
	}
	sol := newEpsSolver(d, spheres)
	// Bracket endpoints with known signs: expected(0)-k = -k < 0 and
	// expected(hi)-k = total-k > 0 (at hi every sphere is fully covered).
	lo, flo := 0.0, -k
	fhi := total - k
	eps := hi / 2
	side := 0
	const iters = 100
	for i := 0; i < iters; i++ {
		fv := sol.expected(eps) - k
		if math.Abs(fv) < 1e-9*math.Max(1, k) || hi-lo < 1e-12*math.Max(1, hi) {
			break
		}
		if fv > 0 {
			hi, fhi = eps, fv
			if side == 1 {
				// Illinois damping: the opposite endpoint is stale, halve
				// its weight so the secant cannot stagnate on one side.
				flo *= 0.5
			}
			side = 1
		} else {
			lo, flo = eps, fv
			if side == -1 {
				fhi *= 0.5
			}
			side = -1
		}
		next := lo - flo*(hi-lo)/(fhi-flo)
		if !(next > lo && next < hi) {
			next = (lo + hi) / 2 // bisection fallback
		}
		eps = next
	}
	return eps
}

// betaKey identifies one (a, b) parameter pair of RegIncBeta.
type betaKey struct{ a, b float64 }

// lgammaPrefactors memoizes the x-independent lgamma combination of
// RegIncBeta for the parameter pairs the cap-volume machinery recycles: at a
// fixed subspace dimension d every CapFraction call uses the same
// ((d+1)/2, 1/2) pair, so the three Lgamma evaluations are paid once per
// dimension instead of once per call. Only pairs with a half-integer 1/2
// member are cached, which keeps the map bounded by the set of distinct
// dimensions ever used.
var lgammaPrefactors sync.Map // betaKey -> float64

// lgammaPrefactor returns lgamma(a+b) - lgamma(a) - lgamma(b), memoized for
// the recurring cap-fraction parameter family. The value is computed with
// the same association order RegIncBeta historically used, so memoization
// changes no bits.
func lgammaPrefactor(a, b float64) float64 {
	cacheable := a == 0.5 || b == 0.5
	key := betaKey{a, b}
	if cacheable {
		if v, ok := lgammaPrefactors.Load(key); ok {
			return v.(float64)
		}
	}
	lg := lgamma(a+b) - lgamma(a) - lgamma(b)
	if cacheable {
		lgammaPrefactors.Store(key, lg)
	}
	return lg
}

// regIncBetaEvals counts continued-fraction RegIncBeta evaluations — the
// expensive path the Eq 8 solver tries to avoid. The counter is atomic
// benchmark instrumentation (see RegIncBetaEvals); its cost is noise next to
// the Lentz iteration it counts.
var regIncBetaEvals atomic.Int64

// RegIncBetaEvals returns the cumulative number of continued-fraction
// RegIncBeta evaluations performed by this process. Benchmarks and the
// `kernels` experiment difference it around a workload to report
// evaluations per solve.
func RegIncBetaEvals() int64 { return regIncBetaEvals.Load() }

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// computed by the standard continued-fraction expansion (Lentz's method).
func RegIncBeta(a, b, x float64) float64 {
	if a <= 0 || b <= 0 {
		panic("geometry: RegIncBeta requires a, b > 0")
	}
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	return regIncBetaPre(a, b, x, lgammaPrefactor(a, b))
}

// regIncBetaPre is RegIncBeta with the lgamma prefactor supplied by the
// caller (memoized globally or cached in an epsSolver). The prefactor and
// the x-dependent terms are combined in the historical association order, so
// results are bit-identical to the unmemoized computation.
func regIncBetaPre(a, b, x, lg float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	regIncBetaEvals.Add(1)
	logBt := lg + a*math.Log(x) + b*math.Log1p(-x)
	bt := math.Exp(logBt)
	if x < (a+1)/(a+b+2) {
		return bt * betacf(a, b, x) / a
	}
	return 1 - bt*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// (Numerical Recipes §6.4, modified Lentz).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		epsTol  = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsTol {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
