package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBallVolume(t *testing.T) {
	cases := []struct {
		d    int
		r    float64
		want float64
	}{
		{1, 1, 2},               // interval length
		{2, 1, math.Pi},         // disk area
		{3, 1, 4 * math.Pi / 3}, // ball volume
		{2, 2, 4 * math.Pi},     // scaling r^d
		{4, 1, math.Pi * math.Pi / 2},
	}
	for _, tc := range cases {
		if got := BallVolume(tc.d, tc.r); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("BallVolume(%d,%v) = %v, want %v", tc.d, tc.r, got, tc.want)
		}
	}
}

func TestCapFractionEndpoints(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4, 7, 16, 64} {
		if got := CapFraction(d, 0); got != 0 {
			t.Errorf("d=%d: CapFraction(0) = %v", d, got)
		}
		if got := CapFraction(d, math.Pi); got != 1 {
			t.Errorf("d=%d: CapFraction(pi) = %v", d, got)
		}
		if got := CapFraction(d, math.Pi/2); math.Abs(got-0.5) > 1e-12 {
			t.Errorf("d=%d: CapFraction(pi/2) = %v, want 0.5", d, got)
		}
	}
}

func TestCapFraction1D(t *testing.T) {
	// In R^1 the ball is [-r, r]; a cap with colatitude phi is the segment
	// beyond r*cos(phi), of length r(1-cos phi), fraction (1-cos phi)/2.
	for _, phi := range []float64{0.1, 0.7, 1.2, 2.0, 3.0} {
		want := (1 - math.Cos(phi)) / 2
		if got := CapFraction(1, phi); math.Abs(got-want) > 1e-12 {
			t.Errorf("CapFraction(1, %v) = %v, want %v", phi, got, want)
		}
	}
}

func TestCapFraction2DClosedForm(t *testing.T) {
	// Circular segment area fraction: (phi - sin phi cos phi)/pi.
	for _, phi := range []float64{0.2, 0.9, math.Pi / 3, 2.5} {
		want := (phi - math.Sin(phi)*math.Cos(phi)) / math.Pi
		if got := CapFraction(2, phi); math.Abs(got-want) > 1e-12 {
			t.Errorf("CapFraction(2, %v) = %v, want %v", phi, got, want)
		}
	}
}

func TestCapFraction3DClosedForm(t *testing.T) {
	// Spherical cap of height h = r(1-cos phi): V = pi h^2 (3r - h)/3,
	// ball V = 4 pi r^3/3, r = 1.
	for _, phi := range []float64{0.3, 1.0, 1.5, 2.2} {
		h := 1 - math.Cos(phi)
		want := h * h * (3 - h) / 4
		if got := CapFraction(3, phi); math.Abs(got-want) > 1e-12 {
			t.Errorf("CapFraction(3, %v) = %v, want %v", phi, got, want)
		}
	}
}

// The paper's Eq 5 series must agree with the incomplete-beta form for every
// even dimension — this validates our implementation of the published formula.
func TestPaperSeriesMatchesBetaForm(t *testing.T) {
	for _, d := range []int{2, 4, 6, 8, 16, 32, 64, 256} {
		for _, alpha := range []float64{0.05, 0.3, 0.8, math.Pi / 2, 2.0, 3.0} {
			series := CapFractionPaperSeries(d, alpha)
			beta := CapFraction(d, alpha)
			if math.Abs(series-beta) > 1e-9 {
				t.Errorf("d=%d alpha=%v: series %v vs beta %v", d, alpha, series, beta)
			}
		}
	}
}

func TestPaperSeriesPanicsOnOddD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd d")
		}
	}()
	CapFractionPaperSeries(3, 1)
}

func TestCapFractionMonotone(t *testing.T) {
	for _, d := range []int{2, 5, 32} {
		prev := -1.0
		for phi := 0.0; phi <= math.Pi; phi += 0.01 {
			got := CapFraction(d, phi)
			if got < prev-1e-12 {
				t.Fatalf("d=%d: CapFraction not monotone at phi=%v", d, phi)
			}
			prev = got
		}
	}
}

// Monte Carlo cross-check of CapFraction in low dimensions.
func TestCapFractionMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	for _, d := range []int{2, 3, 4} {
		for _, phi := range []float64{0.6, 1.2, 2.1} {
			// Cap: points x in unit ball with x_0 >= cos(phi).
			threshold := math.Cos(phi)
			inside, inCap := 0, 0
			for i := 0; i < n; i++ {
				x := make([]float64, d)
				norm2 := 0.0
				for j := range x {
					x[j] = rng.Float64()*2 - 1
					norm2 += x[j] * x[j]
				}
				if norm2 > 1 {
					continue
				}
				inside++
				if x[0] >= threshold {
					inCap++
				}
			}
			got := float64(inCap) / float64(inside)
			want := CapFraction(d, phi)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("d=%d phi=%v: MC %v vs analytic %v", d, phi, got, want)
			}
		}
	}
}

func TestIntersectFractionCases(t *testing.T) {
	cases := []struct {
		name            string
		d               int
		r, eps, b, want float64
	}{
		{"disjoint", 2, 1, 1, 3, 0},
		{"touching", 2, 1, 1, 2, 0},
		{"data inside query", 3, 1, 5, 1, 1},
		{"identical spheres", 2, 1, 1, 0, 1},
		{"query inside data d2", 2, 2, 1, 0, 0.25},    // (1/2)^2
		{"query inside data d3", 3, 2, 1, 0.5, 0.125}, // (1/2)^3
		{"point cluster hit", 4, 0, 1, 0.5, 1},
		{"point cluster miss", 4, 0, 1, 2, 0},
		{"zero query", 3, 1, 0, 0.5, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IntersectFraction(tc.d, tc.r, tc.eps, tc.b); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestIntersectFractionHalfOverlap2D(t *testing.T) {
	// Two unit circles at distance b: standard lens-area formula.
	r, eps := 1.0, 1.0
	for _, b := range []float64{0.5, 1.0, 1.5} {
		lens := 2*r*r*math.Acos(b/(2*r)) - b/2*math.Sqrt(4*r*r-b*b)
		want := lens / (math.Pi * r * r)
		if got := IntersectFraction(2, r, eps, b); math.Abs(got-want) > 1e-9 {
			t.Errorf("b=%v: got %v, want %v", b, got, want)
		}
	}
}

// Monte Carlo cross-check of the lens fraction in 3-D with unequal radii.
func TestIntersectFractionMonteCarlo3D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r, eps, b := 1.0, 0.8, 0.9
	const n = 300000
	inside, inBoth := 0, 0
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		n2 := x[0]*x[0] + x[1]*x[1] + x[2]*x[2]
		if n2 > r*r {
			continue
		}
		inside++
		dx := x[0] - b
		if dx*dx+x[1]*x[1]+x[2]*x[2] <= eps*eps {
			inBoth++
		}
	}
	got := float64(inBoth) / float64(inside)
	want := IntersectFraction(3, r, eps, b)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("MC %v vs analytic %v", got, want)
	}
}

// Property: the intersection fraction is within [0,1] and monotone in eps.
func TestPropIntersectFractionMonotoneInEps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(16)
		r := rng.Float64()*2 + 0.01
		b := rng.Float64() * 3
		prev := 0.0
		for eps := 0.0; eps <= 4; eps += 0.05 {
			got := IntersectFraction(d, r, eps, b)
			if got < prev-1e-9 || got < 0 || got > 1 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExpectedCount(t *testing.T) {
	spheres := []SphereAt{
		{Dist: 0, Radius: 1, Items: 100}, // fully covered by eps >= 1
		{Dist: 10, Radius: 1, Items: 50}, // untouched by small eps
	}
	if got := ExpectedCount(3, 1.0, spheres); math.Abs(got-100) > 1e-9 {
		t.Errorf("ExpectedCount = %v, want 100", got)
	}
	if got := ExpectedCount(3, 12, spheres); math.Abs(got-150) > 1e-9 {
		t.Errorf("ExpectedCount = %v, want 150", got)
	}
}

func TestSolveEpsForCount(t *testing.T) {
	spheres := []SphereAt{
		{Dist: 0, Radius: 1, Items: 100},
		{Dist: 5, Radius: 1, Items: 100},
	}
	d := 3
	for _, k := range []float64{10, 50, 99, 150} {
		eps := SolveEpsForCount(d, k, spheres)
		got := ExpectedCount(d, eps, spheres)
		if math.Abs(got-k) > 0.01*k {
			t.Errorf("k=%v: solved eps=%v yields count %v", k, eps, got)
		}
	}
}

func TestSolveEpsForCountEdges(t *testing.T) {
	if got := SolveEpsForCount(3, 5, nil); got != 0 {
		t.Errorf("empty spheres: got %v, want 0", got)
	}
	spheres := []SphereAt{{Dist: 2, Radius: 1, Items: 10}}
	if got := SolveEpsForCount(3, 0, spheres); got != 0 {
		t.Errorf("k=0: got %v, want 0", got)
	}
	// k beyond total mass: radius must cover everything.
	eps := SolveEpsForCount(3, 100, spheres)
	if eps < 3 {
		t.Errorf("k>total: eps=%v should cover dist+radius=3", eps)
	}
}

// Property: the solver's output always reproduces k within tolerance when k
// is attainable (0 < k < total items).
func TestPropSolverInvertsExpectedCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		spheres := make([]SphereAt, n)
		total := 0
		for i := range spheres {
			items := 1 + rng.Intn(100)
			total += items
			spheres[i] = SphereAt{
				Dist:   rng.Float64() * 5,
				Radius: rng.Float64() * 2,
				Items:  items,
			}
		}
		k := rng.Float64() * float64(total) * 0.9
		if k <= 0 {
			return true
		}
		eps := SolveEpsForCount(d, k, spheres)
		got := ExpectedCount(d, eps, spheres)
		return math.Abs(got-k) <= 0.02*float64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the optimized Illinois solver agrees with the retained Newton
// reference to 1e-9 across random sphere sets, dimensions and targets —
// satellite (c) of the kernel-speedup PR.
func TestPropSolverMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(16)
		n := 1 + rng.Intn(60)
		spheres := RandomSpheres(n, rng)
		if seed%5 == 0 {
			// Exercise point masses and duplicate geometry too.
			spheres[0].Radius = 0
			if n > 1 {
				spheres[1] = spheres[0]
			}
		}
		total := 0
		hi := 0.0
		for _, s := range spheres {
			total += s.Items
			if reach := s.Dist + s.Radius; reach > hi {
				hi = reach
			}
		}
		for _, frac := range []float64{0.01, 0.25, 0.5, 0.9, 1.5} {
			k := frac * float64(total)
			ref := solveEpsReference(d, k, spheres)
			opt := SolveEpsForCount(d, k, spheres)
			if err := solutionsAgree(d, k, hi, ref, opt, spheres); err != nil {
				t.Errorf("seed=%d d=%d n=%d k=%v: %v", seed, d, n, k, err)
			}
		}
	}
}

// The paper's Eq 5 series and the incomplete-beta form must agree for every
// even dimension up to 512, not just a sampled subset — satellite (c).
func TestCapFractionPaperSeriesAllEvenD(t *testing.T) {
	for d := 2; d <= 512; d += 2 {
		for _, alpha := range []float64{0.05, 0.5, 1.0, math.Pi / 2, 2.2, 3.0} {
			series := CapFractionPaperSeries(d, alpha)
			beta := CapFraction(d, alpha)
			if math.Abs(series-beta) > 1e-9 {
				t.Errorf("d=%d alpha=%v: series %v vs beta %v", d, alpha, series, beta)
			}
		}
	}
}

func TestCompareSolvers(t *testing.T) {
	refSec, optSec, refEvals, optEvals, err := CompareSolvers(8, 50, 3, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if refSec <= 0 || optSec <= 0 {
		t.Errorf("non-positive timings: ref=%v opt=%v", refSec, optSec)
	}
	if refEvals <= 0 {
		t.Errorf("non-positive reference eval count: %d", refEvals)
	}
	if optEvals*3 > refEvals {
		t.Errorf("optimized solver used %d RegIncBeta evals, reference %d — expected >= 3x fewer", optEvals, refEvals)
	}
	if _, _, _, _, err := CompareSolvers(8, 50, 0, 100, 7); err == nil {
		t.Error("rounds=0 should error")
	}
}

func TestRegIncBetaKnown(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(1, b) = 1-(1-x)^b.
	if got := RegIncBeta(1, 3, 0.25); math.Abs(got-(1-math.Pow(0.75, 3))) > 1e-12 {
		t.Errorf("I_0.25(1,3) = %v", got)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := RegIncBeta(2.5, 1.5, 0.3) + RegIncBeta(1.5, 2.5, 0.7); math.Abs(got-1) > 1e-12 {
		t.Errorf("symmetry violated: %v", got)
	}
	if RegIncBeta(2, 2, 0) != 0 || RegIncBeta(2, 2, 1) != 1 {
		t.Error("endpoints wrong")
	}
}

func TestIntersectFractionPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { IntersectFraction(0, 1, 1, 1) },
		func() { IntersectFraction(2, -1, 1, 1) },
		func() { CapFraction(0, 1) },
		func() { RegIncBeta(0, 1, 0.5) },
		func() { BallVolume(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkIntersectFraction256D(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IntersectFraction(256, 1.0, 0.9, 1.2)
	}
}

// BenchmarkSolveEps compares the optimized Illinois Eq 8 solver against the
// retained Newton reference on the levelEps workload shape (50 spheres,
// d=8, k=100). The betaevals/op metric counts continued-fraction RegIncBeta
// evaluations — the acceptance criterion is >= 3x fewer on the optimized
// path.
func BenchmarkSolveEps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	spheres := RandomSpheres(50, rng)
	run := func(b *testing.B, solve func(int, float64, []SphereAt) float64) {
		b.ReportAllocs()
		evals0 := RegIncBetaEvals()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solve(8, 100, spheres)
		}
		b.StopTimer()
		b.ReportMetric(float64(RegIncBetaEvals()-evals0)/float64(b.N), "betaevals/op")
	}
	b.Run("opt", func(b *testing.B) { run(b, SolveEpsForCount) })
	b.Run("ref", func(b *testing.B) { run(b, solveEpsReference) })
}
