package geometry

import "math"

// solveEpsReference is the pre-optimization Eq 8 inversion: a Newton
// iteration with a centered numeric derivative (three full ExpectedCount
// evaluations per step) safeguarded by bisection. It is retained verbatim as
// the golden oracle for the optimized SolveEpsForCount —
// TestPropSolverMatchesReference checks agreement to 1e-9 and
// geometry.CompareSolvers times the two and counts their RegIncBeta
// evaluations.
func solveEpsReference(d int, k float64, spheres []SphereAt) float64 {
	if len(spheres) == 0 || k <= 0 {
		return 0
	}
	var total float64
	hi := 0.0
	for _, s := range spheres {
		total += float64(s.Items)
		if reach := s.Dist + s.Radius; reach > hi {
			hi = reach
		}
	}
	if k >= total {
		return hi
	}
	lo := 0.0
	f := func(eps float64) float64 { return ExpectedCount(d, eps, spheres) - k }
	// Newton with numeric derivative, safeguarded: every step must stay in
	// [lo, hi]; otherwise fall back to bisection on the bracketing interval.
	eps := hi / 2
	const iters = 100
	for i := 0; i < iters; i++ {
		fv := f(eps)
		if math.Abs(fv) < 1e-9*math.Max(1, k) || hi-lo < 1e-12*math.Max(1, hi) {
			break
		}
		if fv > 0 {
			hi = eps
		} else {
			lo = eps
		}
		h := 1e-6 * math.Max(eps, 1e-6)
		df := (f(eps+h) - f(eps-h)) / (2 * h)
		var next float64
		if df > 0 {
			next = eps - fv/df
		}
		if df <= 0 || next <= lo || next >= hi {
			next = (lo + hi) / 2 // bisection fallback
		}
		eps = next
	}
	return eps
}
