// Package zorder implements the Morton (z-order) space-filling curve
// machinery shared by the one-dimensional overlays (hyperm/internal/ring and
// hyperm/internal/baton): interleaving multi-dimensional keys into integer
// z-values, decomposing a contiguous z-range into maximal aligned blocks,
// and decoding a block back into the axis-aligned box it covers. Those three
// operations are what let a 1-d overlay answer multi-dimensional sphere
// inserts and searches exactly.
package zorder

import (
	"fmt"
	"math"
)

// Curve is a fixed-resolution z-order curve over [0,1)^Dim.
type Curve struct {
	dim     int
	bitsPer int
	total   uint
}

// NewCurve picks a per-dimension resolution that keeps the total z-value
// within 48 bits (bitsPer = clamp(48/dim, 1, 16)).
func NewCurve(dim int) (Curve, error) {
	if dim < 1 {
		return Curve{}, fmt.Errorf("zorder: dimension must be >= 1, got %d", dim)
	}
	bitsPer := 48 / dim
	if bitsPer > 16 {
		bitsPer = 16
	}
	if bitsPer < 1 {
		bitsPer = 1
	}
	return Curve{dim: dim, bitsPer: bitsPer, total: uint(bitsPer * dim)}, nil
}

// Dim returns the curve's dimensionality.
func (c Curve) Dim() int { return c.dim }

// TotalBits returns the number of bits in a z-value.
func (c Curve) TotalBits() uint { return c.total }

// Space returns the number of cells, 2^TotalBits.
func (c Curve) Space() uint64 { return uint64(1) << c.total }

// Z interleaves a key in [0,1)^dim into its integer z-value.
func (c Curve) Z(key []float64) uint64 {
	if len(key) != c.dim {
		panic(fmt.Sprintf("zorder: key dimension %d, curve dimension %d", len(key), c.dim))
	}
	cells := make([]uint64, c.dim)
	scale := float64(uint64(1) << uint(c.bitsPer))
	for i, v := range key {
		cell := uint64(v * scale)
		if cell >= uint64(1)<<uint(c.bitsPer) {
			cell = uint64(1)<<uint(c.bitsPer) - 1
		}
		cells[i] = cell
	}
	var z uint64
	// Bit t of the z-value (t=0 most significant) takes bit
	// (bitsPer-1 - t/dim) of dimension t%dim.
	for t := uint(0); t < c.total; t++ {
		dim := int(t) % c.dim
		bitIdx := uint(c.bitsPer-1) - t/uint(c.dim)
		bit := (cells[dim] >> bitIdx) & 1
		z |= bit << (c.total - 1 - t)
	}
	return z
}

// BlockBox decodes the aligned z-block [z0, z0+2^free) into its per-dim
// half-open intervals in [0,1)^dim.
func (c Curve) BlockBox(z0 uint64, free uint) (lo, hi []float64) {
	lo = make([]float64, c.dim)
	hi = make([]float64, c.dim)
	fixed := c.total - free
	vals := make([]uint64, c.dim)
	freeBits := make([]uint, c.dim)
	for t := uint(0); t < c.total; t++ {
		dim := int(t) % c.dim
		if t < fixed {
			bit := (z0 >> (c.total - 1 - t)) & 1
			vals[dim] = vals[dim]<<1 | bit
		} else {
			freeBits[dim]++
		}
	}
	scale := math.Ldexp(1, -c.bitsPer) // 1/2^bitsPer
	for d := 0; d < c.dim; d++ {
		lo[d] = float64(vals[d]<<freeBits[d]) * scale
		hi[d] = float64((vals[d]+1)<<freeBits[d]) * scale
	}
	return lo, hi
}

// ArcBlocks decomposes the integer arc [zlo, zhi) into maximal aligned
// blocks, invoking fn with each block's start and free-bit count. Returning
// true from fn stops the walk early.
func (c Curve) ArcBlocks(zlo, zhi uint64, fn func(z0 uint64, free uint) bool) {
	v := zlo
	for v < zhi {
		free := uint(0)
		for free < c.total {
			size := uint64(1) << (free + 1)
			if v%size != 0 || v+size > zhi {
				break
			}
			free++
		}
		if fn(v, free) {
			return
		}
		v += uint64(1) << free
	}
}

// ArcTouchesSphere reports whether any cell of the z-arc [zlo, zhi) maps to
// a box within radius of key (plain Euclidean, no wrap).
func (c Curve) ArcTouchesSphere(zlo, zhi uint64, key []float64, radius float64) bool {
	touched := false
	c.ArcBlocks(zlo, zhi, func(z0 uint64, free uint) bool {
		lo, hi := c.BlockBox(z0, free)
		if BoxDist(key, lo, hi) <= radius {
			touched = true
			return true
		}
		return false
	})
	return touched
}

// BoxDist is the Euclidean distance from point p to the axis-aligned box
// [lo, hi) (zero if p is inside).
func BoxDist(p, lo, hi []float64) float64 {
	var s float64
	for i := range p {
		var d float64
		switch {
		case p[i] < lo[i]:
			d = lo[i] - p[i]
		case p[i] >= hi[i]:
			d = p[i] - hi[i]
		}
		s += d * d
	}
	return math.Sqrt(s)
}
