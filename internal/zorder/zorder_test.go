package zorder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCurve(t *testing.T) {
	if _, err := NewCurve(0); err == nil {
		t.Error("dim 0 should fail")
	}
	for _, tc := range []struct {
		dim, wantBitsPer int
	}{{1, 16}, {2, 16}, {3, 16}, {4, 12}, {8, 6}, {16, 3}, {48, 1}, {100, 1}} {
		c, err := NewCurve(tc.dim)
		if err != nil {
			t.Fatal(err)
		}
		if c.bitsPer != tc.wantBitsPer {
			t.Errorf("dim %d: bitsPer = %d, want %d", tc.dim, c.bitsPer, tc.wantBitsPer)
		}
		if c.TotalBits() != uint(tc.wantBitsPer*tc.dim) {
			t.Errorf("dim %d: total bits %d", tc.dim, c.TotalBits())
		}
	}
}

func TestZRange(t *testing.T) {
	c, _ := NewCurve(2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		key := []float64{rng.Float64(), rng.Float64()}
		z := c.Z(key)
		if z >= c.Space() {
			t.Fatalf("z value %d out of space %d", z, c.Space())
		}
	}
}

func TestZDimMismatchPanics(t *testing.T) {
	c, _ := NewCurve(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Z([]float64{0.5})
}

// Property: a key always lies inside the box of any aligned block containing
// its z-value.
func TestPropBlockBoxContainsKey(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		c, err := NewCurve(dim)
		if err != nil {
			return false
		}
		key := make([]float64, dim)
		for i := range key {
			key[i] = rng.Float64()
		}
		z := c.Z(key)
		// A random aligned block containing z.
		free := uint(rng.Intn(int(c.TotalBits()) + 1))
		z0 := z &^ (uint64(1)<<free - 1)
		lo, hi := c.BlockBox(z0, free)
		return BoxDist(key, lo, hi) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ArcBlocks tiles the arc exactly — blocks are disjoint, aligned,
// and their union is [zlo, zhi).
func TestPropArcBlocksTile(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := NewCurve(3)
		space := c.Space()
		a, b := rng.Uint64()%space, rng.Uint64()%space
		if a > b {
			a, b = b, a
		}
		expected := a
		ok := true
		c.ArcBlocks(a, b, func(z0 uint64, free uint) bool {
			size := uint64(1) << free
			if z0 != expected || z0%size != 0 || z0+size > b {
				ok = false
				return true
			}
			expected = z0 + size
			return false
		})
		return ok && expected == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: block volumes sum to the arc's share of the space.
func TestArcBlocksVolume(t *testing.T) {
	c, _ := NewCurve(2)
	space := c.Space()
	a, b := space/7, space/2+space/5
	var vol float64
	c.ArcBlocks(a, b, func(z0 uint64, free uint) bool {
		lo, hi := c.BlockBox(z0, free)
		v := 1.0
		for i := range lo {
			v *= hi[i] - lo[i]
		}
		vol += v
		return false
	})
	want := float64(b-a) / float64(space)
	if math.Abs(vol-want) > 1e-12 {
		t.Errorf("block volume %v, want %v", vol, want)
	}
}

func TestBoxDist(t *testing.T) {
	lo, hi := []float64{0.2, 0.2}, []float64{0.4, 0.4}
	if d := BoxDist([]float64{0.3, 0.3}, lo, hi); d != 0 {
		t.Errorf("inside point dist %v", d)
	}
	if d := BoxDist([]float64{0.5, 0.3}, lo, hi); math.Abs(d-0.1) > 1e-12 {
		t.Errorf("side dist %v, want 0.1", d)
	}
	if d := BoxDist([]float64{0.5, 0.5}, lo, hi); math.Abs(d-0.1*math.Sqrt2) > 1e-12 {
		t.Errorf("corner dist %v", d)
	}
}

// ArcTouchesSphere agrees with an exhaustive per-cell check at a coarse
// resolution.
func TestArcTouchesSphereExhaustive(t *testing.T) {
	c, _ := NewCurve(8) // 6 bits per dim would be 48 total; dim 8 -> 6 bits... keep small arcs
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		a := rng.Uint64() % c.Space()
		b := a + uint64(rng.Intn(2000))
		if b > c.Space() {
			b = c.Space()
		}
		key := make([]float64, 8)
		for i := range key {
			key[i] = rng.Float64()
		}
		radius := rng.Float64() * 0.4
		got := c.ArcTouchesSphere(a, b, key, radius)
		want := false
		for z := a; z < b; z++ {
			lo, hi := c.BlockBox(z, 0)
			if BoxDist(key, lo, hi) <= radius {
				want = true
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: ArcTouchesSphere = %v, exhaustive = %v", trial, got, want)
		}
	}
}
