package wavelet

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecomposeReconstruct drives Decompose → Reconstruct with arbitrary
// vectors and checks the round trip under every convention: the inverse
// transform must recover the input within floating-point tolerance for any
// power-of-two dimension. This is the guarantee Theorems 3.1/4.1 rest on —
// the wavelet transform loses nothing, only reorganizes energy across
// subspaces. Run with `go test -fuzz=FuzzDecomposeReconstruct ./internal/wavelet`.
func FuzzDecomposeReconstruct(f *testing.F) {
	seed := func(xs ...float64) {
		buf := make([]byte, 8*len(xs))
		for i, v := range xs {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		f.Add(buf)
	}
	seed(1)
	seed(0, 0, 0, 0)
	seed(1, -2, 3, -4)
	seed(0.5, 0.25, 0.125, 0.0625, 1, 2, 4, 8)
	seed(1e9, -1e9, 1e-9, -1e-9, 0, 1, -1, 0.333, 2.5, -7, 42, 1e6, -3.14, 0.001, 99, -0.5)

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decode the byte stream into float64s, discarding values that make
		// the tolerance meaningless (NaN/Inf propagate; extreme magnitudes
		// overflow intermediate sums).
		var vals []float64
		for len(raw) >= 8 && len(vals) < 512 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[:8]))
			raw = raw[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return
		}
		// Largest power-of-two prefix: Decompose requires pow-2 dims.
		dim := 1
		for dim*2 <= len(vals) {
			dim *= 2
		}
		x := vals[:dim]

		maxAbs := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		tol := 1e-9 * (1 + maxAbs)

		for _, conv := range []Convention{Averaging, Orthonormal, Daubechies4} {
			dec := Decompose(x, conv)
			if dec.Dim != dim {
				t.Fatalf("%v: Dim = %d, want %d", conv, dec.Dim, dim)
			}
			got := dec.Reconstruct()
			if len(got) != dim {
				t.Fatalf("%v: reconstructed length %d, want %d", conv, len(got), dim)
			}
			for i := range x {
				if d := math.Abs(got[i] - x[i]); d > tol || math.IsNaN(got[i]) {
					t.Fatalf("%v dim %d: coord %d round-trip error %g > %g (in %g, out %g)",
						conv, dim, i, d, tol, x[i], got[i])
				}
			}
		}
	})
}
