package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperm/internal/vec"
)

func TestIsPow2(t *testing.T) {
	for _, tc := range []struct {
		d    int
		want bool
	}{{1, true}, {2, true}, {3, false}, {4, true}, {0, false}, {-4, false}, {512, true}, {511, false}} {
		if got := IsPow2(tc.d); got != tc.want {
			t.Errorf("IsPow2(%d) = %v, want %v", tc.d, got, tc.want)
		}
	}
}

func TestLog2(t *testing.T) {
	for _, tc := range []struct{ d, want int }{{1, 0}, {2, 1}, {4, 2}, {512, 9}} {
		if got := Log2(tc.d); got != tc.want {
			t.Errorf("Log2(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Log2(3)
}

func TestSubspaceDims(t *testing.T) {
	// For d=8: subspaces A(1), D0(1), D1(2), D2(4) -> 4 subspaces.
	if got := NumSubspaces(8); got != 4 {
		t.Fatalf("NumSubspaces(8) = %d, want 4", got)
	}
	wantDims := []int{1, 1, 2, 4}
	for i, w := range wantDims {
		if got := SubspaceDim(i); got != w {
			t.Errorf("SubspaceDim(%d) = %d, want %d", i, got, w)
		}
	}
	// Total coefficients must equal the original dimensionality.
	total := 0
	for i := 0; i < NumSubspaces(512); i++ {
		total += SubspaceDim(i)
	}
	if total != 512 {
		t.Errorf("subspace dims sum to %d, want 512", total)
	}
}

func TestSubspaceName(t *testing.T) {
	if SubspaceName(0) != "A" || SubspaceName(1) != "D_0" || SubspaceName(3) != "D_2" {
		t.Error("unexpected subspace names")
	}
}

func TestDecomposeKnownValues(t *testing.T) {
	// Worked example with the paper's averaging convention, d=4.
	// x = (9, 7, 3, 5):
	//   step 1: approx (8, 4), detail D_1 = (1, -1)
	//   step 2: approx (6),    detail D_0 = (2)
	dec := Decompose([]float64{9, 7, 3, 5}, Averaging)
	if dec.Approx[0] != 6 {
		t.Errorf("A = %v, want 6", dec.Approx[0])
	}
	if dec.Details[0][0] != 2 {
		t.Errorf("D_0 = %v, want 2", dec.Details[0][0])
	}
	if dec.Details[1][0] != 1 || dec.Details[1][1] != -1 {
		t.Errorf("D_1 = %v, want [1 -1]", dec.Details[1])
	}
}

func TestDecomposePreservesInput(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	Decompose(x, Averaging)
	if x[0] != 1 || x[3] != 4 {
		t.Fatal("Decompose mutated its input")
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, conv := range []Convention{Averaging, Orthonormal} {
		for _, d := range []int{1, 2, 4, 8, 64, 512} {
			x := randVec(rng, d)
			got := Decompose(x, conv).Reconstruct()
			if !vec.ApproxEqual(x, got, 1e-9) {
				t.Errorf("conv=%v d=%d: round trip failed", conv, d)
			}
		}
	}
}

func TestOrthonormalParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randVec(rng, 64)
	dec := Decompose(x, Orthonormal)
	var coeffNorm2 float64
	for s := 0; s < dec.NumSubspaces(); s++ {
		coeffNorm2 += vec.Norm2(dec.Subspace(s))
	}
	if math.Abs(coeffNorm2-vec.Norm2(x)) > 1e-9 {
		t.Errorf("Parseval violated: coeffs %v vs original %v", coeffNorm2, vec.Norm2(x))
	}
}

// Property: the weighted Parseval identity holds exactly for the averaging
// convention — Dist2 computed from coefficients equals the original distance.
func TestPropWeightedParsevalAveraging(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 << (1 + rng.Intn(7)) // 2..128
		x, y := randVec(rng, d), randVec(rng, d)
		dx, dy := Decompose(x, Averaging), Decompose(y, Averaging)
		want := vec.Dist2(x, y)
		got := Dist2(dx, dy)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Theorem 3.1 — any two points within distance r of each other in
// the original space are within r*RadiusScale in every subspace.
func TestPropTheorem31RadiusBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 << (2 + rng.Intn(6)) // 4..128
		x, y := randVec(rng, d), randVec(rng, d)
		r := vec.Dist(x, y)
		dx, dy := Decompose(x, Averaging), Decompose(y, Averaging)
		for s := 0; s < dx.NumSubspaces(); s++ {
			m := SubspaceDim(s)
			bound := r * RadiusScale(Averaging, d, m)
			got := vec.Dist(dx.Subspace(s), dy.Subspace(s))
			if got > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The Theorem 3.1 bound is tight: a vector aligned with the worst case
// reaches it. With the averaging convention and x = (1,1,...,1)/sqrt(d)
// scaled to radius r, the approximation coefficient is r/sqrt(d) at distance
// exactly r*sqrt(1/d) from the origin's approximation.
func TestTheorem31BoundTight(t *testing.T) {
	d := 16
	r := 3.0
	x := make([]float64, d)
	for i := range x {
		x[i] = r / math.Sqrt(float64(d))
	}
	origin := make([]float64, d)
	dx, do := Decompose(x, Averaging), Decompose(origin, Averaging)
	got := vec.Dist(dx.Subspace(0), do.Subspace(0))
	want := r * RadiusScale(Averaging, d, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("approximation distance %v, want tight bound %v", got, want)
	}
}

func TestRadiusScaleValues(t *testing.T) {
	// d=512: subspace of dim 1 scales by 1/sqrt(512).
	got := RadiusScale(Averaging, 512, 1)
	want := 1 / math.Sqrt(512)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("RadiusScale = %v, want %v", got, want)
	}
	if RadiusScale(Orthonormal, 512, 4) != 1 {
		t.Error("orthonormal radius scale should be 1")
	}
}

func TestDistanceWeight(t *testing.T) {
	if got := DistanceWeight(Averaging, 8, 2); got != 4 {
		t.Errorf("DistanceWeight = %v, want 4", got)
	}
	if got := DistanceWeight(Orthonormal, 8, 2); got != 1 {
		t.Errorf("orthonormal DistanceWeight = %v, want 1", got)
	}
}

func TestSubspaceOf(t *testing.T) {
	x := []float64{9, 7, 3, 5}
	if got := SubspaceOf(x, 0, Averaging)[0]; got != 6 {
		t.Errorf("SubspaceOf A = %v, want 6", got)
	}
}

func TestSubspaceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Decompose([]float64{1, 2}, Averaging).Subspace(5)
}

func TestPadPow2(t *testing.T) {
	x := []float64{1, 2, 3}
	p := PadPow2(x)
	if len(p) != 4 || p[3] != 0 || p[0] != 1 {
		t.Errorf("PadPow2 = %v", p)
	}
	same := []float64{1, 2, 3, 4}
	if got := PadPow2(same); &got[0] != &same[0] {
		t.Error("PadPow2 should return power-of-two input unchanged")
	}
}

func TestDecomposeAllAndSubspaceMatrix(t *testing.T) {
	xs := [][]float64{{9, 7, 3, 5}, {1, 1, 1, 1}}
	decs := DecomposeAll(xs, Averaging)
	m := SubspaceMatrix(decs, 0)
	if m[0][0] != 6 || m[1][0] != 1 {
		t.Errorf("SubspaceMatrix = %v", m)
	}
	// Rows must be copies.
	m[0][0] = 99
	if decs[0].Approx[0] != 6 {
		t.Error("SubspaceMatrix aliased decomposition storage")
	}
}

func TestConventionString(t *testing.T) {
	if Averaging.String() != "averaging" || Orthonormal.String() != "orthonormal" {
		t.Error("unexpected convention strings")
	}
	if Convention(9).String() == "" {
		t.Error("unknown convention should still stringify")
	}
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func BenchmarkDecompose512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randVec(rng, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(x, Averaging)
	}
}
