package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperm/internal/vec"
)

func TestD4FilterProperties(t *testing.T) {
	// Orthonormality: ||h|| = ||g|| = 1 and <h,g> = 0.
	var hh, gg, hg float64
	for k := 0; k < 4; k++ {
		hh += d4Lo[k] * d4Lo[k]
		gg += d4Hi[k] * d4Hi[k]
		hg += d4Lo[k] * d4Hi[k]
	}
	if math.Abs(hh-1) > 1e-12 || math.Abs(gg-1) > 1e-12 {
		t.Errorf("filter norms: |h|^2=%v |g|^2=%v, want 1", hh, gg)
	}
	if math.Abs(hg) > 1e-12 {
		t.Errorf("<h,g> = %v, want 0", hg)
	}
	// Vanishing moments of g: sum g_k = 0 (0th) and sum k*g_k = 0 (1st).
	var m0, m1 float64
	for k := 0; k < 4; k++ {
		m0 += d4Hi[k]
		m1 += float64(k) * d4Hi[k]
	}
	if math.Abs(m0) > 1e-12 || math.Abs(m1) > 1e-12 {
		t.Errorf("vanishing moments violated: m0=%v m1=%v", m0, m1)
	}
	// Low-pass DC gain: sum h_k = sqrt(2).
	var dc float64
	for k := 0; k < 4; k++ {
		dc += d4Lo[k]
	}
	if math.Abs(dc-math.Sqrt2) > 1e-12 {
		t.Errorf("DC gain %v, want sqrt(2)", dc)
	}
}

func TestD4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 4, 8, 64, 512} {
		x := randVecT(rng, d)
		got := Decompose(x, Daubechies4).Reconstruct()
		if !vec.ApproxEqual(x, got, 1e-9) {
			t.Errorf("d=%d: D4 round trip failed", d)
		}
	}
}

func TestD4Parseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randVecT(rng, 128)
	dec := Decompose(x, Daubechies4)
	var coeffNorm2 float64
	for s := 0; s < dec.NumSubspaces(); s++ {
		coeffNorm2 += vec.Norm2(dec.Subspace(s))
	}
	if math.Abs(coeffNorm2-vec.Norm2(x)) > 1e-9 {
		t.Errorf("D4 Parseval violated: %v vs %v", coeffNorm2, vec.Norm2(x))
	}
}

// Distance preservation (the orthonormal analogue of the weighted Parseval
// identity): coefficient-space distance equals original distance.
func TestPropD4DistancePreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 << (1 + rng.Intn(7))
		x, y := randVecT(rng, d), randVecT(rng, d)
		dx, dy := Decompose(x, Daubechies4), Decompose(y, Daubechies4)
		got := Dist2(dx, dy) // weights are all 1 for D4
		want := vec.Dist2(x, y)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Two vanishing moments: a constant signal has zero detail energy at every
// level (the wrap-around cannot break a constant).
func TestD4ConstantSignalZeroDetails(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = 7.5
	}
	dec := Decompose(x, Daubechies4)
	for l, det := range dec.Details {
		for _, v := range det {
			if math.Abs(v) > 1e-9 {
				t.Fatalf("detail level %d has nonzero coefficient %v for constant signal", l, v)
			}
		}
	}
}

// For a smooth (linear) signal, D4's first-level detail energy is far below
// Haar's away from the periodic seam — the energy-compaction advantage.
func TestD4CompactsLinearSignalBetterThanHaar(t *testing.T) {
	d := 64
	x := make([]float64, d)
	for i := range x {
		x[i] = float64(i)
	}
	finest := len(Decompose(x, Daubechies4).Details) - 1
	d4det := Decompose(x, Daubechies4).Details[finest]
	haardet := Decompose(x, Orthonormal).Details[finest]
	// Compare interior coefficients (exclude the two seam-affected ones).
	var d4e, haare float64
	for i := 1; i < len(d4det)-2; i++ {
		d4e += d4det[i] * d4det[i]
		haare += haardet[i] * haardet[i]
	}
	if d4e > haare*1e-6 {
		t.Errorf("D4 interior detail energy %v should be ~0 vs Haar %v on a linear ramp", d4e, haare)
	}
}

// The radius bound used by the query layer must hold for D4: subspace
// distances never exceed the original distance (orthonormal projection is a
// contraction).
func TestPropD4RadiusBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 << (2 + rng.Intn(6))
		x, y := randVecT(rng, d), randVecT(rng, d)
		r := vec.Dist(x, y)
		dx, dy := Decompose(x, Daubechies4), Decompose(y, Daubechies4)
		for s := 0; s < dx.NumSubspaces(); s++ {
			bound := r * RadiusScale(Daubechies4, d, SubspaceDim(s))
			if vec.Dist(dx.Subspace(s), dy.Subspace(s)) > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestD4ConventionString(t *testing.T) {
	if Daubechies4.String() != "daubechies4" {
		t.Errorf("String = %q", Daubechies4.String())
	}
}

func BenchmarkD4Decompose512(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randVecT(rng, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(x, Daubechies4)
	}
}
