// Package wavelet implements the Haar discrete wavelet transform (DWT) and
// the multiresolution subspace hierarchy that Hyper-M publishes into.
//
// A vector of (power-of-two) dimensionality d is recursively decomposed into
// an approximation of half the length and a detail of half the length, until
// the approximation has length 1 (Figure 1 of the paper). The resulting
// subspaces are, in Hyper-M's order:
//
//	subspace 0: A            (dimension 1)   — the final approximation
//	subspace 1: D_0          (dimension 1)   — the coarsest detail
//	subspace 2: D_1          (dimension 2)
//	...
//	subspace l: D_{l-1}      (dimension 2^{l-1})
//
// for a total of log2(d)+1 subspaces.
//
// Two coefficient conventions are provided:
//
//   - Averaging — the paper's convention (Theorem 3.1 uses "the sum divided
//     by two"): a = (x1+x2)/2, detail = (x1-x2)/2. Under this convention a
//     sphere of radius r in the original space maps inside a sphere of radius
//     r*sqrt(m/d) in a subspace of dimension m (Theorem 3.1), and squared
//     distances satisfy the weighted Parseval identity
//     ‖x-y‖² = Σ_s (d/m_s)·‖c_s(x)-c_s(y)‖².
//   - Orthonormal — the classical orthonormal Haar: a = (x1+x2)/√2,
//     detail = (x1-x2)/√2. Distances are preserved exactly across the whole
//     coefficient set (plain Parseval), and the per-subspace radius bound is
//     simply r.
package wavelet

import (
	"fmt"
	"math"
	"math/bits"
)

// Convention selects the Haar coefficient normalization.
type Convention int

const (
	// Averaging is the paper's convention: pairwise averages and halved
	// differences. This is the Hyper-M default.
	Averaging Convention = iota
	// Orthonormal is the classical orthonormal Haar transform.
	Orthonormal
	// Daubechies4 is the orthonormal D4 wavelet with periodic boundary
	// handling — two vanishing moments, better energy compaction on smooth
	// signals (paper footnote 2's "other wavelets").
	Daubechies4
)

// String returns the convention name.
func (c Convention) String() string {
	switch c {
	case Averaging:
		return "averaging"
	case Orthonormal:
		return "orthonormal"
	case Daubechies4:
		return "daubechies4"
	default:
		return fmt.Sprintf("Convention(%d)", int(c))
	}
}

// Decomposition holds the full multiresolution decomposition of one vector.
type Decomposition struct {
	// Dim is the original dimensionality (a power of two).
	Dim int
	// Conv is the coefficient convention used.
	Conv Convention
	// Approx is the final approximation A, of length 1.
	Approx []float64
	// Details[l] is detail level D_l, of length 2^l, l in [0, log2(Dim)).
	Details [][]float64
}

// IsPow2 reports whether d is a positive power of two.
func IsPow2(d int) bool { return d > 0 && d&(d-1) == 0 }

// Log2 returns log2(d) for a power-of-two d.
func Log2(d int) int {
	if !IsPow2(d) {
		panic(fmt.Sprintf("wavelet: %d is not a power of two", d))
	}
	return bits.TrailingZeros(uint(d))
}

// NumSubspaces returns the number of subspaces in the full hierarchy of a
// d-dimensional vector: log2(d)+1 (the approximation plus log2(d) details).
func NumSubspaces(d int) int { return Log2(d) + 1 }

// SubspaceDim returns the dimensionality of subspace index i
// (0 → A with dim 1; i ≥ 1 → D_{i-1} with dim 2^{i-1}).
func SubspaceDim(i int) int {
	if i < 0 {
		panic("wavelet: negative subspace index")
	}
	if i == 0 {
		return 1
	}
	return 1 << (i - 1)
}

// SubspaceName returns the paper's name for subspace index i: "A" or "D_l".
func SubspaceName(i int) string {
	if i == 0 {
		return "A"
	}
	return fmt.Sprintf("D_%d", i-1)
}

// RadiusScale returns the factor by which a sphere radius in the original
// d-dimensional space shrinks when mapped into the subspace of dimension
// subDim (Theorem 3.1): sqrt(subDim/d) under the Averaging convention, 1
// under Orthonormal (orthonormal projections are contractions bounded by 1).
func RadiusScale(conv Convention, d, subDim int) float64 {
	switch conv {
	case Averaging:
		return math.Sqrt(float64(subDim) / float64(d))
	case Orthonormal, Daubechies4:
		// Orthonormal transforms are isometries; the projection onto any
		// coefficient subset is a contraction bounded by 1.
		return 1
	default:
		panic("wavelet: unknown convention")
	}
}

// DistanceWeight returns the weight of the squared coefficient-space distance
// of a subspace of dimension subDim in the exact identity
// ‖x-y‖² = Σ_s weight_s · ‖c_s(x)-c_s(y)‖².
// Under Averaging the weight is d/subDim; under Orthonormal it is 1.
func DistanceWeight(conv Convention, d, subDim int) float64 {
	switch conv {
	case Averaging:
		return float64(d) / float64(subDim)
	case Orthonormal, Daubechies4:
		return 1
	default:
		panic("wavelet: unknown convention")
	}
}

// Decompose performs a full Haar decomposition of x down to a length-1
// approximation. The length of x must be a power of two (use PadPow2 first
// otherwise). The input slice is not modified.
func Decompose(x []float64, conv Convention) *Decomposition {
	d := len(x)
	if !IsPow2(d) {
		panic(fmt.Sprintf("wavelet: input length %d is not a power of two", d))
	}
	levels := Log2(d)
	dec := &Decomposition{
		Dim:     d,
		Conv:    conv,
		Details: make([][]float64, levels),
	}
	cur := make([]float64, d)
	copy(cur, x)
	// Each step halves the working approximation and emits one detail level.
	// Steps run from the finest detail (D_{levels-1}, length d/2) down to the
	// coarsest (D_0, length 1).
	for l := levels - 1; l >= 0; l-- {
		var approx, detail []float64
		if conv == Daubechies4 {
			approx, detail = d4Step(cur)
		} else {
			half := len(cur) / 2
			approx = make([]float64, half)
			detail = make([]float64, half)
			for i := 0; i < half; i++ {
				a, b := cur[2*i], cur[2*i+1]
				switch conv {
				case Averaging:
					approx[i] = (a + b) / 2
					detail[i] = (a - b) / 2
				case Orthonormal:
					approx[i] = (a + b) / math.Sqrt2
					detail[i] = (a - b) / math.Sqrt2
				default:
					panic("wavelet: unknown convention")
				}
			}
		}
		dec.Details[l] = detail
		cur = approx
	}
	dec.Approx = cur // length 1
	return dec
}

// Reconstruct inverts the decomposition, returning a fresh vector of length
// Dim. Reconstruction is exact up to floating-point rounding.
func (dec *Decomposition) Reconstruct() []float64 {
	cur := []float64{dec.Approx[0]}
	for l := 0; l < len(dec.Details); l++ {
		detail := dec.Details[l]
		if len(detail) != len(cur) {
			panic(fmt.Sprintf("wavelet: corrupt decomposition: detail %d has length %d, want %d",
				l, len(detail), len(cur)))
		}
		if dec.Conv == Daubechies4 {
			cur = d4Inverse(cur, detail)
			continue
		}
		next := make([]float64, 2*len(cur))
		for i := range cur {
			switch dec.Conv {
			case Averaging:
				next[2*i] = cur[i] + detail[i]
				next[2*i+1] = cur[i] - detail[i]
			case Orthonormal:
				next[2*i] = (cur[i] + detail[i]) / math.Sqrt2
				next[2*i+1] = (cur[i] - detail[i]) / math.Sqrt2
			default:
				panic("wavelet: unknown convention")
			}
		}
		cur = next
	}
	return cur
}

// Subspace returns the coefficient vector of subspace index i
// (0 → A, i ≥ 1 → D_{i-1}). The returned slice aliases the decomposition.
func (dec *Decomposition) Subspace(i int) []float64 {
	if i == 0 {
		return dec.Approx
	}
	if i-1 >= len(dec.Details) {
		panic(fmt.Sprintf("wavelet: subspace %d out of range (dim %d has %d subspaces)",
			i, dec.Dim, NumSubspaces(dec.Dim)))
	}
	return dec.Details[i-1]
}

// NumSubspaces returns the number of subspaces in this decomposition.
func (dec *Decomposition) NumSubspaces() int { return len(dec.Details) + 1 }

// Dist2 returns the exact squared Euclidean distance between the original
// vectors of two decompositions, computed purely from coefficients via the
// weighted Parseval identity. Both decompositions must share Dim and Conv.
func Dist2(a, b *Decomposition) float64 {
	if a.Dim != b.Dim || a.Conv != b.Conv {
		panic("wavelet: incompatible decompositions")
	}
	var sum float64
	for s := 0; s < a.NumSubspaces(); s++ {
		w := DistanceWeight(a.Conv, a.Dim, SubspaceDim(s))
		ca, cb := a.Subspace(s), b.Subspace(s)
		var d2 float64
		for i, v := range ca {
			diff := v - cb[i]
			d2 += diff * diff
		}
		sum += w * d2
	}
	return sum
}

// SubspaceOf transforms a single vector and returns only subspace i's
// coefficients. Convenience for callers that need one level (e.g. translating
// a query center into one overlay's key space).
func SubspaceOf(x []float64, i int, conv Convention) []float64 {
	return Decompose(x, conv).Subspace(i)
}

// PadPow2 returns x zero-padded to the next power-of-two length. If the
// length is already a power of two the original slice is returned unchanged.
func PadPow2(x []float64) []float64 {
	if IsPow2(len(x)) {
		return x
	}
	n := 1
	for n < len(x) {
		n <<= 1
	}
	out := make([]float64, n)
	copy(out, x)
	return out
}

// DecomposeAll decomposes every row of xs with the given convention.
func DecomposeAll(xs [][]float64, conv Convention) []*Decomposition {
	out := make([]*Decomposition, len(xs))
	for i, x := range xs {
		out[i] = Decompose(x, conv)
	}
	return out
}

// SubspaceMatrix extracts subspace i's coefficients from every decomposition,
// producing the matrix that per-level clustering runs on. Rows are copies and
// safe to mutate.
func SubspaceMatrix(decs []*Decomposition, i int) [][]float64 {
	out := make([][]float64, len(decs))
	for r, dec := range decs {
		src := dec.Subspace(i)
		row := make([]float64, len(src))
		copy(row, src)
		out[r] = row
	}
	return out
}
