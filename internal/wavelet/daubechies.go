package wavelet

import "math"

// Daubechies-4 filters (orthonormal): the canonical coefficients
// ((1±√3), (3±√3)) / (4√2). The synthesis transform is the transpose of the
// analysis transform, which the periodic implementation below exploits. D4
// has two vanishing moments: constant and linear signals produce (interior)
// zero detail coefficients, making it a better compactor than Haar for
// smooth feature vectors — the paper's footnote 2 notes the framework
// extends to such wavelets.
var (
	d4Lo [4]float64 // low-pass (scaling) filter h
	d4Hi [4]float64 // high-pass (wavelet) filter g, g_k = (-1)^k h_{3-k}
)

func init() {
	s3 := math.Sqrt(3)
	den := 4 * math.Sqrt2
	d4Lo = [4]float64{(1 + s3) / den, (3 + s3) / den, (3 - s3) / den, (1 - s3) / den}
	for k := 0; k < 4; k++ {
		sign := 1.0
		if k%2 == 1 {
			sign = -1
		}
		d4Hi[k] = sign * d4Lo[3-k]
	}
}

// d4Step performs one periodic Daubechies-4 analysis step on cur (length n,
// even, >= 4), writing approx[i] = Σ_k h_k cur[(2i+k) mod n] and the
// corresponding details. For n == 2 the step degenerates to the orthonormal
// Haar step (standard practice for short periodic signals).
func d4Step(cur []float64) (approx, detail []float64) {
	n := len(cur)
	half := n / 2
	approx = make([]float64, half)
	detail = make([]float64, half)
	if n == 2 {
		approx[0] = (cur[0] + cur[1]) / math.Sqrt2
		detail[0] = (cur[0] - cur[1]) / math.Sqrt2
		return approx, detail
	}
	for i := 0; i < half; i++ {
		var a, d float64
		for k := 0; k < 4; k++ {
			v := cur[(2*i+k)%n]
			a += d4Lo[k] * v
			d += d4Hi[k] * v
		}
		approx[i] = a
		detail[i] = d
	}
	return approx, detail
}

// d4Inverse inverts one step: the analysis transform is orthogonal, so the
// inverse is its transpose — cur[j] = Σ_i approx[i]·h_{(j-2i) mod n} +
// detail[i]·g_{(j-2i) mod n}, with only k in 0..3 contributing.
func d4Inverse(approx, detail []float64) []float64 {
	half := len(approx)
	n := 2 * half
	out := make([]float64, n)
	if n == 2 {
		out[0] = (approx[0] + detail[0]) / math.Sqrt2
		out[1] = (approx[0] - detail[0]) / math.Sqrt2
		return out
	}
	for i := 0; i < half; i++ {
		for k := 0; k < 4; k++ {
			j := (2*i + k) % n
			out[j] += approx[i]*d4Lo[k] + detail[i]*d4Hi[k]
		}
	}
	return out
}
