package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperm/internal/vec"
)

// Theorem 4.1 (the no-false-dismissal bound): if a point x is within the
// scaled threshold R*sqrt(m/d) of a query q in EVERY subspace, then x is
// within R*sqrt(log2(d)+1) of q in the original space. This is the bound
// Hyper-M's min-score range pruning rests on.
func TestPropTheorem41(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 << (2 + rng.Intn(6)) // 4..128
		x, q := randVecT(rng, d), randVecT(rng, d)
		dx, dq := Decompose(x, Averaging), Decompose(q, Averaging)

		// Find the smallest R that satisfies every subspace threshold.
		R := 0.0
		for s := 0; s < dx.NumSubspaces(); s++ {
			m := SubspaceDim(s)
			distS := vec.Dist(dx.Subspace(s), dq.Subspace(s))
			// threshold: distS <= R * sqrt(m/d)  =>  R >= distS*sqrt(d/m)
			if need := distS * math.Sqrt(float64(d)/float64(m)); need > R {
				R = need
			}
		}
		// Theorem: the original distance is at most R*sqrt(log2(d)+1).
		bound := R * math.Sqrt(float64(Log2(d))+1)
		return vec.Dist(x, q) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The worked d=4 example from the paper's proof of Theorem 4.1: summing the
// three per-subspace conditions gives dist^2 < 3R^2 = (log2(4)+1) R^2.
func TestTheorem41WorkedExample(t *testing.T) {
	x := []float64{1.0, 2.0, 3.0, 4.0}
	q := []float64{1.1, 1.8, 3.2, 4.3}
	dx, dq := Decompose(x, Averaging), Decompose(q, Averaging)
	// Per-subspace distances with weights 4,4,2 reconstruct the squared
	// distance exactly (weighted Parseval).
	var viaCoeffs float64
	for s, w := range []float64{4, 4, 2} {
		viaCoeffs += w * vec.Dist2(dx.Subspace(s), dq.Subspace(s))
	}
	if math.Abs(viaCoeffs-vec.Dist2(x, q)) > 1e-12 {
		t.Fatalf("weighted sum %v != true squared distance %v", viaCoeffs, vec.Dist2(x, q))
	}
	// If every subspace satisfies dist_s <= R*sqrt(m/4), the weighted sum
	// is at most R^2 * (1 + 1 + 1) = 3R^2 (one unit per subspace).
	R := 0.0
	for s := 0; s < 3; s++ {
		m := SubspaceDim(s)
		if need := vec.Dist(dx.Subspace(s), dq.Subspace(s)) * math.Sqrt(4/float64(m)); need > R {
			R = need
		}
	}
	if vec.Dist(x, q) > R*math.Sqrt(3)+1e-12 {
		t.Fatalf("d=4 bound violated: dist %v > %v", vec.Dist(x, q), R*math.Sqrt(3))
	}
}

// The Theorem 4.1 bound is tight up to the sqrt(log d + 1) factor: there
// exist points meeting every subspace threshold at distance R in each,
// whose original distance is exactly R*sqrt(log d + 1)... the worst case
// concentrates equal energy in every subspace. Construct it.
func TestTheorem41WorstCaseEnergySplit(t *testing.T) {
	d := 8
	levels := Log2(d) + 1 // 4 subspaces
	// Build a decomposition with unit weighted energy in every subspace:
	// coefficient norm in subspace s must be sqrt(m/d) (then weight d/m
	// gives 1 per subspace).
	dec := &Decomposition{Dim: d, Conv: Averaging,
		Approx:  []float64{math.Sqrt(1.0 / float64(d))},
		Details: make([][]float64, Log2(d)),
	}
	for l := 0; l < Log2(d); l++ {
		m := 1 << l
		dec.Details[l] = make([]float64, m)
		dec.Details[l][0] = math.Sqrt(float64(m) / float64(d))
	}
	x := dec.Reconstruct()
	origin := make([]float64, d)
	do := Decompose(origin, Averaging)
	dx := Decompose(x, Averaging)
	// Every subspace distance equals its threshold at R=1.
	for s := 0; s < levels; s++ {
		m := SubspaceDim(s)
		got := vec.Dist(dx.Subspace(s), do.Subspace(s))
		want := math.Sqrt(float64(m) / float64(d))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("subspace %d: distance %v, want %v", s, got, want)
		}
	}
	// Original distance is exactly sqrt(levels) * R.
	if got, want := vec.Dist(x, origin), math.Sqrt(float64(levels)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("worst case distance %v, want %v", got, want)
	}
}

func randVecT(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64() * 3
	}
	return v
}
