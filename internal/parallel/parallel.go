// Package parallel is the deterministic fan-out layer used by the per-peer
// preparation pipeline (internal/core) and the experiment harness
// (internal/experiments). The workload Hyper-M reproduces is embarrassingly
// parallel at two levels — every peer decomposes and clusters its own items
// independently (paper §4, steps i1/i2), and every figure of §5–6 is a grid
// of independent (seed, parameter) simulation cells — but the simulated
// structures themselves (the CAN overlays, the event engine) are mutable and
// single-threaded. This package therefore provides exactly the primitives
// that keep the boundary safe:
//
//   - bounded workers (never more goroutines than requested),
//   - results collected in task-index order, so merging is deterministic no
//     matter which worker finished first,
//   - panic propagation: a panic on a worker resurfaces on the calling
//     goroutine as a *PanicError carrying the original value and stack,
//   - context cancellation: undispatched tasks are abandoned and ctx.Err()
//     is returned.
//
// Determinism contract: Map and ForEach with the same n and a pure fn
// produce identical outputs for every worker count, including 1. The serial
// fast path (workers <= 1) runs fn inline with the same error and panic
// semantics, so `Parallelism: 1` reproduces parallel results byte for byte.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to a concrete worker count: n >= 1 is
// used as-is, anything else (the zero value of a config field) means "use
// every core" and resolves to GOMAXPROCS.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a panic recovered on a worker goroutine so it can be
// re-raised on the caller's goroutine without losing the original value or
// the worker's stack trace.
type PanicError struct {
	// Value is the value originally passed to panic.
	Value any
	// Stack is the worker goroutine's stack at the time of the panic.
	Stack []byte
}

// Error formats the wrapped panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task panicked: %v\n%s", e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ForEach runs fn(i) for i in [0, n) on at most `workers` goroutines
// (resolved through Workers) and waits for completion. Tasks are handed out
// in index order. The error returned is deterministic: among all tasks that
// failed, the one with the lowest index wins, regardless of scheduling.
// After the first observed failure or cancellation no further tasks are
// dispatched, but tasks already running are allowed to finish.
//
// If fn panics, every in-flight task is drained and ForEach re-panics with a
// *PanicError on the caller's goroutine — parallel code keeps the crash
// semantics of the serial loop it replaces.
//
// A nil ctx means context.Background(). If ctx is cancelled before every
// task was dispatched, ForEach returns ctx.Err() unless a lower-indexed task
// already failed with its own error.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		return forEachSerial(ctx, n, fn)
	}

	var (
		next     atomic.Int64 // next task index to dispatch
		stopped  atomic.Bool  // set on first error/panic/cancellation
		mu       sync.Mutex
		firstErr error // lowest-index task error
		firstIdx = n   // index of firstErr
		panicked *PanicError
		ctxErr   error
		wg       sync.WaitGroup
	)

	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}

	runOne := func(i int) (err error, pe *PanicError) {
		defer func() {
			if r := recover(); r != nil {
				pe = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(i), nil
	}

	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					mu.Lock()
					ctxErr = err
					mu.Unlock()
					stopped.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err, pe := runOne(i)
				if pe != nil {
					mu.Lock()
					if panicked == nil {
						panicked = pe
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
				if err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()

	if panicked != nil {
		panic(panicked)
	}
	if firstErr != nil {
		return firstErr
	}
	return ctxErr
}

// forEachSerial is the workers<=1 fast path: an inline loop with identical
// error, panic, and cancellation semantics.
func forEachSerial(ctx context.Context, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err, pe := func() (err error, pe *PanicError) {
			defer func() {
				if r := recover(); r != nil {
					pe = &PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			return fn(i), nil
		}()
		if pe != nil {
			panic(pe)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for i in [0, n) on at most `workers` goroutines and returns
// the results in task-index order — out[i] is fn(i)'s value, whichever worker
// computed it. On error or cancellation the partial slice is returned along
// with the (deterministic, lowest-index) error; entries whose task did not
// run hold the zero value. Panics propagate as in ForEach.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
