package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -100} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

// Pool of N workers x M tasks: every task must run exactly once, and the
// ordered results must be identical for every worker count.
func TestMapStressAllWorkerCounts(t *testing.T) {
	const m = 500
	want := make([]int, m)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 3, 4, 8, 16, 64, m + 7} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var calls atomic.Int64
			got, err := Map(context.Background(), workers, m, func(i int) (int, error) {
				calls.Add(1)
				return i * i, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if calls.Load() != m {
				t.Fatalf("ran %d tasks, want %d", calls.Load(), m)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// Bounded workers: the pool must never run more goroutines concurrently than
// requested.
func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), workers, 200, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks with %d workers", p, workers)
	}
}

// Panic propagation: a panic on a worker must resurface on the caller's
// goroutine as a *PanicError carrying the original value, for both the
// serial and the parallel path.
func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic did not propagate")
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("recovered %T, want *PanicError", r)
				}
				if pe.Value != "boom 7" {
					t.Errorf("panic value = %v, want boom 7", pe.Value)
				}
				if len(pe.Stack) == 0 {
					t.Error("panic stack lost")
				}
			}()
			ForEach(context.Background(), workers, 64, func(i int) error {
				if i == 7 {
					panic("boom 7")
				}
				return nil
			})
		})
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	pe := &PanicError{Value: sentinel}
	if !errors.Is(pe, sentinel) {
		t.Error("PanicError should unwrap to the panicked error")
	}
	if (&PanicError{Value: "text"}).Unwrap() != nil {
		t.Error("non-error panic value should unwrap to nil")
	}
	if (&PanicError{Value: "x", Stack: []byte("s")}).Error() == "" {
		t.Error("empty Error()")
	}
}

// Deterministic errors: the lowest-index failure wins no matter which worker
// hit it first.
func TestLowestIndexErrorWins(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, workers := range []int{1, 8} {
		for trial := 0; trial < 20; trial++ {
			err := ForEach(context.Background(), workers, 100, func(i int) error {
				if i >= 10 && i%10 == 0 {
					// Make high-index failures finish first.
					time.Sleep(time.Duration(100-i) * time.Microsecond)
					return errAt(i)
				}
				return nil
			})
			if err == nil {
				t.Fatal("expected an error")
			}
			if got := err.Error(); got != "task 10 failed" {
				t.Fatalf("workers=%d: got %q, want the lowest-index error", workers, got)
			}
		}
	}
}

// Cancellation: once the context is cancelled, undispatched tasks must be
// abandoned and ctx.Err() returned.
func TestCancellationStopsDispatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Int64
			const n = 10000
			err := ForEach(ctx, workers, n, func(i int) error {
				if ran.Add(1) == 5 {
					cancel()
				}
				return nil
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if ran.Load() >= n {
				t.Errorf("all %d tasks ran despite cancellation", n)
			}
		})
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 4, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran on a dead context", ran.Load())
	}
}

// An error must stop further dispatch (workers drain, tail tasks never run).
func TestErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	const n = 100000
	err := ForEach(context.Background(), 4, n, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() >= n {
		t.Error("error did not stop dispatch")
	}
}

func TestZeroAndNegativeTaskCounts(t *testing.T) {
	for _, n := range []int{0, -5} {
		called := false
		if err := ForEach(context.Background(), 4, n, func(i int) error {
			called = true
			return nil
		}); err != nil {
			t.Errorf("n=%d: err %v", n, err)
		}
		if called {
			t.Errorf("n=%d: fn called", n)
		}
	}
	out, err := Map(context.Background(), 4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty Map: %v %v", out, err)
	}
}

func TestNilContextMeansBackground(t *testing.T) {
	got, err := Map(nil, 2, 10, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// Shared-state stress under -race: concurrent tasks writing disjoint slice
// slots plus a mutex-guarded accumulator must be race-clean and exact.
func TestSharedStateStress(t *testing.T) {
	const m = 2000
	sum := 0
	var mu sync.Mutex
	slots := make([]int, m)
	err := ForEach(context.Background(), 16, m, func(i int) error {
		slots[i] = i
		mu.Lock()
		sum += i
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := m * (m - 1) / 2
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	for i, v := range slots {
		if v != i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}

// Map after an error returns the deterministic partial prefix untouched
// beyond zero values.
func TestMapPartialOnError(t *testing.T) {
	out, err := Map(context.Background(), 1, 10, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("stop")
		}
		return i + 1, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < 4; i++ {
		if out[i] != i+1 {
			t.Errorf("out[%d] = %d", i, out[i])
		}
	}
	for i := 4; i < 10; i++ {
		if out[i] != 0 {
			t.Errorf("out[%d] = %d, want zero (never ran)", i, out[i])
		}
	}
}
