// Package overlay defines the abstraction Hyper-M publishes into. The paper
// stresses (§5) that the method "has been designed independent of the
// underlying peer-to-peer overlays, and could be implemented on top of
// BATON, VBI-tree, CAN or any peer-to-peer overlay ... so long as they can
// support multi-dimensional indexing"; this interface is that seam.
// hyperm/internal/can (the paper's choice) and hyperm/internal/ring (a
// z-order ring used for the overlay-independence experiment) implement it.
package overlay

// Entry is a published object: a point or sphere in the overlay's key space
// together with an opaque payload (for Hyper-M, a cluster summary reference).
// Radius zero makes the entry a plain point.
type Entry struct {
	// Key is the entry's position in the overlay key space (the unit
	// torus/cube of the overlay's dimensionality).
	Key []float64
	// Radius is the entry's extent in key-space units. Overlays replicate
	// entries with nonzero radius into every region the sphere overlaps
	// (paper Fig 6).
	Radius float64
	// Payload is carried untouched from insert to search results.
	Payload any
}

// Network is a structured overlay able to index spheres in a
// multi-dimensional key space. Node identifiers run from 0 to Size()-1 and
// double as peer identifiers throughout the repository.
type Network interface {
	// Dim is the dimensionality of the key space.
	Dim() int
	// Size is the number of overlay nodes.
	Size() int
	// InsertSphere publishes e starting from the given node and returns the
	// number of overlay hops consumed (routing plus replication).
	InsertSphere(from int, e Entry) (hops int)
	// SearchSphere collects every entry whose sphere intersects the query
	// sphere, starting from the given node. It returns the matching entries
	// (deduplicated across replicas) and the overlay hops consumed.
	SearchSphere(from int, key []float64, radius float64) (results []Entry, hops int)
	// OwnerOf returns the node currently responsible for the point key
	// (no messages are charged; used for load accounting).
	OwnerOf(key []float64) int
}

// Observer is notified of every overlay message (one per hop) so transports
// such as the MANET physical layer can charge energy and latency.
type Observer func(from, to int)

// StorageFailer is implemented by overlays whose per-node storage can be
// wiped to model a device crash or departure: the node keeps routing (its
// zone/range is still owned) but every index record it held — owned entries
// and replicas alike — is gone. Replication (paper Fig 6) is what keeps
// sphere entries discoverable after such a failure.
type StorageFailer interface {
	// ClearNode discards everything node id stores and returns how many
	// records were lost.
	ClearNode(id int) int
}

// Leaver is implemented by overlays supporting graceful departure: the node
// hands its key-space region and stored records to neighbors before going
// away, so no index state is lost (the CAN departure protocol).
type Leaver interface {
	// Leave removes node id, returning the handover message count.
	Leave(id int) (msgs int, err error)
}

// Joiner is implemented by overlays that can admit a node after
// construction, at a caller-chosen key-space point — the deterministic twin
// of a live node joining a running cluster with that point as its draw.
type Joiner interface {
	// JoinNode splits the point's current owner region and returns the new
	// node's id (always Size() before the call).
	JoinNode(point []float64) (id int, err error)
}

// Sequencer is implemented by overlays that stamp every inserted record with
// an overlay-wide sequence number (can.Overlay). The sequence number is the
// record's identity: replicas share it, searchers deduplicate by it, and
// streaming publish upserts records in place by it. NextSeq previews the
// number the next InsertSphere will assign, letting publishers remember the
// identities of the records they announce.
type Sequencer interface {
	NextSeq() int
}

// StreamUpdater is implemented by overlays supporting in-place record
// mutation — the substrate of streaming incremental publish. Both operations
// address a record by its sequence number and flood the record's key-space
// sphere exactly like InsertSphere's replication, so placement stays on the
// nodes whose zones the sphere intersects.
type StreamUpdater interface {
	// UpsertSphere replaces (or, where absent, stores) the record with seq
	// everywhere the sphere (key, radius) reaches, returning the hops spent.
	UpsertSphere(from, seq int, e Entry) (hops int)
	// DeleteSphere removes the record with seq everywhere the sphere
	// reaches, returning the hops spent.
	DeleteSphere(from, seq int, e Entry) (hops int)
}

// Crasher is implemented by overlays modeling abrupt node failure with
// takeover: the node's stored records die with the device, a surviving
// neighbor takes over its key-space region, and the records the region
// needs are recovered from replicas surviving elsewhere. Unlike
// StorageFailer (which only wipes storage and leaves the region routable),
// a crash removes the node from the overlay entirely.
type Crasher interface {
	// Crash removes node id, returning the number of recovered records.
	Crash(id int) (recovered int, err error)
}
