package overlay_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hyperm/internal/baton"
	"hyperm/internal/can"
	"hyperm/internal/overlay"
	"hyperm/internal/ring"
	"hyperm/internal/vec"
)

// flatNet is the flat-index reference implementation of overlay.Network: one
// global store, zero routing. It is the contract's executable specification —
// SearchSphere is a literal transcription of the interface comment ("every
// entry whose sphere intersects the query sphere") — and the distributed
// overlays are tested against the same brute-force expectation it embodies.
type flatNet struct {
	dim     int
	size    int
	entries []overlay.Entry
	dist    func(a, b []float64) float64
}

func (f *flatNet) Dim() int  { return f.dim }
func (f *flatNet) Size() int { return f.size }

func (f *flatNet) InsertSphere(from int, e overlay.Entry) int {
	f.entries = append(f.entries, e)
	return 0
}

func (f *flatNet) SearchSphere(from int, key []float64, radius float64) ([]overlay.Entry, int) {
	var out []overlay.Entry
	for _, e := range f.entries {
		if f.dist(e.Key, key) <= e.Radius+radius {
			out = append(out, e)
		}
	}
	return out, 0
}

func (f *flatNet) OwnerOf(key []float64) int { return 0 }

// ClearNode implements overlay.StorageFailer: the flat store lives on one
// conceptual node, so clearing node 0 wipes everything.
func (f *flatNet) ClearNode(id int) int {
	if id != 0 {
		return 0
	}
	lost := len(f.entries)
	f.entries = nil
	return lost
}

// build describes one Network implementation under contract test, together
// with the sphere-intersection metric its key space uses (CAN lives on the
// unit torus; ring, BATON, and the flat reference use plain Euclidean).
type build struct {
	name string
	make func(t *testing.T, dim, nodes int, seed int64) overlay.Network
	dist func(a, b []float64) float64
}

func builds() []build {
	return []build{
		{"flat", func(t *testing.T, dim, nodes int, seed int64) overlay.Network {
			return &flatNet{dim: dim, size: nodes, dist: vec.Dist}
		}, vec.Dist},
		{"can", func(t *testing.T, dim, nodes int, seed int64) overlay.Network {
			o, err := can.Build(can.Config{Nodes: nodes, Dim: dim, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				t.Fatal(err)
			}
			return o
		}, can.TorusDist},
		{"ring", func(t *testing.T, dim, nodes int, seed int64) overlay.Network {
			o, err := ring.Build(ring.Config{Nodes: nodes, Dim: dim, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				t.Fatal(err)
			}
			return o
		}, vec.Dist},
		{"baton", func(t *testing.T, dim, nodes int, seed int64) overlay.Network {
			o, err := baton.Build(baton.Config{Nodes: nodes, Dim: dim, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				t.Fatal(err)
			}
			return o
		}, vec.Dist},
	}
}

func randKey(rng *rand.Rand, dim int) []float64 {
	k := make([]float64, dim)
	for i := range k {
		k[i] = rng.Float64() * 0.999
	}
	return k
}

// payloadSet extracts the sorted int payloads of a result set, failing on
// duplicates — the interface promises deduplication across replicas.
func payloadSet(t *testing.T, results []overlay.Entry) []int {
	t.Helper()
	seen := map[int]bool{}
	out := make([]int, 0, len(results))
	for _, e := range results {
		id, ok := e.Payload.(int)
		if !ok {
			t.Fatalf("payload %v (%T) is not the inserted int", e.Payload, e.Payload)
		}
		if seen[id] {
			t.Fatalf("payload %d returned twice: replicas not deduplicated", id)
		}
		seen[id] = true
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func TestNetworkContractDimAndSize(t *testing.T) {
	for _, b := range builds() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			nw := b.make(t, 3, 12, 1)
			if nw.Dim() != 3 {
				t.Errorf("Dim() = %d, want 3", nw.Dim())
			}
			if nw.Size() != 12 {
				t.Errorf("Size() = %d, want 12", nw.Size())
			}
		})
	}
}

// The core contract: SearchSphere returns exactly the inserted entries whose
// spheres intersect the query sphere under the overlay's metric — no false
// dismissals (the property Theorems 3.1/4.1 build on) and no fabrications —
// with replicas deduplicated. Identical brute-force expectation for all four
// implementations; only the metric differs.
func TestNetworkContractSearchIsExact(t *testing.T) {
	const (
		dim     = 2
		nodes   = 16
		inserts = 60
		queries = 40
	)
	for _, b := range builds() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			nw := b.make(t, dim, nodes, 7)
			rng := rand.New(rand.NewSource(99))
			keys := make([][]float64, inserts)
			radii := make([]float64, inserts)
			for i := 0; i < inserts; i++ {
				keys[i] = randKey(rng, dim)
				if i%3 != 0 { // mix of spheres and plain points
					radii[i] = rng.Float64() * 0.15
				}
				hops := nw.InsertSphere(rng.Intn(nodes), overlay.Entry{Key: keys[i], Radius: radii[i], Payload: i})
				if hops < 0 {
					t.Fatalf("insert %d returned negative hops %d", i, hops)
				}
			}
			for qi := 0; qi < queries; qi++ {
				q := randKey(rng, dim)
				r := rng.Float64() * 0.2
				var want []int
				for i := range keys {
					if b.dist(keys[i], q) <= radii[i]+r {
						want = append(want, i)
					}
				}
				results, hops := nw.SearchSphere(rng.Intn(nodes), q, r)
				if hops < 0 {
					t.Fatalf("query %d returned negative hops", qi)
				}
				got := payloadSet(t, results)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("query %d at %v r=%.3f:\ngot  %v\nwant %v", qi, q, r, got, want)
				}
			}
		})
	}
}

// A radius-zero entry must be findable by a radius-zero query at its exact
// key, from any starting node.
func TestNetworkContractPointRoundTrip(t *testing.T) {
	for _, b := range builds() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			nw := b.make(t, 2, 8, 3)
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 20; i++ {
				k := randKey(rng, 2)
				nw.InsertSphere(rng.Intn(8), overlay.Entry{Key: k, Payload: i})
				results, _ := nw.SearchSphere(rng.Intn(8), k, 0)
				found := false
				for _, e := range results {
					if e.Payload == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("point %d at %v not found by exact-key search", i, k)
				}
			}
		})
	}
}

// OwnerOf must be a total, stable function into [0, Size): the load
// accounting in the experiments relies on it.
func TestNetworkContractOwnerOf(t *testing.T) {
	for _, b := range builds() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			nw := b.make(t, 2, 10, 11)
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 50; i++ {
				k := randKey(rng, 2)
				o1, o2 := nw.OwnerOf(k), nw.OwnerOf(k)
				if o1 != o2 {
					t.Fatalf("OwnerOf(%v) unstable: %d then %d", k, o1, o2)
				}
				if o1 < 0 || o1 >= nw.Size() {
					t.Fatalf("OwnerOf(%v) = %d outside [0,%d)", k, o1, nw.Size())
				}
			}
		})
	}
}

// StorageFailer contract: ClearNode reports what it wiped, and wiping every
// node leaves nothing findable.
func TestNetworkContractStorageFailer(t *testing.T) {
	for _, b := range builds() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			nw := b.make(t, 2, 6, 17)
			sf, ok := nw.(overlay.StorageFailer)
			if !ok {
				t.Skipf("%s does not implement StorageFailer", b.name)
			}
			rng := rand.New(rand.NewSource(19))
			const inserts = 30
			for i := 0; i < inserts; i++ {
				nw.InsertSphere(rng.Intn(6), overlay.Entry{Key: randKey(rng, 2), Radius: rng.Float64() * 0.1, Payload: i})
			}
			lost := 0
			for id := 0; id < nw.Size(); id++ {
				n := sf.ClearNode(id)
				if n < 0 {
					t.Fatalf("ClearNode(%d) = %d", id, n)
				}
				lost += n
			}
			// Replication can store an entry on several nodes, but every
			// entry lives somewhere: total records wiped >= inserts.
			if lost < inserts {
				t.Errorf("wiped %d records, expected at least the %d inserted", lost, inserts)
			}
			results, _ := nw.SearchSphere(0, randKey(rng, 2), 2)
			if len(results) != 0 {
				t.Errorf("%d entries survived a full wipe", len(results))
			}
		})
	}
}

// Leaver contract: a graceful departure hands records over, so everything
// inserted before the leave is still findable afterwards.
func TestNetworkContractLeaver(t *testing.T) {
	for _, b := range builds() {
		b := b
		t.Run(b.name, func(t *testing.T) {
			nw := b.make(t, 2, 8, 23)
			lv, ok := nw.(overlay.Leaver)
			if !ok {
				t.Skipf("%s does not implement Leaver", b.name)
			}
			rng := rand.New(rand.NewSource(29))
			const inserts = 25
			keys := make([][]float64, inserts)
			radii := make([]float64, inserts)
			for i := 0; i < inserts; i++ {
				keys[i] = randKey(rng, 2)
				radii[i] = rng.Float64() * 0.1
				nw.InsertSphere(rng.Intn(8), overlay.Entry{Key: keys[i], Radius: radii[i], Payload: i})
			}
			leaver := 3
			if msgs, err := lv.Leave(leaver); err != nil {
				t.Fatalf("Leave(%d): %v", leaver, err)
			} else if msgs < 0 {
				t.Fatalf("Leave(%d) reported %d messages", leaver, msgs)
			}
			// Every entry must survive the handover: search from a live node
			// with a sphere that certainly intersects each entry.
			for i := range keys {
				from := 0
				if from == leaver {
					from = 1
				}
				results, _ := nw.SearchSphere(from, keys[i], 0.001)
				found := false
				for _, e := range results {
					if e.Payload == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("entry %d lost after graceful departure of node %d", i, leaver)
				}
			}
		})
	}
}
