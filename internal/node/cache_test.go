package node_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/experiments"
	"hyperm/internal/membership"
	"hyperm/internal/node"
	"hyperm/internal/transport"
	"hyperm/internal/vec"
)

// This file is the acceptance suite of the view cache (internal/viewcache):
// the cache-on serving path must answer byte-identically to the uncached
// serial reference on every topology churn can produce, while measurably
// removing can_search RPCs. The differential test sweeps seeded churned
// topologies; the takeover test aims a crash at a warm cache mid-query-stream
// and proves stale views were revalidated, never trusted.

// cacheParams keeps each seeded topology small enough to sweep many of them.
func cacheParams(seed int64) experiments.Params {
	return experiments.Params{Peers: 8, ItemsPerPeer: 20, Dim: 16, Levels: 2, ClustersPerPeer: 3, Seed: seed}
}

// queriesFor derives n in-domain query points with inter-item radii, like
// testQueries but for an arbitrary peer count.
func queriesFor(t *testing.T, sys *core.System, peers, n int) (qs [][]float64, radii []float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, itemsA := sys.PeerData(i % peers)
		_, itemsB := sys.PeerData((i + 3) % peers)
		if len(itemsA) == 0 || len(itemsB) == 0 {
			t.Fatalf("peer without items in test corpus")
		}
		q := itemsA[i%len(itemsA)]
		qs = append(qs, q)
		radii = append(radii, vec.Dist(q, itemsB[(2*i)%len(itemsB)]))
	}
	return qs, radii
}

// joinPoints draws one random join point per level.
func joinPoints(t *testing.T, sys *core.System, rng *rand.Rand) [][]float64 {
	t.Helper()
	points := make([][]float64, sys.Config().Levels)
	for l := range points {
		ov, ok := sys.Overlay(l).(*can.Overlay)
		if !ok {
			t.Fatalf("level %d overlay is %T", l, sys.Overlay(l))
		}
		pt := make([]float64, ov.Dim())
		for d := range pt {
			pt[d] = rng.Float64()
		}
		points[l] = pt
	}
	return points
}

// sumCounter totals one counter across every cluster node.
func sumCounter(cl *node.Cluster, name string) float64 {
	var total float64
	for _, nd := range cl.Nodes {
		total += nd.Counters()[name]
	}
	return total
}

// epochsAdvanced reports whether the coordinator observed churn at every
// level since the given per-level epoch snapshot — the precondition under
// which its cached views are provably coherent (see internal/viewcache).
func epochsAdvanced(nd *node.Node, before []uint64) bool {
	for l, e := range before {
		if nd.Membership().Epoch(l) <= e {
			return false
		}
	}
	return true
}

func epochSnapshot(nd *node.Node, levels int) []uint64 {
	out := make([]uint64, levels)
	for l := range out {
		out[l] = nd.Membership().Epoch(l)
	}
	return out
}

// TestCacheDifferential sweeps seeded churned topologies and proves the core
// invariant of the view cache: with caching (and hot replication) on, every
// range and k-nn answer is byte-identical to the in-process oracle — on a
// cold cache, on a warm cache, and after live mid-stream churn — and the warm
// pass issues zero can_search RPCs (every view probe served from cache).
func TestCacheDifferential(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for s := 0; s < seeds; s++ {
		seed := int64(s + 1)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runServeDifferential(t, seed, node.Tuning{CacheViews: true, HotReplicate: true, HotThreshold: 2})
		})
	}
}

// runServeDifferential drives the churned-topology differential for one
// serving configuration: cold, warm, publish-interleaved, and post-churn
// passes must all answer byte-identically to the oracle. Cache-coherence
// counter assertions apply when the tuning caches; delegation assertions
// when it delegates.
func runServeDifferential(t *testing.T, seed int64, tuning node.Tuning) {
	params := cacheParams(seed)
	sys, err := experiments.BuildMarkovSystem(params)
	if err != nil {
		t.Fatal(err)
	}
	sys.PublishAll()

	// Pre-start churn: grow and shrink the oracle topology so the cluster
	// snapshot includes split zones, handoff takeovers, and a wiped crash
	// survivor — the shapes a cache must stay coherent over.
	rng := rand.New(rand.NewSource(seed * 31))
	const protected = 4 // founders: query coordinators, join bootstrap
	for i := 0; i < 2; i++ {
		if _, err := sys.JoinPeer(joinPoints(t, sys, rng)); err != nil {
			t.Fatalf("oracle join: %v", err)
		}
	}
	left := protected + rng.Intn(params.Peers-protected)
	if _, err := sys.LeavePeer(left); err != nil {
		t.Fatalf("oracle leave %d: %v", left, err)
	}
	failed := left
	for failed == left {
		failed = protected + rng.Intn(params.Peers-protected)
	}
	sys.FailPeer(failed)

	tr := transport.NewChan()
	defer tr.Close()
	cl, err := node.StartClusterTuned(sys, tr, func(int) string { return "" },
		transport.Policy{Timeout: 30e9}, membership.Options{}, tuning)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	// The departed peer is off the network (its zones were handed away);
	// the failed one keeps serving its zone with wiped storage.
	cl.Nodes[left].Stop()

	client := node.NewClient(tr, transport.Policy{Timeout: 30e9})
	ctx := context.Background()
	qs, radii := queriesFor(t, sys, protected, 6)

	check := func(tag string, froms []int) {
		t.Helper()
		for i, q := range qs {
			from := froms[i%len(froms)]
			wantR := sys.RangeQuery(from, q, radii[i], core.RangeOptions{})
			gotR, err := client.Range(ctx, cl.Addrs[from], q, radii[i], core.RangeOptions{})
			if err != nil {
				t.Fatalf("%s: range query %d from %d: %v", tag, i, from, err)
			}
			if !reflect.DeepEqual(normalizeRange(wantR), normalizeRange(gotR)) {
				t.Errorf("%s: range query %d from peer %d diverged from oracle:\nsim:    %+v\nserved: %+v",
					tag, i, from, wantR, gotR)
			}
			wantK := sys.KNNQuery(from, q, 5, core.KNNOptions{})
			gotK, err := client.KNN(ctx, cl.Addrs[from], q, 5, core.KNNOptions{})
			if err != nil {
				t.Fatalf("%s: knn query %d from %d: %v", tag, i, from, err)
			}
			if !reflect.DeepEqual(normalizeKNN(wantK), normalizeKNN(gotK)) {
				t.Errorf("%s: knn query %d from peer %d diverged from oracle:\nsim:    %+v\nserved: %+v",
					tag, i, from, wantK, gotK)
			}
		}
	}

	founders := []int{0, 1, 2, 3}
	check("cold", founders)

	// Warm pass: identical queries on the now-populated caches. Byte-identical
	// again, and with no membership event in between every cached view is
	// epoch-fresh — not one can_search RPC may cross the wire. Bit-identical
	// repeat spheres short-circuit through the lookup memo before even
	// touching the view cache.
	before := sumCounter(cl, "rpc.can_search")
	check("warm", founders)
	if tuning.CacheViews {
		if delta := sumCounter(cl, "rpc.can_search") - before; delta != 0 {
			t.Errorf("warm pass issued %v can_search RPCs, want 0 (all views cached)", delta)
		}
		if hits := sumCounter(cl, "cache.hit") + sumCounter(cl, "cache.replica_hit"); hits == 0 {
			t.Error("warm pass recorded no cache hits")
		}
		if sumCounter(cl, "cache.path_hit") == 0 {
			t.Error("warm pass recorded no lookup-memo hits for repeat spheres")
		}
	}
	if tuning.AggFanout > 0 {
		// Delegation actually engaged: the cold pass handed flood regions to
		// delegates and replayed their piggybacked pools.
		if sumCounter(cl, "coord.agg") == 0 {
			t.Error("delegated tuning never issued a can_search_agg")
		}
		if sumCounter(cl, "agg.pool_hit") == 0 {
			t.Error("delegated lookups never resolved a view from the gathered pool")
		}
	}

	// Publish-interleaved passes: post-insert items near the query centers at
	// live holders between cached passes. No membership event fires, so the
	// epoch machinery is no help here — only the fetch-cache invalidation
	// protocol (subscription + synchronous broadcast + generation guard, see
	// fetchcache.go) can keep the memoized phase-two answers honest. Each new
	// item lands inside existing query spheres, so a stale cached fetch would
	// diverge from the oracle immediately.
	fetchHits := sumCounter(cl, "cache.fetch_local_hit")
	pubRng := rand.New(rand.NewSource(seed * 57))
	// Holders: any peer both sides agree is serving data — not the departed
	// one (off the network) and not the crash survivor (the oracle models a
	// dead device whose items are unreachable; the live stand-in answers
	// fetches, so new items published there would be visible only live).
	var holders []int
	for p := 0; p < params.Peers; p++ {
		if p != left && p != failed {
			holders = append(holders, p)
		}
	}
	for pi, nextID := 0, 9000; pi < 3; pi++ {
		holder := holders[pubRng.Intn(len(holders))]
		item := append([]float64(nil), qs[pubRng.Intn(len(qs))]...)
		for d := range item {
			item[d] += 0.02 * (pubRng.Float64() - 0.5)
		}
		sys.PostInsert(holder, nextID, item)
		if err := client.Publish(ctx, cl.Addrs[holder], nextID, item); err != nil {
			t.Fatalf("live publish %d at holder %d: %v", nextID, holder, err)
		}
		nextID++
		check(fmt.Sprintf("post-publish-%d", pi), founders)
	}
	if tuning.CacheViews {
		if sumCounter(cl, "cache.fetch_local_hit") == fetchHits {
			t.Error("publish-interleaved passes never hit the coordinator fetch memo")
		}
		if sumCounter(cl, "cache.fetch_inval") == 0 {
			t.Error("publishes notified no fetch-cache subscribers")
		}
	}

	// Live mid-stream churn: one protocol join and one graceful leave against
	// the running cluster (the oracle replays both). Coordinators that
	// observed the churn — epoch advanced at every level — must revalidate
	// their stale entries and keep answering byte-identically.
	pre := make(map[int][]uint64, len(founders))
	for _, f := range founders {
		pre[f] = epochSnapshot(cl.Nodes[f], params.Levels)
	}
	points := joinPoints(t, sys, rng)
	id, err := sys.JoinPeer(points)
	if err != nil {
		t.Fatalf("oracle mid-stream join: %v", err)
	}
	nd, err := cl.Join(ctx, sys, cl.Addrs[0], points)
	if err != nil {
		t.Fatalf("live mid-stream join: %v", err)
	}
	if nd.Peer() != id {
		t.Fatalf("live joiner took id %d, oracle assigned %d", nd.Peer(), id)
	}
	victim := -1
	for v := params.Peers - 1; v >= protected; v-- {
		if v != left && v != failed {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Fatal("no leave victim available")
	}
	if _, err := sys.LeavePeer(victim); err != nil {
		t.Fatalf("oracle mid-stream leave: %v", err)
	}
	if err := cl.Nodes[victim].Leave(ctx); err != nil {
		t.Fatalf("live mid-stream leave: %v", err)
	}
	cl.Nodes[victim].Stop()

	var observers []int
	for _, f := range founders {
		if epochsAdvanced(cl.Nodes[f], pre[f]) {
			observers = append(observers, f)
		}
	}
	t.Logf("mid-stream churn observed by founders %v", observers)
	if len(observers) > 0 {
		reval := sumCounter(cl, "cache.revalidate")
		check("post-churn", observers)
		if tuning.CacheViews {
			if d := sumCounter(cl, "cache.revalidate") - reval; d == 0 {
				t.Error("post-churn queries trusted stale views: no revalidations recorded")
			}
		}
	}
}

// TestCacheTakeoverMidStream crashes a node under a warm cache while a query
// stream is running (satellite of the view-cache work): after the failure
// detectors elect takeovers and the cluster quiesces, every coordinator that
// observed the churn must answer byte-identically to the oracle that replayed
// the same crash — and must have revalidated its stale cached views (counter
// assertion: epochs advanced, so not one pre-crash view may be trusted as-is).
func TestCacheTakeoverMidStream(t *testing.T) {
	runTakeoverMidStream(t, node.Tuning{CacheViews: true})
}

func runTakeoverMidStream(t *testing.T, tuning node.Tuning) {
	params := experiments.Params{Peers: 8, ItemsPerPeer: 30, Dim: 32, Levels: 3, ClustersPerPeer: 4, Seed: 7}
	sys, err := experiments.BuildMarkovSystem(params)
	if err != nil {
		t.Fatal(err)
	}
	sys.PublishAll()

	tr := transport.NewChan()
	defer tr.Close()
	mopts := membership.Options{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  150 * time.Millisecond,
		FailAfter:     2,
	}
	cl, err := node.StartClusterTuned(sys, tr, func(int) string { return "" },
		transport.Policy{Timeout: 30e9}, mopts, tuning)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	ctx := context.Background()
	const protected = 4
	qs, radii := queriesFor(t, sys, protected, 6)
	client := node.NewClient(tr, transport.Policy{Timeout: 30e9})
	founders := []int{0, 1, 2, 3}

	// Warm the founders' caches and pin the pre-crash baseline.
	for i, q := range qs {
		from := founders[i%len(founders)]
		want := sys.RangeQuery(from, q, radii[i], core.RangeOptions{})
		got, err := client.Range(ctx, cl.Addrs[from], q, radii[i], core.RangeOptions{})
		if err != nil {
			t.Fatalf("warmup range %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeRange(want), normalizeRange(got)) {
			t.Errorf("warmup range %d from peer %d diverged", i, from)
		}
	}
	if sumCounter(cl, "cache.hit")+sumCounter(cl, "cache.miss") == 0 {
		t.Fatal("warmup did not populate the cache")
	}
	// Let the failure detectors refresh their cached self-reports from the
	// running topology before the crash: takeover elections vote with probe-
	// collected knowledge, and a crash in the first probe rounds would find
	// the electorate still ignorant (the soak quiesces between events for the
	// same reason).
	time.Sleep(20 * mopts.ProbeInterval)
	pre := make(map[int][]uint64, len(founders))
	for _, f := range founders {
		pre[f] = epochSnapshot(cl.Nodes[f], params.Levels)
	}
	// Revalidation baseline taken before the crash: any query issued after
	// the coordinators' epochs advance — mid-stream or in the acceptance
	// sweep below — must revalidate its warm entries rather than trust them.
	reval := sumCounter(cl, "cache.revalidate")

	// Query stream flows through the crash window; mid-takeover failures are
	// tolerated (a query can race the election), counted for the log.
	alive := make([]bool, params.Peers)
	for i := range alive {
		alive[i] = true
	}
	var issued, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			from := founders[rng.Intn(len(founders))]
			issued.Add(1)
			if _, err := client.Range(ctx, cl.Addrs[from], qs[i%len(qs)], radii[i%len(radii)], core.RangeOptions{}); err != nil {
				failed.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	victim := params.Peers - 1
	if _, err := sys.CrashPeer(victim); err != nil {
		t.Fatalf("oracle crash: %v", err)
	}
	cl.Nodes[victim].Stop()
	alive[victim] = false
	waitClusterQuiesce(t, "crash", cl, alive, params.Levels, mopts.ProbeInterval)
	close(stop)
	wg.Wait()
	t.Logf("query stream over crash: %d issued, %d failed mid-takeover", issued.Load(), failed.Load())

	var observers []int
	for _, f := range founders {
		if epochsAdvanced(cl.Nodes[f], pre[f]) {
			observers = append(observers, f)
		}
	}
	if len(observers) == 0 {
		t.Fatal("no founder observed the crash at every level — takeover did not propagate")
	}
	t.Logf("crash observed by founders %v", observers)

	for _, from := range observers {
		for i, q := range qs {
			wantR := sys.RangeQuery(from, q, radii[i], core.RangeOptions{})
			gotR, err := client.Range(ctx, cl.Addrs[from], q, radii[i], core.RangeOptions{})
			if err != nil {
				t.Fatalf("post-takeover range %d from %d: %v", i, from, err)
			}
			if !reflect.DeepEqual(normalizeRange(wantR), normalizeRange(gotR)) {
				t.Errorf("post-takeover range %d from peer %d diverged:\nsim:    %+v\nserved: %+v", i, from, wantR, gotR)
			}
			wantK := sys.KNNQuery(from, q, 5, core.KNNOptions{})
			gotK, err := client.KNN(ctx, cl.Addrs[from], q, 5, core.KNNOptions{})
			if err != nil {
				t.Fatalf("post-takeover knn %d from %d: %v", i, from, err)
			}
			if !reflect.DeepEqual(normalizeKNN(wantK), normalizeKNN(gotK)) {
				t.Errorf("post-takeover knn %d from peer %d diverged:\nsim:    %+v\nserved: %+v", i, from, wantK, gotK)
			}
		}
	}
	if d := sumCounter(cl, "cache.revalidate") - reval; d == 0 {
		t.Error("queries after the crash trusted stale views: no revalidations recorded")
	}
}
