package node_test

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/experiments"
	"hyperm/internal/membership"
	"hyperm/internal/node"
	"hyperm/internal/route"
	"hyperm/internal/transport"
)

// churnPlan scripts one soak: the founding cluster size and the ordered churn
// events driven against it. Every event quiesces before the next fires, so
// each join, leave, and crash exercises the protocol from a settled state —
// including takeover nodes holding multiple zones from earlier rounds.
type churnPlan struct {
	peers  int
	events []string
}

func soakPlan() churnPlan {
	if testing.Short() {
		return churnPlan{
			peers:  8,
			events: []string{"join", "crash", "join", "leave", "join", "crash", "leave"},
		}
	}
	return churnPlan{
		peers: 16,
		events: []string{
			"join", "join", "crash", "join", "leave", "join", "crash", "join",
			"leave", "join", "crash", "join", "leave", "join", "crash", "leave",
		},
	}
}

// pickVictim chooses a churn victim: alive, and not one of the protected
// founders that anchor the query load and the join bootstrap.
func pickVictim(t *testing.T, rng *rand.Rand, alive []bool, protected int) int {
	t.Helper()
	var pool []int
	for id, up := range alive {
		if up && id >= protected {
			pool = append(pool, id)
		}
	}
	if len(pool) == 0 {
		t.Fatal("no churnable peer left")
	}
	return pool[rng.Intn(len(pool))]
}

// TestChurnSoak is the live-membership acceptance soak: a cluster with the
// failure detector running absorbs a scripted schedule of joins (protocol
// zone splits), graceful leaves (handoff takeovers), and crashes
// (probe-detected takeovers with replica republish) while background query
// load runs, on both transports. After every event the cluster must quiesce
// into a whole tiling with no dead peer in any neighbor table, and once the
// schedule ends every range and k-nn answer from every alive peer must be
// byte-identical to the simulator oracle that replayed the same schedule via
// JoinPeer/LeavePeer/CrashPeer — and the per-level overlay state itself must
// match the oracle's node views record for record.
func TestChurnSoak(t *testing.T) {
	for _, tc := range clusterTransports() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runChurnSoak(t, tc.mk(), tc.listen)
		})
	}
}

func runChurnSoak(t *testing.T, tr transport.Transport, listen func(int) string) {
	defer tr.Close()
	plan := soakPlan()
	const protected = 4 // founders never churned: query sources + join bootstrap
	params := experiments.Params{
		Peers: plan.peers, ItemsPerPeer: 30, Dim: 32, Levels: 3, ClustersPerPeer: 4, Seed: 7,
	}
	sys, err := experiments.BuildMarkovSystem(params)
	if err != nil {
		t.Fatal(err)
	}
	sys.PublishAll()

	mopts := membership.Options{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  150 * time.Millisecond,
		FailAfter:     2,
	}
	cl, err := node.StartClusterOpts(sys, tr, listen, transport.Policy{Timeout: 30e9}, mopts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	ctx := context.Background()
	qs, radii := testQueries(t, sys, 8)
	alive := make([]bool, plan.peers)
	for i := range alive {
		alive[i] = true
	}

	waitQuiesce := func(tag string) {
		t.Helper()
		waitClusterQuiesce(t, tag, cl, alive, params.Levels, mopts.ProbeInterval)
	}

	// Background query load for the whole churn window. Queries go through
	// the protected founders; failures are tolerated (a wave can hit a peer
	// mid-takeover) but counted — correctness is asserted after quiescence.
	// The founder addresses are snapshotted: cl.Addrs grows on every Join.
	loadAddrs := append([]string(nil), cl.Addrs[:protected]...)
	loadClient := node.NewClient(tr, transport.Policy{Timeout: 2e9})
	var issued, failed atomic.Int64
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			from := rng.Intn(len(loadAddrs))
			q := qs[i%len(qs)]
			issued.Add(1)
			if i%2 == 0 {
				if _, err := loadClient.Range(ctx, loadAddrs[from], q, radii[i%len(radii)], core.RangeOptions{}); err != nil {
					failed.Add(1)
				}
			} else {
				if _, err := loadClient.KNN(ctx, loadAddrs[from], q, 5, core.KNNOptions{}); err != nil {
					failed.Add(1)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	rng := rand.New(rand.NewSource(42))
	joins, leaves, crashes := 0, 0, 0
	for _, ev := range plan.events {
		switch ev {
		case "join":
			points := make([][]float64, params.Levels)
			for l := range points {
				ov, ok := sys.Overlay(l).(*can.Overlay)
				if !ok {
					t.Fatalf("level %d overlay is %T", l, sys.Overlay(l))
				}
				pt := make([]float64, ov.Dim())
				for d := range pt {
					pt[d] = rng.Float64()
				}
				points[l] = pt
			}
			id, err := sys.JoinPeer(points)
			if err != nil {
				t.Fatalf("oracle join: %v", err)
			}
			nd, err := cl.Join(ctx, sys, cl.Addrs[0], points)
			if err != nil {
				t.Fatalf("live join: %v", err)
			}
			if nd.Peer() != id {
				t.Fatalf("live joiner took id %d, oracle assigned %d", nd.Peer(), id)
			}
			alive = append(alive, true)
			joins++
		case "leave":
			v := pickVictim(t, rng, alive, protected)
			if _, err := sys.LeavePeer(v); err != nil {
				t.Fatalf("oracle leave %d: %v", v, err)
			}
			if err := cl.Nodes[v].Leave(ctx); err != nil {
				t.Fatalf("live leave %d: %v", v, err)
			}
			cl.Nodes[v].Stop()
			alive[v] = false
			leaves++
		case "crash":
			v := pickVictim(t, rng, alive, protected)
			if _, err := sys.CrashPeer(v); err != nil {
				t.Fatalf("oracle crash %d: %v", v, err)
			}
			cl.Nodes[v].Stop()
			alive[v] = false
			crashes++
		}
		waitQuiesce(ev)
	}
	close(stopLoad)
	wg.Wait()
	if issued.Load() == 0 {
		t.Fatal("no background query load ran during churn")
	}
	t.Logf("churn: %d joins, %d leaves, %d crashes; load: %d queries, %d failed mid-churn",
		joins, leaves, crashes, issued.Load(), failed.Load())

	// The overlay state every alive node converged to must be the oracle's,
	// view for view: zones, neighbor tables, and stored records.
	for l := 0; l < params.Levels; l++ {
		ov := sys.Overlay(l).(*can.Overlay)
		for id, nd := range cl.Nodes {
			if !alive[id] {
				continue
			}
			ls := nd.Membership().View(l)
			want := ov.View(id)
			if !zonesMatch(ls.Zones, want.Zones) {
				t.Errorf("peer %d level %d zones diverged:\nlive:   %v\noracle: %v", id, l, ls.Zones, want.Zones)
			}
			if len(ls.Neighbors) != len(want.Neighbors) {
				t.Errorf("peer %d level %d has %d neighbors, oracle %d", id, l, len(ls.Neighbors), len(want.Neighbors))
			} else {
				for i, nb := range ls.Neighbors {
					w := want.Neighbors[i]
					if nb.ID != w.ID || !zonesMatch(nb.Zones, w.Zones) {
						t.Errorf("peer %d level %d neighbor %d diverged: live %d %v, oracle %d %v",
							id, l, i, nb.ID, nb.Zones, w.ID, w.Zones)
					}
				}
			}
			checkRecords(t, "owned", id, l, ls.Owned, want.Owned)
			checkRecords(t, "replicas", id, l, ls.Replicas, want.Replicas)
		}
	}

	// Post-quiescence acceptance sweep: every query from every alive peer,
	// zero errors, byte-identical answers against the replayed oracle.
	client := node.NewClient(tr, transport.Policy{Timeout: 30e9})
	for id := range cl.Nodes {
		if !alive[id] {
			continue
		}
		for i, q := range qs {
			wantR := sys.RangeQuery(id, q, radii[i], core.RangeOptions{})
			gotR, err := client.Range(ctx, cl.Addrs[id], q, radii[i], core.RangeOptions{})
			if err != nil {
				t.Fatalf("post-quiescence range from %d: %v", id, err)
			}
			if !reflect.DeepEqual(normalizeRange(wantR), normalizeRange(gotR)) {
				t.Errorf("range query %d from peer %d diverged:\nsim:    %+v\nserved: %+v", i, id, wantR, gotR)
			}
			wantK := sys.KNNQuery(id, q, 5, core.KNNOptions{})
			gotK, err := client.KNN(ctx, cl.Addrs[id], q, 5, core.KNNOptions{})
			if err != nil {
				t.Fatalf("post-quiescence knn from %d: %v", id, err)
			}
			if !reflect.DeepEqual(normalizeKNN(wantK), normalizeKNN(gotK)) {
				t.Errorf("knn query %d from peer %d diverged:\nsim:    %+v\nserved: %+v", i, id, wantK, gotK)
			}
		}
	}
}

// clusterQuiet reports whether the cluster looks settled right now: no
// recovery republish in flight, every level's alive zones tile the full
// torus, and no alive node still lists a dead peer as a neighbor.
func clusterQuiet(cl *node.Cluster, alive []bool, levels int) bool {
	for id, nd := range cl.Nodes {
		if !alive[id] {
			continue
		}
		if nd.Membership().Busy() {
			return false
		}
	}
	for l := 0; l < levels; l++ {
		var tiles [][]route.Zone
		for id, nd := range cl.Nodes {
			if !alive[id] {
				continue
			}
			ls := nd.Membership().View(l)
			for _, nb := range ls.Neighbors {
				if nb.ID >= len(alive) || !alive[nb.ID] {
					return false
				}
			}
			tiles = append(tiles, ls.Zones)
		}
		if !route.VerifyTiling(tiles) {
			return false
		}
	}
	return true
}

// waitClusterQuiesce polls until clusterQuiet holds continuously for a settle
// window spanning several probe rounds — long enough for every detector to
// have refreshed its cached self-reports from the new topology, so the next
// crash's elections run on fresh knowledge, like the oracle's.
func waitClusterQuiesce(t *testing.T, tag string, cl *node.Cluster, alive []bool, levels int, probeInterval time.Duration) {
	t.Helper()
	settle := 6 * probeInterval
	deadline := time.Now().Add(30 * time.Second)
	var okSince time.Time
	for {
		if clusterQuiet(cl, alive, levels) {
			if okSince.IsZero() {
				okSince = time.Now()
			} else if time.Since(okSince) >= settle {
				return
			}
		} else {
			okSince = time.Time{}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: cluster failed to quiesce within 30s", tag)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func zonesMatch(a, b []route.Zone) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// checkRecords compares stored index records in order: sequence numbers,
// sphere geometry, and the cluster-ref payloads field by field (live records
// crossed the wire, so pointer identity is gone but values must survive).
func checkRecords(t *testing.T, kind string, peer, level int, got, want []route.RecordView) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("peer %d level %d has %d %s records, oracle %d", peer, level, len(got), kind, len(want))
		return
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Seq != w.Seq || g.Entry.Radius != w.Entry.Radius || !reflect.DeepEqual(g.Entry.Key, w.Entry.Key) {
			t.Errorf("peer %d level %d %s record %d diverged: live seq %d %v r=%v, oracle seq %d %v r=%v",
				peer, level, kind, i, g.Seq, g.Entry.Key, g.Entry.Radius, w.Seq, w.Entry.Key, w.Entry.Radius)
			continue
		}
		gr, ok1 := g.Entry.Payload.(core.ClusterRef)
		wr, ok2 := w.Entry.Payload.(core.ClusterRef)
		if !ok1 || !ok2 {
			t.Errorf("peer %d level %d %s record %d payload types %T vs %T", peer, level, kind, i, g.Entry.Payload, w.Entry.Payload)
			continue
		}
		if gr.Peer != wr.Peer || gr.Level != wr.Level || gr.Index != wr.Index || gr.Radius != wr.Radius ||
			gr.Items != wr.Items || !reflect.DeepEqual(gr.Center, wr.Center) {
			t.Errorf("peer %d level %d %s record %d payload diverged:\nlive:   %+v\noracle: %+v",
				peer, level, kind, i, gr, wr)
		}
	}
}
