package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/membership"
	"hyperm/internal/route"
	"hyperm/internal/sim"
	"hyperm/internal/store"
	"hyperm/internal/transport"
	"hyperm/internal/viewcache"
)

// Config parameterizes one serving node.
type Config struct {
	// Snapshot is the peer's slice of the deployment (see ExtractSnapshot).
	Snapshot Snapshot
	// Transport carries this node's RPCs — both the endpoint it serves and
	// the calls it makes to other nodes. Typically shared by every node of
	// an in-process cluster (chan transport) or one per process (TCP).
	Transport transport.Transport
	// Listen is the address to serve on ("" lets the chan transport pick a
	// name; "127.0.0.1:0" lets TCP pick a port).
	Listen string
	// Retry is the policy for node→node calls. Zero value = defaults.
	Retry transport.Policy
	// Membership tunes the live membership protocol. The zero value serves
	// join/leave/handoff RPCs but runs no liveness probes (static clusters).
	Membership membership.Options
	// Tuning configures the parallel lookup coordinator. The zero value
	// enables the defaults (α=3, all levels pipelined); see Tuning.
	Tuning Tuning
}

// DefaultAlpha is the number of concurrent can_search probes a lookup keeps
// in flight per flood step (Kademlia's α).
const DefaultAlpha = 3

// DefaultCacheSize is the per-level view-cache capacity when Tuning.CacheViews
// is on and no size is given.
const DefaultCacheSize = 1024

// DefaultHotThreshold is the windowed fetch-hit count that marks a node hot
// when Tuning.HotReplicate is on and no threshold is given.
const DefaultHotThreshold = 16

// Tuning bounds the coordinator's parallelism and caching. Every knob
// preserves byte-identical answers (the concurrency never reaches the result
// — see route.RunAlpha and core.Engine.SetParallelism — and cached views are
// epoch-checked or revalidated before use, see internal/viewcache); they only
// trade memory and in-flight RPCs for latency. Zero values mean defaults; use
// a negative or 1 value for strictly serial behavior. Caching is off by
// default — the zero Tuning is still the frozen uncached reference.
type Tuning struct {
	// Alpha is the number of concurrent can_search probes per flood step.
	// 0 → DefaultAlpha; <= 1 → serial.
	Alpha int
	// LevelFanout is how many per-level overlay searches run at once.
	// 0 → 8 (effectively all levels); <= 1 → serial.
	LevelFanout int
	// FetchFanout is how many phase-two fetches run at once.
	// 0 → 8; <= 1 → serial.
	FetchFanout int
	// CacheViews enables the per-level LRU cache of can_search views with
	// churn-epoch invalidation: cached hops skip the RPC entirely, stale
	// entries are revalidated with a view_version check, never trusted.
	CacheViews bool
	// CacheSize bounds the unpinned entries cached per level.
	// 0 → 1024. Only meaningful with CacheViews.
	CacheSize int
	// HotReplicate enables demand-driven replication: nodes whose records
	// keep satisfying this coordinator's queries are pulled whole
	// (replicate_refs) and pinned in the cache, so floods terminate at the
	// replica. Requires CacheViews.
	HotReplicate bool
	// HotThreshold is the windowed fetch-hit count that marks a node hot.
	// 0 → 16. Only meaningful with HotReplicate.
	HotThreshold int
	// AggFanout enables delegated flood aggregation (can_search_agg): the
	// coordinator hands whole flood regions to the first node contacted in
	// each, which gathers the region's views locally — sub-delegating up to
	// AggFanout of its own frontier claims — and piggybacks them back in one
	// response. Kills the Θ(N) coordinator-side first-touch cost; answers
	// stay byte-identical (delegation only changes who fetches views, the
	// coordinator replays the same serial machine over the gathered pool —
	// see delegate.go and DESIGN.md §13). 0 → off (frozen reference).
	AggFanout int
	// AggDepth bounds recursive sub-delegation. 0 → 2 when AggFanout is on.
	AggDepth int
	// WarmPush enables proactive view warming: after a churn epoch this node
	// pushes its refreshed view to up to WarmPush recent delegation
	// requesters, pre-healing their caches before the next cold query.
	// 0 → off.
	WarmPush int
	// StreamPublish enables streaming incremental publish: Publish runs the
	// core stream kernel (absorb/grow/split, periodic re-cluster) against the
	// published summaries and announces the O(changed clusters) record deltas
	// as store_rec RPCs — routed to each record's owner and flooded across its
	// sphere — so the overlay stays fresh instead of degrading like Fig 10c.
	// Changes the answer by design (fresher summaries), byte-identically to
	// the simulator's StreamInsert oracle. Incompatible with AggFanout: record
	// churn bumps only view versions, and the delegated-aggregation pool has
	// no per-view revalidation step.
	StreamPublish bool
	// GrowSlack and ReclusterEvery forward to core.StreamTuning (0 →
	// kernel defaults). Only meaningful with StreamPublish.
	GrowSlack      float64
	ReclusterEvery int
}

func (t Tuning) withDefaults() Tuning {
	if t.Alpha == 0 {
		t.Alpha = DefaultAlpha
	}
	if t.LevelFanout == 0 {
		t.LevelFanout = 8
	}
	if t.FetchFanout == 0 {
		t.FetchFanout = 8
	}
	if t.CacheViews && t.CacheSize == 0 {
		t.CacheSize = DefaultCacheSize
	}
	if t.HotReplicate && t.HotThreshold == 0 {
		t.HotThreshold = DefaultHotThreshold
	}
	if t.AggFanout > 0 && t.AggDepth == 0 {
		t.AggDepth = DefaultAggDepth
	}
	return t
}

// Node hosts one peer: its items, published summaries, and per-level CAN
// slice. After Start it serves the node RPCs; after SetPeers it can answer
// queries (which require contacting other nodes). Safe for concurrent use.
//
// The per-level overlay state — zones, neighbor tables, stored records — is
// owned by the node's membership.Manager, which mutates it as peers join,
// leave, and crash around this node; queries read consistent copies from it.
type Node struct {
	peer   int
	cfg    core.Config
	mgr    *membership.Manager
	engine *core.Engine
	tr     transport.Transport
	client *transport.Client
	listen string

	mu sync.RWMutex // guards store, published, pubSeqs, stream (publish vs fetch)
	// store is the node's flat item store (see internal/store): the serving
	// path scans it in place; Publish appends to it (the explicit copy point).
	store *store.Store
	// published is local bookkeeping only unless streaming is on: Publish
	// absorbs new items into it (core.AbsorbInsert) while the overlay records
	// stay stale, exactly like the simulator's PostInsert. With
	// Tuning.StreamPublish the kernel keeps it — and the overlay records —
	// fresh instead.
	published [][]core.ClusterRef
	// pubSeqs are the overlay identities of published (Snapshot.PubSeqs);
	// stream is the incremental-publish kernel state, built lazily on the
	// first streamed Publish; mappers rebuild the simulator's exact
	// bounds→key-space rule for the records streaming publish announces.
	pubSeqs [][]int
	stream  *core.StreamState
	mappers []core.KeyMapper

	srvMu sync.Mutex
	srv   transport.Server

	tuning   Tuning
	counters sim.Counters
	// cache is the per-level view cache (nil unless Tuning.CacheViews).
	cache *viewcache.Cache

	// fetchMemo caches encoded fetch_range/fetch_knn response bodies keyed by
	// the raw request body (used only with Tuning.CacheViews; lazily built).
	// Purely local coherence: the answers depend only on this node's item
	// store, which mutates only in Publish — which clears the memo. Bounded
	// by reset (see fetchMemoPut).
	// fetchGen counts Publish invalidations: a response computed before a
	// publish must not enter the memo after that publish filtered it, so
	// handlers snapshot the generation before scanning the store and Put
	// discards stale stores.
	fetchMu   sync.Mutex
	fetchMemo map[string][]byte
	fetchGen  uint64

	// Coordinator-side fetch-result cache and the holder-side registry of
	// caching coordinators; coherence protocol documented in fetchcache.go.
	cliMu       sync.Mutex
	cliFetch    map[int]map[string]cliFetchEntry
	cliGen      map[int]uint64
	cliSubbed   map[int]bool
	cliCount    int
	cliEpochSig uint64

	subsMu    sync.Mutex
	fetchSubs map[int]struct{}

	// Proactive warming state (Tuning.WarmPush > 0; see delegate.go):
	// recent can_search_agg requesters and the per-level dirty flags the
	// membership epoch hook sets for the warm loop to drain.
	warmMu     sync.Mutex
	warmPeers  map[int]uint64
	warmSeq    uint64
	warmDirty  []atomic.Bool
	warmNotify chan struct{}
	warmStop   chan struct{}
	warmWG     sync.WaitGroup
}

// fetchMemoCap bounds the fetch memo; on overflow the whole memo resets
// (repeat-heavy workloads refill it in a handful of queries).
const fetchMemoCap = 4096

// fetchMemoKey builds tag+body into buf when it fits (the common case, so the
// per-RPC lookup key lives on the caller's stack) and heap-allocates otherwise.
func fetchMemoKey(buf []byte, tag byte, body []byte) []byte {
	var key []byte
	if 1+len(body) <= cap(buf) {
		key = buf[:1+len(body)]
	} else {
		key = make([]byte, 1+len(body))
	}
	key[0] = tag
	copy(key[1:], body)
	return key
}

// fetchMemoGet returns the memoized response body for one fetch RPC request,
// keyed by a method tag plus the raw request body, along with the publish
// generation a miss must hand back to fetchMemoPut.
func (n *Node) fetchMemoGet(tag byte, body []byte) ([]byte, uint64, bool) {
	var kb [512]byte
	key := fetchMemoKey(kb[:], tag, body)
	n.fetchMu.Lock()
	out, ok := n.fetchMemo[string(key)] // no-alloc map lookup
	gen := n.fetchGen
	n.fetchMu.Unlock()
	if ok {
		n.count("cache.fetch_hit")
	}
	return out, gen, ok
}

// fetchMemoPut memoizes one encoded fetch response, unless a publish ran
// since the caller snapshotted gen — the response may predate it.
func (n *Node) fetchMemoPut(tag byte, body, resp []byte, gen uint64) {
	var kb [512]byte
	key := fetchMemoKey(kb[:], tag, body)
	n.fetchMu.Lock()
	if n.fetchGen == gen {
		if n.fetchMemo == nil || len(n.fetchMemo) >= fetchMemoCap {
			n.fetchMemo = make(map[string][]byte, fetchMemoCap)
		}
		n.fetchMemo[string(key)] = resp
	}
	n.fetchMu.Unlock()
}

// levelFromView converts a snapshot level into membership state. Neighbor
// addresses are unknown at snapshot time; SetPeers fills them in.
func levelFromView(v can.NodeView) membership.LevelState {
	ls := membership.LevelState{
		Zones:    append([]route.Zone(nil), v.Zones...),
		Owned:    append([]route.RecordView(nil), v.Owned...),
		Replicas: append([]route.RecordView(nil), v.Replicas...),
	}
	for _, nb := range v.Neighbors {
		ls.Neighbors = append(ls.Neighbors, membership.Neighbor{ID: nb.ID, Zones: nb.Zones})
	}
	return ls
}

// New builds a node from its snapshot. The node is inert until Start.
func New(cfg Config) (*Node, error) {
	snap := cfg.Snapshot
	if cfg.Transport == nil {
		return nil, fmt.Errorf("node: transport is required")
	}
	if len(snap.Levels) != snap.Config.Levels {
		return nil, fmt.Errorf("node: snapshot has %d level views for %d levels", len(snap.Levels), snap.Config.Levels)
	}
	st := snap.Store
	if st == nil {
		st = store.New(snap.Config.Dim)
	}
	if st.Dim() != snap.Config.Dim {
		return nil, fmt.Errorf("node: snapshot store dim %d, want %d", st.Dim(), snap.Config.Dim)
	}
	n := &Node{
		peer:      snap.Peer,
		cfg:       snap.Config,
		tr:        cfg.Transport,
		client:    transport.NewClient(cfg.Transport, cfg.Retry),
		listen:    cfg.Listen,
		store:     st,
		published: snap.Published,
		pubSeqs:   snap.PubSeqs,
		tuning:    cfg.Tuning.withDefaults(),
	}
	if n.tuning.StreamPublish && n.tuning.AggFanout > 0 {
		return nil, fmt.Errorf("node: StreamPublish is incompatible with AggFanout (delegated view pools are not revalidated against record churn)")
	}
	if n.tuning.StreamPublish {
		n.mappers = core.BuildKeyMappers(snap.Bounds)
	}
	levels := make([]membership.LevelState, len(snap.Levels))
	for l, v := range snap.Levels {
		levels[l] = levelFromView(v)
	}
	n.mgr = membership.NewManager(snap.Peer, snap.ClusterSize, levels, n, cfg.Membership)
	engine, err := core.NewEngine(snap.Config, snap.Bounds, &netBackend{n: n})
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	// The RPC backend is safe for concurrent calls, so the coordinator can
	// pipeline the per-level searches and the phase-two fetches.
	engine.SetParallelism(n.tuning.LevelFanout, n.tuning.FetchFanout)
	n.engine = engine
	if n.tuning.CacheViews {
		hot := 0
		if n.tuning.HotReplicate {
			hot = n.tuning.HotThreshold
		}
		n.cache = viewcache.New(snap.Config.Levels, viewcache.Options{
			Capacity:     n.tuning.CacheSize,
			HotThreshold: hot,
			Counters:     &n.counters,
		})
	}
	if n.tuning.WarmPush > 0 {
		n.warmDirty = make([]atomic.Bool, snap.Config.Levels)
		n.warmNotify = make(chan struct{}, 1)
		n.warmStop = make(chan struct{})
		// The hook runs under the manager's state lock: onEpochBump only
		// flips an atomic and nudges the warm loop.
		n.mgr.SetEpochHook(n.onEpochBump)
	}
	return n, nil
}

// Peer returns the node's peer id.
func (n *Node) Peer() int { return n.peer }

// Membership exposes the node's membership manager (overlay state reads,
// quiescence checks).
func (n *Node) Membership() *membership.Manager { return n.mgr }

// Start begins serving the node's RPC endpoint and, when a probe interval is
// configured, the liveness probe loop.
func (n *Node) Start() error {
	n.srvMu.Lock()
	defer n.srvMu.Unlock()
	if n.srv != nil {
		return fmt.Errorf("node: peer %d already started", n.peer)
	}
	srv, err := n.tr.Serve(n.listen, n.handle)
	if err != nil {
		return fmt.Errorf("node: peer %d: %w", n.peer, err)
	}
	n.srv = srv
	n.mgr.SetSelfAddr(srv.Addr())
	n.mgr.StartProbing()
	if n.tuning.WarmPush > 0 {
		n.warmWG.Add(1)
		go n.warmLoop()
	}
	return nil
}

// Addr returns the served address (empty before Start).
func (n *Node) Addr() string {
	n.srvMu.Lock()
	defer n.srvMu.Unlock()
	if n.srv == nil {
		return ""
	}
	return n.srv.Addr()
}

// SetPeers installs the cluster address book: addrs[p] is peer p's serving
// address. Must be called (on every node) after all nodes have started and
// before any query traffic. Nodes joining later are learned dynamically —
// from join grants, zone updates, and the views crossing can_search RPCs.
func (n *Node) SetPeers(addrs []string) {
	n.mgr.SeedBook(addrs)
}

func (n *Node) peerAddr(p int) (string, error) {
	return n.mgr.Addr(p)
}

// Join brings this (empty) node into the running cluster reachable at the
// bootstrap address, splitting the zone owning points[l] at each level l.
// The node must be started first (the grant references our address).
func (n *Node) Join(ctx context.Context, bootstrap string, points [][]float64) error {
	return n.mgr.Join(ctx, bootstrap, points)
}

// Leave removes this node gracefully: its zones and records are handed to
// elected neighbors on every level. The endpoint keeps serving until Stop so
// in-flight protocol traffic can drain.
func (n *Node) Leave(ctx context.Context) error {
	return n.mgr.Leave(ctx)
}

// Stop tears down the probe loop and the RPC endpoint. In-flight requests
// are abandoned (their callers see a retryable transport fault). Idempotent.
func (n *Node) Stop() error {
	n.mgr.StopProbing()
	n.srvMu.Lock()
	srv := n.srv
	n.srv = nil
	n.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	if n.warmStop != nil {
		// First Stop with a live server: the warm loop is running (Start
		// launched it) and this path runs at most once, so the close is safe.
		close(n.warmStop)
		n.warmWG.Wait()
	}
	return srv.Close()
}

// Counters returns a snapshot of the node's per-RPC counters ("rpc.range",
// "rpc.can_search", …).
func (n *Node) Counters() map[string]float64 {
	return n.counters.Snapshot()
}

// count tallies one RPC; sim.Counters is safe under the node's concurrent
// handlers and lookup workers.
func (n *Node) count(name string) { n.counters.Add(name, 1) }

// RangeQuery answers a range query with this node as the querying peer,
// driving the overlay lookups peer-to-peer. Byte-identical to the source
// System's RangeQuery from the same state.
func (n *Node) RangeQuery(ctx context.Context, q []float64, eps float64, opts core.RangeOptions) (core.RangeResult, error) {
	if len(q) != n.cfg.Dim {
		return core.RangeResult{}, fmt.Errorf("node: query dim %d, want %d", len(q), n.cfg.Dim)
	}
	if eps < 0 {
		return core.RangeResult{}, fmt.Errorf("node: negative query radius")
	}
	return n.engine.RangeQuery(n.peer, q, eps, opts)
}

// KNNQuery answers a k-nn query with this node as the querying peer.
func (n *Node) KNNQuery(ctx context.Context, q []float64, k int, opts core.KNNOptions) (core.KNNResult, error) {
	if len(q) != n.cfg.Dim {
		return core.KNNResult{}, fmt.Errorf("node: query dim %d, want %d", len(q), n.cfg.Dim)
	}
	if k < 1 {
		return core.KNNResult{}, fmt.Errorf("node: k must be >= 1, got %d", k)
	}
	return n.engine.KNNQuery(n.peer, q, k, opts)
}

// Publish post-inserts one item into this node's local store and absorbs it
// into the nearest published cluster per level — core.System.PostInsert
// semantics: the overlay summaries stay stale (Fig 10c). With
// Tuning.StreamPublish the insert instead runs the incremental publish kernel
// and announces the changed records (see stream.go).
func (n *Node) Publish(id int, item []float64) error {
	if len(item) != n.cfg.Dim {
		return fmt.Errorf("node: item dim %d, want %d", len(item), n.cfg.Dim)
	}
	if n.tuning.StreamPublish {
		return n.publishStream(id, item)
	}
	n.mu.Lock()
	n.store.Append(id, item)
	core.AbsorbInsert(n.published, item, n.cfg.Convention)
	n.mu.Unlock()
	// The item store changed: drop exactly the memoized fetch answers the new
	// item can alter (fetchEntryCovered is the complement of the local scan
	// predicates) and bump the generation so racing handlers don't re-insert
	// answers computed against the pre-publish store.
	n.fetchMu.Lock()
	n.fetchGen++
	dropCoveredFetchEntries(n.fetchMemo, item)
	n.fetchMu.Unlock()
	// Caching coordinators hold the same answers remotely: notify every
	// registered subscriber and only then acknowledge the publish, so any
	// later query anywhere sees the new item (see fetchcache.go).
	n.broadcastInvalidate([][]float64{item})
	return nil
}

// PublishBatch post-inserts a batch of items in order with one coherence
// round: the store mutations happen under a single lock acquisition, the
// fetch memo takes one generation bump with a per-item covered-entry sweep,
// and every registered coordinator gets one invalidation message carrying the
// whole batch instead of len(items) RPCs. The resulting store and summary
// state is exactly a Publish-per-item sequence (oracle:
// core.System.PostInsertBatch). With Tuning.StreamPublish the kernel must
// interleave deltas with their announcements, so the batch runs as sequential
// streamed publishes.
func (n *Node) PublishBatch(ids []int, items [][]float64) error {
	if len(ids) != len(items) {
		return fmt.Errorf("node: batch has %d ids for %d items", len(ids), len(items))
	}
	for i, item := range items {
		if len(item) != n.cfg.Dim {
			return fmt.Errorf("node: batch item %d dim %d, want %d", i, len(item), n.cfg.Dim)
		}
	}
	if len(items) == 0 {
		return nil
	}
	if n.tuning.StreamPublish {
		for i := range items {
			if err := n.publishStream(ids[i], items[i]); err != nil {
				return err
			}
		}
		return nil
	}
	n.mu.Lock()
	for i, item := range items {
		n.store.Append(ids[i], item)
		core.AbsorbInsert(n.published, item, n.cfg.Convention)
	}
	n.mu.Unlock()
	n.fetchMu.Lock()
	n.fetchGen++
	for _, item := range items {
		dropCoveredFetchEntries(n.fetchMemo, item)
	}
	n.fetchMu.Unlock()
	n.broadcastInvalidate(items)
	return nil
}

// ItemCount returns the number of locally stored items.
func (n *Node) ItemCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.store.Len()
}

// StoreHeapBytes returns the heap footprint of this node's flat item store
// (id column plus allocated block capacity) — the per-node number the
// bench-mem harness sums into its heap telemetry.
func (n *Node) StoreHeapBytes() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.store.HeapBytes()
}

// remoteErr classifies a query error for the wire: the routing-core stall
// sentinels get their detail token attached so clients (hyperm-load) can
// count routing stalls separately from transport failures; anything else
// crosses unannotated.
func remoteErr(err error) error {
	switch {
	case errors.Is(err, route.ErrLoopLimit):
		return transport.WithDetail(err, route.DetailLoopLimit)
	case errors.Is(err, route.ErrNoNeighbor):
		return transport.WithDetail(err, route.DetailNoNeighbor)
	}
	return err
}

// handle dispatches one RPC.
func (n *Node) handle(ctx context.Context, req transport.Request) (transport.Response, error) {
	n.count("rpc." + req.Method)
	switch req.Method {
	case methodRange:
		q, eps, opts, err := decodeRangeReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		res, err := n.RangeQuery(ctx, q, eps, opts)
		if err != nil {
			return transport.Response{}, remoteErr(err)
		}
		return transport.Response{Body: encodeRangeResp(res)}, nil

	case methodKNN:
		q, k, opts, err := decodeKNNReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		res, err := n.KNNQuery(ctx, q, k, opts)
		if err != nil {
			return transport.Response{}, remoteErr(err)
		}
		return transport.Response{Body: encodeKNNResp(res)}, nil

	case methodPublish:
		id, item, err := decodePublishReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		if err := n.Publish(id, item); err != nil {
			return transport.Response{}, err
		}
		return transport.Response{}, nil

	case methodPublishBatch:
		ids, items, err := decodePublishBatchReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		if err := n.PublishBatch(ids, items); err != nil {
			return transport.Response{}, err
		}
		return transport.Response{}, nil

	case methodCanSearch:
		level, key, radius, full, err := decodeSearchReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		if level < 0 || level >= n.mgr.NumLevels() {
			return transport.Response{}, fmt.Errorf("node: no level %d", level)
		}
		v := searchView{}
		if full {
			v = n.localFullView(level)
		} else {
			v = n.localView(level, key, radius)
		}
		body, err := encodeSearchResp(v)
		if err != nil {
			return transport.Response{}, err
		}
		return transport.Response{Body: body}, nil

	case methodCanSearchAgg:
		return n.handleAgg(ctx, req.Body)

	case methodWarmViews:
		return n.handleWarm(req.Body)

	case methodViewVersion:
		level, err := decodeLevelReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		if level < 0 || level >= n.mgr.NumLevels() {
			return transport.Response{}, fmt.Errorf("node: no level %d", level)
		}
		return transport.Response{Body: encodeVersionResp(n.mgr.Version(level))}, nil

	case methodReplicate:
		level, err := decodeLevelReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		if level < 0 || level >= n.mgr.NumLevels() {
			return transport.Response{}, fmt.Errorf("node: no level %d", level)
		}
		body, err := encodeSearchResp(n.localFullView(level))
		if err != nil {
			return transport.Response{}, err
		}
		return transport.Response{Body: body}, nil

	case methodFetchSub:
		peer, err := decodePeerReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		n.registerFetchSub(peer)
		return transport.Response{}, nil

	case methodFetchInval:
		holder, items, err := decodeInvalReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		n.invalidateFetch(holder, items)
		return transport.Response{}, nil

	case methodFetchRange:
		var gen uint64
		if n.tuning.CacheViews {
			body, g, ok := n.fetchMemoGet('r', req.Body)
			if ok {
				return transport.Response{Body: body}, nil
			}
			gen = g
		}
		q, eps, err := decodeFetchRangeReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		n.mu.RLock()
		ids := core.LocalRange(q, eps, n.store)
		n.mu.RUnlock()
		body := encodeFetchRangeResp(ids)
		if n.tuning.CacheViews {
			n.fetchMemoPut('r', req.Body, body, gen)
		}
		return transport.Response{Body: body}, nil

	case methodFetchKNN:
		var gen uint64
		if n.tuning.CacheViews {
			body, g, ok := n.fetchMemoGet('k', req.Body)
			if ok {
				return transport.Response{Body: body}, nil
			}
			gen = g
		}
		q, k, err := decodeFetchKNNReq(req.Body)
		if err != nil {
			return transport.Response{}, err
		}
		n.mu.RLock()
		items := core.LocalKNN(q, k, n.store)
		n.mu.RUnlock()
		body := encodeFetchKNNResp(items)
		if n.tuning.CacheViews {
			n.fetchMemoPut('k', req.Body, body, gen)
		}
		return transport.Response{Body: body}, nil

	default:
		if membership.IsMethod(req.Method) {
			body, err := n.mgr.HandleRPC(ctx, req.Method, req.Body)
			if err != nil {
				return transport.Response{}, err
			}
			return transport.Response{Body: body}, nil
		}
		return transport.Response{}, fmt.Errorf("node: unknown method %q", req.Method)
	}
}

// localView answers one can_search hop from this node's own slice: identity,
// zones, neighbor table, and the stored records matching the query sphere in
// storage order (owned first, then replicas) — the same order and match test
// (can.TorusDist(key, center) <= recRadius+radius) as can.Overlay's collect.
// The view carries the level's state version, read under the same lock as the
// state it stamps, so caches revalidate against exactly what they stored.
func (n *Node) localView(level int, key []float64, radius float64) searchView {
	zones, nbs, owned, replicas, ver := n.mgr.SearchView(level, func(rec can.RecordView) bool {
		return can.TorusDist(rec.Entry.Key, key) <= rec.Entry.Radius+radius
	})
	return searchView{ID: n.peer, Version: ver, Zones: zones, Neighbors: nbs, Owned: owned, Replicas: replicas}
}

// localFullView is localView without the sphere filter: the complete record
// stores, what cache fills (can_search full=1) and hot-replica pulls
// (replicate_refs) return so the cached copy can answer any later sphere.
func (n *Node) localFullView(level int) searchView {
	zones, nbs, owned, replicas, ver := n.mgr.SearchView(level, nil)
	return searchView{ID: n.peer, Version: ver, Zones: zones, Neighbors: nbs, Owned: owned, Replicas: replicas}
}

// netBackend implements core.Backend with peer-to-peer RPCs: the overlay
// search runs the coordinator-driven CAN lookup of search.go, and fetches go
// straight to the scored peer's endpoint (one RPC each, like the paper's
// phase-two contact). Methods live in search.go and fetch.go.
type netBackend struct{ n *Node }
