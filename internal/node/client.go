package node

import (
	"context"
	"fmt"

	"hyperm/internal/core"
	"hyperm/internal/transport"
)

// Client issues query and publish RPCs against serving nodes. It is the
// front door used by cmd/hyperm-load and the integration tests; each call
// targets one node's address, and that node coordinates whatever multi-hop
// work the request needs.
type Client struct {
	c *transport.Client
}

// NewClient builds a client over tr with the given retry policy (zero value
// = defaults).
func NewClient(tr transport.Transport, p transport.Policy) *Client {
	return &Client{c: transport.NewClient(tr, p)}
}

// Range runs a range query on the node at addr, which acts as the querying
// peer.
func (c *Client) Range(ctx context.Context, addr string, q []float64, eps float64, opts core.RangeOptions) (core.RangeResult, error) {
	resp, err := c.c.Call(ctx, addr, transport.Request{Method: methodRange, Body: encodeRangeReq(q, eps, opts)})
	if err != nil {
		return core.RangeResult{}, fmt.Errorf("node: range via %s: %w", addr, err)
	}
	return decodeRangeResp(resp.Body)
}

// KNN runs a k-nn query on the node at addr.
func (c *Client) KNN(ctx context.Context, addr string, q []float64, k int, opts core.KNNOptions) (core.KNNResult, error) {
	resp, err := c.c.Call(ctx, addr, transport.Request{Method: methodKNN, Body: encodeKNNReq(q, k, opts)})
	if err != nil {
		return core.KNNResult{}, fmt.Errorf("node: knn via %s: %w", addr, err)
	}
	return decodeKNNResp(resp.Body)
}

// Publish post-inserts one item on the node at addr (PostInsert semantics:
// the node's overlay summaries go stale, Fig 10c).
func (c *Client) Publish(ctx context.Context, addr string, id int, item []float64) error {
	_, err := c.c.Call(ctx, addr, transport.Request{Method: methodPublish, Body: encodePublishReq(id, item)})
	if err != nil {
		return fmt.Errorf("node: publish via %s: %w", addr, err)
	}
	return nil
}
