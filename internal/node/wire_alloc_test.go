package node

import (
	"testing"

	"hyperm/internal/core"
	"hyperm/internal/membership"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
)

// Allocation fences for the serving path's hot wire decoders. A can_search
// view carrying R records used to cost >= 3 allocations per record (key
// vector, centroid vector, payload boxing); with the decoder arena only the
// interface boxing of each ClusterRef remains. These fences keep that true —
// a decode regression shows up as a hard failure, not a silent heap bloat at
// 100k items/node.

// benchView builds a full searchView with records records across owned and
// replica stores — the dominant response shape under query load.
func benchView(records int) searchView {
	v := searchView{ID: 7, Version: 42}
	v.Zones = []route.Zone{{Lo: []float64{0, 0}, Hi: []float64{0.5, 1}}}
	v.Neighbors = []membership.Neighbor{
		{ID: 3, Addr: "peer-3", Zones: []route.Zone{{Lo: []float64{0.5, 0}, Hi: []float64{1, 1}}}},
	}
	for i := 0; i < records; i++ {
		rec := route.RecordView{
			Seq: i,
			Entry: overlay.Entry{
				Key: []float64{float64(i) / float64(records), 0.25}, Radius: 0.1,
				Payload: core.ClusterRef{
					Peer: i % 8, Level: 1, Index: i % 4,
					Center: []float64{1, 2, 3, 4, 5, 6, 7, 8},
					Radius: 0.5, Items: 10,
				},
			},
		}
		if i%2 == 0 {
			v.Owned = append(v.Owned, rec)
		} else {
			v.Replicas = append(v.Replicas, rec)
		}
	}
	return v
}

func TestSearchRespDecodeAllocFence(t *testing.T) {
	const records = 256
	body, err := encodeSearchResp(benchView(records))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		v, err := decodeSearchResp(body)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.Owned)+len(v.Replicas) != records {
			t.Fatalf("decoded %d records, want %d", len(v.Owned)+len(v.Replicas), records)
		}
	})
	t.Logf("decodeSearchResp with %d records: %.0f allocs", records, allocs)
	// One boxing per record is structural (Entry.Payload is an interface);
	// everything else — vectors, zone coordinates — must come from the arena.
	// The old per-vector decode sat at >= 3x records.
	if allocs > records+32 {
		t.Errorf("decodeSearchResp with %d records took %.0f allocs, want <= %d (boxing + arena blocks)",
			records, allocs, records+32)
	}
}

func TestFetchRespDecodeAllocFence(t *testing.T) {
	ids := make([]int, 512)
	for i := range ids {
		ids[i] = i * 3
	}
	body := encodeFetchRangeResp(ids)
	allocs := testing.AllocsPerRun(50, func() {
		got, err := decodeFetchRangeResp(body)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ids) {
			t.Fatalf("decoded %d ids, want %d", len(got), len(ids))
		}
	})
	t.Logf("decodeFetchRangeResp with %d ids: %.0f allocs", len(ids), allocs)
	if allocs > 4 {
		t.Errorf("decodeFetchRangeResp took %.0f allocs, want <= 4 (decoder + arena block)", allocs)
	}
}

// TestStoreRecRoundTripAllocFence bounds the publish-delta decode: the per-
// announce store_rec body carries one record, so the whole decode must stay a
// small constant.
func TestStoreRecRoundTripAllocFence(t *testing.T) {
	v := benchView(1)
	body, err := membership.EncodeStoreRecReq(membership.StoreRecReq{
		Level: 1, Del: false, AsOwner: true, Rec: v.Owned[0],
	})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := membership.DecodeStoreRecReq(body); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("DecodeStoreRecReq: %.0f allocs", allocs)
	if allocs > 8 {
		t.Errorf("DecodeStoreRecReq took %.0f allocs, want <= 8", allocs)
	}
}
