package node

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hyperm/internal/membership"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
	"hyperm/internal/transport"
	"hyperm/internal/viewcache"
)

// Delegated flood aggregation (Tuning.AggFanout > 0).
//
// The serial reference has the lookup coordinator contact every
// sphere-intersecting zone owner itself — Θ(N) can_search RPCs on a cold
// query. In delegated mode the coordinator still drives the exact same
// route.Search machine, but views arrive differently: on the first flood
// visit of an unexplored region it sends ONE can_search_agg to that node,
// which floods the region from its own (free, local) view, fetches or
// sub-delegates the rest, and returns every full view it gathered plus the
// ids it claimed. The coordinator merges the piggybacked views into a
// per-query pool (route.MergeViews, exact first-wins dedup), installs them
// into its viewcache at the pre-gather epoch, and replays the machine with
// pool-first resolution — so entries, hops, and errors stay byte-identical
// to route.Run over direct fetches (TestDelegationDifferential), while
// coordinator RPCs per cold query drop from Θ(N) to O(routing hops +
// delegations). Pool gaps are harmless: the replay falls back to the
// ordinary per-node fetch path.
//
// Epoch note: a delegate may serve a view out of its own cache that is
// fresh by the delegate's epoch reckoning. The coordinator installs
// piggybacked views at the epoch it observed before the gather, so any
// event the coordinator has seen (or sees next) marks them stale and forces
// revalidation — the same residual in-flight window every RPC already has
// (DESIGN.md §13).

// DefaultAggDepth is the recursive sub-delegation budget when
// Tuning.AggFanout is on and no depth is given.
const DefaultAggDepth = 2

// Server-side clamps on delegation requests, so a buggy or hostile
// requester cannot make one RPC fan out without bound.
const (
	maxAggDepth  = 8
	maxAggFanout = 32
)

// warmPeersCap bounds the recent-requester set the proactive warmer pushes
// to; beyond it the oldest requesters are forgotten.
const warmPeersCap = 64

// gatherer drives one delegate-side region gather: the ViewSource and
// SubDelegate that route.Delegate consumes, keeping the full wire views
// (version + neighbor addresses) alongside the NodeViews the flood machine
// sees, so the response can piggyback everything the requester needs to
// install them.
type gatherer struct {
	n      *Node
	ctx    context.Context
	level  int
	key    []float64
	radius float64
	fanout int
	views  map[int]searchView
}

// View fetches one node's full view for the gather — through this
// delegate's own viewcache when it has one, a direct can_search otherwise.
func (g *gatherer) View(id int) (route.NodeView, error) {
	if g.n.cache != nil {
		return g.n.cachedFullView(g.ctx, g.level, id, g.views)
	}
	sv, err := g.n.fetchFullView(g.ctx, g.level, id, ctrAggFetch)
	if err != nil {
		return route.NodeView{}, err
	}
	g.views[id] = sv
	return g.n.toNodeView(sv), nil
}

// sub forwards one sub-delegation and folds the piggybacked views into the
// gather.
func (g *gatherer) sub(to int, claimed []int, depth int) (route.DelegateResult, error) {
	svs, subClaimed, err := g.n.callAgg(g.ctx, g.level, to, g.key, g.radius, claimed, depth, g.fanout, ctrAggSub)
	if err != nil {
		return route.DelegateResult{}, err
	}
	res := route.DelegateResult{Claimed: subClaimed, Views: make([]route.NodeView, 0, len(svs))}
	for _, sv := range svs {
		if _, ok := g.views[sv.ID]; !ok {
			g.views[sv.ID] = sv
		}
		res.Views = append(res.Views, g.n.toNodeView(sv))
	}
	return res, nil
}

// cachedFullView serves one gather fetch through this delegate's viewcache
// — but with a stricter freshness bar than the delegate's own lookups. A
// piggybacked view must be bit-identical to what a live fetch would return
// NOW: churn epochs are per-node local counters, so "fresh at this
// delegate's epoch" proves nothing to a coordinator that may have observed
// events this delegate has not. Every cached entry — even an epoch-fresh
// hit — is therefore revalidated with a version probe (8-byte RPC) before
// it may be piggybacked; a match proves the responder's state has not
// changed since the cached copy was taken, anything else is fetched live.
// What the cache still saves is the record payload, not the round trip.
// No hotness is fed (the demand belongs to the requesting coordinator).
func (n *Node) cachedFullView(ctx context.Context, level, id int, sink map[int]searchView) (route.NodeView, error) {
	epoch := n.mgr.Epoch(level)
	cv, outcome, negErr := n.cache.Get(level, id, epoch)
	switch outcome {
	case viewcache.NegHit:
		// A false negative (this delegate's verdict is behind a rejoin) only
		// costs a pool gap — the coordinator's fallback learns the truth.
		return route.NodeView{}, negErr
	case viewcache.Hit, viewcache.Stale:
		n.count("cache.revalidate")
		ver, err := n.fetchVersion(ctx, level, id, ctrAggVersion)
		if err == nil && ver == cv.Version {
			if v2, ok := n.cache.Confirm(level, id, epoch); ok {
				n.count("cache.revalidate_ok")
				sink[id] = n.searchFromCached(v2)
				return v2.NodeView, nil
			}
		}
		n.count("cache.revalidate_stale")
		if errors.Is(err, transport.ErrUnavailable) {
			n.cache.PutNegative(level, id, err, epoch)
			return route.NodeView{}, err
		}
		n.cache.Invalidate(level, id)
	}
	sv, err := n.fetchFullView(ctx, level, id, ctrAggFetch)
	if err != nil {
		if errors.Is(err, transport.ErrUnavailable) {
			n.cache.PutNegative(level, id, err, epoch)
		}
		return route.NodeView{}, err
	}
	v := viewcache.View{NodeView: n.toNodeView(sv), Version: sv.Version}
	n.cache.Put(level, id, v, epoch)
	sink[id] = sv
	return v.NodeView, nil
}

// searchFromCached rebuilds a wire view from a cached one. Neighbor
// addresses were dropped on the way into the cache; refill them from this
// node's address book so the requester can learn peers it has never fetched
// (best-effort — LearnAddr ignores the blanks left by unknown ids).
func (n *Node) searchFromCached(v viewcache.View) searchView {
	nbs := make([]membership.Neighbor, len(v.Neighbors))
	for i, nb := range v.Neighbors {
		addr, _ := n.mgr.Addr(nb.ID)
		nbs[i] = membership.Neighbor{ID: nb.ID, Addr: addr, Zones: nb.Zones}
	}
	return searchView{ID: v.ID, Version: v.Version, Zones: v.Zones, Neighbors: nbs, Owned: v.Owned, Replicas: v.Replicas}
}

// handleAgg serves one can_search_agg: flood the requested sphere region
// from this node's local view (free), avoiding the requester's claimed set,
// sub-delegating up to fanout frontier claims with the remaining depth
// budget, and return every gathered full view plus the final claimed set.
func (n *Node) handleAgg(ctx context.Context, body []byte) (transport.Response, error) {
	req, err := decodeAggReq(body)
	if err != nil {
		return transport.Response{}, err
	}
	if req.Level < 0 || req.Level >= n.mgr.NumLevels() {
		return transport.Response{}, fmt.Errorf("node: no level %d", req.Level)
	}
	if req.Depth > maxAggDepth {
		req.Depth = maxAggDepth
	}
	if req.Fanout > maxAggFanout {
		req.Fanout = maxAggFanout
	}
	n.noteAggRequester(req.From)

	rootSV := n.localFullView(req.Level)
	g := &gatherer{n: n, ctx: ctx, level: req.Level, key: req.Key, radius: req.Radius, fanout: req.Fanout, views: map[int]searchView{}}
	res := route.Delegate(n.toNodeView(rootSV), req.Key, req.Radius, req.Claimed, req.Depth, req.Fanout, g, g.sub)

	out := make([]searchView, 0, len(res.Views))
	for _, nv := range res.Views {
		if nv.ID == n.peer {
			out = append(out, rootSV)
		} else if sv, ok := g.views[nv.ID]; ok {
			out = append(out, sv)
		}
	}
	respBody, err := encodeAggResp(out, res.Claimed)
	if err != nil {
		return transport.Response{}, err
	}
	return transport.Response{Body: respBody}, nil
}

// callAgg issues one can_search_agg to peer id. ctr attributes it to the
// issuing role (query coordinator vs sub-delegating delegate).
func (n *Node) callAgg(ctx context.Context, level, id int, key []float64, radius float64, claimed []int, depth, fanout int, ctr string) ([]searchView, []int, error) {
	addr, err := n.peerAddr(id)
	if err != nil {
		return nil, nil, err
	}
	n.count(ctr)
	body := encodeAggReq(aggReq{From: n.peer, Level: level, Key: key, Radius: radius, Depth: depth, Fanout: fanout, Claimed: claimed})
	resp, err := n.client.Call(ctx, addr, transport.Request{Method: methodCanSearchAgg, Body: body})
	if err != nil {
		return nil, nil, fmt.Errorf("node: can_search_agg peer %d: %w", id, err)
	}
	return decodeAggResp(resp.Body)
}

// searchSphereDelegated is searchSphere in delegated mode: the same serial
// route.Search machine, fed pool-first. The pool fills from can_search_agg
// piggybacks; anything it misses takes the ordinary per-node fetch path, so
// every answer (and every error) is the one the reference drive produces.
func (n *Node) searchSphereDelegated(ctx context.Context, level int, key []float64, radius float64) ([]overlay.Entry, int, error) {
	var mk []byte
	var epoch uint64
	if n.cache != nil {
		mk = memoKey(key, radius)
		epoch = n.mgr.Epoch(level)
		if entries, hops, ok := n.cache.GetSearch(level, mk, epoch); ok {
			return entries, hops, nil
		}
	}
	pool := map[int]viewcache.View{}
	cv := cachedViews{n: n, ctx: ctx, level: level, key: key, radius: radius}
	start := n.toNodeView(n.localView(level, key, radius))
	s := route.NewSearch(start, key, radius, n.hopLimit())
	for {
		step, err := s.Next()
		if err != nil {
			return nil, s.Hops(), fmt.Errorf("node: level %d search at %v: %w", level, key, err)
		}
		if step.Kind == route.StepDone {
			break
		}
		v, err := n.delegatedView(ctx, cv, pool, step)
		if err != nil {
			return nil, s.Hops(), fmt.Errorf("node: level %d search at %v: %w", level, key, err)
		}
		s.Feed(v, 1)
	}
	entries, hops := s.Results(), s.Hops()
	if n.cache != nil {
		if n.tuning.HotReplicate {
			n.pullHotReplicas(ctx, level)
		}
		// Memoize only epoch-stable runs, exactly like the serial cached path.
		if n.mgr.Epoch(level) == epoch {
			n.cache.PutSearch(level, mk, entries, hops, epoch)
		}
	}
	return entries, hops, nil
}

// delegatedView resolves one machine step: own view live, then the pool,
// then — for the first flood visit into an unexplored region — a delegation
// that fills the pool with the whole region, and finally the ordinary
// fetch path as fallback.
func (n *Node) delegatedView(ctx context.Context, cv cachedViews, pool map[int]viewcache.View, step route.Step) (route.NodeView, error) {
	if step.To == n.peer {
		return n.toNodeView(n.localView(cv.level, cv.key, cv.radius)), nil
	}
	if pv, ok := pool[step.To]; ok {
		n.count("agg.pool_hit")
		return n.usePoolView(cv, pv), nil
	}
	if step.Kind == route.StepFloodVisit {
		n.delegateRegion(ctx, cv, pool, step.To)
		if pv, ok := pool[step.To]; ok {
			return n.usePoolView(cv, pv), nil
		}
	}
	// Pool miss: the ordinary per-node path (cache-aware when enabled).
	n.count("agg.fallback")
	if n.cache != nil {
		return cv.view(step.To)
	}
	return rpcViews{n: n, ctx: ctx, level: cv.level, key: cv.key, radius: cv.radius}.View(step.To)
}

// delegateRegion sends one can_search_agg to the region's first contact and
// merges whatever comes back into the pool and (at the pre-gather epoch)
// this coordinator's viewcache. Best-effort: on failure the pool simply
// stays as it was and the caller falls back.
func (n *Node) delegateRegion(ctx context.Context, cv cachedViews, pool map[int]viewcache.View, to int) {
	// Claim exactly the pooled ids: the views this coordinator can already
	// serve on replay. Claiming never loses coverage (any pocket the claim
	// wall hides sits behind a pooled view, and the coordinator's own machine
	// expands through it, delegating the pocket next), so the trade is pure:
	// a claim saves the delegate one refetch but walls its flood. Machine-
	// resolved-but-unpooled nodes — above all the routing path, which winds
	// INTO the sphere region — are deliberately NOT claimed: claiming them
	// shatters the region into per-pocket delegations (measured ~7× the
	// coordinator RPCs), while letting the delegate refetch those few views
	// keeps the first gather whole-region and the delegate's extra cost at a
	// handful of its own fetches.
	claimed := make([]int, 0, len(pool))
	for id := range pool {
		if id != to {
			claimed = append(claimed, id)
		}
	}
	var instEpoch uint64
	if n.cache != nil {
		// Snapshot before the gather, like cachedViews.fetch: an event
		// racing the gather leaves the installs stale, never wrongly fresh.
		instEpoch = n.mgr.Epoch(cv.level)
	}
	svs, _, err := n.callAgg(ctx, cv.level, to, cv.key, cv.radius, claimed, n.tuning.AggDepth, n.tuning.AggFanout, ctrCoordAgg)
	if err != nil {
		n.count("agg.delegate_fail")
		return
	}
	pooled := 0
	for _, sv := range svs {
		if _, ok := pool[sv.ID]; ok || sv.ID == n.peer {
			continue // exact first-wins dedup, own view never pooled
		}
		v := viewcache.View{NodeView: n.toNodeView(sv), Version: sv.Version}
		pool[sv.ID] = v
		pooled++
		if n.cache != nil {
			n.cache.PutRefresh(cv.level, sv.ID, v, instEpoch)
		}
	}
	n.count("agg.gather")
	n.counters.Add("agg.gathered_views", float64(pooled))
}

// usePoolView hands a pooled view to the machine, feeding the hotness
// sketch like the cached path does (pool views carry full stores, and the
// sketch only queues holders that are not already pinned).
func (n *Node) usePoolView(cv cachedViews, v viewcache.View) route.NodeView {
	if n.cache != nil && n.tuning.HotReplicate {
		nv, _ := cv.use(v)
		return nv
	}
	return v.NodeView
}

// ---- proactive warming ----

// noteAggRequester remembers who recently delegated to this node — the
// coordinators most likely to hold (and re-need) this node's view.
func (n *Node) noteAggRequester(from int) {
	if from == n.peer || from < 0 {
		return
	}
	n.warmMu.Lock()
	defer n.warmMu.Unlock()
	if n.warmPeers == nil {
		n.warmPeers = make(map[int]uint64)
	}
	n.warmSeq++
	n.warmPeers[from] = n.warmSeq
	if len(n.warmPeers) > warmPeersCap {
		oldest, oldestSeq := -1, n.warmSeq+1
		for id, seq := range n.warmPeers {
			if seq < oldestSeq {
				oldest, oldestSeq = id, seq
			}
		}
		delete(n.warmPeers, oldest)
	}
}

// recentAggRequesters returns up to max requester ids, most recent first.
func (n *Node) recentAggRequesters(max int) []int {
	n.warmMu.Lock()
	defer n.warmMu.Unlock()
	out := make([]int, 0, len(n.warmPeers))
	for id := range n.warmPeers {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ { // insertion sort by recency, newest first
		for j := i; j > 0 && n.warmPeers[out[j]] > n.warmPeers[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// onEpochBump is the membership epoch hook (Tuning.WarmPush > 0): it runs
// under the manager's lock, so it only marks the level dirty and nudges the
// warm loop — never blocks.
func (n *Node) onEpochBump(level int) {
	n.warmDirty[level].Store(true)
	select {
	case n.warmNotify <- struct{}{}:
	default:
	}
}

// warmLoop pushes this node's refreshed view to recent delegation
// requesters after churn epochs, shrinking their post-invalidation cliff:
// the receivers' stale entries revalidate against (or are replaced by) the
// pushed copy instead of costing a refetch on the next cold query.
// Coalescing is free — dirty flags absorb event bursts between pushes.
func (n *Node) warmLoop() {
	defer n.warmWG.Done()
	for {
		select {
		case <-n.warmStop:
			return
		case <-n.warmNotify:
		}
		for level := range n.warmDirty {
			if !n.warmDirty[level].Swap(false) {
				continue
			}
			n.warmPushLevel(level)
		}
	}
}

// warmPushLevel sends this node's current full level view to up to
// Tuning.WarmPush recent requesters. Best-effort: failures are dropped, the
// next epoch bump retries with a fresher view anyway.
func (n *Node) warmPushLevel(level int) {
	targets := n.recentAggRequesters(n.tuning.WarmPush)
	if len(targets) == 0 {
		return
	}
	body, err := encodeWarmReq(n.peer, level, n.localFullView(level))
	if err != nil {
		return
	}
	for _, id := range targets {
		addr, err := n.peerAddr(id)
		if err != nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_, err = n.client.Call(ctx, addr, transport.Request{Method: methodWarmViews, Body: body})
		cancel()
		if err == nil {
			n.count("warm.push")
		}
	}
}

// handleWarm installs one pushed view. Equivalent to a fetch completing
// now, so installing at this node's current epoch is sound; PutRefresh
// drops version regressions from reordered pushes and preserves pins.
func (n *Node) handleWarm(body []byte) (transport.Response, error) {
	from, level, sv, err := decodeWarmReq(body)
	if err != nil {
		return transport.Response{}, err
	}
	if level < 0 || level >= n.mgr.NumLevels() {
		return transport.Response{}, fmt.Errorf("node: no level %d", level)
	}
	if n.cache != nil && sv.ID != n.peer && sv.ID == from {
		n.cache.PutRefresh(level, sv.ID, viewcache.View{NodeView: n.toNodeView(sv), Version: sv.Version}, n.mgr.Epoch(level))
		n.count("warm.install")
	}
	return transport.Response{}, nil
}

// ClearCaches drops every warm artifact this node holds — view cache,
// lookup memos, holder- and coordinator-side fetch memos — returning it to
// the cold-start state. The bench harness's cold phase uses it to measure
// first-touch cost on an otherwise warm, quiesced cluster; not intended to
// run concurrently with queries this node is coordinating.
func (n *Node) ClearCaches() {
	if n.cache != nil {
		n.cache.Clear()
	}
	n.fetchMu.Lock()
	n.fetchMemo = nil
	n.fetchGen++
	n.fetchMu.Unlock()
	n.cliMu.Lock()
	n.cliFetch = nil
	n.cliCount = 0
	n.cliMu.Unlock()
}
