package node

import (
	"context"
	"fmt"
	"math"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/overlay"
	"hyperm/internal/transport"
)

// This file is the distributed replica of can.Overlay.SearchSphere. The
// querying node acts as lookup coordinator: it holds its own slice locally
// (zero hops, like the in-process search starting at `from`) and contacts
// one node per hop with a can_search RPC, whose response carries everything
// the next decision needs — the node's zones, its neighbor table, and its
// matching records. Routing and flood decisions are then made locally from
// exactly the information the corresponding in-process node would have used:
//
//   - greedy routing picks the neighbor minimizing the torus distance of its
//     zones to the target, +1e6 penalty for already-visited nodes, first
//     strict minimum winning ties — neighbor-list order is significant;
//   - the flood starts a fresh visited set at the owner and expands in
//     frontier order, testing zone/sphere intersection before charging the
//     hop, exactly like the simulator;
//   - records are collected from the owner onward (routing-phase responses
//     contribute no records), deduplicated by overlay sequence number in
//     arrival order.
//
// Hops therefore count RPCs the same way the simulator counts messages, and
// the entries come back in the identical order — which is what makes served
// query answers byte-identical to the core.System oracle (the per-peer score
// accumulation order and the k-nn radius inversion both depend on entry
// order).
//
// The in-process search has two fallback paths (routing loop limit, no
// routable neighbor) that the simulator resolves with a global scan; a
// serving node has no global view, so those paths — unreachable on a healthy
// topology — are errors here.

// zonesContain reports whether any zone contains p.
func zonesContain(zs []can.Zone, p []float64) bool {
	for _, z := range zs {
		if z.Contains(p) {
			return true
		}
	}
	return false
}

// zonesDist is the torus distance from p to the closest zone.
func zonesDist(zs []can.Zone, p []float64) float64 {
	best := math.Inf(1)
	for _, z := range zs {
		if d := z.DistToPoint(p); d < best {
			best = d
		}
	}
	return best
}

// zonesIntersect reports whether any zone touches the query sphere.
func zonesIntersect(zs []can.Zone, key []float64, radius float64) bool {
	for _, z := range zs {
		if z.IntersectsSphere(key, radius) {
			return true
		}
	}
	return false
}

// fetchView obtains one node's view of the query sphere: locally for this
// node (no RPC — the coordinator is the node), via can_search otherwise.
// Hop accounting is the caller's job.
func (n *Node) fetchView(ctx context.Context, level, id int, key []float64, radius float64) (searchView, error) {
	if id == n.peer {
		return n.localView(level, key, radius), nil
	}
	addr, err := n.peerAddr(id)
	if err != nil {
		return searchView{}, err
	}
	resp, err := n.client.Call(ctx, addr, transport.Request{
		Method: methodCanSearch,
		Body:   encodeSearchReq(level, key, radius),
	})
	if err != nil {
		return searchView{}, fmt.Errorf("node: can_search peer %d: %w", id, err)
	}
	return decodeSearchResp(resp.Body)
}

// searchSphere runs the full lookup for one level: greedy route to the
// owner of key, then flood the zones intersecting the query sphere.
func (n *Node) searchSphere(ctx context.Context, level int, key []float64, radius float64) ([]overlay.Entry, int, error) {
	// Routing phase. The coordinator starts at its own slice: zero hops, as
	// in the in-process route whose start node is free.
	cur := n.localView(level, key, radius)
	hops := 0
	visited := map[int]bool{cur.ID: true}
	limit := 8*n.clusterSize + 16
	for !zonesContain(cur.Zones, key) {
		if hops > limit {
			return nil, hops, fmt.Errorf("node: level %d route to %v exceeded %d hops", level, key, limit)
		}
		bestID, bestDist := -1, math.Inf(1)
		for _, nb := range cur.Neighbors {
			d := zonesDist(nb.Zones, key)
			if visited[nb.ID] {
				d += 1e6 // strongly avoid revisits, but allow as last resort
			}
			if d < bestDist {
				bestID, bestDist = nb.ID, d
			}
		}
		if bestID < 0 {
			return nil, hops, fmt.Errorf("node: level %d route to %v dead-ended at node %d", level, key, cur.ID)
		}
		next, err := n.fetchView(ctx, level, bestID, key, radius)
		if err != nil {
			return nil, hops, err
		}
		hops++
		cur = next
		visited[cur.ID] = true
	}

	// Flood phase: fresh visited set rooted at the owner, frontier expansion
	// in neighbor-list order, intersection test before the hop is charged.
	seen := map[int]bool{}
	var results []overlay.Entry
	collect := func(v searchView) {
		for _, rec := range v.Records {
			if seen[rec.Seq] {
				continue
			}
			seen[rec.Seq] = true
			results = append(results, rec.Entry)
		}
	}
	floodVisited := map[int]bool{cur.ID: true}
	collect(cur)
	frontier := []searchView{cur}
	for len(frontier) > 0 {
		var next []searchView
		for _, v := range frontier {
			for _, nb := range v.Neighbors {
				if floodVisited[nb.ID] {
					continue
				}
				floodVisited[nb.ID] = true
				if !zonesIntersect(nb.Zones, key, radius) {
					continue
				}
				nv, err := n.fetchView(ctx, level, nb.ID, key, radius)
				if err != nil {
					return nil, hops, err
				}
				hops++
				collect(nv)
				next = append(next, nv)
			}
		}
		frontier = next
	}
	return results, hops, nil
}

func (b *netBackend) Search(from, level int, key []float64, radius float64) ([]overlay.Entry, int, error) {
	return b.n.searchSphere(context.Background(), level, key, radius)
}

func (b *netBackend) FetchRange(from, peer int, q []float64, eps float64) ([]int, error) {
	n := b.n
	if peer == n.peer {
		n.mu.RLock()
		ids := core.LocalRange(q, eps, n.itemIDs, n.items)
		n.mu.RUnlock()
		return ids, nil
	}
	addr, err := n.peerAddr(peer)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Call(context.Background(), addr, transport.Request{
		Method: methodFetchRange,
		Body:   encodeFetchRangeReq(q, eps),
	})
	if err != nil {
		return nil, fmt.Errorf("node: fetch_range peer %d: %w", peer, err)
	}
	return decodeFetchRangeResp(resp.Body)
}

func (b *netBackend) FetchKNN(from, peer int, q []float64, k int) ([]core.ItemDist, error) {
	n := b.n
	if peer == n.peer {
		n.mu.RLock()
		items := core.LocalKNN(q, k, n.itemIDs, n.items)
		n.mu.RUnlock()
		return items, nil
	}
	addr, err := n.peerAddr(peer)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Call(context.Background(), addr, transport.Request{
		Method: methodFetchKNN,
		Body:   encodeFetchKNNReq(q, k),
	})
	if err != nil {
		return nil, fmt.Errorf("node: fetch_knn peer %d: %w", peer, err)
	}
	return decodeFetchKNNResp(resp.Body)
}
