package node

import (
	"context"
	"errors"
	"fmt"

	"hyperm/internal/core"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
	"hyperm/internal/transport"
)

// This file adapts the routing core (internal/route) to the serving runtime.
// The querying node acts as lookup coordinator: it holds its own slice
// locally (zero hops, like the in-process search starting at `from`) and
// feeds the route.Search machine one view per contact — its own view for
// free, a can_search RPC per remote node, whose response carries everything
// the next decision needs (zones, neighbor table, matching records). Every
// routing and flood decision is made by the same machine the simulator
// drives, so served answers are byte-identical to the core.System oracle by
// construction: one implementation, two ViewSources.
//
// Hops count contacts exactly like the simulator counts messages (one per
// Feed), so hops == RPCs, except that a flood wave re-entering the
// coordinator's own zone is a free local read — charged one hop either way,
// just as the simulator charges the message.
//
// The machine's two stall outcomes (route.ErrLoopLimit, route.ErrNoNeighbor)
// are resolved by the simulator with a global scan; a serving node has no
// global view, so here they surface as request errors carrying their
// sentinel (and, across the wire, their detail token — see remoteErr).

// rpcViews is the RPC-fetching ViewSource: View answers locally for the
// coordinator's own id and issues one can_search RPC for any other node,
// pre-filtered server-side to the records matching the query sphere (the
// machine's own filter is idempotent, so pre-filtering cannot change the
// result).
type rpcViews struct {
	n      *Node
	ctx    context.Context
	level  int
	key    []float64
	radius float64
}

func (s rpcViews) View(id int) (route.NodeView, error) {
	v, err := s.n.fetchView(s.ctx, s.level, id, s.key, s.radius)
	if err != nil {
		return route.NodeView{}, err
	}
	return s.n.toNodeView(v), nil
}

// toNodeView shapes a wire view for the routing machines, learning the
// neighbor addresses it carries (how a node hears about peers that joined
// after its address book was seeded).
func (n *Node) toNodeView(v searchView) route.NodeView {
	nbs := make([]route.NeighborView, len(v.Neighbors))
	for i, nb := range v.Neighbors {
		n.mgr.LearnAddr(nb.ID, nb.Addr)
		nbs[i] = route.NeighborView{ID: nb.ID, Zones: nb.Zones}
	}
	return route.NodeView{ID: v.ID, Zones: v.Zones, Neighbors: nbs, Owned: v.Records}
}

// fetchView obtains one node's view of the query sphere: locally for this
// node (no RPC — the coordinator is the node), via can_search otherwise.
func (n *Node) fetchView(ctx context.Context, level, id int, key []float64, radius float64) (searchView, error) {
	if id == n.peer {
		return n.localView(level, key, radius), nil
	}
	addr, err := n.peerAddr(id)
	if err != nil {
		return searchView{}, err
	}
	resp, err := n.client.Call(ctx, addr, transport.Request{
		Method: methodCanSearch,
		Body:   encodeSearchReq(level, key, radius),
	})
	if err != nil {
		return searchView{}, fmt.Errorf("node: can_search peer %d: %w", id, err)
	}
	return decodeSearchResp(resp.Body)
}

// hopLimit mirrors the simulator's routing bound (8*nodes+16) using the
// cluster size as this node currently knows it (grown by joins it hears of).
func (n *Node) hopLimit() int { return 8*n.mgr.Size() + 16 }

// searchSphere runs the full lookup for one level by driving the shared
// route.Search machine over RPC-fetched views, with up to α can_search
// probes in flight per flood step (rpcViews is safe for the concurrent View
// calls RunAlpha makes; answers stay byte-identical to the serial drive).
func (n *Node) searchSphere(ctx context.Context, level int, key []float64, radius float64) ([]overlay.Entry, int, error) {
	src := rpcViews{n: n, ctx: ctx, level: level, key: key, radius: radius}
	start, err := src.View(n.peer)
	if err != nil {
		return nil, 0, err
	}
	s := route.NewSearch(start, key, radius, n.hopLimit())
	entries, hops, err := route.RunAlpha(s, src, n.tuning.Alpha)
	if err != nil {
		return nil, hops, fmt.Errorf("node: level %d search at %v: %w", level, key, err)
	}
	return entries, hops, nil
}

func (b *netBackend) Search(from, level int, key []float64, radius float64) ([]overlay.Entry, int, error) {
	return b.n.searchSphere(context.Background(), level, key, radius)
}

func (b *netBackend) FetchRange(from, peer int, q []float64, eps float64) ([]int, error) {
	n := b.n
	if peer == n.peer {
		n.mu.RLock()
		ids := core.LocalRange(q, eps, n.itemIDs, n.items)
		n.mu.RUnlock()
		return ids, nil
	}
	addr, err := n.peerAddr(peer)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Call(context.Background(), addr, transport.Request{
		Method: methodFetchRange,
		Body:   encodeFetchRangeReq(q, eps),
	})
	if errors.Is(err, transport.ErrUnavailable) {
		// Backend contract: a dead or unreachable peer yields no items and
		// no error — the same answer the simulator oracle gives for a peer
		// that left the deployment.
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("node: fetch_range peer %d: %w", peer, err)
	}
	return decodeFetchRangeResp(resp.Body)
}

func (b *netBackend) FetchKNN(from, peer int, q []float64, k int) ([]core.ItemDist, error) {
	n := b.n
	if peer == n.peer {
		n.mu.RLock()
		items := core.LocalKNN(q, k, n.itemIDs, n.items)
		n.mu.RUnlock()
		return items, nil
	}
	addr, err := n.peerAddr(peer)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Call(context.Background(), addr, transport.Request{
		Method: methodFetchKNN,
		Body:   encodeFetchKNNReq(q, k),
	})
	if errors.Is(err, transport.ErrUnavailable) {
		// See FetchRange: dead peers contribute nothing, as in the oracle.
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("node: fetch_knn peer %d: %w", peer, err)
	}
	return decodeFetchKNNResp(resp.Body)
}
