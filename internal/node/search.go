package node

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
	"hyperm/internal/transport"
	"hyperm/internal/viewcache"
)

// This file adapts the routing core (internal/route) to the serving runtime.
// The querying node acts as lookup coordinator: it holds its own slice
// locally (zero hops, like the in-process search starting at `from`) and
// feeds the route.Search machine one view per contact — its own view for
// free, a can_search RPC per remote node, whose response carries everything
// the next decision needs (zones, neighbor table, matching records). Every
// routing and flood decision is made by the same machine the simulator
// drives, so served answers are byte-identical to the core.System oracle by
// construction: one implementation, two ViewSources.
//
// Hops count contacts exactly like the simulator counts messages (one per
// Feed), so hops == RPCs, except that a flood wave re-entering the
// coordinator's own zone is a free local read — charged one hop either way,
// just as the simulator charges the message.
//
// The machine's two stall outcomes (route.ErrLoopLimit, route.ErrNoNeighbor)
// are resolved by the simulator with a global scan; a serving node has no
// global view, so here they surface as request errors carrying their
// sentinel (and, across the wire, their detail token — see remoteErr).

// rpcViews is the RPC-fetching ViewSource: View answers locally for the
// coordinator's own id and issues one can_search RPC for any other node,
// pre-filtered server-side to the records matching the query sphere (the
// machine's own filter is idempotent, so pre-filtering cannot change the
// result).
type rpcViews struct {
	n      *Node
	ctx    context.Context
	level  int
	key    []float64
	radius float64
}

func (s rpcViews) View(id int) (route.NodeView, error) {
	v, err := s.n.fetchView(s.ctx, s.level, id, s.key, s.radius)
	if err != nil {
		return route.NodeView{}, err
	}
	return s.n.toNodeView(v), nil
}

// toNodeView shapes a wire view for the routing machines, learning the
// neighbor addresses it carries (how a node hears about peers that joined
// after its address book was seeded).
func (n *Node) toNodeView(v searchView) route.NodeView {
	nbs := make([]route.NeighborView, len(v.Neighbors))
	for i, nb := range v.Neighbors {
		n.mgr.LearnAddr(nb.ID, nb.Addr)
		nbs[i] = route.NeighborView{ID: nb.ID, Zones: nb.Zones}
	}
	return route.NodeView{ID: v.ID, Zones: v.Zones, Neighbors: nbs, Owned: v.Owned, Replicas: v.Replicas}
}

// fetchView obtains one node's view of the query sphere: locally for this
// node (no RPC — the coordinator is the node), via can_search otherwise.
func (n *Node) fetchView(ctx context.Context, level, id int, key []float64, radius float64) (searchView, error) {
	if id == n.peer {
		return n.localView(level, key, radius), nil
	}
	return n.callSearch(ctx, level, id, encodeSearchReq(level, key, radius, false), ctrCoordSearch)
}

// fetchFullView is fetchView with the full flag: the complete record stores,
// which is what the cache keeps (a cached view must answer any later sphere,
// not just the one that fetched it). ctr attributes the RPC to the issuing
// role — the query coordinator or a delegate's gather flood.
func (n *Node) fetchFullView(ctx context.Context, level, id int, ctr string) (searchView, error) {
	if id == n.peer {
		return n.localFullView(level), nil
	}
	return n.callSearch(ctx, level, id, encodeSearchReq(level, nil, 0, true), ctr)
}

// Issue-side RPC attribution: handler-side rpc.* counters say how much
// traffic a node served; these say which role *initiated* it — the lookup
// coordinator (coord.*) or a can_search_agg delegate gathering its region
// (agg.*). The cold-path budget metric is coord.can_search + coord.agg +
// coord.view_version per query.
const (
	ctrCoordSearch  = "coord.can_search"
	ctrCoordAgg     = "coord.agg"
	ctrCoordVersion = "coord.view_version"
	ctrAggFetch     = "agg.fetch"
	ctrAggSub       = "agg.sub"
	ctrAggVersion   = "agg.view_version"
)

func (n *Node) callSearch(ctx context.Context, level, id int, body []byte, ctr string) (searchView, error) {
	addr, err := n.peerAddr(id)
	if err != nil {
		return searchView{}, err
	}
	n.count(ctr)
	resp, err := n.client.Call(ctx, addr, transport.Request{Method: methodCanSearch, Body: body})
	if err != nil {
		return searchView{}, fmt.Errorf("node: can_search peer %d: %w", id, err)
	}
	return decodeSearchResp(resp.Body)
}

// fetchVersion asks peer id for its current level state version — the cheap
// revalidation probe (16-byte request, 8-byte response) that decides whether
// a stale cached view can be reused or must be refetched.
func (n *Node) fetchVersion(ctx context.Context, level, id int, ctr string) (uint64, error) {
	n.count(ctr)
	addr, err := n.peerAddr(id)
	if err != nil {
		return 0, err
	}
	resp, err := n.client.Call(ctx, addr, transport.Request{Method: methodViewVersion, Body: encodeLevelReq(level)})
	if err != nil {
		return 0, fmt.Errorf("node: view_version peer %d: %w", id, err)
	}
	return decodeVersionResp(resp.Body)
}

// fetchReplica pulls peer id's full level view for pinning (replicate_refs).
func (n *Node) fetchReplica(ctx context.Context, level, id int) (searchView, error) {
	addr, err := n.peerAddr(id)
	if err != nil {
		return searchView{}, err
	}
	resp, err := n.client.Call(ctx, addr, transport.Request{Method: methodReplicate, Body: encodeLevelReq(level)})
	if err != nil {
		return searchView{}, fmt.Errorf("node: replicate_refs peer %d: %w", id, err)
	}
	return decodeSearchResp(resp.Body)
}

// hopLimit mirrors the simulator's routing bound (8*nodes+16) using the
// cluster size as this node currently knows it (grown by joins it hears of).
func (n *Node) hopLimit() int { return 8*n.mgr.Size() + 16 }

// cachedViews is the cache-aware ViewSource (Tuning.CacheViews): every view
// probe goes through the per-level viewcache.Cache first, at the churn epoch
// the membership manager currently reports.
//
//   - Hit (cached at the current epoch): no RPC — the overlay state a view
//     carries changes only through membership events, and none was observed
//     since the fetch, so a direct can_search would return the same view.
//   - Stale (cached at an older epoch): one view_version RPC compares the
//     responder's current state version against the cached one; a match
//     refreshes the entry (reuse), a mismatch refetches. Stale views are
//     never fed to the machines unvalidated.
//   - Miss: one full can_search fetch, installed at the probe epoch.
//
// Either way the machines see exactly the view a direct fetch would produce,
// so answers stay byte-identical to the uncached reference; the only
// difference is who pays which RPC. A fetch that finds the peer unreachable
// is memoized as a negative entry valid within the current epoch: repeat
// queries fail fast instead of re-dialing a dead peer, and any membership
// event clears the verdict.
type cachedViews struct {
	n      *Node
	ctx    context.Context
	level  int
	key    []float64
	radius float64
}

func (s cachedViews) view(id int) (route.NodeView, error) {
	n := s.n
	if id == n.peer {
		// The coordinator's own slice is a lock-protected local read — never
		// cached, so a query always starts from its node's live state.
		return n.toNodeView(n.localView(s.level, s.key, s.radius)), nil
	}
	epoch := n.mgr.Epoch(s.level)
	cv, outcome, negErr := n.cache.Get(s.level, id, epoch)
	if outcome == viewcache.Hit && n.tuning.StreamPublish {
		// Streaming publish mutates remote record stores without a membership
		// event: same-epoch entries can be silently stale, so every hit is
		// demoted to the revalidation path. The view_version probe catches
		// record churn because ApplyRecord bumps the holder's version.
		outcome = viewcache.Stale
	}
	switch outcome {
	case viewcache.Hit:
		return s.use(cv)
	case viewcache.NegHit:
		return route.NodeView{}, negErr
	case viewcache.Stale:
		n.count("cache.revalidate")
		ver, err := n.fetchVersion(s.ctx, s.level, id, ctrCoordVersion)
		if err == nil && ver == cv.Version {
			if v2, ok := n.cache.Confirm(s.level, id, epoch); ok {
				n.count("cache.revalidate_ok")
				return s.use(v2)
			}
		}
		n.count("cache.revalidate_stale")
		if errors.Is(err, transport.ErrUnavailable) {
			n.cache.PutNegative(s.level, id, err, epoch)
			return route.NodeView{}, err
		}
		n.cache.Invalidate(s.level, id)
	}
	return s.fetch(id, epoch)
}

// fetch fills the cache with one full can_search and returns the view.
func (s cachedViews) fetch(id int, epoch uint64) (route.NodeView, error) {
	n := s.n
	sv, err := n.fetchFullView(s.ctx, s.level, id, ctrCoordSearch)
	if err != nil {
		if errors.Is(err, transport.ErrUnavailable) {
			n.cache.PutNegative(s.level, id, err, epoch)
		}
		return route.NodeView{}, err
	}
	v := viewcache.View{NodeView: n.toNodeView(sv), Version: sv.Version}
	n.cache.Put(s.level, id, v, epoch)
	return s.use(v)
}

// use hands a cached view to the machines, feeding the hotness sketch with
// the records this query's sphere actually touches (the demand signal that
// drives replicate_refs pulls). Views returned Pinned are already replicated
// — no demand to track, so their record scan is skipped entirely.
func (s cachedViews) use(v viewcache.View) (route.NodeView, error) {
	if s.n.tuning.HotReplicate && !v.Pinned {
		hits := 0
		for _, rs := range [2][]route.RecordView{v.Owned, v.Replicas} {
			for _, rec := range rs {
				if can.TorusDist(rec.Entry.Key, s.key) <= rec.Entry.Radius+s.radius {
					hits++
				}
			}
		}
		s.n.cache.NoteFetchHits(s.level, v.ID, hits)
	}
	return v.NodeView, nil
}

// pullHotReplicas drains the level's hot-node queue after a lookup: each
// holder that crossed the demand threshold is pulled whole and pinned, so the
// next flood terminates at the replica. Best-effort — a failed pull just
// leaves the node unpinned until demand re-queues it past the next decay.
func (n *Node) pullHotReplicas(ctx context.Context, level int) {
	for _, id := range n.cache.HotPending(level) {
		epoch := n.mgr.Epoch(level)
		sv, err := n.fetchReplica(ctx, level, id)
		if err != nil {
			continue
		}
		n.count("cache.replicate_pull")
		n.cache.PutPinned(level, id, viewcache.View{NodeView: n.toNodeView(sv), Version: sv.Version}, epoch)
	}
}

// memoKey encodes a query sphere for the lookup memo: the raw bits of the
// radius and every key coordinate, so only bit-identical spheres collide.
// Returned as a byte slice so the hit path can look it up without the
// string-copy allocation (the cache only materialises a string on store).
func memoKey(key []float64, radius float64) []byte {
	buf := make([]byte, 8*(len(key)+1))
	binary.BigEndian.PutUint64(buf, math.Float64bits(radius))
	for i, x := range key {
		binary.BigEndian.PutUint64(buf[8*(i+1):], math.Float64bits(x))
	}
	return buf
}

// searchSphere runs the full lookup for one level by driving the shared
// route.Search machine over RPC-fetched views, with up to α can_search
// probes in flight per flood step (both ViewSources are safe for the
// concurrent View calls RunAlpha makes; answers stay byte-identical to the
// serial drive). With Tuning.CacheViews the fetcher is composed behind the
// view cache — same machine, same decisions, fewer RPCs — and whole
// lookups are memoized per epoch: a repeat of a bit-identical query sphere
// within one churn epoch skips the machine entirely and returns the recorded
// entries and hops (deterministic machine + epoch-stable views ⇒ identical
// result; see viewcache.GetSearch).
func (n *Node) searchSphere(ctx context.Context, level int, key []float64, radius float64) ([]overlay.Entry, int, error) {
	if n.tuning.AggFanout > 0 {
		// Delegated aggregation mode: gather whole flood regions through
		// can_search_agg and replay this same machine over the pool — see
		// delegate.go. Opt-in; the paths below are the frozen reference.
		return n.searchSphereDelegated(ctx, level, key, radius)
	}
	if n.cache == nil {
		src := rpcViews{n: n, ctx: ctx, level: level, key: key, radius: radius}
		start, err := src.View(n.peer)
		if err != nil {
			return nil, 0, err
		}
		s := route.NewSearch(start, key, radius, n.hopLimit())
		entries, hops, err := route.RunAlpha(s, src, n.tuning.Alpha)
		if err != nil {
			return nil, hops, fmt.Errorf("node: level %d search at %v: %w", level, key, err)
		}
		return entries, hops, nil
	}

	mk := memoKey(key, radius)
	epoch := n.mgr.Epoch(level)
	// The whole-lookup memo is keyed by churn epoch alone; streamed record
	// deltas change lookup answers without an epoch bump, so under
	// StreamPublish the memo is bypassed entirely (per-view revalidation in
	// cachedViews still saves the bulk RPCs).
	useMemo := !n.tuning.StreamPublish
	if useMemo {
		if entries, hops, ok := n.cache.GetSearch(level, mk, epoch); ok {
			return entries, hops, nil
		}
	}
	src := route.SourceFunc(cachedViews{n: n, ctx: ctx, level: level, key: key, radius: radius}.view)
	start, err := src.View(n.peer)
	if err != nil {
		return nil, 0, err
	}
	s := route.NewSearch(start, key, radius, n.hopLimit())
	entries, hops, err := route.RunAlpha(s, src, n.tuning.Alpha)
	if n.tuning.HotReplicate {
		n.pullHotReplicas(ctx, level)
	}
	if err != nil {
		return nil, hops, fmt.Errorf("node: level %d search at %v: %w", level, key, err)
	}
	// Memoize only runs whose epoch held steady end to end: an epoch bump
	// mid-search may have mixed views from two topologies, and such a result
	// must not outlive the lookup that produced it.
	if useMemo && n.mgr.Epoch(level) == epoch {
		n.cache.PutSearch(level, mk, entries, hops, epoch)
	}
	return entries, hops, nil
}

func (b *netBackend) Search(from, level int, key []float64, radius float64) ([]overlay.Entry, int, error) {
	return b.n.searchSphere(context.Background(), level, key, radius)
}

func (b *netBackend) FetchRange(from, peer int, q []float64, eps float64) ([]int, error) {
	n := b.n
	if peer == n.peer {
		n.mu.RLock()
		ids := core.LocalRange(q, eps, n.store)
		n.mu.RUnlock()
		return ids, nil
	}
	body := encodeFetchRangeReq(q, eps)
	if n.tuning.CacheViews {
		v, unavailable, err := n.cachedFetch(context.Background(), peer, 'r', methodFetchRange, body, func(b []byte) (any, error) {
			return decodeFetchRangeResp(b)
		})
		if unavailable || err != nil {
			// Backend contract: a dead or unreachable peer yields no items
			// and no error — the same answer the simulator oracle gives for
			// a peer that left the deployment.
			return nil, err
		}
		return v.([]int), nil
	}
	addr, err := n.peerAddr(peer)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Call(context.Background(), addr, transport.Request{
		Method: methodFetchRange,
		Body:   body,
	})
	if errors.Is(err, transport.ErrUnavailable) {
		// Backend contract: a dead or unreachable peer yields no items and
		// no error — the same answer the simulator oracle gives for a peer
		// that left the deployment.
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("node: fetch_range peer %d: %w", peer, err)
	}
	return decodeFetchRangeResp(resp.Body)
}

func (b *netBackend) FetchKNN(from, peer int, q []float64, k int) ([]core.ItemDist, error) {
	n := b.n
	if peer == n.peer {
		n.mu.RLock()
		items := core.LocalKNN(q, k, n.store)
		n.mu.RUnlock()
		return items, nil
	}
	body := encodeFetchKNNReq(q, k)
	if n.tuning.CacheViews {
		v, unavailable, err := n.cachedFetch(context.Background(), peer, 'k', methodFetchKNN, body, func(b []byte) (any, error) {
			return decodeFetchKNNResp(b)
		})
		if unavailable || err != nil {
			// See FetchRange: dead peers contribute nothing, as in the oracle.
			return nil, err
		}
		return v.([]core.ItemDist), nil
	}
	addr, err := n.peerAddr(peer)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Call(context.Background(), addr, transport.Request{
		Method: methodFetchKNN,
		Body:   body,
	})
	if errors.Is(err, transport.ErrUnavailable) {
		// See FetchRange: dead peers contribute nothing, as in the oracle.
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("node: fetch_knn peer %d: %w", peer, err)
	}
	return decodeFetchKNNResp(resp.Body)
}
