package node

import (
	"fmt"

	"hyperm/internal/core"
	"hyperm/internal/transport"
)

// Cluster is a set of serving nodes covering every peer of a deployment,
// started together and wired to each other's addresses — the single-process
// cluster used by the integration tests and the load harness.
type Cluster struct {
	Nodes []*Node
	// Addrs[p] is peer p's serving address.
	Addrs []string
}

// StartCluster snapshots every peer of sys, starts one node per peer on the
// transport (listen(p) supplies each listen address — "" for the chan
// transport, "127.0.0.1:0" for TCP), and installs the full address book on
// every node. On error, already-started nodes are stopped.
func StartCluster(sys *core.System, tr transport.Transport, listen func(peer int) string, retry transport.Policy) (*Cluster, error) {
	snaps, err := ExtractAll(sys)
	if err != nil {
		return nil, err
	}
	if listen == nil {
		listen = func(int) string { return "" }
	}
	c := &Cluster{}
	for p, snap := range snaps {
		nd, err := New(Config{Snapshot: snap, Transport: tr, Listen: listen(p), Retry: retry})
		if err != nil {
			c.Stop()
			return nil, err
		}
		if err := nd.Start(); err != nil {
			c.Stop()
			return nil, fmt.Errorf("node: starting peer %d: %w", p, err)
		}
		c.Nodes = append(c.Nodes, nd)
		c.Addrs = append(c.Addrs, nd.Addr())
	}
	for _, nd := range c.Nodes {
		nd.SetPeers(c.Addrs)
	}
	return c, nil
}

// Stop shuts every node down.
func (c *Cluster) Stop() {
	for _, nd := range c.Nodes {
		nd.Stop()
	}
}
