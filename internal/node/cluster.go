package node

import (
	"context"
	"fmt"

	"hyperm/internal/core"
	"hyperm/internal/membership"
	"hyperm/internal/transport"
)

// Cluster is a set of serving nodes covering every peer of a deployment,
// started together and wired to each other's addresses — the single-process
// cluster used by the integration tests and the load harness.
type Cluster struct {
	Nodes []*Node
	// Addrs[p] is peer p's serving address ("" for peers that have left).
	Addrs []string

	// Construction parameters, kept so Join can build later arrivals the same
	// way the founders were built.
	tr     transport.Transport
	listen func(peer int) string
	retry  transport.Policy
	mopts  membership.Options
	tuning Tuning
}

// StartCluster snapshots every peer of sys, starts one node per peer on the
// transport (listen(p) supplies each listen address — "" for the chan
// transport, "127.0.0.1:0" for TCP), and installs the full address book on
// every node. On error, already-started nodes are stopped. Membership RPCs
// are served but no liveness probes run; use StartClusterOpts for a cluster
// that detects crashes.
func StartCluster(sys *core.System, tr transport.Transport, listen func(peer int) string, retry transport.Policy) (*Cluster, error) {
	return StartClusterOpts(sys, tr, listen, retry, membership.Options{})
}

// StartClusterOpts is StartCluster with the membership protocol tuned: a
// positive ProbeInterval turns every node into a live failure detector that
// takes over crashed neighbors' zones and republishes their records.
func StartClusterOpts(sys *core.System, tr transport.Transport, listen func(peer int) string, retry transport.Policy, mopts membership.Options) (*Cluster, error) {
	return StartClusterTuned(sys, tr, listen, retry, mopts, Tuning{})
}

// StartClusterTuned is StartClusterOpts with the lookup coordinator tuned
// (α, level fanout, fetch fanout — see Tuning). The zero Tuning means the
// defaults; Tuning{Alpha: 1, LevelFanout: 1, FetchFanout: 1} is the fully
// serial coordinator.
func StartClusterTuned(sys *core.System, tr transport.Transport, listen func(peer int) string, retry transport.Policy, mopts membership.Options, tuning Tuning) (*Cluster, error) {
	snaps, err := ExtractAll(sys)
	if err != nil {
		return nil, err
	}
	if listen == nil {
		listen = func(int) string { return "" }
	}
	c := &Cluster{tr: tr, listen: listen, retry: retry, mopts: mopts, tuning: tuning}
	for p, snap := range snaps {
		nd, err := New(Config{Snapshot: snap, Transport: tr, Listen: listen(p), Retry: retry, Membership: mopts, Tuning: tuning})
		if err != nil {
			c.Stop()
			return nil, err
		}
		if err := nd.Start(); err != nil {
			c.Stop()
			return nil, fmt.Errorf("node: starting peer %d: %w", p, err)
		}
		c.Nodes = append(c.Nodes, nd)
		c.Addrs = append(c.Addrs, nd.Addr())
	}
	for _, nd := range c.Nodes {
		nd.SetPeers(c.Addrs)
	}
	return c, nil
}

// Join grows the cluster by one node: it builds an empty peer with id
// len(Nodes) from a JoinSnapshot of sys, starts it, and splices it into the
// live overlay through the bootstrap address, splitting the zone owning
// points[l] at each level (see Node.Join). The oracle twin of one Join is
// core.System.JoinPeer with the same points — applied to sys by the caller,
// before or after, as this only reads sys's static config and bounds.
func (c *Cluster) Join(ctx context.Context, sys *core.System, bootstrap string, points [][]float64) (*Node, error) {
	peer := len(c.Nodes)
	snap, err := JoinSnapshot(sys, peer)
	if err != nil {
		return nil, err
	}
	nd, err := New(Config{Snapshot: snap, Transport: c.tr, Listen: c.listen(peer), Retry: c.retry, Membership: c.mopts, Tuning: c.tuning})
	if err != nil {
		return nil, err
	}
	if err := nd.Start(); err != nil {
		return nil, fmt.Errorf("node: starting joiner %d: %w", peer, err)
	}
	if err := nd.Join(ctx, bootstrap, points); err != nil {
		nd.Stop()
		return nil, fmt.Errorf("node: joining peer %d: %w", peer, err)
	}
	c.Nodes = append(c.Nodes, nd)
	c.Addrs = append(c.Addrs, nd.Addr())
	return nd, nil
}

// Stop shuts every node down.
func (c *Cluster) Stop() {
	for _, nd := range c.Nodes {
		nd.Stop()
	}
}
