package node

import (
	"context"
	"errors"
	"fmt"

	"hyperm/internal/core"
	"hyperm/internal/membership"
	"hyperm/internal/route"
	"hyperm/internal/transport"
)

// This file is the live half of streaming incremental publish (the simulator
// half is core.System.StreamInsert). A streamed Publish runs the shared
// kernel (core.StreamPublisher) against this node's published summaries and
// announces each resulting record delta peer-to-peer: greedy-route to the
// record's owner, apply there, then flood the record's sphere applying at
// every reached holder — the exact visit pattern of can.Overlay.streamOp,
// driven by the same route machines over store_rec RPC views, so both
// substrates' record stores stay byte-identical.

// Issue-side attribution of the announce traffic (handler side shows up as
// rpc.m.store_rec).
const ctrStreamRec = "stream.store_rec"

// publishStream is Publish with Tuning.StreamPublish on.
func (n *Node) publishStream(id int, item []float64) error {
	n.mu.Lock()
	if n.published == nil {
		n.mu.Unlock()
		return fmt.Errorf("node: peer %d has not published; streaming publish needs a base clustering", n.peer)
	}
	if n.stream == nil {
		n.stream = core.NewStreamState(core.StreamTuning{
			GrowSlack:      n.tuning.GrowSlack,
			ReclusterEvery: n.tuning.ReclusterEvery,
		}, n.cfg.Levels)
	}
	n.store.Append(id, item)
	sp := &core.StreamPublisher{
		Peer:            n.peer,
		Convention:      n.cfg.Convention,
		ClustersPerPeer: n.cfg.ClustersPerPeer,
		Mappers:         n.mappers,
		Published:       n.published,
		PubSeqs:         n.pubSeqs,
		State:           n.stream,
	}
	deltas := sp.Insert(item, n.store)
	n.published, n.pubSeqs = sp.Published, sp.PubSeqs
	n.mu.Unlock()

	// Same item-store coherence as the stale-publish path: the local fetch
	// memo and every caching coordinator must forget answers the new item
	// can change (see fetchcache.go).
	n.fetchMu.Lock()
	n.fetchGen++
	dropCoveredFetchEntries(n.fetchMemo, item)
	n.fetchMu.Unlock()
	n.broadcastInvalidate([][]float64{item})

	ctx := context.Background()
	for _, d := range deltas {
		if err := n.announceDelta(ctx, d); err != nil {
			return fmt.Errorf("node: announcing stream delta (level %d, seq %d): %w", d.Level, d.Rec.Seq, err)
		}
	}
	return nil
}

// announceDelta ships one record delta: route to the owner of the record's
// key, apply there (as owner), then — for sphere records — flood the sphere
// applying at every holder it reaches. Holders that die mid-flood are
// skipped, like replication drops in the simulator.
func (n *Node) announceDelta(ctx context.Context, d core.StreamDelta) error {
	key, radius := d.Rec.Entry.Key, d.Rec.Entry.Radius
	src := rpcViews{n: n, ctx: ctx, level: d.Level, key: key, radius: 0}
	start, err := src.View(n.peer)
	if err != nil {
		return err
	}
	r := route.NewRouter(start, key, n.hopLimit())
	for {
		step, err := r.Next()
		if err != nil {
			return fmt.Errorf("routing to owner of %v: %w", key, err)
		}
		if step.Kind == route.StepDone {
			break
		}
		v, err := src.View(step.To)
		if err != nil {
			return err
		}
		r.Feed(v, 1)
	}
	ownerView, err := n.applyRec(ctx, d, r.Owner().ID, true)
	if err != nil {
		return err
	}
	if radius <= 0 {
		return nil
	}
	f := route.NewFlood(ownerView, key, radius)
	for {
		step := f.Next()
		if step.Kind == route.StepDone {
			return nil
		}
		v, err := n.applyRec(ctx, d, step.To, false)
		if err != nil {
			if errors.Is(err, transport.ErrUnavailable) {
				f.Skip() // holder died mid-flood; its copy goes with it
				continue
			}
			return err
		}
		f.Feed(v)
	}
}

// applyRec applies one delta at node id — locally when id is this node,
// via a store_rec RPC otherwise — and returns the holder's zones/neighbors
// view for flood expansion.
func (n *Node) applyRec(ctx context.Context, d core.StreamDelta, id int, asOwner bool) (route.NodeView, error) {
	if id == n.peer {
		if err := n.mgr.ApplyRecord(d.Level, asOwner, d.Del, d.Rec); err != nil {
			return route.NodeView{}, err
		}
		zones, nbs, _, _, _ := n.mgr.SearchView(d.Level, func(route.RecordView) bool { return false })
		return n.toNodeView(searchView{ID: n.peer, Zones: zones, Neighbors: nbs}), nil
	}
	addr, err := n.peerAddr(id)
	if err != nil {
		return route.NodeView{}, err
	}
	body, err := membership.EncodeStoreRecReq(membership.StoreRecReq{
		Level: d.Level, Del: d.Del, AsOwner: asOwner, Rec: d.Rec,
	})
	if err != nil {
		return route.NodeView{}, err
	}
	n.count(ctrStreamRec)
	resp, err := n.client.Call(ctx, addr, transport.Request{Method: membership.MethodStoreRec, Body: body})
	if err != nil {
		return route.NodeView{}, err
	}
	v, err := membership.DecodeStoreRecResp(resp.Body)
	if err != nil {
		return route.NodeView{}, err
	}
	return n.toNodeView(searchView{ID: v.ID, Zones: v.Zones, Neighbors: v.Neighbors}), nil
}
