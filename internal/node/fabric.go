package node

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"hyperm/internal/membership"
	"hyperm/internal/route"
	"hyperm/internal/transport"
)

// This file implements membership.Fabric on *Node: the membership manager
// decides what to say, the node knows how to reach peers (the retrying
// transport client) and how to run overlay machinery (the shared routing
// core over can_search views).

var _ membership.Fabric = (*Node)(nil)

// Call performs one membership RPC against addr.
func (n *Node) Call(ctx context.Context, addr, method string, body []byte) ([]byte, error) {
	resp, err := n.client.Call(ctx, addr, transport.Request{Method: method, Body: body})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// fetchViewAddr obtains one can_search view from a peer known only by
// address — the bootstrap contact of a join, before any id is known.
func (n *Node) fetchViewAddr(ctx context.Context, addr string, level int, key []float64, radius float64) (searchView, error) {
	resp, err := n.client.Call(ctx, addr, transport.Request{
		Method: methodCanSearch,
		Body:   encodeSearchReq(level, key, radius, false),
	})
	if err != nil {
		return searchView{}, fmt.Errorf("node: can_search %s: %w", addr, err)
	}
	return decodeSearchResp(resp.Body)
}

// RouteOwner greedily routes from the bootstrap address to the owner of key
// at level, learning peer addresses from the views along the way.
func (n *Node) RouteOwner(ctx context.Context, level int, bootstrap string, key []float64) (int, string, error) {
	sv, err := n.fetchViewAddr(ctx, bootstrap, level, key, 0)
	if err != nil {
		return 0, "", err
	}
	addrs := map[int]string{sv.ID: bootstrap}
	learn := func(v searchView) {
		for _, nb := range v.Neighbors {
			if nb.Addr != "" {
				addrs[nb.ID] = nb.Addr
			}
		}
	}
	learn(sv)
	r := route.NewRouter(n.toNodeView(sv), key, n.hopLimit())
	for {
		step, err := r.Next()
		if err != nil {
			return 0, "", fmt.Errorf("node: routing to owner of %v at level %d: %w", key, level, err)
		}
		if step.Kind == route.StepDone {
			owner := r.Owner()
			addr, ok := addrs[owner.ID]
			if !ok {
				if addr, err = n.peerAddr(owner.ID); err != nil {
					return 0, "", err
				}
			}
			return owner.ID, addr, nil
		}
		addr, ok := addrs[step.To]
		if !ok {
			if addr, err = n.peerAddr(step.To); err != nil {
				return 0, "", err
			}
		}
		v, err := n.fetchViewAddr(ctx, addr, level, key, 0)
		if err != nil {
			return 0, "", err
		}
		learn(v)
		r.Feed(n.toNodeView(v), 1)
	}
}

// Collect runs a sphere search at level and returns every reachable record
// intersecting the sphere — deduplicated by sequence number and seq-sorted,
// the live twin of the simulator's global recovery scan. It harvests from
// every view the search touches (start, routing hops, flood visits); the
// replication invariant puts a holder of every matching record inside the
// flooded region, so coverage matches the oracle's scan. Peers that die
// mid-flood are skipped (their visit is abandoned) — exactly the survivors
// the simulator's scan would see.
func (n *Node) Collect(ctx context.Context, level int, key []float64, radius float64) ([]route.RecordView, error) {
	src := rpcViews{n: n, ctx: ctx, level: level, key: key, radius: radius}
	seen := map[int]bool{}
	var out []route.RecordView
	harvest := func(v route.NodeView) {
		for _, recs := range [2][]route.RecordView{v.Owned, v.Replicas} {
			for _, rec := range recs {
				if seen[rec.Seq] {
					continue
				}
				if route.TorusDist(rec.Entry.Key, key) <= rec.Entry.Radius+radius {
					seen[rec.Seq] = true
					out = append(out, rec)
				}
			}
		}
	}
	start, err := src.View(n.peer)
	if err != nil {
		return nil, err
	}
	harvest(start)
	s := route.NewSearch(start, key, radius, n.hopLimit())
	for {
		step, err := s.Next()
		if err != nil {
			return nil, fmt.Errorf("node: recovery search at %v level %d: %w", key, level, err)
		}
		if step.Kind == route.StepDone {
			break
		}
		v, err := src.View(step.To)
		if err != nil {
			if step.Kind == route.StepFloodVisit && errors.Is(err, transport.ErrUnavailable) {
				s.Skip(1)
				continue
			}
			return nil, err
		}
		harvest(v)
		s.Feed(v, 1)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
