// Package node is the serving half of the live runtime: a Node daemon hosts
// one peer's slice of the Hyper-M deployment — its local items, its published
// cluster summaries, and its per-level CAN zone with the index records stored
// there — and answers Publish, RangeQuery and KNNQuery RPCs over a
// transport.Transport. Multi-hop overlay lookups run peer-to-peer: the
// queried node drives the shared routing core (internal/route), contacting
// one node per hop, instead of walking a shared in-memory structure.
//
// The package's defining property is the determinism oracle: a cluster of
// nodes built from ExtractSnapshot answers every query byte-identically to
// the core.System it was extracted from. The query protocol itself is the
// shared core.Engine; this package contributes a core.Backend whose overlay
// search drives the same route.Search machine as can.Overlay — one
// implementation, two ViewSources (see search.go) — and whose fetches run
// core.LocalRange/LocalKNN on the storing peer.
package node

import (
	"fmt"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/store"
)

// Snapshot is everything one peer needs to serve its slice of a deployment:
// configuration and key-mapping bounds (shared by all peers), its local item
// store, its published summaries, and its per-level CAN node state. It is
// extracted from a fully built core.System — the simulator doubles as the
// cluster bootstrap, so every node starts from exactly the state the oracle
// holds.
type Snapshot struct {
	// Peer is this node's peer id (also its overlay node id at every level).
	Peer int
	// Alive reports whether the peer was still part of the deployment at
	// extraction time. A dead peer's snapshot carries no items and no zones
	// (its regions were handed over or orphaned); it is extracted only so
	// ExtractAll keeps peer ids positional, and is not worth serving.
	Alive bool
	// ClusterSize is the total number of overlay nodes; the routing loop
	// limit (8*ClusterSize+16) depends on it.
	ClusterSize int
	// Config is the deployment configuration. Only the query-relevant fields
	// are used; Factory and Rng are cleared (a serving node never builds
	// overlays or clusters data).
	Config core.Config
	// Bounds are the installed per-level coefficient bounds; they rebuild
	// the exact key mapping of the source system.
	Bounds []core.Bounds
	// Store is the peer's local item store — the flat coalesced layout the
	// serving path scans directly (nil for a dead or joining peer; New
	// substitutes an empty store).
	Store *store.Store
	// Published holds the peer's announced per-level cluster summaries (nil
	// if the peer has not published). Publish RPCs absorb new items into it
	// exactly like core.System.PostInsert.
	Published [][]core.ClusterRef
	// PubSeqs[l][i] is the overlay sequence number Published[l][i] was
	// announced under — the record identities streaming publish
	// (Tuning.StreamPublish) upserts in place. nil when the peer has not
	// published.
	PubSeqs [][]int
	// Levels[l] is the peer's slice of the level-l CAN overlay: zones,
	// neighbor table, stored records.
	Levels []can.NodeView
}

// ExtractSnapshot copies peer's slice out of a built system. The system must
// have bounds installed and use *can.Overlay at every level (the serving
// runtime replicates CAN's routing; other overlays have no NodeView).
func ExtractSnapshot(sys *core.System, peer int) (Snapshot, error) {
	cfg := sys.Config()
	bounds := sys.Bounds()
	if bounds == nil {
		return Snapshot{}, fmt.Errorf("node: system has no bounds installed; call DeriveBounds or SetBounds first")
	}
	snap := Snapshot{
		Peer:        peer,
		Alive:       sys.PeerAlive(peer),
		ClusterSize: cfg.Peers,
		Config:      cfg,
		Bounds:      bounds,
		Published:   sys.PublishedAll(peer),
		PubSeqs:     sys.PublishedSeqs(peer),
		Levels:      make([]can.NodeView, cfg.Levels),
	}
	snap.Config.Factory = nil
	snap.Config.Rng = nil
	if snap.Alive {
		// A dead peer's items left with the device: serving them would
		// diverge from the oracle, whose backend answers no fetches for a
		// dead peer.
		snap.Store = sys.PeerStore(peer)
	}
	for l := 0; l < cfg.Levels; l++ {
		ov, ok := sys.Overlay(l).(*can.Overlay)
		if !ok {
			return Snapshot{}, fmt.Errorf("node: level %d overlay is %T, want *can.Overlay", l, sys.Overlay(l))
		}
		snap.Levels[l] = ov.View(peer)
	}
	return snap, nil
}

// JoinSnapshot builds the snapshot of a peer that is about to join a running
// cluster: the shared deployment configuration and bounds (which every node
// must agree on), but no items, no published summaries, and empty overlay
// state at every level — the node acquires its zones and records through the
// live join protocol (Node.Join), not from the simulator. peer is the id the
// joiner will take; in lockstep with the oracle that is core.System.JoinPeer's
// assignment, len(peers) at join time.
func JoinSnapshot(sys *core.System, peer int) (Snapshot, error) {
	cfg := sys.Config()
	bounds := sys.Bounds()
	if bounds == nil {
		return Snapshot{}, fmt.Errorf("node: system has no bounds installed; call DeriveBounds or SetBounds first")
	}
	snap := Snapshot{
		Peer:        peer,
		Alive:       true,
		ClusterSize: cfg.Peers,
		Config:      cfg,
		Bounds:      bounds,
		Levels:      make([]can.NodeView, cfg.Levels),
	}
	snap.Config.Factory = nil
	snap.Config.Rng = nil
	for l := range snap.Levels {
		snap.Levels[l] = can.NodeView{ID: peer}
	}
	return snap, nil
}

// ExtractAll snapshots every peer of the system (the single-process cluster
// bootstrap path).
func ExtractAll(sys *core.System) ([]Snapshot, error) {
	snaps := make([]Snapshot, sys.Config().Peers)
	for p := range snaps {
		s, err := ExtractSnapshot(sys, p)
		if err != nil {
			return nil, err
		}
		snaps[p] = s
	}
	return snaps, nil
}
