package node_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hyperm/internal/core"
	"hyperm/internal/experiments"
	"hyperm/internal/membership"
	"hyperm/internal/node"
	"hyperm/internal/transport"
	"hyperm/internal/vec"
)

// This file is the acceptance suite of delegated flood aggregation
// (can_search_agg, Tuning.AggFanout): delegated answers must stay
// byte-identical to the oracle on every topology churn can produce — the
// same bar the view cache met — while collapsing the coordinator's Θ(N)
// cold-query RPC bill to a small budget, measured by the cold-path
// regression test below.

// TestDelegationDifferential sweeps seeded churned topologies with
// delegation on — alternating the full stack (cache + delegation + warm
// push) with bare delegation on an uncached node — and holds delegated
// serving to the oracle on cold, warm, publish-interleaved, and
// post-live-churn passes. The pre-start churn includes a crash survivor, and
// the mid-stream phase replays a live join and leave, so gathered pools are
// proven coherent across splits, handoffs, and takeovers.
func TestDelegationDifferential(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for s := 0; s < seeds; s++ {
		seed := int64(s + 101)
		tuning := node.Tuning{AggFanout: 3}
		if s%2 == 0 {
			tuning = node.Tuning{CacheViews: true, HotReplicate: true, HotThreshold: 2, AggFanout: 2, WarmPush: 2}
		}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runServeDifferential(t, seed, tuning)
		})
	}
}

// TestDelegationTakeoverMidStream is the crash half: a node dies under a
// query stream with delegation (and caching) on; once takeover propagates,
// every observing coordinator must keep answering byte-identically — pools
// gathered from the post-crash topology, stale caches revalidated.
func TestDelegationTakeoverMidStream(t *testing.T) {
	runTakeoverMidStream(t, node.Tuning{CacheViews: true, AggFanout: 2, WarmPush: 2})
}

// coordRPCs totals the lookup-coordinator-attributed RPCs one node issued:
// the cold-path budget metric (view fetches + delegations + revalidation
// probes; phase-two fetches are a separate, result-sized cost).
func coordRPCs(nd *node.Node) float64 {
	c := nd.Counters()
	return c["coord.can_search"] + c["coord.agg"] + c["coord.view_version"]
}

// TestDelegationColdRPCBudget is the regression fence on the tentpole
// number: on a 64-node cluster, a first-touch (cold, unmemoized) query costs
// the serial reference coordinator Θ(N) can_search RPCs — every
// sphere-intersecting owner contacted directly — while the delegated
// coordinator pays only routing hops plus a handful of can_search_agg
// calls. The budget (20 per query) is the fence; the reference floor proves
// it is a real reduction, not a small topology.
func TestDelegationColdRPCBudget(t *testing.T) {
	params := experiments.Params{Peers: 64, ItemsPerPeer: 8, Dim: 8, Levels: 2, ClustersPerPeer: 2, Seed: 42}
	sys, err := experiments.BuildMarkovSystem(params)
	if err != nil {
		t.Fatal(err)
	}
	sys.PublishAll()
	// The Markov assignment can leave peers empty; draw query points from the
	// items that actually exist, spread across holders.
	var srcItems [][]float64
	for p := 0; p < params.Peers; p++ {
		_, items := sys.PeerData(p)
		srcItems = append(srcItems, items...)
	}
	if len(srcItems) < 8 {
		t.Fatalf("test corpus has only %d items", len(srcItems))
	}
	const numQueries = 6
	qs := make([][]float64, numQueries)
	radii := make([]float64, numQueries)
	for i := range qs {
		qs[i] = srcItems[(i*17)%len(srcItems)]
		radii[i] = vec.Dist(qs[i], srcItems[(i*31+7)%len(srcItems)])
	}

	run := func(tag string, tuning node.Tuning) float64 {
		tr := transport.NewChan()
		defer tr.Close()
		cl, err := node.StartClusterTuned(sys, tr, func(int) string { return "" },
			transport.Policy{Timeout: 30e9}, membership.Options{}, tuning)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Stop()
		client := node.NewClient(tr, transport.Policy{Timeout: 30e9})
		ctx := context.Background()
		for i, q := range qs {
			want := sys.RangeQuery(0, q, radii[i], core.RangeOptions{})
			got, err := client.Range(ctx, cl.Addrs[0], q, radii[i], core.RangeOptions{})
			if err != nil {
				t.Fatalf("%s: range query %d: %v", tag, i, err)
			}
			if !reflect.DeepEqual(normalizeRange(want), normalizeRange(got)) {
				t.Errorf("%s: range query %d diverged from oracle", tag, i)
			}
		}
		perQuery := coordRPCs(cl.Nodes[0]) / float64(len(qs))
		c := cl.Nodes[0].Counters()
		t.Logf("%s: %.1f coordinator RPCs per cold query (can_search=%v agg=%v pool_hit=%v fallback=%v fail=%v)",
			tag, perQuery, c["coord.can_search"], c["coord.agg"], c["agg.pool_hit"], c["agg.fallback"], c["agg.delegate_fail"])
		return perQuery
	}

	// Both runs issue the same distinct, never-repeated queries from peer 0,
	// so every lookup is a first touch (no memo, no warm cache).
	reference := run("serial reference", node.Tuning{Alpha: 1})
	delegated := run("delegated", node.Tuning{AggFanout: 3})

	const budget = 20.0
	if delegated > budget {
		t.Errorf("delegated coordinator spent %.1f RPCs per cold query, budget %.0f", delegated, budget)
	}
	if reference < 60 {
		t.Errorf("serial reference spent only %.1f RPCs per cold query — topology too small to exercise the Θ(N) cost", reference)
	}
	if delegated*4 > reference {
		t.Errorf("delegation saved too little: %.1f delegated vs %.1f reference RPCs per query", delegated, reference)
	}
}

// TestWarmPushAfterChurn exercises the proactive warmer: nodes that served
// delegations push their refreshed views to recent requesters after a churn
// epoch, and receivers install them (warm.push / warm.install counters), so
// the next cold query finds pre-healed caches — and still answers
// byte-identically.
func TestWarmPushAfterChurn(t *testing.T) {
	params := cacheParams(77)
	sys, err := experiments.BuildMarkovSystem(params)
	if err != nil {
		t.Fatal(err)
	}
	sys.PublishAll()

	tr := transport.NewChan()
	defer tr.Close()
	tuning := node.Tuning{CacheViews: true, AggFanout: 2, WarmPush: 4}
	cl, err := node.StartClusterTuned(sys, tr, func(int) string { return "" },
		transport.Policy{Timeout: 30e9}, membership.Options{}, tuning)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := node.NewClient(tr, transport.Policy{Timeout: 30e9})
	ctx := context.Background()

	// Cold queries from every founder: the contacted delegates record the
	// requesters the warmer will later push to.
	const protected = 4
	qs, radii := queriesFor(t, sys, protected, 6)
	for i, q := range qs {
		from := i % protected
		if _, err := client.Range(ctx, cl.Addrs[from], q, radii[i], core.RangeOptions{}); err != nil {
			t.Fatalf("warmup range %d: %v", i, err)
		}
	}
	if sumCounter(cl, "coord.agg") == 0 {
		t.Fatal("warmup queries never delegated — no requesters for the warmer to push to")
	}

	// Churn: a graceful leave (and, if pushes are slow to appear, a join)
	// bumps epochs across the leave region; every dirty delegate pushes its
	// refreshed view to its recent requesters.
	pre := make(map[int][]uint64, protected)
	for f := 0; f < protected; f++ {
		pre[f] = epochSnapshot(cl.Nodes[f], params.Levels)
	}
	victim := params.Peers - 1
	if _, err := sys.LeavePeer(victim); err != nil {
		t.Fatalf("oracle leave: %v", err)
	}
	if err := cl.Nodes[victim].Leave(ctx); err != nil {
		t.Fatalf("live leave: %v", err)
	}
	cl.Nodes[victim].Stop()

	deadline := time.Now().Add(5 * time.Second)
	joined := false
	for sumCounter(cl, "warm.push") == 0 || sumCounter(cl, "warm.install") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no warm push landed after churn: push=%v install=%v",
				sumCounter(cl, "warm.push"), sumCounter(cl, "warm.install"))
		}
		if !joined && time.Since(deadline.Add(-5*time.Second)) > 2*time.Second {
			joined = true
			rng := rand.New(rand.NewSource(77))
			points := joinPoints(t, sys, rng)
			if _, err := sys.JoinPeer(points); err != nil {
				t.Fatalf("oracle join: %v", err)
			}
			if _, err := cl.Join(ctx, sys, cl.Addrs[0], points); err != nil {
				t.Fatalf("live join: %v", err)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("warm pushes: %v sent, %v installed", sumCounter(cl, "warm.push"), sumCounter(cl, "warm.install"))

	// Post-churn answers stay byte-identical — checked from the founders that
	// observed the churn at every level (the coherence precondition; a
	// coordinator that has not heard of the leave answers from the old
	// topology by design, exactly like the simulator's stale peers).
	var observers []int
	for f := 0; f < protected; f++ {
		if epochsAdvanced(cl.Nodes[f], pre[f]) {
			observers = append(observers, f)
		}
	}
	t.Logf("churn observed by founders %v", observers)
	for _, from := range observers {
		for i, q := range qs {
			want := sys.RangeQuery(from, q, radii[i], core.RangeOptions{})
			got, err := client.Range(ctx, cl.Addrs[from], q, radii[i], core.RangeOptions{})
			if err != nil {
				t.Fatalf("post-churn range %d from %d: %v", i, from, err)
			}
			if !reflect.DeepEqual(normalizeRange(want), normalizeRange(got)) {
				t.Errorf("post-churn range %d from peer %d diverged from oracle", i, from)
			}
		}
	}
}
