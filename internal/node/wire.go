package node

import (
	"fmt"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/membership"
	"hyperm/internal/transport"
)

// RPC methods served by a Node. The bodies are binary messages built with
// the transport codec; float64 values cross the wire bit-exactly, which the
// determinism oracle depends on.
const (
	methodRange        = "range"          // client → node: run a range query as this peer
	methodKNN          = "knn"            // client → node: run a k-nn query as this peer
	methodPublish      = "publish"        // client → node: post-insert one item
	methodPublishBatch = "publish_batch"  // client → node: post-insert many items, one coherence round
	methodCanSearch    = "can_search"     // node → node: one hop of an overlay lookup
	methodFetchRange   = "fetch_range"    // node → node: phase-two local range scan
	methodFetchKNN     = "fetch_knn"      // node → node: phase-two local k-nn scan
	methodViewVersion  = "view_version"   // node → node: cheap cache-revalidation version check
	methodReplicate    = "replicate_refs" // node → node: pull a hot node's full view for pinning
	methodFetchSub     = "fetch_sub"      // node → node: register for fetch invalidations
	methodFetchInval   = "inval_fetch"    // node → node: holder's item store changed, drop its entries
	methodCanSearchAgg = "can_search_agg" // node → node: delegated gather of a whole flood region
	methodWarmViews    = "warm_views"     // node → node: proactive view push after a churn epoch
)

// ---- range ----

func encodeRangeReq(q []float64, eps float64, opts core.RangeOptions) []byte {
	var e transport.Encoder
	e.Floats(q)
	e.F64(eps)
	e.Int(opts.MaxPeers)
	return e.Bytes()
}

func decodeRangeReq(b []byte) (q []float64, eps float64, opts core.RangeOptions, err error) {
	d := transport.NewDecoder(b)
	q = d.FloatsShared()
	eps = d.F64()
	opts.MaxPeers = d.Int()
	return q, eps, opts, d.Finish()
}

func encodeScores(e *transport.Encoder, scores []core.PeerScore) {
	e.Grow(4 + 16*len(scores))
	e.U32(uint32(len(scores)))
	for _, s := range scores {
		e.Int(s.Peer)
		e.F64(s.Score)
	}
}

func decodeScores(d *transport.Decoder) []core.PeerScore {
	n := d.Count(16)
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]core.PeerScore, n)
	for i := range out {
		out[i] = core.PeerScore{Peer: d.Int(), Score: d.F64()}
	}
	return out
}

func encodeRangeResp(res core.RangeResult) []byte {
	var e transport.Encoder
	e.Ints(res.Items)
	encodeScores(&e, res.Scores)
	e.Int(res.PeersContacted)
	e.Int(res.OverlayHops)
	return e.Bytes()
}

func decodeRangeResp(b []byte) (core.RangeResult, error) {
	d := transport.NewDecoder(b)
	var res core.RangeResult
	res.Items = d.IntsShared()
	res.Scores = decodeScores(d)
	res.PeersContacted = d.Int()
	res.OverlayHops = d.Int()
	return res, d.Finish()
}

// ---- knn ----

func encodeKNNReq(q []float64, k int, opts core.KNNOptions) []byte {
	var e transport.Encoder
	e.Floats(q)
	e.Int(k)
	e.Int(opts.MaxPeers)
	e.F64(opts.C)
	return e.Bytes()
}

func decodeKNNReq(b []byte) (q []float64, k int, opts core.KNNOptions, err error) {
	d := transport.NewDecoder(b)
	q = d.FloatsShared()
	k = d.Int()
	opts.MaxPeers = d.Int()
	opts.C = d.F64()
	return q, k, opts, d.Finish()
}

func encodeKNNResp(res core.KNNResult) []byte {
	var e transport.Encoder
	e.Ints(res.Items)
	encodeScores(&e, res.Scores)
	e.Floats(res.EpsPerLevel)
	e.Int(res.PeersContacted)
	e.Int(res.OverlayHops)
	return e.Bytes()
}

func decodeKNNResp(b []byte) (core.KNNResult, error) {
	d := transport.NewDecoder(b)
	var res core.KNNResult
	res.Items = d.IntsShared()
	res.Scores = decodeScores(d)
	res.EpsPerLevel = d.FloatsShared()
	res.PeersContacted = d.Int()
	res.OverlayHops = d.Int()
	return res, d.Finish()
}

// ---- publish ----

func encodePublishReq(id int, item []float64) []byte {
	var e transport.Encoder
	e.Int(id)
	e.Floats(item)
	return e.Bytes()
}

func decodePublishReq(b []byte) (id int, item []float64, err error) {
	d := transport.NewDecoder(b)
	id = d.Int()
	item = d.FloatsShared()
	return id, item, d.Finish()
}

// ---- publish_batch ----

func encodePublishBatchReq(ids []int, items [][]float64) []byte {
	var e transport.Encoder
	size := 4
	for _, it := range items {
		size += 8 + 4 + 8*len(it)
	}
	e.Grow(size)
	e.U32(uint32(len(items)))
	for i, it := range items {
		e.Int(ids[i])
		e.Floats(it)
	}
	return e.Bytes()
}

func decodePublishBatchReq(b []byte) (ids []int, items [][]float64, err error) {
	d := transport.NewDecoder(b)
	// An item costs at least 12 bytes (id + empty vector), which bounds a
	// sane count against the message size.
	if n := d.Count(12); d.Err() == nil && n > 0 {
		ids = make([]int, n)
		items = make([][]float64, n)
		for i := range items {
			ids[i] = d.Int()
			items[i] = d.FloatsShared()
		}
	}
	return ids, items, d.Finish()
}

// ---- can_search ----

// The full flag asks for the node's complete record stores instead of the
// per-sphere filtered slice — what a view cache stores so the cached copy can
// answer any later sphere (the searcher's own filter is idempotent).
func encodeSearchReq(level int, key []float64, radius float64, full bool) []byte {
	var e transport.Encoder
	e.Int(level)
	e.Floats(key)
	e.F64(radius)
	if full {
		e.U8(1)
	} else {
		e.U8(0)
	}
	return e.Bytes()
}

func decodeSearchReq(b []byte) (level int, key []float64, radius float64, full bool, err error) {
	d := transport.NewDecoder(b)
	level = d.Int()
	key = d.FloatsShared()
	radius = d.F64()
	full = d.U8() != 0
	return level, key, radius, full, d.Finish()
}

// searchView is one node's answer to a can_search hop: its identity and
// zones (routing), its per-level state version (the cache revalidation
// token), its neighbor table (the coordinator's next-hop and flood decisions;
// addresses included so coordinators learn how to reach peers that joined
// after their address book was seeded), and its stored records — owned and
// replicas kept separate, each in storage order, with their overlay sequence
// numbers so the coordinator deduplicates replicas exactly like the
// in-process flood. Filtered responses carry the records matching the query
// sphere; full responses (cache fills) carry everything.
type searchView struct {
	ID        int
	Version   uint64
	Zones     []can.Zone
	Neighbors []membership.Neighbor
	Owned     []can.RecordView
	Replicas  []can.RecordView
}

// searchRespSize is the exact wire size of encodeSearchResp's output, so the
// hot can_search reply path allocates its buffer once (records' cluster-ref
// centers share the key's dimensionality).
func searchRespSize(v searchView) int {
	zones := func(zs []can.Zone) int {
		n := 4
		for _, z := range zs {
			n += 8 + 8*(len(z.Lo)+len(z.Hi))
		}
		return n
	}
	recs := func(rs []can.RecordView) int {
		n := 4
		for _, rec := range rs {
			n += 8 + 4 + 8*len(rec.Entry.Key) + 8 + 24 + 4 + 8*len(rec.Entry.Key) + 8 + 8
		}
		return n
	}
	n := 8 + 8 + zones(v.Zones) + 4
	for _, nb := range v.Neighbors {
		n += 8 + 4 + len(nb.Addr) + zones(nb.Zones)
	}
	return n + recs(v.Owned) + recs(v.Replicas)
}

// encodeSearchView appends one searchView to an encoder — the body shared
// by can_search responses and the multi-view agg/warm messages.
func encodeSearchView(e *transport.Encoder, v searchView) error {
	e.Int(v.ID)
	e.U64(v.Version)
	membership.EncodeZones(e, v.Zones)
	membership.EncodeNeighbors(e, v.Neighbors)
	if err := membership.EncodeRecords(e, v.Owned); err != nil {
		return fmt.Errorf("node: %w", err)
	}
	if err := membership.EncodeRecords(e, v.Replicas); err != nil {
		return fmt.Errorf("node: %w", err)
	}
	return nil
}

func decodeSearchView(d *transport.Decoder) searchView {
	var v searchView
	v.ID = d.Int()
	v.Version = d.U64()
	v.Zones = membership.DecodeZones(d)
	v.Neighbors = membership.DecodeNeighbors(d)
	v.Owned = membership.DecodeRecords(d)
	v.Replicas = membership.DecodeRecords(d)
	return v
}

func encodeSearchResp(v searchView) ([]byte, error) {
	var e transport.Encoder
	e.Grow(searchRespSize(v))
	if err := encodeSearchView(&e, v); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

func decodeSearchResp(b []byte) (searchView, error) {
	d := transport.NewDecoder(b)
	v := decodeSearchView(d)
	return v, d.Finish()
}

// ---- can_search_agg ----

// aggReq asks a delegate to gather the views of the sphere region reachable
// from it without crossing the claimed set, sub-delegating up to Fanout
// frontier claims with Depth budget remaining. From names the requester —
// the id the delegate's proactive warmer will push refreshed views back to.
type aggReq struct {
	From, Level   int
	Key           []float64
	Radius        float64
	Depth, Fanout int
	Claimed       []int
}

func encodeAggReq(r aggReq) []byte {
	var e transport.Encoder
	e.Int(r.From)
	e.Int(r.Level)
	e.Floats(r.Key)
	e.F64(r.Radius)
	e.Int(r.Depth)
	e.Int(r.Fanout)
	e.Ints(r.Claimed)
	return e.Bytes()
}

func decodeAggReq(b []byte) (aggReq, error) {
	d := transport.NewDecoder(b)
	var r aggReq
	r.From = d.Int()
	r.Level = d.Int()
	r.Key = d.FloatsShared()
	r.Radius = d.F64()
	r.Depth = d.Int()
	r.Fanout = d.Int()
	r.Claimed = d.IntsShared()
	return r, d.Finish()
}

// The agg response piggybacks every gathered full view (the delegate's own
// first) plus the final claimed set of the delegate's flood.
func encodeAggResp(views []searchView, claimed []int) ([]byte, error) {
	var e transport.Encoder
	size := 4 + 4 + 8*len(claimed)
	for _, v := range views {
		size += searchRespSize(v)
	}
	e.Grow(size)
	e.Ints(claimed)
	e.U32(uint32(len(views)))
	for _, v := range views {
		if err := encodeSearchView(&e, v); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

func decodeAggResp(b []byte) (views []searchView, claimed []int, err error) {
	d := transport.NewDecoder(b)
	claimed = d.IntsShared()
	if n := d.Count(32); d.Err() == nil && n > 0 { // id + version + four list prefixes
		views = make([]searchView, 0, n)
		for i := 0; i < n; i++ {
			views = append(views, decodeSearchView(d))
		}
	}
	return views, claimed, d.Finish()
}

// ---- warm_views ----

// warm_views pushes the sender's full level view unsolicited: From is the
// sender (== view ID), installed by caching receivers at their current
// epoch (equivalent to a fetch completing now).
func encodeWarmReq(from, level int, v searchView) ([]byte, error) {
	var e transport.Encoder
	e.Grow(16 + searchRespSize(v))
	e.Int(from)
	e.Int(level)
	if err := encodeSearchView(&e, v); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

func decodeWarmReq(b []byte) (from, level int, v searchView, err error) {
	d := transport.NewDecoder(b)
	from = d.Int()
	level = d.Int()
	v = decodeSearchView(d)
	return from, level, v, d.Finish()
}

// ---- view_version / replicate_refs ----

// Both requests name only a level: view_version answers with the responder's
// current state version (8 bytes — the cheap revalidation probe), and
// replicate_refs answers with its full searchView (the hot-replica pull).
func encodeLevelReq(level int) []byte {
	var e transport.Encoder
	e.Int(level)
	return e.Bytes()
}

func decodeLevelReq(b []byte) (int, error) {
	d := transport.NewDecoder(b)
	level := d.Int()
	return level, d.Finish()
}

func encodeVersionResp(v uint64) []byte {
	var e transport.Encoder
	e.U64(v)
	return e.Bytes()
}

func decodeVersionResp(b []byte) (uint64, error) {
	d := transport.NewDecoder(b)
	v := d.U64()
	return v, d.Finish()
}

// ---- fetch_sub / inval_fetch ----

// fetch_sub carries the registering coordinator's id.
func encodePeerReq(peer int) []byte {
	var e transport.Encoder
	e.Int(peer)
	return e.Bytes()
}

func decodePeerReq(b []byte) (int, error) {
	d := transport.NewDecoder(b)
	peer := d.Int()
	return peer, d.Finish()
}

// inval_fetch carries the holder's id and the newly published items, so
// subscribers drop exactly the cached answers those items can change. A
// batched publish ships every item in one notification — one RPC and one
// registry pass per subscriber instead of one per item.
func encodeInvalReq(holder int, items [][]float64) []byte {
	var e transport.Encoder
	size := 12
	for _, it := range items {
		size += 4 + 8*len(it)
	}
	e.Grow(size)
	e.Int(holder)
	e.U32(uint32(len(items)))
	for _, it := range items {
		e.Floats(it)
	}
	return e.Bytes()
}

func decodeInvalReq(b []byte) (holder int, items [][]float64, err error) {
	d := transport.NewDecoder(b)
	holder = d.Int()
	// An item costs at least 4 bytes (empty vector length prefix), which
	// bounds a sane count against the message size.
	if n := d.Count(4); d.Err() == nil && n > 0 {
		items = make([][]float64, n)
		for i := range items {
			items[i] = d.FloatsShared()
		}
	}
	return holder, items, d.Finish()
}

// ---- fetch_range ----

func encodeFetchRangeReq(q []float64, eps float64) []byte {
	var e transport.Encoder
	e.Floats(q)
	e.F64(eps)
	return e.Bytes()
}

func decodeFetchRangeReq(b []byte) (q []float64, eps float64, err error) {
	d := transport.NewDecoder(b)
	q = d.FloatsShared()
	eps = d.F64()
	return q, eps, d.Finish()
}

func encodeFetchRangeResp(ids []int) []byte {
	var e transport.Encoder
	e.Ints(ids)
	return e.Bytes()
}

func decodeFetchRangeResp(b []byte) ([]int, error) {
	d := transport.NewDecoder(b)
	ids := d.IntsShared()
	return ids, d.Finish()
}

// ---- fetch_knn ----

func encodeFetchKNNReq(q []float64, k int) []byte {
	var e transport.Encoder
	e.Floats(q)
	e.Int(k)
	return e.Bytes()
}

func decodeFetchKNNReq(b []byte) (q []float64, k int, err error) {
	d := transport.NewDecoder(b)
	q = d.FloatsShared()
	k = d.Int()
	return q, k, d.Finish()
}

func encodeFetchKNNResp(items []core.ItemDist) []byte {
	var e transport.Encoder
	e.Grow(4 + 16*len(items))
	e.U32(uint32(len(items)))
	for _, it := range items {
		e.Int(it.ID)
		e.F64(it.Dist2)
	}
	return e.Bytes()
}

func decodeFetchKNNResp(b []byte) ([]core.ItemDist, error) {
	d := transport.NewDecoder(b)
	var items []core.ItemDist
	if n := d.Count(16); d.Err() == nil && n > 0 {
		items = make([]core.ItemDist, n)
		for i := range items {
			items[i] = core.ItemDist{ID: d.Int(), Dist2: d.F64()}
		}
	}
	return items, d.Finish()
}
