package node

import (
	"fmt"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/overlay"
	"hyperm/internal/transport"
)

// RPC methods served by a Node. The bodies are binary messages built with
// the transport codec; float64 values cross the wire bit-exactly, which the
// determinism oracle depends on.
const (
	methodRange      = "range"       // client → node: run a range query as this peer
	methodKNN        = "knn"         // client → node: run a k-nn query as this peer
	methodPublish    = "publish"     // client → node: post-insert one item
	methodCanSearch  = "can_search"  // node → node: one hop of an overlay lookup
	methodFetchRange = "fetch_range" // node → node: phase-two local range scan
	methodFetchKNN   = "fetch_knn"   // node → node: phase-two local k-nn scan
)

// ---- range ----

func encodeRangeReq(q []float64, eps float64, opts core.RangeOptions) []byte {
	var e transport.Encoder
	e.Floats(q)
	e.F64(eps)
	e.Int(opts.MaxPeers)
	return e.Bytes()
}

func decodeRangeReq(b []byte) (q []float64, eps float64, opts core.RangeOptions, err error) {
	d := transport.NewDecoder(b)
	q = d.Floats()
	eps = d.F64()
	opts.MaxPeers = d.Int()
	return q, eps, opts, d.Finish()
}

func encodeScores(e *transport.Encoder, scores []core.PeerScore) {
	e.U32(uint32(len(scores)))
	for _, s := range scores {
		e.Int(s.Peer)
		e.F64(s.Score)
	}
}

func decodeScores(d *transport.Decoder) []core.PeerScore {
	n := int(d.U32())
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]core.PeerScore, n)
	for i := range out {
		out[i] = core.PeerScore{Peer: d.Int(), Score: d.F64()}
	}
	return out
}

func encodeRangeResp(res core.RangeResult) []byte {
	var e transport.Encoder
	e.Ints(res.Items)
	encodeScores(&e, res.Scores)
	e.Int(res.PeersContacted)
	e.Int(res.OverlayHops)
	return e.Bytes()
}

func decodeRangeResp(b []byte) (core.RangeResult, error) {
	d := transport.NewDecoder(b)
	var res core.RangeResult
	res.Items = d.Ints()
	res.Scores = decodeScores(d)
	res.PeersContacted = d.Int()
	res.OverlayHops = d.Int()
	return res, d.Finish()
}

// ---- knn ----

func encodeKNNReq(q []float64, k int, opts core.KNNOptions) []byte {
	var e transport.Encoder
	e.Floats(q)
	e.Int(k)
	e.Int(opts.MaxPeers)
	e.F64(opts.C)
	return e.Bytes()
}

func decodeKNNReq(b []byte) (q []float64, k int, opts core.KNNOptions, err error) {
	d := transport.NewDecoder(b)
	q = d.Floats()
	k = d.Int()
	opts.MaxPeers = d.Int()
	opts.C = d.F64()
	return q, k, opts, d.Finish()
}

func encodeKNNResp(res core.KNNResult) []byte {
	var e transport.Encoder
	e.Ints(res.Items)
	encodeScores(&e, res.Scores)
	e.Floats(res.EpsPerLevel)
	e.Int(res.PeersContacted)
	e.Int(res.OverlayHops)
	return e.Bytes()
}

func decodeKNNResp(b []byte) (core.KNNResult, error) {
	d := transport.NewDecoder(b)
	var res core.KNNResult
	res.Items = d.Ints()
	res.Scores = decodeScores(d)
	res.EpsPerLevel = d.Floats()
	res.PeersContacted = d.Int()
	res.OverlayHops = d.Int()
	return res, d.Finish()
}

// ---- publish ----

func encodePublishReq(id int, item []float64) []byte {
	var e transport.Encoder
	e.Int(id)
	e.Floats(item)
	return e.Bytes()
}

func decodePublishReq(b []byte) (id int, item []float64, err error) {
	d := transport.NewDecoder(b)
	id = d.Int()
	item = d.Floats()
	return id, item, d.Finish()
}

// ---- can_search ----

func encodeSearchReq(level int, key []float64, radius float64) []byte {
	var e transport.Encoder
	e.Int(level)
	e.Floats(key)
	e.F64(radius)
	return e.Bytes()
}

func decodeSearchReq(b []byte) (level int, key []float64, radius float64, err error) {
	d := transport.NewDecoder(b)
	level = d.Int()
	key = d.Floats()
	radius = d.F64()
	return level, key, radius, d.Finish()
}

// searchView is one node's answer to a can_search hop: its identity and
// zones (routing), its neighbor table (the coordinator's next-hop and flood
// decisions), and its stored records matching the query sphere, in storage
// order (owned first, then replicas) with their overlay sequence numbers so
// the coordinator deduplicates replicas exactly like the in-process flood.
type searchView struct {
	ID        int
	Zones     []can.Zone
	Neighbors []can.NeighborView
	Records   []can.RecordView
}

func encodeZones(e *transport.Encoder, zs []can.Zone) {
	e.U32(uint32(len(zs)))
	for _, z := range zs {
		e.Floats(z.Lo)
		e.Floats(z.Hi)
	}
}

func decodeZones(d *transport.Decoder) []can.Zone {
	n := int(d.U32())
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]can.Zone, n)
	for i := range out {
		out[i] = can.Zone{Lo: d.Floats(), Hi: d.Floats()}
	}
	return out
}

func encodeRef(e *transport.Encoder, ref core.ClusterRef) {
	e.Int(ref.Peer)
	e.Int(ref.Level)
	e.Int(ref.Index)
	e.Floats(ref.Center)
	e.F64(ref.Radius)
	e.Int(ref.Items)
}

func decodeRef(d *transport.Decoder) core.ClusterRef {
	return core.ClusterRef{
		Peer:   d.Int(),
		Level:  d.Int(),
		Index:  d.Int(),
		Center: d.Floats(),
		Radius: d.F64(),
		Items:  d.Int(),
	}
}

func encodeSearchResp(v searchView) ([]byte, error) {
	var e transport.Encoder
	e.Int(v.ID)
	encodeZones(&e, v.Zones)
	e.U32(uint32(len(v.Neighbors)))
	for _, nb := range v.Neighbors {
		e.Int(nb.ID)
		encodeZones(&e, nb.Zones)
	}
	e.U32(uint32(len(v.Records)))
	for _, rec := range v.Records {
		ref, ok := rec.Entry.Payload.(core.ClusterRef)
		if !ok {
			return nil, fmt.Errorf("node: record payload is %T, want core.ClusterRef", rec.Entry.Payload)
		}
		e.Int(rec.Seq)
		e.Floats(rec.Entry.Key)
		e.F64(rec.Entry.Radius)
		encodeRef(&e, ref)
	}
	return e.Bytes(), nil
}

func decodeSearchResp(b []byte) (searchView, error) {
	d := transport.NewDecoder(b)
	var v searchView
	v.ID = d.Int()
	v.Zones = decodeZones(d)
	if n := int(d.U32()); d.Err() == nil && n > 0 {
		v.Neighbors = make([]can.NeighborView, n)
		for i := range v.Neighbors {
			v.Neighbors[i] = can.NeighborView{ID: d.Int(), Zones: decodeZones(d)}
		}
	}
	if n := int(d.U32()); d.Err() == nil && n > 0 {
		v.Records = make([]can.RecordView, n)
		for i := range v.Records {
			v.Records[i].Seq = d.Int()
			v.Records[i].Entry = overlay.Entry{Key: d.Floats(), Radius: d.F64()}
			v.Records[i].Entry.Payload = decodeRef(d)
		}
	}
	return v, d.Finish()
}

// ---- fetch_range ----

func encodeFetchRangeReq(q []float64, eps float64) []byte {
	var e transport.Encoder
	e.Floats(q)
	e.F64(eps)
	return e.Bytes()
}

func decodeFetchRangeReq(b []byte) (q []float64, eps float64, err error) {
	d := transport.NewDecoder(b)
	q = d.Floats()
	eps = d.F64()
	return q, eps, d.Finish()
}

func encodeFetchRangeResp(ids []int) []byte {
	var e transport.Encoder
	e.Ints(ids)
	return e.Bytes()
}

func decodeFetchRangeResp(b []byte) ([]int, error) {
	d := transport.NewDecoder(b)
	ids := d.Ints()
	return ids, d.Finish()
}

// ---- fetch_knn ----

func encodeFetchKNNReq(q []float64, k int) []byte {
	var e transport.Encoder
	e.Floats(q)
	e.Int(k)
	return e.Bytes()
}

func decodeFetchKNNReq(b []byte) (q []float64, k int, err error) {
	d := transport.NewDecoder(b)
	q = d.Floats()
	k = d.Int()
	return q, k, d.Finish()
}

func encodeFetchKNNResp(items []core.ItemDist) []byte {
	var e transport.Encoder
	e.U32(uint32(len(items)))
	for _, it := range items {
		e.Int(it.ID)
		e.F64(it.Dist2)
	}
	return e.Bytes()
}

func decodeFetchKNNResp(b []byte) ([]core.ItemDist, error) {
	d := transport.NewDecoder(b)
	var items []core.ItemDist
	if n := int(d.U32()); d.Err() == nil && n > 0 {
		items = make([]core.ItemDist, n)
		for i := range items {
			items[i] = core.ItemDist{ID: d.Int(), Dist2: d.F64()}
		}
	}
	return items, d.Finish()
}
