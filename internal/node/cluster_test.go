package node_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"hyperm/internal/core"
	"hyperm/internal/experiments"
	"hyperm/internal/membership"
	"hyperm/internal/node"
	"hyperm/internal/transport"
	"hyperm/internal/vec"
)

// testParams is a small-but-real deployment: every peer owns data, every
// level has published spheres, and queries cross multiple zones.
func testParams() experiments.Params {
	return experiments.Params{Peers: 8, ItemsPerPeer: 40, Dim: 32, Levels: 3, ClustersPerPeer: 4, Seed: 1}
}

func buildPublishedSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := experiments.BuildMarkovSystem(testParams())
	if err != nil {
		t.Fatal(err)
	}
	sys.PublishAll()
	return sys
}

// testQueries derives in-domain query points with meaningful radii from the
// corpus itself: stored items as centers, inter-item distances as radii.
func testQueries(t *testing.T, sys *core.System, n int) (qs [][]float64, radii []float64) {
	t.Helper()
	p := testParams()
	for i := 0; i < n; i++ {
		_, itemsA := sys.PeerData(i % p.Peers)
		_, itemsB := sys.PeerData((i + 3) % p.Peers)
		if len(itemsA) == 0 || len(itemsB) == 0 {
			t.Fatalf("peer without items in test corpus")
		}
		q := itemsA[i%len(itemsA)]
		qs = append(qs, q)
		radii = append(radii, vec.Dist(q, itemsB[(2*i)%len(itemsB)]))
	}
	return qs, radii
}

// normalizeRange maps empty-vs-nil slice representation differences away:
// the wire codec decodes zero-length sequences as nil while the in-process
// path may hold empty non-nil slices. Values are compared exactly.
func normalizeRange(r core.RangeResult) core.RangeResult {
	if len(r.Items) == 0 {
		r.Items = nil
	}
	if len(r.Scores) == 0 {
		r.Scores = nil
	}
	return r
}

func normalizeKNN(r core.KNNResult) core.KNNResult {
	if len(r.Items) == 0 {
		r.Items = nil
	}
	if len(r.Scores) == 0 {
		r.Scores = nil
	}
	if len(r.EpsPerLevel) == 0 {
		r.EpsPerLevel = nil
	}
	return r
}

// clusterTransport names one substrate the oracle test runs on.
type clusterTransport struct {
	name   string
	mk     func() transport.Transport
	listen func(int) string
}

// clusterTransports enumerates the two substrates the oracle test runs on.
func clusterTransports() []clusterTransport {
	return []clusterTransport{
		{name: "chan", mk: func() transport.Transport { return transport.NewChan() }, listen: func(int) string { return "" }},
		{name: "tcp", mk: func() transport.Transport { return transport.NewTCP() }, listen: func(int) string { return "127.0.0.1:0" }},
	}
}

// oracleTunings enumerates the coordinator configurations the oracle must
// hold under: strictly serial (α=1, no fanout — the frozen reference
// behavior) and the parallel default (α=3, pipelined levels and fetches).
// Answers must be byte-identical in both.
func oracleTunings() []struct {
	name   string
	tuning node.Tuning
} {
	return []struct {
		name   string
		tuning node.Tuning
	}{
		{name: "alpha=1", tuning: node.Tuning{Alpha: 1, LevelFanout: 1, FetchFanout: 1}},
		{name: "alpha=3", tuning: node.Tuning{Alpha: 3}},
	}
}

// TestClusterMatchesOracle is the determinism oracle: a cluster of nodes
// built from system snapshots must answer every range and k-nn query
// byte-identically to the in-process System — items, scores, per-level
// radii, peer contacts, and overlay hop counts — over both transports and
// at both α=1 and α=3, and must stay identical after post-creation inserts
// applied through Publish RPCs (vs the oracle's PostInsert).
func TestClusterMatchesOracle(t *testing.T) {
	for _, tc := range clusterTransports() {
		for _, tn := range oracleTunings() {
			t.Run(tc.name+"/"+tn.name, func(t *testing.T) {
				testClusterMatchesOracle(t, tc, tn.tuning)
			})
		}
	}
}

func testClusterMatchesOracle(t *testing.T, tc clusterTransport, tuning node.Tuning) {
	sys := buildPublishedSystem(t)
	tr := tc.mk()
	defer tr.Close()
	cl, err := node.StartClusterTuned(sys, tr, tc.listen, transport.Policy{Timeout: 30e9}, membership.Options{}, tuning)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	client := node.NewClient(tr, transport.Policy{Timeout: 30e9})
	ctx := context.Background()
	p := testParams()
	qs, radii := testQueries(t, sys, 6)

	check := func(tag string, addrs []string, froms []int) {
		t.Helper()
		for i, q := range qs {
			from := froms[i%len(froms)]
			eps := radii[i]

			wantR := sys.RangeQuery(from, q, eps, core.RangeOptions{})
			gotR, err := client.Range(ctx, addrs[from], q, eps, core.RangeOptions{})
			if err != nil {
				t.Fatalf("%s: range query %d: %v", tag, i, err)
			}
			if !reflect.DeepEqual(normalizeRange(wantR), normalizeRange(gotR)) {
				t.Errorf("%s: range query %d from peer %d diverged from oracle:\nsim:    %+v\nserved: %+v",
					tag, i, from, wantR, gotR)
			}

			wantK := sys.KNNQuery(from, q, 5, core.KNNOptions{})
			gotK, err := client.KNN(ctx, addrs[from], q, 5, core.KNNOptions{})
			if err != nil {
				t.Fatalf("%s: knn query %d: %v", tag, i, err)
			}
			if !reflect.DeepEqual(normalizeKNN(wantK), normalizeKNN(gotK)) {
				t.Errorf("%s: knn query %d from peer %d diverged from oracle:\nsim:    %+v\nserved: %+v",
					tag, i, from, wantK, gotK)
			}
		}
	}

	allPeers := make([]int, p.Peers)
	for i := range allPeers {
		allPeers[i] = i
	}
	check("initial", cl.Addrs, allPeers)

	// Post-creation inserts: the same items enter the oracle via
	// PostInsert and the cluster via Publish RPCs; answers (now served
	// from stale summaries, Fig 10c) must keep matching.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 6; i++ {
		peer := i % p.Peers
		_, items := sys.PeerData(peer)
		item := append([]float64(nil), items[i%len(items)]...)
		for d := range item {
			item[d] += 0.01 * rng.Float64()
		}
		id := 100000 + i
		sys.PostInsert(peer, id, item)
		if err := client.Publish(ctx, cl.Addrs[peer], id, item); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	check("after inserts", cl.Addrs, allPeers)

	// The lookups really ran peer-to-peer: nodes answered can_search
	// hops for each other.
	var canSearches float64
	for _, nd := range cl.Nodes {
		canSearches += nd.Counters()["rpc.can_search"]
	}
	if canSearches == 0 {
		t.Error("no can_search RPCs recorded — lookups did not run peer-to-peer")
	}

	// Post-churn: one peer leaves gracefully (zones and records handed
	// to neighbors, device gone), another crashes (storage wiped, zone
	// still routable). A cluster snapshotted from this degraded
	// topology — multi-zone takeover nodes included — must keep
	// matching the oracle. The replica this test used to exercise
	// never handled these shapes; the shared routing core does.
	cl.Stop()
	if _, err := sys.LeavePeer(7); err != nil {
		t.Fatalf("LeavePeer: %v", err)
	}
	sys.FailPeer(2)
	cl2, err := node.StartClusterTuned(sys, tr, tc.listen, transport.Policy{Timeout: 30e9}, membership.Options{}, tuning)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Stop()
	// The departed device is off the network: fetches aimed at its
	// surviving summaries must come back empty, like the oracle's
	// dead-peer backend, not as errors.
	cl2.Nodes[7].Stop()
	if cl2.Nodes[7].ItemCount() != 0 || cl2.Nodes[2].ItemCount() != 0 {
		t.Fatalf("dead peers still hold items: left=%d failed=%d",
			cl2.Nodes[7].ItemCount(), cl2.Nodes[2].ItemCount())
	}
	alive := []int{0, 1, 3, 4, 5, 6}
	check("post-churn", cl2.Addrs, alive)
}

// TestSnapshotRequiresCAN pins the extraction contract: serving replicates
// CAN routing, so non-CAN overlays are rejected explicitly.
func TestSnapshotErrors(t *testing.T) {
	sys, err := experiments.BuildMarkovSystem(testParams())
	if err != nil {
		t.Fatal(err)
	}
	// Published state is not required, but bounds are.
	if _, err := node.ExtractSnapshot(sys, 0); err != nil {
		t.Fatalf("snapshot of bounds-installed system: %v", err)
	}
	sys2, err := core.NewSystem(sys.Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.ExtractSnapshot(sys2, 0); err == nil {
		t.Fatal("snapshot without bounds succeeded")
	}
}
