package node_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hyperm/internal/core"
	"hyperm/internal/experiments"
	"hyperm/internal/membership"
	"hyperm/internal/node"
	"hyperm/internal/transport"
)

// Acceptance suite of streaming incremental publish (core/stream.go +
// node/stream.go): a cluster with Tuning.StreamPublish must answer every query
// byte-identically to a core.System driven by StreamInsert — through absorb,
// grow, split, and full re-cluster rounds, with caching coordinators in the
// loop and live churn interleaved. The kernel side is pinned in
// core/stream_test.go; this file proves the store_rec announce path places
// every record delta exactly where the simulator's streamOp does.

// TestStreamDifferential sweeps seeded churned topologies, interleaving
// streamed publishes (enough per holder to cross a re-cluster) and live
// join/leave churn with byte-identity checks.
func TestStreamDifferential(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for s := 0; s < seeds; s++ {
		seed := int64(s + 101)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runStreamDifferential(t, seed)
		})
	}
}

func runStreamDifferential(t *testing.T, seed int64) {
	params := cacheParams(seed)
	sys, err := experiments.BuildMarkovSystem(params)
	if err != nil {
		t.Fatal(err)
	}
	sys.PublishAll()
	// Same kernel tuning on both substrates; every=4 so the per-holder publish
	// bursts below cross a re-cluster (delete flood + fresh epoch) live.
	const every = 4
	sys.SetStreamTuning(core.StreamTuning{ReclusterEvery: every})
	tuning := node.Tuning{CacheViews: true, StreamPublish: true, ReclusterEvery: every}

	// Pre-start churn so the snapshot includes split zones and a handoff.
	rng := rand.New(rand.NewSource(seed * 41))
	const protected = 4 // founders: coordinators and stream holders
	if _, err := sys.JoinPeer(joinPoints(t, sys, rng)); err != nil {
		t.Fatalf("oracle join: %v", err)
	}
	left := protected + rng.Intn(params.Peers-protected)
	if _, err := sys.LeavePeer(left); err != nil {
		t.Fatalf("oracle leave %d: %v", left, err)
	}

	tr := transport.NewChan()
	defer tr.Close()
	cl, err := node.StartClusterTuned(sys, tr, func(int) string { return "" },
		transport.Policy{Timeout: 30e9}, membership.Options{}, tuning)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.Nodes[left].Stop()

	client := node.NewClient(tr, transport.Policy{Timeout: 30e9})
	ctx := context.Background()
	qs, radii := queriesFor(t, sys, protected, 6)
	founders := []int{0, 1, 2, 3}

	check := func(tag string, froms []int) {
		t.Helper()
		for i, q := range qs {
			from := froms[i%len(froms)]
			wantR := sys.RangeQuery(from, q, radii[i], core.RangeOptions{})
			gotR, err := client.Range(ctx, cl.Addrs[from], q, radii[i], core.RangeOptions{})
			if err != nil {
				t.Fatalf("%s: range query %d from %d: %v", tag, i, from, err)
			}
			if !reflect.DeepEqual(normalizeRange(wantR), normalizeRange(gotR)) {
				t.Errorf("%s: range query %d from peer %d diverged from oracle:\nsim:    %+v\nserved: %+v",
					tag, i, from, wantR, gotR)
			}
			wantK := sys.KNNQuery(from, q, 5, core.KNNOptions{})
			gotK, err := client.KNN(ctx, cl.Addrs[from], q, 5, core.KNNOptions{})
			if err != nil {
				t.Fatalf("%s: knn query %d from %d: %v", tag, i, from, err)
			}
			if !reflect.DeepEqual(normalizeKNN(wantK), normalizeKNN(gotK)) {
				t.Errorf("%s: knn query %d from peer %d diverged from oracle:\nsim:    %+v\nserved: %+v",
					tag, i, from, wantK, gotK)
			}
		}
	}

	check("cold", founders)

	// Streamed publish bursts: every+2 inserts at each founder in turn, so
	// every holder's kernel runs absorb/grow/split rounds AND a full
	// re-cluster (retire-all deltas, fresh-epoch records) against the live
	// announce path. Each streamed item must be findable by its own point
	// query immediately — the freshness PostInsert cannot give — and
	// byte-identically on both substrates.
	pubRng := rand.New(rand.NewSource(seed * 43))
	nextID := 9000
	publish := func(holder int) {
		t.Helper()
		item := append([]float64(nil), qs[pubRng.Intn(len(qs))]...)
		for d := range item {
			item[d] += 0.02 * (pubRng.Float64() - 0.5)
		}
		sys.StreamInsert(holder, nextID, item)
		if err := client.Publish(ctx, cl.Addrs[holder], nextID, item); err != nil {
			t.Fatalf("live streamed publish %d at holder %d: %v", nextID, holder, err)
		}
		from := founders[(holder+1)%len(founders)]
		want := sys.RangeQuery(from, item, 0, core.RangeOptions{})
		got, err := client.Range(ctx, cl.Addrs[from], item, 0, core.RangeOptions{})
		if err != nil {
			t.Fatalf("point query for streamed item %d: %v", nextID, err)
		}
		if !reflect.DeepEqual(normalizeRange(want), normalizeRange(got)) {
			t.Errorf("point query for streamed item %d diverged:\nsim:    %+v\nserved: %+v", nextID, want, got)
		}
		found := false
		for _, id := range got.Items {
			if id == nextID {
				found = true
			}
		}
		if !found {
			t.Errorf("streamed item %d not found by its own point query", nextID)
		}
		nextID++
	}
	for _, holder := range founders {
		for k := 0; k < every+2; k++ {
			publish(holder)
		}
		check(fmt.Sprintf("post-stream-%d", holder), founders)
	}
	if sumCounter(cl, "rpc.m.store_rec") == 0 {
		t.Error("streamed publishes sent no store_rec announcements")
	}

	// Live mid-stream churn: protocol join and graceful leave while the
	// summaries carry stream-epoch records, then another publish burst — the
	// handoff must move stream-created records exactly like built ones, and
	// announces must route over the post-churn topology.
	pre := make(map[int][]uint64, len(founders))
	for _, f := range founders {
		pre[f] = epochSnapshot(cl.Nodes[f], params.Levels)
	}
	points := joinPoints(t, sys, rng)
	id, err := sys.JoinPeer(points)
	if err != nil {
		t.Fatalf("oracle mid-stream join: %v", err)
	}
	nd, err := cl.Join(ctx, sys, cl.Addrs[0], points)
	if err != nil {
		t.Fatalf("live mid-stream join: %v", err)
	}
	if nd.Peer() != id {
		t.Fatalf("live joiner took id %d, oracle assigned %d", nd.Peer(), id)
	}
	victim := -1
	for v := params.Peers - 1; v >= protected; v-- {
		if v != left {
			victim = v
			break
		}
	}
	if victim < 0 {
		t.Fatal("no leave victim available")
	}
	if _, err := sys.LeavePeer(victim); err != nil {
		t.Fatalf("oracle mid-stream leave: %v", err)
	}
	if err := cl.Nodes[victim].Leave(ctx); err != nil {
		t.Fatalf("live mid-stream leave: %v", err)
	}
	cl.Nodes[victim].Stop()

	for k := 0; k < every+1; k++ {
		publish(founders[k%len(founders)])
	}
	var observers []int
	for _, f := range founders {
		if epochsAdvanced(cl.Nodes[f], pre[f]) {
			observers = append(observers, f)
		}
	}
	t.Logf("mid-stream churn observed by founders %v", observers)
	if len(observers) > 0 {
		check("post-churn", observers)
	}
}
