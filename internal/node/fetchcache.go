package node

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"hyperm/internal/transport"
)

// Coordinator-side fetch-result cache.
//
// A fetch_range / fetch_knn answer is a pure function of the holder's item
// store, which mutates only in Publish. The coordinator therefore memoizes the
// raw response bodies per holder and keeps them coherent with a subscription
// protocol instead of TTLs:
//
//   - Before caching anything from a holder, the coordinator registers with it
//     (fetch_sub). Once the ack is back, every later store mutation at the
//     holder is ordered after the registration.
//   - Publish broadcasts invalidate_fetch to every registered coordinator and
//     only returns once all live subscribers have dropped their entries, so in
//     any serial order of operations a completed publish is visible to every
//     later cached fetch.
//   - A per-holder generation counter closes the publish/fetch race: the
//     coordinator snapshots the generation before issuing a fetch and stores
//     the response only if no invalidation arrived in between.
//   - Any membership event (the per-level churn epochs folded into one
//     signature) clears the whole cache and all subscriptions: a crashed
//     holder lost its registry, and a recycled peer id must not serve another
//     node's answers.
//
// A subscriber whose transport fails is dropped from the holder's registry and
// never notified again — the fail-stop assumption shared with the membership
// layer (a peer that cannot be reached is treated as crashed; if it rejoins,
// the epoch bump clears its cache anyway).

// cliFetchMemoCap bounds the coordinator-side memo; on overflow the cached
// bodies reset while subscriptions (still registered at the holders) survive.
const cliFetchMemoCap = 4096

// cliFetchEntry is one memoized fetch answer: the decoded value handed to the
// engine on hits, plus the raw response body the knn invalidation filter
// decodes (it needs the recorded k-th distance).
type cliFetchEntry struct {
	val  any
	resp []byte
}

// epochSig folds every level's churn epoch into one token so a single compare
// detects "some membership event happened somewhere".
func (n *Node) epochSig() uint64 {
	var sig uint64
	for l := 0; l < n.mgr.NumLevels(); l++ {
		sig = sig*1000003 + n.mgr.Epoch(l)
	}
	return sig
}

// cachedFetch serves one remote fetch RPC through the coordinator-side memo.
// Values are stored decoded (the engine only reads fetch results, so the
// cached slice is shared safely and hits cost one map lookup — no RPC, no
// decode, no allocation). The raw response body is kept alongside for the
// knn invalidation filter, which needs the recorded distances.
// unavailable=true reports a dead or unreachable holder (the backend
// contract: such peers contribute no items and no error, exactly like the
// uncached path).
func (n *Node) cachedFetch(ctx context.Context, peer int, tag byte, method string, body []byte, decode func([]byte) (any, error)) (out any, unavailable bool, err error) {
	sig := n.epochSig()
	var kb [512]byte
	key := fetchMemoKey(kb[:], tag, body)

	n.cliMu.Lock()
	if sig != n.cliEpochSig {
		n.cliFetch, n.cliGen, n.cliSubbed = nil, nil, nil
		n.cliCount = 0
		n.cliEpochSig = sig
	}
	if m := n.cliFetch[peer]; m != nil {
		if e, ok := m[string(key)]; ok { // no-alloc map lookup
			n.cliMu.Unlock()
			n.count("cache.fetch_local_hit")
			return e.val, false, nil
		}
	}
	subbed := n.cliSubbed[peer]
	n.cliMu.Unlock()

	addr, err := n.peerAddr(peer)
	if err != nil {
		return nil, false, err
	}
	if !subbed {
		// Register before fetching: only answers fetched after a registration
		// ack may be cached, otherwise the holder could mutate its store
		// without ever notifying us.
		_, err := n.client.Call(ctx, addr, transport.Request{Method: methodFetchSub, Body: encodePeerReq(n.peer)})
		if errors.Is(err, transport.ErrUnavailable) {
			return nil, true, nil
		}
		if err != nil {
			return nil, false, fmt.Errorf("node: fetch_sub peer %d: %w", peer, err)
		}
		n.cliMu.Lock()
		if n.cliEpochSig == sig {
			if n.cliSubbed == nil {
				n.cliSubbed = make(map[int]bool)
			}
			n.cliSubbed[peer] = true
		}
		n.cliMu.Unlock()
	}

	n.cliMu.Lock()
	g0 := n.cliGen[peer]
	n.cliMu.Unlock()

	r, err := n.client.Call(ctx, addr, transport.Request{Method: method, Body: body})
	if errors.Is(err, transport.ErrUnavailable) {
		return nil, true, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("node: %s peer %d: %w", method, peer, err)
	}
	val, err := decode(r.Body)
	if err != nil {
		return nil, false, err
	}

	n.cliMu.Lock()
	// Store only if no invalidation and no membership event raced the fetch:
	// the response may predate a publish whose invalidation already ran here,
	// and such an answer must not outlive this one query.
	if n.cliEpochSig == sig && n.cliGen[peer] == g0 {
		if n.cliCount >= cliFetchMemoCap {
			n.cliFetch = nil
			n.cliCount = 0
		}
		if n.cliFetch == nil {
			n.cliFetch = make(map[int]map[string]cliFetchEntry)
		}
		m := n.cliFetch[peer]
		if m == nil {
			m = make(map[string]cliFetchEntry)
			n.cliFetch[peer] = m
		}
		m[string(key)] = cliFetchEntry{val: val, resp: r.Body}
		n.cliCount++
	}
	n.cliMu.Unlock()
	return val, false, nil
}

// keyU64 reads a big-endian uint64 straight out of a memo key, so the
// invalidation filter walks the encoded query without converting the map key
// back to a byte slice or materializing the float vector.
func keyU64(s string, off int) uint64 {
	return uint64(s[off])<<56 | uint64(s[off+1])<<48 | uint64(s[off+2])<<40 |
		uint64(s[off+3])<<32 | uint64(s[off+4])<<24 | uint64(s[off+5])<<16 |
		uint64(s[off+6])<<8 | uint64(s[off+7])
}

// fetchEntryCovered reports whether publishing item at the holder can change
// the memoized answer for one fetch entry — the exact complement of the local
// scan predicates (core.LocalRange / core.LocalKNN):
//
//   - range: the new item joins the answer iff it lies within eps of q;
//     anything outside leaves the response bytes untouched.
//   - knn: the new item enters the top-k iff it ties or beats the current
//     k-th distance (ties resolve by id, so <= is the safe test), or the
//     holder had fewer than k items to give.
//
// The key is tag byte + encoded request (U32 count, count float64s, then
// eps or k); the query distance is accumulated in the same term order as
// vec.Dist2 so the predicate matches the local scan bit for bit. Malformed
// entries report covered, erring on the side of dropping.
func fetchEntryCovered(key string, resp []byte, item []float64) bool {
	if len(key) < 1+4+8 {
		return true
	}
	n := int(uint32(key[1])<<24 | uint32(key[2])<<16 | uint32(key[3])<<8 | uint32(key[4]))
	if n != len(item) || len(key) != 1+4+8*n+8 {
		return true
	}
	var d2 float64
	for i := 0; i < n; i++ {
		d := math.Float64frombits(keyU64(key, 5+8*i)) - item[i]
		d2 += d * d
	}
	tail := keyU64(key, 5+8*n)
	switch key[0] {
	case 'r':
		eps := math.Float64frombits(tail)
		return d2 <= eps*eps
	case 'k':
		k := int(int64(tail))
		items, err := decodeFetchKNNResp(resp)
		if err != nil || len(items) < k {
			return true
		}
		return d2 <= items[len(items)-1].Dist2
	}
	return true
}

// dropCoveredFetchEntries deletes every entry of m whose answer the new item
// can change, returning how many were dropped.
func dropCoveredFetchEntries(m map[string][]byte, item []float64) int {
	dropped := 0
	for key, resp := range m {
		if fetchEntryCovered(key, resp, item) {
			delete(m, key)
			dropped++
		}
	}
	return dropped
}

// registerFetchSub records one caching coordinator to notify on Publish.
func (n *Node) registerFetchSub(peer int) {
	n.subsMu.Lock()
	if n.fetchSubs == nil {
		n.fetchSubs = make(map[int]struct{})
	}
	n.fetchSubs[peer] = struct{}{}
	n.subsMu.Unlock()
}

// invalidateFetch handles a holder's notification that a batch of items was
// published there: bump its generation once (so in-flight fetches that may
// predate any item of the publish are not cached) and drop exactly the
// entries whose answer some new item can change. Subscriptions are untouched
// — this node is still registered at the holder.
func (n *Node) invalidateFetch(holder int, items [][]float64) {
	n.cliMu.Lock()
	if n.cliGen == nil {
		n.cliGen = make(map[int]uint64)
	}
	n.cliGen[holder]++
	for key, e := range n.cliFetch[holder] {
		for _, item := range items {
			if fetchEntryCovered(key, e.resp, item) {
				delete(n.cliFetch[holder], key)
				n.cliCount--
				break
			}
		}
	}
	n.cliMu.Unlock()
	n.count("cache.fetch_inval")
}

// broadcastInvalidate synchronously notifies every registered coordinator
// that a batch of items was published into this node's store — one message
// per subscriber regardless of batch size. Subscribers whose transport fails
// are dropped from the registry (fail-stop, see the comment above).
func (n *Node) broadcastInvalidate(items [][]float64) {
	n.subsMu.Lock()
	subs := make([]int, 0, len(n.fetchSubs))
	for id := range n.fetchSubs {
		subs = append(subs, id)
	}
	n.subsMu.Unlock()
	if len(subs) == 0 {
		return
	}

	body := encodeInvalReq(n.peer, items)
	dead := make([]bool, len(subs))
	var wg sync.WaitGroup
	for i, id := range subs {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			addr, err := n.peerAddr(id)
			if err == nil {
				_, err = n.client.Call(context.Background(), addr, transport.Request{Method: methodFetchInval, Body: body})
			}
			if err != nil {
				dead[i] = true
			}
		}(i, id)
	}
	wg.Wait()

	n.subsMu.Lock()
	for i, id := range subs {
		if dead[i] {
			delete(n.fetchSubs, id)
		}
	}
	n.subsMu.Unlock()
}
