package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hyperm/internal/flatindex"
)

// Property: range-query results are exactly the ground truth for arbitrary
// query points — including points outside the indexed data's coefficient
// bounds, which exercise the key-space clamping. Clamping moves an
// out-of-domain query key toward every stored key, so the overlay-level
// candidate test stays conservative and the exact scoring pass keeps the
// final answer exact.
func TestPropRangeEqualsGroundTruthRandomQueries(t *testing.T) {
	sys, data, truth := testSystem(t, 8, 25, 6, 32, 3, 4, 99)
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 30; trial++ {
		q := make([]float64, 32)
		for i := range q {
			// Half the trials stay in the histogram domain, half wander
			// far outside it.
			if trial%2 == 0 {
				q[i] = rng.Float64() * 0.1
			} else {
				q[i] = rng.Float64()*4 - 2
			}
		}
		eps := rng.Float64() * 0.3
		want := truth.Range(q, eps)
		got := sys.RangeQuery(0, q, eps, RangeOptions{})
		if fmt.Sprint(got.Items) != fmt.Sprint(want) {
			t.Fatalf("trial %d (eps=%v): got %v, want %v", trial, eps, got.Items, want)
		}
	}
	_ = data
}

// Property: enlarging the radius never loses results (monotonicity of the
// full-budget range query).
func TestPropRangeMonotoneInRadius(t *testing.T) {
	sys, data, _ := testSystem(t, 8, 25, 6, 32, 3, 4, 101)
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 15; trial++ {
		q := data[rng.Intn(len(data))]
		eps1 := rng.Float64() * 0.1
		eps2 := eps1 + rng.Float64()*0.1
		small := sys.RangeQuery(0, q, eps1, RangeOptions{})
		large := sys.RangeQuery(0, q, eps2, RangeOptions{})
		set := map[int]bool{}
		for _, id := range large.Items {
			set[id] = true
		}
		for _, id := range small.Items {
			if !set[id] {
				t.Fatalf("item %d found at eps=%v but lost at eps=%v", id, eps1, eps2)
			}
		}
	}
}

// Property: a peer's aggregated score never exceeds the number of items it
// stores (each cluster contributes at most frac<=1 times its item count, and
// min across levels is bounded by any single level).
func TestPropScoreBoundedByPeerItems(t *testing.T) {
	sys, data, _ := testSystem(t, 8, 25, 6, 32, 3, 4, 103)
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 15; trial++ {
		q := data[rng.Intn(len(data))]
		res := sys.RangeQuery(0, q, 0.1, RangeOptions{MaxPeers: 1})
		for _, ps := range res.Scores {
			if limit := float64(sys.PeerItemCount(ps.Peer)); ps.Score > limit+1e-6 {
				t.Fatalf("peer %d score %v exceeds its %v items", ps.Peer, ps.Score, limit)
			}
		}
	}
}

// Property: repeated identical queries return identical answers and scores
// (no hidden mutable state in the query path).
func TestPropQueryIdempotent(t *testing.T) {
	sys, data, _ := testSystem(t, 8, 25, 6, 32, 3, 4, 105)
	q := data[7]
	a := sys.RangeQuery(0, q, 0.1, RangeOptions{})
	b := sys.RangeQuery(0, q, 0.1, RangeOptions{})
	if fmt.Sprint(a.Items) != fmt.Sprint(b.Items) || fmt.Sprint(a.Scores) != fmt.Sprint(b.Scores) {
		t.Fatal("identical queries disagreed")
	}
	ka := sys.KNNQuery(0, q, 5, KNNOptions{})
	kb := sys.KNNQuery(0, q, 5, KNNOptions{})
	if fmt.Sprint(ka.Items) != fmt.Sprint(kb.Items) {
		t.Fatal("identical knn queries disagreed")
	}
}

// Property: the query origin peer never changes the answer of a full-budget
// range query (only its cost).
func TestPropOriginIndependence(t *testing.T) {
	sys, data, truth := testSystem(t, 8, 25, 6, 32, 3, 4, 107)
	q := data[11]
	eps := 0.08
	want := truth.Range(q, eps)
	for from := 0; from < 8; from++ {
		got := sys.RangeQuery(from, q, eps, RangeOptions{})
		if fmt.Sprint(got.Items) != fmt.Sprint(want) {
			t.Fatalf("origin %d: got %v, want %v", from, got.Items, want)
		}
	}
}

// Failure semantics at the core level: a failed peer's items disappear from
// answers; everything else survives (its replicas elsewhere keep foreign
// summaries searchable).
func TestFailPeerSemantics(t *testing.T) {
	sys, data, _ := testSystem(t, 8, 25, 6, 32, 3, 4, 109)
	if sys.AlivePeers() != 8 {
		t.Fatalf("AlivePeers = %d", sys.AlivePeers())
	}
	lost := sys.FailPeer(2)
	if lost == 0 {
		t.Fatal("failing a publishing peer should lose records")
	}
	if sys.FailPeer(2) != 0 {
		t.Fatal("double failure should be a no-op")
	}
	if sys.AlivePeers() != 7 {
		t.Fatalf("AlivePeers = %d", sys.AlivePeers())
	}
	// Survivors' items must remain perfectly retrievable.
	var survivors [][]float64
	var survivorIDs []int
	for i := range data {
		if i%8 != 2 { // testSystem assigns item i to peer i%peers
			survivors = append(survivors, data[i])
			survivorIDs = append(survivorIDs, i)
		}
	}
	truthSurv := flatindex.New(survivors)
	rng := rand.New(rand.NewSource(110))
	for trial := 0; trial < 10; trial++ {
		qi := rng.Intn(len(survivors))
		q := survivors[qi]
		eps := 0.02 + rng.Float64()*0.08
		relLocal := truthSurv.Range(q, eps)
		got := sys.RangeQuery(0, q, eps, RangeOptions{})
		set := map[int]bool{}
		for _, id := range got.Items {
			set[id] = true
			if id%8 == 2 {
				t.Fatalf("dead peer's item %d returned", id)
			}
		}
		for _, lid := range relLocal {
			if !set[survivorIDs[lid]] {
				t.Fatalf("survivor item %d lost after unrelated peer failure", survivorIDs[lid])
			}
		}
	}
}
