package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"hyperm/internal/geometry"
	"hyperm/internal/overlay"
	"hyperm/internal/vec"
	"hyperm/internal/wavelet"
)

// ItemDist pairs a fetched item id with its squared distance to the query,
// computed on the peer that stores the item. Carrying the distance with the
// id lets the query coordinator produce the final distance-sorted answer
// without a global id→vector lookup — the property that makes the same
// engine code serve both the in-process simulation and a real cluster of
// nodes.
type ItemDist struct {
	ID    int
	Dist2 float64
}

// Backend is the data plane a query Engine drives: the per-level overlay
// search of the scoring phase and the per-peer data fetches of the retrieval
// phase. core.System implements it directly on its in-memory structures;
// internal/node implements it with peer-to-peer RPCs over a transport. Both
// must discover the same entries in the same order for the engine's answers
// to be byte-identical — the serving runtime's determinism-oracle tests
// check exactly that.
type Backend interface {
	// Search returns every published entry whose sphere intersects the query
	// sphere at the given wavelet level, plus the overlay hops spent. The
	// entry order must match the overlay's deterministic flood order.
	Search(from, level int, key []float64, radius float64) ([]overlay.Entry, int, error)
	// FetchRange asks peer for the ids of its items within eps of q
	// (LocalRange). A dead or unreachable peer yields no items and no error:
	// the contact budget is spent either way.
	FetchRange(from, peer int, q []float64, eps float64) ([]int, error)
	// FetchKNN asks peer for its k locally nearest items with their squared
	// distances (LocalKNN). Dead peers yield nothing, as in FetchRange.
	FetchKNN(from, peer int, q []float64, k int) ([]ItemDist, error)
}

// Engine executes the two-phase query protocol of §4 — per-level scoring via
// Backend.Search, score aggregation, and proportional data fetches via the
// Backend fetch calls — independent of where the data actually lives.
// System's RangeQuery/KNNQuery delegate to an Engine over its in-memory
// backend; a serving node builds an Engine over its transport backend, which
// is how served answers stay byte-identical to the simulation oracle.
type Engine struct {
	cfg     Config
	mappers []keyMapper
	backend Backend

	// levelFanout and fetchFanout bound the coordinator's concurrency: how
	// many per-level overlay searches and how many phase-two fetches run at
	// once. <= 1 means strictly serial (the default — the simulator backend
	// is not safe for concurrent calls). See SetParallelism.
	levelFanout int
	fetchFanout int
}

// NewEngine builds an engine from a (possibly partial) Config, the per-level
// coefficient bounds, and a backend. Only the query-relevant Config fields
// are used (Dim, Levels, Convention, Aggregation, C); Factory and Rng may be
// nil, which is what lets a serving node reconstruct an engine from a
// serialized snapshot.
func NewEngine(cfg Config, bounds []Bounds, b Backend) (*Engine, error) {
	cfg = cfg.withDefaults()
	if !wavelet.IsPow2(cfg.Dim) {
		return nil, fmt.Errorf("core: engine Dim must be a power of two, got %d", cfg.Dim)
	}
	if max := wavelet.NumSubspaces(cfg.Dim); cfg.Levels < 1 || cfg.Levels > max {
		return nil, fmt.Errorf("core: engine Levels must be in [1,%d] for Dim=%d, got %d", max, cfg.Dim, cfg.Levels)
	}
	if len(bounds) != cfg.Levels {
		return nil, fmt.Errorf("core: engine got %d bounds for %d levels", len(bounds), cfg.Levels)
	}
	if b == nil {
		return nil, fmt.Errorf("core: engine backend is required")
	}
	return &Engine{cfg: cfg, mappers: buildMappers(bounds), backend: b}, nil
}

// SetParallelism turns on the pipelined coordinator: up to levelFanout
// per-level overlay searches and up to fetchFanout phase-two fetches in
// flight at once (<= 1 for serial). The backend must be safe for concurrent
// calls — the RPC backend is, the in-process simulator backend is not.
// Results are byte-identical to the serial coordinator: per-level score
// lanes, hop totals, and fetched items are merged in level/score order after
// the concurrent calls return, so no scheduling order reaches the answer.
func (e *Engine) SetParallelism(levelFanout, fetchFanout int) {
	e.levelFanout = levelFanout
	e.fetchFanout = fetchFanout
}

// eachLevel runs f for every level, concurrently when levelFanout allows.
// f(l) must only touch slot l of its outputs.
func (e *Engine) eachLevel(f func(l int)) {
	if e.levelFanout <= 1 || e.cfg.Levels == 1 {
		for l := 0; l < e.cfg.Levels; l++ {
			f(l)
		}
		return
	}
	sem := make(chan struct{}, e.levelFanout)
	var wg sync.WaitGroup
	for l := 0; l < e.cfg.Levels; l++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(l int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(l)
		}(l)
	}
	wg.Wait()
}

// eachIndex runs f for i in [0, n), concurrently when fetchFanout allows.
func (e *Engine) eachIndex(n int, f func(i int)) {
	if e.fetchFanout <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	sem := make(chan struct{}, e.fetchFanout)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}

// RangeQuery runs the §4.1 protocol against the backend. See
// System.RangeQuery for semantics; the error reports a backend failure
// (impossible in-process, a transport fault when serving).
func (e *Engine) RangeQuery(from int, q []float64, eps float64, opts RangeOptions) (RangeResult, error) {
	if len(q) != e.cfg.Dim {
		panic(fmt.Sprintf("core: query dim %d, want %d", len(q), e.cfg.Dim))
	}
	if eps < 0 {
		panic("core: negative query radius")
	}

	dec := wavelet.Decompose(q, e.cfg.Convention)
	scores := make(map[int][]float64)
	var res RangeResult

	// Scoring phase: the L per-level sphere searches are independent floods,
	// so they run with up to levelFanout in flight; the merge below walks the
	// slots in level order, which keeps hop totals and per-level score lanes
	// byte-identical to the serial walk regardless of completion order.
	type levelOut struct {
		entries []overlay.Entry
		hops    int
		err     error
	}
	outs := make([]levelOut, e.cfg.Levels)
	e.eachLevel(func(l int) {
		qc := dec.Subspace(l)
		m := wavelet.SubspaceDim(l)
		epsL := eps * wavelet.RadiusScale(e.cfg.Convention, e.cfg.Dim, m)
		entries, hops, err := e.backend.Search(from, l, e.mappers[l].mapPoint(qc), slacken(e.mappers[l].mapRadius(epsL)))
		outs[l] = levelOut{entries: entries, hops: hops, err: err}
	})
	for l := 0; l < e.cfg.Levels; l++ {
		if err := outs[l].err; err != nil {
			return res, fmt.Errorf("core: level %d search: %w", l, err)
		}
		qc := dec.Subspace(l)
		m := wavelet.SubspaceDim(l)
		epsL := eps * wavelet.RadiusScale(e.cfg.Convention, e.cfg.Dim, m)
		res.OverlayHops += outs[l].hops
		for _, en := range outs[l].entries {
			ref := en.Payload.(ClusterRef)
			frac := clusterFraction(m, ref, qc, epsL)
			if frac <= 0 {
				continue
			}
			perLevel, ok := scores[ref.Peer]
			if !ok {
				perLevel = make([]float64, e.cfg.Levels)
				scores[ref.Peer] = perLevel
			}
			perLevel[l] += frac * float64(ref.Items)
		}
	}

	res.Scores = sortScores(scores, e.cfg.Aggregation)
	limit := len(res.Scores)
	if opts.MaxPeers > 0 && opts.MaxPeers < limit {
		limit = opts.MaxPeers
	}
	// Retrieval phase: one fetch per selected peer, up to fetchFanout in
	// flight, results appended in score order. On a fetch failure the serial
	// coordinator stops after the failing peer — reproduced here by counting
	// contacts and items only up to the first (lowest-ranked) failure.
	fetchedIDs := make([][]int, limit)
	fetchErrs := make([]error, limit)
	e.eachIndex(limit, func(i int) {
		fetchedIDs[i], fetchErrs[i] = e.backend.FetchRange(from, res.Scores[i].Peer, q, eps)
	})
	total := 0
	for i := 0; i < limit; i++ {
		total += len(fetchedIDs[i])
	}
	if total > 0 { // keep Items nil when nothing matched
		res.Items = make([]int, 0, total)
	}
	for i := 0; i < limit; i++ {
		res.PeersContacted++
		if err := fetchErrs[i]; err != nil {
			return res, fmt.Errorf("core: fetch from peer %d: %w", res.Scores[i].Peer, err)
		}
		res.Items = append(res.Items, fetchedIDs[i]...)
	}
	sort.Ints(res.Items)
	return res, nil
}

// KNNQuery runs the Figure 5 heuristic against the backend. See
// System.KNNQuery for semantics.
func (e *Engine) KNNQuery(from int, q []float64, k int, opts KNNOptions) (KNNResult, error) {
	if len(q) != e.cfg.Dim {
		panic(fmt.Sprintf("core: query dim %d, want %d", len(q), e.cfg.Dim))
	}
	if k < 1 {
		panic("core: k must be >= 1")
	}
	c := opts.C
	if c == 0 {
		c = e.cfg.C
	}

	dec := wavelet.Decompose(q, e.cfg.Convention)
	scores := make(map[int][]float64)
	res := KNNResult{EpsPerLevel: make([]float64, e.cfg.Levels)}

	// Steps 1–3: per-level radius estimation and range queries. Each level's
	// geometric widening loop is independent of the others, so the levels run
	// with up to levelFanout in flight and merge in level order (see
	// RangeQuery for the determinism argument).
	type levelOut struct {
		epsL float64
		refs []ClusterRef
		hops int
		err  error
	}
	outs := make([]levelOut, e.cfg.Levels)
	e.eachLevel(func(l int) {
		qc := dec.Subspace(l)
		m := wavelet.SubspaceDim(l)
		span := e.mappers[l].hi - e.mappers[l].lo
		epsL, refs, hops, err := e.levelEps(from, l, m, qc, float64(k), span)
		outs[l] = levelOut{epsL: epsL, refs: refs, hops: hops, err: err}
	})
	for l := 0; l < e.cfg.Levels; l++ {
		if err := outs[l].err; err != nil {
			return res, fmt.Errorf("core: level %d radius estimation: %w", l, err)
		}
		qc := dec.Subspace(l)
		m := wavelet.SubspaceDim(l)
		res.OverlayHops += outs[l].hops
		res.EpsPerLevel[l] = outs[l].epsL
		for _, ref := range outs[l].refs {
			frac := clusterFraction(m, ref, qc, outs[l].epsL)
			if frac <= 0 {
				continue
			}
			perLevel, ok := scores[ref.Peer]
			if !ok {
				perLevel = make([]float64, e.cfg.Levels)
				scores[ref.Peer] = perLevel
			}
			perLevel[l] += frac * float64(ref.Items)
		}
	}

	// Step 4: merge.
	res.Scores = sortScores(scores, e.cfg.Aggregation)
	if len(res.Scores) == 0 {
		return res, nil
	}

	// Steps 5–6: choose P — the smallest score-ordered prefix whose summed
	// expected item mass reaches k — and the normalizing sum.
	p := 0
	var sum float64
	for p < len(res.Scores) && sum < float64(k) {
		sum += res.Scores[p].Score
		p++
	}
	if opts.MaxPeers > 0 && opts.MaxPeers < p {
		p = opts.MaxPeers
		sum = 0
		for _, ps := range res.Scores[:p] {
			sum += ps.Score
		}
	}
	if sum <= 0 {
		return res, nil
	}

	// Steps 7–9: fetch a proportional share from each selected peer, up to
	// fetchFanout in flight, merged in score order.
	fetchedPer := make([][]ItemDist, p)
	fetchErrs := make([]error, p)
	e.eachIndex(p, func(i int) {
		ps := res.Scores[i]
		want := int(math.Ceil(c * float64(k) * ps.Score / sum))
		if want < 1 {
			want = 1
		}
		fetchedPer[i], fetchErrs[i] = e.backend.FetchKNN(from, ps.Peer, q, want)
	})
	var fetched []ItemDist
	for i := 0; i < p; i++ {
		res.PeersContacted++
		if err := fetchErrs[i]; err != nil {
			return res, fmt.Errorf("core: fetch from peer %d: %w", res.Scores[i].Peer, err)
		}
		fetched = append(fetched, fetchedPer[i]...)
	}

	// Step 10: sort the merged result by true distance to the query.
	res.Items = sortFetched(fetched)
	return res, nil
}

// levelEps discovers the clusters reachable at level l and estimates the
// Eq 8 radius expected to yield k items. Discovery expands the overlay
// search radius geometrically until the expected item mass covers k (or the
// whole key space is swept); the Eq 8 inversion then runs on the discovered
// cluster set, which is a superset of the clusters reachable at the solved
// radius.
// epsScratch holds the per-call working slices of levelEps, pooled because a
// busy coordinator runs the geometric search once per level per query.
type epsScratch struct {
	refs    []ClusterRef
	spheres []geometry.SphereAt
}

var epsScratchPool = sync.Pool{New: func() any { return new(epsScratch) }}

func (e *Engine) levelEps(from, l, m int, qc []float64, k, span float64) (float64, []ClusterRef, int, error) {
	key := e.mappers[l].mapPoint(qc)
	// Start at 5% of the coefficient span; stop once the search sphere can
	// cover the entire level space.
	r := 0.05 * span
	maxR := span * math.Sqrt(float64(m))
	totalHops := 0
	// Both scratch slices live across the widening iterations (each pass
	// resets them to length zero and refills) and across calls via the pool;
	// only the returned refs copy escapes.
	sc := epsScratchPool.Get().(*epsScratch)
	defer epsScratchPool.Put(sc)
	for {
		entries, hops, err := e.backend.Search(from, l, key, slacken(e.mappers[l].mapRadius(r)))
		if err != nil {
			return 0, nil, totalHops, err
		}
		totalHops += hops
		sc.refs = sc.refs[:0]
		sc.spheres = sc.spheres[:0]
		for _, en := range entries {
			ref := en.Payload.(ClusterRef)
			sc.refs = append(sc.refs, ref)
			sc.spheres = append(sc.spheres, geometry.SphereAt{
				Dist:   vec.Dist(qc, ref.Center),
				Radius: ref.Radius,
				Items:  ref.Items,
			})
		}
		if geometry.ExpectedCount(m, r, sc.spheres) >= k || r >= maxR {
			eps := geometry.SolveEpsForCount(m, k, sc.spheres)
			if eps > r && r < maxR {
				// Solver wants a bigger radius than we searched: widen once
				// more so scoring sees every cluster the radius can touch.
				r = eps
				continue
			}
			return eps, append([]ClusterRef(nil), sc.refs...), totalHops, nil
		}
		r *= 2
	}
}

// sortFetched orders fetched items by ascending true distance to the query
// (ties by ascending id) and returns the ids. Items are globally unique ids;
// duplicates (an id fetched from two peers cannot happen, but replicated
// harness use might) are removed, keeping the first occurrence.
func sortFetched(fetched []ItemDist) []int {
	seen := make(map[int]bool, len(fetched))
	cands := make([]ItemDist, 0, len(fetched))
	for _, it := range fetched {
		if seen[it.ID] {
			continue
		}
		seen[it.ID] = true
		cands = append(cands, it)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Dist2 != cands[j].Dist2 {
			return cands[i].Dist2 < cands[j].Dist2
		}
		return cands[i].ID < cands[j].ID
	})
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.ID
	}
	return out
}

// systemBackend adapts the in-process System to the Backend interface: the
// overlays are searched directly and peers are "contacted" by scanning their
// in-memory stores. It never returns an error.
type systemBackend struct{ s *System }

func (b systemBackend) Search(from, level int, key []float64, radius float64) ([]overlay.Entry, int, error) {
	entries, hops := b.s.overlays[level].SearchSphere(from, key, radius)
	return entries, hops, nil
}

func (b systemBackend) FetchRange(from, peer int, q []float64, eps float64) ([]int, error) {
	ps := b.s.peers[peer]
	if ps.dead {
		return nil, nil // contact times out; the budget is still spent
	}
	return LocalRange(q, eps, ps.store), nil
}

func (b systemBackend) FetchKNN(from, peer int, q []float64, k int) ([]ItemDist, error) {
	ps := b.s.peers[peer]
	if ps.dead {
		return nil, nil // contact times out; the budget is still spent
	}
	return LocalKNN(q, k, ps.store), nil
}
