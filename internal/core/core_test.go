package core

import (
	"math/rand"
	"testing"

	"hyperm/internal/can"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/flatindex"
	"hyperm/internal/overlay"
	"hyperm/internal/wavelet"
)

// canFactory builds CAN overlays with a deterministic per-level seed.
func canFactory(seed int64) OverlayFactory {
	return func(level, keyDim, peers int) (overlay.Network, error) {
		return can.Build(can.Config{
			Nodes: peers,
			Dim:   keyDim,
			Rng:   rand.New(rand.NewSource(seed + int64(level))),
		})
	}
}

// testSystem builds a published Hyper-M network over an ALOI-like corpus.
func testSystem(t testing.TB, peers, objects, views, bins, levels, k int, seed int64) (*System, [][]float64, *flatindex.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data, _ := dataset.ALOI(dataset.ALOIConfig{Objects: objects, Views: views, Bins: bins}, rng)
	sys, err := NewSystem(Config{
		Peers:           peers,
		Dim:             bins,
		Levels:          levels,
		ClustersPerPeer: k,
		Factory:         canFactory(seed),
		Rng:             rng,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	// Round-robin assignment keeps the test independent of the k-means
	// placement machinery.
	for i, x := range data {
		sys.AddPeerData(i%peers, []int{i}, [][]float64{x})
	}
	sys.DeriveBounds()
	sys.PublishAll()
	return sys, data, flatindex.New(data)
}

func TestNewSystemValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := Config{Peers: 4, Dim: 16, Levels: 3, ClustersPerPeer: 2, Factory: canFactory(1), Rng: rng}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero peers", func(c *Config) { c.Peers = 0 }},
		{"non-pow2 dim", func(c *Config) { c.Dim = 15 }},
		{"levels too high", func(c *Config) { c.Levels = 99 }},
		{"zero levels", func(c *Config) { c.Levels = 0 }},
		{"zero clusters", func(c *Config) { c.ClustersPerPeer = 0 }},
		{"negative C", func(c *Config) { c.C = -1 }},
		{"nil factory", func(c *Config) { c.Factory = nil }},
		{"nil rng", func(c *Config) { c.Rng = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := NewSystem(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := NewSystem(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPublishCounts(t *testing.T) {
	sys, _, _ := testSystem(t, 10, 20, 6, 32, 3, 4, 42)
	if got := sys.TotalItems(); got != 120 {
		t.Fatalf("TotalItems = %d, want 120", got)
	}
	for p := 0; p < 10; p++ {
		if got := sys.PeerItemCount(p); got != 12 {
			t.Errorf("peer %d holds %d items, want 12", p, got)
		}
	}
}

func TestPublishRequiresBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys, err := NewSystem(Config{Peers: 2, Dim: 8, Levels: 2, ClustersPerPeer: 1,
		Factory: canFactory(2), Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	sys.AddPeerData(0, []int{0}, [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without bounds")
		}
	}()
	sys.PublishPeer(0)
}

// The paper's headline retrieval guarantee: with the min-score policy and an
// unlimited peer budget, range queries have NO false dismissals and
// precision 1.0.
func TestRangeQueryNoFalseDismissalsAndPerfectPrecision(t *testing.T) {
	sys, data, truth := testSystem(t, 10, 30, 8, 32, 4, 5, 7)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		q := data[rng.Intn(len(data))]
		eps := 0.01 + rng.Float64()*0.1
		want := truth.Range(q, eps)
		got := sys.RangeQuery(0, q, eps, RangeOptions{})
		p, r := eval.PrecisionRecall(got.Items, want)
		if r != 1 {
			t.Fatalf("trial %d (eps=%v): recall %v < 1 — false dismissal (got %d of %d)",
				trial, eps, r, len(got.Items), len(want))
		}
		if p != 1 {
			t.Fatalf("trial %d: precision %v < 1 — local filtering broken", trial, p)
		}
	}
}

// With a peer budget, recall can drop but precision must stay perfect, and
// recall must grow monotonically with the budget (Fig 10a's shape).
func TestRangeQueryBudgetMonotoneRecall(t *testing.T) {
	sys, data, truth := testSystem(t, 12, 30, 8, 32, 4, 5, 9)
	rng := rand.New(rand.NewSource(10))
	q := data[rng.Intn(len(data))]
	eps := 0.12
	want := truth.Range(q, eps)
	if len(want) < 3 {
		t.Skip("query radius found too few true results for a meaningful test")
	}
	prev := -1.0
	for _, budget := range []int{1, 2, 4, 8, 12} {
		got := sys.RangeQuery(0, q, eps, RangeOptions{MaxPeers: budget})
		p, r := eval.PrecisionRecall(got.Items, want)
		if p != 1 {
			t.Fatalf("budget %d: precision %v != 1", budget, p)
		}
		if r < prev-1e-9 {
			t.Fatalf("recall decreased with a larger budget: %v -> %v", prev, r)
		}
		prev = r
		if got.PeersContacted > budget {
			t.Fatalf("contacted %d peers with budget %d", got.PeersContacted, budget)
		}
	}
	if prev != 1 {
		t.Errorf("full budget should reach recall 1, got %v", prev)
	}
}

func TestPointQueryFindsExactItem(t *testing.T) {
	sys, data, _ := testSystem(t, 8, 20, 6, 32, 3, 4, 11)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		id := rng.Intn(len(data))
		got := sys.RangeQuery(0, data[id], 0, RangeOptions{})
		found := false
		for _, g := range got.Items {
			if g == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("point query for item %d missed it", id)
		}
	}
}

func TestKNNQueryQuality(t *testing.T) {
	sys, data, truth := testSystem(t, 10, 40, 10, 32, 4, 10, 13)
	rng := rand.New(rand.NewSource(14))
	var sumP, sumR float64
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		q := data[rng.Intn(len(data))]
		k := 10
		want := truth.KNN(q, k)
		got := sys.KNNQuery(0, q, k, KNNOptions{})
		p, r := eval.PrecisionRecall(got.Items, want)
		sumP += p
		sumR += r
	}
	avgP, avgR := sumP/trials, sumR/trials
	// The paper reports precision/recall balanced above 50% (Fig 10b).
	if avgR < 0.4 {
		t.Errorf("k-nn average recall %v too low", avgR)
	}
	if avgP < 0.3 {
		t.Errorf("k-nn average precision %v too low", avgP)
	}
	t.Logf("k-nn avg precision %.3f recall %.3f", avgP, avgR)
}

// The C knob (§6.1): larger C fetches more items, which cannot reduce recall
// and typically reduces precision.
func TestKNNCKnobTradeoff(t *testing.T) {
	sys, data, truth := testSystem(t, 10, 40, 10, 32, 4, 10, 15)
	rng := rand.New(rand.NewSource(16))
	var r1, r2, p1, p2, n float64
	for trial := 0; trial < 15; trial++ {
		q := data[rng.Intn(len(data))]
		want := truth.KNN(q, 10)
		a := sys.KNNQuery(0, q, 10, KNNOptions{C: 1})
		b := sys.KNNQuery(0, q, 10, KNNOptions{C: 2})
		pa, ra := eval.PrecisionRecall(a.Items, want)
		pb, rb := eval.PrecisionRecall(b.Items, want)
		p1 += pa
		p2 += pb
		r1 += ra
		r2 += rb
		n++
	}
	if r2 < r1-1e-9 {
		t.Errorf("average recall dropped when C doubled: C=1 %.3f, C=2 %.3f", r1/n, r2/n)
	}
	t.Logf("C=1: P=%.3f R=%.3f | C=2: P=%.3f R=%.3f", p1/n, r1/n, p2/n, r2/n)
}

func TestKNNSortedByDistance(t *testing.T) {
	sys, data, _ := testSystem(t, 8, 20, 6, 32, 3, 4, 17)
	q := data[0]
	got := sys.KNNQuery(0, q, 5, KNNOptions{})
	if len(got.Items) == 0 {
		t.Fatal("k-nn returned nothing")
	}
	lookup := sys.itemLookup()
	prev := -1.0
	for _, id := range got.Items {
		d := dist(q, lookup[id])
		if d < prev-1e-12 {
			t.Fatal("k-nn results not sorted by distance")
		}
		prev = d
	}
	// The nearest fetched item to the query (which is itself in the corpus)
	// must be the query item at distance 0.
	if got.Items[0] != 0 {
		t.Errorf("closest item is %d, want 0 (the query itself)", got.Items[0])
	}
}

func TestPostInsertDegradesGracefully(t *testing.T) {
	// Build with only part of the data, post-insert the rest, and verify
	// queries still find pre-existing items perfectly while post-inserted
	// ones may be missed (the Fig 10c setting).
	rng := rand.New(rand.NewSource(18))
	data, _ := dataset.ALOI(dataset.ALOIConfig{Objects: 30, Views: 8, Bins: 32}, rng)
	peers := 10
	pre := data[:180]
	post := data[180:]
	sys, err := NewSystem(Config{
		Peers: peers, Dim: 32, Levels: 3, ClustersPerPeer: 4,
		Factory: canFactory(18), Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range pre {
		sys.AddPeerData(i%peers, []int{i}, [][]float64{x})
	}
	sys.DeriveBounds()
	sys.PublishAll()
	for j, x := range post {
		sys.PostInsert(j%peers, 180+j, x)
	}
	if sys.TotalItems() != len(data) {
		t.Fatalf("TotalItems = %d, want %d", sys.TotalItems(), len(data))
	}
	truthPre := flatindex.New(pre)
	qrng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		q := pre[qrng.Intn(len(pre))]
		eps := 0.05 + qrng.Float64()*0.05
		want := truthPre.Range(q, eps)
		got := sys.RangeQuery(0, q, eps, RangeOptions{})
		// All pre-existing items must still be found (their summaries are
		// intact); post-inserted items may appear too — they are genuine
		// matches found opportunistically on contacted peers.
		found := map[int]bool{}
		for _, id := range got.Items {
			found[id] = true
		}
		for _, id := range want {
			if !found[id] {
				t.Fatalf("pre-existing item %d lost after post-insertion", id)
			}
		}
	}
}

func TestAggregationPolicies(t *testing.T) {
	for _, agg := range []Aggregation{AggMin, AggSum, AggMean} {
		t.Run(agg.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(20))
			data, _ := dataset.ALOI(dataset.ALOIConfig{Objects: 15, Views: 6, Bins: 32}, rng)
			sys, err := NewSystem(Config{
				Peers: 6, Dim: 32, Levels: 3, ClustersPerPeer: 3,
				Aggregation: agg, Factory: canFactory(20), Rng: rng,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range data {
				sys.AddPeerData(i%6, []int{i}, [][]float64{x})
			}
			sys.DeriveBounds()
			sys.PublishAll()
			got := sys.RangeQuery(0, data[0], 0.1, RangeOptions{})
			if len(got.Items) == 0 {
				t.Error("query returned nothing")
			}
		})
	}
	if AggMin.String() != "min" || Aggregation(9).String() == "" {
		t.Error("aggregation String broken")
	}
}

// Min-score aggregation must prune at least as hard as sum: its candidate
// set is a subset.
func TestMinPrunesHarderThanSum(t *testing.T) {
	scores := map[int][]float64{
		1: {2, 3, 4},
		2: {0, 5, 5}, // missing from level 0
		3: {1, 1, 1},
	}
	min := sortScores(copyScores(scores), AggMin)
	sum := sortScores(copyScores(scores), AggSum)
	if len(min) != 2 {
		t.Errorf("min kept %d peers, want 2 (peer 2 pruned)", len(min))
	}
	if len(sum) != 3 {
		t.Errorf("sum kept %d peers, want 3", len(sum))
	}
	if min[0].Peer != 1 || min[0].Score != 2 {
		t.Errorf("min top = %+v, want peer 1 score 2", min[0])
	}
}

func copyScores(m map[int][]float64) map[int][]float64 {
	out := make(map[int][]float64, len(m))
	for k, v := range m {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

func TestQueryValidation(t *testing.T) {
	sys, data, _ := testSystem(t, 4, 10, 4, 32, 2, 2, 21)
	for _, fn := range []func(){
		func() { sys.RangeQuery(0, data[0][:5], 0.1, RangeOptions{}) },
		func() { sys.RangeQuery(0, data[0], -1, RangeOptions{}) },
		func() { sys.KNNQuery(0, data[0][:5], 3, KNNOptions{}) },
		func() { sys.KNNQuery(0, data[0], 0, KNNOptions{}) },
		func() { sys.AddPeerData(0, []int{1}, [][]float64{{1}}) },
		func() { sys.AddPeerData(0, []int{1, 2}, [][]float64{{1}}) },
		func() { sys.PostInsert(0, 99, []float64{1, 2}) },
		func() { sys.SetBounds([]Bounds{{0, 1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSetBoundsExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	sys, err := NewSystem(Config{Peers: 2, Dim: 4, Levels: 2, ClustersPerPeer: 1,
		Factory: canFactory(22), Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	sys.AddPeerData(0, []int{0}, [][]float64{{0.1, 0.2, 0.3, 0.4}})
	sys.AddPeerData(1, []int{1}, [][]float64{{0.9, 0.8, 0.7, 0.6}})
	sys.SetBounds([]Bounds{{0, 1}, {-0.5, 0.5}})
	sys.PublishAll()
	got := sys.RangeQuery(0, []float64{0.1, 0.2, 0.3, 0.4}, 0.01, RangeOptions{})
	if len(got.Items) != 1 || got.Items[0] != 0 {
		t.Errorf("query with explicit bounds returned %v", got.Items)
	}
}

// Publishing clusters instead of items must cost far fewer insert operations:
// the cluster count is Peers*Levels*K regardless of corpus size.
func TestPublishClusterCountIndependentOfCorpus(t *testing.T) {
	sys, _, _ := testSystem(t, 10, 40, 10, 32, 3, 5, 23)
	st := sys.PublishAll() // republish to measure
	if st.ClustersPublished > 10*3*5 {
		t.Errorf("published %d clusters, want <= %d", st.ClustersPublished, 10*3*5)
	}
	if len(st.HopsPerLevel) != 3 {
		t.Errorf("HopsPerLevel has %d entries", len(st.HopsPerLevel))
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Guard the wavelet convention default: the zero Config value must use the
// paper's averaging Haar.
func TestDefaultConventionIsAveraging(t *testing.T) {
	var c Config
	if c.Convention != wavelet.Averaging {
		t.Error("default convention should be the paper's averaging Haar")
	}
}

func BenchmarkPublishPeer(b *testing.B) {
	sys, _, _ := testSystem(b, 10, 40, 10, 64, 4, 10, 31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.PublishPeer(i % 10)
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	sys, data, _ := testSystem(b, 10, 40, 10, 64, 4, 10, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.RangeQuery(i%10, data[i%len(data)], 0.1, RangeOptions{})
	}
}

func BenchmarkKNNQuery(b *testing.B) {
	sys, data, _ := testSystem(b, 10, 40, 10, 64, 4, 10, 33)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.KNNQuery(i%10, data[i%len(data)], 10, KNNOptions{})
	}
}

func TestKNNMaxPeersCap(t *testing.T) {
	sys, data, _ := testSystem(t, 10, 30, 8, 32, 3, 5, 61)
	res := sys.KNNQuery(0, data[4], 10, KNNOptions{MaxPeers: 2})
	if res.PeersContacted > 2 {
		t.Errorf("contacted %d peers with cap 2", res.PeersContacted)
	}
	uncapped := sys.KNNQuery(0, data[4], 10, KNNOptions{})
	if len(uncapped.Items) < len(res.Items) {
		t.Errorf("capping peers should not increase fetch: %d vs %d",
			len(uncapped.Items), len(res.Items))
	}
}

func TestOverlayAccessor(t *testing.T) {
	sys, _, _ := testSystem(t, 4, 10, 4, 32, 3, 2, 63)
	for l := 0; l < 3; l++ {
		ov := sys.Overlay(l)
		if ov == nil || ov.Size() != 4 {
			t.Fatalf("overlay %d wrong: %v", l, ov)
		}
	}
}

func TestKeyRadiusRequiresBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	sys, err := NewSystem(Config{Peers: 2, Dim: 8, Levels: 2, ClustersPerPeer: 1,
		Factory: canFactory(64), Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("KeyRadius without bounds should panic")
		}
	}()
	sys.KeyRadius(0, 1)
}

func TestQueryFromDeadPeerPanics(t *testing.T) {
	sys, data, _ := testSystem(t, 6, 12, 4, 32, 2, 2, 65)
	if _, err := sys.LeavePeer(1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("query from departed peer should panic")
		}
	}()
	sys.RangeQuery(1, data[0], 0.1, RangeOptions{})
}
