package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hyperm/internal/cluster"
	"hyperm/internal/overlay"
	"hyperm/internal/parallel"
	"hyperm/internal/store"
	"hyperm/internal/wavelet"
)

// ClusterRef is the payload Hyper-M publishes into the overlays: the sphere
// summary of one per-level cluster plus enough identity to credit its peer
// during scoring. Center and Radius are in subspace (unmapped) coordinates,
// so scoring never suffers key-space clamping distortion.
type ClusterRef struct {
	Peer   int       // owning peer id
	Level  int       // wavelet level index (0 = A)
	Index  int       // cluster index within the peer's level clustering
	Center []float64 // centroid in subspace coordinates
	Radius float64   // sphere radius in subspace coordinates
	Items  int       // number of items summarized at publication time
}

// peerState is everything a single device knows locally.
type peerState struct {
	id int
	// store is the device's flat item store: id column + coalesced vector
	// blocks (see internal/store).
	store *store.Store
	// published[l] is the level-l clustering actually announced to the
	// overlays; stale after post-creation inserts, exactly like the paper's
	// Fig 10c setting.
	published [][]ClusterRef
	// pubSeqs[l][i] is the overlay sequence number published[l][i] was
	// announced under — the record identity streaming publish upserts in
	// place. Captured only on overlays that expose sequence numbers
	// (can.Overlay); nil otherwise.
	pubSeqs [][]int
	// stream is the incremental-publish state, lazily built on the first
	// StreamInsert (see stream.go).
	stream *StreamState
	// dead marks a crashed/departed device: it answers no fetches and its
	// overlay storage has been wiped.
	dead bool
}

// System is a simulated Hyper-M deployment: all peers, the per-level
// overlays, and the shared key mapping.
type System struct {
	cfg      Config
	overlays []overlay.Network
	mappers  []keyMapper
	peers    []*peerState
	bounds   []Bounds
	engine   *Engine
	// streamTuning parameterizes the incremental publish kernel for peers
	// that begin streaming (see stream.go); zero value = defaults.
	streamTuning StreamTuning
}

// NewSystem builds the per-level overlays and empty peers. Data is added
// with AddPeerData and announced with PublishAll/PublishPeer.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	for l := 0; l < cfg.Levels; l++ {
		ov, err := cfg.Factory(l, wavelet.SubspaceDim(l), cfg.Peers)
		if err != nil {
			return nil, fmt.Errorf("core: building overlay for level %d: %w", l, err)
		}
		if ov.Dim() != wavelet.SubspaceDim(l) {
			return nil, fmt.Errorf("core: overlay for level %d has dim %d, want %d",
				l, ov.Dim(), wavelet.SubspaceDim(l))
		}
		if ov.Size() != cfg.Peers {
			return nil, fmt.Errorf("core: overlay for level %d has %d nodes, want %d",
				l, ov.Size(), cfg.Peers)
		}
		s.overlays = append(s.overlays, ov)
	}
	for p := 0; p < cfg.Peers; p++ {
		s.peers = append(s.peers, &peerState{id: p, store: store.New(cfg.Dim)})
	}
	return s, nil
}

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// Overlay exposes level l's overlay (for statistics collection).
func (s *System) Overlay(l int) overlay.Network { return s.overlays[l] }

// AddPeerData stores items (with their global ids) on peer p's device.
// It is a purely local operation — nothing is announced until PublishPeer.
func (s *System) AddPeerData(p int, ids []int, items [][]float64) {
	if len(ids) != len(items) {
		panic(fmt.Sprintf("core: %d ids for %d items", len(ids), len(items)))
	}
	ps := s.peers[p]
	for i, x := range items {
		if len(x) != s.cfg.Dim {
			panic(fmt.Sprintf("core: item dim %d, want %d", len(x), s.cfg.Dim))
		}
		ps.store.Append(ids[i], x)
	}
}

// PeerItemCount returns the number of items stored on peer p.
func (s *System) PeerItemCount(p int) int { return s.peers[p].store.Len() }

// TotalItems returns the number of items across every peer.
func (s *System) TotalItems() int {
	total := 0
	for _, ps := range s.peers {
		total += ps.store.Len()
	}
	return total
}

// DeriveBounds computes each level's empirical coefficient range across all
// peer data (with a small safety margin) and installs it as the shared key
// mapping. In a deployment these bounds follow from the shared feature
// domain (e.g. normalized color histograms); computing them from the
// simulated corpus is equivalent and avoids key-space clamping.
// Must be called after data is added and before publishing or querying.
//
// The per-peer reductions run on the Config.Parallelism worker pool: each
// peer decomposes only its own items, and the min/max merge is
// order-independent, so the result is identical for every worker count.
func (s *System) DeriveBounds() {
	newBounds := func() []Bounds {
		b := make([]Bounds, s.cfg.Levels)
		for l := range b {
			b[l] = Bounds{Lo: math.Inf(1), Hi: math.Inf(-1)}
		}
		return b
	}
	parts, _ := parallel.Map(nil, s.cfg.Parallelism, len(s.peers), func(p int) ([]Bounds, error) {
		pb := newBounds()
		st := s.peers[p].store
		for i := 0; i < st.Len(); i++ {
			dec := wavelet.Decompose(st.Vec(i), s.cfg.Convention)
			for l := 0; l < s.cfg.Levels; l++ {
				for _, c := range dec.Subspace(l) {
					if c < pb[l].Lo {
						pb[l].Lo = c
					}
					if c > pb[l].Hi {
						pb[l].Hi = c
					}
				}
			}
		}
		return pb, nil
	})
	merged := newBounds()
	for _, pb := range parts {
		for l := range merged {
			if pb[l].Lo < merged[l].Lo {
				merged[l].Lo = pb[l].Lo
			}
			if pb[l].Hi > merged[l].Hi {
				merged[l].Hi = pb[l].Hi
			}
		}
	}
	s.bounds = make([]Bounds, s.cfg.Levels)
	for l, b := range merged {
		if b.Lo <= b.Hi { // at least one coefficient seen at this level
			s.bounds[l] = b
		}
	}
	s.installBounds()
}

// SetBounds installs explicit per-level coefficient bounds (length must be
// Levels). Use when the data domain is known a priori.
func (s *System) SetBounds(b []Bounds) {
	if len(b) != s.cfg.Levels {
		panic(fmt.Sprintf("core: %d bounds for %d levels", len(b), s.cfg.Levels))
	}
	s.bounds = append([]Bounds(nil), b...)
	s.installBounds()
}

func (s *System) installBounds() {
	s.mappers = buildMappers(s.bounds)
	s.engine = &Engine{cfg: s.cfg, mappers: s.mappers, backend: systemBackend{s}}
}

// Bounds returns a copy of the installed per-level coefficient bounds
// (nil before DeriveBounds/SetBounds). Serving nodes snapshot these to
// rebuild the identical key mapping.
func (s *System) Bounds() []Bounds {
	if s.bounds == nil {
		return nil
	}
	return append([]Bounds(nil), s.bounds...)
}

// PeerData returns peer p's item ids and vectors. The outer slices are
// copies; the vectors themselves are arena views (they are treated as
// immutable throughout the repository).
func (s *System) PeerData(p int) (ids []int, items [][]float64) {
	ps := s.peers[p]
	return append([]int(nil), ps.store.IDs()...), ps.store.Rows()
}

// PeerStore returns an independent flat-store clone of peer p's items — what
// a serving node snapshots as its local store (full blocks shared, append
// tails split; see store.Clone).
func (s *System) PeerStore(p int) *store.Store {
	return s.peers[p].store.Clone()
}

// PublishStats reports the network cost of announcing one peer's summaries.
type PublishStats struct {
	// ClustersPublished counts cluster spheres inserted (across levels).
	ClustersPublished int
	// Hops is the total overlay routing + replication hops consumed.
	Hops int
	// HopsPerLevel breaks Hops down by wavelet level.
	HopsPerLevel []int
}

// preparedPeer is the output of one peer's local pipeline steps — the DWT
// decomposition (i1) and the per-subspace k-means (i2). It is pure data
// computed without touching any shared structure, which is what makes the
// preparation phase safe to fan out across workers.
type preparedPeer struct {
	// levels[l] holds the level-l cluster spheres, nil for an empty peer.
	levels [][]cluster.Cluster
}

// clusterSeed draws the clustering seed for the next peer preparation from
// the system RNG. Seeds are always drawn serially, in peer order, on the
// caller's goroutine: the worker pool only ever sees the derived per-peer
// rand.Rand, never Config.Rng itself.
func (s *System) clusterSeed() int64 { return s.cfg.Rng.Int63() }

// preparePeer runs steps i1+i2 for one peer with a private RNG. Safe to call
// concurrently for distinct peers.
func (s *System) preparePeer(p int, seed int64) preparedPeer {
	ps := s.peers[p]
	if ps.store.Len() == 0 {
		return preparedPeer{}
	}
	rng := rand.New(rand.NewSource(seed))
	decs := wavelet.DecomposeAll(ps.store.Rows(), s.cfg.Convention)
	prep := preparedPeer{levels: make([][]cluster.Cluster, s.cfg.Levels)}
	for l := 0; l < s.cfg.Levels; l++ {
		coeffs := wavelet.SubspaceMatrix(decs, l)
		res := cluster.KMeans(coeffs, cluster.Config{K: s.cfg.ClustersPerPeer, Rng: rng})
		prep.levels[l] = res.Clusters
	}
	return prep
}

// commitPeer runs step i3 for one peer: announce the prepared cluster
// spheres into the per-level overlays. The overlays are mutable
// single-threaded structures, so commits always run serially in peer order.
func (s *System) commitPeer(p int, prep preparedPeer) PublishStats {
	ps := s.peers[p]
	st := PublishStats{HopsPerLevel: make([]int, s.cfg.Levels)}
	ps.published = make([][]ClusterRef, s.cfg.Levels)
	ps.pubSeqs = make([][]int, s.cfg.Levels)
	ps.stream = nil // a fresh batch publish resets any incremental state
	if prep.levels == nil {
		return st
	}
	for l, clusters := range prep.levels {
		seqer, _ := s.overlays[l].(overlay.Sequencer)
		for idx, c := range clusters {
			ref := ClusterRef{
				Peer:   p,
				Level:  l,
				Index:  idx,
				Center: c.Centroid,
				Radius: c.Radius,
				Items:  c.Count,
			}
			ps.published[l] = append(ps.published[l], ref)
			if seqer != nil {
				ps.pubSeqs[l] = append(ps.pubSeqs[l], seqer.NextSeq())
			}
			hops := s.overlays[l].InsertSphere(p, overlay.Entry{
				Key:     s.mappers[l].mapPoint(c.Centroid),
				Radius:  slacken(s.mappers[l].mapRadius(c.Radius)),
				Payload: ref,
			})
			st.ClustersPublished++
			st.Hops += hops
			st.HopsPerLevel[l] += hops
		}
	}
	return st
}

func (s *System) requireBounds() {
	if s.mappers == nil {
		panic("core: bounds not installed; call DeriveBounds or SetBounds first")
	}
}

// PublishPeer runs the paper's insertion pipeline (Fig 2) for one peer:
// DWT-decompose its items (step i1), k-means each subspace independently
// (step i2), and insert each cluster sphere into that level's overlay
// (step i3). It returns the cost accounting.
//
// Publishing requires bounds (DeriveBounds or SetBounds) to be installed.
// Calling PublishPeer for every peer in order is exactly equivalent to one
// PublishAll, at any Parallelism setting.
func (s *System) PublishPeer(p int) PublishStats {
	s.requireBounds()
	return s.commitPeer(p, s.preparePeer(p, s.clusterSeed()))
}

// PublishAll publishes every peer and returns the summed statistics.
//
// The per-peer preparation (decomposition + clustering, the dominant cost)
// fans out across the Config.Parallelism worker pool; per-peer clustering
// seeds are drawn serially beforehand and overlay insertion runs serially
// afterwards in peer order, so the published summaries, hop counts, and
// overlay states are byte-identical to a fully serial run.
func (s *System) PublishAll() PublishStats {
	s.requireBounds()
	seeds := make([]int64, len(s.peers))
	for p := range seeds {
		seeds[p] = s.clusterSeed()
	}
	preps, _ := parallel.Map(nil, s.cfg.Parallelism, len(s.peers), func(p int) (preparedPeer, error) {
		return s.preparePeer(p, seeds[p]), nil
	})
	total := PublishStats{HopsPerLevel: make([]int, s.cfg.Levels)}
	for p := range s.peers {
		st := s.commitPeer(p, preps[p])
		total.ClustersPublished += st.ClustersPublished
		total.Hops += st.Hops
		for l, h := range st.HopsPerLevel {
			total.HopsPerLevel[l] += h
		}
	}
	return total
}

// PostInsert adds an item to peer p after the overlay was built, without
// republishing — the Figure 10c scenario. The item joins the peer's local
// store and is absorbed into the nearest published cluster of each level
// locally (count bumps are local knowledge only); the overlay summaries go
// stale, which is precisely the recall degradation the experiment measures.
func (s *System) PostInsert(p int, id int, item []float64) {
	if len(item) != s.cfg.Dim {
		panic(fmt.Sprintf("core: item dim %d, want %d", len(item), s.cfg.Dim))
	}
	ps := s.peers[p]
	ps.store.Append(id, item)
	AbsorbInsert(ps.published, item, s.cfg.Convention)
}

// PostInsertBatch is PostInsert over a batch, in order — the oracle for
// node.PublishBatch (which batches only the coherence traffic, never the
// store or summary mutations, so a batch and a per-item loop are the same
// state transition).
func (s *System) PostInsertBatch(p int, ids []int, items [][]float64) {
	if len(ids) != len(items) {
		panic(fmt.Sprintf("core: batch has %d ids for %d items", len(ids), len(items)))
	}
	for i := range items {
		s.PostInsert(p, ids[i], items[i])
	}
}

// FailPeer models device p crashing or walking out of radio range after
// publication: it stops answering data fetches, and the index records its
// overlay node stored (owned entries and replicas, across every level) are
// lost. Other nodes' replicas of p's summaries survive — the Fig 6
// replication is what keeps p-adjacent regions searchable. It returns the
// number of index records lost.
//
// Failing a peer is irreversible in this simulation (short-lived MANETs do
// not wait for repairs).
func (s *System) FailPeer(p int) int {
	ps := s.peers[p]
	if ps.dead {
		return 0
	}
	ps.dead = true
	lost := 0
	for _, ov := range s.overlays {
		if failer, ok := ov.(overlay.StorageFailer); ok {
			lost += failer.ClearNode(p)
		}
	}
	return lost
}

// LeavePeer models device p departing gracefully: like FailPeer its items
// become unreachable (they leave with the device), but the index records its
// overlay nodes stored are handed over to neighbors first, so foreign
// summaries survive. Falls back to FailPeer semantics on overlays without a
// departure protocol. It returns the handover messages spent.
func (s *System) LeavePeer(p int) (msgs int, err error) {
	ps := s.peers[p]
	if ps.dead {
		return 0, fmt.Errorf("core: peer %d already left or failed", p)
	}
	for l, ov := range s.overlays {
		if leaver, ok := ov.(overlay.Leaver); ok {
			m, err := leaver.Leave(p)
			if err != nil {
				return msgs, fmt.Errorf("core: level %d: %w", l, err)
			}
			msgs += m
		} else if failer, ok := ov.(overlay.StorageFailer); ok {
			failer.ClearNode(p)
		}
	}
	ps.dead = true
	return msgs, nil
}

// JoinPeer admits one new, empty peer into a running system: every level's
// overlay splits the zone owning that level's join point and hands the new
// node its share of the index records. points carries one join point per
// level (in that level's key space). The peer starts with no items and no
// published summaries — it serves the index it inherited, exactly like a
// fresh device walking into the MANET. Returns the new peer's id.
//
// All overlays must support post-construction joins (overlay.Joiner).
func (s *System) JoinPeer(points [][]float64) (int, error) {
	if len(points) != s.cfg.Levels {
		return 0, fmt.Errorf("core: %d join points for %d levels", len(points), s.cfg.Levels)
	}
	id := len(s.peers)
	for l, ov := range s.overlays {
		joiner, ok := ov.(overlay.Joiner)
		if !ok {
			return 0, fmt.Errorf("core: level %d overlay does not support joins", l)
		}
		nid, err := joiner.JoinNode(points[l])
		if err != nil {
			return 0, fmt.Errorf("core: level %d: %w", l, err)
		}
		if nid != id {
			return 0, fmt.Errorf("core: level %d assigned node id %d, want peer id %d", l, nid, id)
		}
	}
	s.peers = append(s.peers, &peerState{id: id, store: store.New(s.cfg.Dim)})
	s.cfg.Peers++
	return id, nil
}

// CrashPeer models device p dying abruptly mid-operation: its items and
// stored index records are gone, and on every level a surviving neighbor
// takes over its zone and republishes what the surviving replicas can
// restore — the simulator twin of the live membership protocol's
// probe-detected takeover. Requires overlay.Crasher support; returns the
// total number of recovered index records across levels.
func (s *System) CrashPeer(p int) (recovered int, err error) {
	ps := s.peers[p]
	if ps.dead {
		return 0, fmt.Errorf("core: peer %d already left or failed", p)
	}
	for l, ov := range s.overlays {
		crasher, ok := ov.(overlay.Crasher)
		if !ok {
			return recovered, fmt.Errorf("core: level %d overlay does not support crashes", l)
		}
		n, err := crasher.Crash(p)
		if err != nil {
			return recovered, fmt.Errorf("core: level %d: %w", l, err)
		}
		recovered += n
	}
	ps.dead = true
	return recovered, nil
}

// PeerAlive reports whether peer p has neither failed nor left.
func (s *System) PeerAlive(p int) bool { return !s.peers[p].dead }

// AlivePeers returns the number of peers that have not failed.
func (s *System) AlivePeers() int {
	alive := 0
	for _, ps := range s.peers {
		if !ps.dead {
			alive++
		}
	}
	return alive
}

// PublishedClusters returns a copy of the cluster summaries peer p announced
// at level l (nil if the peer has not published).
func (s *System) PublishedClusters(p, l int) []ClusterRef {
	ps := s.peers[p]
	if ps.published == nil || l >= len(ps.published) {
		return nil
	}
	return append([]ClusterRef(nil), ps.published[l]...)
}

// PublishedAll returns a copy of every cluster summary peer p announced,
// indexed by level, or nil if the peer has not published. The copy is
// AbsorbInsert-independent from the system's own bookkeeping, which is what
// a serving node snapshots to track post-creation inserts on its own.
func (s *System) PublishedAll(p int) [][]ClusterRef {
	ps := s.peers[p]
	if ps.published == nil {
		return nil
	}
	out := make([][]ClusterRef, len(ps.published))
	for l, refs := range ps.published {
		out[l] = append([]ClusterRef(nil), refs...)
	}
	return out
}

// PublishedSeqs returns a copy of the overlay sequence numbers peer p's
// published records were announced under, indexed like PublishedAll (nil if
// the peer has not published or the overlay exposes no sequence numbers).
// Serving nodes snapshot these: they are the record identities streaming
// publish upserts in place.
func (s *System) PublishedSeqs(p int) [][]int {
	ps := s.peers[p]
	if ps.pubSeqs == nil {
		return nil
	}
	out := make([][]int, len(ps.pubSeqs))
	for l, seqs := range ps.pubSeqs {
		out[l] = append([]int(nil), seqs...)
	}
	return out
}

// KeyRadius converts a level-l subspace radius into overlay key-space units
// using the installed bounds (for diagnostics and experiment reporting).
func (s *System) KeyRadius(l int, r float64) float64 {
	if s.mappers == nil {
		panic("core: bounds not installed")
	}
	return s.mappers[l].mapRadius(r)
}

// PeerScore pairs a peer with its aggregated relevance score.
type PeerScore struct {
	Peer  int
	Score float64
}

// sortScores aggregates per-level score vectors (each of length Levels;
// levels where the peer surfaced no cluster hold zero) and orders peers by
// descending score, ties by ascending id so runs are deterministic. Peers
// whose aggregate is zero are dropped — with AggMin this is the paper's
// pruning behaviour.
func sortScores(scores map[int][]float64, agg Aggregation) []PeerScore {
	out := make([]PeerScore, 0, len(scores))
	for p, perLevel := range scores {
		sc := aggregate(perLevel, agg)
		if sc <= 0 {
			continue
		}
		out = append(out, PeerScore{Peer: p, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// aggregate combines one peer's per-level scores into its global score.
func aggregate(perLevel []float64, agg Aggregation) float64 {
	switch agg {
	case AggMin:
		m := perLevel[0]
		for _, v := range perLevel[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case AggSum, AggMean:
		var sum float64
		for _, v := range perLevel {
			sum += v
		}
		if agg == AggMean {
			sum /= float64(len(perLevel))
		}
		return sum
	default:
		panic("core: unknown aggregation policy")
	}
}
