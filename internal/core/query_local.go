package core

import (
	"sort"

	"hyperm/internal/store"
	"hyperm/internal/vec"
	"hyperm/internal/wavelet"
)

// LocalRange is the second query phase on a contacted peer: an exact scan of
// its flat item store, returning the ids of every item within eps of q.
// Exported so serving nodes (internal/node) answer fetch RPCs with the exact
// same rule as the in-process simulation.
func LocalRange(q []float64, eps float64, st *store.Store) []int {
	var out []int
	eps2 := eps * eps
	for i, n := 0, st.Len(); i < n; i++ {
		if vec.Dist2(q, st.Vec(i)) <= eps2 {
			out = append(out, st.ID(i))
		}
	}
	return out
}

// LocalKNN returns the k locally stored items closest to q with their squared
// distances, ordered by ascending distance (ties by ascending id). Exported
// for serving nodes, like LocalRange.
func LocalKNN(q []float64, k int, st *store.Store) []ItemDist {
	if k <= 0 || st.Len() == 0 {
		return nil
	}
	cands := make([]ItemDist, st.Len())
	for i := range cands {
		cands[i] = ItemDist{ID: st.ID(i), Dist2: vec.Dist2(q, st.Vec(i))}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Dist2 != cands[j].Dist2 {
			return cands[i].Dist2 < cands[j].Dist2
		}
		return cands[i].ID < cands[j].ID
	})
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k]
}

// AbsorbInsert applies the local bookkeeping of a post-creation insert to a
// peer's published summaries: at every level the item joins the nearest
// published cluster, whose local Items count is bumped (the overlay copy
// stays stale — exactly the Fig 10c degradation). Exported so serving nodes
// apply the same rule to their snapshot when handling Publish RPCs.
func AbsorbInsert(published [][]ClusterRef, item []float64, conv wavelet.Convention) {
	if published == nil {
		return
	}
	dec := wavelet.Decompose(item, conv)
	for l := range published {
		refs := published[l]
		if len(refs) == 0 {
			continue
		}
		coeff := dec.Subspace(l)
		best, bestD := 0, -1.0
		for i, ref := range refs {
			d := vec.Dist(coeff, ref.Center)
			if bestD < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		refs[best].Items++ // local bookkeeping; the published copy is stale
	}
}
