package core

import (
	"fmt"
	"math/rand"

	"hyperm/internal/cluster"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
	"hyperm/internal/store"
	"hyperm/internal/vec"
	"hyperm/internal/wavelet"
)

// This file implements streaming incremental publish: instead of letting the
// published summaries go stale after post-creation inserts (the Fig 10c
// degradation) or re-running the whole publish pipeline, a publisher updates
// its published cluster spheres in place and ships O(changed clusters) record
// deltas per insert. The kernel is substrate-neutral — the simulator
// (System.StreamInsert) applies the deltas through overlay.StreamUpdater, a
// live node ships them as store_rec RPCs — so both sides replay the identical
// op sequence and stay byte-identical.

// StreamTuning configures the incremental publish kernel.
type StreamTuning struct {
	// GrowSlack is how far past a cluster's radius an insert may land and
	// still grow the cluster instead of founding a new one, as a multiple of
	// the current radius (default 1.25; must be >= 1 when set).
	GrowSlack float64
	// ReclusterEvery re-runs the full per-level k-means after this many
	// streamed inserts, collapsing accumulated grow/split drift back to the
	// batch-publish quality. 0 disables periodic re-clustering.
	ReclusterEvery int
}

func (t StreamTuning) withDefaults() StreamTuning {
	if t.GrowSlack == 0 {
		t.GrowSlack = 1.25
	}
	return t
}

// StreamDelta is one overlay record operation produced by the kernel: an
// upsert (Del false — replace the record with Rec.Seq in place, or store it
// where absent) or a delete. Rec carries the full record value, so applying
// a delta needs no other context.
type StreamDelta struct {
	Level int
	Del   bool
	Rec   route.RecordView
}

// StreamState is the kernel's per-publisher counters. A fresh state (epoch 0,
// nothing streamed) is correct whenever both substrates start streaming from
// the same published snapshot.
type StreamState struct {
	tuning  StreamTuning
	epoch   int   // bumped on every re-cluster; part of record identity
	inserts int   // streamed inserts since the last re-cluster
	nextIdx []int // per-level counter of stream-created records this epoch
}

// NewStreamState builds the kernel state for a publisher with the given
// number of wavelet levels.
func NewStreamState(t StreamTuning, levels int) *StreamState {
	return &StreamState{tuning: t.withDefaults(), nextIdx: make([]int, levels)}
}

// streamSeq derives the identity of a stream-created record. Overlay-assigned
// sequence numbers count up from zero, so the 1<<40 offset keeps the two
// identity spaces disjoint; peer/level/epoch/idx make the number unique and
// equal on every substrate. The packing bounds (8 levels, 1024 epochs, 1024
// stream records per level per epoch) are far beyond any supported
// configuration; ReclusterEvery resets idx each epoch.
func streamSeq(peer, level, epoch, idx int) int {
	if level >= 8 || epoch >= 1024 || idx >= 1024 {
		panic(fmt.Sprintf("core: stream seq overflow (level=%d epoch=%d idx=%d)", level, epoch, idx))
	}
	return 1<<40 + (peer*8+level)<<20 + epoch*1024 + idx
}

// reclusterSeed is the deterministic k-means seed for a publisher's
// re-cluster at the given epoch — derivable on any substrate without shared
// RNG state.
func reclusterSeed(peer, epoch int) int64 {
	return int64(peer+1)*1_000_003 + int64(epoch)
}

// KeyMapper is the exported face of the per-level key mapping (keyMapper):
// it translates subspace coordinates and radii into the overlay key space, so
// serving nodes build record entries with exactly the simulator's rule.
type KeyMapper struct{ m keyMapper }

// BuildKeyMappers derives the per-level key mappers from coefficient bounds.
func BuildKeyMappers(bounds []Bounds) []KeyMapper {
	ms := buildMappers(bounds)
	out := make([]KeyMapper, len(ms))
	for i, m := range ms {
		out[i] = KeyMapper{m}
	}
	return out
}

// MapPoint maps a subspace vector into the key space.
func (k KeyMapper) MapPoint(p []float64) []float64 { return k.m.mapPoint(p) }

// MapRadius converts a subspace radius to key-space units.
func (k KeyMapper) MapRadius(r float64) float64 { return k.m.mapRadius(r) }

// EntryRadius is the radius a published record carries: the mapped radius
// plus the conservative boundary slack every publish path applies.
func (k KeyMapper) EntryRadius(r float64) float64 { return slacken(k.m.mapRadius(r)) }

// StreamPublisher bundles the mutable publisher-side state the kernel
// operates on. The simulator builds one per StreamInsert around its
// peerState; a live node keeps one alive across Publish RPCs. Published and
// PubSeqs are mutated in place (and replaced wholesale on re-cluster), so
// callers must read them back after Insert.
type StreamPublisher struct {
	Peer            int
	Convention      wavelet.Convention
	ClustersPerPeer int // K for periodic re-clustering
	Mappers         []KeyMapper
	Published       [][]ClusterRef
	PubSeqs         [][]int
	State           *StreamState
}

// Insert runs the kernel for one item (already appended to the publisher's
// store st) and returns the ordered record deltas to announce. Per level, the
// item joins the nearest published cluster by centroid distance (ties to the
// lowest index): within the radius it is absorbed (count bump), within
// GrowSlack of the radius the cluster grows to cover it, and otherwise it
// founds a new singleton cluster. Every ReclusterEvery-th insert instead
// rebuilds the whole clustering from st. Each path announces only the
// changed records — one upsert per level in the steady state.
func (sp *StreamPublisher) Insert(item []float64, st *store.Store) []StreamDelta {
	sp.State.inserts++
	if re := sp.State.tuning.ReclusterEvery; re > 0 && sp.State.inserts >= re {
		return sp.recluster(st)
	}
	dec := wavelet.Decompose(item, sp.Convention)
	var deltas []StreamDelta
	for l := range sp.Published {
		refs := sp.Published[l]
		coeff := dec.Subspace(l)
		best, bestD := -1, 0.0
		for i := range refs {
			if d := vec.Dist(coeff, refs[i].Center); best < 0 || d < bestD {
				best, bestD = i, d
			}
		}
		switch {
		case best >= 0 && bestD <= refs[best].Radius:
			refs[best].Items++
			deltas = append(deltas, sp.upsertDelta(l, best, false))
		case best >= 0 && refs[best].Radius > 0 && bestD <= sp.State.tuning.GrowSlack*refs[best].Radius:
			refs[best].Radius = bestD
			refs[best].Items++
			deltas = append(deltas, sp.upsertDelta(l, best, false))
		default:
			idx := sp.State.nextIdx[l]
			sp.State.nextIdx[l]++
			sp.Published[l] = append(refs, ClusterRef{
				Peer:   sp.Peer,
				Level:  l,
				Index:  len(refs),
				Center: append([]float64(nil), coeff...),
				Items:  1,
			})
			sp.PubSeqs[l] = append(sp.PubSeqs[l], streamSeq(sp.Peer, l, sp.State.epoch, idx))
			deltas = append(deltas, sp.upsertDelta(l, len(sp.Published[l])-1, false))
		}
	}
	return deltas
}

// recluster retires every published record, re-runs the per-level k-means
// over the full store under a fresh epoch, and announces the new records.
func (sp *StreamPublisher) recluster(st *store.Store) []StreamDelta {
	var deltas []StreamDelta
	for l := range sp.Published {
		for i := range sp.Published[l] {
			deltas = append(deltas, sp.upsertDelta(l, i, true))
		}
	}
	sp.State.epoch++
	sp.State.inserts = 0
	rng := rand.New(rand.NewSource(reclusterSeed(sp.Peer, sp.State.epoch)))
	decs := wavelet.DecomposeAll(st.Rows(), sp.Convention)
	levels := len(sp.Published)
	pub := make([][]ClusterRef, levels)
	seqs := make([][]int, levels)
	for l := 0; l < levels; l++ {
		coeffs := wavelet.SubspaceMatrix(decs, l)
		res := cluster.KMeans(coeffs, cluster.Config{K: sp.ClustersPerPeer, Rng: rng})
		for idx, c := range res.Clusters {
			pub[l] = append(pub[l], ClusterRef{
				Peer:   sp.Peer,
				Level:  l,
				Index:  idx,
				Center: c.Centroid,
				Radius: c.Radius,
				Items:  c.Count,
			})
			seqs[l] = append(seqs[l], streamSeq(sp.Peer, l, sp.State.epoch, idx))
		}
		sp.State.nextIdx[l] = len(res.Clusters)
	}
	sp.Published, sp.PubSeqs = pub, seqs
	for l := range pub {
		for i := range pub[l] {
			deltas = append(deltas, sp.upsertDelta(l, i, false))
		}
	}
	return deltas
}

// upsertDelta snapshots published[l][i] as a record delta.
func (sp *StreamPublisher) upsertDelta(l, i int, del bool) StreamDelta {
	ref := sp.Published[l][i]
	return StreamDelta{Level: l, Del: del, Rec: route.RecordView{
		Seq: sp.PubSeqs[l][i],
		Entry: overlay.Entry{
			Key:     sp.Mappers[l].MapPoint(ref.Center),
			Radius:  sp.Mappers[l].EntryRadius(ref.Radius),
			Payload: ref,
		},
	}}
}

// SetStreamTuning installs the kernel tuning used by subsequent StreamInsert
// calls for peers that have not started streaming yet.
func (s *System) SetStreamTuning(t StreamTuning) { s.streamTuning = t }

// StreamInsert adds an item to peer p after publication, like PostInsert, but
// keeps the overlays fresh: the streaming kernel updates p's published
// summaries in place and the resulting record deltas are applied to every
// level's overlay (which must implement overlay.StreamUpdater). Returns the
// deltas announced and the overlay hops they consumed — the simulator oracle
// a live node's store_rec announcements are proven against.
func (s *System) StreamInsert(p, id int, item []float64) ([]StreamDelta, int) {
	if len(item) != s.cfg.Dim {
		panic(fmt.Sprintf("core: item dim %d, want %d", len(item), s.cfg.Dim))
	}
	s.requireBounds()
	ps := s.peers[p]
	if ps.published == nil {
		panic(fmt.Sprintf("core: peer %d has not published; StreamInsert needs a base clustering", p))
	}
	if ps.stream == nil {
		ps.stream = NewStreamState(s.streamTuning, s.cfg.Levels)
	}
	ps.store.Append(id, item)
	sp := &StreamPublisher{
		Peer:            p,
		Convention:      s.cfg.Convention,
		ClustersPerPeer: s.cfg.ClustersPerPeer,
		Mappers:         BuildKeyMappers(s.bounds),
		Published:       ps.published,
		PubSeqs:         ps.pubSeqs,
		State:           ps.stream,
	}
	deltas := sp.Insert(item, ps.store)
	ps.published, ps.pubSeqs = sp.Published, sp.PubSeqs
	hops := 0
	for _, d := range deltas {
		up, ok := s.overlays[d.Level].(overlay.StreamUpdater)
		if !ok {
			panic(fmt.Sprintf("core: level %d overlay does not support streaming publish", d.Level))
		}
		if d.Del {
			hops += up.DeleteSphere(p, d.Rec.Seq, d.Rec.Entry)
		} else {
			hops += up.UpsertSphere(p, d.Rec.Seq, d.Rec.Entry)
		}
	}
	return deltas, hops
}
