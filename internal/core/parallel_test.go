package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hyperm/internal/dataset"
)

// buildSystem constructs an unpublished system over a fixed ALOI-substitute
// corpus with the given parallelism. Everything else (data, overlay seeds,
// clustering seeds) depends only on seed, so two calls with different
// parallelism must yield byte-identical systems after publication.
func buildSystem(t *testing.T, seed int64, parallelism int) (*System, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data, _ := dataset.ALOI(dataset.ALOIConfig{Objects: 24, Views: 6, Bins: 32}, rng)
	sys, err := NewSystem(Config{
		Peers:           8,
		Dim:             32,
		Levels:          4,
		ClustersPerPeer: 4,
		Factory:         canFactory(seed),
		Rng:             rand.New(rand.NewSource(seed + 1)),
		Parallelism:     parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range data {
		sys.AddPeerData(i%8, []int{i}, [][]float64{x})
	}
	return sys, data
}

// The tentpole determinism guarantee: Prepare/PublishAll with Parallelism 1
// and Parallelism 8 must produce identical bounds, summaries, hop counts,
// and query results — for several seeds, so the equality is not a
// coincidence of one RNG stream.
func TestPublishSerialParallelIdentical(t *testing.T) {
	for _, seed := range []int64{3, 17, 99, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			serial, data := buildSystem(t, seed, 1)
			par, _ := buildSystem(t, seed, 8)

			serial.DeriveBounds()
			par.DeriveBounds()
			if !reflect.DeepEqual(serial.bounds, par.bounds) {
				t.Fatalf("DeriveBounds diverged:\nserial %v\nparallel %v", serial.bounds, par.bounds)
			}

			stS := serial.PublishAll()
			stP := par.PublishAll()
			if !reflect.DeepEqual(stS, stP) {
				t.Fatalf("PublishAll stats diverged:\nserial %+v\nparallel %+v", stS, stP)
			}

			for p := 0; p < 8; p++ {
				for l := 0; l < 4; l++ {
					cs, cp := serial.PublishedClusters(p, l), par.PublishedClusters(p, l)
					if !reflect.DeepEqual(cs, cp) {
						t.Fatalf("peer %d level %d summaries diverged:\nserial %v\nparallel %v", p, l, cs, cp)
					}
				}
			}

			qrng := rand.New(rand.NewSource(seed + 2))
			for trial := 0; trial < 10; trial++ {
				q := data[qrng.Intn(len(data))]
				eps := 0.02 + qrng.Float64()*0.1
				rs := serial.RangeQuery(0, q, eps, RangeOptions{})
				rp := par.RangeQuery(0, q, eps, RangeOptions{})
				if !reflect.DeepEqual(rs, rp) {
					t.Fatalf("trial %d: range results diverged:\nserial %+v\nparallel %+v", trial, rs, rp)
				}
				ks := serial.KNNQuery(0, q, 8, KNNOptions{})
				kp := par.KNNQuery(0, q, 8, KNNOptions{})
				if !reflect.DeepEqual(ks, kp) {
					t.Fatalf("trial %d: knn results diverged:\nserial %+v\nparallel %+v", trial, ks, kp)
				}
			}
		})
	}
}

// Publishing peers one at a time must be exactly equivalent to PublishAll:
// the per-peer clustering seeds come from the same serial draw order.
func TestPublishPeerByPeerMatchesPublishAll(t *testing.T) {
	const seed = 7
	all, _ := buildSystem(t, seed, 0)
	oneByOne, _ := buildSystem(t, seed, 4)
	all.DeriveBounds()
	oneByOne.DeriveBounds()

	stAll := all.PublishAll()
	sum := PublishStats{HopsPerLevel: make([]int, 4)}
	for p := 0; p < 8; p++ {
		st := oneByOne.PublishPeer(p)
		sum.ClustersPublished += st.ClustersPublished
		sum.Hops += st.Hops
		for l, h := range st.HopsPerLevel {
			sum.HopsPerLevel[l] += h
		}
	}
	if !reflect.DeepEqual(stAll, sum) {
		t.Fatalf("stats diverged:\nPublishAll %+v\nper-peer   %+v", stAll, sum)
	}
	for p := 0; p < 8; p++ {
		for l := 0; l < 4; l++ {
			if !reflect.DeepEqual(all.PublishedClusters(p, l), oneByOne.PublishedClusters(p, l)) {
				t.Fatalf("peer %d level %d summaries diverged", p, l)
			}
		}
	}
}

// Parallel publication must preserve the paper's retrieval guarantee, not
// just internal equality: full-budget range queries keep recall 1.0.
func TestParallelPublishKeepsNoFalseDismissals(t *testing.T) {
	sys, data := buildSystem(t, 21, 8)
	sys.DeriveBounds()
	sys.PublishAll()
	qrng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		q := data[qrng.Intn(len(data))]
		res := sys.RangeQuery(0, q, 0.05, RangeOptions{})
		found := false
		for _, id := range res.Items {
			if data[id] != nil {
				found = true
				break
			}
		}
		if len(res.Items) == 0 || !found {
			t.Fatalf("trial %d: parallel-published system lost items: %v", trial, res.Items)
		}
	}
}

// Config validation must reject a negative Parallelism.
func TestNegativeParallelismRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, err := NewSystem(Config{Peers: 2, Dim: 8, Levels: 2, ClustersPerPeer: 1,
		Factory: canFactory(1), Rng: rng, Parallelism: -1})
	if err == nil {
		t.Fatal("negative Parallelism accepted")
	}
}
