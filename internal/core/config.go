// Package core implements Hyper-M itself (paper §3–4): the
// wavelet-decompose → per-level k-means → per-level overlay publication
// pipeline, the sphere-intersection peer relevance score (Eq 1) with the
// min-score aggregation policy, range queries with the no-false-dismissal
// thresholds of Theorems 3.1/4.1, and the k-nn heuristic of Figure 5 built
// on the Eq 5–8 radius estimation.
package core

import (
	"fmt"
	"math/rand"

	"hyperm/internal/overlay"
	"hyperm/internal/wavelet"
)

// Aggregation selects how per-level peer scores combine into the global
// score used to rank peers (§3.2).
type Aggregation int

const (
	// AggMin is the paper's policy: Score = min_l Score_l. It prunes
	// aggressively and yields no false dismissals for range queries.
	AggMin Aggregation = iota
	// AggSum sums the per-level scores (ablation).
	AggSum
	// AggMean averages the per-level scores (ablation).
	AggMean
)

// String names the policy.
func (a Aggregation) String() string {
	switch a {
	case AggMin:
		return "min"
	case AggSum:
		return "sum"
	case AggMean:
		return "mean"
	default:
		return fmt.Sprintf("Aggregation(%d)", int(a))
	}
}

// OverlayFactory builds the overlay for one wavelet level. keyDim is the
// dimensionality of that level's subspace, peers the network size. Hyper-M
// is overlay-agnostic (§5): the CAN factory is the paper's configuration,
// the ring factory exercises the independence claim.
type OverlayFactory func(level, keyDim, peers int) (overlay.Network, error)

// Config parameterizes a Hyper-M deployment.
type Config struct {
	// Peers is the number of devices in the MANET.
	Peers int
	// Dim is the data dimensionality; must be a power of two.
	Dim int
	// Levels is the number of wavelet subspaces (and overlays) used:
	// level 0 is the approximation A, level l >= 1 is detail D_{l-1}.
	// The paper finds four levels to be the sweet spot (§6.1.1).
	Levels int
	// ClustersPerPeer is K_p, the number of k-means clusters each peer
	// publishes per level.
	ClustersPerPeer int
	// Convention selects the Haar normalization (default: the paper's
	// averaging convention).
	Convention wavelet.Convention
	// Aggregation selects the score-combination policy (default AggMin).
	Aggregation Aggregation
	// C is the k-nn over-fetch knob of Fig 5 line 8 (default 1; the paper
	// recommends values in [1,2]).
	C float64
	// Factory builds each level's overlay. Required.
	Factory OverlayFactory
	// Rng drives clustering and any stochastic tie-breaks. Required.
	//
	// The system never hands Rng to worker goroutines: parallel publication
	// draws one clustering seed per peer from it serially (in peer order)
	// and gives each peer a private rand.Rand derived from that seed, so
	// results are identical for every Parallelism setting.
	Rng *rand.Rand
	// Parallelism bounds the worker goroutines used for the embarrassingly
	// parallel per-peer math — wavelet decomposition and per-subspace
	// k-means during DeriveBounds/PublishAll. 0 (the default) uses
	// GOMAXPROCS; 1 forces fully serial execution. Overlay mutation is
	// always serialized, so every setting produces byte-identical systems
	// (see DESIGN.md "Concurrency model").
	Parallelism int
}

func (c Config) validate() error {
	if c.Peers < 1 {
		return fmt.Errorf("core: Peers must be >= 1, got %d", c.Peers)
	}
	if !wavelet.IsPow2(c.Dim) {
		return fmt.Errorf("core: Dim must be a power of two, got %d", c.Dim)
	}
	max := wavelet.NumSubspaces(c.Dim)
	if c.Levels < 1 || c.Levels > max {
		return fmt.Errorf("core: Levels must be in [1,%d] for Dim=%d, got %d", max, c.Dim, c.Levels)
	}
	if c.ClustersPerPeer < 1 {
		return fmt.Errorf("core: ClustersPerPeer must be >= 1, got %d", c.ClustersPerPeer)
	}
	if c.C < 0 {
		return fmt.Errorf("core: C must be positive, got %v", c.C)
	}
	if c.Factory == nil {
		return fmt.Errorf("core: Factory is required")
	}
	if c.Rng == nil {
		return fmt.Errorf("core: Rng is required")
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism must be >= 0, got %d", c.Parallelism)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 1
	}
	return c
}

// Bounds is the coefficient range of one wavelet level, used to map
// subspace coordinates into the overlay's unit key space.
type Bounds struct {
	Lo, Hi float64
}

// keyMapper translates a level's coefficients into the overlay key space
// [0,1)^m by a uniform affine map, and radii by the same scale. A uniform
// (per-level isotropic) scale keeps spheres spheres. Coordinates outside the
// bounds are clamped just inside the torus — harmless when bounds come from
// the data domain, and a documented distortion otherwise.
type keyMapper struct {
	lo, hi float64
}

// buildMappers derives the per-level key mappers from coefficient bounds —
// the one place the bounds→key-space rule lives, shared by the in-process
// System and engines rebuilt from serving snapshots.
func buildMappers(bounds []Bounds) []keyMapper {
	mappers := make([]keyMapper, len(bounds))
	for l, b := range bounds {
		if b.Hi <= b.Lo {
			// Degenerate level (all coefficients identical): widen minimally
			// so the mapper stays well defined.
			b.Hi = b.Lo + 1e-9
		}
		// 5% margin keeps query spheres slightly inside the torus seam.
		span := b.Hi - b.Lo
		mappers[l] = keyMapper{lo: b.Lo - 0.05*span, hi: b.Hi + 0.05*span}
	}
	return mappers
}

// mapCoord maps a single coefficient into [0, 1).
func (m keyMapper) mapCoord(c float64) float64 {
	span := m.hi - m.lo
	if span <= 0 {
		return 0
	}
	v := (c - m.lo) / span
	const margin = 1e-9 // keys must stay strictly below 1 on the torus
	if v < 0 {
		v = 0
	}
	if v > 1-margin {
		v = 1 - margin
	}
	return v
}

// mapPoint maps a subspace vector into the key space.
func (m keyMapper) mapPoint(p []float64) []float64 {
	out := make([]float64, len(p))
	for i, c := range p {
		out[i] = m.mapCoord(c)
	}
	return out
}

// mapRadius converts a subspace radius to key-space units. No upper cap is
// applied: a radius beyond the torus diameter simply reaches every zone.
func (m keyMapper) mapRadius(r float64) float64 {
	span := m.hi - m.lo
	if span <= 0 {
		return 0
	}
	return r / span
}

// slacken inflates a mapped radius by a tiny relative+absolute margin.
// A cluster's farthest member lies exactly at distance == radius, so after
// the affine key mapping the boundary comparison is decided by floating-
// point rounding; the slack makes the overlay-level candidate test
// conservatively inclusive. Over-inclusion is harmless: scoring re-evaluates
// every candidate exactly in subspace coordinates.
func slacken(r float64) float64 { return r + 1e-9*(1+r) }
