package core

import (
	"math/rand"
	"reflect"
	"testing"

	"hyperm/internal/cluster"
	"hyperm/internal/dataset"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
	"hyperm/internal/wavelet"
)

// The streaming-publish kernel's contract has three parts, each pinned here:
// the O(changed clusters) deltas are *sufficient* — replaying them alone
// reconstructs the publisher's full record set (TestStreamDeltasReconstruct);
// the kernel is deterministic across independently built substrates
// (TestStreamDeterminism) and collapses to the batch clustering on re-cluster
// (TestStreamReclusterMatchesBatch); and unlike PostInsert it keeps streamed
// items findable (TestStreamInsertKeepsItemsFindable — the Fig 10c fix).

// streamTestSystem builds a published system over part of an ALOI-like corpus
// and returns the held-out remainder for streaming.
func streamTestSystem(t *testing.T, seed int64) (*System, [][]float64, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data, _ := dataset.ALOI(dataset.ALOIConfig{Objects: 24, Views: 8, Bins: 32}, rng)
	peers := 8
	pre, post := data[:144], data[144:]
	sys, err := NewSystem(Config{
		Peers: peers, Dim: 32, Levels: 3, ClustersPerPeer: 4,
		Factory: canFactory(seed), Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range pre {
		sys.AddPeerData(i%peers, []int{i}, [][]float64{x})
	}
	sys.DeriveBounds()
	sys.PublishAll()
	return sys, pre, post
}

// expectedRecords derives the full record set a publisher's current published
// snapshot implies — the state the stream deltas must be able to reconstruct.
func expectedRecords(s *System, p int) []map[int]route.RecordView {
	ps := s.peers[p]
	mappers := BuildKeyMappers(s.bounds)
	out := make([]map[int]route.RecordView, len(ps.published))
	for l := range ps.published {
		out[l] = make(map[int]route.RecordView)
		for i, ref := range ps.published[l] {
			out[l][ps.pubSeqs[l][i]] = route.RecordView{
				Seq: ps.pubSeqs[l][i],
				Entry: overlay.Entry{
					Key:     mappers[l].MapPoint(ref.Center),
					Radius:  mappers[l].EntryRadius(ref.Radius),
					Payload: ref,
				},
			}
		}
	}
	return out
}

// TestStreamDeltasReconstruct replays every delta into a shadow record store
// and checks, after each insert, that the shadow equals the record set the
// publisher's snapshot implies — i.e. the O(changed clusters) deltas carry all
// the information a remote substrate needs. It also pins the steady-state
// payload (exactly one upsert per level outside re-cluster rounds) and that
// the sweep exercised every kernel branch.
func TestStreamDeltasReconstruct(t *testing.T) {
	sys, pre, post := streamTestSystem(t, 23)
	sys.SetStreamTuning(StreamTuning{ReclusterEvery: 10})
	const p = 2

	shadow := make([]map[int]route.RecordView, sys.cfg.Levels)
	for l := range shadow {
		shadow[l] = make(map[int]route.RecordView)
	}
	for l, m := range expectedRecords(sys, p) {
		for seq, rec := range m {
			shadow[l][seq] = rec
		}
	}

	rng := rand.New(rand.NewSource(24))
	var absorbs, grows, splits, dels int
	for i := 0; i < 30; i++ {
		// Alternate far-out corpus items (splits) with repeats of already-held
		// items (distance 0 → guaranteed absorb).
		var item []float64
		if i%3 == 0 {
			item = pre[(2+8*rng.Intn(len(pre)/8))%len(pre)]
		} else {
			item = post[rng.Intn(len(post))]
		}
		deltas, hops := sys.StreamInsert(p, 10_000+i, item)
		if hops < 0 {
			t.Fatalf("insert %d: negative hop count %d", i, hops)
		}
		recluster := false
		for _, d := range deltas {
			if d.Del {
				recluster = true
			}
		}
		if !recluster && len(deltas) != sys.cfg.Levels {
			t.Fatalf("insert %d: %d deltas outside a re-cluster, want one per level (%d)",
				i, len(deltas), sys.cfg.Levels)
		}
		for _, d := range deltas {
			if d.Del {
				dels++
				if _, ok := shadow[d.Level][d.Rec.Seq]; !ok {
					t.Fatalf("insert %d: delete for unknown seq %d", i, d.Rec.Seq)
				}
				delete(shadow[d.Level], d.Rec.Seq)
				continue
			}
			if prev, ok := shadow[d.Level][d.Rec.Seq]; !ok {
				splits++
			} else if prev.Entry.Radius != d.Rec.Entry.Radius {
				grows++
			} else {
				absorbs++
			}
			shadow[d.Level][d.Rec.Seq] = d.Rec
		}
		if want := expectedRecords(sys, p); !reflect.DeepEqual(shadow, want) {
			t.Fatalf("insert %d: delta replay diverged from published snapshot", i)
		}
	}
	t.Logf("branch coverage: %d absorbs, %d grows, %d splits, %d deletes", absorbs, grows, splits, dels)
	if absorbs == 0 || splits == 0 || dels == 0 {
		t.Fatalf("sweep missed a kernel branch (absorbs=%d splits=%d dels=%d)", absorbs, splits, dels)
	}
}

// TestStreamDeterminism streams the same insert sequence into two
// independently built systems and requires identical deltas at every step and
// identical query answers afterwards — the property that lets a live cluster
// use the simulator as a byte-level oracle.
func TestStreamDeterminism(t *testing.T) {
	sysA, _, postA := streamTestSystem(t, 31)
	sysB, _, postB := streamTestSystem(t, 31)
	sysA.SetStreamTuning(StreamTuning{ReclusterEvery: 6})
	sysB.SetStreamTuning(StreamTuning{ReclusterEvery: 6})
	if !reflect.DeepEqual(postA, postB) {
		t.Fatal("seeded corpus generation diverged")
	}
	for i, item := range postA[:15] {
		p := i % 4
		dA, hA := sysA.StreamInsert(p, 20_000+i, item)
		dB, hB := sysB.StreamInsert(p, 20_000+i, item)
		if hA != hB {
			t.Fatalf("insert %d: hops %d vs %d", i, hA, hB)
		}
		if !reflect.DeepEqual(dA, dB) {
			t.Fatalf("insert %d: deltas diverged between identical systems", i)
		}
	}
	for i, item := range postA[:15] {
		rA := sysA.RangeQuery(1, item, 0.05, RangeOptions{})
		rB := sysB.RangeQuery(1, item, 0.05, RangeOptions{})
		if !reflect.DeepEqual(rA, rB) {
			t.Fatalf("query %d: range answers diverged", i)
		}
		kA := sysA.KNNQuery(1, item, 5, KNNOptions{})
		kB := sysB.KNNQuery(1, item, 5, KNNOptions{})
		if !reflect.DeepEqual(kA, kB) {
			t.Fatalf("query %d: knn answers diverged", i)
		}
	}
}

// TestStreamReclusterMatchesBatch forces a re-cluster and checks the
// resulting clustering equals running the batch pipeline (decompose + k-means
// with the epoch's deterministic seed) directly over the peer's store: the
// periodic collapse really does restore batch-publish quality, not an
// approximation of it.
func TestStreamReclusterMatchesBatch(t *testing.T) {
	sys, _, post := streamTestSystem(t, 47)
	const every = 5
	sys.SetStreamTuning(StreamTuning{ReclusterEvery: every})
	const p = 1
	for i := 0; i < every; i++ {
		sys.StreamInsert(p, 30_000+i, post[i])
	}
	ps := sys.peers[p]
	if got := ps.stream.epoch; got != 1 {
		t.Fatalf("epoch = %d after %d inserts with ReclusterEvery=%d, want 1", got, every, every)
	}

	rng := rand.New(rand.NewSource(reclusterSeed(p, 1)))
	decs := wavelet.DecomposeAll(ps.store.Rows(), sys.cfg.Convention)
	for l := 0; l < sys.cfg.Levels; l++ {
		coeffs := wavelet.SubspaceMatrix(decs, l)
		res := cluster.KMeans(coeffs, cluster.Config{K: sys.cfg.ClustersPerPeer, Rng: rng})
		if len(res.Clusters) != len(ps.published[l]) {
			t.Fatalf("level %d: %d clusters, batch pipeline gives %d", l, len(ps.published[l]), len(res.Clusters))
		}
		for idx, c := range res.Clusters {
			ref := ps.published[l][idx]
			if !reflect.DeepEqual(ref.Center, c.Centroid) || ref.Radius != c.Radius || ref.Items != c.Count {
				t.Fatalf("level %d cluster %d: re-cluster diverged from batch pipeline", l, idx)
			}
			if want := streamSeq(p, l, 1, idx); ps.pubSeqs[l][idx] != want {
				t.Fatalf("level %d cluster %d: seq %d, want %d", l, idx, ps.pubSeqs[l][idx], want)
			}
		}
	}
}

// TestStreamInsertKeepsItemsFindable is the Fig 10c contrast: items streamed
// in after publication are found by point queries (their cluster spheres were
// updated and announced), while pre-existing items stay findable — where
// PostInsert provably lets the same corpus go stale
// (TestPostInsertDegradesGracefully documents the misses).
func TestStreamInsertKeepsItemsFindable(t *testing.T) {
	sys, pre, post := streamTestSystem(t, 53)
	sys.SetStreamTuning(StreamTuning{ReclusterEvery: 16})
	for j, x := range post {
		sys.StreamInsert(j%4, len(pre)+j, x)
	}
	for j, x := range post {
		got := sys.RangeQuery(5, x, 0, RangeOptions{})
		found := false
		for _, id := range got.Items {
			if id == len(pre)+j {
				found = true
			}
		}
		if !found {
			t.Fatalf("streamed item %d not found by its own point query", len(pre)+j)
		}
	}
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 10; trial++ {
		id := rng.Intn(len(pre))
		got := sys.RangeQuery(6, pre[id], 0, RangeOptions{})
		found := false
		for _, g := range got.Items {
			if g == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("pre-existing item %d lost after streaming", id)
		}
	}
}
