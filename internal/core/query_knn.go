package core

import (
	"fmt"
	"math"
	"sort"

	"hyperm/internal/geometry"
	"hyperm/internal/vec"
	"hyperm/internal/wavelet"
)

// KNNOptions tunes a k-nearest-neighbor query.
type KNNOptions struct {
	// C overrides the configured over-fetch knob (Fig 5 line 8). Zero keeps
	// the system default. Values in [1,2] trade bandwidth for recall (§6.1).
	C float64
	// MaxPeers caps the number of peers contacted; zero uses the Fig 5
	// policy (smallest top-score prefix whose expected item mass covers k).
	MaxPeers int
}

// KNNResult is the outcome of a distributed k-nn query.
type KNNResult struct {
	// Items are the global ids of every fetched item, ordered by ascending
	// true distance to the query (the paper's result.sort(), Fig 5 line 10).
	// The caller takes the first k as the answer; the full set is retained
	// so precision can be measured against the fetch volume.
	Items []int
	// Scores lists candidate peers by descending aggregated relevance.
	Scores []PeerScore
	// EpsPerLevel records the per-level range radii estimated from Eq 8.
	EpsPerLevel []float64
	// PeersContacted is how many peers were asked for data.
	PeersContacted int
	// OverlayHops is the total overlay cost of the scoring phase.
	OverlayHops int
}

// KNNQuery implements the heuristic of Figure 5: per level, estimate the
// range radius that is expected to capture k items by inverting Eq 8 over
// the reachable clusters, run the per-level range queries, merge peer
// scores, and fetch a score-proportional number of items from the top peers.
func (s *System) KNNQuery(from int, q []float64, k int, opts KNNOptions) KNNResult {
	if len(q) != s.cfg.Dim {
		panic(fmt.Sprintf("core: query dim %d, want %d", len(q), s.cfg.Dim))
	}
	if k < 1 {
		panic("core: k must be >= 1")
	}
	if s.mappers == nil {
		panic("core: bounds not installed; call DeriveBounds or SetBounds first")
	}
	if s.peers[from].dead {
		panic(fmt.Sprintf("core: peer %d has left the network and cannot query", from))
	}
	c := opts.C
	if c == 0 {
		c = s.cfg.C
	}

	dec := wavelet.Decompose(q, s.cfg.Convention)
	scores := make(map[int][]float64)
	res := KNNResult{EpsPerLevel: make([]float64, s.cfg.Levels)}

	// Steps 1–3: per-level radius estimation and range queries.
	for l := 0; l < s.cfg.Levels; l++ {
		qc := dec.Subspace(l)
		m := wavelet.SubspaceDim(l)
		span := s.mappers[l].hi - s.mappers[l].lo
		epsL, refs, hops := s.levelEps(from, l, m, qc, float64(k), span)
		res.OverlayHops += hops
		res.EpsPerLevel[l] = epsL
		for _, ref := range refs {
			frac := clusterFraction(m, ref, qc, epsL)
			if frac <= 0 {
				continue
			}
			perLevel, ok := scores[ref.Peer]
			if !ok {
				perLevel = make([]float64, s.cfg.Levels)
				scores[ref.Peer] = perLevel
			}
			perLevel[l] += frac * float64(ref.Items)
		}
	}

	// Step 4: merge.
	res.Scores = sortScores(scores, s.cfg.Aggregation)
	if len(res.Scores) == 0 {
		return res
	}

	// Steps 5–6: choose P — the smallest score-ordered prefix whose summed
	// expected item mass reaches k — and the normalizing sum.
	p := 0
	var sum float64
	for p < len(res.Scores) && sum < float64(k) {
		sum += res.Scores[p].Score
		p++
	}
	if opts.MaxPeers > 0 && opts.MaxPeers < p {
		p = opts.MaxPeers
		sum = 0
		for _, ps := range res.Scores[:p] {
			sum += ps.Score
		}
	}
	if sum <= 0 {
		return res
	}

	// Steps 7–9: fetch a proportional share from each selected peer.
	var fetched []int
	for _, ps := range res.Scores[:p] {
		res.PeersContacted++
		peer := s.peers[ps.Peer]
		if peer.dead {
			continue // contact times out; the budget is still spent
		}
		want := int(math.Ceil(c * float64(k) * ps.Score / sum))
		if want < 1 {
			want = 1
		}
		fetched = append(fetched, peer.localKNN(q, want)...)
	}

	// Step 10: sort the merged result by true distance to the query.
	res.Items = s.sortByDistance(fetched, q)
	return res
}

// levelEps discovers the clusters reachable at level l and estimates the
// Eq 8 radius expected to yield k items. Discovery expands the overlay
// search radius geometrically until the expected item mass covers k (or the
// whole key space is swept); the Eq 8 inversion then runs on the discovered
// cluster set, which is a superset of the clusters reachable at the solved
// radius.
func (s *System) levelEps(from, l, m int, qc []float64, k, span float64) (float64, []ClusterRef, int) {
	key := s.mappers[l].mapPoint(qc)
	// Start at 5% of the coefficient span; stop once the search sphere can
	// cover the entire level space.
	r := 0.05 * span
	maxR := span * math.Sqrt(float64(m))
	totalHops := 0
	// Both scratch slices live across the widening iterations: each pass
	// resets them to length zero and refills, so one allocation (grown to the
	// largest discovery set) serves the whole geometric search instead of a
	// fresh sphere slice per widening step.
	var refs []ClusterRef
	var spheres []geometry.SphereAt
	for {
		entries, hops := s.overlays[l].SearchSphere(from, key, slacken(s.mappers[l].mapRadius(r)))
		totalHops += hops
		refs = refs[:0]
		spheres = spheres[:0]
		for _, e := range entries {
			ref := e.Payload.(ClusterRef)
			refs = append(refs, ref)
			spheres = append(spheres, geometry.SphereAt{
				Dist:   vec.Dist(qc, ref.Center),
				Radius: ref.Radius,
				Items:  ref.Items,
			})
		}
		if geometry.ExpectedCount(m, r, spheres) >= k || r >= maxR {
			eps := geometry.SolveEpsForCount(m, k, spheres)
			if eps > r && r < maxR {
				// Solver wants a bigger radius than we searched: widen once
				// more so scoring sees every cluster the radius can touch.
				r = eps
				continue
			}
			return eps, append([]ClusterRef(nil), refs...), totalHops
		}
		r *= 2
	}
}

// sortByDistance orders fetched item ids by true distance to q, resolving
// each id through the peer that returned it. Items are globally unique ids;
// duplicates (an id fetched from two peers cannot happen, but replicated
// harness use might) are removed.
func (s *System) sortByDistance(ids []int, q []float64) []int {
	type cand struct {
		id int
		d2 float64
	}
	lookup := s.itemLookup()
	seen := make(map[int]bool, len(ids))
	cands := make([]cand, 0, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if x, ok := lookup[id]; ok {
			cands = append(cands, cand{id: id, d2: vec.Dist2(q, x)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].id < cands[j].id
	})
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// itemLookup maps global item ids to vectors across all peers.
func (s *System) itemLookup() map[int][]float64 {
	out := make(map[int][]float64, s.TotalItems())
	for _, ps := range s.peers {
		for i, id := range ps.itemIDs {
			out[id] = ps.items[i]
		}
	}
	return out
}
