package core

import (
	"fmt"
)

// KNNOptions tunes a k-nearest-neighbor query.
type KNNOptions struct {
	// C overrides the configured over-fetch knob (Fig 5 line 8). Zero keeps
	// the system default. Values in [1,2] trade bandwidth for recall (§6.1).
	C float64
	// MaxPeers caps the number of peers contacted; zero uses the Fig 5
	// policy (smallest top-score prefix whose expected item mass covers k).
	MaxPeers int
}

// KNNResult is the outcome of a distributed k-nn query.
type KNNResult struct {
	// Items are the global ids of every fetched item, ordered by ascending
	// true distance to the query (the paper's result.sort(), Fig 5 line 10).
	// The caller takes the first k as the answer; the full set is retained
	// so precision can be measured against the fetch volume.
	Items []int
	// Scores lists candidate peers by descending aggregated relevance.
	Scores []PeerScore
	// EpsPerLevel records the per-level range radii estimated from Eq 8.
	EpsPerLevel []float64
	// PeersContacted is how many peers were asked for data.
	PeersContacted int
	// OverlayHops is the total overlay cost of the scoring phase.
	OverlayHops int
}

// KNNQuery implements the heuristic of Figure 5: per level, estimate the
// range radius that is expected to capture k items by inverting Eq 8 over
// the reachable clusters, run the per-level range queries, merge peer
// scores, and fetch a score-proportional number of items from the top peers.
// The protocol itself runs in the shared query Engine; this wrapper adds the
// simulation-side checks.
func (s *System) KNNQuery(from int, q []float64, k int, opts KNNOptions) KNNResult {
	s.requireBounds()
	if s.peers[from].dead {
		panic(fmt.Sprintf("core: peer %d has left the network and cannot query", from))
	}
	res, err := s.engine.KNNQuery(from, q, k, opts)
	if err != nil {
		// The in-memory backend never fails; an error here is a bug.
		panic(fmt.Sprintf("core: in-process k-nn query failed: %v", err))
	}
	return res
}

// itemLookup maps global item ids to vectors across all peers (test and
// diagnostics helper; the query path itself never needs global knowledge).
func (s *System) itemLookup() map[int][]float64 {
	out := make(map[int][]float64, s.TotalItems())
	for _, ps := range s.peers {
		for i, n := 0, ps.store.Len(); i < n; i++ {
			out[ps.store.ID(i)] = ps.store.Vec(i)
		}
	}
	return out
}
