package core

import (
	"fmt"
	"sort"

	"hyperm/internal/geometry"
	"hyperm/internal/vec"
	"hyperm/internal/wavelet"
)

// RangeOptions tunes a range query.
type RangeOptions struct {
	// MaxPeers caps how many of the top-scoring peers are contacted in the
	// retrieval phase. Zero contacts every peer with a positive aggregate
	// score (the no-false-dismissal setting); Figure 10a sweeps this cap.
	MaxPeers int
}

// RangeResult is the outcome of a distributed range query.
type RangeResult struct {
	// Items are the global ids of the retrieved items. For range queries
	// every returned item truly lies within the radius (precision 1.0 by
	// construction — contacted peers filter locally on the original
	// vectors, §6.1).
	Items []int
	// Scores lists candidate peers by descending aggregated relevance.
	Scores []PeerScore
	// PeersContacted is how many peers were asked for actual data.
	PeersContacted int
	// OverlayHops is the total overlay routing/flooding cost of the
	// scoring phase, across all levels.
	OverlayHops int
}

// RangeQuery answers "all items within eps of q" with the two-phase protocol
// of §4.1: translate the query into every wavelet subspace with the Theorem
// 3.1 radius scaling, score peers by sphere intersection (Eq 1), aggregate
// with the configured policy, then fetch and locally filter from the top
// peers. With AggMin and MaxPeers=0 the result has no false dismissals
// (Theorem 4.1).
func (s *System) RangeQuery(from int, q []float64, eps float64, opts RangeOptions) RangeResult {
	if len(q) != s.cfg.Dim {
		panic(fmt.Sprintf("core: query dim %d, want %d", len(q), s.cfg.Dim))
	}
	if eps < 0 {
		panic("core: negative query radius")
	}
	if s.mappers == nil {
		panic("core: bounds not installed; call DeriveBounds or SetBounds first")
	}
	if s.peers[from].dead {
		panic(fmt.Sprintf("core: peer %d has left the network and cannot query", from))
	}

	dec := wavelet.Decompose(q, s.cfg.Convention)
	scores := make(map[int][]float64)
	var res RangeResult

	for l := 0; l < s.cfg.Levels; l++ {
		qc := dec.Subspace(l)
		m := wavelet.SubspaceDim(l)
		epsL := eps * wavelet.RadiusScale(s.cfg.Convention, s.cfg.Dim, m)
		entries, hops := s.overlays[l].SearchSphere(from, s.mappers[l].mapPoint(qc), slacken(s.mappers[l].mapRadius(epsL)))
		res.OverlayHops += hops
		for _, e := range entries {
			ref := e.Payload.(ClusterRef)
			frac := clusterFraction(m, ref, qc, epsL)
			if frac <= 0 {
				continue
			}
			perLevel, ok := scores[ref.Peer]
			if !ok {
				perLevel = make([]float64, s.cfg.Levels)
				scores[ref.Peer] = perLevel
			}
			perLevel[l] += frac * float64(ref.Items)
		}
	}

	res.Scores = sortScores(scores, s.cfg.Aggregation)
	limit := len(res.Scores)
	if opts.MaxPeers > 0 && opts.MaxPeers < limit {
		limit = opts.MaxPeers
	}
	for _, ps := range res.Scores[:limit] {
		res.PeersContacted++
		peer := s.peers[ps.Peer]
		if peer.dead {
			continue // contact times out; the budget is still spent
		}
		res.Items = append(res.Items, peer.localRange(q, eps)...)
	}
	sort.Ints(res.Items)
	return res
}

// clusterFraction is the Eq 1 volume-intersection term for one cluster, in
// the exact subspace coordinates carried by the payload. A zero-radius query
// (point query) degenerates to sphere membership.
func clusterFraction(dim int, ref ClusterRef, qc []float64, epsL float64) float64 {
	dist := vec.Dist(qc, ref.Center)
	if epsL == 0 {
		// Point query: membership test with a hair of slack — the farthest
		// cluster member sits exactly on the boundary.
		if dist <= ref.Radius+1e-9*(1+ref.Radius) {
			return 1
		}
		return 0
	}
	return geometry.IntersectFraction(dim, ref.Radius, epsL, dist)
}

// localRange is the second query phase on a contacted peer: an exact scan of
// its locally stored original vectors.
func (ps *peerState) localRange(q []float64, eps float64) []int {
	var out []int
	eps2 := eps * eps
	for i, x := range ps.items {
		if vec.Dist2(q, x) <= eps2 {
			out = append(out, ps.itemIDs[i])
		}
	}
	return out
}

// localKNN returns the ids of the k locally stored items closest to q,
// ordered by ascending distance.
func (ps *peerState) localKNN(q []float64, k int) []int {
	if k <= 0 || len(ps.items) == 0 {
		return nil
	}
	type cand struct {
		id int
		d2 float64
	}
	cands := make([]cand, len(ps.items))
	for i, x := range ps.items {
		cands[i] = cand{id: ps.itemIDs[i], d2: vec.Dist2(q, x)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}
