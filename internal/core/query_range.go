package core

import (
	"fmt"

	"hyperm/internal/geometry"
	"hyperm/internal/vec"
)

// RangeOptions tunes a range query.
type RangeOptions struct {
	// MaxPeers caps how many of the top-scoring peers are contacted in the
	// retrieval phase. Zero contacts every peer with a positive aggregate
	// score (the no-false-dismissal setting); Figure 10a sweeps this cap.
	MaxPeers int
}

// RangeResult is the outcome of a distributed range query.
type RangeResult struct {
	// Items are the global ids of the retrieved items. For range queries
	// every returned item truly lies within the radius (precision 1.0 by
	// construction — contacted peers filter locally on the original
	// vectors, §6.1).
	Items []int
	// Scores lists candidate peers by descending aggregated relevance.
	Scores []PeerScore
	// PeersContacted is how many peers were asked for actual data.
	PeersContacted int
	// OverlayHops is the total overlay routing/flooding cost of the
	// scoring phase, across all levels.
	OverlayHops int
}

// RangeQuery answers "all items within eps of q" with the two-phase protocol
// of §4.1: translate the query into every wavelet subspace with the Theorem
// 3.1 radius scaling, score peers by sphere intersection (Eq 1), aggregate
// with the configured policy, then fetch and locally filter from the top
// peers. With AggMin and MaxPeers=0 the result has no false dismissals
// (Theorem 4.1). The protocol itself runs in the shared query Engine; this
// wrapper adds the simulation-side checks.
func (s *System) RangeQuery(from int, q []float64, eps float64, opts RangeOptions) RangeResult {
	s.requireBounds()
	if s.peers[from].dead {
		panic(fmt.Sprintf("core: peer %d has left the network and cannot query", from))
	}
	res, err := s.engine.RangeQuery(from, q, eps, opts)
	if err != nil {
		// The in-memory backend never fails; an error here is a bug.
		panic(fmt.Sprintf("core: in-process range query failed: %v", err))
	}
	return res
}

// clusterFraction is the Eq 1 volume-intersection term for one cluster, in
// the exact subspace coordinates carried by the payload. A zero-radius query
// (point query) degenerates to sphere membership.
func clusterFraction(dim int, ref ClusterRef, qc []float64, epsL float64) float64 {
	dist := vec.Dist(qc, ref.Center)
	if epsL == 0 {
		// Point query: membership test with a hair of slack — the farthest
		// cluster member sits exactly on the boundary.
		if dist <= ref.Radius+1e-9*(1+ref.Radius) {
			return 1
		}
		return 0
	}
	return geometry.IntersectFraction(dim, ref.Radius, epsL, dist)
}
