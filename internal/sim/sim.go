// Package sim provides the discrete-event simulation engine underneath the
// peer-to-peer experiments. The paper (§5.2) describes its testbed as "a
// scheduler class and an event queue: every message generated in the network
// is sent to the event queue; periodically, parallel execution is simulated
// by emptying the queue" — this package is that scheduler.
//
// Time is a dimensionless float64 (interpreted as seconds by the experiment
// harness). Events scheduled for the same instant fire in submission order,
// which keeps runs fully deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
)

// Engine is a deterministic discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now       float64
	seq       uint64
	queue     eventHeap
	processed int
}

type event struct {
	at  float64
	seq uint64 // tie-break: FIFO among same-time events
	do  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues do to run delay time units after the current time.
// A negative delay panics: the simulation cannot travel into the past.
func (e *Engine) Schedule(delay float64, do func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.seq++
	heap.Push(&e.queue, event{at: e.now + delay, seq: e.seq, do: do})
}

// At enqueues do to run at absolute time t (>= Now).
func (e *Engine) At(t float64, do func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: time %v is in the past (now %v)", t, e.now))
	}
	e.Schedule(t-e.now, do)
}

// Step executes the earliest pending event, advancing the clock to it.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.processed++
	ev.do()
	return true
}

// Run drains the queue (including events scheduled by events) and returns
// the number of events executed by this call.
func (e *Engine) Run() int {
	start := e.processed
	for e.Step() {
	}
	return e.processed - start
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. It returns the number of events executed by this call.
func (e *Engine) RunUntil(t float64) int {
	start := e.processed
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
	return e.processed - start
}

// Counters is a set of named monotonically accumulating metrics
// (hops, messages, bytes, joules, …) shared by the simulation layers and the
// serving runtime's RPC accounting. The zero value is ready to use, and all
// methods are safe for concurrent use — a serving node counts RPCs from many
// handler goroutines and α-parallel lookup workers at once. Counters must
// not be copied after first use.
type Counters struct {
	mu   sync.Mutex
	vals map[string]float64
}

// Add accumulates delta into the named counter.
func (c *Counters) Add(name string, delta float64) {
	c.mu.Lock()
	if c.vals == nil {
		c.vals = make(map[string]float64)
	}
	c.vals[name] += delta
	c.mu.Unlock()
}

// Get returns the current value of the named counter (zero if never added).
func (c *Counters) Get(name string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Merge accumulates every counter from a Snapshot (or any name→value map)
// into this set — how a load harness folds per-node serving counters into one
// cluster-wide view.
func (c *Counters) Merge(vals map[string]float64) {
	c.mu.Lock()
	if c.vals == nil {
		c.vals = make(map[string]float64, len(vals))
	}
	for k, v := range vals {
		c.vals[k] += v
	}
	c.mu.Unlock()
}

// Reset clears every counter.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.vals = make(map[string]float64)
	c.mu.Unlock()
}

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	names := make([]string, 0, len(c.vals))
	for n := range c.vals {
		names = append(names, n)
	}
	c.mu.Unlock()
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}
