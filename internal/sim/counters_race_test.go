package sim

import (
	"fmt"
	"sync"
	"testing"
)

// TestCountersConcurrentHammer drives Counters from many goroutines at once
// — the access pattern of a serving node counting RPCs from concurrent
// handlers and α-parallel lookup workers. Run under -race (make race covers
// this package) it proves the accounting is data-race free; the totals check
// proves no increments are lost.
func TestCountersConcurrentHammer(t *testing.T) {
	var c Counters
	const workers = 8
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := fmt.Sprintf("worker.%d", w)
			for i := 0; i < perWorker; i++ {
				c.Add("shared", 1)
				c.Add(mine, 1)
				// Concurrent readers race the writers on every code path.
				if i%64 == 0 {
					c.Get("shared")
					c.Snapshot()
					c.Names()
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := c.Get("shared"), float64(workers*perWorker); got != want {
		t.Fatalf("shared counter = %v, want %v (lost increments)", got, want)
	}
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("worker.%d", w)
		if got := c.Get(name); got != perWorker {
			t.Fatalf("%s = %v, want %d", name, got, perWorker)
		}
	}
	if got := len(c.Snapshot()); got != workers+1 {
		t.Fatalf("snapshot has %d counters, want %d", got, workers+1)
	}
}
