package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("execution order %v", got)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Errorf("same-time events not FIFO: %v", got)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(1, func() {
		e.Schedule(1, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Error("nested event did not fire")
	}
	if e.Now() != 2 {
		t.Errorf("Now = %v, want 2", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	n := e.RunUntil(2.5)
	if n != 2 {
		t.Errorf("RunUntil executed %d, want 2", n)
	}
	if e.Now() != 2.5 {
		t.Errorf("Now = %v, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(got) != 4 {
		t.Errorf("total events %d, want 4", len(got))
	}
}

func TestAt(t *testing.T) {
	var e Engine
	var at float64
	e.At(5, func() { at = e.Now() })
	e.Run()
	if at != 5 {
		t.Errorf("event ran at %v, want 5", at)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var e Engine
	e.Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	var e Engine
	e.Schedule(2, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(1, func() {})
}

func TestStepOnEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
	if e.Processed() != 0 {
		t.Error("nothing should have been processed")
	}
}

// Property: for any batch of random delays, events fire in nondecreasing
// time order and the clock ends at the max delay.
func TestPropEventOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		n := 1 + rng.Intn(50)
		var fired []float64
		maxDelay := 0.0
		for i := 0; i < n; i++ {
			d := rng.Float64() * 100
			if d > maxDelay {
				maxDelay = d
			}
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return e.Now() == maxDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	if c.Get("hops") != 0 {
		t.Error("unset counter should be zero")
	}
	c.Add("hops", 3)
	c.Add("hops", 2)
	c.Add("bytes", 100)
	if c.Get("hops") != 5 {
		t.Errorf("hops = %v, want 5", c.Get("hops"))
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "bytes" || names[1] != "hops" {
		t.Errorf("Names = %v", names)
	}
	snap := c.Snapshot()
	c.Add("hops", 1)
	if snap["hops"] != 5 {
		t.Error("Snapshot should be a copy")
	}
	c.Reset()
	if c.Get("hops") != 0 {
		t.Error("Reset should clear counters")
	}
}

func TestCountersMerge(t *testing.T) {
	var a, b Counters
	a.Add("cache.hit", 3)
	a.Add("rpc.can_search", 2)
	b.Add("cache.hit", 4)
	b.Add("cache.miss", 1)
	a.Merge(b.Snapshot())
	if got := a.Get("cache.hit"); got != 7 {
		t.Errorf("merged cache.hit = %v, want 7", got)
	}
	if got := a.Get("cache.miss"); got != 1 {
		t.Errorf("merged cache.miss = %v, want 1", got)
	}
	if got := a.Get("rpc.can_search"); got != 2 {
		t.Errorf("merged rpc.can_search = %v, want 2", got)
	}
	var zero Counters
	zero.Merge(b.Snapshot()) // zero-value receiver must lazily allocate
	if got := zero.Get("cache.hit"); got != 4 {
		t.Errorf("zero-value merge cache.hit = %v, want 4", got)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%17), func() {})
		}
		e.Run()
	}
}

// TestCountersResetReinitializes pins the regression where Reset left the
// map nil: a reset Counters must behave exactly like a fresh value —
// Snapshot/Names see an initialized (empty) state and subsequent Adds work
// without the lazy re-allocation a fresh zero value needs.
func TestCountersResetReinitializes(t *testing.T) {
	var c Counters
	c.Add("hops", 7)
	c.Reset()
	if got := c.Snapshot(); len(got) != 0 {
		t.Errorf("Snapshot after Reset = %v, want empty", got)
	}
	if got := c.Names(); len(got) != 0 {
		t.Errorf("Names after Reset = %v, want empty", got)
	}
	c.Add("hops", 2)
	c.Add("bytes", 1)
	if c.Get("hops") != 2 || c.Get("bytes") != 1 {
		t.Errorf("post-Reset adds: hops=%v bytes=%v", c.Get("hops"), c.Get("bytes"))
	}
}
