package benchio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type row struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	rows := []row{{Name: "a", Value: 1.5}, {Name: "b", Value: -2}}
	if err := Write(path, "x", rows); err != nil {
		t.Fatal(err)
	}
	var back []row
	env, err := Read(path, "x", &back)
	if err != nil {
		t.Fatal(err)
	}
	if env.Bench != "x" || env.Schema != Schema {
		t.Fatalf("envelope %+v", env)
	}
	if env.Env != CurrentEnv() || env.Env.GoVersion == "" || env.Env.GoMaxProcs < 1 || env.Env.NumCPU < 1 {
		t.Fatalf("environment stamp %+v", env.Env)
	}
	if len(back) != 2 || back[0] != rows[0] || back[1] != rows[1] {
		t.Fatalf("rows %+v", back)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"bench": "x"`, `"schema": 1`, `"rows"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("artifact missing %s:\n%s", want, raw)
		}
	}
	if !strings.HasSuffix(string(raw), "\n") {
		t.Error("artifact missing trailing newline")
	}
}

func TestAppendMergesRows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := Append(path, "x", []row{{Name: "a", Value: 1}}); err != nil {
		t.Fatal(err) // no prior artifact: creates fresh
	}
	if err := Append(path, "x", []row{{Name: "b", Value: 2}, {Name: "c", Value: 3}}); err != nil {
		t.Fatal(err)
	}
	var back []row
	if _, err := Read(path, "x", &back); err != nil {
		t.Fatal(err)
	}
	want := []row{{Name: "a", Value: 1}, {Name: "b", Value: 2}, {Name: "c", Value: 3}}
	if len(back) != len(want) {
		t.Fatalf("rows %+v, want %+v", back, want)
	}
	for i := range want {
		if back[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, back[i], want[i])
		}
	}
}

func TestReadRejectsMismatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	if err := Write(path, "x", []row{{Name: "a"}}); err != nil {
		t.Fatal(err)
	}
	var back []row
	if _, err := Read(path, "y", &back); err == nil {
		t.Error("wrong bench name accepted")
	}
	if _, err := Read(filepath.Join(dir, "absent.json"), "x", &back); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"bench":"x","schema":99,"rows":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bad, "x", &back); err == nil {
		t.Error("unknown schema accepted")
	}
}
