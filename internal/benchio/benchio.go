// Package benchio is the single writer (and reader) for the repository's
// BENCH_*.json artifacts. Every benchmark — publication throughput, kernel
// comparisons, the serving-runtime load harness — writes the same envelope:
//
//	{
//	  "bench": "<name>",
//	  "schema": 1,
//	  "rows": [ ... driver-specific row objects ... ]
//	}
//
// so downstream tooling can identify and version any artifact without
// guessing from the filename. Rows stay typed by their owning driver; the
// envelope is the only shared contract, and Schema is bumped on any
// incompatible change to it.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Schema is the current envelope schema version.
const Schema = 1

// Env records the execution environment a benchmark ran under, so numbers
// from different machines (or GOMAXPROCS settings — see the bench-serve
// -cpus knob) are never compared as if they were alike. Additive to the
// envelope, so Schema stays 1; readers of older artifacts see a zero Env.
type Env struct {
	// GoVersion is the toolchain that built the benchmark binary.
	GoVersion string `json:"go_version"`
	// GoMaxProcs is the scheduler's processor limit at write time — what a
	// -cpus override actually changed.
	GoMaxProcs int `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count.
	NumCPU int `json:"num_cpu"`
}

// CurrentEnv captures the writing process's environment.
func CurrentEnv() Env {
	return Env{GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
}

// Envelope is the common frame around every benchmark artifact.
type Envelope struct {
	// Bench names the producing benchmark ("publish", "kernels", "serve").
	Bench string `json:"bench"`
	// Schema is the envelope version the artifact was written with.
	Schema int `json:"schema"`
	// Env is the environment of the (last) writing process.
	Env Env `json:"env"`
	// Rows holds the driver-specific measurements.
	Rows json.RawMessage `json:"rows"`
}

// Write stores rows under the named bench's envelope at path, as indented
// JSON with a trailing newline.
func Write(path, bench string, rows any) error {
	rowData, err := json.Marshal(rows)
	if err != nil {
		return fmt.Errorf("benchio: encoding %s rows: %w", bench, err)
	}
	data, err := json.MarshalIndent(Envelope{Bench: bench, Schema: Schema, Env: CurrentEnv(), Rows: rowData}, "", "  ")
	if err != nil {
		return fmt.Errorf("benchio: encoding %s envelope: %w", bench, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Append merges rows into the artifact at path: if a valid envelope for the
// same bench already exists its rows are kept and the new ones appended after
// them; otherwise the file is created fresh. Rows are merged as raw JSON, so
// drivers can append rows measured under different configurations (a cached
// run after a baseline run) without re-producing the earlier ones.
func Append(path, bench string, rows any) error {
	newData, err := json.Marshal(rows)
	if err != nil {
		return fmt.Errorf("benchio: encoding %s rows: %w", bench, err)
	}
	var newRows []json.RawMessage
	if err := json.Unmarshal(newData, &newRows); err != nil {
		return fmt.Errorf("benchio: %s rows are not an array: %w", bench, err)
	}
	var merged []json.RawMessage
	if _, err := Read(path, bench, &merged); err != nil {
		merged = nil // no prior artifact (or unreadable): start fresh
	}
	return Write(path, bench, append(merged, newRows...))
}

// Read loads the artifact at path, verifies the envelope names the expected
// bench and a known schema, and unmarshals the rows into rowsOut (a pointer
// to the driver's row slice).
func Read(path, bench string, rowsOut any) (Envelope, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return Envelope{}, fmt.Errorf("benchio: %s is not a benchmark envelope: %w", path, err)
	}
	if env.Bench != bench {
		return env, fmt.Errorf("benchio: %s holds bench %q, want %q", path, env.Bench, bench)
	}
	if env.Schema != Schema {
		return env, fmt.Errorf("benchio: %s has schema %d, this build reads %d", path, env.Schema, Schema)
	}
	if err := json.Unmarshal(env.Rows, rowsOut); err != nil {
		return env, fmt.Errorf("benchio: decoding %s rows: %w", bench, err)
	}
	return env, nil
}
