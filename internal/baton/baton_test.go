package baton

import (
	"math/rand"
	"testing"

	"hyperm/internal/overlay"
)

func build(t *testing.T, nodes, dim int, seed int64) *Overlay {
	t.Helper()
	o, err := Build(Config{Nodes: nodes, Dim: dim, Rng: rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return o
}

func randKey(rng *rand.Rand, dim int) []float64 {
	k := make([]float64, dim)
	for i := range k {
		k[i] = rng.Float64()
	}
	return k
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(Config{Nodes: 0, Dim: 2, Rng: rng}); err == nil {
		t.Error("expected error for 0 nodes")
	}
	if _, err := Build(Config{Nodes: 3, Dim: 0, Rng: rng}); err == nil {
		t.Error("expected error for 0 dim")
	}
	if _, err := Build(Config{Nodes: 3, Dim: 2}); err == nil {
		t.Error("expected error for nil rng")
	}
}

// The in-order rank assignment must be a bijection and respect the BST
// property: ranks in a node's left subtree < node's rank < right subtree.
func TestInOrderRanks(t *testing.T) {
	o := build(t, 41, 2, 3)
	seen := make([]bool, o.n)
	for node := 0; node < o.n; node++ {
		r := o.rankOf[node]
		if seen[r] {
			t.Fatalf("rank %d assigned twice", r)
		}
		seen[r] = true
		if o.nodeAt[r] != node {
			t.Fatalf("nodeAt inverse broken at node %d", node)
		}
		if l := 2*node + 1; l < o.n && o.rankOf[l] >= r {
			t.Fatalf("left child rank %d >= parent rank %d", o.rankOf[l], r)
		}
		if rc := 2*node + 2; rc < o.n && o.rankOf[rc] <= r {
			t.Fatalf("right child rank %d <= parent rank %d", o.rankOf[rc], rc)
		}
	}
}

// Ranges tile the z-space: every z-value has exactly one owner.
func TestRangesTile(t *testing.T) {
	o := build(t, 30, 2, 5)
	var total uint64
	for id := 0; id < o.n; id++ {
		lo, hi := o.rangeOf(id)
		if hi <= lo {
			t.Fatalf("node %d has empty range [%d,%d)", id, lo, hi)
		}
		total += hi - lo
	}
	if total != o.curve.Space() {
		t.Fatalf("ranges cover %d of %d cells", total, o.curve.Space())
	}
}

func TestDepthPos(t *testing.T) {
	cases := []struct{ node, depth, pos int }{
		{0, 0, 0}, {1, 1, 0}, {2, 1, 1}, {3, 2, 0}, {6, 2, 3}, {7, 3, 0},
	}
	for _, tc := range cases {
		d, p := depthPos(tc.node)
		if d != tc.depth || p != tc.pos {
			t.Errorf("depthPos(%d) = (%d,%d), want (%d,%d)", tc.node, d, p, tc.depth, tc.pos)
		}
	}
}

// Links must be symmetric enough for routing: adjacents and routing-table
// entries always include the in-order neighbors, guaranteeing progress.
func TestLinksIncludeAdjacents(t *testing.T) {
	o := build(t, 25, 2, 7)
	for node := 0; node < o.n; node++ {
		r := o.rankOf[node]
		want := []int{}
		if r > 0 {
			want = append(want, o.nodeAt[r-1])
		}
		if r+1 < o.n {
			want = append(want, o.nodeAt[r+1])
		}
		for _, w := range want {
			found := false
			for _, l := range o.links[node] {
				if l == w {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d missing adjacent link to %d", node, w)
			}
		}
	}
}

func TestRoutingReachesOwnerLogarithmically(t *testing.T) {
	o := build(t, 127, 2, 9)
	rng := rand.New(rand.NewSource(10))
	maxHops := 0
	for q := 0; q < 300; q++ {
		key := randKey(rng, 2)
		from := rng.Intn(o.n)
		owner, hops := o.route(from, o.curve.Z(key))
		if owner != o.OwnerOf(key) {
			t.Fatalf("routed to %d, owner is %d", owner, o.OwnerOf(key))
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	// BATON routing is O(log N); 127 nodes, depth 7 — allow generous slack
	// but far below linear.
	if maxHops > 25 {
		t.Errorf("max route hops %d too large for a 127-node BATON", maxHops)
	}
}

func TestInsertThenSearchPoint(t *testing.T) {
	o := build(t, 30, 2, 11)
	key := []float64{0.42, 0.77}
	o.InsertSphere(3, overlay.Entry{Key: key, Payload: "x"})
	res, _ := o.SearchSphere(9, key, 0.01)
	if len(res) != 1 || res[0].Payload != "x" {
		t.Fatalf("search results %v", res)
	}
	res, _ = o.SearchSphere(9, []float64{0.1, 0.1}, 0.05)
	if len(res) != 0 {
		t.Fatalf("distant search returned %v", res)
	}
}

// The overlay contract Hyper-M depends on: no false dismissals, no false
// positives at the overlay level.
func TestSearchNoFalseDismissals(t *testing.T) {
	o := build(t, 40, 3, 13)
	rng := rand.New(rand.NewSource(14))
	type ins struct {
		key    []float64
		radius float64
		id     int
	}
	var all []ins
	for i := 0; i < 50; i++ {
		e := ins{key: randKey(rng, 3), radius: rng.Float64() * 0.2, id: i}
		all = append(all, e)
		o.InsertSphere(rng.Intn(o.n), overlay.Entry{Key: e.key, Radius: e.radius, Payload: e.id})
	}
	for q := 0; q < 40; q++ {
		qkey := randKey(rng, 3)
		qrad := rng.Float64() * 0.3
		res, _ := o.SearchSphere(rng.Intn(o.n), qkey, qrad)
		got := map[int]bool{}
		for _, e := range res {
			got[e.Payload.(int)] = true
		}
		for _, e := range all {
			want := euclid(e.key, qkey) <= e.radius+qrad
			if want != got[e.id] {
				t.Fatalf("query %d entry %d: returned=%v intersects=%v", q, e.id, got[e.id], want)
			}
		}
	}
}

func TestObserverCountsMatchHops(t *testing.T) {
	msgs := 0
	o, err := Build(Config{Nodes: 31, Dim: 2, Rng: rand.New(rand.NewSource(15)),
		Observer: func(from, to int) { msgs++ }})
	if err != nil {
		t.Fatal(err)
	}
	msgs = 0
	hops := o.InsertSphere(0, overlay.Entry{Key: []float64{0.3, 0.3}, Radius: 0.2})
	if msgs != hops {
		t.Errorf("observer saw %d messages, hops = %d", msgs, hops)
	}
	msgs = 0
	_, shops := o.SearchSphere(1, []float64{0.8, 0.8}, 0.1)
	if msgs != shops {
		t.Errorf("observer saw %d messages, search hops = %d", msgs, shops)
	}
}

func TestSingleNode(t *testing.T) {
	o := build(t, 1, 2, 17)
	hops := o.InsertSphere(0, overlay.Entry{Key: []float64{0.5, 0.5}, Radius: 0.3, Payload: 1})
	if hops != 0 {
		t.Errorf("single-node insert cost %d hops", hops)
	}
	res, shops := o.SearchSphere(0, []float64{0.5, 0.5}, 0.1)
	if len(res) != 1 || shops != 0 {
		t.Errorf("single-node search: %d results, %d hops", len(res), shops)
	}
}

func TestKeyValidation(t *testing.T) {
	o := build(t, 5, 2, 19)
	for _, fn := range []func(){
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{0.5}}) },
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{1.0, 0.5}}) },
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{0.1, 0.1}, Radius: -1}) },
		func() { o.SearchSphere(0, []float64{0.1, 0.1}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBatonRoute(b *testing.B) {
	o, err := Build(Config{Nodes: 255, Dim: 2, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := randKey(rng, 2)
		o.route(rng.Intn(255), o.curve.Z(key))
	}
}
