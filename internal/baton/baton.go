// Package baton implements a BATON-style overlay (Jagadish, Ooi, Vu:
// "BATON: a balanced tree structure for peer-to-peer networks", VLDB 2005) —
// the first of the substrates the paper names as alternatives to CAN (§5).
//
// BATON organizes peers as a balanced binary tree in which every node
// (internal and leaf) owns one contiguous range of the key space, ordered by
// in-order traversal. Each node links to its parent, children, adjacent
// nodes (in-order neighbors) and left/right routing tables holding the
// same-level nodes at horizontal distances 2^j — giving O(log N) routing.
//
// Multi-dimensional keys are linearized with the same z-order curve the ring
// overlay uses (hyperm/internal/zorder); a node's range corresponds to a set
// of axis-aligned boxes, which is how sphere inserts and searches decide
// which nodes a sphere touches. (The paper's own multi-dimensional tree,
// VBI-tree, is BATON's successor; the z-order mapping is the standard
// single-dimensional-overlay alternative.)
package baton

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"hyperm/internal/overlay"
	"hyperm/internal/zorder"
)

// Overlay is a simulated BATON tree. It implements overlay.Network.
// Node ids are heap indices: node 0 is the root, node i's children are
// 2i+1 and 2i+2; ids double as peer ids.
type Overlay struct {
	dim      int
	curve    zorder.Curve
	n        int
	starts   []uint64 // starts[r]: start of the r-th in-order range; starts[0] == 0
	rankOf   []int    // rankOf[node] = in-order rank of the node's range
	nodeAt   []int    // nodeAt[rank] = node id (inverse of rankOf)
	links    [][]int  // per node: parent, children, adjacents, routing tables
	entries  [][]rec
	nextSeq  int
	observer overlay.Observer
}

type rec struct {
	seq int
	e   overlay.Entry
}

var _ overlay.Network = (*Overlay)(nil)

// Config parameterizes construction.
type Config struct {
	// Nodes is the number of peers.
	Nodes int
	// Dim is the key-space dimensionality.
	Dim int
	// Rng draws the range boundaries. Required.
	Rng *rand.Rand
	// Observer, when non-nil, is invoked once per overlay message.
	Observer overlay.Observer
}

// Build constructs the balanced tree, assigns in-order ranges, and wires the
// BATON link structure.
func Build(cfg Config) (*Overlay, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("baton: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("baton: dimension must be >= 1, got %d", cfg.Dim)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("baton: rng must be non-nil")
	}
	curve, err := zorder.NewCurve(cfg.Dim)
	if err != nil {
		return nil, fmt.Errorf("baton: %w", err)
	}
	if uint64(cfg.Nodes) > curve.Space() {
		return nil, fmt.Errorf("baton: %d nodes exceed the %d-cell z-space at dim %d",
			cfg.Nodes, curve.Space(), cfg.Dim)
	}
	o := &Overlay{
		dim:      cfg.Dim,
		curve:    curve,
		n:        cfg.Nodes,
		entries:  make([][]rec, cfg.Nodes),
		observer: cfg.Observer,
	}
	o.assignRanges(cfg.Rng)
	o.buildLinks()
	return o, nil
}

// assignRanges draws n distinct sorted boundaries (first anchored at 0) and
// maps the r-th range to the node with in-order rank r.
func (o *Overlay) assignRanges(rng *rand.Rand) {
	space := o.curve.Space()
	used := map[uint64]bool{0: true}
	o.starts = []uint64{0}
	for len(o.starts) < o.n {
		v := rng.Uint64() % space
		if !used[v] {
			used[v] = true
			o.starts = append(o.starts, v)
		}
	}
	sort.Slice(o.starts, func(i, j int) bool { return o.starts[i] < o.starts[j] })

	// In-order traversal of the heap-shaped tree.
	o.rankOf = make([]int, o.n)
	o.nodeAt = make([]int, o.n)
	rank := 0
	var walk func(node int)
	walk = func(node int) {
		if node >= o.n {
			return
		}
		walk(2*node + 1)
		o.rankOf[node] = rank
		o.nodeAt[rank] = node
		rank++
		walk(2*node + 2)
	}
	walk(0)
}

// depthPos returns a node's depth and its left-to-right position within its
// level (heap numbering).
func depthPos(node int) (depth, pos int) {
	depth = bits.Len(uint(node+1)) - 1
	pos = node + 1 - (1 << depth)
	return depth, pos
}

// buildLinks wires, per node: parent, children, in-order adjacents, and the
// BATON left/right routing tables (same-level nodes at distance 2^j).
func (o *Overlay) buildLinks() {
	o.links = make([][]int, o.n)
	for node := 0; node < o.n; node++ {
		seen := map[int]bool{node: true}
		add := func(id int) {
			if id >= 0 && id < o.n && !seen[id] {
				seen[id] = true
				o.links[node] = append(o.links[node], id)
			}
		}
		add((node - 1) / 2) // parent (node 0 maps to itself; filtered by seen)
		add(2*node + 1)     // left child
		add(2*node + 2)     // right child
		// In-order adjacents.
		r := o.rankOf[node]
		if r > 0 {
			add(o.nodeAt[r-1])
		}
		if r+1 < o.n {
			add(o.nodeAt[r+1])
		}
		// Routing tables: same level, positions pos ± 2^j.
		depth, pos := depthPos(node)
		base := 1<<depth - 1
		width := 1 << depth
		for j := 0; 1<<j < width; j++ {
			if p := pos - 1<<j; p >= 0 {
				add(base + p)
			}
			if p := pos + 1<<j; p < width {
				add(base + p)
			}
		}
	}
}

// rangeOf returns node id's z-range [lo, hi).
func (o *Overlay) rangeOf(id int) (uint64, uint64) {
	r := o.rankOf[id]
	lo := o.starts[r]
	var hi uint64
	if r+1 < o.n {
		hi = o.starts[r+1]
	} else {
		hi = o.curve.Space()
	}
	return lo, hi
}

// ownerOfZ returns the node owning z.
func (o *Overlay) ownerOfZ(z uint64) int {
	idx := sort.Search(len(o.starts), func(i int) bool { return o.starts[i] > z })
	return o.nodeAt[idx-1]
}

// route forwards from node `from` toward the owner of z. Each hop picks the
// link whose range-rank is closest to the target's; the in-order adjacents
// guarantee progress, the routing tables provide the O(log N) jumps.
func (o *Overlay) route(from int, z uint64) (int, int) {
	targetRank := o.rankOf[o.ownerOfZ(z)]
	cur := from
	hops := 0
	for {
		lo, hi := o.rangeOf(cur)
		if z >= lo && z < hi {
			return cur, hops
		}
		curDist := absInt(o.rankOf[cur] - targetRank)
		best, bestDist := -1, curDist
		for _, l := range o.links[cur] {
			if d := absInt(o.rankOf[l] - targetRank); d < bestDist {
				best, bestDist = l, d
			}
		}
		if best < 0 {
			panic("baton: routing stalled — link structure corrupt")
		}
		o.message(cur, best)
		cur = best
		hops++
		if hops > 4*o.n+16 {
			panic("baton: routing did not converge")
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (o *Overlay) message(from, to int) {
	if o.observer != nil {
		o.observer(from, to)
	}
}

// ClearNode wipes node id's stored records (owned and replicas), modeling a
// device crash. The node's range remains routable. Implements
// overlay.StorageFailer.
func (o *Overlay) ClearNode(id int) int {
	lost := len(o.entries[id])
	o.entries[id] = nil
	return lost
}

// Dim returns the key-space dimensionality.
func (o *Overlay) Dim() int { return o.dim }

// Size returns the number of nodes.
func (o *Overlay) Size() int { return o.n }

// OwnerOf returns the node owning the point key (no messages charged).
func (o *Overlay) OwnerOf(key []float64) int {
	o.checkKey(key)
	return o.ownerOfZ(o.curve.Z(key))
}

func (o *Overlay) checkKey(key []float64) {
	if len(key) != o.dim {
		panic(fmt.Sprintf("baton: key dimension %d, overlay dimension %d", len(key), o.dim))
	}
	for _, v := range key {
		if v < 0 || v >= 1 {
			panic(fmt.Sprintf("baton: key %v outside the unit cube", key))
		}
	}
}

// nodeTouchesSphere reports whether node id's range maps to any box within
// radius of key.
func (o *Overlay) nodeTouchesSphere(id int, key []float64, radius float64) bool {
	lo, hi := o.rangeOf(id)
	return o.curve.ArcTouchesSphere(lo, hi, key, radius)
}

// InsertSphere routes to the key's owner, stores the entry, and replicates
// it to every other node whose range the sphere touches (one message per
// replica).
func (o *Overlay) InsertSphere(from int, e overlay.Entry) int {
	o.checkKey(e.Key)
	if e.Radius < 0 {
		panic("baton: negative entry radius")
	}
	owner, hops := o.route(from, o.curve.Z(e.Key))
	r := rec{seq: o.nextSeq, e: e}
	o.nextSeq++
	o.entries[owner] = append(o.entries[owner], r)
	if e.Radius > 0 {
		for id := 0; id < o.n; id++ {
			if id == owner {
				continue
			}
			if o.nodeTouchesSphere(id, e.Key, e.Radius) {
				o.message(owner, id)
				o.entries[id] = append(o.entries[id], r)
				hops++
			}
		}
	}
	return hops
}

// SearchSphere routes to the owner of key and visits every node whose range
// the query sphere touches, collecting intersecting entries (deduplicated
// across replicas).
func (o *Overlay) SearchSphere(from int, key []float64, radius float64) ([]overlay.Entry, int) {
	o.checkKey(key)
	if radius < 0 {
		panic("baton: negative query radius")
	}
	owner, hops := o.route(from, o.curve.Z(key))
	seen := map[int]bool{}
	var results []overlay.Entry
	collect := func(node int) {
		for _, r := range o.entries[node] {
			if seen[r.seq] {
				continue
			}
			if euclid(r.e.Key, key) <= r.e.Radius+radius {
				seen[r.seq] = true
				results = append(results, r.e)
			}
		}
	}
	collect(owner)
	for id := 0; id < o.n; id++ {
		if id == owner {
			continue
		}
		if o.nodeTouchesSphere(id, key, radius) {
			o.message(owner, id)
			hops++
			collect(id)
		}
	}
	return results, hops
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
