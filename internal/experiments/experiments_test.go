package experiments

import (
	"strings"
	"testing"
)

// tinyParams keeps unit-test runtime low; benches use DefaultParams.
// The items-per-cluster summarization ratio (ItemsPerPeer vs
// Levels*ClustersPerPeer) is kept near the paper's regime (~10x), because
// that amortization is what the Figure 8 comparisons measure.
func tinyParams() Params {
	return Params{Peers: 20, ItemsPerPeer: 100, Dim: 64, Levels: 3, ClustersPerPeer: 2, Seed: 1}
}

func tinyEffectiveness() EffectivenessParams {
	return EffectivenessParams{Peers: 10, Objects: 40, Views: 8, Bins: 32,
		Levels: 3, ClustersPerPeer: 5, Queries: 8, Seed: 1}
}

func TestFig8aShape(t *testing.T) {
	rows, err := Fig8a(tinyParams(), []int{2, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgHopsWithReplication < r.AvgHopsNoReplication {
			t.Errorf("K=%d: replication cannot reduce hops (%v < %v)",
				r.ClustersPerPeer, r.AvgHopsWithReplication, r.AvgHopsNoReplication)
		}
	}
	// Paper shape: finer clustering -> smaller spheres -> overhead shrinks.
	overhead := func(r Fig8aRow) float64 { return r.AvgHopsWithReplication - r.AvgHopsNoReplication }
	if overhead(rows[2]) > overhead(rows[0])+0.5 {
		t.Errorf("replication overhead should shrink with finer clustering: K=2 %.3f vs K=30 %.3f",
			overhead(rows[0]), overhead(rows[2]))
	}
	if rows[2].AvgClusterRadius > rows[0].AvgClusterRadius {
		t.Errorf("more clusters should give smaller radii: %v vs %v",
			rows[0].AvgClusterRadius, rows[2].AvgClusterRadius)
	}
	if !strings.Contains(RenderFig8a(rows), "Figure 8a") {
		t.Error("render missing header")
	}
}

func TestFig8bShape(t *testing.T) {
	p := tinyParams()
	rows, err := Fig8b(p, []int{600, 1200})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's headline: Hyper-M per-item cost is below both
		// conventional baselines (an order of magnitude at paper scale;
		// strictly below at this test scale).
		if r.HyperM >= r.CAN2D {
			t.Errorf("items=%d: Hyper-M %.3f not below 2-d CAN %.3f", r.Items, r.HyperM, r.CAN2D)
		}
		if r.HyperM >= r.CANFull {
			t.Errorf("items=%d: Hyper-M %.3f not below full CAN %.3f", r.Items, r.HyperM, r.CANFull)
		}
	}
	// Per-item cost decreases (or stays flat) as volume grows: summaries
	// amortize.
	if rows[1].HyperM > rows[0].HyperM*1.2 {
		t.Errorf("Hyper-M per-item cost should amortize with volume: %v -> %v",
			rows[0].HyperM, rows[1].HyperM)
	}
	if !strings.Contains(RenderFig8b(rows), "Figure 8b") {
		t.Error("render missing header")
	}
}

func TestFig8cShape(t *testing.T) {
	rows, err := Fig8c(tinyParams(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// More layers -> more overlays to publish into -> cost grows with layers.
	if rows[2].HyperM < rows[0].HyperM {
		t.Errorf("4 layers (%.3f) should cost at least 1 layer (%.3f)", rows[2].HyperM, rows[0].HyperM)
	}
	// Even at 4 layers Hyper-M stays below the full-CAN baseline.
	if rows[2].HyperM >= rows[2].CANFull {
		t.Errorf("Hyper-M at 4 layers (%.3f) should beat full CAN (%.3f)", rows[2].HyperM, rows[2].CANFull)
	}
	if !strings.Contains(RenderFig8c(rows), "Figure 8c") {
		t.Error("render missing header")
	}
}

func TestFig9Shape(t *testing.T) {
	p := tinyParams()
	rows, err := Fig9(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+p.Levels {
		t.Fatalf("got %d rows, want %d", len(rows), 1+p.Levels)
	}
	if rows[0].Config != "CAN-original" {
		t.Fatalf("first row should be the baseline, got %q", rows[0].Config)
	}
	// Paper shape: adding detail levels spreads the data over more peers
	// than the approximation-only configuration.
	aOnly := rows[1]
	full := rows[len(rows)-1]
	if full.NonEmptyPeers < aOnly.NonEmptyPeers {
		t.Errorf("adding levels should not shrink coverage: A-only %d peers, full %d peers",
			aOnly.NonEmptyPeers, full.NonEmptyPeers)
	}
	if !strings.Contains(RenderFig9(rows), "Figure 9") {
		t.Error("render missing header")
	}
}

func TestFig10aShape(t *testing.T) {
	rows, err := Fig10a(tinyEffectiveness(), []int{1, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Precision is 1.0 everywhere; recall grows with the budget and reaches
	// 1.0 at unlimited budget (no false dismissals).
	for _, r := range rows {
		if r.Precision < 0.999 {
			t.Errorf("budget %d: precision %v != 1", r.PeersContacted, r.Precision)
		}
	}
	if rows[1].RecallAvg < rows[0].RecallAvg-1e-9 {
		t.Errorf("recall should grow with budget: %v -> %v", rows[0].RecallAvg, rows[1].RecallAvg)
	}
	last := rows[len(rows)-1]
	if last.RecallAvg < 0.999 {
		t.Errorf("unlimited budget recall %v, want 1.0 (Theorem 4.1)", last.RecallAvg)
	}
	if !strings.Contains(RenderFig10a(rows), "Figure 10a") {
		t.Error("render missing header")
	}
}

func TestFig10bShape(t *testing.T) {
	rows, err := Fig10b(tinyEffectiveness(), []int{5, 10}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// C knob direction: recall at C=2 >= recall at C=1 for the same
	// clustering.
	for i := 0; i+1 < len(rows); i += 2 {
		if rows[i+1].RecallAvg < rows[i].RecallAvg-0.05 {
			t.Errorf("clusters=%d: recall dropped when C doubled: %.3f -> %.3f",
				rows[i].ClustersPerPeer, rows[i].RecallAvg, rows[i+1].RecallAvg)
		}
	}
	if !strings.Contains(RenderFig10b(rows), "Figure 10b") {
		t.Error("render missing header")
	}
}

func TestFig10cShape(t *testing.T) {
	rows, err := Fig10c(tinyEffectiveness(), []float64{0, 0.2, 0.45})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].RecallLossPercent != 0 {
		t.Errorf("zero insertions should have zero loss, got %v", rows[0].RecallLossPercent)
	}
	// Recall under staleness stays bounded: the paper loses at most ~33%
	// at 45% new documents. Allow slack for the scaled-down corpus.
	last := rows[len(rows)-1]
	if last.RecallAvg < 0.3 {
		t.Errorf("recall collapsed under post-insertion: %v", last.RecallAvg)
	}
	if !strings.Contains(RenderFig10c(rows), "Figure 10c") {
		t.Error("render missing header")
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11(tinyEffectiveness(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Space != "original" {
		t.Fatalf("first row should be the original space")
	}
	byName := map[string]Fig11Row{}
	for _, r := range rows {
		byName[r.Space] = r
	}
	// Paper shape: at least one early wavelet space clusters no worse than
	// the original space (Fig 11 shows the first ~3 beating it).
	early := byName["D_1"]
	if early.Ratio > byName["original"].Ratio*1.5 {
		t.Errorf("early wavelet space ratio %.3f much worse than original %.3f",
			early.Ratio, byName["original"].Ratio)
	}
	if !strings.Contains(RenderFig11(rows), "Figure 11") {
		t.Error("render missing header")
	}
}

func TestExtEnergyShape(t *testing.T) {
	p := DefaultEnergyParams()
	p.Params = tinyParams()
	rows, err := ExtEnergy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	hyper, canRow := rows[0], rows[1]
	if hyper.Joules >= canRow.Joules {
		t.Errorf("Hyper-M energy %.4f J should be below per-item CAN %.4f J", hyper.Joules, canRow.Joules)
	}
	if hyper.MakespanSeconds >= canRow.MakespanSeconds {
		t.Errorf("Hyper-M makespan %.2f s should be below per-item CAN %.2f s",
			hyper.MakespanSeconds, canRow.MakespanSeconds)
	}
	if !strings.Contains(RenderEnergy(rows), "energy") {
		t.Error("render missing header")
	}
}

func TestExtOverlayIndependenceShape(t *testing.T) {
	rows, err := ExtOverlayIndependence(tinyEffectiveness())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want CAN + ring + BATON", len(rows))
	}
	for _, r := range rows {
		// The no-false-dismissal property must hold on both substrates.
		if r.RecallAvg < 0.999 {
			t.Errorf("%s: recall %v, want 1.0 regardless of overlay", r.Overlay, r.RecallAvg)
		}
	}
	if !strings.Contains(RenderOverlayIndep(rows), "independence") {
		t.Error("render missing header")
	}
}

func TestExtAggregationShape(t *testing.T) {
	rows, err := ExtAggregation(tinyEffectiveness())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byPolicy := map[string]AggRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	// Min surfaces no more candidates than sum (it prunes level-missing
	// peers).
	if byPolicy["min"].PeersWithScore > byPolicy["sum"].PeersWithScore+1e-9 {
		t.Errorf("min candidates %.2f exceed sum %.2f",
			byPolicy["min"].PeersWithScore, byPolicy["sum"].PeersWithScore)
	}
	if !strings.Contains(RenderAgg(rows), "aggregation") {
		t.Error("render missing header")
	}
}

func TestParamsDefaults(t *testing.T) {
	d := DefaultParams()
	ps := PaperScale()
	if ps.Peers <= d.Peers || ps.ItemsPerPeer <= d.ItemsPerPeer {
		t.Error("paper scale should exceed the default scale")
	}
	de := DefaultEffectiveness()
	pe := PaperEffectiveness()
	if pe.Objects <= de.Objects {
		t.Error("paper effectiveness scale should exceed the default")
	}
}

func TestExtLevelsShape(t *testing.T) {
	rows, err := ExtLevels(tinyEffectiveness(), []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Cost must rise with levels.
	if rows[2].HopsPerItem < rows[0].HopsPerItem {
		t.Errorf("hops/item should grow with levels: %v -> %v",
			rows[0].HopsPerItem, rows[2].HopsPerItem)
	}
	if !strings.Contains(RenderLevels(rows), "levels") {
		t.Error("render missing header")
	}
}

func TestExtWaveletShape(t *testing.T) {
	rows, err := ExtWavelet(tinyEffectiveness())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The no-false-dismissal property must hold under every convention.
		if r.Recall < 0.999 {
			t.Errorf("%s: full recall %v, want 1.0", r.Convention, r.Recall)
		}
	}
	if !strings.Contains(RenderWavelet(rows), "convention") {
		t.Error("render missing header")
	}
}

func TestExtLossShape(t *testing.T) {
	rows, err := ExtLoss(tinyEffectiveness(), []float64{0, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Recall < 0.999 {
		t.Errorf("zero loss should keep recall 1.0, got %v", rows[0].Recall)
	}
	if rows[1].Recall > rows[0].Recall+1e-9 {
		t.Errorf("loss should not improve recall: %v -> %v", rows[0].Recall, rows[1].Recall)
	}
	// Retransmissions make publication more expensive under loss.
	if rows[1].HopsPerItem <= rows[0].HopsPerItem {
		t.Errorf("40%% loss should cost retransmissions: %v vs %v hops/item",
			rows[1].HopsPerItem, rows[0].HopsPerItem)
	}
	if !strings.Contains(RenderLoss(rows), "failure injection") {
		t.Error("render missing header")
	}
}

func TestExtChurnShape(t *testing.T) {
	rows, err := ExtChurn(tinyEffectiveness(), []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].RecallVsAll < 0.999 || rows[0].RecallVsSurviving < 0.999 {
		t.Errorf("zero churn should keep recall 1.0: %+v", rows[0])
	}
	if rows[0].IndexRecordsLost != 0 {
		t.Errorf("zero churn lost %d records", rows[0].IndexRecordsLost)
	}
	hurt := rows[1]
	if hurt.IndexRecordsLost == 0 {
		t.Error("30%% churn should lose index records")
	}
	// Data held by dead peers is unreachable: recall vs the full corpus
	// must drop below recall vs surviving items.
	if hurt.RecallVsAll > hurt.RecallVsSurviving+1e-9 {
		t.Errorf("recall-vs-all %v should not exceed recall-vs-surviving %v",
			hurt.RecallVsAll, hurt.RecallVsSurviving)
	}
	if !strings.Contains(RenderChurn(rows), "churn") {
		t.Error("render missing header")
	}
}

func TestExtScaleShape(t *testing.T) {
	p := tinyParams()
	rows, err := ExtScale(p, []int{10, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PublishHopsPerItem >= r.BaselineHopsPerItem {
			t.Errorf("peers=%d: Hyper-M %.3f not below baseline %.3f",
				r.Peers, r.PublishHopsPerItem, r.BaselineHopsPerItem)
		}
		if r.QueryHops <= 0 {
			t.Errorf("peers=%d: query hops %v", r.Peers, r.QueryHops)
		}
	}
	if !strings.Contains(RenderScale(rows), "scaling") {
		t.Error("render missing header")
	}
}
