package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hyperm/internal/cluster"
	"hyperm/internal/dataset"
	"hyperm/internal/parallel"
	"hyperm/internal/wavelet"
)

// Fig11Row is one bar of Figure 11: k-means quality (cohesion/separation,
// lower is better) in one vector space. The paper's finding — and the reason
// it uses four levels — is that the first few wavelet subspaces cluster
// better than the original space, while deep detail levels degrade.
type Fig11Row struct {
	// Space names the vector space ("original", "A", "D_0", ...).
	Space string
	// Dim is that space's dimensionality.
	Dim int
	// Ratio is the mean cohesion/separation over all peers (lower = tighter
	// and better separated).
	Ratio float64
	// Cohesion and Separation are the component means.
	Cohesion, Separation float64
}

// Fig11 clusters each peer's collection in the original space and in every
// wavelet subspace up to maxSpaces, reporting average cluster quality per
// space. It uses the ALOI-substitute corpus, like the §6 experiments the
// figure accompanies.
func Fig11(p EffectivenessParams, maxSpaces int) ([]Fig11Row, error) {
	if maxSpaces <= 0 {
		maxSpaces = 6
	}
	if max := wavelet.NumSubspaces(p.Bins); maxSpaces > max {
		maxSpaces = max
	}
	rng := rand.New(rand.NewSource(p.Seed))
	data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: p.Objects, Views: p.Views, Bins: p.Bins}, rng)

	// Group the corpus per peer as aloiSystem does.
	peerItems := make([][][]float64, p.Peers)
	for i, x := range data {
		peer := labels[i] % p.Peers
		peerItems[peer] = append(peerItems[peer], x)
	}

	// Original space first.
	rows := []Fig11Row{{Space: "original", Dim: p.Bins}}
	for s := 0; s < maxSpaces; s++ {
		rows = append(rows, Fig11Row{Space: wavelet.SubspaceName(s), Dim: wavelet.SubspaceDim(s)})
	}

	// Each peer's decomposition + clustering is independent (its own krng,
	// its own items), so the peers fan out across workers; the per-space
	// sums are merged serially in peer order, reproducing the serial
	// accumulation order bit for bit.
	type peerPartial struct {
		rows   []Fig11Row
		counts []int
	}
	partials, err := parallel.Map(nil, p.Parallelism, len(peerItems), func(pi int) (peerPartial, error) {
		items := peerItems[pi]
		if len(items) < 2 {
			return peerPartial{}, nil
		}
		part := peerPartial{rows: make([]Fig11Row, len(rows)), counts: make([]int, len(rows))}
		krng := rand.New(rand.NewSource(p.Seed + 60))
		// Original space.
		addQuality(&part.rows[0], &part.counts[0], items, p.ClustersPerPeer, krng)
		// Wavelet subspaces.
		decs := wavelet.DecomposeAll(items, wavelet.Averaging)
		for s := 0; s < maxSpaces; s++ {
			coeffs := wavelet.SubspaceMatrix(decs, s)
			addQuality(&part.rows[s+1], &part.counts[s+1], coeffs, p.ClustersPerPeer, krng)
		}
		return part, nil
	})
	if err != nil {
		return nil, err
	}

	counts := make([]int, len(rows))
	for _, part := range partials {
		if part.rows == nil {
			continue
		}
		for i := range rows {
			rows[i].Ratio += part.rows[i].Ratio
			rows[i].Cohesion += part.rows[i].Cohesion
			rows[i].Separation += part.rows[i].Separation
			counts[i] += part.counts[i]
		}
	}
	for i := range rows {
		if counts[i] > 0 {
			rows[i].Ratio /= float64(counts[i])
			rows[i].Cohesion /= float64(counts[i])
			rows[i].Separation /= float64(counts[i])
		}
	}
	return rows, nil
}

func addQuality(row *Fig11Row, count *int, items [][]float64, k int, rng *rand.Rand) {
	res := cluster.KMeans(items, cluster.Config{K: k, Rng: rng})
	q := cluster.Evaluate(items, res)
	if q.Separation == 0 {
		return // degenerate space (e.g. A of normalized histograms)
	}
	row.Ratio += q.Ratio()
	row.Cohesion += q.Cohesion
	row.Separation += q.Separation
	*count++
}

// RenderFig11 formats the rows as the CLI table.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — clustering quality per vector space (cohesion/separation, lower is better)\n")
	fmt.Fprintf(&b, "%-10s %-6s %-12s %-12s %-12s\n", "space", "dim", "ratio", "cohesion", "separation")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6d %-12s %-12s %-12s\n", r.Space, r.Dim,
			fmtF(r.Ratio), fmtF(r.Cohesion), fmtF(r.Separation))
	}
	return b.String()
}
