package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hyperm/internal/core"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/parallel"
	"hyperm/internal/wavelet"
)

// LevelsRow is one point of the levels study: the paper chooses four wavelet
// levels because "using more than four levels incurs additional overhead
// that is not justified by the improvements in precision and recall"
// (§3, §6.1.1). This experiment reproduces that trade-off: publication cost
// rises with every level while budgeted retrieval quality saturates.
type LevelsRow struct {
	Levels int
	// HopsPerItem is the publication cost.
	HopsPerItem float64
	// RecallBudgeted is range-query recall with a fixed peer budget
	// (Peers/5) — the quality the extra levels are supposed to buy.
	RecallBudgeted float64
	// KnnPrecision and KnnRecall measure k-nn quality at C=1.
	KnnPrecision, KnnRecall float64
}

// ExtLevels sweeps the number of wavelet levels on the effectiveness corpus.
func ExtLevels(p EffectivenessParams, levelSweep []int) ([]LevelsRow, error) {
	if len(levelSweep) == 0 {
		levelSweep = []int{1, 2, 3, 4, 5, 6}
	}
	budget := p.Peers / 5
	if budget < 1 {
		budget = 1
	}
	var valid []int
	for _, levels := range levelSweep {
		if levels <= wavelet.NumSubspaces(p.Bins) {
			valid = append(valid, levels)
		}
	}
	// One cell per level count, each with its own published system.
	return parallel.Map(nil, p.Parallelism, len(valid), func(ci int) (LevelsRow, error) {
		pl := p
		pl.Levels = valid[ci]
		sys, data, truth, err := aloiSystem(pl, pl.ClustersPerPeer)
		if err != nil {
			return LevelsRow{}, err
		}
		st := publishStatsOf(sys)

		qrng := rand.New(rand.NewSource(p.Seed + 80))
		var sumR, sumKP, sumKR float64
		var nq int
		for nq < p.Queries {
			q := data[qrng.Intn(len(data))]
			eps := 0.03 + qrng.Float64()*0.09
			rel := truth.Range(q, eps)
			if len(rel) < 2 {
				continue
			}
			res := sys.RangeQuery(0, q, eps, core.RangeOptions{MaxPeers: budget})
			_, rec := eval.PrecisionRecall(res.Items, rel)
			sumR += rec

			k := 10
			relK := truth.KNN(q, k)
			kres := sys.KNNQuery(0, q, k, core.KNNOptions{})
			kp, kr := eval.PrecisionRecall(kres.Items, relK)
			sumKP += kp
			sumKR += kr
			nq++
		}
		return LevelsRow{
			Levels:         pl.Levels,
			HopsPerItem:    st,
			RecallBudgeted: sumR / float64(nq),
			KnnPrecision:   sumKP / float64(nq),
			KnnRecall:      sumKR / float64(nq),
		}, nil
	})
}

// publishStatsOf re-derives hops/item from the published system. aloiSystem
// publishes internally, so we reconstruct the cost from the CAN statistics.
func publishStatsOf(sys *core.System) float64 {
	var hops int
	for l := 0; ; l++ {
		if l >= sys.Config().Levels {
			break
		}
		if cs, ok := canStats(sys.Overlay(l)); ok {
			hops += cs.InsertRouteHops + cs.InsertReplicationHops
		}
	}
	if sys.TotalItems() == 0 {
		return 0
	}
	return float64(hops) / float64(sys.TotalItems())
}

// WaveletRow compares Haar conventions and Daubechies-4 as the
// multiresolution front end (footnote 2 of the paper: the framework extends
// beyond the Haar wavelet).
type WaveletRow struct {
	Convention string
	// HopsPerItem is the publication cost.
	HopsPerItem float64
	// Recall is unlimited-budget range recall (must be 1.0 for every
	// convention whose radius bound is sound).
	Recall float64
	// RecallBudgeted is recall with a Peers/5 budget — where the
	// conventions actually differ.
	RecallBudgeted float64
}

// ExtWavelet runs the pipeline under each wavelet convention.
func ExtWavelet(p EffectivenessParams) ([]WaveletRow, error) {
	budget := p.Peers / 5
	if budget < 1 {
		budget = 1
	}
	conventions := []wavelet.Convention{wavelet.Averaging, wavelet.Orthonormal, wavelet.Daubechies4}
	// One independent cell per wavelet convention.
	return parallel.Map(nil, p.Parallelism, len(conventions), func(ci int) (WaveletRow, error) {
		conv := conventions[ci]
		rng := rand.New(rand.NewSource(p.Seed))
		data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: p.Objects, Views: p.Views, Bins: p.Bins}, rng)
		sys, err := core.NewSystem(core.Config{
			Peers:           p.Peers,
			Dim:             p.Bins,
			Levels:          p.Levels,
			ClustersPerPeer: p.ClustersPerPeer,
			Convention:      conv,
			Factory:         canFactory(p.Seed + 10),
			Rng:             rng,
			Parallelism:     p.Parallelism,
		})
		if err != nil {
			return WaveletRow{}, err
		}
		for i, x := range data {
			sys.AddPeerData(labels[i]%p.Peers, []int{i}, [][]float64{x})
		}
		sys.DeriveBounds()
		st := sys.PublishAll()

		truth := flatindexOf(data)
		qrng := rand.New(rand.NewSource(p.Seed + 81))
		var sumFull, sumBudget float64
		var nq int
		for nq < p.Queries {
			q := data[qrng.Intn(len(data))]
			eps := 0.03 + qrng.Float64()*0.09
			rel := truth.Range(q, eps)
			if len(rel) < 2 {
				continue
			}
			full := sys.RangeQuery(0, q, eps, core.RangeOptions{})
			_, rf := eval.PrecisionRecall(full.Items, rel)
			sumFull += rf
			lim := sys.RangeQuery(0, q, eps, core.RangeOptions{MaxPeers: budget})
			_, rb := eval.PrecisionRecall(lim.Items, rel)
			sumBudget += rb
			nq++
		}
		return WaveletRow{
			Convention:     conv.String(),
			HopsPerItem:    safeDiv(st.Hops, sys.TotalItems()),
			Recall:         sumFull / float64(nq),
			RecallBudgeted: sumBudget / float64(nq),
		}, nil
	})
}

// RenderLevels formats the rows as the CLI table.
func RenderLevels(rows []LevelsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — wavelet levels trade-off (cost vs retrieval quality, §6.1.1)\n")
	fmt.Fprintf(&b, "%-8s %-14s %-16s %-14s %-12s\n", "levels", "hops/item", "recall@budget", "knn precision", "knn recall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-14s %-16s %-14s %-12s\n", r.Levels,
			fmtF(r.HopsPerItem), fmtF(r.RecallBudgeted), fmtF(r.KnnPrecision), fmtF(r.KnnRecall))
	}
	return b.String()
}

// RenderWavelet formats the rows as the CLI table.
func RenderWavelet(rows []WaveletRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — wavelet convention ablation (paper footnote 2)\n")
	fmt.Fprintf(&b, "%-14s %-14s %-14s %-16s\n", "convention", "hops/item", "recall(full)", "recall@budget")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-14s %-14s %-16s\n", r.Convention,
			fmtF(r.HopsPerItem), fmtF(r.Recall), fmtF(r.RecallBudgeted))
	}
	return b.String()
}
