package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hyperm/internal/core"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/flatindex"
	"hyperm/internal/parallel"
)

// aloiSystem builds a published Hyper-M system over the ALOI-substitute
// corpus with a round-robin-over-objects peer assignment (each peer holds a
// few complete objects plus stragglers — users collect whole albums).
func aloiSystem(p EffectivenessParams, clustersPerPeer int) (*core.System, [][]float64, *flatindex.Index, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: p.Objects, Views: p.Views, Bins: p.Bins}, rng)
	sys, err := core.NewSystem(core.Config{
		Peers:           p.Peers,
		Dim:             p.Bins,
		Levels:          p.Levels,
		ClustersPerPeer: clustersPerPeer,
		Factory:         canFactory(p.Seed + 10),
		Rng:             rng,
		Parallelism:     p.Parallelism,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// Whole objects go to one peer: peers have focused collections, the
	// structure §6's clustering exploits.
	for i, x := range data {
		peer := labels[i] % p.Peers
		sys.AddPeerData(peer, []int{i}, [][]float64{x})
	}
	sys.DeriveBounds()
	sys.PublishAll()
	return sys, data, flatindex.New(data), nil
}

// Fig10aRow is one bar of Figure 10a: range-query recall as a function of
// the number of peers contacted. Precision is 1.0 throughout — contacted
// peers filter exactly on their original vectors.
type Fig10aRow struct {
	PeersContacted int
	// RecallAvg/Min/Max aggregate recall over the query sample (the paper
	// plots the average with min/max error bounds).
	RecallAvg, RecallMin, RecallMax float64
	// Precision is reported to confirm it stays 1.0.
	Precision float64
}

// Fig10a sweeps the contacted-peer budget for range queries over the
// ALOI-substitute corpus, varying the query radius across the sample as the
// paper does.
func Fig10a(p EffectivenessParams, budgets []int) ([]Fig10aRow, error) {
	if len(budgets) == 0 {
		budgets = []int{1, 2, 3, 5, 8, 12, 0} // 0 = unlimited
	}
	sys, data, truth, err := aloiSystem(p, p.ClustersPerPeer)
	if err != nil {
		return nil, err
	}
	qrng := rand.New(rand.NewSource(p.Seed + 20))
	type query struct {
		q   []float64
		eps float64
		rel []int
	}
	var queries []query
	for len(queries) < p.Queries {
		q := data[qrng.Intn(len(data))]
		eps := 0.02 + qrng.Float64()*0.12 // sweep of radii, as in the paper
		rel := truth.Range(q, eps)
		if len(rel) < 2 {
			continue // trivial queries say nothing about recall
		}
		queries = append(queries, query{q: q, eps: eps, rel: rel})
	}

	rows := make([]Fig10aRow, 0, len(budgets))
	for _, budget := range budgets {
		row := Fig10aRow{PeersContacted: budget, RecallMin: 1, Precision: 1}
		var sumR, sumP float64
		maxContacted := 0
		for _, qu := range queries {
			res := sys.RangeQuery(0, qu.q, qu.eps, core.RangeOptions{MaxPeers: budget})
			prec, rec := eval.PrecisionRecall(res.Items, qu.rel)
			if len(res.Items) == 0 {
				prec = 1 // vacuously precise: nothing wrong was returned
			}
			sumR += rec
			sumP += prec
			if rec < row.RecallMin {
				row.RecallMin = rec
			}
			if rec > row.RecallMax {
				row.RecallMax = rec
			}
			if res.PeersContacted > maxContacted {
				maxContacted = res.PeersContacted
			}
		}
		row.RecallAvg = sumR / float64(len(queries))
		row.Precision = sumP / float64(len(queries))
		if budget == 0 {
			row.PeersContacted = maxContacted // report the realized fan-out
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10bRow is one group of Figure 10b: k-nn precision and recall for a
// clusters-per-peer setting, plus the C-knob study of §6.1.
type Fig10bRow struct {
	ClustersPerPeer            int
	C                          float64
	PrecisionAvg, RecallAvg    float64
	PrecisionMin, PrecisionMax float64
	RecallMin, RecallMax       float64
}

// Fig10b measures k-nn retrieval effectiveness over clusters-per-peer
// settings (paper: 5/10/20) and C values (paper: 1, 1.5, 2), varying k
// across the query sample.
func Fig10b(p EffectivenessParams, clusterSweep []int, cSweep []float64) ([]Fig10bRow, error) {
	if len(clusterSweep) == 0 {
		clusterSweep = []int{5, 10, 20}
	}
	if len(cSweep) == 0 {
		cSweep = []float64{1, 1.5, 2}
	}
	// One cell per clusters-per-peer setting: each builds its own published
	// system. The inner C sweep stays serial within the cell — it queries the
	// cell's shared System, and query bookkeeping mutates overlay statistics.
	cells, err := parallel.Map(nil, p.Parallelism, len(clusterSweep), func(ci int) ([]Fig10bRow, error) {
		kc := clusterSweep[ci]
		sys, data, truth, err := aloiSystem(p, kc)
		if err != nil {
			return nil, err
		}
		var rows []Fig10bRow
		for _, c := range cSweep {
			qrng := rand.New(rand.NewSource(p.Seed + 30))
			row := Fig10bRow{ClustersPerPeer: kc, C: c, PrecisionMin: 1, RecallMin: 1}
			var sumP, sumR float64
			for qi := 0; qi < p.Queries; qi++ {
				q := data[qrng.Intn(len(data))]
				k := 5 + qrng.Intn(16) // k sweep, as in the paper
				rel := truth.KNN(q, k)
				res := sys.KNNQuery(0, q, k, core.KNNOptions{C: c})
				prec, rec := eval.PrecisionRecall(res.Items, rel)
				sumP += prec
				sumR += rec
				row.PrecisionMin = minF(row.PrecisionMin, prec)
				row.PrecisionMax = maxF(row.PrecisionMax, prec)
				row.RecallMin = minF(row.RecallMin, rec)
				row.RecallMax = maxF(row.RecallMax, rec)
			}
			row.PrecisionAvg = sumP / float64(p.Queries)
			row.RecallAvg = sumR / float64(p.Queries)
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig10bRow
	for _, cell := range cells {
		rows = append(rows, cell...)
	}
	return rows, nil
}

// Fig10cRow is one point of Figure 10c: recall degradation as documents are
// inserted after the overlay was created (stale summaries).
type Fig10cRow struct {
	// NewDocsPercent is the volume of post-creation insertions relative to
	// the initially published corpus.
	NewDocsPercent float64
	// RecallAvg is the range-query recall against ground truth over the
	// full (old + new) corpus.
	RecallAvg float64
	// RecallLossPercent is the relative loss vs the zero-insertion recall.
	RecallLossPercent float64
}

// Fig10c publishes a base corpus, then post-inserts growing fractions of new
// documents without republishing, measuring recall each time. Queries run
// under a realistic peer budget (a third of the network): with an unlimited
// budget every peer is contacted and staleness costs nothing, which is not
// the regime the figure studies.
func Fig10c(p EffectivenessParams, fractions []float64) ([]Fig10cRow, error) {
	if len(fractions) == 0 {
		fractions = []float64{0, 0.09, 0.18, 0.27, 0.36, 0.45}
	}
	budget := p.Peers / 3
	if budget < 2 {
		budget = 2
	}
	rng := rand.New(rand.NewSource(p.Seed))
	data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: p.Objects, Views: p.Views, Bins: p.Bins}, rng)

	// Split per object view: the first views of each object are the
	// published base, later views arrive post-creation (new photos of known
	// subjects — "most new data items fit into the existing clusters").
	baseViews := (p.Views*2 + 2) / 3 // ~70% published up front
	var baseIdx, newIdx []int
	for i := range data {
		if i%p.Views < baseViews {
			baseIdx = append(baseIdx, i)
		} else {
			newIdx = append(newIdx, i)
		}
	}

	// Every fraction is an independent cell (own system, own post-inserts).
	// Only the relative loss couples the rows — and only to cell 0 — so the
	// cells run concurrently and the loss is derived after the ordered merge.
	recalls, err := parallel.Map(nil, p.Parallelism, len(fractions), func(fi int) (float64, error) {
		frac := fractions[fi]
		sys, err := core.NewSystem(core.Config{
			Peers:           p.Peers,
			Dim:             p.Bins,
			Levels:          p.Levels,
			ClustersPerPeer: p.ClustersPerPeer,
			Factory:         canFactory(p.Seed + 40 + int64(fi)),
			Rng:             rand.New(rand.NewSource(p.Seed + 41)),
			Parallelism:     p.Parallelism,
		})
		if err != nil {
			return 0, err
		}
		for _, i := range baseIdx {
			sys.AddPeerData(labels[i]%p.Peers, []int{i}, [][]float64{data[i]})
		}
		sys.DeriveBounds()
		sys.PublishAll()

		nNew := int(frac * float64(len(baseIdx)))
		if nNew > len(newIdx) {
			nNew = len(newIdx)
		}
		live := append([]int(nil), baseIdx...)
		irng := rand.New(rand.NewSource(p.Seed + 42))
		for _, i := range newIdx[:nNew] {
			// New documents land on arbitrary devices (whoever took the new
			// photo), not on the peer already holding that object — so the
			// receiving peer's published summaries do not describe them.
			// This is the staleness Fig 10c measures.
			sys.PostInsert(irng.Intn(p.Peers), i, data[i])
			live = append(live, i)
		}

		// Ground truth over everything currently in the network.
		liveVecs := make([][]float64, len(live))
		for j, i := range live {
			liveVecs[j] = data[i]
		}
		truth := flatindex.New(liveVecs)
		toGlobal := live // truth ids -> global ids

		qrng := rand.New(rand.NewSource(p.Seed + 50))
		var sumR float64
		var nq int
		for nq < p.Queries {
			q := data[live[qrng.Intn(len(live))]]
			eps := 0.03 + qrng.Float64()*0.09
			relLocal := truth.Range(q, eps)
			if len(relLocal) < 2 {
				continue
			}
			rel := make([]int, len(relLocal))
			for j, id := range relLocal {
				rel[j] = toGlobal[id]
			}
			res := sys.RangeQuery(0, q, eps, core.RangeOptions{MaxPeers: budget})
			_, rec := eval.PrecisionRecall(res.Items, rel)
			sumR += rec
			nq++
		}
		return sumR / float64(nq), nil
	})
	if err != nil {
		return nil, err
	}

	baselineRecall := recalls[0] // fractions[0] is the zero-insertion run
	rows := make([]Fig10cRow, 0, len(fractions))
	for fi, frac := range fractions {
		loss := 0.0
		if baselineRecall > 0 {
			loss = 100 * (baselineRecall - recalls[fi]) / baselineRecall
		}
		rows = append(rows, Fig10cRow{
			NewDocsPercent:    frac * 100,
			RecallAvg:         recalls[fi],
			RecallLossPercent: loss,
		})
	}
	return rows, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// RenderFig10a formats the rows as the CLI table.
func RenderFig10a(rows []Fig10aRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10a — range query recall vs peers contacted (precision is 1.0 by construction)\n")
	fmt.Fprintf(&b, "%-16s %-12s %-12s %-12s %-12s\n", "peers contacted", "recall avg", "recall min", "recall max", "precision")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16d %-12s %-12s %-12s %-12s\n", r.PeersContacted,
			fmtF(r.RecallAvg), fmtF(r.RecallMin), fmtF(r.RecallMax), fmtF(r.Precision))
	}
	return b.String()
}

// RenderFig10b formats the rows as the CLI table.
func RenderFig10b(rows []Fig10bRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10b — k-nn precision/recall vs clusters per peer and C knob\n")
	fmt.Fprintf(&b, "%-14s %-6s %-12s %-12s %-22s %-22s\n", "clusters/peer", "C", "precision", "recall", "precision min/max", "recall min/max")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14d %-6.2f %-12s %-12s %-22s %-22s\n", r.ClustersPerPeer, r.C,
			fmtF(r.PrecisionAvg), fmtF(r.RecallAvg),
			fmtF(r.PrecisionMin)+"/"+fmtF(r.PrecisionMax),
			fmtF(r.RecallMin)+"/"+fmtF(r.RecallMax))
	}
	return b.String()
}

// RenderFig10c formats the rows as the CLI table.
func RenderFig10c(rows []Fig10cRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10c — recall loss vs documents inserted after overlay creation\n")
	fmt.Fprintf(&b, "%-14s %-12s %-14s\n", "new docs %", "recall", "recall loss %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14.1f %-12s %-14.2f\n", r.NewDocsPercent, fmtF(r.RecallAvg), r.RecallLossPercent)
	}
	return b.String()
}
