// Package experiments contains one driver per figure of the paper's
// evaluation (§5–6), plus the extension studies listed in DESIGN.md. Each
// driver builds its workload, runs the measurement, and returns typed rows
// that cmd/hyperm-bench renders as the paper's tables/series and that
// bench_test.go wraps in testing.B benchmarks.
//
// Every driver takes a Params with scaled-down defaults so the whole suite
// runs in seconds; PaperScale() returns the publication-scale settings
// (100 nodes × 1000 items × 512 dims for §5, 50 nodes × 12,000 histograms
// for §6) for use from the CLI.
package experiments

import (
	"fmt"
	"math/rand"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/dataset"
	"hyperm/internal/flatindex"
	"hyperm/internal/overlay"
	"hyperm/internal/vec"
)

// Params fixes the workload size shared by the dissemination experiments.
type Params struct {
	// Peers is the network size (paper §5: 100).
	Peers int
	// ItemsPerPeer is the average per-device collection size (paper: 1000).
	ItemsPerPeer int
	// Dim is the feature dimensionality; power of two (paper: 512).
	Dim int
	// Levels is the number of wavelet overlays Hyper-M uses (paper: 4).
	Levels int
	// ClustersPerPeer is K_p (paper's efficiency runs use ~items/20).
	ClustersPerPeer int
	// Seed makes the run reproducible.
	Seed int64
	// Parallelism bounds the worker goroutines used to run independent
	// simulation cells of a sweep concurrently, and is forwarded to
	// core.Config.Parallelism for the per-peer publication math. 0 uses
	// GOMAXPROCS; 1 restores fully serial execution. Results are identical
	// for every setting: each cell builds its own System from its own seeds,
	// and rows are merged in sweep order.
	Parallelism int
}

// DefaultParams returns the scaled-down configuration used by tests and
// benchmarks: same shape as the paper — in particular the same ~10:1
// items-per-published-cluster summarization ratio — at ~10× less work.
func DefaultParams() Params {
	return Params{Peers: 50, ItemsPerPeer: 400, Dim: 128, Levels: 4, ClustersPerPeer: 10, Seed: 1}
}

// PaperScale returns the paper's §5 configuration (expensive: use from the
// CLI, not from unit tests).
func PaperScale() Params {
	return Params{Peers: 100, ItemsPerPeer: 1000, Dim: 512, Levels: 4, ClustersPerPeer: 10, Seed: 1}
}

// EffectivenessParams fixes the §6 retrieval workload.
type EffectivenessParams struct {
	// Peers is the network size (paper: 50).
	Peers int
	// Objects and Views define the ALOI-substitute corpus
	// (paper: 1000×12 = 12,000 histograms).
	Objects, Views int
	// Bins is the histogram dimensionality; power of two.
	Bins int
	// Levels and ClustersPerPeer configure Hyper-M (paper: 4 levels,
	// 5–20 clusters).
	Levels, ClustersPerPeer int
	// Queries is the number of query points sampled per configuration.
	Queries int
	// Seed makes the run reproducible.
	Seed int64
	// Parallelism bounds the worker goroutines for independent simulation
	// cells and per-peer publication math, exactly as Params.Parallelism.
	Parallelism int
}

// DefaultEffectiveness returns the scaled-down §6 configuration.
func DefaultEffectiveness() EffectivenessParams {
	return EffectivenessParams{Peers: 25, Objects: 100, Views: 12, Bins: 64,
		Levels: 4, ClustersPerPeer: 10, Queries: 20, Seed: 1}
}

// PaperEffectiveness returns the paper's §6 configuration. 128 histogram
// bins keep 1,000 synthetic objects as separable as the real ALOI corpus
// (at 64 bins, ~40% of a view's true top-10 belongs to colliding foreign
// objects, which no retrieval system could tell apart).
func PaperEffectiveness() EffectivenessParams {
	return EffectivenessParams{Peers: 50, Objects: 1000, Views: 12, Bins: 128,
		Levels: 4, ClustersPerPeer: 10, Queries: 50, Seed: 1}
}

// canFactory builds per-level CAN overlays with deterministic seeds.
func canFactory(seed int64) core.OverlayFactory {
	return func(level, keyDim, peers int) (overlay.Network, error) {
		return can.Build(can.Config{
			Nodes: peers,
			Dim:   keyDim,
			Rng:   rand.New(rand.NewSource(seed*1000 + int64(level))),
		})
	}
}

// markovData generates the §5.1 corpus and its peer assignment.
func markovData(p Params) ([][]float64, dataset.Assignment) {
	rng := rand.New(rand.NewSource(p.Seed))
	data := dataset.Markov(dataset.MarkovConfig{N: p.Peers * p.ItemsPerPeer, Dim: p.Dim}, rng)
	asg := dataset.AssignToPeers(data, dataset.AssignConfig{Peers: p.Peers}, rng)
	return data, asg
}

// markovSystem builds a Hyper-M system over the §5.1 synthetic corpus
// (bounds derived, not yet published) and returns the system, the corpus and
// the peer assignment.
func markovSystem(p Params) (*core.System, [][]float64, dataset.Assignment, error) {
	data, asg := markovData(p)
	sys, err := newSystem(p, rand.New(rand.NewSource(p.Seed+1)))
	if err != nil {
		return nil, nil, dataset.Assignment{}, err
	}
	loadAssignment(sys, data, asg)
	sys.DeriveBounds()
	return sys, data, asg, nil
}

// canStats extracts CAN statistics from an overlay built by canFactory.
func canStats(ov overlay.Network) (can.Stats, bool) {
	cn, ok := ov.(*can.Overlay)
	if !ok {
		return can.Stats{}, false
	}
	return cn.Stats(), true
}

// avgPublishedRadius is the mean key-space radius of every published cluster
// sphere — the quantity that drives replication overhead.
func avgPublishedRadius(sys *core.System, p Params) float64 {
	var sum float64
	var n int
	for peer := 0; peer < p.Peers; peer++ {
		for l := 0; l < p.Levels; l++ {
			for _, ref := range sys.PublishedClusters(peer, l) {
				sum += sys.KeyRadius(l, ref.Radius)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func newSystem(p Params, rng *rand.Rand) (*core.System, error) {
	return core.NewSystem(core.Config{
		Peers:           p.Peers,
		Dim:             p.Dim,
		Levels:          p.Levels,
		ClustersPerPeer: p.ClustersPerPeer,
		Factory:         canFactory(p.Seed),
		Rng:             rng,
		Parallelism:     p.Parallelism,
	})
}

// BuildMarkovSystem builds the §5.1 workload with bounds derived but nothing
// published — the exact input state PublishAll consumes. Exported for the
// publication-throughput benchmarks (bench_test.go, hyperm-bench -run publish),
// which need to time PublishAll alone on a fresh system per iteration.
func BuildMarkovSystem(p Params) (*core.System, error) {
	sys, _, _, err := markovSystem(p)
	return sys, err
}

func loadAssignment(sys *core.System, data [][]float64, asg dataset.Assignment) {
	for peer, items := range asg.PeerItems {
		if len(items) == 0 {
			continue
		}
		vecs := make([][]float64, len(items))
		for i, id := range items {
			vecs[i] = data[id]
		}
		sys.AddPeerData(peer, items, vecs)
	}
}

// pointMapper normalizes raw feature vectors into CAN key space using the
// first keyDims dimensions — the "index in only 2 dimensions" baseline of
// Fig 8b uses keyDims=2; the full-dimensional baseline uses keyDims=Dim.
type pointMapper struct {
	lo, hi  []float64
	keyDims int
}

func newPointMapper(data [][]float64, keyDims int) pointMapper {
	lo, hi := vec.MinMax(data)
	return pointMapper{lo: lo, hi: hi, keyDims: keyDims}
}

func (m pointMapper) key(x []float64) []float64 {
	out := make([]float64, m.keyDims)
	for i := 0; i < m.keyDims; i++ {
		span := m.hi[i] - m.lo[i]
		if span <= 0 {
			out[i] = 0
			continue
		}
		v := (x[i] - m.lo[i]) / span * (1 - 1e-9)
		if v < 0 {
			v = 0
		}
		if v >= 1 {
			v = 1 - 1e-9
		}
		out[i] = v
	}
	return out
}

// canItemInsertHops inserts every assigned item as a point into one CAN of
// keyDims dimensions (the paper's conventional-approach baselines) and
// returns total hops and the number of items inserted.
func canItemInsertHops(data [][]float64, asg dataset.Assignment, keyDims int, seed int64) (hops, items int, err error) {
	cn, err := can.Build(can.Config{
		Nodes: len(asg.PeerItems),
		Dim:   keyDims,
		Rng:   rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return 0, 0, err
	}
	m := newPointMapper(data, keyDims)
	for peer, ids := range asg.PeerItems {
		for _, id := range ids {
			hops += cn.InsertSphere(peer, overlay.Entry{Key: m.key(data[id]), Payload: id})
			items++
		}
	}
	return hops, items, nil
}

// flatindexOf builds the exact-search ground truth over a corpus.
func flatindexOf(data [][]float64) *flatindex.Index { return flatindex.New(data) }

// fmtF renders a float with sensible precision for table output.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }
