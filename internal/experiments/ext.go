package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hyperm/internal/baton"
	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/manet"
	"hyperm/internal/overlay"
	"hyperm/internal/parallel"
	"hyperm/internal/ring"
	"hyperm/internal/sim"
)

// EnergyRow compares the modeled physical cost of building the data index
// with Hyper-M versus the conventional per-item CAN insertion, on the same
// MANET deployment. This quantifies the paper's §1 energy motivation, which
// the published evaluation reports only through overlay hop counts.
type EnergyRow struct {
	System string
	// OverlayMessages is the count of overlay-level messages sent.
	OverlayMessages int
	// PhysTransmissions is the total radio transmissions after expanding
	// each overlay message into its physical multi-hop path.
	PhysTransmissions int
	// Joules is the modeled radio energy for the whole construction.
	Joules float64
	// MakespanSeconds is the modeled wall-clock time with all peers
	// publishing in parallel (discrete-event simulated).
	MakespanSeconds float64
}

// EnergyParams extends Params with the physical layer.
type EnergyParams struct {
	Params
	// ArenaSide and Range describe the deployment (§1's conference hall:
	// 50 m arena, Bluetooth-class 15 m radios by default).
	ArenaSide, Range float64
	// MessageBytes is the modeled size of one overlay message (default 256:
	// a cluster summary or routed item key plus headers).
	MessageBytes int
	// HopLatencySeconds is the per-physical-hop latency (default 20 ms).
	HopLatencySeconds float64
}

// DefaultEnergyParams returns a scaled-down energy experiment configuration.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{
		Params:            DefaultParams(),
		ArenaSide:         50,
		Range:             15,
		MessageBytes:      256,
		HopLatencySeconds: 0.02,
	}
}

// ExtEnergy builds the same corpus twice — Hyper-M publication vs per-item
// full-dimensional CAN insertion — charging every overlay message its
// physical multi-hop cost on a shared MANET placement, and simulating
// parallel per-peer publication with the discrete-event engine to obtain
// makespans.
func ExtEnergy(p EnergyParams) ([]EnergyRow, error) {
	if p.MessageBytes == 0 {
		p.MessageBytes = 256
	}
	if p.HopLatencySeconds == 0 {
		p.HopLatencySeconds = 0.02
	}
	phys, err := manet.New(manet.Config{
		Nodes:     p.Peers,
		ArenaSide: p.ArenaSide,
		Range:     p.Range,
	}, rand.New(rand.NewSource(p.Seed+90)))
	if err != nil {
		return nil, err
	}

	data, asg := markovData(p.Params)

	// charge accumulates the physical expansion of overlay messages.
	type account struct {
		msgs, transmissions int
		joules              float64
	}
	newObserver := func(acc *account) overlay.Observer {
		return func(from, to int) {
			cost := phys.Cost(from, to, p.MessageBytes, manet.DefaultEnergy, p.HopLatencySeconds)
			acc.msgs++
			acc.transmissions += cost.PhysHops
			acc.joules += cost.Joules
		}
	}

	// Hyper-M: per-level overlays with the charging observer; parallel
	// publication simulated per peer.
	var hyperAcc account
	factory := func(level, keyDim, peers int) (overlay.Network, error) {
		return can.Build(can.Config{
			Nodes:    peers,
			Dim:      keyDim,
			Rng:      rand.New(rand.NewSource(p.Seed*100 + int64(level))),
			Observer: newObserver(&hyperAcc),
		})
	}
	sys, err := core.NewSystem(core.Config{
		Peers:           p.Peers,
		Dim:             p.Dim,
		Levels:          p.Levels,
		ClustersPerPeer: p.ClustersPerPeer,
		Factory:         factory,
		Rng:             rand.New(rand.NewSource(p.Seed + 91)),
		Parallelism:     p.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	loadAssignment(sys, data, asg)
	sys.DeriveBounds()
	hyperAcc = account{} // discount join traffic: both systems need a built overlay

	// Parallel publication: each peer's publish runs as one event; its
	// duration is its own message cost. The makespan is the engine time
	// after all peers finish.
	var engine sim.Engine
	var hyperMakespan float64
	for peer := 0; peer < p.Peers; peer++ {
		peer := peer
		engine.Schedule(0, func() {
			before := hyperAcc.transmissions
			sys.PublishPeer(peer)
			dur := float64(hyperAcc.transmissions-before) * p.HopLatencySeconds
			engine.Schedule(dur, func() {
				if engine.Now() > hyperMakespan {
					hyperMakespan = engine.Now()
				}
			})
		})
	}
	engine.Run()

	// Conventional CAN: per-item insertion, same accounting.
	var canAcc account
	cn, err := can.Build(can.Config{
		Nodes:    p.Peers,
		Dim:      p.Dim,
		Rng:      rand.New(rand.NewSource(p.Seed + 92)),
		Observer: newObserver(&canAcc),
	})
	if err != nil {
		return nil, err
	}
	canAcc = account{}
	m := newPointMapper(data, p.Dim)
	var canEngine sim.Engine
	var canMakespan float64
	for peer, ids := range asg.PeerItems {
		peer, ids := peer, ids
		canEngine.Schedule(0, func() {
			before := canAcc.transmissions
			for _, id := range ids {
				cn.InsertSphere(peer, overlay.Entry{Key: m.key(data[id]), Payload: id})
			}
			dur := float64(canAcc.transmissions-before) * p.HopLatencySeconds
			canEngine.Schedule(dur, func() {
				if canEngine.Now() > canMakespan {
					canMakespan = canEngine.Now()
				}
			})
		})
	}
	canEngine.Run()

	return []EnergyRow{
		{System: "Hyper-M", OverlayMessages: hyperAcc.msgs, PhysTransmissions: hyperAcc.transmissions,
			Joules: hyperAcc.joules, MakespanSeconds: hyperMakespan},
		{System: "CAN-per-item", OverlayMessages: canAcc.msgs, PhysTransmissions: canAcc.transmissions,
			Joules: canAcc.joules, MakespanSeconds: canMakespan},
	}, nil
}

// OverlayIndepRow compares the same Hyper-M pipeline over two different
// overlay substrates — the paper's §5 independence claim.
type OverlayIndepRow struct {
	Overlay string
	// AvgHopsPerItem is the publication cost per data item.
	AvgHopsPerItem float64
	// RecallAvg is the unlimited-budget range-query recall (must be 1.0 on
	// both substrates: the no-false-dismissal property is overlay-agnostic).
	RecallAvg float64
}

// ExtOverlayIndependence runs publication plus range queries on CAN and on
// the z-order ring.
func ExtOverlayIndependence(p EffectivenessParams) ([]OverlayIndepRow, error) {
	factories := []struct {
		name string
		f    core.OverlayFactory
	}{
		{"CAN", canFactory(p.Seed + 10)},
		{"z-order ring", func(level, keyDim, peers int) (overlay.Network, error) {
			return ring.Build(ring.Config{
				Nodes: peers,
				Dim:   keyDim,
				Rng:   rand.New(rand.NewSource(p.Seed*10 + int64(level))),
			})
		}},
		{"BATON", func(level, keyDim, peers int) (overlay.Network, error) {
			return baton.Build(baton.Config{
				Nodes: peers,
				Dim:   keyDim,
				Rng:   rand.New(rand.NewSource(p.Seed*10 + int64(level))),
			})
		}},
	}
	// One cell per substrate: each regenerates its corpus from the same seed
	// and builds its own overlays, so the cells run concurrently.
	return parallel.Map(nil, p.Parallelism, len(factories), func(ci int) (OverlayIndepRow, error) {
		fac := factories[ci]
		rng := rand.New(rand.NewSource(p.Seed))
		data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: p.Objects, Views: p.Views, Bins: p.Bins}, rng)
		sys, err := core.NewSystem(core.Config{
			Peers:           p.Peers,
			Dim:             p.Bins,
			Levels:          p.Levels,
			ClustersPerPeer: p.ClustersPerPeer,
			Factory:         fac.f,
			Rng:             rng,
			Parallelism:     p.Parallelism,
		})
		if err != nil {
			return OverlayIndepRow{}, err
		}
		for i, x := range data {
			sys.AddPeerData(labels[i]%p.Peers, []int{i}, [][]float64{x})
		}
		sys.DeriveBounds()
		st := sys.PublishAll()

		truth := flatindexOf(data)
		qrng := rand.New(rand.NewSource(p.Seed + 70))
		var sumR float64
		var nq int
		for nq < p.Queries {
			q := data[qrng.Intn(len(data))]
			eps := 0.03 + qrng.Float64()*0.09
			rel := truth.Range(q, eps)
			if len(rel) < 2 {
				continue
			}
			res := sys.RangeQuery(0, q, eps, core.RangeOptions{})
			_, rec := eval.PrecisionRecall(res.Items, rel)
			sumR += rec
			nq++
		}
		return OverlayIndepRow{
			Overlay:        fac.name,
			AvgHopsPerItem: safeDiv(st.Hops, sys.TotalItems()),
			RecallAvg:      sumR / float64(nq),
		}, nil
	})
}

// AggRow compares score-aggregation policies (§3.2 ablation) under a fixed
// peer budget, where the policies actually differ in which peers they rank
// highest.
type AggRow struct {
	Policy string
	// RecallAvg is range-query recall with a budget of p.Peers/5 contacts.
	RecallAvg float64
	// PeersWithScore is the average number of candidate peers surfaced —
	// min prunes harder than sum.
	PeersWithScore float64
}

// ExtAggregation measures how the min/sum/mean policies trade candidate-set
// size against budgeted recall.
func ExtAggregation(p EffectivenessParams) ([]AggRow, error) {
	budget := p.Peers / 5
	if budget < 1 {
		budget = 1
	}
	policies := []core.Aggregation{core.AggMin, core.AggSum, core.AggMean}
	// One independent cell per aggregation policy.
	return parallel.Map(nil, p.Parallelism, len(policies), func(ci int) (AggRow, error) {
		agg := policies[ci]
		rng := rand.New(rand.NewSource(p.Seed))
		data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: p.Objects, Views: p.Views, Bins: p.Bins}, rng)
		sys, err := core.NewSystem(core.Config{
			Peers:           p.Peers,
			Dim:             p.Bins,
			Levels:          p.Levels,
			ClustersPerPeer: p.ClustersPerPeer,
			Aggregation:     agg,
			Factory:         canFactory(p.Seed + 10),
			Rng:             rng,
			Parallelism:     p.Parallelism,
		})
		if err != nil {
			return AggRow{}, err
		}
		for i, x := range data {
			sys.AddPeerData(labels[i]%p.Peers, []int{i}, [][]float64{x})
		}
		sys.DeriveBounds()
		sys.PublishAll()

		truth := flatindexOf(data)
		qrng := rand.New(rand.NewSource(p.Seed + 71))
		var sumR, sumC float64
		var nq int
		for nq < p.Queries {
			q := data[qrng.Intn(len(data))]
			eps := 0.03 + qrng.Float64()*0.09
			rel := truth.Range(q, eps)
			if len(rel) < 2 {
				continue
			}
			res := sys.RangeQuery(0, q, eps, core.RangeOptions{MaxPeers: budget})
			_, rec := eval.PrecisionRecall(res.Items, rel)
			sumR += rec
			sumC += float64(len(res.Scores))
			nq++
		}
		return AggRow{
			Policy:         agg.String(),
			RecallAvg:      sumR / float64(nq),
			PeersWithScore: sumC / float64(nq),
		}, nil
	})
}

// RenderEnergy formats the rows as the CLI table.
func RenderEnergy(rows []EnergyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — modeled energy and makespan of index construction on a MANET\n")
	fmt.Fprintf(&b, "%-14s %-18s %-20s %-12s %-14s\n", "system", "overlay messages", "phys transmissions", "joules", "makespan (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-18d %-20d %-12.4f %-14.2f\n",
			r.System, r.OverlayMessages, r.PhysTransmissions, r.Joules, r.MakespanSeconds)
	}
	return b.String()
}

// RenderOverlayIndep formats the rows as the CLI table.
func RenderOverlayIndep(rows []OverlayIndepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — overlay independence (same pipeline, different substrates)\n")
	fmt.Fprintf(&b, "%-14s %-16s %-12s\n", "overlay", "hops per item", "recall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-16s %-12s\n", r.Overlay, fmtF(r.AvgHopsPerItem), fmtF(r.RecallAvg))
	}
	return b.String()
}

// RenderAgg formats the rows as the CLI table.
func RenderAgg(rows []AggRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — score aggregation policy ablation (budgeted range queries)\n")
	fmt.Fprintf(&b, "%-8s %-12s %-18s\n", "policy", "recall", "candidate peers")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-12s %-18s\n", r.Policy, fmtF(r.RecallAvg), fmtF(r.PeersWithScore))
	}
	return b.String()
}
