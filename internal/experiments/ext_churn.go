package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hyperm/internal/core"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/flatindex"
	"hyperm/internal/parallel"
)

// ChurnRow measures retrieval under peer failures — devices crashing or
// walking out of radio range after the overlay is built, the defining
// MANET hazard. Two recall figures separate the two damage mechanisms:
//
//   - RecallVsAll is measured against the full original corpus; it bounds
//     from above how much data is simply gone with its owners.
//   - RecallVsSurviving is measured against only the items held by peers
//     that are still alive; any shortfall here is index damage — summaries
//     and replicas lost with the failed overlay nodes.
type ChurnRow struct {
	// Mode is "crash" (index records lost with the node) or "graceful"
	// (records handed to neighbors first — the CAN departure protocol).
	Mode string
	// FailedPercent is the fraction of peers killed after publication.
	FailedPercent float64
	// RecallVsAll is range recall against the full corpus.
	RecallVsAll float64
	// RecallVsSurviving is range recall against reachable items only.
	RecallVsSurviving float64
	// IndexRecordsLost counts overlay records wiped with the dead nodes.
	IndexRecordsLost int
}

// ExtChurn publishes the effectiveness corpus, then fails growing fractions
// of peers and measures both recall figures.
func ExtChurn(p EffectivenessParams, failFractions []float64) ([]ChurnRow, error) {
	if len(failFractions) == 0 {
		failFractions = []float64{0, 0.1, 0.2, 0.3, 0.5}
	}
	// Every (mode, fraction) pair is an independent cell: it publishes its
	// own system and kills its own peers. Flatten the grid and fan it out.
	type cell struct {
		mode string
		fi   int
	}
	var cells []cell
	for _, mode := range []string{"crash", "graceful"} {
		for fi := range failFractions {
			cells = append(cells, cell{mode: mode, fi: fi})
		}
	}
	return parallel.Map(nil, p.Parallelism, len(cells), func(ci int) (ChurnRow, error) {
		return extChurnCell(p, failFractions[cells[ci].fi], cells[ci].fi, cells[ci].mode)
	})
}

func extChurnCell(p EffectivenessParams, frac float64, fi int, mode string) (ChurnRow, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: p.Objects, Views: p.Views, Bins: p.Bins}, rng)
	sys, err := core.NewSystem(core.Config{
		Peers:           p.Peers,
		Dim:             p.Bins,
		Levels:          p.Levels,
		ClustersPerPeer: p.ClustersPerPeer,
		Factory:         canFactory(p.Seed + 10),
		Rng:             rng,
		Parallelism:     p.Parallelism,
	})
	if err != nil {
		return ChurnRow{}, err
	}
	peerOf := make([]int, len(data))
	for i, x := range data {
		peerOf[i] = labels[i] % p.Peers
		sys.AddPeerData(peerOf[i], []int{i}, [][]float64{x})
	}
	sys.DeriveBounds()
	sys.PublishAll()

	// Kill a random subset of peers.
	krng := rand.New(rand.NewSource(p.Seed + int64(fi)*131))
	nFail := int(frac * float64(p.Peers))
	dead := map[int]bool{}
	lost := 0
	for _, peer := range krng.Perm(p.Peers)[:nFail] {
		dead[peer] = true
		if mode == "graceful" {
			if _, err := sys.LeavePeer(peer); err != nil {
				return ChurnRow{}, err
			}
		} else {
			lost += sys.FailPeer(peer)
		}
	}

	// Ground truths.
	truthAll := flatindex.New(data)
	var surviving []int
	for i := range data {
		if !dead[peerOf[i]] {
			surviving = append(surviving, i)
		}
	}
	survVecs := make([][]float64, len(surviving))
	for j, i := range surviving {
		survVecs[j] = data[i]
	}
	truthSurv := flatindex.New(survVecs)

	qrng := rand.New(rand.NewSource(p.Seed + 95))
	var sumAll, sumSurv float64
	var nq int
	for nq < p.Queries {
		// Query from a surviving item so the querier itself is alive.
		qi := surviving[qrng.Intn(len(surviving))]
		q := data[qi]
		eps := 0.03 + qrng.Float64()*0.09
		relAll := truthAll.Range(q, eps)
		relSurvLocal := truthSurv.Range(q, eps)
		if len(relAll) < 2 {
			continue
		}
		relSurv := make([]int, len(relSurvLocal))
		for j, id := range relSurvLocal {
			relSurv[j] = surviving[id]
		}
		res := sys.RangeQuery(peerOf[qi], q, eps, core.RangeOptions{})
		_, recAll := eval.PrecisionRecall(res.Items, relAll)
		_, recSurv := eval.PrecisionRecall(res.Items, relSurv)
		sumAll += recAll
		sumSurv += recSurv
		nq++
	}
	return ChurnRow{
		Mode:              mode,
		FailedPercent:     frac * 100,
		RecallVsAll:       sumAll / float64(nq),
		RecallVsSurviving: sumSurv / float64(nq),
		IndexRecordsLost:  lost,
	}, nil
}

// RenderChurn formats the rows as the CLI table.
func RenderChurn(rows []ChurnRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — peer failures after publication (churn)\n")
	fmt.Fprintf(&b, "%-10s %-12s %-16s %-20s %-18s\n", "mode", "failed %", "recall vs all", "recall vs surviving", "index records lost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-12.0f %-16s %-20s %-18d\n",
			r.Mode, r.FailedPercent, fmtF(r.RecallVsAll), fmtF(r.RecallVsSurviving), r.IndexRecordsLost)
	}
	return b.String()
}
