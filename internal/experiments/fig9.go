package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/overlay"
	"hyperm/internal/parallel"
	"hyperm/internal/wavelet"
)

// Fig9Row summarizes the data distribution across CAN nodes for one overlay
// configuration under intentionally skewed data (§5.3): the corpus is
// clustered and only a fixed number of clusters is kept, then published.
// The paper's observation: the original-space CAN and the approximation-only
// configuration concentrate data on very few nodes, while adding detail
// levels spreads it out thanks to the orthogonality of the wavelet
// subspaces.
type Fig9Row struct {
	// Config names the overlay configuration ("CAN-original", "A",
	// "A+D_0", ...).
	Config string
	// NonEmptyPeers is the number of peers holding at least one item
	// (the paper's "average number of peers holding the data").
	NonEmptyPeers int
	// MaxItems is the item mass on the most loaded peer.
	MaxItems int
	// Gini is the Gini coefficient of the per-peer item mass (0 = uniform).
	Gini float64
	// CV is the coefficient of variation of the per-peer item mass.
	CV float64
}

// Fig9 measures load distribution for the original-space CAN baseline and
// for Hyper-M with 1..p.Levels overlays, under a skew that keeps only
// keepClusters interest clusters (paper: two to five).
func Fig9(p Params, keepClusters int) ([]Fig9Row, error) {
	if keepClusters <= 0 {
		keepClusters = 3
	}
	rng := rand.New(rand.NewSource(p.Seed))
	data := dataset.Markov(dataset.MarkovConfig{N: p.Peers * p.ItemsPerPeer, Dim: p.Dim}, rng)
	asg := dataset.AssignToPeers(data, dataset.AssignConfig{
		Peers:        p.Peers,
		KeepClusters: keepClusters,
	}, rng)

	// Cell 0 is the original-space CAN baseline; cell l >= 1 is Hyper-M with
	// l overlays. All cells read the shared corpus but build their own
	// overlays, so they run concurrently; Map keeps the row order.
	return parallel.Map(nil, p.Parallelism, p.Levels+1, func(ci int) (Fig9Row, error) {
		if ci == 0 {
			// Baseline: every kept item inserted as a point into one CAN of
			// the original dimensionality; load = items owned per node.
			return fig9OriginalCAN(data, asg, p)
		}

		// Hyper-M with a growing number of overlays. Load per peer is the
		// item mass of the cluster spheres it owns (centroid in its zone),
		// summed over the configured levels.
		levels := ci
		pl := p
		pl.Levels = levels
		sys, err := newSystem(pl, rand.New(rand.NewSource(pl.Seed+2)))
		if err != nil {
			return Fig9Row{}, err
		}
		loadAssignment(sys, data, asg)
		sys.DeriveBounds()
		sys.PublishAll()

		loads := make([]int, pl.Peers)
		for l := 0; l < levels; l++ {
			cn, ok := sys.Overlay(l).(*can.Overlay)
			if !ok {
				return Fig9Row{}, fmt.Errorf("experiments: overlay %d is not CAN", l)
			}
			addOwnedItemMass(cn, loads)
		}
		st := eval.Load(loads)
		return Fig9Row{
			Config:        configName(levels),
			NonEmptyPeers: st.NonEmpty,
			MaxItems:      st.Max,
			Gini:          st.Gini,
			CV:            st.CV,
		}, nil
	})
}

// fig9OriginalCAN computes the load row for the conventional approach.
func fig9OriginalCAN(data [][]float64, asg dataset.Assignment, p Params) (Fig9Row, error) {
	cn, err := can.Build(can.Config{
		Nodes: p.Peers,
		Dim:   p.Dim,
		Rng:   rand.New(rand.NewSource(p.Seed + 3)),
	})
	if err != nil {
		return Fig9Row{}, err
	}
	m := newPointMapper(data, p.Dim)
	for peer, ids := range asg.PeerItems {
		for _, id := range ids {
			cn.InsertSphere(peer, overlay.Entry{Key: m.key(data[id]), Payload: 1})
		}
	}
	loads := make([]int, p.Peers)
	addOwnedItemMass(cn, loads)
	st := eval.Load(loads)
	return Fig9Row{
		Config:        "CAN-original",
		NonEmptyPeers: st.NonEmpty,
		MaxItems:      st.Max,
		Gini:          st.Gini,
		CV:            st.CV,
	}, nil
}

// addOwnedItemMass accumulates per-node item mass: a cluster payload counts
// the items it summarizes, a raw item counts one.
func addOwnedItemMass(cn *can.Overlay, loads []int) {
	for id := range loads {
		for _, e := range cn.OwnedEntries(id) {
			if ref, ok := e.Payload.(core.ClusterRef); ok {
				loads[id] += ref.Items
			} else {
				loads[id]++
			}
		}
	}
}

func configName(levels int) string {
	parts := []string{"A"}
	for l := 1; l < levels; l++ {
		parts = append(parts, wavelet.SubspaceName(l))
	}
	return strings.Join(parts, "+")
}

// RenderFig9 formats the rows as the CLI table.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — data distribution among nodes (skewed corpus)\n")
	fmt.Fprintf(&b, "%-16s %-16s %-12s %-10s %-10s\n", "config", "non-empty peers", "max items", "Gini", "CV")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-16d %-12d %-10s %-10s\n",
			r.Config, r.NonEmptyPeers, r.MaxItems, fmtF(r.Gini), fmtF(r.CV))
	}
	return b.String()
}
