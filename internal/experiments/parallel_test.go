package experiments

import (
	"path/filepath"
	"reflect"
	"testing"

	"hyperm/internal/benchio"
)

// Driver determinism: running a sweep with concurrent cells must produce
// exactly the rows of the serial run — every cell builds its own system from
// its own seeds and Map merges rows in sweep order.
func TestDriversSerialParallelIdentical(t *testing.T) {
	serialP, parP := tinyParams(), tinyParams()
	serialP.Parallelism, parP.Parallelism = 1, 4
	serialE, parE := tinyEffectiveness(), tinyEffectiveness()
	serialE.Parallelism, parE.Parallelism = 1, 4

	check := func(name string, serial, par func() (any, error)) {
		t.Helper()
		s, err := serial()
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		p, err := par()
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !reflect.DeepEqual(s, p) {
			t.Errorf("%s: parallel rows diverged from serial\nserial   %+v\nparallel %+v", name, s, p)
		}
	}

	check("Fig8a",
		func() (any, error) { return Fig8a(serialP, []int{2, 10}) },
		func() (any, error) { return Fig8a(parP, []int{2, 10}) })
	check("Fig8c",
		func() (any, error) { return Fig8c(serialP, []int{1, 3}) },
		func() (any, error) { return Fig8c(parP, []int{1, 3}) })
	check("Fig9",
		func() (any, error) { return Fig9(serialP, 3) },
		func() (any, error) { return Fig9(parP, 3) })
	check("Fig10c",
		func() (any, error) { return Fig10c(serialE, []float64{0, 0.3}) },
		func() (any, error) { return Fig10c(parE, []float64{0, 0.3}) })
	check("Fig11",
		func() (any, error) { return Fig11(serialE, 3) },
		func() (any, error) { return Fig11(parE, 3) })
	check("ExtScale",
		func() (any, error) { return ExtScale(serialP, []int{10, 20}) },
		func() (any, error) { return ExtScale(parP, []int{10, 20}) })
	check("ExtChurn",
		func() (any, error) { return ExtChurn(serialE, []float64{0, 0.3}) },
		func() (any, error) { return ExtChurn(parE, []float64{0, 0.3}) })
}

// The publish benchmark driver must keep hop counts identical across
// parallelism settings (its own built-in check), report throughput, and
// round-trip through the BENCH_publish.json writer.
func TestPublishBench(t *testing.T) {
	rows, err := PublishBench(tinyParams(), []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Parallelism != 1 || rows[0].Workers != 1 {
		t.Errorf("serial row: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Items == 0 || r.Clusters == 0 || r.Hops == 0 {
			t.Errorf("empty measurement: %+v", r)
		}
		if r.Seconds <= 0 || r.ItemsPerSecond <= 0 || r.Speedup <= 0 {
			t.Errorf("missing timing: %+v", r)
		}
		if r.Hops != rows[0].Hops {
			t.Errorf("hops diverged across parallelism: %+v vs %+v", rows[0], r)
		}
	}
	if RenderPublishBench(rows) == "" {
		t.Error("empty render")
	}

	path := filepath.Join(t.TempDir(), "BENCH_publish.json")
	if err := WritePublishBenchJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	var back []PublishBenchRow
	if _, err := benchio.Read(path, "publish", &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) || back[0].Hops != rows[0].Hops {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

// The kernel comparison driver must verify optimized-vs-reference agreement
// internally, report positive timings and solver eval counts, and round-trip
// through the BENCH_kernels.json writer.
func TestKernelBench(t *testing.T) {
	rows, err := KernelBench(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.RefSeconds <= 0 || r.OptSeconds <= 0 || r.Speedup <= 0 {
			t.Errorf("missing timing: %+v", r)
		}
		switch r.Kernel {
		case "kmeans":
			if r.RefBetaEvals != 0 || r.OptBetaEvals != 0 {
				t.Errorf("kmeans row carries solver eval counts: %+v", r)
			}
		case "solve_eps":
			if r.RefBetaEvals <= 0 {
				t.Errorf("solver row missing eval counts: %+v", r)
			}
		default:
			t.Errorf("unknown kernel: %+v", r)
		}
	}
	if RenderKernelBench(rows) == "" {
		t.Error("empty render")
	}

	path := filepath.Join(t.TempDir(), "BENCH_kernels.json")
	if err := WriteKernelBenchJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	var back []KernelBenchRow
	if _, err := benchio.Read(path, "kernels", &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) || back[0].Kernel != rows[0].Kernel {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}
