package experiments

import (
	"fmt"
	"strings"

	"hyperm/internal/parallel"
)

// Fig8aRow is one point of Figure 8a: the replication overhead of inserting
// cluster spheres into CAN, as a function of clustering granularity.
// Finer clustering (more, smaller clusters) overlaps fewer foreign zones,
// so the overhead approaches the no-replication (point-insert) baseline.
type Fig8aRow struct {
	ClustersPerPeer int
	// AvgHopsWithReplication is the mean overlay hops per cluster insertion
	// including replica placement (Fig 6 overhead).
	AvgHopsWithReplication float64
	// AvgHopsNoReplication is the same pipeline with replication disabled
	// (spheres inserted as points) — the paper's "no-replication standard".
	AvgHopsNoReplication float64
	// AvgClusterRadius is the mean published key-space radius, explaining
	// the trend.
	AvgClusterRadius float64
}

// Fig8a measures cluster replication overhead over a sweep of
// clusters-per-peer values.
func Fig8a(p Params, sweep []int) ([]Fig8aRow, error) {
	if len(sweep) == 0 {
		sweep = []int{2, 5, 10, 20, 50}
	}
	// Every sweep point builds its own System from its own seeds, so the
	// cells run concurrently; Map keeps the rows in sweep order.
	return parallel.Map(nil, p.Parallelism, len(sweep), func(ci int) (Fig8aRow, error) {
		k := sweep[ci]
		pk := p
		pk.ClustersPerPeer = k
		sys, _, _, err := markovSystem(pk)
		if err != nil {
			return Fig8aRow{}, err
		}
		st := sys.PublishAll()
		if st.ClustersPublished == 0 {
			return Fig8aRow{}, fmt.Errorf("experiments: fig8a published no clusters for K=%d", k)
		}
		// CAN separates routing hops (the no-replication standard: the cost
		// of inserting the same summaries as points) from the replication
		// messages of Fig 6; the paper's "with replication" line is their
		// sum.
		var route int
		for l := 0; l < pk.Levels; l++ {
			cs, ok := canStats(sys.Overlay(l))
			if !ok {
				return Fig8aRow{}, fmt.Errorf("experiments: overlay %d is not CAN", l)
			}
			route += cs.InsertRouteHops
		}
		return Fig8aRow{
			ClustersPerPeer:        k,
			AvgHopsWithReplication: float64(st.Hops) / float64(st.ClustersPublished),
			AvgHopsNoReplication:   float64(route) / float64(st.ClustersPublished),
			AvgClusterRadius:       avgPublishedRadius(sys, pk),
		}, nil
	})
}

// Fig8bRow is one point of Figure 8b: average insertion hops per data item
// as the corpus grows, for Hyper-M and the two conventional baselines.
type Fig8bRow struct {
	Items int
	// HyperM is avg overlay hops per item for Hyper-M with p.Levels layers
	// (cluster publication cost amortized over all items it summarizes).
	HyperM float64
	// CAN2D is avg hops per item inserting every item into a 2-d CAN
	// (the paper's illustrative low-dimensional baseline).
	CAN2D float64
	// CANFull is avg hops per item inserting every item into a CAN of the
	// full data dimensionality.
	CANFull float64
}

// Fig8b sweeps the corpus size and reports per-item insertion cost for the
// three systems.
func Fig8b(p Params, itemSweep []int) ([]Fig8bRow, error) {
	if len(itemSweep) == 0 {
		base := p.Peers * p.ItemsPerPeer
		itemSweep = []int{base / 5, 2 * base / 5, 3 * base / 5, 4 * base / 5, base}
	}
	cells, err := parallel.Map(nil, p.Parallelism, len(itemSweep), func(ci int) (Fig8bRow, error) {
		pn := p
		pn.ItemsPerPeer = itemSweep[ci] / p.Peers
		if pn.ItemsPerPeer < 1 {
			pn.ItemsPerPeer = 1
		}
		sys, data, asg, err := markovSystem(pn)
		if err != nil {
			return Fig8bRow{}, err
		}
		st := sys.PublishAll()
		total := sys.TotalItems()
		if total == 0 {
			return Fig8bRow{}, nil // empty cell, dropped below
		}
		hyper := float64(st.Hops) / float64(total)

		hops2d, items2d, err := canItemInsertHops(data, asg, 2, pn.Seed+77)
		if err != nil {
			return Fig8bRow{}, err
		}
		hopsFull, itemsFull, err := canItemInsertHops(data, asg, pn.Dim, pn.Seed+78)
		if err != nil {
			return Fig8bRow{}, err
		}
		return Fig8bRow{
			Items:   total,
			HyperM:  hyper,
			CAN2D:   safeDiv(hops2d, items2d),
			CANFull: safeDiv(hopsFull, itemsFull),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8bRow, 0, len(cells))
	for _, r := range cells {
		if r.Items > 0 {
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// Fig8cRow is one point of Figure 8c: average insertion hops per item as a
// function of how many wavelet layers Hyper-M maintains.
type Fig8cRow struct {
	Layers int
	// HyperM is avg hops per item with that many overlays.
	HyperM float64
	// CAN2D and CANFull are the flat reference lines of the paper's plot.
	CAN2D, CANFull float64
}

// Fig8c sweeps the number of overlay layers.
func Fig8c(p Params, layerSweep []int) ([]Fig8cRow, error) {
	if len(layerSweep) == 0 {
		layerSweep = []int{1, 2, 3, 4, 5, 6}
	}
	// The baselines do not depend on the layer count: compute once.
	data, asg := markovData(p)
	hops2d, items2d, err := canItemInsertHops(data, asg, 2, p.Seed+81)
	if err != nil {
		return nil, err
	}
	hopsFull, itemsFull, err := canItemInsertHops(data, asg, p.Dim, p.Seed+82)
	if err != nil {
		return nil, err
	}
	base2d, baseFull := safeDiv(hops2d, items2d), safeDiv(hopsFull, itemsFull)

	return parallel.Map(nil, p.Parallelism, len(layerSweep), func(ci int) (Fig8cRow, error) {
		pl := p
		pl.Levels = layerSweep[ci]
		sys, _, _, err := markovSystem(pl)
		if err != nil {
			return Fig8cRow{}, err
		}
		st := sys.PublishAll()
		return Fig8cRow{
			Layers:  pl.Levels,
			HyperM:  safeDiv(st.Hops, sys.TotalItems()),
			CAN2D:   base2d,
			CANFull: baseFull,
		}, nil
	})
}

func safeDiv(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// RenderFig8a formats the rows as the CLI table.
func RenderFig8a(rows []Fig8aRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8a — cluster replication overhead (avg hops per cluster insertion)\n")
	fmt.Fprintf(&b, "%-16s %-18s %-18s %-12s\n", "clusters/peer", "with-replication", "no-replication", "avg radius")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16d %-18s %-18s %-12s\n", r.ClustersPerPeer,
			fmtF(r.AvgHopsWithReplication), fmtF(r.AvgHopsNoReplication), fmtF(r.AvgClusterRadius))
	}
	return b.String()
}

// RenderFig8b formats the rows as the CLI table.
func RenderFig8b(rows []Fig8bRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8b — avg hops per item insertion vs data volume\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s\n", "items", "Hyper-M", "CAN-2d", "CAN-full")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-12s %-12s %-12s\n", r.Items, fmtF(r.HyperM), fmtF(r.CAN2D), fmtF(r.CANFull))
	}
	return b.String()
}

// RenderFig8c formats the rows as the CLI table.
func RenderFig8c(rows []Fig8cRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8c — avg hops per item insertion vs overlay layers\n")
	fmt.Fprintf(&b, "%-8s %-12s %-12s %-12s\n", "layers", "Hyper-M", "CAN-2d", "CAN-full")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-12s %-12s %-12s\n", r.Layers, fmtF(r.HyperM), fmtF(r.CAN2D), fmtF(r.CANFull))
	}
	return b.String()
}
