package experiments

import (
	"fmt"
	"strings"
	"time"

	"hyperm/internal/benchio"
	"hyperm/internal/cluster"
	"hyperm/internal/geometry"
	"hyperm/internal/parallel"
)

// PublishBenchRow is one measurement of the publication-throughput study:
// the wall-clock cost of PublishAll — the per-peer decompose + cluster math
// plus the serial overlay insertion — at one Parallelism setting. The rows
// are what `hyperm-bench -run publish` renders and what -out writes as
// BENCH_publish.json.
type PublishBenchRow struct {
	// Parallelism is the configured knob (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// Workers is the resolved worker count actually used.
	Workers int `json:"workers"`
	// Items is the corpus size published.
	Items int `json:"items"`
	// Clusters is the number of cluster summaries published.
	Clusters int `json:"clusters"`
	// Hops is the total overlay hop count — identical across rows by the
	// determinism contract, and checked.
	Hops int `json:"hops"`
	// Seconds is the wall-clock PublishAll duration.
	Seconds float64 `json:"seconds"`
	// ItemsPerSecond is the resulting publication throughput.
	ItemsPerSecond float64 `json:"items_per_second"`
	// Speedup is Seconds(serial) / Seconds(this row); 1.0 for the serial row.
	Speedup float64 `json:"speedup"`
}

// PublishBench measures PublishAll wall-clock time for each requested
// parallelism setting on the §5.1 workload. Every setting publishes a fresh
// system built from the same seeds, so the rows differ only in timing; the
// hop counts must agree, and PublishBench fails loudly if they do not —
// a cheap standing check of the determinism contract on real workloads.
func PublishBench(p Params, parallelisms []int) ([]PublishBenchRow, error) {
	if len(parallelisms) == 0 {
		parallelisms = []int{1, 0} // serial baseline, then all cores
	}
	rows := make([]PublishBenchRow, 0, len(parallelisms))
	for _, par := range parallelisms {
		pp := p
		pp.Parallelism = par
		sys, err := BuildMarkovSystem(pp)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		st := sys.PublishAll()
		elapsed := time.Since(start).Seconds()
		items := sys.TotalItems()
		row := PublishBenchRow{
			Parallelism: par,
			Workers:     parallel.Workers(par),
			Items:       items,
			Clusters:    st.ClustersPublished,
			Hops:        st.Hops,
			Seconds:     elapsed,
		}
		if elapsed > 0 {
			row.ItemsPerSecond = float64(items) / elapsed
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if rows[i].Hops != rows[0].Hops || rows[i].Clusters != rows[0].Clusters {
			return nil, fmt.Errorf("experiments: publish bench determinism violation: parallelism %d published %d clusters / %d hops, parallelism %d published %d / %d",
				rows[0].Parallelism, rows[0].Clusters, rows[0].Hops,
				rows[i].Parallelism, rows[i].Clusters, rows[i].Hops)
		}
		if rows[i].Seconds > 0 {
			rows[i].Speedup = rows[0].Seconds / rows[i].Seconds
		}
	}
	return rows, nil
}

// WritePublishBenchJSON writes the rows to path under the shared benchio
// envelope — the BENCH_publish.json artifact.
func WritePublishBenchJSON(path string, rows []PublishBenchRow) error {
	return benchio.Write(path, "publish", rows)
}

// RenderPublishBench formats the rows as the CLI table.
func RenderPublishBench(rows []PublishBenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Publication throughput — PublishAll wall-clock vs Parallelism\n")
	fmt.Fprintf(&b, "%-12s %-9s %-8s %-10s %-8s %-10s %-12s %-9s\n",
		"parallelism", "workers", "items", "clusters", "hops", "seconds", "items/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %-9d %-8d %-10d %-8d %-10.3f %-12.0f %-9.2f\n",
			r.Parallelism, r.Workers, r.Items, r.Clusters, r.Hops, r.Seconds, r.ItemsPerSecond, r.Speedup)
	}
	return b.String()
}

// KernelBenchRow is one old-vs-new timing of a hot-path kernel: either the
// k-means clustering behind PublishAll or the Eq 8 radius solver behind
// KNNQuery. The rows are what `hyperm-bench -run kernels` renders and what
// -out writes as BENCH_kernels.json.
type KernelBenchRow struct {
	// Kernel names the measured kernel: "kmeans" or "solve_eps".
	Kernel string `json:"kernel"`
	// Dim is the point (k-means) or subspace (solver) dimensionality.
	Dim int `json:"dim"`
	// Workload sizes the input: points clustered or spheres per solve.
	Workload int `json:"workload"`
	// Rounds is how many repetitions the timings aggregate.
	Rounds int `json:"rounds"`
	// RefSeconds / OptSeconds are total wall-clock times of the retained
	// naive kernel and the optimized kernel on the identical input.
	RefSeconds float64 `json:"ref_seconds"`
	OptSeconds float64 `json:"opt_seconds"`
	// Speedup is RefSeconds / OptSeconds.
	Speedup float64 `json:"speedup"`
	// RefBetaEvals / OptBetaEvals count continued-fraction RegIncBeta
	// evaluations (solver rows only; zero for k-means rows).
	RefBetaEvals int64 `json:"ref_beta_evals,omitempty"`
	OptBetaEvals int64 `json:"opt_beta_evals,omitempty"`
}

// KernelBench runs the kernel comparison study: the optimized k-means against
// its retained reference at d ∈ {2, 8, 64}, and the optimized Eq 8 solver
// against its Newton reference at even and odd subspace dimensions. Every row
// also verifies the two kernels agree (bit-identical clustering results,
// matching solver roots), so the bench doubles as a regression check.
func KernelBench(seed int64) ([]KernelBenchRow, error) {
	var rows []KernelBenchRow
	const (
		kmN, kmK, kmRounds = 1000, 10, 3
		seN, seRounds      = 50, 200
		seK                = 100
	)
	for _, dim := range []int{2, 8, 64} {
		ref, opt, err := cluster.CompareKernels(kmN, kmK, dim, kmRounds, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, KernelBenchRow{
			Kernel: "kmeans", Dim: dim, Workload: kmN, Rounds: kmRounds,
			RefSeconds: ref, OptSeconds: opt,
		})
	}
	for _, dim := range []int{8, 9} { // even: Eq 5 series path; odd: beta path
		ref, opt, refEvals, optEvals, err := geometry.CompareSolvers(dim, seN, seRounds, seK, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, KernelBenchRow{
			Kernel: "solve_eps", Dim: dim, Workload: seN, Rounds: seRounds,
			RefSeconds: ref, OptSeconds: opt,
			RefBetaEvals: refEvals, OptBetaEvals: optEvals,
		})
	}
	for i := range rows {
		if rows[i].OptSeconds > 0 {
			rows[i].Speedup = rows[i].RefSeconds / rows[i].OptSeconds
		}
	}
	return rows, nil
}

// WriteKernelBenchJSON writes the rows to path under the shared benchio
// envelope — the BENCH_kernels.json artifact.
func WriteKernelBenchJSON(path string, rows []KernelBenchRow) error {
	return benchio.Write(path, "kernels", rows)
}

// RenderKernelBench formats the rows as the CLI table.
func RenderKernelBench(rows []KernelBenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel speedups — optimized vs retained reference (identical results verified)\n")
	fmt.Fprintf(&b, "%-10s %-5s %-9s %-7s %-11s %-11s %-8s %-10s %-10s\n",
		"kernel", "dim", "workload", "rounds", "ref_s", "opt_s", "speedup", "ref_evals", "opt_evals")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-5d %-9d %-7d %-11.4f %-11.4f %-8.2f %-10d %-10d\n",
			r.Kernel, r.Dim, r.Workload, r.Rounds, r.RefSeconds, r.OptSeconds, r.Speedup, r.RefBetaEvals, r.OptBetaEvals)
	}
	return b.String()
}
