package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"hyperm/internal/parallel"
)

// PublishBenchRow is one measurement of the publication-throughput study:
// the wall-clock cost of PublishAll — the per-peer decompose + cluster math
// plus the serial overlay insertion — at one Parallelism setting. The rows
// are what `hyperm-bench -run publish` renders and what -out writes as
// BENCH_publish.json.
type PublishBenchRow struct {
	// Parallelism is the configured knob (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism"`
	// Workers is the resolved worker count actually used.
	Workers int `json:"workers"`
	// Items is the corpus size published.
	Items int `json:"items"`
	// Clusters is the number of cluster summaries published.
	Clusters int `json:"clusters"`
	// Hops is the total overlay hop count — identical across rows by the
	// determinism contract, and checked.
	Hops int `json:"hops"`
	// Seconds is the wall-clock PublishAll duration.
	Seconds float64 `json:"seconds"`
	// ItemsPerSecond is the resulting publication throughput.
	ItemsPerSecond float64 `json:"items_per_second"`
	// Speedup is Seconds(serial) / Seconds(this row); 1.0 for the serial row.
	Speedup float64 `json:"speedup"`
}

// PublishBench measures PublishAll wall-clock time for each requested
// parallelism setting on the §5.1 workload. Every setting publishes a fresh
// system built from the same seeds, so the rows differ only in timing; the
// hop counts must agree, and PublishBench fails loudly if they do not —
// a cheap standing check of the determinism contract on real workloads.
func PublishBench(p Params, parallelisms []int) ([]PublishBenchRow, error) {
	if len(parallelisms) == 0 {
		parallelisms = []int{1, 0} // serial baseline, then all cores
	}
	rows := make([]PublishBenchRow, 0, len(parallelisms))
	for _, par := range parallelisms {
		pp := p
		pp.Parallelism = par
		sys, err := BuildMarkovSystem(pp)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		st := sys.PublishAll()
		elapsed := time.Since(start).Seconds()
		items := sys.TotalItems()
		row := PublishBenchRow{
			Parallelism: par,
			Workers:     parallel.Workers(par),
			Items:       items,
			Clusters:    st.ClustersPublished,
			Hops:        st.Hops,
			Seconds:     elapsed,
		}
		if elapsed > 0 {
			row.ItemsPerSecond = float64(items) / elapsed
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if rows[i].Hops != rows[0].Hops || rows[i].Clusters != rows[0].Clusters {
			return nil, fmt.Errorf("experiments: publish bench determinism violation: parallelism %d published %d clusters / %d hops, parallelism %d published %d / %d",
				rows[0].Parallelism, rows[0].Clusters, rows[0].Hops,
				rows[i].Parallelism, rows[i].Clusters, rows[i].Hops)
		}
		if rows[i].Seconds > 0 {
			rows[i].Speedup = rows[0].Seconds / rows[i].Seconds
		}
	}
	return rows, nil
}

// WritePublishBenchJSON writes the rows to path as indented JSON —
// the BENCH_publish.json artifact.
func WritePublishBenchJSON(path string, rows []PublishBenchRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderPublishBench formats the rows as the CLI table.
func RenderPublishBench(rows []PublishBenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Publication throughput — PublishAll wall-clock vs Parallelism\n")
	fmt.Fprintf(&b, "%-12s %-9s %-8s %-10s %-8s %-10s %-12s %-9s\n",
		"parallelism", "workers", "items", "clusters", "hops", "seconds", "items/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d %-9d %-8d %-10d %-8d %-10.3f %-12.0f %-9.2f\n",
			r.Parallelism, r.Workers, r.Items, r.Clusters, r.Hops, r.Seconds, r.ItemsPerSecond, r.Speedup)
	}
	return b.String()
}
