package experiments

import (
	"fmt"
	"strings"

	"hyperm/internal/core"
	"hyperm/internal/parallel"
)

// ScaleRow measures how Hyper-M's costs grow with the network size — the
// paper targets ad-hoc gatherings from a bus (tens) to a conference hall
// (hundreds), so sub-linear growth of per-item and per-query cost is what
// makes the method deployable across that range.
type ScaleRow struct {
	// Peers is the network size (items per peer held constant).
	Peers int
	// PublishHopsPerItem is the dissemination cost.
	PublishHopsPerItem float64
	// QueryHops is the mean overlay cost of one range query's scoring
	// phase.
	QueryHops float64
	// BaselineHopsPerItem is per-item full-dimensional CAN insertion.
	BaselineHopsPerItem float64
}

// ExtScale sweeps the network size with a fixed per-peer collection.
func ExtScale(p Params, peerSweep []int) ([]ScaleRow, error) {
	if len(peerSweep) == 0 {
		peerSweep = []int{10, 25, 50, 100}
	}
	// One independent cell per network size.
	return parallel.Map(nil, p.Parallelism, len(peerSweep), func(ci int) (ScaleRow, error) {
		peers := peerSweep[ci]
		pn := p
		pn.Peers = peers
		sys, data, asg, err := markovSystem(pn)
		if err != nil {
			return ScaleRow{}, err
		}
		st := sys.PublishAll()

		baseHops, baseItems, err := canItemInsertHops(data, asg, pn.Dim, pn.Seed+88)
		if err != nil {
			return ScaleRow{}, err
		}

		// Query cost: range queries around corpus items at a radius sized
		// to the data scale.
		var qHops float64
		const queries = 10
		for qi := 0; qi < queries; qi++ {
			q := data[(qi*37)%len(data)]
			res := sys.RangeQuery(qi%peers, q, 25, core.RangeOptions{})
			qHops += float64(res.OverlayHops)
		}
		return ScaleRow{
			Peers:               peers,
			PublishHopsPerItem:  safeDiv(st.Hops, sys.TotalItems()),
			QueryHops:           qHops / queries,
			BaselineHopsPerItem: safeDiv(baseHops, baseItems),
		}, nil
	})
}

// RenderScale formats the rows as the CLI table.
func RenderScale(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — cost scaling with network size (items/peer fixed)\n")
	fmt.Fprintf(&b, "%-8s %-22s %-22s %-14s\n", "peers", "publish hops/item", "baseline hops/item", "query hops")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-22s %-22s %-14s\n", r.Peers,
			fmtF(r.PublishHopsPerItem), fmtF(r.BaselineHopsPerItem), fmtF(r.QueryHops))
	}
	return b.String()
}
