package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/dataset"
	"hyperm/internal/eval"
	"hyperm/internal/overlay"
	"hyperm/internal/parallel"
)

// LossRow measures end-to-end retrieval quality when the radio medium drops
// a fraction of overlay messages — MANET links are lossy, and the paper's
// replication scheme has no repair protocol, so lost replicas and lost
// search-flood messages translate directly into recall loss. This is the
// repository's failure-injection study.
type LossRow struct {
	// DropRate is the per-message loss probability.
	DropRate float64
	// Recall is unlimited-budget range recall (1.0 at zero loss by
	// Theorem 4.1; degrades as coverage decays).
	Recall float64
	// HopsPerItem shows the retransmission overhead on publication.
	HopsPerItem float64
}

// ExtLoss sweeps the message drop rate.
func ExtLoss(p EffectivenessParams, dropRates []float64) ([]LossRow, error) {
	if len(dropRates) == 0 {
		dropRates = []float64{0, 0.05, 0.1, 0.2, 0.4}
	}
	// One independent cell per drop rate (own corpus, own lossy overlays).
	return parallel.Map(nil, p.Parallelism, len(dropRates), func(ci int) (LossRow, error) {
		drop := dropRates[ci]
		rng := rand.New(rand.NewSource(p.Seed))
		data, labels := dataset.ALOI(dataset.ALOIConfig{Objects: p.Objects, Views: p.Views, Bins: p.Bins}, rng)
		factory := func(level, keyDim, peers int) (overlay.Network, error) {
			return can.Build(can.Config{
				Nodes:    peers,
				Dim:      keyDim,
				Rng:      rand.New(rand.NewSource(p.Seed*1000 + int64(level))),
				DropRate: drop,
				FailRng:  rand.New(rand.NewSource(p.Seed*77 + int64(level))),
			})
		}
		sys, err := core.NewSystem(core.Config{
			Peers:           p.Peers,
			Dim:             p.Bins,
			Levels:          p.Levels,
			ClustersPerPeer: p.ClustersPerPeer,
			Factory:         factory,
			Rng:             rng,
			Parallelism:     p.Parallelism,
		})
		if err != nil {
			return LossRow{}, err
		}
		for i, x := range data {
			sys.AddPeerData(labels[i]%p.Peers, []int{i}, [][]float64{x})
		}
		sys.DeriveBounds()
		st := sys.PublishAll()

		truth := flatindexOf(data)
		qrng := rand.New(rand.NewSource(p.Seed + 90))
		var sumR float64
		var nq int
		for nq < p.Queries {
			q := data[qrng.Intn(len(data))]
			eps := 0.03 + qrng.Float64()*0.09
			rel := truth.Range(q, eps)
			if len(rel) < 2 {
				continue
			}
			res := sys.RangeQuery(0, q, eps, core.RangeOptions{})
			_, rec := eval.PrecisionRecall(res.Items, rel)
			sumR += rec
			nq++
		}
		return LossRow{
			DropRate:    drop,
			Recall:      sumR / float64(nq),
			HopsPerItem: safeDiv(st.Hops, sys.TotalItems()),
		}, nil
	})
}

// RenderLoss formats the rows as the CLI table.
func RenderLoss(rows []LossRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — failure injection: recall under message loss\n")
	fmt.Fprintf(&b, "%-12s %-12s %-14s\n", "drop rate", "recall", "hops/item")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.2f %-12s %-14s\n", r.DropRate, fmtF(r.Recall), fmtF(r.HopsPerItem))
	}
	return b.String()
}
