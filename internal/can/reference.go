package can

import (
	"math"

	"hyperm/internal/overlay"
)

// This file retains the pre-extraction CAN sphere-search algorithm as a
// frozen reference oracle. It is an independent, self-contained transcription
// of SearchSphere as it stood before the decision logic moved into
// internal/route — including private copies of the zone geometry — so the
// differential and fuzz tests compare two genuinely separate implementations.
// It must never be "fixed" to track the live code; if the two disagree, the
// live path is the suspect.

// searchSphereReference computes what SearchSphere must return: the entries
// whose spheres intersect the query (deduplicated, in flood collection
// order) and the hops spent. It is a pure function of the overlay state —
// no stats, no observer messages, no mutation — and only supports lossless
// overlays, where routing hops and flood messages are deterministic.
func searchSphereReference(o *Overlay, from int, key []float64, radius float64) ([]overlay.Entry, int) {
	if o.dropRate != 0 {
		panic("can: searchSphereReference requires a lossless overlay")
	}

	// Greedy routing to the owner of key.
	cur := o.nodes[from]
	hops := 0
	visited := map[int]bool{cur.id: true}
	limit := 8*len(o.nodes) + 16
	for !refZonesContain(cur.zones, key) {
		if hops > limit {
			cur = refOwnerScan(o, key)
			hops++
			break
		}
		bestID, bestDist := -1, math.Inf(1)
		for _, nb := range cur.neighbors {
			d := refZonesDist(o.nodes[nb].zones, key)
			if visited[nb] {
				d += 1e6
			}
			if d < bestDist {
				bestID, bestDist = nb, d
			}
		}
		if bestID < 0 {
			cur = refOwnerScan(o, key)
			hops++
			break
		}
		hops++
		cur = o.nodes[bestID]
		visited[cur.id] = true
	}
	owner := cur

	// Flood the zones intersecting the query sphere, collecting matches.
	seen := map[int]bool{}
	var results []overlay.Entry
	collect := func(n *node) {
		for _, recs := range [2][]RecordView{n.owned, n.replicas} {
			for _, rec := range recs {
				if seen[rec.Seq] {
					continue
				}
				if refTorusDist(rec.Entry.Key, key) <= rec.Entry.Radius+radius {
					seen[rec.Seq] = true
					results = append(results, rec.Entry)
				}
			}
		}
	}

	floodVisited := map[int]bool{owner.id: true}
	collect(owner)
	frontier := []*node{owner}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, n := range frontier {
			for _, nbID := range n.neighbors {
				if floodVisited[nbID] {
					continue
				}
				floodVisited[nbID] = true
				nb := o.nodes[nbID]
				if !refZonesIntersect(nb.zones, key, radius) {
					continue
				}
				hops++
				collect(nb)
				next = append(next, nb)
			}
		}
		frontier = next
	}
	return results, hops
}

func refOwnerScan(o *Overlay, target []float64) *node {
	for _, n := range o.nodes {
		if n.alive && refZonesContain(n.zones, target) {
			return n
		}
	}
	panic("can: reference found no owner — zones do not tile the space")
}

func refZonesContain(zs []Zone, p []float64) bool {
	for _, z := range zs {
		in := true
		for i := range z.Lo {
			if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
				in = false
				break
			}
		}
		if in {
			return true
		}
	}
	return false
}

func refZonesDist(zs []Zone, p []float64) float64 {
	best := math.Inf(1)
	for _, z := range zs {
		var s float64
		for i := range z.Lo {
			d := refCoordDistToSpan(p[i], z.Lo[i], z.Hi[i])
			s += d * d
		}
		if d := math.Sqrt(s); d < best {
			best = d
		}
	}
	return best
}

func refZonesIntersect(zs []Zone, key []float64, radius float64) bool {
	for _, z := range zs {
		var s float64
		for i := range z.Lo {
			d := refCoordDistToSpan(key[i], z.Lo[i], z.Hi[i])
			s += d * d
		}
		if math.Sqrt(s) <= radius {
			return true
		}
	}
	return false
}

func refCoordDistToSpan(x, lo, hi float64) float64 {
	if hi-lo >= 1 {
		return 0
	}
	if x >= lo && x < hi {
		return 0
	}
	return math.Min(refCircDist(x, lo), refCircDist(x, hi))
}

func refCircDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

func refTorusDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += refCircDist(a[i], b[i]) * refCircDist(a[i], b[i])
	}
	return math.Sqrt(s)
}
