// Package can implements the Content-Addressable Network overlay
// (Ratnasamy et al., SIGCOMM 2001) that the paper uses as its evaluation
// substrate (§5). The key space is the unit d-torus [0,1)^d partitioned into
// axis-aligned zones, one per node:
//
//   - joins route a random point to its current owner, whose zone is split
//     in half (longest side first) between owner and joiner;
//   - routing is greedy: each node forwards to the neighbor whose zone is
//     closest to the target under the torus metric;
//   - inserts of non-zero-sized objects (cluster spheres) are stored at the
//     centroid's owner and replicated to every zone the sphere overlaps
//     (paper Fig 6) via neighbor flooding, with the replication messages
//     charged to insertion cost — exactly the overhead Figure 8a measures;
//   - sphere searches route to the query center's owner and flood over the
//     zones the query sphere touches, collecting intersecting entries.
//
// All routing and flood decisions are made by the shared machines of
// internal/route; this package is the simulator-side driver, contributing
// zone maintenance (join/split/leave), message and drop accounting, and the
// global-scan fallbacks a simulated network can afford.
package can

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hyperm/internal/overlay"
	"hyperm/internal/route"
)

// Zone is an axis-aligned half-open box [Lo, Hi) inside the unit torus; see
// route.Zone (the routing core owns the zone geometry).
type Zone = route.Zone

// TorusDist returns the torus (wrap-around) Euclidean distance between two
// key-space points.
func TorusDist(a, b []float64) float64 { return route.TorusDist(a, b) }

// node is one overlay participant: a zone, its neighbor set, and the entries
// it stores (both owned — centroid in zone — and replicated).
type node struct {
	id        int
	zones     []Zone // usually one; temporarily more after a takeover (Leave)
	alive     bool
	neighbors []int
	owned     []RecordView
	replicas  []RecordView
}

// containsPoint reports whether any of the node's zones contains p.
func (n *node) containsPoint(p []float64) bool { return route.ZonesContain(n.zones, p) }

// intersectsSphere reports whether any zone touches the sphere.
func (n *node) intersectsSphere(key []float64, radius float64) bool {
	return route.ZonesIntersect(n.zones, key, radius)
}

// volume is the node's total key-space volume.
func (n *node) volume() float64 {
	var v float64
	for _, z := range n.zones {
		v += z.Volume()
	}
	return v
}

// Stats accumulates overlay-wide message accounting.
type Stats struct {
	// JoinHops is the routing cost of building the overlay (node joins).
	JoinHops int
	// InsertRouteHops counts greedy-routing hops of insert operations.
	InsertRouteHops int
	// InsertReplicationHops counts the extra messages spent replicating
	// sphere entries into overlapping zones (Fig 6 / Fig 8a overhead).
	InsertReplicationHops int
	// SearchHops counts routing + flooding hops of search operations.
	SearchHops int
	// RouteFallbacks counts greedy dead-ends resolved by the safety escape
	// hatch (should stay zero; a nonzero value flags a topology bug).
	RouteFallbacks int
}

// Overlay is a simulated CAN network. It implements overlay.Network.
type Overlay struct {
	dim      int
	nodes    []*node
	nextSeq  int
	observer overlay.Observer
	stats    Stats
	dropRate float64
	failRng  *rand.Rand
}

var _ overlay.Network = (*Overlay)(nil)

// Config parameterizes construction.
type Config struct {
	// Nodes is the number of peers to join.
	Nodes int
	// Dim is the key-space dimensionality.
	Dim int
	// Rng drives join-point selection. Required.
	Rng *rand.Rand
	// Observer, when non-nil, is invoked once per overlay message.
	Observer overlay.Observer
	// DropRate is the probability that a single overlay message is lost in
	// the (lossy, mobile) radio medium. Routing messages are retransmitted
	// (costing extra hops); replication and search-flood messages are
	// fire-and-forget and silently lost, degrading replica coverage and
	// recall — the failure-injection knob of the robustness experiments.
	DropRate float64
	// FailRng drives message-loss decisions; required when DropRate > 0 so
	// failures are reproducible independent of topology randomness.
	FailRng *rand.Rand
}

// Build constructs a CAN of cfg.Nodes nodes by sequential joins at random
// points, as in the original CAN bootstrap. Join routing costs accumulate in
// Stats().JoinHops.
func Build(cfg Config) (*Overlay, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("can: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("can: dimension must be >= 1, got %d", cfg.Dim)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("can: rng must be non-nil")
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		if cfg.DropRate != 0 {
			return nil, fmt.Errorf("can: drop rate %v outside [0,1)", cfg.DropRate)
		}
	}
	if cfg.DropRate > 0 && cfg.FailRng == nil {
		return nil, fmt.Errorf("can: FailRng required when DropRate > 0")
	}
	o := &Overlay{dim: cfg.Dim, observer: cfg.Observer, dropRate: cfg.DropRate, failRng: cfg.FailRng}
	full := Zone{Lo: make([]float64, cfg.Dim), Hi: make([]float64, cfg.Dim)}
	for i := range full.Hi {
		full.Hi[i] = 1
	}
	o.nodes = append(o.nodes, &node{id: 0, alive: true, zones: []Zone{full}})
	for i := 1; i < cfg.Nodes; i++ {
		o.join(cfg.Rng)
	}
	return o, nil
}

// join adds one node: pick a random point, route to its owner from a random
// alive bootstrap node, split the owner's zone.
func (o *Overlay) join(rng *rand.Rand) {
	p := make([]float64, o.dim)
	for i := range p {
		p[i] = rng.Float64()
	}
	var start *node
	for {
		start = o.nodes[rng.Intn(len(o.nodes))]
		if start.alive {
			break
		}
	}
	owner, hops := o.route(start, p)
	o.stats.JoinHops += hops

	newNode := &node{id: len(o.nodes), alive: true}
	o.nodes = append(o.nodes, newNode)
	o.split(owner, newNode, p)
}

// split halves owner's zone along its longest side; the half containing the
// join point goes to the joiner. Stored entries are redistributed.
func (o *Overlay) split(owner, joiner *node, joinPoint []float64) {
	zi := 0
	for i, z := range owner.zones {
		if z.Contains(joinPoint) {
			zi = i
			break
		}
	}
	// The split geometry (longest side, lowest index on ties — keeps zones
	// near-cubical) and the record redistribution are the shared maintenance
	// helpers' — the live membership protocol splits through the exact same
	// code, which is what keeps it byte-identical to this simulator.
	kept, taken := route.SplitZone(owner.zones[zi], joinPoint)
	owner.zones[zi] = kept
	joiner.zones = []Zone{taken}
	owner.owned, owner.replicas, joiner.owned, joiner.replicas =
		route.SplitRecords(owner.owned, owner.replicas, owner.zones, joiner.zones)

	// Rewire neighbor sets: the former neighbor set of the pre-split zone,
	// plus the owner/joiner pair itself, covers every affected node.
	affected := map[int]bool{owner.id: true, joiner.id: true}
	for _, nb := range oldNeighborsPlus(owner, joiner) {
		affected[nb] = true
	}
	for id := range affected {
		o.recomputeNeighbors(o.nodes[id])
	}
}

func oldNeighborsPlus(owner, joiner *node) []int {
	out := append([]int{}, owner.neighbors...)
	out = append(out, joiner.neighbors...)
	return out
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// recomputeNeighbors rebuilds n's neighbor list by scanning all nodes, and
// symmetrically fixes the reverse edges. O(N) per call — acceptable for the
// simulated network sizes (hundreds of nodes).
func (o *Overlay) recomputeNeighbors(n *node) {
	n.neighbors = n.neighbors[:0]
	for _, m := range o.nodes {
		if m.id == n.id {
			continue
		}
		if n.alive && m.alive && nodesAdjacent(n, m) {
			n.neighbors = append(n.neighbors, m.id)
			if !contains(m.neighbors, n.id) {
				m.neighbors = append(m.neighbors, n.id)
			}
		} else if contains(m.neighbors, n.id) {
			m.neighbors = removeID(m.neighbors, n.id)
		}
	}
}

// nodesAdjacent reports whether any zone of a is CAN-adjacent to any zone
// of b.
func nodesAdjacent(a, b *node) bool { return route.ZoneSetsAdjacent(a.zones, b.zones) }

func contains(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func removeID(ids []int, id int) []int {
	out := ids[:0]
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// zonesAdjacent reports CAN neighborship; the geometry lives in the shared
// routing core (route.ZonesAdjacent).
func zonesAdjacent(a, b Zone) bool { return route.ZonesAdjacent(a, b) }

// hopLimit is the routing-loop budget: generously above any greedy path
// length on a consistent topology.
func (o *Overlay) hopLimit() int { return 8*len(o.nodes) + 16 }

// liveView builds node n's view for the routing core, sharing the live zone
// and record slices (the machines treat views as read-only, so no copying is
// needed on the simulator's synchronous path).
func (o *Overlay) liveView(n *node) route.NodeView {
	nbs := make([]route.NeighborView, len(n.neighbors))
	for i, id := range n.neighbors {
		nbs[i] = route.NeighborView{ID: id, Zones: o.nodes[id].zones}
	}
	return route.NodeView{ID: n.id, Zones: n.zones, Neighbors: nbs, Owned: n.owned, Replicas: n.replicas}
}

// route greedily forwards from start toward the owner of target, returning
// the owner and the number of hops taken. The route.Router makes every
// forwarding decision; this driver charges retransmitting radio links (each
// attempt costs a hop) and resolves stalls with the simulator's global-scan
// escape hatch, so termination is guaranteed even if greedy progress stalls.
func (o *Overlay) route(start *node, target []float64) (*node, int) {
	r := route.NewRouter(o.liveView(start), target, o.hopLimit())
	for {
		step, err := r.Next()
		if err != nil {
			// Should be unreachable; keep the simulation alive and flag it.
			o.stats.RouteFallbacks++
			owner := o.ownerScan(target)
			o.message(step.From, owner.id)
			r.ResolveOwner(o.liveView(owner), 1)
			continue
		}
		if step.Kind == route.StepDone {
			return o.nodes[step.From], r.Hops()
		}
		r.Feed(o.liveView(o.nodes[step.To]), o.reliableMessage(step.From, step.To))
	}
}

func (o *Overlay) ownerScan(target []float64) *node {
	for _, n := range o.nodes {
		if n.alive && n.containsPoint(target) {
			return n
		}
	}
	panic(fmt.Sprintf("can: no zone contains %v — zones do not tile the space", target))
}

func (o *Overlay) message(from, to int) {
	if o.observer != nil {
		o.observer(from, to)
	}
}

// dropped decides whether a fire-and-forget message is lost. Each loss is a
// real transmission: it is observed and charged before the content
// disappears.
func (o *Overlay) dropped() bool {
	return o.dropRate > 0 && o.failRng.Float64() < o.dropRate
}

// reliableMessage models a routing hop with link-layer retransmission: the
// message is repeated until it gets through, and every attempt costs one
// transmission. It returns the number of attempts (>= 1).
func (o *Overlay) reliableMessage(from, to int) int {
	attempts := 1
	for o.dropped() {
		o.message(from, to)
		attempts++
	}
	o.message(from, to)
	return attempts
}

// Dim returns the key-space dimensionality.
func (o *Overlay) Dim() int { return o.dim }

// Size returns the number of nodes.
func (o *Overlay) Size() int { return len(o.nodes) }

// Stats returns a copy of the accumulated message statistics.
func (o *Overlay) Stats() Stats { return o.stats }

// ResetStats zeroes the message statistics (topology is untouched).
func (o *Overlay) ResetStats() { o.stats = Stats{} }

// OwnerOf returns the id of the node whose zone contains key, without
// charging any messages.
func (o *Overlay) OwnerOf(key []float64) int {
	o.checkKey(key)
	return o.ownerScan(key).id
}

func (o *Overlay) checkKey(key []float64) {
	if len(key) != o.dim {
		panic(fmt.Sprintf("can: key dimension %d, overlay dimension %d", len(key), o.dim))
	}
	for _, v := range key {
		if v < 0 || v >= 1 || math.IsNaN(v) {
			panic(fmt.Sprintf("can: key %v outside the unit torus", key))
		}
	}
}

// InsertSphere publishes e from the given node: greedy-route to the
// centroid's owner, store, then replicate into every zone the sphere
// overlaps (one hop per replica, flooding through overlapping zones).
// The returned hop count is routing + replication.
func (o *Overlay) InsertSphere(from int, e overlay.Entry) int {
	o.checkKey(e.Key)
	if e.Radius < 0 {
		panic("can: negative entry radius")
	}
	if !o.nodes[from].alive {
		panic(fmt.Sprintf("can: node %d has left the overlay", from))
	}
	owner, hops := o.route(o.nodes[from], e.Key)
	o.stats.InsertRouteHops += hops
	rec := RecordView{Seq: o.nextSeq, Entry: e}
	o.nextSeq++
	owner.owned = append(owner.owned, rec)
	if e.Radius > 0 {
		hops += o.replicate(owner, rec)
	}
	return hops
}

// replicate floods rec from its owner into every other zone the sphere
// overlaps, returning the number of replication messages. The route.Flood
// machine decides the visit order; this driver stores the replica on each
// reached node and injects radio loss (a dropped message is charged but the
// replica never lands, degrading coverage).
func (o *Overlay) replicate(owner *node, rec RecordView) int {
	f := route.NewFlood(o.liveView(owner), rec.Entry.Key, rec.Entry.Radius)
	msgs := 0
	for {
		step := f.Next()
		if step.Kind == route.StepDone {
			break
		}
		o.message(step.From, step.To)
		msgs++
		if o.dropped() {
			f.Skip() // replica lost in the air; coverage degrades
			continue
		}
		nb := o.nodes[step.To]
		nb.replicas = append(nb.replicas, rec)
		f.Feed(o.liveView(nb))
	}
	o.stats.InsertReplicationHops += msgs
	return msgs
}

// NextSeq previews the sequence number the next InsertSphere will assign —
// the record identity a publisher remembers so it can upsert the record in
// place later (overlay.Sequencer).
func (o *Overlay) NextSeq() int { return o.nextSeq }

var _ overlay.Sequencer = (*Overlay)(nil)
var _ overlay.StreamUpdater = (*Overlay)(nil)

// UpsertSphere applies one streamed record delta (overlay.StreamUpdater):
// greedy-route to the centroid's owner, upsert there, then flood the sphere
// upserting on every reached node — the same visit pattern as InsertSphere,
// with route.UpsertRecord (replace in place, append where absent) instead of
// a plain append. Growing a record's radius therefore lands replicas in the
// newly covered zones while existing holders update in place.
func (o *Overlay) UpsertSphere(from, seq int, e overlay.Entry) int {
	return o.streamOp(from, route.RecordView{Seq: seq, Entry: e}, false)
}

// DeleteSphere removes the record with seq everywhere its sphere reaches
// (overlay.StreamUpdater). The entry carries the record's *current* key and
// radius, which bound where replicas can live.
func (o *Overlay) DeleteSphere(from, seq int, e overlay.Entry) int {
	return o.streamOp(from, route.RecordView{Seq: seq, Entry: e}, true)
}

// streamOp routes to the sphere owner, applies the delta there, and floods
// the sphere applying it on every reached node. Dropped flood messages are
// charged but not applied, exactly like replicate.
func (o *Overlay) streamOp(from int, rec RecordView, del bool) int {
	o.checkKey(rec.Entry.Key)
	if rec.Entry.Radius < 0 {
		panic("can: negative entry radius")
	}
	if !o.nodes[from].alive {
		panic(fmt.Sprintf("can: node %d has left the overlay", from))
	}
	owner, hops := o.route(o.nodes[from], rec.Entry.Key)
	o.stats.InsertRouteHops += hops
	o.applyStream(owner, rec, del, true)
	if rec.Entry.Radius <= 0 {
		return hops
	}
	f := route.NewFlood(o.liveView(owner), rec.Entry.Key, rec.Entry.Radius)
	msgs := 0
	for {
		step := f.Next()
		if step.Kind == route.StepDone {
			break
		}
		o.message(step.From, step.To)
		msgs++
		if o.dropped() {
			f.Skip() // delta lost in the air; this holder goes stale
			continue
		}
		nb := o.nodes[step.To]
		o.applyStream(nb, rec, del, false)
		f.Feed(o.liveView(nb))
	}
	o.stats.InsertReplicationHops += msgs
	return hops + msgs
}

// applyStream mutates one node's stores through the shared delta rules.
func (o *Overlay) applyStream(n *node, rec RecordView, del, asOwner bool) {
	if del {
		n.owned, n.replicas, _ = route.DeleteRecord(n.owned, n.replicas, rec.Seq)
		return
	}
	n.owned, n.replicas = route.UpsertRecord(n.owned, n.replicas, rec, asOwner)
}

// SearchSphere routes to the owner of key and floods the zones intersecting
// the query sphere, returning every stored entry whose own sphere intersects
// the query (deduplicated across replicas) plus the hops spent. Every
// routing, flood, and collection decision is the route.Search machine's;
// this driver contributes message/drop accounting and the global-scan stall
// fallback — the serving runtime drives the identical machine over RPCs.
func (o *Overlay) SearchSphere(from int, key []float64, radius float64) ([]overlay.Entry, int) {
	o.checkKey(key)
	if radius < 0 {
		panic("can: negative query radius")
	}
	if !o.nodes[from].alive {
		panic(fmt.Sprintf("can: node %d has left the overlay", from))
	}
	s := route.NewSearch(o.liveView(o.nodes[from]), key, radius, o.hopLimit())
	for {
		step, err := s.Next()
		if err != nil {
			// Should be unreachable; keep the simulation alive and flag it.
			o.stats.RouteFallbacks++
			owner := o.ownerScan(key)
			o.message(step.From, owner.id)
			s.ResolveOwner(o.liveView(owner), 1)
			continue
		}
		switch step.Kind {
		case route.StepDone:
			hops := s.Hops()
			o.stats.SearchHops += hops
			return s.Results(), hops
		case route.StepRouteHop:
			s.Feed(o.liveView(o.nodes[step.To]), o.reliableMessage(step.From, step.To))
		case route.StepFloodVisit:
			o.message(step.From, step.To)
			if o.dropped() {
				s.Skip(1) // flood message lost; this zone goes unsearched
			} else {
				s.Feed(o.liveView(o.nodes[step.To]), 1)
			}
		}
	}
}

// NodeLoad returns how many entries node id stores: owned (centroid in the
// node's zone) and replicated (sphere overlap only). Feeds the Figure 9
// load-distribution analysis.
func (o *Overlay) NodeLoad(id int) (owned, replicas int) {
	n := o.nodes[id]
	return len(n.owned), len(n.replicas)
}

// ClearNode wipes node id's stored records (owned and replicas), modeling a
// device crash. The zone remains routable. Implements
// overlay.StorageFailer.
func (o *Overlay) ClearNode(id int) int {
	n := o.nodes[id]
	lost := len(n.owned) + len(n.replicas)
	n.owned, n.replicas = nil, nil
	return lost
}

// Leave removes node id gracefully, following the CAN departure protocol:
// each of its zones is merged with a neighbor zone when the union forms a
// valid box (the sibling-merge case); otherwise the alive neighbor managing
// the least key-space volume takes the zone over as an extra zone. Stored
// records move with their zones (one message per transferred record).
//
// It returns the number of transfer messages and an error if the node has
// already left or is the last one standing.
func (o *Overlay) Leave(id int) (int, error) {
	leaving := o.nodes[id]
	if !leaving.alive {
		return 0, fmt.Errorf("can: node %d has already left", id)
	}
	alive := 0
	for _, n := range o.nodes {
		if n.alive {
			alive++
		}
	}
	if alive <= 1 {
		return 0, fmt.Errorf("can: node %d is the last member and cannot leave", id)
	}

	// Hand each zone over, one at a time: prefer the sibling merge (an
	// alive neighbor holding a zone whose union with this one is a box);
	// otherwise the smallest-volume alive neighbor takes it as an extra
	// zone (CAN's temporary multi-zone takeover state). The election is the
	// shared route.ElectTakers — the same procedure every live node runs
	// when it detects a departure, so simulator and cluster agree.
	tks, ok := route.ElectTakers(leaving.zones, o.takerCandidates(leaving))
	if !ok {
		return 0, fmt.Errorf("can: node %d has no alive neighbor to hand zones to", id)
	}
	affected := map[int]bool{id: true}
	takers := map[int]*node{}
	for i, z := range leaving.zones {
		taker := o.nodes[tks[i].Taker]
		o.applyTakeover(taker, z, tks[i])
		affected[taker.id] = true
		takers[taker.id] = taker
	}

	// Move records: owned go to the node now owning their key; replicas go
	// to takers whose zones overlap. Each transferred record is one message.
	msgs := 0
	oldOwned, oldReplicas := leaving.owned, leaving.replicas
	leaving.owned, leaving.replicas, leaving.zones = nil, nil, nil
	leaving.alive = false
	for _, rec := range oldOwned {
		taker := o.ownerScan(rec.Entry.Key)
		taker.owned = append(taker.owned, rec)
		o.message(id, taker.id)
		msgs++
	}
	for _, rec := range oldReplicas {
		for _, taker := range takers {
			if taker.intersectsSphere(rec.Entry.Key, rec.Entry.Radius) && !taker.holds(rec.Seq) {
				taker.replicas = append(taker.replicas, rec)
				o.message(id, taker.id)
				msgs++
			}
		}
	}

	// Rewire: the leaver's former neighborhood plus the takers.
	for _, nbID := range leaving.neighbors {
		affected[nbID] = true
	}
	for aid := range affected {
		o.recomputeNeighbors(o.nodes[aid])
	}
	return msgs, nil
}

// holds reports whether the node already stores record seq.
func (n *node) holds(seq int) bool {
	for _, r := range n.owned {
		if r.Seq == seq {
			return true
		}
	}
	for _, r := range n.replicas {
		if r.Seq == seq {
			return true
		}
	}
	return false
}

// unionBox returns the union of two zones when it forms a valid box; the
// geometry lives in the shared routing core (route.UnionBox).
func unionBox(a, b Zone) (Zone, bool) { return route.UnionBox(a, b) }

// takerCandidates lists n's alive neighbors, in neighbor-list (ascending
// id) order, as takeover candidates for route.ElectTakers.
func (o *Overlay) takerCandidates(n *node) []route.Candidate {
	cands := make([]route.Candidate, 0, len(n.neighbors))
	for _, nbID := range n.neighbors {
		if nb := o.nodes[nbID]; nb.alive {
			cands = append(cands, route.Candidate{ID: nbID, Zones: nb.zones})
		}
	}
	return cands
}

// applyTakeover executes one elected zone assignment on the live taker.
func (o *Overlay) applyTakeover(taker *node, z Zone, tk route.Takeover) {
	if tk.Merge >= 0 {
		u, ok := route.UnionBox(z, taker.zones[tk.Merge])
		if !ok {
			panic(fmt.Sprintf("can: elected merge of %v into %v is not a box", z, taker.zones[tk.Merge]))
		}
		taker.zones[tk.Merge] = u
	} else {
		taker.zones = append(taker.zones, z)
	}
}

// JoinNode admits one node at a caller-chosen join point: the point's
// current owner splits its zone and hands records over, exactly as Build's
// random joins do. Returns the new node's id. This is the simulator twin of
// the live membership join (the point is what a live joiner drew), and
// implements overlay.Joiner.
func (o *Overlay) JoinNode(point []float64) (int, error) {
	if len(point) != o.dim {
		return 0, fmt.Errorf("can: join point dimension %d, overlay dimension %d", len(point), o.dim)
	}
	for _, v := range point {
		if v < 0 || v >= 1 || math.IsNaN(v) {
			return 0, fmt.Errorf("can: join point %v outside the unit torus", point)
		}
	}
	owner := o.ownerScan(point)
	n := &node{id: len(o.nodes), alive: true}
	o.nodes = append(o.nodes, n)
	o.split(owner, n, point)
	return n.id, nil
}

// Crash removes node id abruptly: no handover, its stored records die with
// the device. Each of its zones goes to the neighbor the shared takeover
// election picks (the same decision every live detector reaches), and each
// taker then recovers the records its new zone needs from the replicas
// surviving elsewhere — seq-sorted, owned when the centroid now lies in the
// taker's zones, replica otherwise. This is the simulator twin of the live
// protocol's probe-detected takeover plus republish; it implements
// overlay.Crasher and returns the number of recovered records.
func (o *Overlay) Crash(id int) (int, error) {
	crashed := o.nodes[id]
	if !crashed.alive {
		return 0, fmt.Errorf("can: node %d is not alive", id)
	}
	alive := 0
	for _, n := range o.nodes {
		if n.alive {
			alive++
		}
	}
	if alive <= 1 {
		return 0, fmt.Errorf("can: node %d is the last member and cannot crash away", id)
	}
	tks, ok := route.ElectTakers(crashed.zones, o.takerCandidates(crashed))
	if !ok {
		return 0, fmt.Errorf("can: node %d has no alive neighbor to take its zones", id)
	}

	crashed.owned, crashed.replicas = nil, nil
	type claim struct {
		zone  Zone
		taker *node
	}
	claims := make([]claim, 0, len(crashed.zones))
	affected := map[int]bool{id: true}
	for i, z := range crashed.zones {
		taker := o.nodes[tks[i].Taker]
		o.applyTakeover(taker, z, tks[i])
		claims = append(claims, claim{zone: z, taker: taker})
		affected[taker.id] = true
	}
	crashed.zones = nil
	crashed.alive = false
	for _, nbID := range crashed.neighbors {
		affected[nbID] = true
	}
	for aid := range affected {
		o.recomputeNeighbors(o.nodes[aid])
	}

	// Republish: each taker pulls the records its new zone needs from the
	// replicas that survived in overlapping zones. Records held only by the
	// crashed node are gone — consistently so in the live cluster, whose
	// recovery search can only reach the same survivors.
	recovered := 0
	for _, c := range claims {
		center, radius := c.zone.Circumsphere()
		found := o.scanRecords(center, radius)
		var n int
		c.taker.owned, c.taker.replicas, n =
			route.ApplyRecovery(c.taker.zones, c.zone, c.taker.owned, c.taker.replicas, found)
		recovered += n
	}
	return recovered, nil
}

// scanRecords collects every stored record (alive nodes in ascending id
// order, owned before replicas) whose sphere intersects the query sphere,
// deduplicated and then sorted by seq — the global-scan equivalent of what
// a live node's recovery sphere search collects.
func (o *Overlay) scanRecords(key []float64, radius float64) []RecordView {
	seen := map[int]bool{}
	var out []RecordView
	add := func(recs []RecordView) {
		for _, rec := range recs {
			if seen[rec.Seq] {
				continue
			}
			if TorusDist(rec.Entry.Key, key) <= rec.Entry.Radius+radius {
				seen[rec.Seq] = true
				out = append(out, rec)
			}
		}
	}
	for _, n := range o.nodes {
		if n.alive {
			add(n.owned)
			add(n.replicas)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// OwnedEntries returns copies of the entries whose centroid lies in node
// id's zone (replicas excluded). Feeds load-distribution analysis.
func (o *Overlay) OwnedEntries(id int) []overlay.Entry {
	n := o.nodes[id]
	out := make([]overlay.Entry, len(n.owned))
	for i, rec := range n.owned {
		out[i] = rec.Entry
	}
	return out
}

// ZoneOf returns a copy of node id's first zone (nodes own exactly one zone
// until a takeover; see Zones for the general form).
func (o *Overlay) ZoneOf(id int) Zone {
	z := o.nodes[id].zones[0]
	return Zone{Lo: cloneVec(z.Lo), Hi: cloneVec(z.Hi)}
}

// Zones returns copies of every zone node id currently manages.
func (o *Overlay) Zones(id int) []Zone {
	out := make([]Zone, len(o.nodes[id].zones))
	for i, z := range o.nodes[id].zones {
		out[i] = Zone{Lo: cloneVec(z.Lo), Hi: cloneVec(z.Hi)}
	}
	return out
}

// Alive reports whether node id is still part of the overlay.
func (o *Overlay) Alive(id int) bool { return o.nodes[id].alive }

// Neighbors returns a copy of node id's neighbor list.
func (o *Overlay) Neighbors(id int) []int {
	return append([]int{}, o.nodes[id].neighbors...)
}
