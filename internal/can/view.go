package can

import "hyperm/internal/route"

// RecordView, NeighborView, and NodeView are the abstract node-state shapes
// consumed by the routing core; they live in internal/route and are aliased
// here so the overlay's public API is unchanged.
type (
	// RecordView is one stored index record: the entry plus the
	// overlay-wide sequence number replicas share. See route.RecordView.
	RecordView = route.RecordView
	// NeighborView is the routing-table knowledge a node keeps about one
	// neighbor. See route.NeighborView.
	NeighborView = route.NeighborView
	// NodeView is a self-contained copy of everything one node holds. A
	// cluster of serving nodes each holding only its own NodeView per
	// level reproduces InsertSphere/SearchSphere results exactly, which
	// the serving runtime's oracle tests rely on. See route.NodeView.
	NodeView = route.NodeView
)

// View extracts node id's slice of the overlay. All slices are copies; the
// entries' keys and payloads are shared (treated as immutable).
func (o *Overlay) View(id int) NodeView {
	n := o.nodes[id]
	v := NodeView{ID: id, Zones: o.Zones(id)}
	v.Neighbors = make([]NeighborView, len(n.neighbors))
	for i, nbID := range n.neighbors {
		v.Neighbors[i] = NeighborView{ID: nbID, Zones: o.Zones(nbID)}
	}
	v.Owned = copyRecords(n.owned)
	v.Replicas = copyRecords(n.replicas)
	return v
}

func copyRecords(recs []RecordView) []RecordView {
	if len(recs) == 0 {
		return nil
	}
	return append([]RecordView{}, recs...)
}
