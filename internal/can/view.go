package can

import "hyperm/internal/overlay"

// RecordView is one stored index record as seen from a node's slice of the
// overlay: the entry plus the overlay-wide sequence number replicas share,
// which is what lets a remote searcher deduplicate results exactly like the
// in-process flood does.
type RecordView struct {
	Seq   int
	Entry overlay.Entry
}

// NeighborView is the routing-table knowledge a CAN node keeps about one
// neighbor: its id and current zones. Greedy routing and flood-expansion
// decisions are made from this information alone, so a serving node carrying
// its NeighborViews can route without any global state.
type NeighborView struct {
	ID    int
	Zones []Zone
}

// NodeView is a self-contained copy of everything node id holds: its zones,
// its neighbor table (in routing order — order matters, greedy tie-breaks
// and flood visit order follow list position), and its stored records (owned
// first, then replicas, each in storage order). A cluster of serving nodes
// each holding only its own NodeView per level reproduces InsertSphere/
// SearchSphere results exactly, which the serving runtime's oracle tests
// rely on.
type NodeView struct {
	ID        int
	Zones     []Zone
	Neighbors []NeighborView
	Owned     []RecordView
	Replicas  []RecordView
}

// View extracts node id's slice of the overlay. All slices are copies; the
// entries' keys and payloads are shared (treated as immutable).
func (o *Overlay) View(id int) NodeView {
	n := o.nodes[id]
	v := NodeView{ID: id, Zones: o.Zones(id)}
	v.Neighbors = make([]NeighborView, len(n.neighbors))
	for i, nbID := range n.neighbors {
		v.Neighbors[i] = NeighborView{ID: nbID, Zones: o.Zones(nbID)}
	}
	v.Owned = recordViews(n.owned)
	v.Replicas = recordViews(n.replicas)
	return v
}

func recordViews(recs []record) []RecordView {
	if len(recs) == 0 {
		return nil
	}
	out := make([]RecordView, len(recs))
	for i, rec := range recs {
		out[i] = RecordView{Seq: rec.seq, Entry: rec.e}
	}
	return out
}
