package can

import (
	"math/rand"
	"reflect"
	"testing"

	"hyperm/internal/overlay"
)

// randomOverlay builds a lossless overlay with random size/dimension, random
// sphere inserts, and random churn (graceful leaves and storage failures),
// then returns it together with the ids of nodes still alive. Every shape
// the topology can reach — splits, multi-zone takeovers, cleared storage —
// is on the table, because the serving runtime inherits whatever the
// simulator supports.
func randomOverlay(t testing.TB, rng *rand.Rand) (*Overlay, []int) {
	t.Helper()
	nodes := 2 + rng.Intn(40)
	dim := 1 + rng.Intn(4)
	o, err := Build(Config{Nodes: nodes, Dim: dim, Rng: rng})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	inserts := rng.Intn(60)
	for i := 0; i < inserts; i++ {
		e := overlay.Entry{Key: randomKey(rng, dim), Payload: i}
		if rng.Intn(3) > 0 { // two thirds are spheres, the rest points
			e.Radius = rng.Float64() * 0.4
		}
		o.InsertSphere(rng.Intn(nodes), e)
	}
	// Churn: leave or crash up to a quarter of the overlay.
	for i := 0; i < nodes/4; i++ {
		id := rng.Intn(nodes)
		if !o.Alive(id) {
			continue
		}
		if rng.Intn(2) == 0 {
			if _, err := o.Leave(id); err != nil {
				t.Fatalf("Leave(%d): %v", id, err)
			}
		} else {
			o.ClearNode(id)
		}
	}
	var alive []int
	for id := 0; id < nodes; id++ {
		if o.Alive(id) {
			alive = append(alive, id)
		}
	}
	return o, alive
}

func randomKey(rng *rand.Rand, dim int) []float64 {
	key := make([]float64, dim)
	for i := range key {
		key[i] = rng.Float64()
	}
	return key
}

// checkSearchAgainstReference runs one query through both the route-machine
// path and the frozen reference and requires byte-identical entries (order
// included) and an identical hop count.
func checkSearchAgainstReference(t testing.TB, o *Overlay, from int, key []float64, radius float64) {
	t.Helper()
	wantEntries, wantHops := searchSphereReference(o, from, key, radius)
	gotEntries, gotHops := o.SearchSphere(from, key, radius)
	if gotHops != wantHops {
		t.Errorf("SearchSphere(from=%d, key=%v, r=%v) hops = %d, reference %d",
			from, key, radius, gotHops, wantHops)
	}
	if !reflect.DeepEqual(gotEntries, wantEntries) {
		t.Errorf("SearchSphere(from=%d, key=%v, r=%v) entries diverge from reference:\n got %v\nwant %v",
			from, key, radius, gotEntries, wantEntries)
	}
}

// TestSearchSphereMatchesReference differentially tests the extracted
// routing core against the frozen pre-extraction algorithm across many
// random topologies, inserts, churn patterns, and query spheres.
func TestSearchSphereMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o, alive := randomOverlay(t, rng)
		for q := 0; q < 25; q++ {
			from := alive[rng.Intn(len(alive))]
			radius := 0.0
			if rng.Intn(4) > 0 {
				radius = rng.Float64() * 0.6
			}
			checkSearchAgainstReference(t, o, from, randomKey(rng, o.Dim()), radius)
		}
		if t.Failed() {
			t.Fatalf("divergence at seed %d", seed)
		}
	}
}

// FuzzSearchSphere drives the differential check from fuzzer-chosen seeds:
// one seed derives the topology, inserts, and churn; the remaining inputs
// shape a single query sphere.
func FuzzSearchSphere(f *testing.F) {
	f.Add(int64(1), int64(2), 0.1)
	f.Add(int64(7), int64(0), 0.0)
	f.Add(int64(42), int64(99), 0.55)
	f.Fuzz(func(t *testing.T, topoSeed, querySeed int64, radius float64) {
		if radius < 0 || radius > 1 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(topoSeed))
		o, alive := randomOverlay(t, rng)
		qrng := rand.New(rand.NewSource(querySeed))
		from := alive[qrng.Intn(len(alive))]
		checkSearchAgainstReference(t, o, from, randomKey(qrng, o.Dim()), radius)
	})
}
