package can

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"hyperm/internal/route"
)

// Differential tests for the α-parallel search driver: route.RunAlpha must
// return byte-identical entries and hops to the serial route.Run on every
// topology the simulator can reach — the determinism contract the serving
// coordinator relies on when it turns α up.

// overlayViews adapts a live overlay into a concurrency-safe route.ViewSource
// (liveView is a pure read of overlay state).
type overlayViews struct{ o *Overlay }

func (s overlayViews) View(id int) (route.NodeView, error) {
	return s.o.liveView(s.o.nodes[id]), nil
}

// jitterViews wraps a source with small random per-call delays so concurrent
// batch fetches genuinely complete out of order — the commutativity property
// under test is that completion order cannot leak into the results.
type jitterViews struct {
	src route.ViewSource
	mu  sync.Mutex
	rng *rand.Rand
}

func (s *jitterViews) View(id int) (route.NodeView, error) {
	s.mu.Lock()
	d := time.Duration(s.rng.Intn(200)) * time.Microsecond
	s.mu.Unlock()
	time.Sleep(d)
	return s.src.View(id)
}

// TestRunAlphaMatchesSerial runs many random topologies/queries through the
// serial driver and through RunAlpha at α ∈ {1, 2, 3, 8}, requiring
// byte-identical entries (order included) and identical hop counts. α=1 must
// take the serial path exactly; α>1 exercises batched frontier claims.
func TestRunAlphaMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o, alive := randomOverlay(t, rng)
		src := overlayViews{o}
		for q := 0; q < 10; q++ {
			from := alive[rng.Intn(len(alive))]
			key := randomKey(rng, o.Dim())
			radius := 0.0
			if rng.Intn(4) > 0 {
				radius = rng.Float64() * 0.6
			}
			mk := func() *route.Search {
				return route.NewSearch(o.liveView(o.nodes[from]), key, radius, o.hopLimit())
			}
			wantEntries, wantHops, err := route.Run(mk(), src)
			if err != nil {
				t.Fatalf("seed %d: serial Run: %v", seed, err)
			}
			for _, alpha := range []int{1, 2, 3, 8} {
				gotEntries, gotHops, err := route.RunAlpha(mk(), src, alpha)
				if err != nil {
					t.Fatalf("seed %d α=%d: RunAlpha: %v", seed, alpha, err)
				}
				if gotHops != wantHops {
					t.Fatalf("seed %d α=%d (from=%d key=%v r=%v): hops = %d, serial %d",
						seed, alpha, from, key, radius, gotHops, wantHops)
				}
				if !reflect.DeepEqual(gotEntries, wantEntries) {
					t.Fatalf("seed %d α=%d (from=%d key=%v r=%v): entries diverge:\n got %v\nwant %v",
						seed, alpha, from, key, radius, gotEntries, wantEntries)
				}
			}
		}
	}
}

// TestRunAlphaCommutesUnderJitter repeats the differential check with a
// view source that answers after random delays, so in-flight batch fetches
// complete in scrambled order. Results must still match the serial walk —
// proving the merge depends only on claim order, never completion order.
func TestRunAlphaCommutesUnderJitter(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		o, alive := randomOverlay(t, rng)
		src := overlayViews{o}
		jit := &jitterViews{src: src, rng: rand.New(rand.NewSource(seed * 31))}
		for q := 0; q < 4; q++ {
			from := alive[rng.Intn(len(alive))]
			key := randomKey(rng, o.Dim())
			radius := rng.Float64() * 0.6
			mk := func() *route.Search {
				return route.NewSearch(o.liveView(o.nodes[from]), key, radius, o.hopLimit())
			}
			wantEntries, wantHops, err := route.Run(mk(), src)
			if err != nil {
				t.Fatalf("seed %d: serial Run: %v", seed, err)
			}
			gotEntries, gotHops, err := route.RunAlpha(mk(), jit, 3)
			if err != nil {
				t.Fatalf("seed %d: RunAlpha: %v", seed, err)
			}
			if gotHops != wantHops || !reflect.DeepEqual(gotEntries, wantEntries) {
				t.Fatalf("seed %d (from=%d key=%v r=%v): jittered α=3 diverges from serial:\n got %v (hops %d)\nwant %v (hops %d)",
					seed, from, key, radius, gotEntries, gotHops, wantEntries, wantHops)
			}
		}
	}
}
