package can

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hyperm/internal/overlay"
	"hyperm/internal/route"
)

// Zone split/takeover invariants: after ANY sequence of joins, graceful
// leaves, and crashes, the alive zones must exactly tile the key space per
// level (no gap, no overlap), the neighbor relation must be the adjacency
// relation (symmetric, sorted), and every surviving cluster ref must have
// exactly one live owner — the invariants the live membership protocol
// relies on to route and answer correctly through churn.

// churnOps applies fuzzer-chosen join/leave/crash ops to an overlay built
// from topoSeed, returning the overlay, the inserted seqs, and whether any
// crash happened (crashes may legitimately lose records; other churn must
// not).
func churnOps(t testing.TB, topoSeed int64, ops []byte) (*Overlay, []int, bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(topoSeed))
	nodes := 4 + rng.Intn(8)
	dim := 1 + rng.Intn(3)
	o, err := Build(Config{Nodes: nodes, Dim: dim, Rng: rng})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var seqs []int
	inserts := 20 + rng.Intn(20)
	for i := 0; i < inserts; i++ {
		e := overlay.Entry{Key: randomKey(rng, dim), Payload: i}
		if rng.Intn(3) > 0 {
			e.Radius = rng.Float64() * 0.4
		}
		seqs = append(seqs, o.nextSeq)
		o.InsertSphere(rng.Intn(nodes), e)
	}

	sawCrash := false
	if len(ops) > 128 {
		ops = ops[:128]
	}
	for i := 0; i+1 < len(ops); i += 2 {
		opc, arg := ops[i], ops[i+1]
		switch opc % 4 {
		case 0, 1: // join at a point derived deterministically from arg
			if o.Size() >= 64 {
				continue
			}
			point := make([]float64, dim)
			for j := range point {
				_, point[j] = math.Modf(float64(arg+1) * 0.61803398875 * float64(j+1))
			}
			if _, err := o.JoinNode(point); err != nil {
				t.Fatalf("JoinNode(%v): %v", point, err)
			}
		case 2: // graceful leave
			id := int(arg) % o.Size()
			if !o.Alive(id) || aliveCount(o) < 2 {
				continue
			}
			if _, err := o.Leave(id); err != nil {
				t.Fatalf("Leave(%d): %v", id, err)
			}
		case 3: // crash with neighbor takeover
			id := int(arg) % o.Size()
			if !o.Alive(id) || aliveCount(o) < 2 {
				continue
			}
			if _, err := o.Crash(id); err != nil {
				t.Fatalf("Crash(%d): %v", id, err)
			}
			sawCrash = true
		}
	}
	return o, seqs, sawCrash
}

func aliveCount(o *Overlay) int {
	n := 0
	for _, m := range o.nodes {
		if m.alive {
			n++
		}
	}
	return n
}

// checkChurnInvariants asserts the full invariant set on a post-churn
// overlay.
func checkChurnInvariants(t testing.TB, o *Overlay, seqs []int, sawCrash bool) {
	t.Helper()
	var zoneSets [][]Zone
	for _, n := range o.nodes {
		if n.alive {
			zoneSets = append(zoneSets, n.zones)
		}
	}
	if !route.VerifyTiling(zoneSets) {
		t.Fatalf("alive zones do not tile the key space: %v", zoneSets)
	}

	for _, n := range o.nodes {
		if !n.alive {
			if len(n.neighbors) != 0 || len(n.zones) != 0 || len(n.owned)+len(n.replicas) != 0 {
				t.Fatalf("dead node %d retains state", n.id)
			}
			continue
		}
		if !sort.IntsAreSorted(n.neighbors) {
			t.Fatalf("node %d neighbor list %v not sorted", n.id, n.neighbors)
		}
		for _, m := range o.nodes {
			if m.id == n.id {
				continue
			}
			has := contains(n.neighbors, m.id)
			adj := m.alive && nodesAdjacent(n, m)
			if has != adj {
				t.Fatalf("node %d: neighbor(%d)=%v but adjacency=%v", n.id, m.id, has, adj)
			}
		}
	}

	owners := map[int]int{}
	for _, n := range o.nodes {
		if !n.alive {
			continue
		}
		for _, rec := range n.owned {
			if !n.containsPoint(rec.Entry.Key) {
				t.Fatalf("node %d owns seq %d whose centroid %v is outside its zones", n.id, rec.Seq, rec.Entry.Key)
			}
			owners[rec.Seq]++
		}
		for _, rec := range n.replicas {
			if !n.intersectsSphere(rec.Entry.Key, rec.Entry.Radius) {
				t.Fatalf("node %d replicates seq %d whose sphere misses its zones", n.id, rec.Seq)
			}
		}
	}
	for seq, c := range owners {
		if c != 1 {
			t.Fatalf("seq %d owned by %d nodes, want exactly 1", seq, c)
		}
	}
	for _, n := range o.nodes {
		if !n.alive {
			continue
		}
		for _, rec := range n.replicas {
			if owners[rec.Seq] == 0 {
				t.Fatalf("node %d holds an orphan replica of seq %d (no live owner)", n.id, rec.Seq)
			}
		}
	}
	if !sawCrash {
		for _, seq := range seqs {
			if owners[seq] != 1 {
				t.Fatalf("seq %d lost without any crash (owners=%d)", seq, owners[seq])
			}
		}
	}
}

// TestZoneSplitTakeoverInvariants pins the invariant check on deterministic
// schedules so plain `go test` exercises it without the fuzzer.
func TestZoneSplitTakeoverInvariants(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		ops := make([]byte, 48)
		rng.Read(ops)
		o, seqs, sawCrash := churnOps(t, seed, ops)
		checkChurnInvariants(t, o, seqs, sawCrash)
	}
}

// FuzzZoneSplitTakeover lets the fuzzer pick both the base topology and the
// churn schedule.
func FuzzZoneSplitTakeover(f *testing.F) {
	f.Add(int64(1), []byte{0, 3, 2, 1, 3, 0})
	f.Add(int64(7), []byte{1, 200, 2, 5, 3, 5, 0, 9, 3, 1})
	f.Add(int64(42), []byte{})
	f.Fuzz(func(t *testing.T, topoSeed int64, ops []byte) {
		o, seqs, sawCrash := churnOps(t, topoSeed, ops)
		checkChurnInvariants(t, o, seqs, sawCrash)
	})
}
