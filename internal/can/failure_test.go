package can

import (
	"math/rand"
	"testing"

	"hyperm/internal/overlay"
)

func buildLossy(t *testing.T, nodes, dim int, drop float64, seed int64) *Overlay {
	t.Helper()
	o, err := Build(Config{
		Nodes:    nodes,
		Dim:      dim,
		Rng:      rand.New(rand.NewSource(seed)),
		DropRate: drop,
		FailRng:  rand.New(rand.NewSource(seed + 1000)),
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return o
}

func TestDropRateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(Config{Nodes: 3, Dim: 2, Rng: rng, DropRate: -0.1,
		FailRng: rng}); err == nil {
		t.Error("negative drop rate should fail")
	}
	if _, err := Build(Config{Nodes: 3, Dim: 2, Rng: rng, DropRate: 1.0,
		FailRng: rng}); err == nil {
		t.Error("drop rate 1.0 should fail")
	}
	if _, err := Build(Config{Nodes: 3, Dim: 2, Rng: rng, DropRate: 0.5}); err == nil {
		t.Error("drop rate without FailRng should fail")
	}
}

// Zero drop rate must behave identically to the lossless overlay.
func TestZeroDropRateIdenticalToLossless(t *testing.T) {
	a := build(t, 30, 2, 77)
	b := buildLossy(t, 30, 2, 0, 77)
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 40; i++ {
		key := randKey(rng, 2)
		radius := rng.Float64() * 0.2
		from := rng.Intn(30)
		ha := a.InsertSphere(from, overlay.Entry{Key: key, Radius: radius, Payload: i})
		hb := b.InsertSphere(from, overlay.Entry{Key: key, Radius: radius, Payload: i})
		if ha != hb {
			t.Fatalf("insert %d: hops differ %d vs %d", i, ha, hb)
		}
	}
}

// Routing still always reaches the owner under loss (retransmission), but
// costs more hops on average.
func TestRoutingSurvivesLoss(t *testing.T) {
	lossless := build(t, 50, 2, 79)
	lossy := buildLossy(t, 50, 2, 0.3, 79)
	rng := rand.New(rand.NewSource(80))
	totalLossless, totalLossy := 0, 0
	for i := 0; i < 100; i++ {
		key := randKey(rng, 2)
		from := rng.Intn(50)
		oa, ha := lossless.route(lossless.nodes[from], key)
		ob, hb := lossy.route(lossy.nodes[from], key)
		if !oa.containsPoint(key) || !ob.containsPoint(key) {
			t.Fatal("routing failed to reach owner")
		}
		totalLossless += ha
		totalLossy += hb
	}
	if totalLossy <= totalLossless {
		t.Errorf("30%% loss should cost extra retransmissions: %d vs %d hops",
			totalLossy, totalLossless)
	}
}

// Under loss, replication coverage degrades but the owner always stores the
// entry, so point search at the exact key still succeeds; and at 50% drop
// the total replica count must fall short of a lossless run on the same
// topology and workload.
func TestLossyReplicationDegradesButOwnerHolds(t *testing.T) {
	lossless := build(t, 40, 2, 81)
	lossy := buildLossy(t, 40, 2, 0.5, 81)
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 30; i++ {
		key := randKey(rng, 2)
		radius := 0.15 + rng.Float64()*0.15
		from := rng.Intn(40)
		lossless.InsertSphere(from, overlay.Entry{Key: key, Radius: radius, Payload: i})
		lossy.InsertSphere(from, overlay.Entry{Key: key, Radius: radius, Payload: i})
		// The centroid owner must hold the entry regardless of loss.
		res, _ := lossy.SearchSphere(0, key, 0.001)
		found := false
		for _, e := range res {
			if e.Payload == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("insert %d: owner lost the entry", i)
		}
	}
	replicas := func(o *Overlay) int {
		total := 0
		for id := 0; id < o.Size(); id++ {
			_, rep := o.NodeLoad(id)
			total += rep
		}
		return total
	}
	if got, want := replicas(lossy), replicas(lossless); got >= want {
		t.Errorf("50%% drop placed %d replicas, lossless run placed %d — loss had no effect", got, want)
	}
}

// Search under loss can miss entries (recall < 1), but never fabricates
// results (precision stays 1 at the overlay level).
func TestLossySearchNeverFabricates(t *testing.T) {
	o := buildLossy(t, 40, 3, 0.3, 83)
	rng := rand.New(rand.NewSource(84))
	type ins struct {
		key    []float64
		radius float64
		id     int
	}
	var all []ins
	for i := 0; i < 40; i++ {
		e := ins{key: randKey(rng, 3), radius: rng.Float64() * 0.2, id: i}
		all = append(all, e)
		o.InsertSphere(rng.Intn(40), overlay.Entry{Key: e.key, Radius: e.radius, Payload: e.id})
	}
	for q := 0; q < 30; q++ {
		qkey := randKey(rng, 3)
		qrad := rng.Float64() * 0.3
		res, _ := o.SearchSphere(rng.Intn(40), qkey, qrad)
		for _, e := range res {
			id := e.Payload.(int)
			if TorusDist(all[id].key, qkey) > all[id].radius+qrad+1e-12 {
				t.Fatalf("query %d returned non-intersecting entry %d", q, id)
			}
		}
	}
}
