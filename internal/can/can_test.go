package can

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperm/internal/overlay"
)

func build(t *testing.T, nodes, dim int, seed int64) *Overlay {
	t.Helper()
	o, err := Build(Config{Nodes: nodes, Dim: dim, Rng: rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return o
}

func randKey(rng *rand.Rand, dim int) []float64 {
	k := make([]float64, dim)
	for i := range k {
		k[i] = rng.Float64()
	}
	return k
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(Config{Nodes: 0, Dim: 2, Rng: rng}); err == nil {
		t.Error("expected error for 0 nodes")
	}
	if _, err := Build(Config{Nodes: 5, Dim: 0, Rng: rng}); err == nil {
		t.Error("expected error for 0 dim")
	}
	if _, err := Build(Config{Nodes: 5, Dim: 2}); err == nil {
		t.Error("expected error for nil rng")
	}
}

// Invariant: zones partition the unit torus — volumes sum to 1 and every
// random point has exactly one owner.
func TestZonesTileSpace(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 4} {
		for _, nodes := range []int{1, 2, 7, 50} {
			o := build(t, nodes, dim, int64(dim*100+nodes))
			var vol float64
			for i := 0; i < o.Size(); i++ {
				vol += o.ZoneOf(i).Volume()
			}
			if math.Abs(vol-1) > 1e-9 {
				t.Errorf("dim=%d nodes=%d: zone volumes sum to %v", dim, nodes, vol)
			}
			rng := rand.New(rand.NewSource(99))
			for q := 0; q < 50; q++ {
				p := randKey(rng, dim)
				owners := 0
				for i := 0; i < o.Size(); i++ {
					if o.ZoneOf(i).Contains(p) {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("dim=%d nodes=%d: point %v has %d owners", dim, nodes, p, owners)
				}
			}
		}
	}
}

// Invariant: the neighbor relation is symmetric and matches zonesAdjacent.
func TestNeighborSymmetry(t *testing.T) {
	o := build(t, 60, 2, 5)
	for i := 0; i < o.Size(); i++ {
		for _, j := range o.Neighbors(i) {
			if !contains(o.Neighbors(j), i) {
				t.Fatalf("neighbor asymmetry: %d -> %d", i, j)
			}
			if !zonesAdjacent(o.ZoneOf(i), o.ZoneOf(j)) {
				t.Fatalf("nodes %d,%d are neighbors but zones not adjacent", i, j)
			}
		}
	}
	// And completeness: adjacent zones must be in each other's lists.
	for i := 0; i < o.Size(); i++ {
		for j := 0; j < o.Size(); j++ {
			if i != j && zonesAdjacent(o.ZoneOf(i), o.ZoneOf(j)) && !contains(o.Neighbors(i), j) {
				t.Fatalf("adjacent zones %d,%d missing from neighbor lists", i, j)
			}
		}
	}
}

func TestRoutingTerminatesWithoutFallback(t *testing.T) {
	for _, dim := range []int{1, 2, 4} {
		o := build(t, 80, dim, int64(dim))
		rng := rand.New(rand.NewSource(7))
		for q := 0; q < 200; q++ {
			key := randKey(rng, dim)
			from := rng.Intn(o.Size())
			owner, _ := o.route(o.nodes[from], key)
			if !owner.containsPoint(key) {
				t.Fatalf("routing returned non-owner for %v", key)
			}
		}
		if fb := o.Stats().RouteFallbacks; fb != 0 {
			t.Errorf("dim=%d: %d route fallbacks, want 0", dim, fb)
		}
	}
}

func TestInsertThenSearchPoint(t *testing.T) {
	o := build(t, 40, 2, 11)
	rng := rand.New(rand.NewSource(12))
	key := randKey(rng, 2)
	hops := o.InsertSphere(3, overlay.Entry{Key: key, Payload: "hello"})
	if hops < 0 {
		t.Fatalf("negative hops %d", hops)
	}
	res, _ := o.SearchSphere(9, key, 0.001)
	if len(res) != 1 || res[0].Payload != "hello" {
		t.Fatalf("search results %v", res)
	}
}

func TestSearchMissesDistantEntry(t *testing.T) {
	o := build(t, 40, 2, 13)
	o.InsertSphere(0, overlay.Entry{Key: []float64{0.1, 0.1}, Payload: 1})
	res, _ := o.SearchSphere(0, []float64{0.4, 0.4}, 0.05)
	if len(res) != 0 {
		t.Fatalf("distant entry should not match, got %v", res)
	}
}

// Invariant (Fig 6): after inserting a sphere, every node whose zone the
// sphere overlaps holds the record, and no other node does.
func TestSphereReplicationCoverage(t *testing.T) {
	o := build(t, 50, 2, 17)
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 30; trial++ {
		key := randKey(rng, 2)
		radius := rng.Float64() * 0.3
		before := make([]int, o.Size())
		for i := range before {
			ow, rep := o.NodeLoad(i)
			before[i] = ow + rep
		}
		o.InsertSphere(rng.Intn(o.Size()), overlay.Entry{Key: key, Radius: radius, Payload: trial})
		for i := 0; i < o.Size(); i++ {
			ow, rep := o.NodeLoad(i)
			gained := ow + rep - before[i]
			intersects := o.ZoneOf(i).IntersectsSphere(key, radius)
			if intersects && gained != 1 {
				t.Fatalf("trial %d: node %d intersects sphere but gained %d records", trial, i, gained)
			}
			if !intersects && gained != 0 {
				t.Fatalf("trial %d: node %d does not intersect sphere but gained %d records", trial, i, gained)
			}
		}
	}
}

// Invariant: sphere search has no false dismissals at the overlay level —
// every entry whose sphere intersects the query sphere is returned.
func TestPropSearchNoFalseDismissals(t *testing.T) {
	o := build(t, 50, 3, 19)
	rng := rand.New(rand.NewSource(20))
	type ins struct {
		key    []float64
		radius float64
		id     int
	}
	var all []ins
	for i := 0; i < 60; i++ {
		e := ins{key: randKey(rng, 3), radius: rng.Float64() * 0.2, id: i}
		all = append(all, e)
		o.InsertSphere(rng.Intn(o.Size()), overlay.Entry{Key: e.key, Radius: e.radius, Payload: e.id})
	}
	for q := 0; q < 40; q++ {
		qkey := randKey(rng, 3)
		qrad := rng.Float64() * 0.3
		res, _ := o.SearchSphere(rng.Intn(o.Size()), qkey, qrad)
		got := map[int]bool{}
		for _, e := range res {
			got[e.Payload.(int)] = true
		}
		for _, e := range all {
			want := TorusDist(e.key, qkey) <= e.radius+qrad
			if want && !got[e.id] {
				t.Fatalf("query %d: entry %d intersects but was not returned", q, e.id)
			}
			if !want && got[e.id] {
				t.Fatalf("query %d: entry %d does not intersect but was returned", q, e.id)
			}
		}
	}
}

func TestReplicasDedupedInSearch(t *testing.T) {
	o := build(t, 30, 2, 23)
	// A big sphere replicated almost everywhere must come back exactly once.
	o.InsertSphere(0, overlay.Entry{Key: []float64{0.5, 0.5}, Radius: 0.45, Payload: "big"})
	res, _ := o.SearchSphere(7, []float64{0.5, 0.5}, 0.45)
	if len(res) != 1 {
		t.Fatalf("expected 1 deduplicated result, got %d", len(res))
	}
}

func TestObserverSeesEveryHop(t *testing.T) {
	msgs := 0
	o, err := Build(Config{Nodes: 40, Dim: 2, Rng: rand.New(rand.NewSource(29)),
		Observer: func(from, to int) { msgs++ }})
	if err != nil {
		t.Fatal(err)
	}
	if msgs != o.Stats().JoinHops {
		t.Errorf("observer saw %d join messages, stats say %d", msgs, o.Stats().JoinHops)
	}
	msgs = 0
	hops := o.InsertSphere(0, overlay.Entry{Key: []float64{0.9, 0.9}, Radius: 0.2})
	if msgs != hops {
		t.Errorf("observer saw %d insert messages, hops = %d", msgs, hops)
	}
	msgs = 0
	_, shops := o.SearchSphere(0, []float64{0.2, 0.2}, 0.15)
	if msgs != shops {
		t.Errorf("observer saw %d search messages, hops = %d", msgs, shops)
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	o := build(t, 30, 2, 31)
	o.InsertSphere(0, overlay.Entry{Key: []float64{0.3, 0.7}, Radius: 0.2})
	st := o.Stats()
	if st.InsertRouteHops+st.InsertReplicationHops == 0 {
		t.Error("insert should consume hops in a 30-node network")
	}
	o.ResetStats()
	if o.Stats() != (Stats{}) {
		t.Error("ResetStats should zero everything")
	}
}

func TestTorusDist(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{0.1}, []float64{0.9}, 0.2}, // wraps
		{[]float64{0.2}, []float64{0.5}, 0.3},
		{[]float64{0.05, 0.05}, []float64{0.95, 0.05}, 0.1},
	}
	for _, tc := range cases {
		if got := TorusDist(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("TorusDist(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestZoneDistToPoint(t *testing.T) {
	z := Zone{Lo: []float64{0.25, 0.25}, Hi: []float64{0.5, 0.5}}
	if got := z.DistToPoint([]float64{0.3, 0.3}); got != 0 {
		t.Errorf("interior point distance %v", got)
	}
	if got := z.DistToPoint([]float64{0.6, 0.3}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("side distance = %v, want 0.1", got)
	}
	// Wraparound: x=0.95 is 0.05+0.25=0.30 away going right through the seam
	// to lo=0.25... actually circ distance from 0.95 to 0.25 is 0.3, to 0.5
	// is 0.45; min is 0.3.
	if got := z.DistToPoint([]float64{0.95, 0.3}); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("wrap distance = %v, want 0.3", got)
	}
}

func TestKeyValidation(t *testing.T) {
	o := build(t, 5, 2, 37)
	for _, fn := range []func(){
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{0.5}}) },
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{1.0, 0.5}}) },
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{-0.1, 0.5}}) },
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{0.5, 0.5}, Radius: -1}) },
		func() { o.SearchSphere(0, []float64{0.5, 0.5}, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestOwnerOf(t *testing.T) {
	o := build(t, 20, 2, 41)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		p := randKey(rng, 2)
		id := o.OwnerOf(p)
		if !o.ZoneOf(id).Contains(p) {
			t.Fatalf("OwnerOf(%v) = %d but zone does not contain it", p, id)
		}
	}
}

func TestSingleNodeOverlay(t *testing.T) {
	o := build(t, 1, 3, 43)
	hops := o.InsertSphere(0, overlay.Entry{Key: []float64{0.5, 0.5, 0.5}, Radius: 0.3, Payload: "x"})
	if hops != 0 {
		t.Errorf("single-node insert cost %d hops, want 0", hops)
	}
	res, shops := o.SearchSphere(0, []float64{0.5, 0.5, 0.5}, 0.1)
	if len(res) != 1 || shops != 0 {
		t.Errorf("single-node search: %d results, %d hops", len(res), shops)
	}
}

// Routing cost should grow sublinearly with network size (CAN gives
// O(d * N^(1/d))); sanity-check the trend rather than the constant.
func TestRoutingScalesSublinearly(t *testing.T) {
	avgHops := func(nodes int) float64 {
		o := build(t, nodes, 2, int64(nodes))
		rng := rand.New(rand.NewSource(55))
		total := 0
		const queries = 100
		for q := 0; q < queries; q++ {
			_, h := o.route(o.nodes[rng.Intn(o.Size())], randKey(rng, 2))
			total += h
		}
		return float64(total) / queries
	}
	small, large := avgHops(25), avgHops(400)
	if large > small*6 {
		t.Errorf("routing not sublinear: 25 nodes %.2f hops, 400 nodes %.2f hops", small, large)
	}
	if large <= small {
		t.Logf("note: larger network routed cheaper (%.2f vs %.2f) — acceptable variance", large, small)
	}
}

// Property: build determinism — identical seeds give identical topologies.
func TestPropBuildDeterministic(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		nodes := int(n%50) + 2
		a := mustBuild(nodes, 2, seed)
		b := mustBuild(nodes, 2, seed)
		for i := 0; i < nodes; i++ {
			za, zb := a.ZoneOf(i), b.ZoneOf(i)
			for j := range za.Lo {
				if za.Lo[j] != zb.Lo[j] || za.Hi[j] != zb.Hi[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func mustBuild(nodes, dim int, seed int64) *Overlay {
	o, err := Build(Config{Nodes: nodes, Dim: dim, Rng: rand.New(rand.NewSource(seed))})
	if err != nil {
		panic(err)
	}
	return o
}

func BenchmarkBuild100Nodes2D(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustBuild(100, 2, int64(i))
	}
}

func BenchmarkInsertSphere(b *testing.B) {
	o := mustBuild(100, 2, 1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.InsertSphere(rng.Intn(100), overlay.Entry{Key: randKeyB(rng, 2), Radius: 0.05})
	}
}

func BenchmarkSearchSphere(b *testing.B) {
	o := mustBuild(100, 2, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		o.InsertSphere(rng.Intn(100), overlay.Entry{Key: randKeyB(rng, 2), Radius: 0.05})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.SearchSphere(rng.Intn(100), randKeyB(rng, 2), 0.1)
	}
}

func randKeyB(rng *rand.Rand, dim int) []float64 {
	k := make([]float64, dim)
	for i := range k {
		k[i] = rng.Float64()
	}
	return k
}
