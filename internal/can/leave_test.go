package can

import (
	"math"
	"math/rand"
	"testing"

	"hyperm/internal/overlay"
)

// totalVolume sums the key-space volume across alive nodes — must stay 1
// through any sequence of joins and leaves.
func totalVolume(o *Overlay) float64 {
	var v float64
	for _, n := range o.nodes {
		v += n.volume()
	}
	return v
}

func TestUnionBox(t *testing.T) {
	a := Zone{Lo: []float64{0, 0}, Hi: []float64{0.5, 0.5}}
	b := Zone{Lo: []float64{0.5, 0}, Hi: []float64{1, 0.5}}
	u, ok := unionBox(a, b)
	if !ok {
		t.Fatal("abutting half-boxes should merge")
	}
	if u.Lo[0] != 0 || u.Hi[0] != 1 || u.Lo[1] != 0 || u.Hi[1] != 0.5 {
		t.Fatalf("merged zone %v", u)
	}
	// Same result in the other order.
	u2, ok := unionBox(b, a)
	if !ok || u2.Volume() != u.Volume() {
		t.Fatal("unionBox not symmetric")
	}
	// Corner-adjacent boxes must not merge.
	c := Zone{Lo: []float64{0.5, 0.5}, Hi: []float64{1, 1}}
	if _, ok := unionBox(a, c); ok {
		t.Fatal("diagonal boxes merged")
	}
	// Different extents along the non-join dimension must not merge.
	d := Zone{Lo: []float64{0.5, 0}, Hi: []float64{1, 0.25}}
	if _, ok := unionBox(a, d); ok {
		t.Fatal("misaligned boxes merged")
	}
	// Seam abutment (0/1 wrap) does not form a box.
	e := Zone{Lo: []float64{0.75, 0}, Hi: []float64{1, 0.5}}
	f := Zone{Lo: []float64{0, 0}, Hi: []float64{0.25, 0.5}}
	if _, ok := unionBox(e, f); ok {
		t.Fatal("seam-wrapped union is not a box")
	}
}

func TestLeaveMergeSibling(t *testing.T) {
	// Two nodes: zones are the two halves; after one leaves, the survivor
	// owns the full torus again.
	o := build(t, 2, 2, 41)
	if _, err := o.Leave(1); err != nil {
		t.Fatal(err)
	}
	if o.Alive(1) {
		t.Fatal("node 1 should be gone")
	}
	if math.Abs(totalVolume(o)-1) > 1e-12 {
		t.Fatalf("volume %v after leave", totalVolume(o))
	}
	z := o.Zones(0)
	if len(z) != 1 || math.Abs(z[0].Volume()-1) > 1e-12 {
		t.Fatalf("survivor zones %v", z)
	}
}

func TestLeavePreservesTilingAndRecords(t *testing.T) {
	o := build(t, 40, 2, 43)
	rng := rand.New(rand.NewSource(44))
	// Insert a corpus.
	type ins struct {
		key    []float64
		radius float64
		id     int
	}
	var all []ins
	for i := 0; i < 60; i++ {
		e := ins{key: randKey(rng, 2), radius: rng.Float64() * 0.15, id: i}
		all = append(all, e)
		o.InsertSphere(rng.Intn(40), overlay.Entry{Key: e.key, Radius: e.radius, Payload: e.id})
	}
	// A third of the nodes leave, one by one.
	departed := map[int]bool{}
	for _, id := range rng.Perm(40)[:13] {
		if _, err := o.Leave(id); err != nil {
			t.Fatalf("Leave(%d): %v", id, err)
		}
		departed[id] = true
		if math.Abs(totalVolume(o)-1) > 1e-9 {
			t.Fatalf("tiling broken after Leave(%d): volume %v", id, totalVolume(o))
		}
	}
	// Every point still has exactly one alive owner.
	for q := 0; q < 100; q++ {
		p := randKey(rng, 2)
		owners := 0
		for idn, n := range o.nodes {
			if n.alive && n.containsPoint(p) {
				owners++
				_ = idn
			}
		}
		if owners != 1 {
			t.Fatalf("point %v has %d owners after churn", p, owners)
		}
	}
	// Graceful departure preserves every record: searches from survivors
	// still have no false dismissals.
	from := -1
	for id := 0; id < 40; id++ {
		if !departed[id] {
			from = id
			break
		}
	}
	for q := 0; q < 30; q++ {
		qkey := randKey(rng, 2)
		qrad := rng.Float64() * 0.25
		res, _ := o.SearchSphere(from, qkey, qrad)
		got := map[int]bool{}
		for _, e := range res {
			got[e.Payload.(int)] = true
		}
		for _, e := range all {
			want := TorusDist(e.key, qkey) <= e.radius+qrad
			if want && !got[e.id] {
				t.Fatalf("entry %d lost after graceful churn", e.id)
			}
		}
	}
	if fb := o.Stats().RouteFallbacks; fb != 0 {
		t.Errorf("%d route fallbacks after churn", fb)
	}
}

func TestLeaveRoutingStillWorks(t *testing.T) {
	o := build(t, 30, 3, 47)
	rng := rand.New(rand.NewSource(48))
	for _, id := range rng.Perm(30)[:10] {
		if _, err := o.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	// Route from every survivor to random points.
	for idn, n := range o.nodes {
		if !n.alive {
			continue
		}
		for q := 0; q < 10; q++ {
			key := randKey(rng, 3)
			owner, _ := o.route(o.nodes[idn], key)
			if !owner.containsPoint(key) || !owner.alive {
				t.Fatalf("routing from %d failed after churn", idn)
			}
		}
	}
}

func TestLeaveErrors(t *testing.T) {
	o := build(t, 3, 2, 49)
	if _, err := o.Leave(0); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Leave(0); err == nil {
		t.Error("double leave should error")
	}
	if _, err := o.Leave(1); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Leave(2); err == nil {
		t.Error("last node leaving should error")
	}
	// Operations from a departed node panic.
	defer func() {
		if recover() == nil {
			t.Error("insert from departed node should panic")
		}
	}()
	o.InsertSphere(0, overlay.Entry{Key: []float64{0.5, 0.5}})
}

func TestJoinAfterLeave(t *testing.T) {
	// Churn both ways: leaves followed by fresh joins keep the overlay
	// consistent. (New joins bootstrap from alive nodes only.)
	o := build(t, 20, 2, 51)
	rng := rand.New(rand.NewSource(52))
	for _, id := range []int{3, 7, 11} {
		if _, err := o.Leave(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		o.join(rng)
	}
	if math.Abs(totalVolume(o)-1) > 1e-9 {
		t.Fatalf("volume %v after churn", totalVolume(o))
	}
	// Insert + search still exact.
	key := randKey(rng, 2)
	o.InsertSphere(0, overlay.Entry{Key: key, Radius: 0.1, Payload: "post-churn"})
	res, _ := o.SearchSphere(1, key, 0.05)
	found := false
	for _, e := range res {
		if e.Payload == "post-churn" {
			found = true
		}
	}
	if !found {
		t.Error("post-churn insert not found")
	}
}
