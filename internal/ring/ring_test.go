package ring

import (
	"math"
	"math/rand"
	"testing"

	"hyperm/internal/overlay"
	"hyperm/internal/zorder"
)

func build(t *testing.T, nodes, dim int, seed int64) *Overlay {
	t.Helper()
	o, err := Build(Config{Nodes: nodes, Dim: dim, Rng: rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return o
}

func randKey(rng *rand.Rand, dim int) []float64 {
	k := make([]float64, dim)
	for i := range k {
		k[i] = rng.Float64()
	}
	return k
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(Config{Nodes: 0, Dim: 2, Rng: rng}); err == nil {
		t.Error("expected error for 0 nodes")
	}
	if _, err := Build(Config{Nodes: 3, Dim: 0, Rng: rng}); err == nil {
		t.Error("expected error for 0 dim")
	}
	if _, err := Build(Config{Nodes: 3, Dim: 2}); err == nil {
		t.Error("expected error for nil rng")
	}
}

func TestOwnerOfConsistent(t *testing.T) {
	for _, dim := range []int{1, 2, 4} {
		o := build(t, 40, dim, int64(dim))
		rng := rand.New(rand.NewSource(9))
		for q := 0; q < 100; q++ {
			key := randKey(rng, dim)
			id := o.OwnerOf(key)
			if id < 0 || id >= o.Size() {
				t.Fatalf("OwnerOf returned %d", id)
			}
			z := o.zOf(key)
			lo, hi := o.arcOf(id)
			if z < lo || z >= hi {
				t.Fatalf("owner arc [%d,%d) does not contain z=%d", lo, hi, z)
			}
		}
	}
}

func TestRoutingReachesOwner(t *testing.T) {
	o := build(t, 60, 2, 3)
	rng := rand.New(rand.NewSource(4))
	maxHops := 0
	for q := 0; q < 200; q++ {
		key := randKey(rng, 2)
		from := rng.Intn(o.Size())
		owner, hops := o.route(from, o.zOf(key))
		if owner != o.OwnerOf(key) {
			t.Fatalf("routed to %d, owner is %d", owner, o.OwnerOf(key))
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	// Chord fingers give O(log N): with 60 nodes expect well under 60 hops.
	if maxHops > 20 {
		t.Errorf("max route hops %d too large for finger routing", maxHops)
	}
}

func TestInsertThenSearchPoint(t *testing.T) {
	o := build(t, 30, 2, 5)
	key := []float64{0.42, 0.77}
	o.InsertSphere(3, overlay.Entry{Key: key, Payload: "x"})
	res, _ := o.SearchSphere(9, key, 0.01)
	if len(res) != 1 || res[0].Payload != "x" {
		t.Fatalf("search results %v", res)
	}
	// Distant search must miss.
	res, _ = o.SearchSphere(9, []float64{0.1, 0.1}, 0.05)
	if len(res) != 0 {
		t.Fatalf("distant search returned %v", res)
	}
}

// The same no-false-dismissal contract the CAN overlay satisfies.
func TestSearchNoFalseDismissals(t *testing.T) {
	o := build(t, 40, 3, 7)
	rng := rand.New(rand.NewSource(8))
	type ins struct {
		key    []float64
		radius float64
		id     int
	}
	var all []ins
	for i := 0; i < 50; i++ {
		e := ins{key: randKey(rng, 3), radius: rng.Float64() * 0.2, id: i}
		all = append(all, e)
		o.InsertSphere(rng.Intn(o.Size()), overlay.Entry{Key: e.key, Radius: e.radius, Payload: e.id})
	}
	for q := 0; q < 40; q++ {
		qkey := randKey(rng, 3)
		qrad := rng.Float64() * 0.3
		res, _ := o.SearchSphere(rng.Intn(o.Size()), qkey, qrad)
		got := map[int]bool{}
		for _, e := range res {
			got[e.Payload.(int)] = true
		}
		for _, e := range all {
			want := dist(e.key, qkey) <= e.radius+qrad
			if want && !got[e.id] {
				t.Fatalf("query %d: entry %d intersects but was not returned", q, e.id)
			}
			if !want && got[e.id] {
				t.Fatalf("query %d: entry %d does not intersect but was returned", q, e.id)
			}
		}
	}
}

func TestReplicaDeduplication(t *testing.T) {
	o := build(t, 20, 2, 11)
	o.InsertSphere(0, overlay.Entry{Key: []float64{0.5, 0.5}, Radius: 0.6, Payload: "big"})
	res, _ := o.SearchSphere(5, []float64{0.5, 0.5}, 0.6)
	if len(res) != 1 {
		t.Fatalf("expected 1 deduplicated result, got %d", len(res))
	}
}

func TestObserverCountsMatchHops(t *testing.T) {
	msgs := 0
	o, err := Build(Config{Nodes: 25, Dim: 2, Rng: rand.New(rand.NewSource(13)),
		Observer: func(from, to int) { msgs++ }})
	if err != nil {
		t.Fatal(err)
	}
	msgs = 0
	hops := o.InsertSphere(0, overlay.Entry{Key: []float64{0.3, 0.3}, Radius: 0.2})
	if msgs != hops {
		t.Errorf("observer saw %d messages, hops = %d", msgs, hops)
	}
	msgs = 0
	_, shops := o.SearchSphere(1, []float64{0.8, 0.8}, 0.1)
	if msgs != shops {
		t.Errorf("observer saw %d messages, search hops = %d", msgs, shops)
	}
}

func TestSingleNode(t *testing.T) {
	o := build(t, 1, 2, 17)
	hops := o.InsertSphere(0, overlay.Entry{Key: []float64{0.5, 0.5}, Radius: 0.3, Payload: 1})
	if hops != 0 {
		t.Errorf("single-node insert cost %d hops", hops)
	}
	res, shops := o.SearchSphere(0, []float64{0.5, 0.5}, 0.1)
	if len(res) != 1 || shops != 0 {
		t.Errorf("single-node search: %d results, %d hops", len(res), shops)
	}
}

func TestKeyValidation(t *testing.T) {
	o := build(t, 5, 2, 19)
	for _, fn := range []func(){
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{0.5}}) },
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{1.0, 0.5}}) },
		func() { o.InsertSphere(0, overlay.Entry{Key: []float64{0.1, 0.1}, Radius: -1}) },
		func() { o.SearchSphere(0, []float64{0.1, 0.1}, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Every z-block box must contain exactly the keys whose z-values fall in
// the block — spot-check the decode against the encode.
func TestBlockBoxConsistentWithZOf(t *testing.T) {
	o := build(t, 10, 2, 23)
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 200; trial++ {
		key := randKey(rng, 2)
		z := o.zOf(key)
		id := o.ownerOfZ(z)
		zlo, zhi := o.arcOf(id)
		inSome := false
		o.curve.ArcBlocks(zlo, zhi, func(z0 uint64, free uint) bool {
			lo, hi := o.curve.BlockBox(z0, free)
			if z >= z0 && z < z0+(uint64(1)<<free) {
				if zorder.BoxDist(key, lo, hi) != 0 {
					t.Fatalf("key %v (z=%d) not inside its own block box [%v,%v)", key, z, lo, hi)
				}
				inSome = true
				return true
			}
			return false
		})
		if !inSome {
			t.Fatalf("z=%d not covered by its owner's arc blocks", z)
		}
	}
}

func TestHighDimensionCoarseResolution(t *testing.T) {
	// dim 16 -> 3 bits per dim; still correct, just more replication.
	o := build(t, 10, 16, 29)
	rng := rand.New(rand.NewSource(30))
	key := randKey(rng, 16)
	o.InsertSphere(0, overlay.Entry{Key: key, Radius: 0.05, Payload: "hi"})
	res, _ := o.SearchSphere(3, key, 0.01)
	if len(res) != 1 {
		t.Fatalf("high-dim search returned %d results", len(res))
	}
}

func TestDistHelper(t *testing.T) {
	if d := dist([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("dist = %v", d)
	}
}

func BenchmarkRingInsertSphere(b *testing.B) {
	o, err := Build(Config{Nodes: 100, Dim: 2, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.InsertSphere(rng.Intn(100), overlay.Entry{Key: randKey(rng, 2), Radius: 0.05})
	}
}
