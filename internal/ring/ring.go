// Package ring implements a Chord-style one-dimensional ring overlay with a
// z-order (Morton) mapping of multi-dimensional keys, as a second backend
// for Hyper-M. The paper claims (§5) that the method "could be implemented
// on top of BATON, VBI-tree, CAN or any peer-to-peer overlay ... so long as
// they can support multi-dimensional indexing"; this package demonstrates
// the claim with an overlay whose topology is nothing like CAN's.
//
// Multi-dimensional keys in [0,1)^m are interleaved bitwise into a single
// z-value in [0,1); each node owns a contiguous arc of the z-space and
// maintains Chord fingers for O(log N) greedy routing. An arc corresponds to
// a set of axis-aligned boxes in the original key space (the aligned z-order
// blocks of the arc), which is how sphere insert/search decide which nodes a
// sphere touches.
package ring

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hyperm/internal/overlay"
	"hyperm/internal/zorder"
)

// Overlay is a simulated z-order ring. It implements overlay.Network.
type Overlay struct {
	dim      int
	curve    zorder.Curve
	starts   []uint64 // sorted arc starts in integer z-space; starts[0] == 0
	fingers  [][]int  // per node: finger table (node indices)
	entries  [][]rec  // per node: stored records (owned + replicas)
	nextSeq  int
	observer overlay.Observer
}

type rec struct {
	seq int
	e   overlay.Entry
}

var _ overlay.Network = (*Overlay)(nil)

// Config parameterizes construction.
type Config struct {
	// Nodes is the number of peers.
	Nodes int
	// Dim is the key-space dimensionality.
	Dim int
	// Rng draws the arc boundaries. Required.
	Rng *rand.Rand
	// Observer, when non-nil, is invoked once per overlay message.
	Observer overlay.Observer
}

// Build constructs the ring: random distinct arc starts (node 0 anchored at
// zero) and Chord finger tables.
func Build(cfg Config) (*Overlay, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("ring: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("ring: dimension must be >= 1, got %d", cfg.Dim)
	}
	if cfg.Rng == nil {
		return nil, fmt.Errorf("ring: rng must be non-nil")
	}
	curve, err := zorder.NewCurve(cfg.Dim)
	if err != nil {
		return nil, fmt.Errorf("ring: %w", err)
	}
	space := curve.Space()
	if uint64(cfg.Nodes) > space {
		return nil, fmt.Errorf("ring: %d nodes exceed the %d-cell z-space at dim %d", cfg.Nodes, space, cfg.Dim)
	}

	// Distinct random starts, anchored at 0 so the arcs tile [0, space).
	used := map[uint64]bool{0: true}
	starts := []uint64{0}
	for len(starts) < cfg.Nodes {
		v := cfg.Rng.Uint64() % space
		if !used[v] {
			used[v] = true
			starts = append(starts, v)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	o := &Overlay{
		dim:      cfg.Dim,
		curve:    curve,
		starts:   starts,
		entries:  make([][]rec, cfg.Nodes),
		observer: cfg.Observer,
	}
	o.buildFingers()
	return o, nil
}

// buildFingers gives every node its successor plus Chord fingers at
// clockwise offsets space/2^j.
func (o *Overlay) buildFingers() {
	n := len(o.starts)
	space := o.curve.Space()
	o.fingers = make([][]int, n)
	for i := 0; i < n; i++ {
		seen := map[int]bool{i: true}
		add := func(target uint64) {
			owner := o.ownerOfZ(target % space)
			if !seen[owner] {
				seen[owner] = true
				o.fingers[i] = append(o.fingers[i], owner)
			}
		}
		add(o.starts[(i+1)%n]) // successor
		for j := uint(1); j <= o.curve.TotalBits(); j++ {
			add(o.starts[i] + space>>j)
		}
	}
}

// ownerOfZ returns the node owning integer z-value z: the largest start <= z.
func (o *Overlay) ownerOfZ(z uint64) int {
	idx := sort.Search(len(o.starts), func(i int) bool { return o.starts[i] > z })
	return idx - 1 // starts[0] == 0 guarantees idx >= 1
}

// zOf interleaves a key into its integer z-value.
func (o *Overlay) zOf(key []float64) uint64 { return o.curve.Z(key) }

// arcOf returns node i's integer arc [start, end).
func (o *Overlay) arcOf(i int) (uint64, uint64) {
	start := o.starts[i]
	var end uint64
	if i+1 < len(o.starts) {
		end = o.starts[i+1]
	} else {
		end = o.curve.Space()
	}
	return start, end
}

// nodeTouchesSphere reports whether any z-cell of node i's arc maps to a box
// within radius of key (plain Euclidean, no wrap — the z-mapping is not
// toroidal).
func (o *Overlay) nodeTouchesSphere(i int, key []float64, radius float64) bool {
	zlo, zhi := o.arcOf(i)
	return o.curve.ArcTouchesSphere(zlo, zhi, key, radius)
}

// route forwards greedily clockwise via fingers from node `from` to the
// owner of z, returning the owner and hop count.
func (o *Overlay) route(from int, z uint64) (int, int) {
	space := o.curve.Space()
	cur := from
	hops := 0
	for {
		start, end := o.arcOf(cur)
		if z >= start && z < end {
			return cur, hops
		}
		// Pick the finger that gets clockwise-closest to z without passing
		// it; the successor guarantees progress.
		best, bestDist := -1, uint64(math.MaxUint64)
		for _, f := range o.fingers[cur] {
			d := (z - o.starts[f]) % space // clockwise distance from finger start to z
			if d < bestDist {
				best, bestDist = f, d
			}
		}
		if best == -1 || best == cur {
			panic("ring: routing stalled — finger tables corrupt")
		}
		o.message(cur, best)
		cur = best
		hops++
		if hops > 4*len(o.starts)+16 {
			panic("ring: routing did not converge")
		}
	}
}

func (o *Overlay) message(from, to int) {
	if o.observer != nil {
		o.observer(from, to)
	}
}

// ClearNode wipes node id's stored records (owned and replicas), modeling a
// device crash. The node's range remains routable. Implements
// overlay.StorageFailer.
func (o *Overlay) ClearNode(id int) int {
	lost := len(o.entries[id])
	o.entries[id] = nil
	return lost
}

// Dim returns the key-space dimensionality.
func (o *Overlay) Dim() int { return o.dim }

// Size returns the number of nodes.
func (o *Overlay) Size() int { return len(o.starts) }

// OwnerOf returns the node owning the point key (no messages charged).
func (o *Overlay) OwnerOf(key []float64) int {
	o.checkKey(key)
	return o.ownerOfZ(o.zOf(key))
}

func (o *Overlay) checkKey(key []float64) {
	if len(key) != o.dim {
		panic(fmt.Sprintf("ring: key dimension %d, overlay dimension %d", len(key), o.dim))
	}
	for _, v := range key {
		if v < 0 || v >= 1 || math.IsNaN(v) {
			panic(fmt.Sprintf("ring: key %v outside the unit cube", key))
		}
	}
}

// InsertSphere routes to the key's owner, stores the entry, and replicates
// it to every other node whose arc region the sphere touches (one message
// per replica).
func (o *Overlay) InsertSphere(from int, e overlay.Entry) int {
	o.checkKey(e.Key)
	if e.Radius < 0 {
		panic("ring: negative entry radius")
	}
	owner, hops := o.route(from, o.zOf(e.Key))
	r := rec{seq: o.nextSeq, e: e}
	o.nextSeq++
	o.entries[owner] = append(o.entries[owner], r)
	if e.Radius > 0 {
		for i := range o.starts {
			if i == owner {
				continue
			}
			if o.nodeTouchesSphere(i, e.Key, e.Radius) {
				o.message(owner, i)
				o.entries[i] = append(o.entries[i], r)
				hops++
			}
		}
	}
	return hops
}

// SearchSphere routes to the owner of key and visits every node whose arc
// region the query sphere touches, collecting intersecting entries
// (deduplicated across replicas).
func (o *Overlay) SearchSphere(from int, key []float64, radius float64) ([]overlay.Entry, int) {
	o.checkKey(key)
	if radius < 0 {
		panic("ring: negative query radius")
	}
	owner, hops := o.route(from, o.zOf(key))
	seen := map[int]bool{}
	var results []overlay.Entry
	collect := func(node int) {
		for _, r := range o.entries[node] {
			if seen[r.seq] {
				continue
			}
			if dist(r.e.Key, key) <= r.e.Radius+radius {
				seen[r.seq] = true
				results = append(results, r.e)
			}
		}
	}
	collect(owner)
	for i := range o.starts {
		if i == owner {
			continue
		}
		if o.nodeTouchesSphere(i, key, radius) {
			o.message(owner, i)
			hops++
			collect(i)
		}
	}
	return results, hops
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
