package viewcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hyperm/internal/route"
	"hyperm/internal/sim"
)

func view(id int, version uint64) View {
	return View{NodeView: route.NodeView{ID: id}, Version: version}
}

func TestHitStaleConfirm(t *testing.T) {
	var ctr sim.Counters
	c := New(2, Options{Capacity: 8, Counters: &ctr})

	if _, out, _ := c.Get(0, 3, 0); out != Miss {
		t.Fatalf("empty cache: outcome %v, want Miss", out)
	}
	c.Put(0, 3, view(3, 7), 0)
	v, out, _ := c.Get(0, 3, 0)
	if out != Hit || v.Version != 7 || v.ID != 3 {
		t.Fatalf("same-epoch probe: outcome %v view %+v", out, v)
	}
	// Epoch advanced: the entry must come back Stale, never Hit.
	if _, out, _ := c.Get(0, 3, 1); out != Stale {
		t.Fatalf("post-churn probe: outcome %v, want Stale", out)
	}
	// A version match refreshes the entry to the current epoch.
	if _, ok := c.Confirm(0, 3, 1); !ok {
		t.Fatal("Confirm lost the entry")
	}
	if _, out, _ := c.Get(0, 3, 1); out != Hit {
		t.Fatal("confirmed entry not Hit at the new epoch")
	}
	// Levels are independent.
	if _, out, _ := c.Get(1, 3, 0); out != Miss {
		t.Fatal("level 1 saw level 0's entry")
	}
	if ctr.Get("cache.stale") != 1 || ctr.Get("cache.hit") != 2 {
		t.Fatalf("counters: %v", ctr.Snapshot())
	}
}

func TestNegativeEntriesExpireWithEpoch(t *testing.T) {
	c := New(1, Options{})
	dead := errors.New("peer unreachable")
	c.PutNegative(0, 5, dead, 4)
	_, out, err := c.Get(0, 5, 4)
	if out != NegHit || !errors.Is(err, dead) {
		t.Fatalf("same-epoch negative probe: outcome %v err %v", out, err)
	}
	// Any membership event clears the verdict: the zone may have a new owner.
	if _, out, _ := c.Get(0, 5, 5); out != Miss {
		t.Fatalf("post-churn negative probe: outcome %v, want Miss", out)
	}
	if _, out, _ := c.Get(0, 5, 5); out != Miss {
		t.Fatal("expired negative entry was not dropped")
	}
}

func TestLRUEviction(t *testing.T) {
	var ctr sim.Counters
	c := New(1, Options{Capacity: 2, Counters: &ctr})
	c.Put(0, 1, view(1, 0), 0)
	c.Put(0, 2, view(2, 0), 0)
	c.Get(0, 1, 0) // touch 1: now 2 is the LRU victim
	c.Put(0, 3, view(3, 0), 0)
	if _, out, _ := c.Get(0, 2, 0); out != Miss {
		t.Fatal("LRU victim 2 still cached")
	}
	for _, id := range []int{1, 3} {
		if _, out, _ := c.Get(0, id, 0); out != Hit {
			t.Fatalf("entry %d evicted, want resident", id)
		}
	}
	if ctr.Get("cache.evict") != 1 {
		t.Fatalf("evictions: %v", ctr.Get("cache.evict"))
	}
}

func TestPinnedEntries(t *testing.T) {
	var ctr sim.Counters
	c := New(1, Options{Capacity: 1, ReplicaTTL: 3, Counters: &ctr})
	c.PutPinned(0, 9, view(9, 2), 10)
	// Pinned entries don't occupy LRU capacity and never get evicted by Puts.
	c.Put(0, 1, view(1, 0), 10)
	c.Put(0, 2, view(2, 0), 10)
	v, out, _ := c.Get(0, 9, 10)
	if out != Hit || v.ID != 9 {
		t.Fatalf("pinned probe: outcome %v view %+v", out, v)
	}
	if ctr.Get("cache.replica_hit") != 1 {
		t.Fatalf("replica_hit: %v", ctr.Get("cache.replica_hit"))
	}
	// Within the TTL a stale pinned entry revalidates like any other…
	if _, out, _ := c.Get(0, 9, 12); out != Stale {
		t.Fatal("pinned entry within TTL not Stale")
	}
	// …but beyond it, the entry is dropped outright.
	if _, out, _ := c.Get(0, 9, 13); out != Miss {
		t.Fatal("pinned entry survived its TTL")
	}
}

func TestHotnessSketch(t *testing.T) {
	c := New(1, Options{HotThreshold: 3, HotWindow: 1000})
	c.NoteFetchHit(0, 4)
	c.NoteFetchHit(0, 4)
	if got := c.HotPending(0); got != nil {
		t.Fatalf("below threshold, pending = %v", got)
	}
	c.NoteFetchHit(0, 4)
	c.NoteFetchHit(0, 7)
	c.NoteFetchHit(0, 7)
	c.NoteFetchHit(0, 7)
	if got := c.HotPending(0); len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Fatalf("pending = %v, want [4 7]", got)
	}
	// Drained: a second call reports nothing until new crossings.
	if got := c.HotPending(0); got != nil {
		t.Fatalf("drained pending = %v", got)
	}
	// An already-pinned holder is not re-queued by further hits.
	c.PutPinned(0, 4, view(4, 0), 0)
	for i := 0; i < 10; i++ {
		c.NoteFetchHit(0, 4)
	}
	if got := c.HotPending(0); got != nil {
		t.Fatalf("pinned holder re-queued: %v", got)
	}
}

func TestHotnessWindowDecay(t *testing.T) {
	c := New(1, Options{HotThreshold: 100, HotWindow: 10})
	// 10 hits fill the window; the decay halves the count, so the holder
	// needs sustained demand — not all-time accumulation — to cross a high
	// threshold.
	for i := 0; i < 99; i++ {
		c.NoteFetchHit(0, 1)
	}
	if got := c.HotPending(0); got != nil {
		t.Fatalf("decayed sketch crossed threshold: %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(2, Options{Capacity: 16, HotThreshold: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := (w + i) % 24
				l := i % 2
				switch i % 5 {
				case 0:
					c.Put(l, id, view(id, uint64(i)), uint64(i%3))
				case 1:
					c.Get(l, id, uint64(i%3))
				case 2:
					c.NoteFetchHit(l, id)
				case 3:
					c.Confirm(l, id, uint64(i%3))
				default:
					for _, h := range c.HotPending(l) {
						c.PutPinned(l, h, view(h, 0), uint64(i%3))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for l := 0; l < 2; l++ {
		if n := c.Len(l); n > 16+24 {
			t.Fatalf("level %d holds %d entries", l, n)
		}
	}
}

func TestCapacityDefaultsAndInvalidate(t *testing.T) {
	c := New(1, Options{})
	for i := 0; i < 1500; i++ {
		c.Put(0, i, view(i, 0), 0)
	}
	if n := c.Len(0); n != 1024 {
		t.Fatalf("default capacity held %d entries, want 1024", n)
	}
	c.Invalidate(0, 1499)
	if _, out, _ := c.Get(0, 1499, 0); out != Miss {
		t.Fatal("invalidated entry still cached")
	}
}

func TestOutcomeString(t *testing.T) {
	// Guard the ordering the node wiring switches on.
	for i, want := range []Outcome{Miss, Hit, Stale, NegHit} {
		if int(want) != i {
			t.Fatalf("outcome %d reordered", i)
		}
	}
	_ = fmt.Sprintf("%d", Hit)
}

// TestNegativeExpiryAfterRejoin covers the rejoin sequence the delegation
// path leans on: a peer crashes (negative verdict cached), its zone is
// taken over and the node later rejoins — each a membership event bumping
// the epoch — and the first post-rejoin probe must be a clean Miss followed
// by a normal install, not a lingering fail-fast.
func TestNegativeExpiryAfterRejoin(t *testing.T) {
	var ctr sim.Counters
	c := New(1, Options{Capacity: 8, Counters: &ctr})
	dead := errors.New("peer unreachable")

	c.PutNegative(0, 7, dead, 3) // crash observed at epoch 3
	if _, out, err := c.Get(0, 7, 3); out != NegHit || !errors.Is(err, dead) {
		t.Fatalf("same-epoch probe: outcome %v err %v", out, err)
	}
	// Takeover then rejoin: two membership events, epoch 3 -> 5. The stale
	// verdict must not survive either of them.
	if _, out, _ := c.Get(0, 7, 5); out != Miss {
		t.Fatal("negative verdict survived the rejoin epoch bumps")
	}
	// The expired negative entry is gone for good, not resurrected at the
	// old epoch.
	if _, out, _ := c.Get(0, 7, 3); out != Miss {
		t.Fatal("expired negative entry resurrected at its original epoch")
	}
	c.Put(0, 7, view(7, 12), 5) // the rejoined node's fresh view
	if v, out, _ := c.Get(0, 7, 5); out != Hit || v.Version != 12 {
		t.Fatalf("post-rejoin install: outcome %v view %+v", out, v)
	}
	if ctr.Get("cache.neg_hit") != 1 {
		t.Fatalf("neg_hit count %v, want 1", ctr.Get("cache.neg_hit"))
	}
}

// TestPinExemptionUnderFullCache runs LRU churn well beyond capacity with
// pinned replicas present: pinned entries must never be evicted, must not
// consume LRU capacity, and the unpinned population must evict in exact
// least-recently-used order.
func TestPinExemptionUnderFullCache(t *testing.T) {
	var ctr sim.Counters
	c := New(1, Options{Capacity: 3, Counters: &ctr})
	c.PutPinned(0, 100, view(100, 1), 0)
	c.PutPinned(0, 101, view(101, 1), 0)

	// Churn 20 unpinned entries through a 3-slot LRU.
	for id := 0; id < 20; id++ {
		c.Put(0, id, view(id, 1), 0)
	}
	if got := c.Len(0); got != 5 { // 3 unpinned + 2 pinned
		t.Fatalf("Len %d, want 5", got)
	}
	// The pinned replicas survived the churn.
	for _, id := range []int{100, 101} {
		v, out, _ := c.Get(0, id, 0)
		if out != Hit || !v.Pinned {
			t.Fatalf("pinned %d after churn: outcome %v pinned %v", id, out, v.Pinned)
		}
	}
	// Exactly the 3 most recent unpinned entries remain; older ones were
	// evicted least-recent-first.
	for id := 0; id < 20; id++ {
		want := Miss
		if id >= 17 {
			want = Hit
		}
		if _, out, _ := c.Get(0, id, 0); out != want {
			t.Fatalf("unpinned %d: outcome %v, want %v", id, out, want)
		}
	}
	if got := ctr.Get("cache.evict"); got != 17 {
		t.Fatalf("evictions %v, want 17", got)
	}
	// Touching an old entry via Get moves it to the front: it must outlive
	// a subsequently inserted entry's eviction round.
	c.Get(0, 17, 0)              // LRU order now 17, 19, 18
	c.Put(0, 50, view(50, 1), 0) // evicts 18
	if _, out, _ := c.Get(0, 18, 0); out != Miss {
		t.Fatal("LRU eviction ignored recency: 18 should be the victim")
	}
	if _, out, _ := c.Get(0, 17, 0); out != Hit {
		t.Fatal("recently touched entry evicted out of order")
	}
}

// TestPutRefresh covers the out-of-band install path used by delegation
// piggybacks and warm pushes: pin preservation, version-regression drops,
// and same-epoch negative verdicts standing their ground.
func TestPutRefresh(t *testing.T) {
	var ctr sim.Counters
	c := New(1, Options{Capacity: 8, Counters: &ctr})

	// Refresh over a pinned replica keeps it pinned (and updates the view).
	c.PutPinned(0, 1, view(1, 5), 0)
	c.PutRefresh(0, 1, view(1, 6), 1)
	v, out, _ := c.Get(0, 1, 1)
	if out != Hit || !v.Pinned || v.Version != 6 {
		t.Fatalf("refreshed replica: outcome %v pinned %v version %d", out, v.Pinned, v.Version)
	}

	// A version regression (reordered in-flight older copy) is dropped.
	c.PutRefresh(0, 1, view(1, 4), 1)
	if v, _, _ := c.Get(0, 1, 1); v.Version != 6 {
		t.Fatalf("version regressed to %d", v.Version)
	}

	// A same-epoch negative verdict is not overwritten...
	dead := errors.New("peer unreachable")
	c.PutNegative(0, 2, dead, 1)
	c.PutRefresh(0, 2, view(2, 1), 1)
	if _, out, _ := c.Get(0, 2, 1); out != NegHit {
		t.Fatalf("same-epoch negative overwritten: outcome %v", out)
	}
	// ...but a stale one is: after an epoch bump the verdict is void.
	c.PutRefresh(0, 2, view(2, 2), 2)
	if v, out, _ := c.Get(0, 2, 2); out != Hit || v.Version != 2 {
		t.Fatalf("refresh over stale negative: outcome %v view %+v", out, v)
	}

	// Plain install on a cold id works and is unpinned.
	c.PutRefresh(0, 3, view(3, 9), 2)
	if v, out, _ := c.Get(0, 3, 2); out != Hit || v.Pinned {
		t.Fatalf("cold refresh: outcome %v pinned %v", out, v.Pinned)
	}
	if ctr.Get("cache.refresh") != 3 {
		t.Fatalf("refresh count %v, want 3", ctr.Get("cache.refresh"))
	}
}

// TestClear returns the cache to the cold-start state: views, negatives,
// lookup memos, and hotness all gone, across every level.
func TestClear(t *testing.T) {
	c := New(2, Options{Capacity: 8, HotThreshold: 1})
	c.Put(0, 1, view(1, 1), 0)
	c.PutPinned(1, 2, view(2, 1), 0)
	c.PutNegative(0, 3, errors.New("dead"), 0)
	c.PutSearch(0, []byte("q"), nil, 4, 0)
	c.NoteFetchHit(0, 9)

	c.Clear()
	for l := 0; l < 2; l++ {
		if c.Len(l) != 0 {
			t.Fatalf("level %d Len %d after Clear", l, c.Len(l))
		}
	}
	if _, out, _ := c.Get(0, 3, 0); out != Miss {
		t.Fatal("negative verdict survived Clear")
	}
	if _, _, ok := c.GetSearch(0, []byte("q"), 0); ok {
		t.Fatal("lookup memo survived Clear")
	}
	if got := c.HotPending(0); got != nil {
		t.Fatalf("hot pending survived Clear: %v", got)
	}
}
