// Package viewcache is the per-node cache of overlay views that turns repeat
// lookups from O(hops·zones) RPCs into O(1): a per-level LRU of full
// route.NodeViews keyed by node id, with churn-epoch invalidation, negative
// caching for dead peers, and demand-driven pinning of hot nodes' views
// (replicas of the cluster refs everyone keeps asking for).
//
// Soundness rests on one repo invariant: the overlay state a can_search view
// carries — zones, neighbor table, owned/replica records — changes *only*
// through membership events (join split, leave handoff, crash takeover, zone
// broadcast, recovery merge). Publishing new items never touches it (the
// paper's stale-summary semantics, core.System.PostInsert). So:
//
//   - every view is stamped with the responder's per-level state Version
//     (bumped on each of its own mutations) and the coordinator's per-level
//     churn Epoch (bumped on every membership event the coordinator observes);
//   - a cached view whose epoch is current is trusted outright — no
//     membership event was observed since it was fetched, so the responder's
//     state cannot have changed in a way this node could ever learn about;
//   - a view from an older epoch is *revalidated*, never trusted: a cheap
//     view_version RPC compares the responder's current Version, refreshing
//     the entry on a match and refetching on a mismatch.
//
// Either way the coordinator feeds the routing machines exactly the view a
// direct can_search would return, so cached answers are byte-identical to the
// uncached serial reference — stale entries can cost an extra RPC, never a
// wrong result (the differential test in internal/node proves it across
// seeded churned topologies).
//
// Negative entries memoize unreachable peers within a single epoch: a flood
// that lost a wave to a crashed node should not re-dial it on the very next
// query, but any membership event clears the verdict (the peer may have been
// replaced).
//
// Hotness: the cache keeps a windowed sketch of per-record fetch hits
// attributed to the node holding the record. When a holder's records cross
// the threshold, the node is marked hot; the owner (internal/node) pulls its
// full view via replicate_refs and installs it pinned — exempt from LRU
// eviction, so the flood short-circuits at the replica for as long as the
// demand lasts. Pinned entries expire after ReplicaTTL epochs without
// revalidation, so churn cannot resurrect stale records from a long-dead
// topology.
package viewcache

import (
	"container/list"
	"sort"
	"sync"

	"hyperm/internal/overlay"
	"hyperm/internal/route"
	"hyperm/internal/sim"
)

// Outcome classifies one cache probe.
type Outcome int

const (
	// Miss: nothing cached (or the entry expired) — fetch the view.
	Miss Outcome = iota
	// Hit: a view cached at the current epoch — use it, no RPC.
	Hit
	// Stale: a view cached at an older epoch — revalidate its version
	// before use, never trust it.
	Stale
	// NegHit: a failure cached at the current epoch — fail fast.
	NegHit
)

// View is a cached node view plus the responder-side state version it was
// fetched at (the revalidation token).
type View struct {
	route.NodeView
	Version uint64
	// Pinned is set on views returned from Get/Confirm when the entry is a
	// pinned replica — the holder is already replicated, so callers can skip
	// feeding the hotness sketch for it. Ignored on Put.
	Pinned bool
}

// Options tunes one cache. The zero value gets defaults from New.
type Options struct {
	// Capacity bounds the number of unpinned entries per level (LRU
	// eviction beyond it). Default 1024.
	Capacity int
	// HotThreshold is the number of windowed fetch hits that mark a holder
	// hot (<= 0 disables hotness tracking entirely).
	HotThreshold int
	// HotWindow is the total hit count at which the sketch decays (all
	// per-holder counts halve), so hotness tracks current demand rather
	// than all-time popularity. Default 64 * HotThreshold.
	HotWindow int
	// ReplicaTTL is how many epochs a pinned entry may lag behind without a
	// successful revalidation before it is dropped outright. Default 8.
	ReplicaTTL uint64
	// PathCapacity bounds the per-level lookup memo (GetSearch/PutSearch),
	// LRU-evicted beyond it. Default 4096.
	PathCapacity int
	// Counters receives the cache telemetry ("cache.hit", "cache.miss",
	// "cache.stale", "cache.neg_hit", "cache.evict", "cache.replica_hit",
	// "cache.pin", "cache.path_hit", "cache.path_miss", "cache.path_evict").
	// Optional.
	Counters *sim.Counters
}

type entry struct {
	id      int
	view    View
	err     error // non-nil: negative entry (view is zero)
	epoch   uint64
	pinned  bool
	lruElem *list.Element // nil while pinned
}

// memoEntry is one memoized lookup: the full level-search result for an
// exact (key, radius), valid only at the epoch it was recorded.
type memoEntry struct {
	key     string
	entries []overlay.Entry
	hops    int
	epoch   uint64
	lruElem *list.Element
}

// levelCache is one level's entries plus its hotness sketch and lookup memo.
type levelCache struct {
	entries map[int]*entry
	lru     *list.List // front = most recent; unpinned entries only
	// hits[holder] counts windowed fetch hits attributed to holder's
	// records; total is the window fill.
	hits    map[int]int
	total   int
	pending map[int]bool // holders newly crossed the threshold, not yet pulled
	// memo caches whole level-search results by encoded (key, radius); see
	// GetSearch for the epoch argument that makes this sound.
	memo    map[string]*memoEntry
	memoLRU *list.List
}

// Cache is a per-node, per-level view cache. Safe for concurrent use.
type Cache struct {
	opts Options

	mu     sync.Mutex
	levels []levelCache
}

// New builds a cache with one slot set per CAN level.
func New(levels int, opts Options) *Cache {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	if opts.ReplicaTTL == 0 {
		opts.ReplicaTTL = 8
	}
	if opts.HotWindow <= 0 {
		opts.HotWindow = 64 * opts.HotThreshold
	}
	if opts.PathCapacity <= 0 {
		opts.PathCapacity = 4096
	}
	c := &Cache{opts: opts, levels: make([]levelCache, levels)}
	for l := range c.levels {
		c.levels[l] = levelCache{
			entries: map[int]*entry{},
			lru:     list.New(),
			hits:    map[int]int{},
			pending: map[int]bool{},
			memo:    map[string]*memoEntry{},
			memoLRU: list.New(),
		}
	}
	return c
}

func (c *Cache) count(name string) {
	if c.opts.Counters != nil {
		c.opts.Counters.Add(name, 1)
	}
}

// Get probes the cache for node id's view at the coordinator's current churn
// epoch. The returned error is only meaningful for NegHit (the memoized
// failure); the View only for Hit and Stale.
func (c *Cache) Get(level, id int, epoch uint64) (View, Outcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := &c.levels[level]
	e := lc.entries[id]
	if e == nil {
		c.count("cache.miss")
		return View{}, Miss, nil
	}
	if e.err != nil {
		// Negative entries are valid within their epoch only: any observed
		// membership event may have replaced the dead peer's zone.
		if e.epoch == epoch {
			c.count("cache.neg_hit")
			return View{}, NegHit, e.err
		}
		lc.remove(e)
		c.count("cache.miss")
		return View{}, Miss, nil
	}
	if e.epoch == epoch {
		v := e.view
		if e.pinned {
			v.Pinned = true
			c.count("cache.replica_hit")
		} else {
			lc.lru.MoveToFront(e.lruElem)
			c.count("cache.hit")
		}
		return v, Hit, nil
	}
	if e.pinned && epoch-e.epoch >= c.opts.ReplicaTTL {
		// A replica that outlived its TTL without revalidation is dropped,
		// not revalidated: the demand that pinned it is long gone.
		lc.remove(e)
		c.count("cache.miss")
		return View{}, Miss, nil
	}
	c.count("cache.stale")
	return e.view, Stale, nil
}

// Confirm refreshes an entry after a successful version match (view_version
// returned the cached Version): its epoch advances to the current one and the
// view is returned for use. ok is false when the entry vanished concurrently
// (evicted by another lookup) — treat as a miss.
func (c *Cache) Confirm(level, id int, epoch uint64) (View, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := &c.levels[level]
	e := lc.entries[id]
	if e == nil || e.err != nil {
		return View{}, false
	}
	e.epoch = epoch
	v := e.view
	if e.pinned {
		v.Pinned = true
	} else {
		lc.lru.MoveToFront(e.lruElem)
	}
	return v, true
}

// Put installs a freshly fetched view at the given epoch, evicting the
// least-recently-used unpinned entry beyond capacity.
func (c *Cache) Put(level, id int, v View, epoch uint64) {
	c.put(level, id, v, nil, epoch, false)
}

// PutNegative memoizes a fetch failure (an unreachable peer) at the given
// epoch.
func (c *Cache) PutNegative(level, id int, err error, epoch uint64) {
	c.put(level, id, View{}, err, epoch, false)
}

// PutPinned installs a replicated view exempt from LRU eviction (hot-node
// replica). It expires only by ReplicaTTL, version mismatch, or Invalidate.
func (c *Cache) PutPinned(level, id int, v View, epoch uint64) {
	c.count("cache.pin")
	c.put(level, id, v, nil, epoch, true)
}

// PutRefresh installs a view obtained out-of-band — a delegation piggyback
// or a proactive warm push — at the given epoch. Unlike Put it preserves the
// entry's pinned status (a warm copy of a hot replica refreshes the replica
// rather than demoting it), never replaces a same-epoch negative verdict
// (fail-fast stays consistent within an epoch), and drops version
// regressions: responder versions are monotonic, so a reordered in-flight
// older copy must not overwrite a newer view already installed.
func (c *Cache) PutRefresh(level, id int, v View, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := &c.levels[level]
	pinned := false
	if e := lc.entries[id]; e != nil {
		if e.err != nil {
			if e.epoch == epoch {
				return
			}
		} else {
			if e.view.Version > v.Version {
				return
			}
			pinned = e.pinned
		}
	}
	c.count("cache.refresh")
	c.putLocked(lc, id, v, nil, epoch, pinned)
}

// Clear drops every cached view, negative verdict, memoized lookup, and
// hotness count across all levels — back to the cold-start state. The bench
// harness's cold phase uses it to measure first-touch cost on an otherwise
// warm cluster.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for l := range c.levels {
		c.levels[l] = levelCache{
			entries: map[int]*entry{},
			lru:     list.New(),
			hits:    map[int]int{},
			pending: map[int]bool{},
			memo:    map[string]*memoEntry{},
			memoLRU: list.New(),
		}
	}
}

func (c *Cache) put(level, id int, v View, err error, epoch uint64, pinned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(&c.levels[level], id, v, err, epoch, pinned)
}

func (c *Cache) putLocked(lc *levelCache, id int, v View, err error, epoch uint64, pinned bool) {
	if e := lc.entries[id]; e != nil {
		lc.remove(e)
	}
	e := &entry{id: id, view: v, err: err, epoch: epoch, pinned: pinned}
	if !pinned {
		e.lruElem = lc.lru.PushFront(e)
	}
	lc.entries[id] = e
	for lc.lru.Len() > c.opts.Capacity {
		victim := lc.lru.Back().Value.(*entry)
		lc.remove(victim)
		c.count("cache.evict")
	}
}

// Invalidate drops node id's entry (version mismatch, or an RPC observed the
// peer in a state that contradicts the cache).
func (c *Cache) Invalidate(level, id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := &c.levels[level]
	if e := lc.entries[id]; e != nil {
		lc.remove(e)
	}
}

// remove unlinks an entry from the level (both index and LRU list).
func (lc *levelCache) remove(e *entry) {
	if e.lruElem != nil {
		lc.lru.Remove(e.lruElem)
		e.lruElem = nil
	}
	delete(lc.entries, e.id)
}

// Len returns the number of entries cached at a level (pinned included).
func (c *Cache) Len(level int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.levels[level].entries)
}

// NoteFetchHit records that a lookup used a record held by holder at this
// level — the demand signal of the hotness sketch. When holder's windowed
// count crosses HotThreshold it is queued for replication (HotPending).
func (c *Cache) NoteFetchHit(level, holder int) { c.NoteFetchHits(level, holder, 1) }

// NoteFetchHits is NoteFetchHit batched: one lock round for all of a view's
// record hits from a single lookup. Already-pinned holders need no demand
// tracking (they cannot be re-queued while pinned), so callers skip the call
// for views returned with Pinned set.
func (c *Cache) NoteFetchHits(level, holder, n int) {
	if c.opts.HotThreshold <= 0 || n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := &c.levels[level]
	before := lc.hits[holder]
	lc.hits[holder] = before + n
	lc.total += n
	if before < c.opts.HotThreshold && before+n >= c.opts.HotThreshold {
		if e := lc.entries[holder]; e == nil || !e.pinned {
			lc.pending[holder] = true
		}
	}
	if lc.total >= c.opts.HotWindow {
		// Window decay: halve every count so hotness follows current demand.
		lc.total = 0
		for id, n := range lc.hits {
			if n /= 2; n == 0 {
				delete(lc.hits, id)
			} else {
				lc.hits[id] = n
				lc.total += n
			}
		}
	}
}

// GetSearch probes the lookup memo: the entries and hop count a full level
// search produced for this exact encoded (key, radius), recorded at the
// current epoch. Sound for the same reason same-epoch view hits are: a level
// search is a deterministic function of the query sphere and the per-node
// views, views mutate only through membership events, and every observable
// membership event bumps the epoch — so within one epoch a repeat search
// would walk the same path, collect the same records, and charge the same
// hops. A memo recorded at an older epoch is dropped, never trusted (unlike
// views there is no cheap single-peer revalidation for a whole path).
//
// Callers must treat the returned entries as read-only: the slice is shared
// between every repeat of the query within the epoch.
func (c *Cache) GetSearch(level int, key []byte, epoch uint64) ([]overlay.Entry, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := &c.levels[level]
	m := lc.memo[string(key)] // no-alloc map lookup
	if m == nil {
		c.count("cache.path_miss")
		return nil, 0, false
	}
	if m.epoch != epoch {
		lc.removeMemo(m)
		c.count("cache.path_miss")
		return nil, 0, false
	}
	lc.memoLRU.MoveToFront(m.lruElem)
	c.count("cache.path_hit")
	return m.entries, m.hops, true
}

// PutSearch memoizes one completed level search at the epoch it ran under.
// The caller is responsible for only recording searches whose epoch did not
// advance mid-run (compare the epoch before and after driving the machine).
func (c *Cache) PutSearch(level int, key []byte, entries []overlay.Entry, hops int, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := &c.levels[level]
	if m := lc.memo[string(key)]; m != nil {
		lc.removeMemo(m)
	}
	m := &memoEntry{key: string(key), entries: entries, hops: hops, epoch: epoch}
	m.lruElem = lc.memoLRU.PushFront(m)
	lc.memo[m.key] = m
	for lc.memoLRU.Len() > c.opts.PathCapacity {
		victim := lc.memoLRU.Back().Value.(*memoEntry)
		lc.removeMemo(victim)
		c.count("cache.path_evict")
	}
}

func (lc *levelCache) removeMemo(m *memoEntry) {
	lc.memoLRU.Remove(m.lruElem)
	delete(lc.memo, m.key)
}

// HotPending drains the set of holders that crossed the hotness threshold
// since the last call, in ascending id order. The caller is expected to pull
// each holder's full view (replicate_refs) and PutPinned it.
func (c *Cache) HotPending(level int) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	lc := &c.levels[level]
	if len(lc.pending) == 0 {
		return nil
	}
	out := make([]int, 0, len(lc.pending))
	for id := range lc.pending {
		out = append(out, id)
	}
	lc.pending = map[int]bool{}
	sort.Ints(out)
	return out
}
