// Package vec provides the small dense float64 vector kernel used throughout
// Hyper-M: distances, norms, and elementwise helpers.
//
// All functions treat their arguments as fixed-length vectors; mismatched
// lengths are programming errors and panic, matching the behaviour of the
// standard library's copy-style primitives rather than returning errors on
// every arithmetic call.
package vec

import (
	"fmt"
	"math"
)

// Dist2 returns the squared Euclidean (L2) distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean (L2) distance between a and b.
func Dist(a, b []float64) float64 { return math.Sqrt(Dist2(a, b)) }

// Dist2Capped returns the squared L2 distance between a and b with a
// partial-distance early exit: once the running sum reaches bound, the
// (partial) sum is returned immediately. Because squared terms are
// non-negative the partial sum lower-bounds the full distance, so any
// comparison of the form "distance < bound" is decided identically; and the
// terms are accumulated in exactly Dist2's order, so when the result is below
// bound it is bit-identical to Dist2(a, b). The check runs once per 8-element
// block to keep the inner loop tight.
func Dist2Capped(a, b []float64, bound float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	i := 0
	for ; i+8 <= len(a); i += 8 {
		x, y := a[i:i+8], b[i:i+8]
		d0 := x[0] - y[0]
		s += d0 * d0
		d1 := x[1] - y[1]
		s += d1 * d1
		d2 := x[2] - y[2]
		s += d2 * d2
		d3 := x[3] - y[3]
		s += d3 * d3
		d4 := x[4] - y[4]
		s += d4 * d4
		d5 := x[5] - y[5]
		s += d5 * d5
		d6 := x[6] - y[6]
		s += d6 * d6
		d7 := x[7] - y[7]
		s += d7 * d7
		if s >= bound {
			return s
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Norm2 returns the squared L2 norm of a.
func Norm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return s
}

// Norm returns the L2 norm of a.
func Norm(a []float64) float64 { return math.Sqrt(Norm2(a)) }

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Clone returns a fresh copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Add accumulates src into dst elementwise.
func Add(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, av := range a {
		out[i] = av - b[i]
	}
	return out
}

// Scale multiplies every element of a by s in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Zero sets every element of a to zero.
func Zero(a []float64) {
	for i := range a {
		a[i] = 0
	}
}

// Mean returns the arithmetic mean of the rows of xs (the centroid).
// It panics if xs is empty or rows have differing lengths.
func Mean(xs [][]float64) []float64 {
	if len(xs) == 0 {
		panic("vec: Mean of empty set")
	}
	out := make([]float64, len(xs[0]))
	for _, x := range xs {
		Add(out, x)
	}
	Scale(out, 1/float64(len(xs)))
	return out
}

// MinMax returns the per-dimension minimum and maximum over the rows of xs.
// It panics if xs is empty.
func MinMax(xs [][]float64) (lo, hi []float64) {
	if len(xs) == 0 {
		panic("vec: MinMax of empty set")
	}
	lo = Clone(xs[0])
	hi = Clone(xs[0])
	for _, x := range xs[1:] {
		for i, v := range x {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return lo, hi
}

// ApproxEqual reports whether a and b are elementwise within tol.
func ApproxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, av := range a {
		if math.Abs(av-b[i]) > tol {
			return false
		}
	}
	return true
}
