package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist2(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 2}
	if got := Dist2(a, b); got != 9 {
		t.Errorf("Dist2 = %v, want 9", got)
	}
	if got := Dist(a, b); got != 3 {
		t.Errorf("Dist = %v, want 3", got)
	}
}

func TestDistSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a := randVec(rng, 16)
		b := randVec(rng, 16)
		if math.Abs(Dist(a, b)-Dist(b, a)) > 1e-12 {
			t.Fatalf("Dist not symmetric: %v vs %v", Dist(a, b), Dist(b, a))
		}
	}
}

func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b, c := randVec(rng, 8), randVec(rng, 8), randVec(rng, 8)
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated")
		}
	}
}

func TestDist2MismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dist2([]float64{1}, []float64{1, 2})
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Norm2([]float64{3, 4}); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := []float64{1, 2, 3}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2}
	Add(a, []float64{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Errorf("Add result %v", a)
	}
	s := Sub([]float64{5, 5}, []float64{2, 3})
	if s[0] != 3 || s[1] != 2 {
		t.Errorf("Sub result %v", s)
	}
	Scale(a, 0.5)
	if a[0] != 2 || a[1] != 3 {
		t.Errorf("Scale result %v", a)
	}
	Zero(a)
	if a[0] != 0 || a[1] != 0 {
		t.Errorf("Zero result %v", a)
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float64{{0, 0}, {2, 4}})
	if m[0] != 1 || m[1] != 2 {
		t.Errorf("Mean = %v", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty Mean")
		}
	}()
	Mean(nil)
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([][]float64{{1, 5}, {3, 2}, {-1, 4}})
	if lo[0] != -1 || lo[1] != 2 {
		t.Errorf("lo = %v", lo)
	}
	if hi[0] != 3 || hi[1] != 5 {
		t.Errorf("hi = %v", hi)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual([]float64{1, 2}, []float64{1 + 1e-12, 2}, 1e-9) {
		t.Error("ApproxEqual should accept tiny diff")
	}
	if ApproxEqual([]float64{1}, []float64{1, 2}, 1) {
		t.Error("ApproxEqual should reject length mismatch")
	}
	if ApproxEqual([]float64{1}, []float64{2}, 0.5) {
		t.Error("ApproxEqual should reject large diff")
	}
}

// Property: Dist2 equals Norm2 of the difference.
func TestPropDist2IsNorm2OfDiff(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVec(rng, 12), randVec(rng, 12)
		return math.Abs(Dist2(a, b)-Norm2(Sub(a, b))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= |a||b|.
func TestPropCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVec(rng, 10), randVec(rng, 10)
		return math.Abs(Dot(a, b)) <= Norm(a)*Norm(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// Dist2Capped must return the exact Dist2 value whenever the full distance is
// below the bound, and a value >= the bound (a lower bound on the distance)
// whenever it exits early — across lengths that exercise both the unrolled
// blocks and the scalar tail.
func TestPropDist2Capped(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		full := Dist2(a, b)
		for _, bound := range []float64{0, full * 0.25, full, full * 4, math.Inf(1)} {
			got := Dist2Capped(a, b, bound)
			if full < bound && got != full {
				return false // below the bound: must be bit-identical
			}
			if got > full {
				return false // partial sums never exceed the full distance
			}
			if full >= bound && got < bound && got != full {
				return false // early exit must only happen at >= bound
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDist2CappedMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dist2Capped([]float64{1, 2}, []float64{1}, 10)
}
