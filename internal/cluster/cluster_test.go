package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hyperm/internal/vec"
)

// twoBlobs returns points drawn around two well-separated centers.
func twoBlobs(rng *rand.Rand, nPer int) [][]float64 {
	var data [][]float64
	centers := [][]float64{{0, 0}, {10, 10}}
	for _, c := range centers {
		for i := 0; i < nPer; i++ {
			data = append(data, []float64{
				c[0] + rng.NormFloat64()*0.5,
				c[1] + rng.NormFloat64()*0.5,
			})
		}
	}
	return data
}

func TestKMeansTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := twoBlobs(rng, 50)
	res := KMeans(data, Config{K: 2, Rng: rng})
	if len(res.Clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(res.Clusters))
	}
	// Each cluster should hold exactly one blob.
	for _, c := range res.Clusters {
		if c.Count != 50 {
			t.Errorf("cluster count %d, want 50", c.Count)
		}
		nearOrigin := vec.Norm(c.Centroid) < 3
		nearTen := vec.Dist(c.Centroid, []float64{10, 10}) < 3
		if !nearOrigin && !nearTen {
			t.Errorf("centroid %v not near either blob center", c.Centroid)
		}
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := twoBlobs(rng, 20)
	res := KMeans(data, Config{K: 1, Rng: rng})
	if len(res.Clusters) != 1 {
		t.Fatalf("got %d clusters, want 1", len(res.Clusters))
	}
	if res.Clusters[0].Count != 40 {
		t.Errorf("count = %d, want 40", res.Clusters[0].Count)
	}
	// Centroid of the union should sit midway.
	if vec.Dist(res.Clusters[0].Centroid, []float64{5, 5}) > 1.5 {
		t.Errorf("centroid %v not near (5,5)", res.Clusters[0].Centroid)
	}
}

func TestKMeansKLargerThanData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	res := KMeans(data, Config{K: 10, Rng: rng})
	if len(res.Clusters) > 3 {
		t.Fatalf("got %d clusters for 3 points", len(res.Clusters))
	}
	total := 0
	for _, c := range res.Clusters {
		total += c.Count
	}
	if total != 3 {
		t.Errorf("counts sum to %d, want 3", total)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res := KMeans(data, Config{K: 2, Rng: rng})
	total := 0
	for _, c := range res.Clusters {
		total += c.Count
		if c.Radius != 0 {
			t.Errorf("identical points should give zero radius, got %v", c.Radius)
		}
	}
	if total != 4 {
		t.Errorf("counts sum to %d, want 4", total)
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	data := twoBlobs(rand.New(rand.NewSource(5)), 30)
	r1 := KMeans(data, Config{K: 3, Rng: rand.New(rand.NewSource(42))})
	r2 := KMeans(data, Config{K: 3, Rng: rand.New(rand.NewSource(42))})
	if len(r1.Clusters) != len(r2.Clusters) {
		t.Fatal("same seed produced different cluster counts")
	}
	for i := range r1.Clusters {
		if !vec.ApproxEqual(r1.Clusters[i].Centroid, r2.Clusters[i].Centroid, 0) {
			t.Fatal("same seed produced different centroids")
		}
	}
}

func TestKMeansPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty data", func() { KMeans(nil, Config{K: 1, Rng: rand.New(rand.NewSource(1))}) }},
		{"k<1", func() { KMeans([][]float64{{1}}, Config{K: 0, Rng: rand.New(rand.NewSource(1))}) }},
		{"nil rng", func() { KMeans([][]float64{{1}}, Config{K: 1}) }},
		{"ragged rows", func() {
			KMeans([][]float64{{1, 2}, {1}}, Config{K: 1, Rng: rand.New(rand.NewSource(1))})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

// Property: every point lies inside its assigned cluster sphere, and counts
// sum to the number of points. These are the invariants Hyper-M's score and
// no-false-dismissal guarantees rest on.
func TestPropSphereInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		d := 1 + rng.Intn(8)
		data := make([][]float64, n)
		for i := range data {
			data[i] = make([]float64, d)
			for j := range data[i] {
				data[i][j] = rng.NormFloat64() * 10
			}
		}
		k := 1 + rng.Intn(6)
		res := KMeans(data, Config{K: k, Rng: rng})
		total := 0
		for _, c := range res.Clusters {
			total += c.Count
		}
		if total != n {
			return false
		}
		for i, x := range data {
			c := res.Clusters[res.Assign[i]]
			if vec.Dist(x, c.Centroid) > c.Radius+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: increasing K never increases cohesion on the same data
// (more clusters can only tighten or keep the average point-to-centroid
// distance, up to local-minimum noise — we allow a small slack).
func TestMoreClustersTighterCohesion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := twoBlobs(rng, 100)
	q2 := Evaluate(data, KMeans(data, Config{K: 2, Rng: rand.New(rand.NewSource(1))}))
	q8 := Evaluate(data, KMeans(data, Config{K: 8, Rng: rand.New(rand.NewSource(1))}))
	if q8.Cohesion > q2.Cohesion*1.05 {
		t.Errorf("cohesion with K=8 (%v) should not exceed K=2 (%v)", q8.Cohesion, q2.Cohesion)
	}
}

func TestContains(t *testing.T) {
	c := Cluster{Centroid: []float64{0, 0}, Radius: 1}
	if !c.Contains([]float64{0.5, 0.5}) {
		t.Error("point inside sphere reported outside")
	}
	if c.Contains([]float64{2, 0}) {
		t.Error("point outside sphere reported inside")
	}
	if !c.Contains([]float64{1, 0}) {
		t.Error("boundary point should be inside (inclusive)")
	}
}

func TestEvaluateQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := twoBlobs(rng, 50)
	res := KMeans(data, Config{K: 2, Rng: rng})
	q := Evaluate(data, res)
	if q.Cohesion <= 0 {
		t.Errorf("cohesion = %v, want > 0", q.Cohesion)
	}
	// Two blobs 10*sqrt(2) apart with sigma 0.5: separation ~ 14, cohesion < 2.
	if q.Separation < 10 {
		t.Errorf("separation = %v, want > 10", q.Separation)
	}
	if q.Ratio() > 0.2 {
		t.Errorf("quality ratio = %v, want small for well-separated blobs", q.Ratio())
	}
}

func TestQualityRatioInfForSingleCluster(t *testing.T) {
	q := Quality{Cohesion: 1, Separation: 0}
	if !math.IsInf(q.Ratio(), 1) {
		t.Error("ratio with zero separation should be +Inf")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	q := Evaluate(nil, Result{})
	if q.Cohesion != 0 || q.Separation != 0 {
		t.Error("empty evaluation should be zero")
	}
}

func TestClusterString(t *testing.T) {
	s := Cluster{Centroid: []float64{1, 2}, Radius: 0.5, Count: 3}.String()
	if s == "" {
		t.Error("String should not be empty")
	}
}

// TestPropOptimizedMatchesReference is the golden test for the optimized
// kernel: across many random (seed, n, k, dim) combinations — including
// degenerate inputs with heavy point duplication, which exercise the
// zero-weight seeding path and empty-cluster repairs — KMeans must return
// results bit-identical to the naive kmeansReference.
func TestPropOptimizedMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(300)
		dim := 1 + rng.Intn(20)
		k := 1 + rng.Intn(14)
		data := make([][]float64, n)
		for i := range data {
			if i > 0 && rng.Float64() < 0.3 {
				// Duplicate an earlier point to force distance ties and,
				// with enough duplication, empty clusters.
				data[i] = data[rng.Intn(i)]
				continue
			}
			data[i] = make([]float64, dim)
			for j := range data[i] {
				data[i][j] = rng.NormFloat64() * 10
			}
		}
		runSeed := rng.Int63()
		ref := kmeansReference(data, Config{K: k, Rng: rand.New(rand.NewSource(runSeed))})
		opt := KMeans(data, Config{K: k, Rng: rand.New(rand.NewSource(runSeed))})
		if err := resultsIdentical(ref, opt); err != nil {
			t.Fatalf("seed=%d n=%d k=%d dim=%d: %v", seed, n, k, dim, err)
		}
	}
}

// TestCompareKernels exercises the benchmark-support comparator (which also
// re-verifies kernel identity on its workload).
func TestCompareKernels(t *testing.T) {
	refS, optS, err := CompareKernels(120, 6, 8, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if refS <= 0 || optS <= 0 {
		t.Errorf("non-positive timings: ref=%v opt=%v", refS, optS)
	}
	if _, _, err := CompareKernels(10, 2, 2, 0, 1); err == nil {
		t.Error("rounds=0 should error")
	}
}

// TestEmptyClusterRepairsDistinct drives the update step directly into the
// two-empty-clusters state: three identical centroids over three distinct
// points assign everything to centroid 0, so clusters 1 and 2 are both empty
// in the same step. The repairs must land on distinct points (the old kernel
// reseeded both at the same farthest point).
func TestEmptyClusterRepairsDistinct(t *testing.T) {
	data := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	st := newKmeansState(3, 3, 2)
	// All three centroids at the origin; assignment ties keep index 0.
	st.assignStep(data, true)
	for i, a := range st.assign {
		if a != 0 {
			t.Fatalf("point %d assigned to %d, want 0", i, a)
		}
	}
	st.updateStep(data)
	r1, r2 := st.row(1), st.row(2)
	if r1[0] == r2[0] && r1[1] == r2[1] {
		t.Fatalf("both empty clusters repaired to the same centroid %v", r1)
	}
	// The reference helper must make the same distinct choices.
	centroids := [][]float64{{0, 0}, {0, 0}, {0, 0}}
	first := farthestPointRef(data, centroids, nil)
	second := farthestPointRef(data, centroids, [][]float64{data[first]})
	if first == second {
		t.Fatalf("reference repair chose point %d twice", first)
	}
	if first != 1 || second != 2 {
		t.Errorf("reference repairs = (%d, %d), want (1, 2)", first, second)
	}
}

// benchmarkKMeans runs one kernel at the default experiment scale
// (n=1000, K=10) for one dimensionality, on the clustered mixture data the
// publish pipeline actually feeds the kernel.
func benchmarkKMeans(b *testing.B, dim int, ref bool) {
	data := MixtureData(1000, dim, 10, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := Config{K: 10, Rng: rand.New(rand.NewSource(int64(i)))}
		if ref {
			kmeansReference(data, cfg)
		} else {
			KMeans(data, cfg)
		}
	}
}

// BenchmarkKMeans compares the optimized kernel against the naive reference
// at the default experiment scale (n=1000, k=10, d ∈ {2, 8, 64}); run with
// -benchmem to see the allocation gap.
func BenchmarkKMeans(b *testing.B) {
	for _, dim := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("d=%d/opt", dim), func(b *testing.B) { benchmarkKMeans(b, dim, false) })
		b.Run(fmt.Sprintf("d=%d/ref", dim), func(b *testing.B) { benchmarkKMeans(b, dim, true) })
	}
}
