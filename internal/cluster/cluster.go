// Package cluster implements the k-means clustering that Hyper-M runs in
// every wavelet subspace (step i2 of the insertion pipeline), the sphere
// summaries it publishes, and the cohesion/separation quality metrics used
// by the paper's Figure 11 analysis.
//
// Following the paper (§2.2 and §3.1), clusters are represented as spheres:
// a centroid, a radius (distance to the farthest member), and the count of
// items in the cluster. The count feeds the peer relevance score (Eq 1).
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"hyperm/internal/vec"
)

// Cluster is the sphere summary of one k-means cluster (paper §3.1).
type Cluster struct {
	// Centroid is the cluster center in the (sub)space it was built in.
	Centroid []float64
	// Radius is the distance from the centroid to the farthest member.
	// A singleton cluster has radius 0.
	Radius float64
	// Count is the number of data items summarized by this cluster.
	Count int
}

// String renders a short human-readable summary.
func (c Cluster) String() string {
	return fmt.Sprintf("cluster{dim=%d r=%.4g n=%d}", len(c.Centroid), c.Radius, c.Count)
}

// Contains reports whether x lies inside the cluster sphere (inclusive).
func (c Cluster) Contains(x []float64) bool {
	return vec.Dist(c.Centroid, x) <= c.Radius+1e-12
}

// Config tunes the k-means run.
type Config struct {
	// K is the number of clusters requested. If K exceeds the number of
	// points, every point becomes its own cluster.
	K int
	// MaxIter bounds Lloyd iterations. Zero means the default (50).
	MaxIter int
	// Tol stops iteration when no centroid moves more than Tol. Zero means
	// the default (1e-6).
	Tol float64
	// Rng drives k-means++ seeding and empty-cluster reseeding. Must be
	// non-nil: all randomness in this repository is explicitly seeded.
	Rng *rand.Rand
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 50
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-6
	}
	return cfg
}

// Result is the output of a k-means run.
type Result struct {
	// Clusters are the sphere summaries, in arbitrary order. Empty clusters
	// never appear: len(Clusters) <= Config.K.
	Clusters []Cluster
	// Assign maps each input point index to its cluster index in Clusters.
	Assign []int
	// Iters is the number of Lloyd iterations executed.
	Iters int
}

// validateKMeansInput panics on malformed input and returns the shared row
// dimensionality.
func validateKMeansInput(data [][]float64, cfg Config) int {
	if len(data) == 0 {
		panic("cluster: KMeans on empty data")
	}
	if cfg.K < 1 {
		panic("cluster: K must be >= 1")
	}
	if cfg.Rng == nil {
		panic("cluster: Config.Rng must be set (explicit seeding required)")
	}
	dim := len(data[0])
	for i, x := range data {
		if len(x) != dim {
			panic(fmt.Sprintf("cluster: row %d has dim %d, want %d", i, len(x), dim))
		}
	}
	return dim
}

// KMeans clusters data into (at most) cfg.K sphere summaries using
// k-means++ seeding followed by Lloyd iterations.
//
// The input points are never modified; centroids are freshly allocated.
// KMeans panics if data is empty, rows have inconsistent dimensionality,
// cfg.K < 1, or cfg.Rng is nil.
//
// This is the optimized kernel on Hyper-M's publish hot path (step i2 runs
// once per peer per wavelet level): incremental k-means++ seeding (O(n·k)
// total instead of O(n·k²)), Lloyd iterations over flat double-buffered
// centroid/accumulator arrays with zero per-iteration allocations, and
// Hamerly-style triangle-inequality pruning with partial-distance early
// exits in the assignment scans. Every floating-point operation that reaches
// the output is performed in the same order as the naive kernel, so results
// are bit-identical to kmeansReference (the pruning only skips computations
// whose outcome is already decided); TestPropOptimizedMatchesReference
// checks exact equality.
func KMeans(data [][]float64, cfg Config) Result {
	cfg = cfg.withDefaults()
	dim := validateKMeansInput(data, cfg)
	k := cfg.K
	if k > len(data) {
		k = len(data)
	}
	st := newKmeansState(len(data), k, dim)
	st.seed(data, cfg.Rng)
	iters := 0
	fullScan := true
	for ; iters < cfg.MaxIter; iters++ {
		st.assignStep(data, fullScan)
		fullScan = false
		if st.updateStep(data) <= cfg.Tol {
			iters++
			break
		}
	}
	// Final assignment against the converged centroids.
	st.assignStep(data, fullScan)
	return st.result(data, iters)
}

// kmeansState holds every buffer one KMeans call needs, carved out of two
// backing allocations up front. Centroids live in flat row-major arrays;
// cent and next are swapped after each update step instead of reallocating.
type kmeansState struct {
	n, k, dim  int
	cent, next []float64 // k*dim row-major centroid buffers
	counts     []int
	assign     []int
	// Hamerly bounds, valid after the first full assignment scan: upper[i]
	// is an upper bound on the distance from point i to its assigned
	// centroid, lower[i] a lower bound on its distance to every other
	// centroid. A point whose upper < lower cannot change assignment.
	upper, lower []float64
	move         []float64 // per-centroid movement of the last update step
	remap        []int     // result-compaction scratch
	maxMove      float64
	repaired     []int // point indices chosen by empty-cluster repairs
}

func newKmeansState(n, k, dim int) kmeansState {
	floats := make([]float64, 2*k*dim+2*n+k)
	ints := make([]int, n+2*k)
	st := kmeansState{n: n, k: k, dim: dim}
	st.cent, floats = floats[:k*dim], floats[k*dim:]
	st.next, floats = floats[:k*dim], floats[k*dim:]
	st.upper, floats = floats[:n], floats[n:]
	st.lower, floats = floats[:n], floats[n:]
	st.move = floats
	st.assign, ints = ints[:n], ints[n:]
	st.counts, ints = ints[:k], ints[k:]
	st.remap = ints
	return st
}

func (st *kmeansState) row(c int) []float64     { return st.cent[c*st.dim : (c+1)*st.dim] }
func (st *kmeansState) nextRow(c int) []float64 { return st.next[c*st.dim : (c+1)*st.dim] }

// seed performs incremental k-means++ initialization: the per-point minimum
// squared distance to the chosen centroids is maintained across centroid
// additions (one Dist2 per point per round) instead of rescanning every
// centroid. The minimum of the same identically-computed distances is exact
// regardless of evaluation order, and the RNG draw sequence matches the
// naive seeding, so the chosen centroids are bit-identical to
// seedPlusPlusRef's.
func (st *kmeansState) seed(data [][]float64, rng *rand.Rand) {
	copy(st.cent[:st.dim], data[rng.Intn(st.n)])
	if st.k == 1 {
		return
	}
	d2 := st.lower // scratch until the first assignment scan overwrites it
	for i, x := range data {
		d2[i] = vec.Dist2(x, st.cent[:st.dim])
	}
	for chosen := 1; chosen < st.k; chosen++ {
		var total float64
		for _, w := range d2 {
			total += w
		}
		var idx int
		if total == 0 {
			// All remaining points coincide with existing centroids; any
			// choice works and the clusters will be deduplicated by counts.
			idx = rng.Intn(st.n)
		} else {
			target := rng.Float64() * total
			idx = st.n - 1
			var acc float64
			for i, w := range d2 {
				acc += w
				if acc >= target {
					idx = i
					break
				}
			}
		}
		row := st.cent[chosen*st.dim : (chosen+1)*st.dim]
		copy(row, data[idx])
		if chosen+1 == st.k {
			break
		}
		for i, x := range data {
			if d := vec.Dist2(x, row); d < d2[i] {
				d2[i] = d
			}
		}
	}
}

// assignStep computes the nearest centroid for every point. After the first
// full scan it applies the pending centroid drift to the Hamerly bounds and
// rescans only the points whose bounds cannot certify their assignment.
func (st *kmeansState) assignStep(data [][]float64, full bool) {
	if full {
		for i, x := range data {
			st.scanPoint(i, x)
		}
		return
	}
	for i, x := range data {
		a := st.assign[i]
		u := st.upper[i] + st.move[a]
		l := st.lower[i] - st.maxMove
		if u < l {
			st.upper[i], st.lower[i] = u, l
			continue
		}
		// Tighten the upper bound with one exact distance before falling
		// back to the full scan.
		u = math.Sqrt(vec.Dist2(x, st.row(a)))
		if u < l {
			st.upper[i], st.lower[i] = u, l
			continue
		}
		st.scanPoint(i, x)
	}
}

// scanPoint is the full assignment scan for one point, tracking the best and
// second-best squared distances (the Hamerly bounds). Each candidate scan is
// capped at the running second-best distance: a partial sum that reaches the
// cap proves the candidate can affect neither bound, and below the cap the
// capped distance is bit-identical to vec.Dist2, so the selected index (ties
// keep the lowest, exactly like the naive argmin) and both bounds match the
// unpruned scan.
func (st *kmeansState) scanPoint(i int, x []float64) {
	best, best2, second2 := 0, math.Inf(1), math.Inf(1)
	for c := 0; c < st.k; c++ {
		d2 := vec.Dist2Capped(x, st.row(c), second2)
		if d2 < best2 {
			best, best2, second2 = c, d2, best2
		} else if d2 < second2 {
			second2 = d2
		}
	}
	st.assign[i] = best
	st.upper[i] = math.Sqrt(best2)
	st.lower[i] = math.Sqrt(second2)
}

// updateStep recomputes centroids from the current assignment and returns
// the largest centroid movement. Accumulation runs over points in index
// order into the flat next buffer — the same addition order as the naive
// kernel — so the new centroids are bit-identical; only the allocations are
// gone.
func (st *kmeansState) updateStep(data [][]float64) float64 {
	for i := range st.next {
		st.next[i] = 0
	}
	for c := range st.counts {
		st.counts[c] = 0
	}
	for i, x := range data {
		a := st.assign[i]
		row := st.nextRow(a)
		for j, v := range x {
			row[j] += v
		}
		st.counts[a]++
	}
	st.repaired = st.repaired[:0]
	for c := 0; c < st.k; c++ {
		row := st.nextRow(c)
		if st.counts[c] == 0 {
			// Reseed an empty cluster at the point farthest from the current
			// centroids and any repairs already made this step, so
			// simultaneous repairs land on distinct points.
			far := st.farthestPoint(data)
			copy(row, data[far])
			st.repaired = append(st.repaired, far)
			continue
		}
		inv := 1 / float64(st.counts[c])
		for j := range row {
			row[j] *= inv
		}
	}
	st.maxMove = 0
	for c := 0; c < st.k; c++ {
		m := math.Sqrt(vec.Dist2(st.row(c), st.nextRow(c)))
		st.move[c] = m
		if m > st.maxMove {
			st.maxMove = m
		}
	}
	st.cent, st.next = st.next, st.cent
	return st.maxMove
}

// farthestPoint returns the point farthest from the union of the current
// (pre-update) centroids and the repairs already made this step. Ties keep
// the lowest index, matching farthestPointRef.
func (st *kmeansState) farthestPoint(data [][]float64) int {
	best, bestD := 0, -1.0
	for i, x := range data {
		near := math.Inf(1)
		for c := 0; c < st.k; c++ {
			if d := vec.Dist2Capped(x, st.row(c), near); d < near {
				near = d
			}
		}
		for _, r := range st.repaired {
			if d := vec.Dist2Capped(x, data[r], near); d < near {
				near = d
			}
		}
		if near > bestD {
			best, bestD = i, near
		}
	}
	return best
}

// result computes radii and counts, drops empty clusters and compacts
// assignment indices — the same values buildResult produces, assembled with
// a single flat backing array for the output centroids.
func (st *kmeansState) result(data [][]float64, iters int) Result {
	k := st.k
	for c := range st.counts {
		st.counts[c] = 0
	}
	radii := st.move // the k-sized movement buffer is free after the last update
	for c := range radii {
		radii[c] = 0
	}
	for i, x := range data {
		c := st.assign[i]
		st.counts[c]++
		if d := vec.Dist(x, st.row(c)); d > radii[c] {
			radii[c] = d
		}
	}
	live := 0
	for c := 0; c < k; c++ {
		if st.counts[c] > 0 {
			live++
		}
	}
	backing := make([]float64, live*st.dim)
	clusters := make([]Cluster, 0, live)
	remap := st.remap
	for c := 0; c < k; c++ {
		if st.counts[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(clusters)
		cent := backing[len(clusters)*st.dim : (len(clusters)+1)*st.dim]
		copy(cent, st.row(c))
		clusters = append(clusters, Cluster{
			Centroid: cent,
			Radius:   radii[c],
			Count:    st.counts[c],
		})
	}
	out := make([]int, st.n)
	for i, c := range st.assign {
		out[i] = remap[c]
	}
	return Result{Clusters: clusters, Assign: out, Iters: iters}
}

// buildResult computes radii and counts, dropping empty clusters and
// compacting assignment indices.
func buildResult(data, centroids [][]float64, assign []int, iters int) Result {
	k := len(centroids)
	counts := make([]int, k)
	radii := make([]float64, k)
	for i, x := range data {
		c := assign[i]
		counts[c]++
		if d := vec.Dist(x, centroids[c]); d > radii[c] {
			radii[c] = d
		}
	}
	remap := make([]int, k)
	var clusters []Cluster
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(clusters)
		clusters = append(clusters, Cluster{
			Centroid: vec.Clone(centroids[c]),
			Radius:   radii[c],
			Count:    counts[c],
		})
	}
	out := make([]int, len(assign))
	for i, c := range assign {
		out[i] = remap[c]
	}
	return Result{Clusters: clusters, Assign: out, Iters: iters}
}

// Quality holds the clustering goodness metrics used by Figure 11.
type Quality struct {
	// Cohesion is the average distance of each point to its own centroid
	// (lower is tighter).
	Cohesion float64
	// Separation is the average pairwise distance between distinct
	// centroids (higher is better separated). Zero when fewer than two
	// clusters exist.
	Separation float64
}

// Ratio returns cohesion/separation, the paper's 'goodness' proportion
// (Figure 11): lower means tighter, better-separated clusters. It returns
// +Inf when separation is zero.
func (q Quality) Ratio() float64 {
	if q.Separation == 0 {
		return math.Inf(1)
	}
	return q.Cohesion / q.Separation
}

// Evaluate computes the cohesion/separation quality of a clustering result
// over the data it was built from.
func Evaluate(data [][]float64, res Result) Quality {
	var q Quality
	if len(data) == 0 {
		return q
	}
	var sum float64
	for i, x := range data {
		sum += vec.Dist(x, res.Clusters[res.Assign[i]].Centroid)
	}
	q.Cohesion = sum / float64(len(data))
	n := len(res.Clusters)
	if n < 2 {
		return q
	}
	var sep float64
	var pairs int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sep += vec.Dist(res.Clusters[i].Centroid, res.Clusters[j].Centroid)
			pairs++
		}
	}
	q.Separation = sep / float64(pairs)
	return q
}
