// Package cluster implements the k-means clustering that Hyper-M runs in
// every wavelet subspace (step i2 of the insertion pipeline), the sphere
// summaries it publishes, and the cohesion/separation quality metrics used
// by the paper's Figure 11 analysis.
//
// Following the paper (§2.2 and §3.1), clusters are represented as spheres:
// a centroid, a radius (distance to the farthest member), and the count of
// items in the cluster. The count feeds the peer relevance score (Eq 1).
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"hyperm/internal/vec"
)

// Cluster is the sphere summary of one k-means cluster (paper §3.1).
type Cluster struct {
	// Centroid is the cluster center in the (sub)space it was built in.
	Centroid []float64
	// Radius is the distance from the centroid to the farthest member.
	// A singleton cluster has radius 0.
	Radius float64
	// Count is the number of data items summarized by this cluster.
	Count int
}

// String renders a short human-readable summary.
func (c Cluster) String() string {
	return fmt.Sprintf("cluster{dim=%d r=%.4g n=%d}", len(c.Centroid), c.Radius, c.Count)
}

// Contains reports whether x lies inside the cluster sphere (inclusive).
func (c Cluster) Contains(x []float64) bool {
	return vec.Dist(c.Centroid, x) <= c.Radius+1e-12
}

// Config tunes the k-means run.
type Config struct {
	// K is the number of clusters requested. If K exceeds the number of
	// points, every point becomes its own cluster.
	K int
	// MaxIter bounds Lloyd iterations. Zero means the default (50).
	MaxIter int
	// Tol stops iteration when no centroid moves more than Tol. Zero means
	// the default (1e-6).
	Tol float64
	// Rng drives k-means++ seeding and empty-cluster reseeding. Must be
	// non-nil: all randomness in this repository is explicitly seeded.
	Rng *rand.Rand
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 50
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-6
	}
	return cfg
}

// Result is the output of a k-means run.
type Result struct {
	// Clusters are the sphere summaries, in arbitrary order. Empty clusters
	// never appear: len(Clusters) <= Config.K.
	Clusters []Cluster
	// Assign maps each input point index to its cluster index in Clusters.
	Assign []int
	// Iters is the number of Lloyd iterations executed.
	Iters int
}

// KMeans clusters data into (at most) cfg.K sphere summaries using
// k-means++ seeding followed by Lloyd iterations.
//
// The input points are never modified; centroids are freshly allocated.
// KMeans panics if data is empty, rows have inconsistent dimensionality,
// cfg.K < 1, or cfg.Rng is nil.
func KMeans(data [][]float64, cfg Config) Result {
	cfg = cfg.withDefaults()
	if len(data) == 0 {
		panic("cluster: KMeans on empty data")
	}
	if cfg.K < 1 {
		panic("cluster: K must be >= 1")
	}
	if cfg.Rng == nil {
		panic("cluster: Config.Rng must be set (explicit seeding required)")
	}
	dim := len(data[0])
	for i, x := range data {
		if len(x) != dim {
			panic(fmt.Sprintf("cluster: row %d has dim %d, want %d", i, len(x), dim))
		}
	}
	k := cfg.K
	if k > len(data) {
		k = len(data)
	}

	centroids := seedPlusPlus(data, k, cfg.Rng)
	assign := make([]int, len(data))
	counts := make([]int, k)
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		// Assignment step.
		for i, x := range data {
			assign[i] = nearestCentroid(x, centroids)
		}
		// Update step.
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
			counts[c] = 0
		}
		for i, x := range data {
			vec.Add(next[assign[i]], x)
			counts[assign[i]]++
		}
		for c := range next {
			if counts[c] == 0 {
				// Reseed an empty cluster at the point farthest from its
				// current centroid, a standard k-means repair.
				far := farthestPoint(data, centroids)
				copy(next[c], data[far])
				continue
			}
			vec.Scale(next[c], 1/float64(counts[c]))
		}
		// Convergence check.
		moved := 0.0
		for c := range centroids {
			if m := vec.Dist(centroids[c], next[c]); m > moved {
				moved = m
			}
		}
		centroids = next
		if moved <= cfg.Tol {
			iters++
			break
		}
	}
	// Final assignment against the converged centroids.
	for i, x := range data {
		assign[i] = nearestCentroid(x, centroids)
	}
	return buildResult(data, centroids, assign, iters)
}

// buildResult computes radii and counts, dropping empty clusters and
// compacting assignment indices.
func buildResult(data, centroids [][]float64, assign []int, iters int) Result {
	k := len(centroids)
	counts := make([]int, k)
	radii := make([]float64, k)
	for i, x := range data {
		c := assign[i]
		counts[c]++
		if d := vec.Dist(x, centroids[c]); d > radii[c] {
			radii[c] = d
		}
	}
	remap := make([]int, k)
	var clusters []Cluster
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(clusters)
		clusters = append(clusters, Cluster{
			Centroid: vec.Clone(centroids[c]),
			Radius:   radii[c],
			Count:    counts[c],
		})
	}
	out := make([]int, len(assign))
	for i, c := range assign {
		out[i] = remap[c]
	}
	return Result{Clusters: clusters, Assign: out, Iters: iters}
}

// seedPlusPlus performs k-means++ initialization.
func seedPlusPlus(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := data[rng.Intn(len(data))]
	centroids = append(centroids, vec.Clone(first))
	d2 := make([]float64, len(data))
	for len(centroids) < k {
		var total float64
		for i, x := range data {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := vec.Dist2(x, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with existing centroids; any
			// choice works and the clusters will be deduplicated by counts.
			centroids = append(centroids, vec.Clone(data[rng.Intn(len(data))]))
			continue
		}
		target := rng.Float64() * total
		idx := len(data) - 1
		var acc float64
		for i, w := range d2 {
			acc += w
			if acc >= target {
				idx = i
				break
			}
		}
		centroids = append(centroids, vec.Clone(data[idx]))
	}
	return centroids
}

func nearestCentroid(x []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := vec.Dist2(x, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func farthestPoint(data, centroids [][]float64) int {
	best, bestD := 0, -1.0
	for i, x := range data {
		near := math.Inf(1)
		for _, c := range centroids {
			if d := vec.Dist2(x, c); d < near {
				near = d
			}
		}
		if near > bestD {
			best, bestD = i, near
		}
	}
	return best
}

// Quality holds the clustering goodness metrics used by Figure 11.
type Quality struct {
	// Cohesion is the average distance of each point to its own centroid
	// (lower is tighter).
	Cohesion float64
	// Separation is the average pairwise distance between distinct
	// centroids (higher is better separated). Zero when fewer than two
	// clusters exist.
	Separation float64
}

// Ratio returns cohesion/separation, the paper's 'goodness' proportion
// (Figure 11): lower means tighter, better-separated clusters. It returns
// +Inf when separation is zero.
func (q Quality) Ratio() float64 {
	if q.Separation == 0 {
		return math.Inf(1)
	}
	return q.Cohesion / q.Separation
}

// Evaluate computes the cohesion/separation quality of a clustering result
// over the data it was built from.
func Evaluate(data [][]float64, res Result) Quality {
	var q Quality
	if len(data) == 0 {
		return q
	}
	var sum float64
	for i, x := range data {
		sum += vec.Dist(x, res.Clusters[res.Assign[i]].Centroid)
	}
	q.Cohesion = sum / float64(len(data))
	n := len(res.Clusters)
	if n < 2 {
		return q
	}
	var sep float64
	var pairs int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sep += vec.Dist(res.Clusters[i].Centroid, res.Clusters[j].Centroid)
			pairs++
		}
	}
	q.Separation = sep / float64(pairs)
	return q
}
