package cluster

import (
	"math"
	"math/rand"

	"hyperm/internal/vec"
)

// kmeansReference is the naive pre-optimization k-means kernel: full
// O(n·k·d) scans per Lloyd iteration, O(n·k²) k-means++ seeding, and fresh
// accumulator allocations every iteration. It is retained verbatim (modulo
// the distinct-empty-repair fix, applied to both kernels) as the golden
// oracle: the optimized KMeans must produce bit-identical results, which
// TestPropOptimizedMatchesReference and cluster.CompareKernels verify.
func kmeansReference(data [][]float64, cfg Config) Result {
	cfg = cfg.withDefaults()
	dim := validateKMeansInput(data, cfg)
	k := cfg.K
	if k > len(data) {
		k = len(data)
	}

	centroids := seedPlusPlusRef(data, k, cfg.Rng)
	assign := make([]int, len(data))
	counts := make([]int, k)
	iters := 0
	for ; iters < cfg.MaxIter; iters++ {
		// Assignment step.
		for i, x := range data {
			assign[i] = nearestCentroidRef(x, centroids)
		}
		// Update step.
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
			counts[c] = 0
		}
		for i, x := range data {
			vec.Add(next[assign[i]], x)
			counts[assign[i]]++
		}
		var repaired [][]float64
		for c := range next {
			if counts[c] == 0 {
				// Reseed an empty cluster at the point farthest from the
				// current centroids and any repairs already made this step,
				// so simultaneous repairs land on distinct points.
				far := farthestPointRef(data, centroids, repaired)
				copy(next[c], data[far])
				repaired = append(repaired, data[far])
				continue
			}
			vec.Scale(next[c], 1/float64(counts[c]))
		}
		// Convergence check.
		moved := 0.0
		for c := range centroids {
			if m := vec.Dist(centroids[c], next[c]); m > moved {
				moved = m
			}
		}
		centroids = next
		if moved <= cfg.Tol {
			iters++
			break
		}
	}
	// Final assignment against the converged centroids.
	for i, x := range data {
		assign[i] = nearestCentroidRef(x, centroids)
	}
	return buildResult(data, centroids, assign, iters)
}

// seedPlusPlusRef performs k-means++ initialization by rescanning every
// chosen centroid for every point each round (the O(n·k²) baseline).
func seedPlusPlusRef(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := data[rng.Intn(len(data))]
	centroids = append(centroids, vec.Clone(first))
	d2 := make([]float64, len(data))
	for len(centroids) < k {
		var total float64
		for i, x := range data {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := vec.Dist2(x, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with existing centroids; any
			// choice works and the clusters will be deduplicated by counts.
			centroids = append(centroids, vec.Clone(data[rng.Intn(len(data))]))
			continue
		}
		target := rng.Float64() * total
		idx := len(data) - 1
		var acc float64
		for i, w := range d2 {
			acc += w
			if acc >= target {
				idx = i
				break
			}
		}
		centroids = append(centroids, vec.Clone(data[idx]))
	}
	return centroids
}

func nearestCentroidRef(x []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := vec.Dist2(x, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// farthestPointRef returns the index of the point farthest from the union of
// centroids and extra (the repairs already made in this update step). Ties
// keep the lowest index.
func farthestPointRef(data, centroids, extra [][]float64) int {
	best, bestD := 0, -1.0
	for i, x := range data {
		near := math.Inf(1)
		for _, c := range centroids {
			if d := vec.Dist2(x, c); d < near {
				near = d
			}
		}
		for _, c := range extra {
			if d := vec.Dist2(x, c); d < near {
				near = d
			}
		}
		if near > bestD {
			best, bestD = i, near
		}
	}
	return best
}
