package cluster

import (
	"fmt"
	"math/rand"
	"time"
)

// MixtureData draws n points of dim dimensions from a comps-component
// Gaussian mixture with centers uniform in [0,1]^dim and per-coordinate
// sigma 0.05 — the clustered shape the publish pipeline feeds the k-means
// kernel (wavelet coefficients of Markov-chain or histogram corpora), as
// opposed to structureless uniform noise. Shared by the kernel benchmarks
// and the `kernels` experiment.
func MixtureData(n, dim, comps int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, comps)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.Float64()
		}
	}
	data := make([][]float64, n)
	for i := range data {
		center := centers[rng.Intn(comps)]
		data[i] = make([]float64, dim)
		for j := range data[i] {
			data[i][j] = center[j] + 0.05*rng.NormFloat64()
		}
	}
	return data
}

// CompareKernels times the optimized KMeans against the retained naive
// kmeansReference on one synthetic workload (n mixture-drawn points of dim
// dimensions, clustered into k spheres, rounds repetitions with fresh
// per-round seeds) and verifies on every round that both kernels return
// identical results. It backs the `kernels` experiment of cmd/hyperm-bench;
// the identity check makes the timing comparison double as a standing
// regression test on real workload shapes.
func CompareKernels(n, k, dim, rounds int, seed int64) (refSeconds, optSeconds float64, err error) {
	if rounds < 1 {
		return 0, 0, fmt.Errorf("cluster: CompareKernels needs rounds >= 1, got %d", rounds)
	}
	rng := rand.New(rand.NewSource(seed))
	data := MixtureData(n, dim, k, rng)
	for r := 0; r < rounds; r++ {
		s := rng.Int63()
		start := time.Now()
		ref := kmeansReference(data, Config{K: k, Rng: rand.New(rand.NewSource(s))})
		refSeconds += time.Since(start).Seconds()
		start = time.Now()
		opt := KMeans(data, Config{K: k, Rng: rand.New(rand.NewSource(s))})
		optSeconds += time.Since(start).Seconds()
		if err := resultsIdentical(ref, opt); err != nil {
			return 0, 0, fmt.Errorf("cluster: optimized kernel diverged from reference (n=%d k=%d dim=%d seed=%d): %w",
				n, k, dim, s, err)
		}
	}
	return refSeconds, optSeconds, nil
}

// resultsIdentical reports whether two k-means results are exactly equal —
// bit-identical centroids and radii, equal assignments, counts and iteration
// counts.
func resultsIdentical(a, b Result) error {
	if a.Iters != b.Iters {
		return fmt.Errorf("iters %d vs %d", a.Iters, b.Iters)
	}
	if len(a.Clusters) != len(b.Clusters) {
		return fmt.Errorf("%d vs %d clusters", len(a.Clusters), len(b.Clusters))
	}
	for i := range a.Clusters {
		ca, cb := a.Clusters[i], b.Clusters[i]
		if ca.Radius != cb.Radius || ca.Count != cb.Count {
			return fmt.Errorf("cluster %d: radius/count %v/%d vs %v/%d", i, ca.Radius, ca.Count, cb.Radius, cb.Count)
		}
		if len(ca.Centroid) != len(cb.Centroid) {
			return fmt.Errorf("cluster %d: centroid dim %d vs %d", i, len(ca.Centroid), len(cb.Centroid))
		}
		for j := range ca.Centroid {
			if ca.Centroid[j] != cb.Centroid[j] {
				return fmt.Errorf("cluster %d: centroid[%d] %v vs %v", i, j, ca.Centroid[j], cb.Centroid[j])
			}
		}
	}
	if len(a.Assign) != len(b.Assign) {
		return fmt.Errorf("assign length %d vs %d", len(a.Assign), len(b.Assign))
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			return fmt.Errorf("assign[%d] %d vs %d", i, a.Assign[i], b.Assign[i])
		}
	}
	return nil
}
