package membership

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"hyperm/internal/route"
	"hyperm/internal/transport"
)

// Fabric is the manager's view of the network, implemented by the node
// daemon. The manager decides *what* to say; the fabric knows how to reach
// peers and how to run overlay searches.
type Fabric interface {
	// Call performs one membership RPC against addr and returns the response
	// body. Transport faults come back wrapped in transport.ErrUnavailable;
	// handler refusals as *transport.RemoteError.
	Call(ctx context.Context, addr, method string, body []byte) ([]byte, error)
	// Collect runs a sphere search at level and returns every reachable
	// record intersecting the sphere, deduplicated by seq and seq-sorted —
	// the live equivalent of the simulator's global recovery scan.
	Collect(ctx context.Context, level int, key []float64, radius float64) ([]route.RecordView, error)
	// RouteOwner greedily routes from the bootstrap address to the owner of
	// key at level, returning the owner's id and address.
	RouteOwner(ctx context.Context, level int, bootstrap string, key []float64) (id int, addr string, err error)
}

// Options tunes the liveness protocol. The zero value disables probing
// entirely (join/leave/handoff RPCs still work), which is what the static
// oracle tests use.
type Options struct {
	// ProbeInterval is the pause between probe rounds; <= 0 disables the
	// probe loop.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each ping RPC. Default 250ms.
	ProbeTimeout time.Duration
	// FailAfter is the number of consecutive probe failures that declare a
	// neighbor dead. Default 3.
	FailAfter int
}

func (o Options) withDefaults() Options {
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 250 * time.Millisecond
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	return o
}

// claim snapshots a node's zone set just before it claims a crashed
// neighbor's zone, so a lost takeover conflict (two detectors electing
// themselves from divergent views) can be rolled back: the lower-id claimant
// keeps the zone, the other restores its snapshot and refilters its records.
type claim struct {
	level     int
	zone      route.Zone
	prevZones []route.Zone
}

// outMsg is one protocol message computed under the lock and sent after it
// is released — the manager never performs network I/O while locked.
type outMsg struct {
	addr   string
	method string
	body   []byte
}

// recoveryPlan is one pending republish: after taking over zone at level,
// search the zone's circumsphere and merge what survives.
type recoveryPlan struct {
	level int
	zone  route.Zone
}

// Manager runs the membership protocol for one node: it owns the node's
// per-level zone/neighbor/record state, serves the membership RPCs, and —
// when probing is enabled — detects crashed neighbors and takes their zones
// over. Safe for concurrent use.
type Manager struct {
	self   int
	fabric Fabric
	opts   Options

	mu       sync.RWMutex
	selfAddr string
	levels   []LevelState
	book     map[int]string
	size     int
	left     bool
	// dead marks peers known to have departed (leave notice, takeover
	// announcement, or local detection); they are never probed or elected.
	dead map[int]bool
	// fails counts consecutive probe failures per neighbor.
	fails map[int]int
	// tables caches each probed neighbor's last self-reported state; crash
	// elections run on the crashed node's own table so every detector
	// reaches the same result.
	tables map[int][]LevelTable
	// claims indexes this node's recent zone claims for conflict rollback.
	claims map[string]claim
	// recovering counts in-flight post-takeover republishes (Busy).
	recovering int
	// versions[l] counts this node's own level-l state mutations — the
	// revalidation token view caches compare (see internal/viewcache).
	versions []uint64
	// epochs[l] counts the level-l churn events this node has observed
	// (its own mutations plus neighbor-table changes seen in probe
	// responses); view caches trust entries only within their fetch epoch.
	epochs []uint64
	// epochHook, when set (SetEpochHook), is invoked under mu on every
	// epoch advance — the proactive-warming trigger.
	epochHook func(level int)

	probeMu   sync.Mutex
	probeStop chan struct{}
	probeWG   sync.WaitGroup
}

// NewManager builds a manager for node self. levels is the node's bootstrap
// state (one entry per CAN level — empty LevelStates for a fresh joiner);
// size is the cluster size as currently known (max node id + 1).
func NewManager(self, size int, levels []LevelState, fabric Fabric, opts Options) *Manager {
	if size < self+1 {
		size = self + 1
	}
	m := &Manager{
		self:     self,
		fabric:   fabric,
		opts:     opts.withDefaults(),
		levels:   make([]LevelState, len(levels)),
		book:     map[int]string{},
		size:     size,
		dead:     map[int]bool{},
		fails:    map[int]int{},
		tables:   map[int][]LevelTable{},
		claims:   map[string]claim{},
		versions: make([]uint64, len(levels)),
		epochs:   make([]uint64, len(levels)),
	}
	if opts.ProbeInterval <= 0 {
		m.opts.ProbeInterval = 0
	}
	for i := range levels {
		m.levels[i] = levels[i].Clone()
	}
	return m
}

// Self returns the node id.
func (m *Manager) Self() int { return m.self }

// NumLevels returns the number of CAN levels.
func (m *Manager) NumLevels() int { return len(m.levels) }

// Size returns the cluster size as currently known (max node id seen + 1) —
// the routing hop limit's input, mirroring the simulator's len(nodes).
func (m *Manager) Size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// SetSelfAddr installs this node's serving address (known after its server
// starts).
func (m *Manager) SetSelfAddr(addr string) {
	m.mu.Lock()
	m.selfAddr = addr
	m.book[m.self] = addr
	m.mu.Unlock()
}

// SeedBook installs the positional address book (addrs[p] = peer p's
// address) and fills the neighbor-table addresses — the static-cluster
// bootstrap path (Cluster.SetPeers).
func (m *Manager) SeedBook(addrs []string) {
	m.mu.Lock()
	for p, a := range addrs {
		if a != "" {
			m.book[p] = a
		}
	}
	if len(addrs) > m.size {
		m.size = len(addrs)
	}
	m.refreshNeighborAddrsLocked()
	m.mu.Unlock()
}

// LearnAddr records one peer's address (from a view or message that carried
// it).
func (m *Manager) LearnAddr(id int, addr string) {
	if addr == "" {
		return
	}
	m.mu.Lock()
	m.learnLocked(id, addr)
	m.mu.Unlock()
}

func (m *Manager) learnLocked(id int, addr string) {
	if addr != "" {
		m.book[id] = addr
	}
	if id >= m.size {
		m.size = id + 1
	}
}

func (m *Manager) refreshNeighborAddrsLocked() {
	for l := range m.levels {
		ns := m.levels[l].Neighbors
		for i := range ns {
			if a, ok := m.book[ns[i].ID]; ok && ns[i].Addr == "" {
				ns[i].Addr = a
			}
		}
	}
}

// Addr returns peer id's address, if known.
func (m *Manager) Addr(id int) (string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if a, ok := m.book[id]; ok && a != "" {
		return a, nil
	}
	return "", fmt.Errorf("membership: no known address for peer %d", id)
}

// View returns a read-safe copy of one level's state.
func (m *Manager) View(level int) LevelState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.levels[level].Clone()
}

// SearchView answers a can_search hop without cloning the full level state:
// zones and neighbors are shallow-copied and records are filtered under the
// read lock, keeping owned and replicas separate and in storage order — the
// hot serving path allocates record slices sized to the matches instead of
// copying every stored record per hop. A nil match selects everything (the
// full-view fetch a view cache stores, so the cached copy can answer *any*
// later sphere: the searcher's own filter is idempotent). The returned
// version is the level's state version at read time — the cache revalidation
// token, read under the same lock as the state it stamps. match must not
// retain or mutate its argument's slices beyond the protocol's shared-read
// contract (see Clone).
func (m *Manager) SearchView(level int, match func(route.RecordView) bool) (zones []route.Zone, nbs []Neighbor, owned, replicas []route.RecordView, version uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ls := &m.levels[level]
	zones = cloneZones(ls.Zones)
	nbs = cloneNeighbors(ls.Neighbors)
	if match == nil {
		return zones, nbs, cloneRecords(ls.Owned), cloneRecords(ls.Replicas), m.versions[level]
	}
	filter := func(rs []route.RecordView) []route.RecordView {
		var out []route.RecordView
		for _, r := range rs {
			if match(r) {
				if out == nil {
					// One allocation bounded by the store size, deferred until
					// a record actually matches (routing-phase hops match none).
					out = make([]route.RecordView, 0, len(rs))
				}
				out = append(out, r)
			}
		}
		return out
	}
	return zones, nbs, filter(ls.Owned), filter(ls.Replicas), m.versions[level]
}

// Snapshot returns read-safe copies of every level.
func (m *Manager) Snapshot() []LevelState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]LevelState, len(m.levels))
	for i := range m.levels {
		out[i] = m.levels[i].Clone()
	}
	return out
}

// Table returns the cached self-reported state of a probed neighbor (nil if
// none), letting harnesses check detector knowledge freshness.
func (m *Manager) Table(id int) []LevelTable {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tables[id]
}

// IsDead reports whether this node believes peer id has departed.
func (m *Manager) IsDead(id int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dead[id]
}

// Left reports whether this node has gracefully left the overlay.
func (m *Manager) Left() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.left
}

// Busy reports whether a post-takeover republish is still in flight —
// quiescence checks wait for it.
func (m *Manager) Busy() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.recovering > 0
}

// Version returns this node's level-l state version: a counter bumped on
// every mutation of its own zones, neighbor table, or records. It is the
// token view_version exposes for cheap cache revalidation.
func (m *Manager) Version(level int) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.versions[level]
}

// Epoch returns this node's level-l churn epoch: a counter bumped on every
// membership event the node observes at that level — its own mutations and
// neighbor-table changes heard in probe responses. A view cache trusts an
// entry outright only while the epoch it was fetched at is still current.
func (m *Manager) Epoch(level int) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epochs[level]
}

// SetEpochHook registers a callback invoked on every churn-epoch advance at
// a level — the trigger proactive cache warmers key off. The hook runs with
// the manager's write lock held, so it must not block or call back into the
// manager (implementations hand off to a goroutine, e.g. via a non-blocking
// channel send). It must be set before the manager serves RPCs or probes.
func (m *Manager) SetEpochHook(fn func(level int)) { m.epochHook = fn }

// bumpLocked records a mutation of this node's own level-l state: both the
// revalidation version and the observed-churn epoch advance. Callers hold mu.
func (m *Manager) bumpLocked(level int) {
	m.versions[level]++
	m.epochs[level]++
	if m.epochHook != nil {
		m.epochHook(level)
	}
}

// bumpVersionLocked records a record-store mutation that is not churn: the
// revalidation version advances (remote caches of this node's view must
// refetch) but the churn epoch holds — zones and neighbor tables are
// untouched, so topology-keyed trust is unaffected. Streaming publish is the
// only caller; its coordinators compensate by never trusting a cached view
// without revalidation (see node.Tuning.StreamPublish).
func (m *Manager) bumpVersionLocked(level int) {
	m.versions[level]++
}

// observeLocked records a churn event at level l that did not change this
// node's own state (news about others): only the epoch advances, so local
// caches revalidate while remote caches of *this* node's view stay valid.
func (m *Manager) observeLocked(level int) {
	m.epochs[level]++
	if m.epochHook != nil {
		m.epochHook(level)
	}
}

// ---- RPC dispatch ----

// HandleRPC serves one membership RPC (called by the node daemon's handler).
func (m *Manager) HandleRPC(ctx context.Context, method string, body []byte) ([]byte, error) {
	switch method {
	case MethodJoin:
		req, err := decodeJoinReq(body)
		if err != nil {
			return nil, err
		}
		return m.handleJoin(req)
	case MethodHandoff:
		req, err := decodeHandoffReq(body)
		if err != nil {
			return nil, err
		}
		return nil, m.handleHandoff(req)
	case MethodPing:
		req, err := decodePingReq(body)
		if err != nil {
			return nil, err
		}
		return m.handlePing(req)
	case MethodTakeover:
		msg, err := decodeTakeoverMsg(body)
		if err != nil {
			return nil, err
		}
		return nil, m.handleTakeover(msg)
	case MethodZones:
		upd, err := decodeZoneUpdate(body)
		if err != nil {
			return nil, err
		}
		return nil, m.handleZoneUpdate(upd)
	case MethodStoreRec:
		req, err := DecodeStoreRecReq(body)
		if err != nil {
			return nil, err
		}
		return m.handleStoreRec(req)
	default:
		return nil, fmt.Errorf("membership: unknown method %q", method)
	}
}

func (m *Manager) checkLevel(level int) error {
	if level < 0 || level >= len(m.levels) {
		return fmt.Errorf("membership: no level %d", level)
	}
	return nil
}

// ---- m.store_rec (streaming incremental publish) ----

// ApplyRecord applies one streamed record delta to this node's level state
// through the shared rules (route.UpsertRecord/DeleteRecord), so the records
// a live holder ends up with are byte-identical to the simulator node the
// same delta sequence reached. Bumps the level's revalidation version only —
// record churn is not membership churn (see bumpVersionLocked).
func (m *Manager) ApplyRecord(level int, asOwner, del bool, rec route.RecordView) error {
	if err := m.checkLevel(level); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := &m.levels[level]
	if del {
		ls.Owned, ls.Replicas, _ = route.DeleteRecord(ls.Owned, ls.Replicas, rec.Seq)
	} else {
		ls.Owned, ls.Replicas = route.UpsertRecord(ls.Owned, ls.Replicas, rec, asOwner)
	}
	m.bumpVersionLocked(level)
	return nil
}

// handleStoreRec serves one streamed record delta and acknowledges with this
// node's zones and neighbor table — the view the publisher's flood machine
// expands through.
func (m *Manager) handleStoreRec(req StoreRecReq) ([]byte, error) {
	if err := m.ApplyRecord(req.Level, req.AsOwner, req.Del, req.Rec); err != nil {
		return nil, err
	}
	m.mu.RLock()
	resp := StoreRecResp{
		ID:        m.self,
		Zones:     cloneZones(m.levels[req.Level].Zones),
		Neighbors: cloneNeighbors(m.levels[req.Level].Neighbors),
	}
	m.mu.RUnlock()
	return EncodeStoreRecResp(resp), nil
}

// ---- join ----

// Join brings a fresh node into a running cluster: for each level, route the
// join point to its current owner (starting at the bootstrap address) and ask
// the owner to split. Stale routing during churn surfaces as a not-owner
// refusal and is retried.
func (m *Manager) Join(ctx context.Context, bootstrap string, points [][]float64) error {
	if len(points) != len(m.levels) {
		return fmt.Errorf("membership: %d join points for %d levels", len(points), len(m.levels))
	}
	m.mu.RLock()
	selfAddr := m.selfAddr
	m.mu.RUnlock()
	if selfAddr == "" {
		return fmt.Errorf("membership: node %d has no serving address yet", m.self)
	}
	for l, p := range points {
		var lastErr error
		granted := false
		for attempt := 0; attempt < 8 && !granted; attempt++ {
			if attempt > 0 {
				select {
				case <-time.After(25 * time.Millisecond):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			_, ownerAddr, err := m.fabric.RouteOwner(ctx, l, bootstrap, p)
			if err != nil {
				lastErr = err
				continue
			}
			body := encodeJoinReq(JoinReq{Level: l, Joiner: m.self, Addr: selfAddr, Point: p})
			resp, err := m.fabric.Call(ctx, ownerAddr, MethodJoin, body)
			if err != nil {
				lastErr = err
				if transport.ErrorDetail(err) == DetailNotOwner || errors.Is(err, transport.ErrUnavailable) {
					continue // routing raced a zone change; re-route
				}
				return fmt.Errorf("membership: join level %d: %w", l, err)
			}
			grant, err := decodeJoinGrant(resp)
			if err != nil {
				return fmt.Errorf("membership: join level %d: %w", l, err)
			}
			m.installGrant(l, grant)
			granted = true
		}
		if !granted {
			return fmt.Errorf("membership: join level %d failed: %w", l, lastErr)
		}
	}
	return nil
}

func (m *Manager) installGrant(level int, g JoinGrant) {
	m.mu.Lock()
	ls := &m.levels[level]
	ls.Zones = g.Zones
	ls.Neighbors = g.Neighbors
	ls.Owned = g.Owned
	ls.Replicas = g.Replicas
	if g.Size > m.size {
		m.size = g.Size
	}
	for _, be := range g.Book {
		m.learnLocked(be.ID, be.Addr)
	}
	for _, nb := range ls.Neighbors {
		m.learnLocked(nb.ID, nb.Addr)
	}
	m.bumpLocked(level)
	m.mu.Unlock()
}

// handleJoin serves m.join as the owner: split the zone containing the
// point, hand the taken half (and the records that follow it) to the joiner,
// and notify the old neighborhood of both new zone sets.
func (m *Manager) handleJoin(req JoinReq) ([]byte, error) {
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return nil, fmt.Errorf("membership: node %d has left the overlay", m.self)
	}
	if err := m.checkLevel(req.Level); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	ls := &m.levels[req.Level]
	zi := -1
	for i, z := range ls.Zones {
		if z.Contains(req.Point) {
			zi = i
			break
		}
	}
	if zi < 0 {
		m.mu.Unlock()
		return nil, transport.WithDetail(
			fmt.Errorf("membership: node %d does not own point %v at level %d", m.self, req.Point, req.Level),
			DetailNotOwner)
	}

	// Split geometry and record redistribution are the shared helpers' — the
	// exact code the simulator oracle runs.
	kept, taken := route.SplitZone(ls.Zones[zi], req.Point)
	newZones := cloneZones(ls.Zones)
	newZones[zi] = kept
	joinerZones := []route.Zone{taken}
	oo, or, jo, jr := route.SplitRecords(ls.Owned, ls.Replicas, newZones, joinerZones)

	// The joiner's neighborhood: every node adjacent to the taken half was
	// adjacent to the pre-split zone, so the owner's table (plus the owner
	// itself) covers it. Lists stay sorted by construction.
	var jnb []Neighbor
	oldNeighbors := cloneNeighbors(ls.Neighbors)
	for _, nb := range oldNeighbors {
		if route.ZoneSetsAdjacent(joinerZones, nb.Zones) {
			jnb = append(jnb, nb)
		}
	}
	jnb = upsertNeighbor(jnb, Neighbor{ID: m.self, Addr: m.selfAddr, Zones: newZones})

	// The owner's new table: old entries still adjacent, plus the joiner.
	var onb []Neighbor
	for _, nb := range oldNeighbors {
		if route.ZoneSetsAdjacent(newZones, nb.Zones) {
			onb = append(onb, nb)
		}
	}
	onb = upsertNeighbor(onb, Neighbor{ID: req.Joiner, Addr: req.Addr, Zones: joinerZones})

	ls.Zones, ls.Neighbors, ls.Owned, ls.Replicas = newZones, onb, oo, or
	m.learnLocked(req.Joiner, req.Addr)
	m.bumpLocked(req.Level)

	book := make([]BookEntry, 0, len(m.book))
	for id, a := range m.book {
		book = append(book, BookEntry{ID: id, Addr: a})
	}
	sort.Slice(book, func(i, j int) bool { return book[i].ID < book[j].ID })
	grant := JoinGrant{Zones: joinerZones, Neighbors: jnb, Owned: jo, Replicas: jr, Size: m.size, Book: book}

	// Notices to the old neighborhood: the owner shrank, the joiner appeared.
	upd := ZoneUpdate{Level: req.Level, Updates: []NodeZones{
		{ID: m.self, Addr: m.selfAddr, Zones: newZones},
		{ID: req.Joiner, Addr: req.Addr, Zones: joinerZones},
	}}
	var outs []outMsg
	body := encodeZoneUpdate(upd)
	for _, nb := range oldNeighbors {
		if nb.ID == req.Joiner || m.dead[nb.ID] {
			continue
		}
		outs = append(outs, outMsg{addr: nb.Addr, method: MethodZones, body: body})
	}
	m.mu.Unlock()

	m.sendAll(outs)
	return encodeJoinGrant(grant)
}

// ---- leave ----

// Leave removes this node gracefully: per level, elect takers among the
// alive neighbors (the shared election), hand each taker its zones and the
// records that follow them, and notify the rest of the neighborhood. After
// Leave returns, the node serves no zone and should be stopped.
func (m *Manager) Leave(ctx context.Context) error {
	m.StopProbing()
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return fmt.Errorf("membership: node %d has already left", m.self)
	}
	type plannedHandoff struct {
		addr string
		req  HandoffReq
	}
	var handoffs []plannedHandoff
	var notices []outMsg
	for l := range m.levels {
		ls := &m.levels[l]
		if len(ls.Zones) == 0 {
			continue
		}
		cands := candidates(ls.Neighbors, func(id int) bool { return m.dead[id] })
		tks, ok := route.ElectTakers(ls.Zones, cands)
		if !ok {
			m.mu.Unlock()
			return fmt.Errorf("membership: node %d has no alive neighbor to hand level-%d zones to", m.self, l)
		}
		assigns, finals := replayElection(ls.Zones, cands, tks)

		// Taker zone sets with addresses, shared by handoffs and notices.
		takerIDs := make([]int, 0, len(finals))
		for id := range finals {
			takerIDs = append(takerIDs, id)
		}
		sort.Ints(takerIDs)
		var takerZones []NodeZones
		isTaker := map[int]bool{}
		for _, a := range assigns {
			isTaker[a.Taker] = true
		}
		for _, id := range takerIDs {
			if !isTaker[id] {
				continue // candidate that took nothing
			}
			takerZones = append(takerZones, NodeZones{ID: id, Addr: m.book[id], Zones: finals[id]})
		}

		perTaker := map[int]*HandoffReq{}
		takerOrder := []int{}
		getReq := func(id int) *HandoffReq {
			h := perTaker[id]
			if h == nil {
				h = &HandoffReq{Level: l, Leaver: m.self, Neighbors: cloneNeighbors(ls.Neighbors), Takers: takerZones}
				perTaker[id] = h
				takerOrder = append(takerOrder, id)
			}
			return h
		}
		for _, a := range assigns {
			h := getReq(a.Taker)
			h.Assigns = append(h.Assigns, ZoneAssign{Zone: a.Zone, Merge: a.Merge, MergeWith: a.MergeWith})
		}
		// Owned records follow the zone that contains their centroid — the
		// post-takeover owner is that zone's taker, matching the oracle's
		// global owner scan. Replicas go to every taker whose final zones
		// intersect (the receiver dedups against what it already holds).
		for _, rec := range ls.Owned {
			for i, z := range ls.Zones {
				if z.Contains(rec.Entry.Key) {
					h := getReq(assigns[i].Taker)
					h.Owned = append(h.Owned, rec)
					break
				}
			}
		}
		for _, rec := range ls.Replicas {
			for _, id := range takerOrder {
				if route.ZonesIntersect(finals[id], rec.Entry.Key, rec.Entry.Radius) {
					h := perTaker[id]
					h.Replicas = append(h.Replicas, rec)
				}
			}
		}
		for _, id := range takerOrder {
			handoffs = append(handoffs, plannedHandoff{addr: m.book[id], req: *perTaker[id]})
		}

		upd := ZoneUpdate{Level: l, Removed: []int{m.self}, Updates: takerZones}
		body := encodeZoneUpdate(upd)
		for _, nb := range ls.Neighbors {
			if isTaker[nb.ID] || m.dead[nb.ID] {
				continue
			}
			notices = append(notices, outMsg{addr: nb.Addr, method: MethodZones, body: body})
		}
	}
	m.left = true
	m.mu.Unlock()

	for _, h := range handoffs {
		body, err := encodeHandoffReq(h.req)
		if err != nil {
			return err
		}
		if _, err := m.fabric.Call(ctx, h.addr, MethodHandoff, body); err != nil {
			return fmt.Errorf("membership: handoff to %s: %w", h.addr, err)
		}
	}
	m.sendAll(notices)

	m.mu.Lock()
	for l := range m.levels {
		m.levels[l] = LevelState{}
		m.bumpLocked(l)
	}
	m.mu.Unlock()
	return nil
}

// handleHandoff serves m.handoff as an elected taker: apply the zone
// assignments, absorb the records, rewire the neighborhood, and rebroadcast
// this node's grown zone set to its own neighbors.
func (m *Manager) handleHandoff(req HandoffReq) error {
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return fmt.Errorf("membership: node %d has left the overlay", m.self)
	}
	if err := m.checkLevel(req.Level); err != nil {
		m.mu.Unlock()
		return err
	}
	ls := &m.levels[req.Level]
	zones := cloneZones(ls.Zones)
	for _, a := range req.Assigns {
		applied := false
		if a.Merge {
			if idx := indexOfZone(zones, a.MergeWith); idx >= 0 {
				if u, ok := route.UnionBox(a.Zone, zones[idx]); ok {
					zones[idx] = u
					applied = true
				}
			}
		}
		if !applied {
			zones = append(zones, a.Zone)
		}
	}
	ls.Zones = zones

	// Records: owned transfers are unconditional (the leaver's owner scan
	// already decided ownership — mirroring the oracle, which appends even
	// when the taker holds a replica of the same seq); replicas dedup against
	// what this node already holds and re-check overlap against the actual
	// post-takeover zones.
	for _, rec := range req.Owned {
		ls.Owned = append(ls.Owned, rec)
	}
	for _, rec := range req.Replicas {
		if route.ZonesIntersect(ls.Zones, rec.Entry.Key, rec.Entry.Radius) && !ls.holds(rec.Seq) {
			ls.Replicas = append(ls.Replicas, rec)
		}
	}

	// Rewire: drop the leaver, inherit its neighbors (at their post-takeover
	// zones when they are co-takers), and refresh co-taker entries.
	m.dead[req.Leaver] = true
	delete(m.fails, req.Leaver)
	delete(m.tables, req.Leaver)
	ls.Neighbors = removeNeighbor(ls.Neighbors, req.Leaver)
	takerZones := map[int][]route.Zone{}
	for _, t := range req.Takers {
		takerZones[t.ID] = t.Zones
		m.learnLocked(t.ID, t.Addr)
	}
	for _, nb := range req.Neighbors {
		if nb.ID == m.self || nb.ID == req.Leaver || m.dead[nb.ID] {
			continue
		}
		m.learnLocked(nb.ID, nb.Addr)
		zs := nb.Zones
		if tz, ok := takerZones[nb.ID]; ok {
			zs = tz
		}
		if route.ZoneSetsAdjacent(ls.Zones, zs) {
			ls.Neighbors = upsertNeighbor(ls.Neighbors, Neighbor{ID: nb.ID, Addr: m.book[nb.ID], Zones: zs})
		}
	}
	for _, t := range req.Takers {
		if t.ID == m.self || m.dead[t.ID] {
			continue
		}
		if route.ZoneSetsAdjacent(ls.Zones, t.Zones) {
			ls.Neighbors = upsertNeighbor(ls.Neighbors, Neighbor{ID: t.ID, Addr: m.book[t.ID], Zones: t.Zones})
		} else {
			ls.Neighbors = removeNeighbor(ls.Neighbors, t.ID)
		}
	}

	outs := m.rebroadcastLocked(req.Level, []int{req.Leaver})
	m.bumpLocked(req.Level)
	m.mu.Unlock()
	m.sendAll(outs)
	return nil
}

// rebroadcastLocked builds zone-update messages announcing this node's
// current zone set (and any removals) to all its neighbors at one level.
func (m *Manager) rebroadcastLocked(level int, removed []int) []outMsg {
	ls := &m.levels[level]
	upd := ZoneUpdate{Level: level, Removed: removed, Updates: []NodeZones{
		{ID: m.self, Addr: m.selfAddr, Zones: cloneZones(ls.Zones)},
	}}
	body := encodeZoneUpdate(upd)
	var outs []outMsg
	for _, nb := range ls.Neighbors {
		if m.dead[nb.ID] {
			continue
		}
		outs = append(outs, outMsg{addr: nb.Addr, method: MethodZones, body: body})
	}
	return outs
}

// handleZoneUpdate applies neighborhood news: removals mark departures;
// updates refresh or insert entries by adjacency.
func (m *Manager) handleZoneUpdate(upd ZoneUpdate) error {
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return nil
	}
	if err := m.checkLevel(upd.Level); err != nil {
		m.mu.Unlock()
		return err
	}
	ls := &m.levels[upd.Level]
	for _, id := range upd.Removed {
		m.dead[id] = true
		delete(m.fails, id)
		delete(m.tables, id)
		ls.Neighbors = removeNeighbor(ls.Neighbors, id)
	}
	for _, u := range upd.Updates {
		if u.ID == m.self || m.dead[u.ID] {
			continue
		}
		m.learnLocked(u.ID, u.Addr)
		if route.ZoneSetsAdjacent(ls.Zones, u.Zones) {
			ls.Neighbors = upsertNeighbor(ls.Neighbors, Neighbor{ID: u.ID, Addr: m.book[u.ID], Zones: u.Zones})
		} else {
			ls.Neighbors = removeNeighbor(ls.Neighbors, u.ID)
		}
	}
	m.bumpLocked(upd.Level)
	m.mu.Unlock()
	return nil
}

// ---- probing and crash takeover ----

// StartProbing launches the liveness probe loop (no-op when disabled).
func (m *Manager) StartProbing() {
	if m.opts.ProbeInterval <= 0 {
		return
	}
	m.probeMu.Lock()
	defer m.probeMu.Unlock()
	if m.probeStop != nil {
		return
	}
	stop := make(chan struct{})
	m.probeStop = stop
	m.probeWG.Add(1)
	go func() {
		defer m.probeWG.Done()
		ticker := time.NewTicker(m.opts.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				m.probeOnce(context.Background())
			}
		}
	}()
}

// StopProbing halts the probe loop and waits for the in-flight round.
// Idempotent.
func (m *Manager) StopProbing() {
	m.probeMu.Lock()
	stop := m.probeStop
	m.probeStop = nil
	m.probeMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	m.probeWG.Wait()
}

// probeOnce pings every current neighbor (union across levels) once, in
// parallel, and feeds the results into the failure detector.
func (m *Manager) probeOnce(ctx context.Context) {
	type target struct {
		id   int
		addr string
	}
	m.mu.RLock()
	if m.left {
		m.mu.RUnlock()
		return
	}
	seen := map[int]bool{}
	var targets []target
	for l := range m.levels {
		for _, nb := range m.levels[l].Neighbors {
			if nb.ID == m.self || seen[nb.ID] || m.dead[nb.ID] || nb.Addr == "" {
				continue
			}
			seen[nb.ID] = true
			targets = append(targets, target{id: nb.ID, addr: nb.Addr})
		}
	}
	selfAddr := m.selfAddr
	m.mu.RUnlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })

	body := encodePingReq(PingReq{From: m.self, Addr: selfAddr})
	var wg sync.WaitGroup
	for _, tg := range targets {
		wg.Add(1)
		go func(tg target) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, m.opts.ProbeTimeout)
			defer cancel()
			resp, err := m.fabric.Call(cctx, tg.addr, MethodPing, body)
			var tables []LevelTable
			if err == nil {
				tables, err = decodePingResp(resp)
			}
			m.noteProbe(tg.id, tables, err)
		}(tg)
	}
	wg.Wait()
}

// noteProbe feeds one probe outcome into the failure detector. A remote
// (application-level) error still proves the peer alive. FailAfter
// consecutive failures declare the peer dead and trigger the takeover.
func (m *Manager) noteProbe(id int, tables []LevelTable, err error) {
	var re *transport.RemoteError
	alive := err == nil || errors.As(err, &re)
	m.mu.Lock()
	if m.left || m.dead[id] {
		m.mu.Unlock()
		return
	}
	if alive {
		m.fails[id] = 0
		if err == nil {
			// Probing doubles as churn observation: a neighbor whose
			// self-report changed since the last round mutated (someone
			// joined, left, or crashed near it), so any view cached from it
			// — or from nodes it reported on — must revalidate. This extends
			// epoch coverage beyond the protocol messages this node receives
			// directly, to everything its probe horizon can see.
			if prev, ok := m.tables[id]; ok {
				for l := 0; l < len(m.levels); l++ {
					if !levelTableEqual(tableAt(prev, l), tableAt(tables, l)) {
						m.observeLocked(l)
					}
				}
			}
			m.tables[id] = tables
		}
		m.mu.Unlock()
		return
	}
	m.fails[id]++
	if m.fails[id] < m.opts.FailAfter {
		m.mu.Unlock()
		return
	}
	outs, recoveries := m.declareDeadLocked(id)
	m.mu.Unlock()
	m.sendAll(outs)
	go m.runRecoveries(recoveries)
}

// declareDeadLocked runs the crash takeover for peer c: per level, elect
// takers from c's last self-reported table (so every detector that probed c
// reaches the same election), update this node's own table, and — when this
// node is a taker — claim the zones, plan their republishes, and announce the
// claims to both neighborhoods.
func (m *Manager) declareDeadLocked(c int) ([]outMsg, []recoveryPlan) {
	m.dead[c] = true
	table := m.tables[c]
	delete(m.tables, c)
	delete(m.fails, c)

	var outs []outMsg
	var recoveries []recoveryPlan
	for l := range m.levels {
		ls := &m.levels[l]
		idx := findNeighbor(ls.Neighbors, c)
		if idx < 0 {
			continue
		}
		// Every branch below mutates this level (at minimum the crashed
		// neighbor is dropped), so the takeover is one churn event here.
		m.bumpLocked(l)
		czones := ls.Neighbors[idx].Zones
		var ctable []Neighbor
		if l < len(table) {
			if len(table[l].Zones) > 0 {
				czones = table[l].Zones
			}
			ctable = table[l].Neighbors
		}
		if len(ctable) == 0 {
			// Never heard a ping from c: fall back to local knowledge — c's
			// neighbors we also neighbor, plus ourselves. Divergent detectors
			// are reconciled by the takeover conflict rule.
			for _, nb := range ls.Neighbors {
				if nb.ID != c && route.ZoneSetsAdjacent(czones, nb.Zones) {
					ctable = upsertNeighbor(ctable, nb)
				}
			}
			ctable = upsertNeighbor(ctable, Neighbor{ID: m.self, Addr: m.selfAddr, Zones: cloneZones(ls.Zones)})
		}
		cands := candidates(ctable, func(id int) bool { return id == c || m.dead[id] })
		tks, ok := route.ElectTakers(czones, cands)
		if !ok {
			ls.Neighbors = removeNeighbor(ls.Neighbors, c)
			continue
		}
		assigns, finals := replayElection(czones, cands, tks)

		// Remember c's neighborhood before rewiring (announcement targets).
		cNeighbors := cloneNeighbors(ctable)
		ls.Neighbors = removeNeighbor(ls.Neighbors, c)

		// Apply our own claims first, snapshotting for conflict rollback.
		selfTook := false
		var claimed []route.Zone
		for _, a := range assigns {
			if a.Taker != m.self {
				continue
			}
			m.claims[claimKey(l, a.Zone)] = claim{level: l, zone: a.Zone, prevZones: cloneZones(ls.Zones)}
			zones := cloneZones(ls.Zones)
			applied := false
			if a.Merge {
				if zi := indexOfZone(zones, a.MergeWith); zi >= 0 {
					if u, ok := route.UnionBox(a.Zone, zones[zi]); ok {
						zones[zi] = u
						applied = true
					}
				}
			}
			if !applied {
				zones = append(zones, a.Zone)
			}
			ls.Zones = zones
			claimed = append(claimed, a.Zone)
			recoveries = append(recoveries, recoveryPlan{level: l, zone: a.Zone})
			selfTook = true
		}

		// Update our table: other takers at their final zones, by adjacency.
		for takerID, fz := range finals {
			if takerID == m.self || m.dead[takerID] {
				continue
			}
			addr := m.book[takerID]
			if addr == "" {
				if i := findNeighbor(cNeighbors, takerID); i >= 0 {
					addr = cNeighbors[i].Addr
					m.learnLocked(takerID, addr)
				}
			}
			if route.ZoneSetsAdjacent(ls.Zones, fz) {
				ls.Neighbors = upsertNeighbor(ls.Neighbors, Neighbor{ID: takerID, Addr: addr, Zones: fz})
			} else {
				ls.Neighbors = removeNeighbor(ls.Neighbors, takerID)
			}
		}

		if !selfTook {
			continue
		}
		// Inherit c's neighbors that now adjoin our grown zones.
		for _, nb := range cNeighbors {
			if nb.ID == m.self || nb.ID == c || m.dead[nb.ID] {
				continue
			}
			m.learnLocked(nb.ID, nb.Addr)
			zs := nb.Zones
			if fz, ok := finals[nb.ID]; ok {
				zs = fz
			}
			if route.ZoneSetsAdjacent(ls.Zones, zs) {
				ls.Neighbors = upsertNeighbor(ls.Neighbors, Neighbor{ID: nb.ID, Addr: m.book[nb.ID], Zones: zs})
			}
		}
		// Announce each claim to c's neighborhood and our own.
		annTargets := map[int]string{}
		for _, nb := range cNeighbors {
			if nb.ID != m.self && nb.ID != c && !m.dead[nb.ID] && nb.Addr != "" {
				annTargets[nb.ID] = nb.Addr
			}
		}
		for _, nb := range ls.Neighbors {
			if nb.ID != m.self && nb.ID != c && !m.dead[nb.ID] && nb.Addr != "" {
				annTargets[nb.ID] = nb.Addr
			}
		}
		ids := make([]int, 0, len(annTargets))
		for id := range annTargets {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, z := range claimed {
			body := encodeTakeoverMsg(TakeoverMsg{
				Level: l, Crashed: c, Zone: z,
				Taker: m.self, TakerAddr: m.selfAddr, TakerZones: cloneZones(ls.Zones),
			})
			for _, id := range ids {
				outs = append(outs, outMsg{addr: annTargets[id], method: MethodTakeover, body: body})
			}
		}
	}
	// The counter is raised under the lock that records the claims, so Busy
	// never reads false between a takeover and its republish.
	m.recovering += len(recoveries)
	return outs, recoveries
}

func claimKey(level int, z route.Zone) string {
	return fmt.Sprintf("%d:%v", level, z)
}

// handleTakeover applies a claim announcement: mark the crashed node dead,
// update the taker's entry, and resolve double-claims (two detectors electing
// themselves from divergent knowledge) in favor of the lower node id.
//
// First news of a crash also triggers this node's own election pass: when the
// crashed node held several zones with different elected takers, each taker
// must claim its own zone even if another taker's announcement arrives before
// its own detector fires — otherwise the remaining zones would be orphaned.
func (m *Manager) handleTakeover(msg TakeoverMsg) error {
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return nil
	}
	if err := m.checkLevel(msg.Level); err != nil {
		m.mu.Unlock()
		return err
	}
	var outs []outMsg
	var recoveries []recoveryPlan
	if !m.dead[msg.Crashed] {
		outs, recoveries = m.declareDeadLocked(msg.Crashed)
	}
	ls := &m.levels[msg.Level]
	m.dead[msg.Crashed] = true
	delete(m.fails, msg.Crashed)
	delete(m.tables, msg.Crashed)
	ls.Neighbors = removeNeighbor(ls.Neighbors, msg.Crashed)
	m.learnLocked(msg.Taker, msg.TakerAddr)

	if msg.Taker != m.self {
		ck := claimKey(msg.Level, msg.Zone)
		if cl, ok := m.claims[ck]; ok && route.ZonesContain(ls.Zones, zoneCenter(msg.Zone)) {
			if msg.Taker < m.self {
				// Lost the conflict: restore the pre-claim zone set, refilter
				// records against it, tell the neighborhood. A pending
				// republish for the zone self-cancels (recoverZone re-checks
				// ownership before merging).
				ls.Zones = cl.prevZones
				refilterRecords(ls)
				delete(m.claims, ck)
				outs = append(outs, m.rebroadcastLocked(msg.Level, nil)...)
			} else {
				// Won: keep the zone; the sender relinquishes when our own
				// announcement reaches it. Don't adopt its claimed zone set.
				m.bumpLocked(msg.Level)
				m.mu.Unlock()
				m.sendAll(outs)
				go m.runRecoveries(recoveries)
				return nil
			}
		}
		if route.ZoneSetsAdjacent(ls.Zones, msg.TakerZones) {
			ls.Neighbors = upsertNeighbor(ls.Neighbors, Neighbor{ID: msg.Taker, Addr: msg.TakerAddr, Zones: msg.TakerZones})
		} else {
			ls.Neighbors = removeNeighbor(ls.Neighbors, msg.Taker)
		}
	}
	m.bumpLocked(msg.Level)
	m.mu.Unlock()
	m.sendAll(outs)
	go m.runRecoveries(recoveries)
	return nil
}

// refilterRecords re-derives a level's stores after its zone set shrank
// (conflict rollback): owned records keep ownership while their centroid
// stays inside, demote to replicas while their sphere still overlaps, and
// drop otherwise; replicas drop when their sphere no longer overlaps.
func refilterRecords(ls *LevelState) {
	var owned, demoted []route.RecordView
	for _, rec := range ls.Owned {
		switch {
		case route.ZonesContain(ls.Zones, rec.Entry.Key):
			owned = append(owned, rec)
		case route.ZonesIntersect(ls.Zones, rec.Entry.Key, rec.Entry.Radius):
			demoted = append(demoted, rec)
		}
	}
	var replicas []route.RecordView
	for _, rec := range ls.Replicas {
		if route.ZonesIntersect(ls.Zones, rec.Entry.Key, rec.Entry.Radius) {
			replicas = append(replicas, rec)
		}
	}
	ls.Owned = owned
	ls.Replicas = append(replicas, demoted...)
}

// handlePing answers a liveness probe with this node's per-level state
// snapshot (the detector's election input).
func (m *Manager) handlePing(req PingReq) ([]byte, error) {
	m.mu.Lock()
	if m.left {
		m.mu.Unlock()
		return nil, fmt.Errorf("membership: node %d has left the overlay", m.self)
	}
	m.learnLocked(req.From, req.Addr)
	tables := make([]LevelTable, len(m.levels))
	for l := range m.levels {
		tables[l] = LevelTable{
			Zones:     cloneZones(m.levels[l].Zones),
			Neighbors: cloneNeighbors(m.levels[l].Neighbors),
		}
	}
	m.mu.Unlock()
	return encodePingResp(tables), nil
}

// runRecoveries executes the republisher for each claimed zone: search the
// zone's circumsphere (where every surviving replica of an affected record
// must live) and merge the finds — the shared route.ApplyRecovery, on the
// same seq-sorted batch the oracle's global scan produces. The recovering
// counter was raised by declareDeadLocked; this drains it.
func (m *Manager) runRecoveries(plans []recoveryPlan) {
	for _, p := range plans {
		m.recoverZone(p)
		m.mu.Lock()
		m.recovering--
		m.mu.Unlock()
	}
}

func (m *Manager) recoverZone(p recoveryPlan) {
	center, radius := p.zone.Circumsphere()
	var found []route.RecordView
	var err error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		found, err = m.fabric.Collect(ctx, p.level, center, radius)
		cancel()
		if err == nil {
			break
		}
	}
	if err != nil {
		return // cluster too broken to recover right now; records stay lost
	}
	// Canonical batch: seq-sorted, deduplicated (Collect should already
	// guarantee this; enforce it so ApplyRecovery's contract always holds).
	sort.SliceStable(found, func(i, j int) bool { return found[i].Seq < found[j].Seq })
	dedup := found[:0]
	for i, rec := range found {
		if i > 0 && rec.Seq == found[i-1].Seq {
			continue
		}
		dedup = append(dedup, rec)
	}
	m.mu.Lock()
	ls := &m.levels[p.level]
	// Only merge if we still hold the zone (a conflict may have taken it).
	if route.ZonesContain(ls.Zones, zoneCenter(p.zone)) {
		ls.Owned, ls.Replicas, _ = route.ApplyRecovery(ls.Zones, p.zone, ls.Owned, ls.Replicas, dedup)
		m.bumpLocked(p.level)
	}
	m.mu.Unlock()
}

// sendAll delivers protocol messages best-effort and sequentially (the
// transport client retries transient faults; a peer that died mid-protocol
// will be handled by its own detectors).
func (m *Manager) sendAll(msgs []outMsg) {
	for _, msg := range msgs {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		m.fabric.Call(ctx, msg.addr, msg.method, msg.body) //nolint:errcheck
		cancel()
	}
}
