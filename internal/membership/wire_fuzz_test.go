package membership

import (
	"bytes"
	"testing"

	"hyperm/internal/core"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
)

// Fuzz target for the store_rec delta codec — the wire format streaming
// publish trusts for byte-identity with the simulator oracle. The invariant
// is encode/decode idempotence on the byte level: any input the decoder
// accepts must re-encode to bytes that decode to the same value and encode
// back to the identical message (bit-level float comparison, so NaN payloads
// and negative zeros cannot hide behind value equality).

// storeRecSeed builds one valid request body for the fuzz corpus.
func storeRecSeed(seq int, del, asOwner bool, key, center []float64) []byte {
	b, err := EncodeStoreRecReq(StoreRecReq{
		Level: 1, Del: del, AsOwner: asOwner,
		Rec: route.RecordView{
			Seq: seq,
			Entry: overlay.Entry{
				Key: key, Radius: 0.25,
				Payload: core.ClusterRef{Peer: 3, Level: 1, Index: 2, Center: center, Radius: 0.5, Items: 7},
			},
		},
	})
	if err != nil {
		panic(err)
	}
	return b
}

func FuzzStoreRecRoundTrip(f *testing.F) {
	f.Add(storeRecSeed(42, false, true, []float64{0.1, 0.9}, []float64{1, 2, 3, 4}))
	f.Add(storeRecSeed(1<<40+5, true, false, []float64{0.5}, nil))
	f.Add(storeRecSeed(0, false, false, nil, []float64{-0.25}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := DecodeStoreRecReq(raw)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		b1, err := EncodeStoreRecReq(req)
		if err != nil {
			t.Fatalf("decoded request failed to re-encode: %v", err)
		}
		req2, err := DecodeStoreRecReq(b1)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		b2, err := EncodeStoreRecReq(req2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("store_rec round-trip not a fixed point:\nfirst:  %x\nsecond: %x", b1, b2)
		}
		if req2.Level != req.Level || req2.Del != req.Del || req2.AsOwner != req.AsOwner || req2.Rec.Seq != req.Rec.Seq {
			t.Fatalf("scalar fields changed across round-trip: %+v vs %+v", req, req2)
		}
	})
}
