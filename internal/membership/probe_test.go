package membership

import (
	"context"
	"testing"
	"time"

	"hyperm/internal/route"
)

// neighborsOf returns the ids currently holding id in their level-0 table.
func neighborsOf(f *fakeFabric, id int) []int {
	var out []int
	for _, m := range f.alive() {
		if findNeighbor(m.View(0).Neighbors, id) >= 0 {
			out = append(out, m.Self())
		}
	}
	return out
}

// TestProbeFailureClassification drives the failure detector through the
// slow-vs-dead edge cases: timeouts from a slow-but-alive peer must never
// accumulate into a takeover once the peer answers again, while a peer that
// stays unreachable — slow first or abruptly gone — must be declared dead
// after exactly FailAfter consecutive failures, with its zone taken over and
// the cluster state matching the simulator's crash of the same node.
func TestProbeFailureClassification(t *testing.T) {
	const nodes, dim, victim = 8, 2, 5
	opts := Options{FailAfter: 3, ProbeTimeout: 10 * time.Millisecond}
	cases := []struct {
		name string
		// rounds scripts the victim's behavior per probe round:
		// 's' stalls (timeout), 'u' answers (up), 'x' is crashed.
		rounds   string
		wantDead bool
	}{
		// Two timeouts, a recovery that resets the counter, two more
		// timeouts: never FailAfter consecutive failures, never declared.
		{name: "slow-but-alive", rounds: "ssuss", wantDead: false},
		// Dead on the floor: exactly FailAfter unreachable rounds.
		{name: "dead", rounds: "xxx", wantDead: true},
		// Slow, then the process dies: the timeout failures and the
		// connection failures accumulate into one consecutive run.
		{name: "slow-then-dead", rounds: "ssx", wantDead: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o, f, _ := buildPair(t, 3, nodes, dim, 20, opts)
			addr := testAddr(victim)
			probeRound(f) // warm detector tables before any failure
			watchers := neighborsOf(f, victim)
			for _, r := range tc.rounds {
				switch r {
				case 's':
					f.setDelay(addr, true)
				case 'u':
					f.setDelay(addr, false)
				case 'x':
					f.setDelay(addr, false)
					f.crash(addr)
				}
				probeRound(f)
			}
			waitIdle(t, f)

			if tc.wantDead {
				if nbs := neighborsOf(f, victim); len(nbs) != 0 {
					t.Fatalf("victim still in neighbor tables of %v after takeover", nbs)
				}
				// Every node that had the victim in its table — the ones
				// whose routing would break — must have learned of the
				// crash; distant nodes never needed to.
				for _, id := range watchers {
					if m, _, _ := f.lookup(testAddr(id)); !m.IsDead(victim) {
						t.Fatalf("neighbor %d never learned of the crash", id)
					}
				}
				if _, err := o.Crash(victim); err != nil {
					t.Fatalf("oracle crash: %v", err)
				}
			} else {
				if m, _, _ := f.lookup(addr); m.IsDead(victim) {
					t.Fatal("victim wrongly marked dead on its own manager's peers")
				}
				for _, m := range f.alive() {
					if m.IsDead(victim) {
						t.Fatalf("node %d declared the slow-but-alive victim dead", m.Self())
					}
				}
			}
			comparePair(t, tc.name, o, f)
		})
	}
}

// TestProbeTimeoutRacesGracefulLeave pins the detector's behavior when a
// leave notice and a probe failure race: a detector one failure short of
// declaring a peer dead processes the peer's graceful departure, then the
// late probe timeout lands. The failure must be discarded — no election, no
// claim — because the records already moved through the handoff, and a
// takeover would duplicate them.
func TestProbeTimeoutRacesGracefulLeave(t *testing.T) {
	const nodes, dim = 8, 2
	opts := Options{FailAfter: 3, ProbeTimeout: 10 * time.Millisecond}
	o, f, mgrs := buildPair(t, 11, nodes, dim, 20, opts)
	probeRound(f)

	leaver := 2
	nbs := neighborsOf(f, leaver)
	if len(nbs) == 0 {
		t.Fatal("leaver has no neighbors")
	}
	det := mgrs[nbs[0]]

	// The detector has already seen FailAfter-1 probe timeouts.
	det.mu.Lock()
	det.fails[leaver] = opts.FailAfter - 1
	det.mu.Unlock()

	if _, err := o.Leave(leaver); err != nil {
		t.Fatal(err)
	}
	if err := mgrs[leaver].Leave(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.crash(testAddr(leaver))

	// The in-flight probe fails after the leave was processed.
	det.noteProbe(leaver, nil, context.DeadlineExceeded)
	waitIdle(t, f)

	det.mu.RLock()
	claims := len(det.claims)
	det.mu.RUnlock()
	if claims != 0 {
		t.Fatalf("late probe failure raised %d takeover claims after a graceful leave", claims)
	}
	comparePair(t, "post-race", o, f)
}

// TestConflictingTakeoversConverge forces the double-claim scenario: two
// detectors with divergent cached knowledge each elect themselves for the
// same crashed zone and apply the claim before either announcement crosses.
// The lower node id must keep the zone; the higher must roll back to its
// pre-claim zone set and refilter its records, leaving a valid tiling with
// no record owned twice.
func TestConflictingTakeoversConverge(t *testing.T) {
	const nodes, dim = 8, 2
	opts := Options{FailAfter: 1, ProbeTimeout: 10 * time.Millisecond}
	_, f, mgrs := buildPair(t, 5, nodes, dim, 20, opts)
	probeRound(f)

	// Find a single-zone victim with at least two neighbors.
	victim := -1
	for _, m := range f.alive() {
		ls := m.View(0)
		if len(ls.Zones) == 1 && len(ls.Neighbors) >= 2 {
			victim = m.Self()
			break
		}
	}
	if victim < 0 {
		t.Fatal("no single-zone node with two neighbors")
	}
	vZones := mgrs[victim].View(0).Zones
	nbs := neighborsOf(f, victim)
	a, b := mgrs[nbs[0]], mgrs[nbs[1]]
	if a.Self() > b.Self() {
		a, b = b, a
	}

	// Divergent knowledge: each detector believes it is the victim's only
	// neighbor, so each elects itself for the victim's zone.
	rig := func(m *Manager) {
		m.mu.Lock()
		m.tables[victim] = []LevelTable{{
			Zones:     cloneZones(vZones),
			Neighbors: []Neighbor{{ID: m.self, Addr: m.selfAddr, Zones: cloneZones(m.levels[0].Zones)}},
		}}
		m.mu.Unlock()
	}
	rig(a)
	rig(b)
	f.crash(testAddr(victim))

	// Both claims land before either announcement is delivered.
	a.mu.Lock()
	outsA, recA := a.declareDeadLocked(victim)
	a.mu.Unlock()
	b.mu.Lock()
	outsB, recB := b.declareDeadLocked(victim)
	b.mu.Unlock()
	for _, m := range []*Manager{a, b} {
		if !route.ZonesContain(m.View(0).Zones, zoneCenter(vZones[0])) {
			t.Fatalf("node %d did not claim the zone before the conflict", m.Self())
		}
	}
	bBefore := b.View(0)

	// The announcements cross: b hears a's claim, a hears b's.
	annA := encodeTakeoverMsg(TakeoverMsg{
		Level: 0, Crashed: victim, Zone: vZones[0],
		Taker: a.Self(), TakerAddr: testAddr(a.Self()), TakerZones: a.View(0).Zones,
	})
	annB := encodeTakeoverMsg(TakeoverMsg{
		Level: 0, Crashed: victim, Zone: vZones[0],
		Taker: b.Self(), TakerAddr: testAddr(b.Self()), TakerZones: bBefore.Zones,
	})
	if _, err := b.HandleRPC(context.Background(), MethodTakeover, annA); err != nil {
		t.Fatal(err)
	}
	if _, err := a.HandleRPC(context.Background(), MethodTakeover, annB); err != nil {
		t.Fatal(err)
	}
	// Deliver the non-crossing announcements too, then let republishes run.
	a.sendAll(outsA)
	b.sendAll(outsB)
	go a.runRecoveries(recA)
	go b.runRecoveries(recB)
	waitIdle(t, f)

	center := zoneCenter(vZones[0])
	if !route.ZonesContain(a.View(0).Zones, center) {
		t.Fatalf("lower-id claimant %d lost the zone", a.Self())
	}
	if route.ZonesContain(b.View(0).Zones, center) {
		t.Fatalf("higher-id claimant %d kept the conflicted zone", b.Self())
	}
	b.mu.RLock()
	bClaims := len(b.claims)
	b.mu.RUnlock()
	if bClaims != 0 {
		t.Fatalf("loser still holds %d claims", bClaims)
	}

	// The overall tiling must be whole again, and no record owned twice.
	var tiles [][]route.Zone
	ownedBy := map[int]int{}
	for _, m := range f.alive() {
		ls := m.View(0)
		tiles = append(tiles, ls.Zones)
		for _, rec := range ls.Owned {
			if prev, dup := ownedBy[rec.Seq]; dup {
				t.Fatalf("record %d owned by both %d and %d", rec.Seq, prev, m.Self())
			}
			ownedBy[rec.Seq] = m.Self()
		}
	}
	if !route.VerifyTiling(tiles) {
		t.Fatal("zones do not tile after conflict resolution")
	}
}
