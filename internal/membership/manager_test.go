package membership

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"hyperm/internal/can"
	"hyperm/internal/core"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
	"hyperm/internal/transport"
)

// fakeFabric wires managers together in-process: calls dispatch synchronously
// through the real wire codecs, Collect and RouteOwner answer from global
// state the way the simulator's scans do. Peers marked down behave like
// crashed processes (transport-unavailable).
type fakeFabric struct {
	mu   sync.Mutex
	mgrs map[string]*Manager
	down map[string]bool
	// delay, when set for an address, stalls calls until the context dies —
	// the slow-but-alive peer of the probe edge-case tests.
	delay map[string]bool
}

func newFakeFabric() *fakeFabric {
	return &fakeFabric{mgrs: map[string]*Manager{}, down: map[string]bool{}, delay: map[string]bool{}}
}

func (f *fakeFabric) add(addr string, m *Manager)   { f.mu.Lock(); f.mgrs[addr] = m; f.mu.Unlock() }
func (f *fakeFabric) crash(addr string)             { f.mu.Lock(); f.down[addr] = true; f.mu.Unlock() }
func (f *fakeFabric) setDelay(addr string, on bool) { f.mu.Lock(); f.delay[addr] = on; f.mu.Unlock() }
func (f *fakeFabric) lookup(addr string) (*Manager, bool, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.mgrs[addr]
	return m, ok && !f.down[addr], f.delay[addr]
}

func (f *fakeFabric) Call(ctx context.Context, addr, method string, body []byte) ([]byte, error) {
	m, up, delayed := f.lookup(addr)
	if delayed {
		<-ctx.Done()
		return nil, fmt.Errorf("fake: %s stalled: %w", addr, ctx.Err())
	}
	if !up || m == nil {
		return nil, fmt.Errorf("fake: %s is down: %w", addr, transport.ErrUnavailable)
	}
	resp, err := m.HandleRPC(ctx, method, body)
	if err != nil {
		// Mirror the real transport: handler refusals arrive as remote
		// errors carrying the machine-readable detail token.
		return nil, &transport.RemoteError{Msg: err.Error(), Detail: transport.ErrorDetail(err)}
	}
	return resp, nil
}

// alive returns the up managers sorted by id.
func (f *fakeFabric) alive() []*Manager {
	f.mu.Lock()
	var out []*Manager
	for addr, m := range f.mgrs {
		if !f.down[addr] && !m.Left() {
			out = append(out, m)
		}
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Self() < out[j].Self() })
	return out
}

// Collect mirrors the simulator's global scan: alive nodes ascending id,
// owned before replicas, sphere-intersection filter, seq-dedup, seq-sort.
func (f *fakeFabric) Collect(ctx context.Context, level int, key []float64, radius float64) ([]route.RecordView, error) {
	seen := map[int]bool{}
	var out []route.RecordView
	add := func(recs []route.RecordView) {
		for _, rec := range recs {
			if seen[rec.Seq] {
				continue
			}
			if route.TorusDist(rec.Entry.Key, key) <= rec.Entry.Radius+radius {
				seen[rec.Seq] = true
				out = append(out, rec)
			}
		}
	}
	for _, m := range f.alive() {
		ls := m.View(level)
		add(ls.Owned)
		add(ls.Replicas)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

func (f *fakeFabric) RouteOwner(ctx context.Context, level int, bootstrap string, key []float64) (int, string, error) {
	for _, m := range f.alive() {
		ls := m.View(level)
		if route.ZonesContain(ls.Zones, key) {
			addr, err := m.Addr(m.Self())
			return m.Self(), addr, err
		}
	}
	return 0, "", fmt.Errorf("fake: no alive owner of %v", key)
}

func testAddr(id int) string { return fmt.Sprintf("n%d", id) }

// levelFromView converts a simulator node view into manager level state,
// attaching the test address scheme to neighbor entries.
func levelFromView(v can.NodeView) LevelState {
	ls := LevelState{
		Zones:    append([]route.Zone(nil), v.Zones...),
		Owned:    append([]route.RecordView(nil), v.Owned...),
		Replicas: append([]route.RecordView(nil), v.Replicas...),
	}
	for _, nb := range v.Neighbors {
		ls.Neighbors = append(ls.Neighbors, Neighbor{ID: nb.ID, Addr: testAddr(nb.ID), Zones: nb.Zones})
	}
	return ls
}

// probeRound makes every alive manager probe its neighbors once, ascending
// id — the deterministic stand-in for the concurrent probe tickers.
func probeRound(f *fakeFabric) {
	for _, m := range f.alive() {
		m.probeOnce(context.Background())
	}
}

func waitIdle(t *testing.T, f *fakeFabric) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		busy := false
		for _, m := range f.alive() {
			if m.Busy() {
				busy = true
			}
		}
		if !busy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("recoveries never quiesced")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func insertSpheres(o *can.Overlay, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		key := make([]float64, o.Dim())
		for d := range key {
			key[d] = rng.Float64()
		}
		radius := rng.Float64() * 0.15
		o.InsertSphere(rng.Intn(o.Size()), overlay.Entry{
			Key: key, Radius: radius,
			Payload: core.ClusterRef{Peer: i % o.Size(), Level: 0, Index: i, Center: key, Radius: radius, Items: i + 1},
		})
	}
}

// buildPair constructs a simulator overlay and a live manager per node
// initialized from its view — the starting point of every parity test.
func buildPair(t *testing.T, seed int64, nodes, dim, spheres int, opts Options) (*can.Overlay, *fakeFabric, map[int]*Manager) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	o, err := can.Build(can.Config{Nodes: nodes, Dim: dim, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	insertSpheres(o, rng, spheres)

	f := newFakeFabric()
	mgrs := map[int]*Manager{}
	addrs := make([]string, nodes)
	for id := 0; id < nodes; id++ {
		addrs[id] = testAddr(id)
	}
	for id := 0; id < nodes; id++ {
		m := NewManager(id, nodes, []LevelState{levelFromView(o.View(id))}, f, opts)
		m.SetSelfAddr(testAddr(id))
		m.SeedBook(addrs)
		f.add(testAddr(id), m)
		mgrs[id] = m
	}
	return o, f, mgrs
}

// compareLevel requires a manager's level state to be byte-identical to the
// oracle node's view: zones in order, neighbor ids/zones/addresses in order,
// and record stores in storage order.
func compareLevel(t *testing.T, tag string, want can.NodeView, got LevelState) {
	t.Helper()
	if len(got.Zones) != len(want.Zones) {
		t.Fatalf("%s: %d zones, oracle has %d\n live: %v\n oracle: %v", tag, len(got.Zones), len(want.Zones), got.Zones, want.Zones)
	}
	for i := range want.Zones {
		if !zoneEqual(got.Zones[i], want.Zones[i]) {
			t.Fatalf("%s: zone %d = %v, oracle %v", tag, i, got.Zones[i], want.Zones[i])
		}
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		gotIDs := make([]int, len(got.Neighbors))
		for i, nb := range got.Neighbors {
			gotIDs[i] = nb.ID
		}
		wantIDs := make([]int, len(want.Neighbors))
		for i, nb := range want.Neighbors {
			wantIDs[i] = nb.ID
		}
		t.Fatalf("%s: neighbors %v, oracle %v", tag, gotIDs, wantIDs)
	}
	for i, nb := range want.Neighbors {
		g := got.Neighbors[i]
		if g.ID != nb.ID {
			t.Fatalf("%s: neighbor[%d] id %d, oracle %d", tag, i, g.ID, nb.ID)
		}
		if g.Addr != testAddr(nb.ID) {
			t.Fatalf("%s: neighbor %d addr %q, want %q", tag, nb.ID, g.Addr, testAddr(nb.ID))
		}
		if len(g.Zones) != len(nb.Zones) {
			t.Fatalf("%s: neighbor %d has %d zones, oracle %d\n live: %v\n oracle: %v",
				tag, nb.ID, len(g.Zones), len(nb.Zones), g.Zones, nb.Zones)
		}
		for zi := range nb.Zones {
			if !zoneEqual(g.Zones[zi], nb.Zones[zi]) {
				t.Fatalf("%s: neighbor %d zone %d = %v, oracle %v", tag, nb.ID, zi, g.Zones[zi], nb.Zones[zi])
			}
		}
	}
	compareRecords(t, tag+" owned", want.Owned, got.Owned)
	compareRecords(t, tag+" replicas", want.Replicas, got.Replicas)
}

func compareRecords(t *testing.T, tag string, want, got []route.RecordView) {
	t.Helper()
	if len(got) != len(want) {
		gotSeqs := make([]int, len(got))
		for i, r := range got {
			gotSeqs[i] = r.Seq
		}
		wantSeqs := make([]int, len(want))
		for i, r := range want {
			wantSeqs[i] = r.Seq
		}
		t.Fatalf("%s: seqs %v, oracle %v", tag, gotSeqs, wantSeqs)
	}
	for i := range want {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("%s: record[%d] seq %d, oracle %d", tag, i, got[i].Seq, want[i].Seq)
		}
		w, ok1 := want[i].Entry.Payload.(core.ClusterRef)
		g, ok2 := got[i].Entry.Payload.(core.ClusterRef)
		if !ok1 || !ok2 {
			t.Fatalf("%s: record[%d] payloads %T vs %T", tag, i, want[i].Entry.Payload, got[i].Entry.Payload)
		}
		if w.Peer != g.Peer || w.Level != g.Level || w.Index != g.Index || w.Items != g.Items || w.Radius != g.Radius {
			t.Fatalf("%s: record[%d] payload %+v, oracle %+v", tag, i, g, w)
		}
	}
}

func comparePair(t *testing.T, tag string, o *can.Overlay, f *fakeFabric) {
	t.Helper()
	var tiles [][]route.Zone
	for _, m := range f.alive() {
		ls := m.View(0)
		compareLevel(t, fmt.Sprintf("%s node %d", tag, m.Self()), o.View(m.Self()), ls)
		tiles = append(tiles, ls.Zones)
	}
	if !route.VerifyTiling(tiles) {
		t.Fatalf("%s: live zones do not tile the torus", tag)
	}
}

// TestProtocolMatchesOracle replays a mixed churn schedule — joins at chosen
// points, graceful leaves, crashes detected via probes — through both the
// live protocol (fake fabric, real codecs) and the simulator, and requires
// every surviving node's zones, neighbor tables, and record stores to come
// out byte-identical.
func TestProtocolMatchesOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const nodes, dim = 10, 2
			o, f, mgrs := buildPair(t, seed, nodes, dim, 30, Options{FailAfter: 2})
			rng := rand.New(rand.NewSource(seed * 977))
			ctx := context.Background()
			nextID := nodes
			aliveIDs := map[int]bool{}
			for id := 0; id < nodes; id++ {
				aliveIDs[id] = true
			}
			pick := func() int {
				ids := make([]int, 0, len(aliveIDs))
				for id := range aliveIDs {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				return ids[rng.Intn(len(ids))]
			}
			bootstrap := func() string {
				ids := make([]int, 0, len(aliveIDs))
				for id := range aliveIDs {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				return testAddr(ids[0])
			}

			// Tables must be warm before the first crash: a live detector
			// elects from the crashed node's last self-report.
			probeRound(f)
			comparePair(t, "pre-churn", o, f)

			const steps = 24
			for step := 0; step < steps; step++ {
				switch op := rng.Intn(4); {
				case op <= 1: // join (twice the weight of each departure kind)
					point := make([]float64, dim)
					for d := range point {
						point[d] = rng.Float64()
					}
					wantID, err := o.JoinNode(point)
					if err != nil {
						t.Fatalf("step %d: oracle join: %v", step, err)
					}
					if wantID != nextID {
						t.Fatalf("step %d: oracle assigned id %d, expected %d", step, wantID, nextID)
					}
					m := NewManager(nextID, nextID+1, []LevelState{{}}, f, Options{FailAfter: 2})
					m.SetSelfAddr(testAddr(nextID))
					f.add(testAddr(nextID), m)
					if err := m.Join(ctx, bootstrap(), [][]float64{point}); err != nil {
						t.Fatalf("step %d: live join: %v", step, err)
					}
					mgrs[nextID] = m
					aliveIDs[nextID] = true
					nextID++
				case op == 2: // graceful leave
					if len(aliveIDs) < 3 {
						continue
					}
					id := pick()
					if _, err := o.Leave(id); err != nil {
						t.Fatalf("step %d: oracle leave %d: %v", step, id, err)
					}
					if err := mgrs[id].Leave(ctx); err != nil {
						t.Fatalf("step %d: live leave %d: %v", step, id, err)
					}
					f.crash(testAddr(id)) // process exits after leaving
					delete(aliveIDs, id)
				default: // crash
					if len(aliveIDs) < 3 {
						continue
					}
					id := pick()
					if _, err := o.Crash(id); err != nil {
						t.Fatalf("step %d: oracle crash %d: %v", step, id, err)
					}
					f.crash(testAddr(id))
					delete(aliveIDs, id)
					for r := 0; r < 2; r++ { // FailAfter rounds
						probeRound(f)
					}
					waitIdle(t, f)
				}
				// Keep detector tables as fresh as a live probe ticker would.
				probeRound(f)
			}
			waitIdle(t, f)
			comparePair(t, "post-churn", o, f)
		})
	}
}
