// Package membership is the live zone-maintenance protocol of the serving
// runtime: node joins (zone split with cluster-ref handoff), graceful leaves
// (zone takeover), crash detection (liveness probes with neighbor takeover),
// and the post-takeover republisher that re-replicates cluster spheres after
// zone changes.
//
// Every topology *decision* — split geometry, taker election, record
// redistribution, recovery merge — is made by the shared maintenance helpers
// of internal/route, the same code the simulator (internal/can) runs. This
// package contributes only the distributed execution: who tells whom, in what
// message, with what failure handling. A live cluster that plays a churn
// schedule therefore converges to zones, neighbor tables, and record
// placements identical to a simulator replaying the same schedule — the
// property the churn soak (internal/node) asserts byte-for-byte.
package membership

import (
	"fmt"

	"hyperm/internal/route"
)

// Neighbor is one entry of a node's per-level routing table: the neighbor's
// id, its serving address, and its last-known zone set. Neighbor lists are
// kept sorted by id — the simulator's recomputeNeighbors yields id-sorted
// lists, and greedy tie-breaks follow list order, so sortedness is part of
// the determinism contract.
type Neighbor struct {
	ID    int
	Addr  string
	Zones []route.Zone
}

// LevelState is one node's slice of one CAN level: its zones, its sorted
// neighbor table, and its stored records (owned — centroid in zone — and
// replicas, each in storage order).
type LevelState struct {
	Zones     []route.Zone
	Neighbors []Neighbor
	Owned     []route.RecordView
	Replicas  []route.RecordView
}

// holds reports whether the level already stores record seq (owned or
// replica) — the receiver-side dedup of record transfers.
func (ls *LevelState) holds(seq int) bool {
	for _, r := range ls.Owned {
		if r.Seq == seq {
			return true
		}
	}
	for _, r := range ls.Replicas {
		if r.Seq == seq {
			return true
		}
	}
	return false
}

// findNeighbor returns the index of id in ns, or -1.
func findNeighbor(ns []Neighbor, id int) int {
	for i := range ns {
		if ns[i].ID == id {
			return i
		}
	}
	return -1
}

// upsertNeighbor replaces id's entry or inserts it at its sorted position.
func upsertNeighbor(ns []Neighbor, nb Neighbor) []Neighbor {
	for i := range ns {
		if ns[i].ID == nb.ID {
			ns[i] = nb
			return ns
		}
		if ns[i].ID > nb.ID {
			ns = append(ns, Neighbor{})
			copy(ns[i+1:], ns[i:])
			ns[i] = nb
			return ns
		}
	}
	return append(ns, nb)
}

// removeNeighbor drops id's entry, preserving order.
func removeNeighbor(ns []Neighbor, id int) []Neighbor {
	if i := findNeighbor(ns, id); i >= 0 {
		return append(ns[:i], ns[i+1:]...)
	}
	return ns
}

// candidates converts a sorted neighbor table into the takeover-candidate
// list route.ElectTakers expects, skipping ids the skip predicate rejects
// (departed or suspected-dead peers).
func candidates(ns []Neighbor, skip func(id int) bool) []route.Candidate {
	out := make([]route.Candidate, 0, len(ns))
	for _, nb := range ns {
		if skip != nil && skip(nb.ID) {
			continue
		}
		out = append(out, route.Candidate{ID: nb.ID, Zones: nb.Zones})
	}
	return out
}

// assignment is one zone handover decision in wire-transferable form: the
// zone, its elected taker, and — for a box merge — the taker's pre-merge
// zone, identified by value so the taker can locate it without sharing index
// space with the elector.
type assignment struct {
	Taker     int
	Zone      route.Zone
	Merge     bool
	MergeWith route.Zone
}

// replayElection expands an ElectTakers result into per-zone assignments and
// each taker's final zone set, by replaying the takeovers over a copy of the
// candidate states exactly as ElectTakers simulated them. finals maps taker
// id to its complete zone set after all assignments.
func replayElection(zones []route.Zone, cands []route.Candidate, tks []route.Takeover) (assigns []assignment, finals map[int][]route.Zone) {
	local := make(map[int][]route.Zone, len(cands))
	for _, c := range cands {
		local[c.ID] = append([]route.Zone(nil), c.Zones...)
	}
	assigns = make([]assignment, 0, len(zones))
	for i, z := range zones {
		tk := tks[i]
		a := assignment{Taker: tk.Taker, Zone: z}
		zs := local[tk.Taker]
		if tk.Merge >= 0 {
			a.Merge = true
			a.MergeWith = zs[tk.Merge]
			u, ok := route.UnionBox(z, zs[tk.Merge])
			if !ok {
				panic(fmt.Sprintf("membership: elected merge of %v into %v is not a box", z, zs[tk.Merge]))
			}
			zs[tk.Merge] = u
		} else {
			zs = append(zs, z)
		}
		local[tk.Taker] = zs
		assigns = append(assigns, a)
	}
	return assigns, local
}

// tableAt returns ts[l], or a zero LevelTable when the report is shorter —
// probe responses always carry every level, but the comparison must not
// assume it.
func tableAt(ts []LevelTable, l int) LevelTable {
	if l < len(ts) {
		return ts[l]
	}
	return LevelTable{}
}

// levelTableEqual reports whether two probe self-reports describe the same
// level state: equal zone sets and equal neighbor tables (id, address, and
// zones — a changed entry in either means churn happened near the reporter).
func levelTableEqual(a, b LevelTable) bool {
	if len(a.Zones) != len(b.Zones) || len(a.Neighbors) != len(b.Neighbors) {
		return false
	}
	for i := range a.Zones {
		if !zoneEqual(a.Zones[i], b.Zones[i]) {
			return false
		}
	}
	for i := range a.Neighbors {
		na, nb := a.Neighbors[i], b.Neighbors[i]
		if na.ID != nb.ID || na.Addr != nb.Addr || len(na.Zones) != len(nb.Zones) {
			return false
		}
		for j := range na.Zones {
			if !zoneEqual(na.Zones[j], nb.Zones[j]) {
				return false
			}
		}
	}
	return true
}

// zoneEqual reports exact box equality.
func zoneEqual(a, b route.Zone) bool {
	if len(a.Lo) != len(b.Lo) {
		return false
	}
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return false
		}
	}
	return true
}

// indexOfZone returns the index of the zone equal to z, or -1.
func indexOfZone(zs []route.Zone, z route.Zone) int {
	for i := range zs {
		if zoneEqual(zs[i], z) {
			return i
		}
	}
	return -1
}

// zoneCenter is the midpoint of a zone box (used to test whether a claimed
// zone is still part of a node's zone set after merges).
func zoneCenter(z route.Zone) []float64 {
	c := make([]float64, len(z.Lo))
	for i := range z.Lo {
		c[i] = (z.Lo[i] + z.Hi[i]) / 2
	}
	return c
}

func cloneZones(zs []route.Zone) []route.Zone {
	if len(zs) == 0 {
		return nil
	}
	return append([]route.Zone(nil), zs...)
}

func cloneNeighbors(ns []Neighbor) []Neighbor {
	if len(ns) == 0 {
		return nil
	}
	return append([]Neighbor(nil), ns...)
}

func cloneRecords(rs []route.RecordView) []route.RecordView {
	if len(rs) == 0 {
		return nil
	}
	return append([]route.RecordView(nil), rs...)
}

// Clone returns a shallow-copy of the level state safe to read after the
// manager's lock is released: slice headers and their backing arrays are
// fresh, while zone coordinates, record keys, and payloads — which the
// protocol never mutates in place — stay shared.
func (ls *LevelState) Clone() LevelState {
	return LevelState{
		Zones:     cloneZones(ls.Zones),
		Neighbors: cloneNeighbors(ls.Neighbors),
		Owned:     cloneRecords(ls.Owned),
		Replicas:  cloneRecords(ls.Replicas),
	}
}
