package membership

import (
	"fmt"

	"hyperm/internal/core"
	"hyperm/internal/overlay"
	"hyperm/internal/route"
	"hyperm/internal/transport"
)

// Membership RPC methods, served by a Node alongside its query RPCs. Bodies
// are binary messages built with the transport codec; zone coordinates and
// record keys cross the wire bit-exactly (the determinism oracle depends on
// it).
const (
	MethodJoin     = "m.join"      // joiner → owner: split your zone, hand my half over
	MethodHandoff  = "m.handoff"   // leaver → taker: take these zones and records
	MethodPing     = "m.ping"      // prober → neighbor: liveness + state snapshot
	MethodTakeover = "m.takeover"  // taker → neighborhood: I claimed a crashed node's zone
	MethodZones    = "m.zones"     // any → neighbor: zone-set updates (join/leave/takeover notices)
	MethodStoreRec = "m.store_rec" // stream publisher → holder: apply one record delta (upsert/delete)
)

// IsMethod reports whether method is a membership RPC (node daemons dispatch
// these to their Manager).
func IsMethod(method string) bool {
	switch method {
	case MethodJoin, MethodHandoff, MethodPing, MethodTakeover, MethodZones, MethodStoreRec:
		return true
	}
	return false
}

// DetailNotOwner is the wire detail token attached when a join request lands
// on a node that does not own the join point (stale routing during churn);
// the joiner re-routes and retries.
const DetailNotOwner = "membership/not-owner"

// ---- shared shapes ----

// BookEntry is one address-book entry shipped in a join grant.
type BookEntry struct {
	ID   int
	Addr string
}

// NodeZones is one node's id, address, and current zone set — the unit of a
// ZoneUpdate and of the taker lists in handoffs.
type NodeZones struct {
	ID    int
	Addr  string
	Zones []route.Zone
}

// LevelTable is one level of a peer's self-reported state, carried in ping
// responses. Crash detectors elect takers from the crashed node's last table,
// so every detector that probed it reaches the same election.
type LevelTable struct {
	Zones     []route.Zone
	Neighbors []Neighbor
}

// ---- primitive codecs (exported: internal/node reuses them for its
// can_search views) ----

// EncodeZones appends a zone list.
func EncodeZones(e *transport.Encoder, zs []route.Zone) {
	e.U32(uint32(len(zs)))
	for _, z := range zs {
		e.Floats(z.Lo)
		e.Floats(z.Hi)
	}
}

// DecodeZones reads a zone list. Coordinate vectors land in the decoder's
// shared arena (one block allocation per message instead of two per zone);
// holders may retain them under the shared-read contract.
func DecodeZones(d *transport.Decoder) []route.Zone {
	n := d.Count(8) // two length-prefixed vectors minimum
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]route.Zone, n)
	for i := range out {
		out[i] = route.Zone{Lo: d.FloatsShared(), Hi: d.FloatsShared()}
	}
	return out
}

// EncodeNeighbors appends a neighbor table (ids, addresses, zones).
func EncodeNeighbors(e *transport.Encoder, ns []Neighbor) {
	e.U32(uint32(len(ns)))
	for _, nb := range ns {
		e.Int(nb.ID)
		e.String(nb.Addr)
		EncodeZones(e, nb.Zones)
	}
}

// DecodeNeighbors reads a neighbor table.
func DecodeNeighbors(d *transport.Decoder) []Neighbor {
	n := d.Count(16) // id + address prefix + zone count minimum
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]Neighbor, n)
	for i := range out {
		out[i] = Neighbor{ID: d.Int(), Addr: d.String(), Zones: DecodeZones(d)}
	}
	return out
}

// EncodeRecords appends a record list. Payloads must be core.ClusterRef —
// the only payload the serving runtime stores.
func EncodeRecords(e *transport.Encoder, recs []route.RecordView) error {
	e.U32(uint32(len(recs)))
	for _, rec := range recs {
		ref, ok := rec.Entry.Payload.(core.ClusterRef)
		if !ok {
			return fmt.Errorf("membership: record payload is %T, want core.ClusterRef", rec.Entry.Payload)
		}
		e.Int(rec.Seq)
		e.Floats(rec.Entry.Key)
		e.F64(rec.Entry.Radius)
		e.Int(ref.Peer)
		e.Int(ref.Level)
		e.Int(ref.Index)
		e.Floats(ref.Center)
		e.F64(ref.Radius)
		e.Int(ref.Items)
	}
	return nil
}

// DecodeRecords reads a record list. Key and centroid vectors decode into
// the decoder's shared arena (see DecodeZones): a view carrying hundreds of
// records costs a few block allocations, not two slices per record.
func DecodeRecords(d *transport.Decoder) []route.RecordView {
	n := d.Count(64) // seq + entry + cluster-ref scalars minimum
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]route.RecordView, n)
	for i := range out {
		out[i].Seq = d.Int()
		out[i].Entry = overlay.Entry{Key: d.FloatsShared(), Radius: d.F64()}
		out[i].Entry.Payload = core.ClusterRef{
			Peer:   d.Int(),
			Level:  d.Int(),
			Index:  d.Int(),
			Center: d.FloatsShared(),
			Radius: d.F64(),
			Items:  d.Int(),
		}
	}
	return out
}

func encodeNodeZones(e *transport.Encoder, us []NodeZones) {
	e.U32(uint32(len(us)))
	for _, u := range us {
		e.Int(u.ID)
		e.String(u.Addr)
		EncodeZones(e, u.Zones)
	}
}

func decodeNodeZones(d *transport.Decoder) []NodeZones {
	n := d.Count(16) // id + address prefix + zone count minimum
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]NodeZones, n)
	for i := range out {
		out[i] = NodeZones{ID: d.Int(), Addr: d.String(), Zones: DecodeZones(d)}
	}
	return out
}

// ---- m.join ----

// JoinReq asks the owner of Point at Level to split its zone with the joiner.
type JoinReq struct {
	Level  int
	Joiner int
	Addr   string
	Point  []float64
}

func encodeJoinReq(r JoinReq) []byte {
	var e transport.Encoder
	e.Int(r.Level)
	e.Int(r.Joiner)
	e.String(r.Addr)
	e.Floats(r.Point)
	return e.Bytes()
}

func decodeJoinReq(b []byte) (JoinReq, error) {
	d := transport.NewDecoder(b)
	r := JoinReq{Level: d.Int(), Joiner: d.Int(), Addr: d.String(), Point: d.Floats()}
	return r, d.Finish()
}

// JoinGrant is the owner's reply: the joiner's new zone(s), its initial
// neighbor table (addresses included), the records that move or replicate to
// it, the cluster size as the owner knows it, and the owner's address book.
type JoinGrant struct {
	Zones     []route.Zone
	Neighbors []Neighbor
	Owned     []route.RecordView
	Replicas  []route.RecordView
	Size      int
	Book      []BookEntry
}

func encodeJoinGrant(g JoinGrant) ([]byte, error) {
	var e transport.Encoder
	EncodeZones(&e, g.Zones)
	EncodeNeighbors(&e, g.Neighbors)
	if err := EncodeRecords(&e, g.Owned); err != nil {
		return nil, err
	}
	if err := EncodeRecords(&e, g.Replicas); err != nil {
		return nil, err
	}
	e.Int(g.Size)
	e.U32(uint32(len(g.Book)))
	for _, be := range g.Book {
		e.Int(be.ID)
		e.String(be.Addr)
	}
	return e.Bytes(), nil
}

func decodeJoinGrant(b []byte) (JoinGrant, error) {
	d := transport.NewDecoder(b)
	var g JoinGrant
	g.Zones = DecodeZones(d)
	g.Neighbors = DecodeNeighbors(d)
	g.Owned = DecodeRecords(d)
	g.Replicas = DecodeRecords(d)
	g.Size = d.Int()
	if n := d.Count(12); d.Err() == nil && n > 0 {
		g.Book = make([]BookEntry, n)
		for i := range g.Book {
			g.Book[i] = BookEntry{ID: d.Int(), Addr: d.String()}
		}
	}
	return g, d.Finish()
}

// ---- m.handoff ----

// ZoneAssign is one zone handed to a taker: merged into the taker's zone
// equal to MergeWith when Merge, annexed as an extra zone otherwise.
type ZoneAssign struct {
	Zone      route.Zone
	Merge     bool
	MergeWith route.Zone
}

// HandoffReq is a graceful leaver's transfer to one taker: the zones it was
// elected to take, the records that follow them, the leaver's neighbor table
// (for rewiring), and the final zone sets of every taker of the departure
// (so co-takers see each other's post-takeover zones).
type HandoffReq struct {
	Level     int
	Leaver    int
	Assigns   []ZoneAssign
	Owned     []route.RecordView
	Replicas  []route.RecordView
	Neighbors []Neighbor
	Takers    []NodeZones
}

func encodeHandoffReq(r HandoffReq) ([]byte, error) {
	var e transport.Encoder
	e.Int(r.Level)
	e.Int(r.Leaver)
	e.U32(uint32(len(r.Assigns)))
	for _, a := range r.Assigns {
		e.Floats(a.Zone.Lo)
		e.Floats(a.Zone.Hi)
		if a.Merge {
			e.U8(1)
		} else {
			e.U8(0)
		}
		e.Floats(a.MergeWith.Lo)
		e.Floats(a.MergeWith.Hi)
	}
	if err := EncodeRecords(&e, r.Owned); err != nil {
		return nil, err
	}
	if err := EncodeRecords(&e, r.Replicas); err != nil {
		return nil, err
	}
	EncodeNeighbors(&e, r.Neighbors)
	encodeNodeZones(&e, r.Takers)
	return e.Bytes(), nil
}

func decodeHandoffReq(b []byte) (HandoffReq, error) {
	d := transport.NewDecoder(b)
	var r HandoffReq
	r.Level = d.Int()
	r.Leaver = d.Int()
	if n := d.Count(17); d.Err() == nil && n > 0 {
		r.Assigns = make([]ZoneAssign, n)
		for i := range r.Assigns {
			r.Assigns[i].Zone = route.Zone{Lo: d.Floats(), Hi: d.Floats()}
			r.Assigns[i].Merge = d.U8() == 1
			r.Assigns[i].MergeWith = route.Zone{Lo: d.Floats(), Hi: d.Floats()}
		}
	}
	r.Owned = DecodeRecords(d)
	r.Replicas = DecodeRecords(d)
	r.Neighbors = DecodeNeighbors(d)
	r.Takers = decodeNodeZones(d)
	return r, d.Finish()
}

// ---- m.ping ----

// PingReq identifies the prober so the probed node can learn its address.
type PingReq struct {
	From int
	Addr string
}

func encodePingReq(r PingReq) []byte {
	var e transport.Encoder
	e.Int(r.From)
	e.String(r.Addr)
	return e.Bytes()
}

func decodePingReq(b []byte) (PingReq, error) {
	d := transport.NewDecoder(b)
	r := PingReq{From: d.Int(), Addr: d.String()}
	return r, d.Finish()
}

func encodePingResp(tables []LevelTable) []byte {
	var e transport.Encoder
	e.U32(uint32(len(tables)))
	for _, t := range tables {
		EncodeZones(&e, t.Zones)
		EncodeNeighbors(&e, t.Neighbors)
	}
	return e.Bytes()
}

func decodePingResp(b []byte) ([]LevelTable, error) {
	d := transport.NewDecoder(b)
	var tables []LevelTable
	if n := d.Count(8); d.Err() == nil && n > 0 {
		tables = make([]LevelTable, n)
		for i := range tables {
			tables[i] = LevelTable{Zones: DecodeZones(d), Neighbors: DecodeNeighbors(d)}
		}
	}
	return tables, d.Finish()
}

// ---- m.takeover ----

// TakeoverMsg announces one claimed zone of a crashed node to the crashed
// node's and the taker's neighborhoods. TakerZones is the taker's complete
// zone set after the claim.
type TakeoverMsg struct {
	Level      int
	Crashed    int
	Zone       route.Zone
	Taker      int
	TakerAddr  string
	TakerZones []route.Zone
}

func encodeTakeoverMsg(msg TakeoverMsg) []byte {
	var e transport.Encoder
	e.Int(msg.Level)
	e.Int(msg.Crashed)
	e.Floats(msg.Zone.Lo)
	e.Floats(msg.Zone.Hi)
	e.Int(msg.Taker)
	e.String(msg.TakerAddr)
	EncodeZones(&e, msg.TakerZones)
	return e.Bytes()
}

func decodeTakeoverMsg(b []byte) (TakeoverMsg, error) {
	d := transport.NewDecoder(b)
	var msg TakeoverMsg
	msg.Level = d.Int()
	msg.Crashed = d.Int()
	msg.Zone = route.Zone{Lo: d.Floats(), Hi: d.Floats()}
	msg.Taker = d.Int()
	msg.TakerAddr = d.String()
	msg.TakerZones = DecodeZones(d)
	return msg, d.Finish()
}

// ---- m.store_rec ----

// StoreRecReq is one streamed record delta: upsert (replace in place, or
// store where absent — as an owned record when AsOwner, as a replica
// otherwise) or delete the record with Rec.Seq. Rec carries the full record
// value, so holders apply it without further context (see route.UpsertRecord).
type StoreRecReq struct {
	Level   int
	Del     bool
	AsOwner bool
	Rec     route.RecordView
}

// EncodeStoreRecReq builds the request body (exported: the stream publisher
// in internal/node issues these).
func EncodeStoreRecReq(r StoreRecReq) ([]byte, error) {
	var e transport.Encoder
	e.Int(r.Level)
	flags := uint8(0)
	if r.Del {
		flags |= 1
	}
	if r.AsOwner {
		flags |= 2
	}
	e.U8(flags)
	if err := EncodeRecords(&e, []route.RecordView{r.Rec}); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// DecodeStoreRecReq reads a store_rec request body.
func DecodeStoreRecReq(b []byte) (StoreRecReq, error) {
	d := transport.NewDecoder(b)
	var r StoreRecReq
	r.Level = d.Int()
	flags := d.U8()
	r.Del = flags&1 != 0
	r.AsOwner = flags&2 != 0
	recs := DecodeRecords(d)
	if err := d.Finish(); err != nil {
		return StoreRecReq{}, err
	}
	if len(recs) != 1 {
		return StoreRecReq{}, fmt.Errorf("membership: store_rec carries %d records, want 1", len(recs))
	}
	r.Rec = recs[0]
	return r, nil
}

// StoreRecResp is the holder's acknowledgement: its id, zones, and neighbor
// table, which is exactly what the publisher's flood machine needs to expand
// the record's sphere to the next holders.
type StoreRecResp struct {
	ID        int
	Zones     []route.Zone
	Neighbors []Neighbor
}

// EncodeStoreRecResp builds the response body.
func EncodeStoreRecResp(r StoreRecResp) []byte {
	var e transport.Encoder
	e.Int(r.ID)
	EncodeZones(&e, r.Zones)
	EncodeNeighbors(&e, r.Neighbors)
	return e.Bytes()
}

// DecodeStoreRecResp reads a store_rec response body.
func DecodeStoreRecResp(b []byte) (StoreRecResp, error) {
	d := transport.NewDecoder(b)
	r := StoreRecResp{ID: d.Int(), Zones: DecodeZones(d), Neighbors: DecodeNeighbors(d)}
	return r, d.Finish()
}

// ---- m.zones ----

// ZoneUpdate carries zone-set news to a neighbor: Removed lists peers that
// departed (gracefully or by crash); Updates carries current zone sets. The
// receiver removes departed entries and upserts each update into its table
// iff adjacent — the same message serves join notices, leave notices, and
// post-takeover rebroadcasts.
type ZoneUpdate struct {
	Level   int
	Removed []int
	Updates []NodeZones
}

func encodeZoneUpdate(u ZoneUpdate) []byte {
	var e transport.Encoder
	e.Int(u.Level)
	e.Ints(u.Removed)
	encodeNodeZones(&e, u.Updates)
	return e.Bytes()
}

func decodeZoneUpdate(b []byte) (ZoneUpdate, error) {
	d := transport.NewDecoder(b)
	u := ZoneUpdate{Level: d.Int(), Removed: d.Ints(), Updates: decodeNodeZones(d)}
	return u, d.Finish()
}
