package manet

import "testing"

// Config.withDefaults must fill every zero field that has a documented
// default and leave explicit settings untouched. The table enumerates each
// defaulted field so adding a default without extending the test shows up as
// a gap here.
func TestConfigWithDefaults(t *testing.T) {
	zero := Config{}.withDefaults()
	defaults := []struct {
		field string
		got   any
		want  any
	}{
		{"MaxPlacementTries", zero.MaxPlacementTries, 200},
	}
	for _, d := range defaults {
		if d.got != d.want {
			t.Errorf("zero Config: %s defaulted to %v, want %v", d.field, d.got, d.want)
		}
	}
	// Fields without defaults must stay zero (New validates them instead).
	if zero.Nodes != 0 || zero.ArenaSide != 0 || zero.Range != 0 {
		t.Errorf("withDefaults invented values for required fields: %+v", zero)
	}

	// Explicit settings survive.
	explicit := Config{Nodes: 7, ArenaSide: 30, Range: 5, MaxPlacementTries: 3}.withDefaults()
	if explicit != (Config{Nodes: 7, ArenaSide: 30, Range: 5, MaxPlacementTries: 3}) {
		t.Errorf("withDefaults rewrote explicit settings: %+v", explicit)
	}
}
