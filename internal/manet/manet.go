// Package manet models the physical layer of the mobile ad-hoc network the
// paper targets (§1: co-located users with Bluetooth-class radios). It
// provides:
//
//   - node placement in a bounded arena and a disk-graph connectivity model
//     (two devices hear each other iff within radio range);
//   - physical multi-hop routing (shortest hop count, precomputed by BFS),
//     so one overlay hop between two peers is charged its true physical cost;
//   - a per-message energy model with transmit/receive costs, the quantity
//     the paper's energy-efficiency motivation is about.
//
// The paper evaluates in overlay hop counts; this package lets the harness
// additionally report modeled wall time and joules for the same runs.
package manet

import (
	"fmt"
	"math"
	"math/rand"
)

// Position is a 2-D device location in meters.
type Position struct{ X, Y float64 }

// Dist returns the Euclidean distance to q in meters.
func (p Position) Dist(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Config describes the physical deployment.
type Config struct {
	// Nodes is the number of devices.
	Nodes int
	// ArenaSide is the square arena side length in meters (e.g. a 50 m
	// conference hall).
	ArenaSide float64
	// Range is the radio range in meters (Bluetooth class 2 ≈ 10 m).
	Range float64
	// MaxPlacementTries bounds the rejection sampling used to find a
	// connected placement. Zero means the default (200).
	MaxPlacementTries int
}

func (c Config) withDefaults() Config {
	if c.MaxPlacementTries == 0 {
		c.MaxPlacementTries = 200
	}
	return c
}

// DefaultEnergy is a Bluetooth-class energy model: roughly 100 nJ/byte to
// transmit, 50 nJ/byte to receive, plus fixed per-message radio wake costs.
var DefaultEnergy = EnergyModel{
	TxPerByte: 100e-9,
	RxPerByte: 50e-9,
	TxFixed:   50e-6,
	RxFixed:   25e-6,
}

// EnergyModel prices a single physical transmission.
type EnergyModel struct {
	TxPerByte float64 // joules per byte transmitted
	RxPerByte float64 // joules per byte received
	TxFixed   float64 // joules per message sent (radio wake-up, preamble)
	RxFixed   float64 // joules per message received
}

// MessageEnergy returns the total joules consumed sending a message of the
// given size across physHops physical transmissions (each hop is one
// transmit plus one receive).
func (m EnergyModel) MessageEnergy(bytes, physHops int) float64 {
	if physHops <= 0 {
		return 0
	}
	perHop := m.TxFixed + m.RxFixed + float64(bytes)*(m.TxPerByte+m.RxPerByte)
	return perHop * float64(physHops)
}

// Network is a static snapshot of the physical MANET: placements, the disk
// connectivity graph, and all-pairs shortest physical hop counts.
type Network struct {
	cfg       Config
	positions []Position
	adj       [][]int
	hops      [][]int16 // hops[a][b]: physical hops on the shortest path
}

// ErrDisconnected is returned by New when no connected placement was found
// within the configured number of tries.
type ErrDisconnected struct{ Tries int }

func (e ErrDisconnected) Error() string {
	return fmt.Sprintf("manet: no connected placement found in %d tries (arena too large for the radio range?)", e.Tries)
}

// New places cfg.Nodes devices uniformly at random in the arena, resampling
// until the disk graph is connected, and precomputes all-pairs physical hop
// counts. All randomness comes from rng.
func New(cfg Config, rng *rand.Rand) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("manet: need at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.Range <= 0 || cfg.ArenaSide <= 0 {
		return nil, fmt.Errorf("manet: range and arena side must be positive")
	}
	if rng == nil {
		return nil, fmt.Errorf("manet: rng must be non-nil")
	}
	for try := 0; try < cfg.MaxPlacementTries; try++ {
		pos := make([]Position, cfg.Nodes)
		for i := range pos {
			pos[i] = Position{X: rng.Float64() * cfg.ArenaSide, Y: rng.Float64() * cfg.ArenaSide}
		}
		n := &Network{cfg: cfg, positions: pos}
		n.buildAdjacency()
		if n.connected() {
			n.buildHopMatrix()
			return n, nil
		}
	}
	return nil, ErrDisconnected{Tries: cfg.MaxPlacementTries}
}

func (n *Network) buildAdjacency() {
	N := len(n.positions)
	n.adj = make([][]int, N)
	for i := 0; i < N; i++ {
		for j := i + 1; j < N; j++ {
			if n.positions[i].Dist(n.positions[j]) <= n.cfg.Range {
				n.adj[i] = append(n.adj[i], j)
				n.adj[j] = append(n.adj[j], i)
			}
		}
	}
}

func (n *Network) connected() bool {
	N := len(n.positions)
	seen := make([]bool, N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range n.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == N
}

func (n *Network) buildHopMatrix() {
	N := len(n.positions)
	n.hops = make([][]int16, N)
	for src := 0; src < N; src++ {
		dist := make([]int16, N)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range n.adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		n.hops[src] = dist
	}
}

// Nodes returns the number of devices.
func (n *Network) Nodes() int { return len(n.positions) }

// Position returns the placement of device i.
func (n *Network) Position(i int) Position { return n.positions[i] }

// Neighbors returns the devices within radio range of i.
func (n *Network) Neighbors(i int) []int { return n.adj[i] }

// PhysicalHops returns the number of radio transmissions on the shortest
// path from a to b (0 when a == b).
func (n *Network) PhysicalHops(a, b int) int { return int(n.hops[a][b]) }

// AvgPathHops returns the mean physical hop count over all ordered pairs of
// distinct devices — a density summary of the deployment.
func (n *Network) AvgPathHops() float64 {
	N := len(n.positions)
	if N < 2 {
		return 0
	}
	var sum float64
	for a := 0; a < N; a++ {
		for b := 0; b < N; b++ {
			if a != b {
				sum += float64(n.hops[a][b])
			}
		}
	}
	return sum / float64(N*(N-1))
}

// MessageCost converts one overlay message from a to b of the given size
// into physical transmissions, modeled joules and modeled seconds.
type MessageCost struct {
	PhysHops int
	Joules   float64
	Seconds  float64
}

// Cost prices one overlay message using the energy model and a per-physical-
// hop latency (seconds). Sending to oneself costs nothing.
func (n *Network) Cost(a, b, bytes int, energy EnergyModel, hopLatency float64) MessageCost {
	h := n.PhysicalHops(a, b)
	return MessageCost{
		PhysHops: h,
		Joules:   energy.MessageEnergy(bytes, h),
		Seconds:  hopLatency * float64(h),
	}
}
