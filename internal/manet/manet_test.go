package manet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testNet(t *testing.T, nodes int, seed int64) *Network {
	t.Helper()
	n, err := New(Config{Nodes: nodes, ArenaSide: 50, Range: 15}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestNewConnected(t *testing.T) {
	n := testNet(t, 50, 1)
	if n.Nodes() != 50 {
		t.Fatalf("Nodes = %d", n.Nodes())
	}
	// Connectivity implies every pair has a finite hop count.
	for a := 0; a < n.Nodes(); a++ {
		for b := 0; b < n.Nodes(); b++ {
			h := n.PhysicalHops(a, b)
			if a == b && h != 0 {
				t.Fatalf("self hops = %d", h)
			}
			if a != b && h < 1 {
				t.Fatalf("hops(%d,%d) = %d, want >= 1", a, b, h)
			}
		}
	}
}

func TestHopSymmetry(t *testing.T) {
	n := testNet(t, 40, 2)
	for a := 0; a < n.Nodes(); a++ {
		for b := a + 1; b < n.Nodes(); b++ {
			if n.PhysicalHops(a, b) != n.PhysicalHops(b, a) {
				t.Fatalf("asymmetric hops between %d and %d", a, b)
			}
		}
	}
}

func TestNeighborsWithinRange(t *testing.T) {
	n := testNet(t, 30, 3)
	for i := 0; i < n.Nodes(); i++ {
		for _, j := range n.Neighbors(i) {
			if d := n.Position(i).Dist(n.Position(j)); d > 15 {
				t.Fatalf("neighbor %d-%d at distance %v > range", i, j, d)
			}
			if n.PhysicalHops(i, j) != 1 {
				t.Fatalf("direct neighbors %d-%d should be 1 hop", i, j)
			}
		}
	}
}

// Property: physical hop counts obey the triangle inequality (they are
// shortest paths).
func TestPropHopTriangle(t *testing.T) {
	n := testNet(t, 25, 4)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%n.Nodes(), int(b)%n.Nodes(), int(c)%n.Nodes()
		return n.PhysicalHops(x, z) <= n.PhysicalHops(x, y)+n.PhysicalHops(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSingleNode(t *testing.T) {
	n := testNet(t, 1, 5)
	if n.AvgPathHops() != 0 {
		t.Error("single node should have zero average path length")
	}
	if n.PhysicalHops(0, 0) != 0 {
		t.Error("self hops should be 0")
	}
}

func TestDisconnectedError(t *testing.T) {
	// 2 nodes in a huge arena with tiny range: connection is effectively
	// impossible, New must give up with ErrDisconnected.
	_, err := New(Config{Nodes: 2, ArenaSide: 1e6, Range: 0.001, MaxPlacementTries: 5},
		rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("expected error for impossible placement")
	}
	if _, ok := err.(ErrDisconnected); !ok {
		t.Fatalf("error type %T, want ErrDisconnected", err)
	}
	if err.Error() == "" {
		t.Error("error message empty")
	}
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(Config{Nodes: 0, ArenaSide: 10, Range: 5}, rng); err == nil {
		t.Error("expected error for zero nodes")
	}
	if _, err := New(Config{Nodes: 5, ArenaSide: 0, Range: 5}, rng); err == nil {
		t.Error("expected error for zero arena")
	}
	if _, err := New(Config{Nodes: 5, ArenaSide: 10, Range: 0}, rng); err == nil {
		t.Error("expected error for zero range")
	}
	if _, err := New(Config{Nodes: 5, ArenaSide: 10, Range: 5}, nil); err == nil {
		t.Error("expected error for nil rng")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	a := testNet(t, 20, 7)
	b := testNet(t, 20, 7)
	for i := 0; i < 20; i++ {
		if a.Position(i) != b.Position(i) {
			t.Fatal("same seed gave different placements")
		}
	}
}

func TestEnergyModel(t *testing.T) {
	m := EnergyModel{TxPerByte: 1, RxPerByte: 2, TxFixed: 10, RxFixed: 20}
	// One hop, 5 bytes: 10+20 fixed + 5*(1+2) = 45.
	if got := m.MessageEnergy(5, 1); got != 45 {
		t.Errorf("MessageEnergy = %v, want 45", got)
	}
	// Three hops triple it.
	if got := m.MessageEnergy(5, 3); got != 135 {
		t.Errorf("MessageEnergy 3 hops = %v, want 135", got)
	}
	if got := m.MessageEnergy(5, 0); got != 0 {
		t.Errorf("zero hops should cost nothing, got %v", got)
	}
}

func TestCost(t *testing.T) {
	n := testNet(t, 10, 8)
	m := EnergyModel{TxPerByte: 1, RxPerByte: 1, TxFixed: 0, RxFixed: 0}
	c := n.Cost(0, 0, 100, m, 0.01)
	if c.PhysHops != 0 || c.Joules != 0 || c.Seconds != 0 {
		t.Errorf("self message should be free: %+v", c)
	}
	c = n.Cost(0, 1, 100, m, 0.01)
	wantJ := float64(c.PhysHops) * 200
	if math.Abs(c.Joules-wantJ) > 1e-12 {
		t.Errorf("Joules = %v, want %v", c.Joules, wantJ)
	}
	if math.Abs(c.Seconds-0.01*float64(c.PhysHops)) > 1e-12 {
		t.Errorf("Seconds = %v", c.Seconds)
	}
}

func TestAvgPathHopsPositive(t *testing.T) {
	n := testNet(t, 30, 9)
	avg := n.AvgPathHops()
	if avg < 1 {
		t.Errorf("AvgPathHops = %v, want >= 1 for 30 nodes", avg)
	}
	// In a 50m arena with 15m range, paths should stay short.
	if avg > 10 {
		t.Errorf("AvgPathHops = %v suspiciously large", avg)
	}
}

func TestDefaultEnergyPlausible(t *testing.T) {
	// A 1 KiB message over 3 hops should cost on the order of a millijoule,
	// not joules — sanity-check the default constants.
	j := DefaultEnergy.MessageEnergy(1024, 3)
	if j <= 0 || j > 0.01 {
		t.Errorf("default energy for 1KiB x3 hops = %v J, implausible", j)
	}
}
