package route

import (
	"reflect"
	"testing"
)

// TestFloodNextBatchStopsAtFrontierBoundary claims a batch on the quadrant
// topology and checks the batching invariants: a batch never includes claims
// from the next frontier while the current one has unanswered visits, and an
// empty batch with no pending claims means the flood is done.
func TestFloodNextBatchStopsAtFrontierBoundary(t *testing.T) {
	views := quadrants()
	// Flood the whole square from node 0: frontier 1 is {1, 2}, frontier 2
	// is {3} (reachable via either, deduplicated).
	f := NewFlood(views[0], []float64{0.5, 0.5}, 1.0)

	steps := f.NextBatch(8)
	if len(steps) != 2 {
		t.Fatalf("first batch claimed %d visits, want 2 (nodes 1 and 2; node 3 is next frontier)", len(steps))
	}
	if steps[0].To != 1 || steps[1].To != 2 {
		t.Fatalf("first batch = %v, want visits to 1 then 2 in frontier order", steps)
	}
	// With claims outstanding, another NextBatch must return nothing rather
	// than advance the frontier.
	if extra := f.NextBatch(8); len(extra) != 0 {
		t.Fatalf("NextBatch with pending claims returned %v, want empty", extra)
	}
	f.Feed(views[1])
	f.Feed(views[2])

	steps = f.NextBatch(8)
	if len(steps) != 1 || steps[0].To != 3 {
		t.Fatalf("second batch = %v, want a single visit to 3", steps)
	}
	f.Skip() // lost in the air; still claimed

	if steps = f.NextBatch(8); len(steps) != 0 {
		t.Fatalf("exhausted flood returned %v, want empty batch", steps)
	}
	if step := f.Next(); step.Kind != StepDone {
		t.Fatalf("Next after exhaustion = %v, want StepDone", step)
	}
}

// TestSearchNextBatchSerialRouting checks that the routing phase yields
// single-step batches (each hop depends on the previous view) and the flood
// phase yields multi-claim batches, and that driving a Search entirely
// through NextBatch reproduces the serial result.
func TestSearchNextBatchSerialRouting(t *testing.T) {
	views := quadrants()
	run := func(drive func(s *Search)) ([]int, int) {
		s := NewSearch(views[0], []float64{0.75, 0.75}, 0.5, 100)
		drive(s)
		seqs := make([]int, 0, len(s.Results()))
		for _, e := range s.Results() {
			seqs = append(seqs, e.Payload.(int))
		}
		return seqs, s.Hops()
	}

	serialSeqs, serialHops := run(func(s *Search) {
		if _, _, err := Run(s, sliceSource(views)); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})

	batchSeqs, batchHops := run(func(s *Search) {
		sawMulti := false
		for {
			steps, err := s.NextBatch(4)
			if err != nil {
				t.Fatalf("NextBatch: %v", err)
			}
			if len(steps) == 0 {
				break
			}
			if len(steps) > 1 {
				sawMulti = true
			}
			for _, st := range steps {
				if st.Kind == StepRouteHop && len(steps) != 1 {
					t.Fatalf("routing hop appeared in a batch of %d", len(steps))
				}
			}
			for _, st := range steps {
				s.Feed(views[st.To], 1)
			}
		}
		if !sawMulti {
			t.Fatal("flood phase never produced a multi-claim batch")
		}
	})

	if !reflect.DeepEqual(batchSeqs, serialSeqs) || batchHops != serialHops {
		t.Fatalf("batched drive diverges: got %v hops %d, serial %v hops %d",
			batchSeqs, batchHops, serialSeqs, serialHops)
	}
}
