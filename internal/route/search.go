package route

import (
	"sync"

	"hyperm/internal/overlay"
)

// Flood expands breadth-first from a root node over every node whose zones
// intersect a sphere — the visit pattern shared by sphere replication
// (insert) and sphere search. Each emitted StepFloodVisit claims one
// neighbor; the driver either Feeds its view (the node joins the next
// frontier) or Skips it (the message was lost in the air — the visit is
// still charged, but the region behind it goes unexplored, exactly the
// radio-loss semantics of the robustness experiments).
type Flood struct {
	key      []float64
	radius   float64
	visited  map[int]bool
	frontier []NodeView
	next     []NodeView
	fi, ni   int
	pending  int
}

// NewFlood starts a flood of the sphere (key, radius) rooted at root. The
// root itself is considered visited and is not re-emitted.
func NewFlood(root NodeView, key []float64, radius float64) *Flood {
	return &Flood{
		key:      key,
		radius:   radius,
		visited:  map[int]bool{root.ID: true},
		frontier: []NodeView{root},
	}
}

// claimOne claims the next unvisited, sphere-intersecting neighbor of the
// CURRENT frontier in frontier order, without advancing to the next
// frontier. Non-intersecting neighbors are marked visited and passed over,
// exactly as in the serial walk.
func (f *Flood) claimOne() (Step, bool) {
	for f.fi < len(f.frontier) {
		v := &f.frontier[f.fi]
		for f.ni < len(v.Neighbors) {
			nb := v.Neighbors[f.ni]
			f.ni++
			if f.visited[nb.ID] {
				continue
			}
			f.visited[nb.ID] = true
			if !ZonesIntersect(nb.Zones, f.key, f.radius) {
				continue
			}
			return Step{Kind: StepFloodVisit, From: v.ID, To: nb.ID}, true
		}
		f.fi++
		f.ni = 0
	}
	return Step{}, false
}

// Next emits the next flood decision: a StepFloodVisit for the first
// unvisited, sphere-intersecting neighbor in frontier order, or StepDone
// when the flood is exhausted.
func (f *Flood) Next() Step {
	if f.pending != 0 {
		panic("route: Next before Feed/Skip of the pending visit")
	}
	for {
		if step, ok := f.claimOne(); ok {
			f.pending++
			return step
		}
		if len(f.next) == 0 {
			return Step{Kind: StepDone}
		}
		f.frontier, f.next = f.next, nil
		f.fi, f.ni = 0, 0
	}
}

// NextBatch claims up to max flood visits at once, for drivers that fetch
// views concurrently (α-parallel lookups). A batch never spans a frontier
// boundary: claims within one frontier are independent of each other's
// feeds (a Feed only extends the NEXT frontier), so claiming them together
// and feeding the answers back in claim order is byte-identical to the
// serial walk — same visited set, same frontier order, same results. An
// empty batch with outstanding claims means "answer them first"; an empty
// batch with none means the flood is exhausted.
func (f *Flood) NextBatch(max int) []Step {
	var steps []Step
	for len(steps) < max {
		if step, ok := f.claimOne(); ok {
			f.pending++
			steps = append(steps, step)
			continue
		}
		if f.pending > 0 {
			break // next frontier is still being fed; stop at the boundary
		}
		if len(f.next) == 0 {
			break // exhausted
		}
		f.frontier, f.next = f.next, nil
		f.fi, f.ni = 0, 0
	}
	return steps
}

// Feed delivers a claimed node's view; it joins the next frontier. With a
// batch of claims outstanding, feeds must arrive in claim order to preserve
// the deterministic frontier order.
func (f *Flood) Feed(v NodeView) {
	if f.pending == 0 {
		panic("route: Feed without a pending visit")
	}
	f.pending--
	f.next = append(f.next, v)
}

// Skip abandons one claimed visit: the message was lost, the node is not
// expanded. It stays claimed — the flood never retries a neighbor.
func (f *Flood) Skip() {
	if f.pending == 0 {
		panic("route: Skip without a pending visit")
	}
	f.pending--
}

// Search is the full CAN sphere lookup: greedy-route to the owner of the
// query center, then flood the zones the query sphere intersects, collecting
// every record whose own sphere intersects the query. Records are collected
// from the owner onward (routing-phase views contribute none), owned before
// replicas, deduplicated by overlay sequence number in arrival order — the
// entry order the query engine's score accumulation depends on.
type Search struct {
	router    *Router
	flood     *Flood // nil until the routing phase completes
	key       []float64
	radius    float64
	floodHops int
	seen      map[int]bool
	results   []overlay.Entry
}

// NewSearch starts a sphere search from the start view. hopLimit bounds the
// routing phase (see NewRouter).
func NewSearch(start NodeView, key []float64, radius float64, hopLimit int) *Search {
	return &Search{
		router: NewRouter(start, key, hopLimit),
		key:    key,
		radius: radius,
		seen:   map[int]bool{},
	}
}

// Next emits the next decision: StepRouteHops until the owner is reached
// (stalls surface the Router sentinels and must be answered with
// ResolveOwner), then StepFloodVisits, then StepDone. The owner's records
// are collected at the phase transition.
func (s *Search) Next() (Step, error) {
	if s.flood == nil {
		if step, routing, err := s.advanceRouting(); routing || err != nil {
			return step, err
		}
	}
	return s.flood.Next(), nil
}

// advanceRouting pumps the routing phase one step. It reports routing=true
// while the owner is still being located (the step is the hop to make, or a
// stall error); once the owner is reached it collects the owner's records,
// roots the flood, and reports routing=false.
func (s *Search) advanceRouting() (step Step, routing bool, err error) {
	step, err = s.router.Next()
	if err != nil || step.Kind == StepRouteHop {
		return step, true, err
	}
	// Routing complete: the owner roots the flood and contributes first.
	owner := s.router.Owner()
	s.collect(owner)
	s.flood = NewFlood(owner, s.key, s.radius)
	return Step{}, false, nil
}

// NextBatch emits up to max decisions at once. The routing phase is
// inherently serial (each hop depends on the previous view), so it yields
// single-step batches; once the flood phase begins, batches carry up to max
// claims from the current frontier (see Flood.NextBatch for why that is
// deterministic). A nil batch means the search is complete. Feeds for a
// batch must be delivered in claim order.
func (s *Search) NextBatch(max int) ([]Step, error) {
	if s.flood == nil {
		step, routing, err := s.advanceRouting()
		if err != nil {
			return nil, err
		}
		if routing {
			return []Step{step}, nil
		}
	}
	return s.flood.NextBatch(max), nil
}

// Feed delivers the view requested by the last step, with the hops the
// contact cost. Flood-phase views are collected and expanded.
func (s *Search) Feed(v NodeView, hops int) {
	if s.flood == nil {
		s.router.Feed(v, hops)
		return
	}
	s.floodHops += hops
	s.collect(v)
	s.flood.Feed(v)
}

// Skip abandons the pending flood visit (message lost), still charging the
// given hops for the transmission.
func (s *Search) Skip(hops int) {
	if s.flood == nil {
		panic("route: Skip during the routing phase")
	}
	s.floodHops += hops
	s.flood.Skip()
}

// ResolveOwner answers a routing stall with an out-of-band owner view (see
// Router.ResolveOwner).
func (s *Search) ResolveOwner(v NodeView, hops int) { s.router.ResolveOwner(v, hops) }

// collect appends v's matching records: owned before replicas, each in
// storage order, skipping sequence numbers already seen and entries whose
// sphere misses the query sphere. Sources that pre-filter records (the
// can_search RPC ships only matches) pass the test trivially — the filter
// is idempotent, so pre-filtering cannot change the result.
func (s *Search) collect(v NodeView) {
	for _, recs := range [2][]RecordView{v.Owned, v.Replicas} {
		for _, rec := range recs {
			if s.seen[rec.Seq] {
				continue
			}
			if TorusDist(rec.Entry.Key, s.key) <= rec.Entry.Radius+s.radius {
				s.seen[rec.Seq] = true
				s.results = append(s.results, rec.Entry)
			}
		}
	}
}

// Results returns the collected entries (valid at any point; complete after
// StepDone).
func (s *Search) Results() []overlay.Entry { return s.results }

// Hops returns the total driver-reported hops across both phases.
func (s *Search) Hops() int { return s.router.Hops() + s.floodHops }

// Run drives a Search to completion over src, feeding every requested view
// and charging one hop per contact — the common failure-free driving loop
// (one contact = one hop = one RPC for a serving node). Stalls and source
// failures abort the lookup with the hops spent so far; drivers needing
// drop injection, retransmission accounting, or global-scan stall recovery
// (the simulator) pump the machine directly instead.
func Run(s *Search, src ViewSource) ([]overlay.Entry, int, error) {
	for {
		step, err := s.Next()
		if err != nil {
			return nil, s.Hops(), err
		}
		if step.Kind == StepDone {
			return s.Results(), s.Hops(), nil
		}
		v, err := src.View(step.To)
		if err != nil {
			return nil, s.Hops(), err
		}
		s.Feed(v, 1)
	}
}

// RunAlpha drives a Search to completion over src with up to alpha view
// fetches in flight at once (Kademlia's α, applied to the flood frontier).
// src.View must be safe for concurrent calls. The returned entries, hops,
// and error are byte-identical to Run's: batches never cross a frontier
// boundary and views are fed back in claim order, so the machine walks the
// exact serial visit sequence — only the fetch latency overlaps. On a source
// failure the preceding views of the batch are still fed (and charged),
// matching the serial driver's abort point; the surplus fetches the serial
// driver would not have issued change no returned state.
func RunAlpha(s *Search, src ViewSource, alpha int) ([]overlay.Entry, int, error) {
	if alpha <= 1 {
		return Run(s, src)
	}
	views := make([]NodeView, alpha)
	errs := make([]error, alpha)
	for {
		steps, err := s.NextBatch(alpha)
		if err != nil {
			return nil, s.Hops(), err
		}
		if len(steps) == 0 {
			return s.Results(), s.Hops(), nil
		}
		if len(steps) == 1 {
			v, err := src.View(steps[0].To)
			if err != nil {
				return nil, s.Hops(), err
			}
			s.Feed(v, 1)
			continue
		}
		var wg sync.WaitGroup
		for i := range steps {
			wg.Add(1)
			go func(i, to int) {
				defer wg.Done()
				views[i], errs[i] = src.View(to)
			}(i, steps[i].To)
		}
		wg.Wait()
		for i := range steps {
			if errs[i] != nil {
				return nil, s.Hops(), errs[i]
			}
			s.Feed(views[i], 1)
		}
	}
}
