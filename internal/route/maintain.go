package route

import "math"

// Zone maintenance: the pure decision procedures behind CAN topology
// changes — join splits, departure/crash takeovers, and the record
// redistribution they imply. Both the simulator (internal/can) and the live
// membership protocol (internal/membership) call these exact functions, so
// a live cluster that replays a churn schedule ends up with zones, neighbor
// adjacencies, and record placements bit-identical to the simulated oracle.
// Keeping them here, next to the routing machines, is what makes the
// determinism oracle possible: topology decisions have one implementation.

// SplitZone halves z along its longest side (lowest index on ties) and
// returns the half that keeps the current owner (kept) and the half handed
// to the joiner (taken — the one containing the join point).
func SplitZone(z Zone, point []float64) (kept, taken Zone) {
	splitDim, best := 0, -1.0
	for i := range z.Lo {
		if ext := z.Hi[i] - z.Lo[i]; ext > best {
			splitDim, best = i, ext
		}
	}
	mid := (z.Lo[splitDim] + z.Hi[splitDim]) / 2
	lower := Zone{Lo: cloneCoords(z.Lo), Hi: cloneCoords(z.Hi)}
	upper := Zone{Lo: cloneCoords(z.Lo), Hi: cloneCoords(z.Hi)}
	lower.Hi[splitDim] = mid
	upper.Lo[splitDim] = mid
	if point[splitDim] < mid {
		return upper, lower
	}
	return lower, upper
}

// UnionBox returns the union of two zones when it forms a valid box: the
// zones must agree on every dimension except one, where they abut.
func UnionBox(a, b Zone) (Zone, bool) {
	joinDim := -1
	for i := range a.Lo {
		if a.Lo[i] == b.Lo[i] && a.Hi[i] == b.Hi[i] {
			continue
		}
		if joinDim >= 0 {
			return Zone{}, false // differ in more than one dimension
		}
		if a.Hi[i] == b.Lo[i] || b.Hi[i] == a.Lo[i] {
			joinDim = i
			continue
		}
		return Zone{}, false // differ but do not abut
	}
	if joinDim < 0 {
		return Zone{}, false // identical zones (impossible between nodes)
	}
	out := Zone{Lo: cloneCoords(a.Lo), Hi: cloneCoords(a.Hi)}
	if a.Hi[joinDim] == b.Lo[joinDim] {
		out.Hi[joinDim] = b.Hi[joinDim]
	} else {
		out.Lo[joinDim] = b.Lo[joinDim]
	}
	return out, true
}

// ZonesAdjacent reports CAN neighborship: the zones abut along exactly one
// dimension (touching boundaries, torus-wrapped) and overlap along every
// other dimension.
func ZonesAdjacent(a, b Zone) bool {
	abut, overlap := 0, 0
	d := len(a.Lo)
	for i := 0; i < d; i++ {
		switch spanRelation(a.Lo[i], a.Hi[i], b.Lo[i], b.Hi[i]) {
		case spanOverlap:
			overlap++
		case spanAbut:
			abut++
		default:
			return false
		}
	}
	if d == 1 {
		return abut == 1 || overlap == 1
	}
	// Zones that overlap in every dimension can only be the two halves of a
	// not-yet-split axis pairing with a full-span axis; treat full overlap in
	// all dims as adjacency too (happens transiently with <= 2 nodes).
	return (abut == 1 && overlap == d-1) || overlap == d
}

// ZoneSetsAdjacent reports whether any zone of a is CAN-adjacent to any
// zone of b (multi-zone nodes behave as the union of their zones).
func ZoneSetsAdjacent(a, b []Zone) bool {
	for _, za := range a {
		for _, zb := range b {
			if ZonesAdjacent(za, zb) {
				return true
			}
		}
	}
	return false
}

type spanRel int

const (
	spanDisjoint spanRel = iota
	spanAbut
	spanOverlap
)

// spanRelation classifies two half-open intervals on the unit circle.
func spanRelation(alo, ahi, blo, bhi float64) spanRel {
	afull := ahi-alo >= 1
	bfull := bhi-blo >= 1
	if afull || bfull {
		return spanOverlap
	}
	// Positive-measure intersection (no wrap: split intervals never wrap).
	if alo < bhi && blo < ahi {
		return spanOverlap
	}
	// Abutment, including across the torus seam at 0/1.
	if ahi == blo || bhi == alo {
		return spanAbut
	}
	if (ahi == 1 && blo == 0) || (bhi == 1 && alo == 0) {
		return spanAbut
	}
	return spanDisjoint
}

// ZonesVolume is the total key-space volume of a zone set.
func ZonesVolume(zs []Zone) float64 {
	var v float64
	for _, z := range zs {
		v += z.Volume()
	}
	return v
}

// Circumsphere returns the center and circumradius of the zone box: the
// smallest sphere that covers the whole zone. A node recovering records for
// a zone it just took over searches this sphere — every surviving replica
// of a record intersecting the zone lives inside it.
func (z Zone) Circumsphere() (center []float64, radius float64) {
	center = make([]float64, len(z.Lo))
	var s float64
	for i := range z.Lo {
		center[i] = (z.Lo[i] + z.Hi[i]) / 2
		h := (z.Hi[i] - z.Lo[i]) / 2
		s += h * h
	}
	return center, math.Sqrt(s)
}

// Candidate is one surviving neighbor competing to take over a departing
// node's zone.
type Candidate struct {
	ID    int
	Zones []Zone
}

// Takeover is one zone-assignment decision: the elected taker and, when the
// zone box-merges with one of the taker's existing zones, the index of that
// zone in the taker's zone list at the time of the assignment (-1 for an
// annex, where the taker keeps the zone as an extra).
type Takeover struct {
	Taker int
	Merge int
}

// chooseTaker elects the taker for one zone following the CAN departure
// rule: the first candidate (in list order) holding a zone whose union with
// z forms a valid box merges it; otherwise the candidate managing the least
// total volume (first strict minimum) annexes it.
func chooseTaker(z Zone, cands []Candidate) (Takeover, bool) {
	for _, c := range cands {
		for zi, nz := range c.Zones {
			if _, ok := UnionBox(z, nz); ok {
				return Takeover{Taker: c.ID, Merge: zi}, true
			}
		}
	}
	taker, best := -1, math.Inf(1)
	for _, c := range cands {
		if v := ZonesVolume(c.Zones); v < best {
			best, taker = v, c.ID
		}
	}
	if taker < 0 {
		return Takeover{}, false
	}
	return Takeover{Taker: taker, Merge: -1}, true
}

// ElectTakers assigns each of a departing (or crashed) node's zones to a
// surviving neighbor, one zone at a time, tracking the candidates' growing
// zone sets exactly as the applied takeovers will: a merge rewrites the
// candidate's merged zone in place, an annex appends. Candidates must be
// the departing node's alive neighbors in neighbor-list (ascending id)
// order. Returns one Takeover per zone, in zone order, or false when a zone
// has no candidate. The input zone sets are not modified.
func ElectTakers(zones []Zone, cands []Candidate) ([]Takeover, bool) {
	local := make([]Candidate, len(cands))
	for i, c := range cands {
		local[i] = Candidate{ID: c.ID, Zones: append([]Zone(nil), c.Zones...)}
	}
	out := make([]Takeover, 0, len(zones))
	for _, z := range zones {
		tk, ok := chooseTaker(z, local)
		if !ok {
			return nil, false
		}
		for i := range local {
			if local[i].ID != tk.Taker {
				continue
			}
			if tk.Merge >= 0 {
				u, ok := UnionBox(z, local[i].Zones[tk.Merge])
				if !ok {
					return nil, false // unreachable: chooseTaker validated it
				}
				local[i].Zones[tk.Merge] = u
			} else {
				local[i].Zones = append(local[i].Zones, z)
			}
			break
		}
		out = append(out, tk)
	}
	return out, true
}

// SplitRecords redistributes a node's stored records across a join split.
// ownerZones is the owner's full zone set after the split (the kept half
// plus any other zones it manages); joinerZones is the joiner's (the taken
// half). Owned records follow their centroid; each side additionally keeps
// a replica of any sphere overlapping it from the other side; existing
// replicas stay wherever they still overlap. Relative record order is
// preserved — the determinism oracle depends on it.
func SplitRecords(owned, replicas []RecordView, ownerZones, joinerZones []Zone) (ownerOwned, ownerReplicas, joinerOwned, joinerReplicas []RecordView) {
	for _, rec := range owned {
		toJoiner := ZonesContain(joinerZones, rec.Entry.Key)
		if toJoiner {
			joinerOwned = append(joinerOwned, rec)
		} else {
			ownerOwned = append(ownerOwned, rec)
		}
		if rec.Entry.Radius > 0 {
			if toJoiner {
				if ZonesIntersect(ownerZones, rec.Entry.Key, rec.Entry.Radius) {
					ownerReplicas = append(ownerReplicas, rec)
				}
			} else if ZonesIntersect(joinerZones, rec.Entry.Key, rec.Entry.Radius) {
				joinerReplicas = append(joinerReplicas, rec)
			}
		}
	}
	for _, rec := range replicas {
		if ZonesIntersect(ownerZones, rec.Entry.Key, rec.Entry.Radius) {
			ownerReplicas = append(ownerReplicas, rec)
		}
		if ZonesIntersect(joinerZones, rec.Entry.Key, rec.Entry.Radius) {
			joinerReplicas = append(joinerReplicas, rec)
		}
	}
	return ownerOwned, ownerReplicas, joinerOwned, joinerReplicas
}

// ApplyRecovery merges the records a takeover recovery search found into
// the taker's stores. z is the zone just taken over; zones is the taker's
// full zone set (z included); found must be seq-sorted and deduplicated.
// Records whose sphere misses z are ignored. A record whose centroid now
// lies in the taker's zones becomes owned — promoting an already-held
// replica (the crashed node was its owner; someone must own it again) —
// while the rest land as replicas unless already held. Returns the updated
// stores and the number of records added or promoted.
func ApplyRecovery(zones []Zone, z Zone, owned, replicas, found []RecordView) ([]RecordView, []RecordView, int) {
	changed := 0
	for _, rec := range found {
		if !z.IntersectsSphere(rec.Entry.Key, rec.Entry.Radius) {
			continue
		}
		if ZonesContain(zones, rec.Entry.Key) {
			if hasSeq(owned, rec.Seq) {
				continue
			}
			replicas = dropSeq(replicas, rec.Seq)
			owned = append(owned, rec)
			changed++
		} else if !hasSeq(owned, rec.Seq) && !hasSeq(replicas, rec.Seq) {
			replicas = append(replicas, rec)
			changed++
		}
	}
	return owned, replicas, changed
}

func hasSeq(recs []RecordView, seq int) bool {
	for _, r := range recs {
		if r.Seq == seq {
			return true
		}
	}
	return false
}

func dropSeq(recs []RecordView, seq int) []RecordView {
	out := recs[:0]
	for _, r := range recs {
		if r.Seq != seq {
			out = append(out, r)
		}
	}
	return out
}

// VerifyTiling checks that the zone sets of the alive nodes exactly tile
// the unit torus: total volume 1 (binary-split volumes are dyadic, so the
// sum is exact in float64) and no positive-measure pairwise overlap.
// Returns false when a gap or an overlap exists.
func VerifyTiling(zoneSets [][]Zone) bool {
	var all []Zone
	var total float64
	for _, zs := range zoneSets {
		all = append(all, zs...)
		total += ZonesVolume(zs)
	}
	if total != 1 {
		return false
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if zonesOverlap(all[i], all[j]) {
				return false
			}
		}
	}
	return true
}

// zonesOverlap reports positive-measure intersection of two boxes.
func zonesOverlap(a, b Zone) bool {
	for i := range a.Lo {
		if spanRelation(a.Lo[i], a.Hi[i], b.Lo[i], b.Hi[i]) != spanOverlap {
			return false
		}
	}
	return true
}

func cloneCoords(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}
