package route

import (
	"errors"
	"reflect"
	"testing"

	"hyperm/internal/overlay"
)

// The hand-built topology used throughout: four unit-square quadrants.
//
//	+-----+-----+
//	|  2  |  3  |
//	+-----+-----+
//	|  0  |  1  |
//	+-----+-----+
//
// Node 0 owns [0,.5)x[0,.5), 1 owns [.5,1)x[0,.5), 2 owns [0,.5)x[.5,1),
// 3 owns [.5,1)x[.5,1). Every node neighbors every other except its
// diagonal opposite.
func quadrants() []NodeView {
	z := func(lo0, lo1 float64) []Zone {
		return []Zone{{Lo: []float64{lo0, lo1}, Hi: []float64{lo0 + 0.5, lo1 + 0.5}}}
	}
	zones := [][]Zone{z(0, 0), z(0.5, 0), z(0, 0.5), z(0.5, 0.5)}
	nbs := [][]int{{1, 2}, {0, 3}, {0, 3}, {1, 2}}
	views := make([]NodeView, 4)
	for id := range views {
		views[id] = NodeView{ID: id, Zones: zones[id]}
		for _, nb := range nbs[id] {
			views[id].Neighbors = append(views[id].Neighbors, NeighborView{ID: nb, Zones: zones[nb]})
		}
	}
	return views
}

type sliceSource []NodeView

func (s sliceSource) View(id int) (NodeView, error) { return s[id], nil }

func TestRouterReachesOwner(t *testing.T) {
	views := quadrants()
	r := NewRouter(views[0], []float64{0.75, 0.75}, 100)
	var path []int
	for {
		step, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if step.Kind == StepDone {
			break
		}
		if step.Kind != StepRouteHop {
			t.Fatalf("unexpected step kind %v", step.Kind)
		}
		path = append(path, step.To)
		r.Feed(views[step.To], 1)
	}
	if owner := r.Owner(); owner.ID != 3 {
		t.Fatalf("owner = %d, want 3", owner.ID)
	}
	// Greedy from 0 toward (0.75,0.75): neighbors 1 and 2 are equidistant,
	// first strict minimum wins, so the path goes through 1.
	if want := []int{1, 3}; !reflect.DeepEqual(path, want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	if r.Hops() != 2 {
		t.Fatalf("hops = %d, want 2", r.Hops())
	}
}

func TestRouterImmediateOwner(t *testing.T) {
	views := quadrants()
	r := NewRouter(views[2], []float64{0.25, 0.75}, 100)
	step, err := r.Next()
	if err != nil || step.Kind != StepDone {
		t.Fatalf("Next = %+v, %v; want immediate StepDone", step, err)
	}
	if r.Hops() != 0 {
		t.Fatalf("hops = %d, want 0", r.Hops())
	}
}

func TestRouterDriverHopAccounting(t *testing.T) {
	// The driver reports 3 hops per contact (retransmitting radio link);
	// the limit counts driver hops, not contacts.
	views := quadrants()
	r := NewRouter(views[0], []float64{0.75, 0.75}, 100)
	for {
		step, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if step.Kind == StepDone {
			break
		}
		r.Feed(views[step.To], 3)
	}
	if r.Hops() != 6 {
		t.Fatalf("hops = %d, want 6", r.Hops())
	}
}

func TestRouterLoopLimit(t *testing.T) {
	// Two nodes whose zones do not cover the key: routing ping-pongs until
	// the driver-accounted hop total exceeds the limit.
	zs := []Zone{{Lo: []float64{0, 0}, Hi: []float64{0.5, 0.5}}}
	a := NodeView{ID: 0, Zones: zs, Neighbors: []NeighborView{{ID: 1, Zones: zs}}}
	b := NodeView{ID: 1, Zones: zs, Neighbors: []NeighborView{{ID: 0, Zones: zs}}}
	views := []NodeView{a, b}
	r := NewRouter(a, []float64{0.9, 0.9}, 4)
	for {
		step, err := r.Next()
		if errors.Is(err, ErrLoopLimit) {
			// ResolveOwner completes the route out-of-band.
			owner := NodeView{ID: 9, Zones: []Zone{{Lo: []float64{0.5, 0.5}, Hi: []float64{1, 1}}}}
			r.ResolveOwner(owner, 1)
			continue
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if step.Kind == StepDone {
			if step.From != 9 {
				t.Fatalf("resolved owner = %d, want 9", step.From)
			}
			break
		}
		r.Feed(views[step.To], 1)
	}
	if r.Hops() != 6 { // limit 4 exceeded at hops=5, +1 for the resolve
		t.Fatalf("hops = %d, want 6", r.Hops())
	}
}

func TestRouterNoNeighbor(t *testing.T) {
	lone := NodeView{ID: 0, Zones: []Zone{{Lo: []float64{0, 0}, Hi: []float64{0.5, 0.5}}}}
	r := NewRouter(lone, []float64{0.9, 0.9}, 100)
	if _, err := r.Next(); !errors.Is(err, ErrNoNeighbor) {
		t.Fatalf("Next err = %v, want ErrNoNeighbor", err)
	}
}

func TestRouterVisitedPenalty(t *testing.T) {
	// A strip of three zones a|b|c with the key (0.9, 0.5) beyond c, wrapped
	// near a across the torus seam. From b, visited a is nearest (torus dist
	// 0.1 vs c's 0.15) but the penalty steers the route to unvisited c; from
	// c, the only neighbor is visited b, taken anyway as a last resort.
	za := []Zone{{Lo: []float64{0, 0}, Hi: []float64{0.25, 1}}}
	zb := []Zone{{Lo: []float64{0.25, 0}, Hi: []float64{0.5, 1}}}
	zc := []Zone{{Lo: []float64{0.5, 0}, Hi: []float64{0.75, 1}}}
	a := NodeView{ID: 0, Zones: za, Neighbors: []NeighborView{{ID: 1, Zones: zb}}}
	b := NodeView{ID: 1, Zones: zb, Neighbors: []NeighborView{{ID: 0, Zones: za}, {ID: 2, Zones: zc}}}
	c := NodeView{ID: 2, Zones: zc, Neighbors: []NeighborView{{ID: 1, Zones: zb}}}
	key := []float64{0.9, 0.5}

	r := NewRouter(a, key, 100)
	step, err := r.Next()
	if err != nil || step.To != 1 {
		t.Fatalf("step = %+v, %v; want hop to 1", step, err)
	}
	r.Feed(b, 1)
	step, err = r.Next()
	if err != nil || step.To != 2 {
		t.Fatalf("step = %+v, %v; want penalized hop to 2, not visited 0", step, err)
	}
	r.Feed(c, 1)
	step, err = r.Next()
	if err != nil || step.To != 1 {
		t.Fatalf("step = %+v, %v; want last-resort revisit of 1", step, err)
	}
}

func TestRouterMisusePanics(t *testing.T) {
	views := quadrants()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRouter(views[0], []float64{0.75, 0.75}, 100)
	mustPanic("Feed without pending", func() { r.Feed(views[1], 1) })
	mustPanic("ResolveOwner without stall", func() { r.ResolveOwner(views[1], 1) })
	mustPanic("Owner before done", func() { r.Owner() })
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	mustPanic("Next before Feed", func() { r.Next() })
}

func TestFloodVisitsIntersectingZones(t *testing.T) {
	views := quadrants()
	// Sphere at the center of node 0's zone, radius large enough to touch 1
	// and 2 but not 3's zone... at (0.25,0.25) r=0.3: dist to zone 3 is
	// sqrt(0.0625*2)≈0.354 > 0.3, dist to zones 1,2 is 0.05 < 0.3.
	f := NewFlood(views[0], []float64{0.25, 0.25}, 0.3)
	var visits [][2]int
	for {
		step := f.Next()
		if step.Kind == StepDone {
			break
		}
		visits = append(visits, [2]int{step.From, step.To})
		f.Feed(views[step.To])
	}
	want := [][2]int{{0, 1}, {0, 2}}
	if !reflect.DeepEqual(visits, want) {
		t.Fatalf("visits = %v, want %v", visits, want)
	}
}

func TestFloodSkipAbandonsRegion(t *testing.T) {
	views := quadrants()
	// Sphere covering everything: without Skip all three others are visited.
	f := NewFlood(views[0], []float64{0.25, 0.25}, 1)
	var visited []int
	for {
		step := f.Next()
		if step.Kind == StepDone {
			break
		}
		if step.To == 1 {
			f.Skip() // message to 1 lost; 3 is still reachable via 2
			continue
		}
		visited = append(visited, step.To)
		f.Feed(views[step.To])
	}
	if want := []int{2, 3}; !reflect.DeepEqual(visited, want) {
		t.Fatalf("visited = %v, want %v", visited, want)
	}
}

func TestFloodNeverRevisits(t *testing.T) {
	views := quadrants()
	f := NewFlood(views[0], []float64{0.5, 0.5}, 1)
	seen := map[int]bool{}
	for {
		step := f.Next()
		if step.Kind == StepDone {
			break
		}
		if seen[step.To] {
			t.Fatalf("node %d visited twice", step.To)
		}
		seen[step.To] = true
		f.Feed(views[step.To])
	}
	if len(seen) != 3 {
		t.Fatalf("visited %d nodes, want 3", len(seen))
	}
}

func TestFloodMisusePanics(t *testing.T) {
	views := quadrants()
	f := NewFlood(views[0], []float64{0.25, 0.25}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Next before Feed/Skip did not panic")
		}
	}()
	f.Next()
	f.Next()
}

// searchViews builds the quadrant topology with records: node 3 owns a
// sphere entry replicated to node 1, node 0 owns a point entry.
func searchViews() []NodeView {
	views := quadrants()
	sphere := RecordView{Seq: 0, Entry: overlay.Entry{Key: []float64{0.6, 0.6}, Radius: 0.2, Payload: "sphere"}}
	point := RecordView{Seq: 1, Entry: overlay.Entry{Key: []float64{0.1, 0.1}, Payload: "point"}}
	views[3].Owned = []RecordView{sphere}
	views[1].Replicas = []RecordView{sphere}
	views[0].Owned = []RecordView{point}
	return views
}

func TestSearchCollectsAndDeduplicates(t *testing.T) {
	views := searchViews()
	// Query sphere centered in node 1's zone touching every zone: the
	// replica on 1 (the owner) is collected first; the original on 3 is
	// deduplicated by sequence number; the far point on 0 does not match.
	s := NewSearch(views[0], []float64{0.6, 0.25}, 0.4, 100)
	entries, hops, err := Run(s, sliceSource(views))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(entries) != 1 || entries[0].Payload != "sphere" {
		t.Fatalf("entries = %v, want the single sphere entry", entries)
	}
	// 1 routing hop (0→1) + 3 flood visits (1's wave: 0,3; then 2).
	if hops != 4 {
		t.Fatalf("hops = %d, want 4", hops)
	}
}

func TestSearchOwnerRecordsCollectedWithoutFloodHop(t *testing.T) {
	views := searchViews()
	// Zero-radius query at the point entry: owner 0 contributes its record
	// at the phase transition; no flood visit matches r=0 beyond the owner.
	s := NewSearch(views[0], []float64{0.1, 0.1}, 0, 100)
	entries, hops, err := Run(s, sliceSource(views))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(entries) != 1 || entries[0].Payload != "point" {
		t.Fatalf("entries = %v, want the single point entry", entries)
	}
	if hops != 0 {
		t.Fatalf("hops = %d, want 0", hops)
	}
}

func TestSearchSentinelsSurface(t *testing.T) {
	lone := NodeView{ID: 0, Zones: []Zone{{Lo: []float64{0, 0}, Hi: []float64{0.5, 0.5}}}}
	s := NewSearch(lone, []float64{0.9, 0.9}, 0.1, 100)
	_, _, err := Run(s, sliceSource([]NodeView{lone}))
	if !errors.Is(err, ErrNoNeighbor) {
		t.Fatalf("Run err = %v, want ErrNoNeighbor", err)
	}
}

type failingSource struct{ err error }

func (f failingSource) View(int) (NodeView, error) { return NodeView{}, f.err }

func TestRunSourceFailureAborts(t *testing.T) {
	views := quadrants()
	boom := errors.New("boom")
	s := NewSearch(views[0], []float64{0.75, 0.75}, 0.1, 100)
	_, _, err := Run(s, failingSource{err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want boom", err)
	}
}

func TestSearchSkipChargesHops(t *testing.T) {
	views := searchViews()
	s := NewSearch(views[1], []float64{0.6, 0.25}, 0.4, 100)
	var total int
	for {
		step, err := s.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if step.Kind == StepDone {
			break
		}
		if step.Kind == StepFloodVisit && step.To == 3 {
			s.Skip(1) // lose the message carrying the only original
			total++
			continue
		}
		s.Feed(views[step.To], 1)
		total++
	}
	// The replica on the owner still answers: loss degrades coverage, not
	// correctness of what was reachable.
	if entries := s.Results(); len(entries) != 1 || entries[0].Payload != "sphere" {
		t.Fatalf("entries = %v, want the replica's sphere entry", entries)
	}
	if s.Hops() != total {
		t.Fatalf("Hops() = %d, want %d (skips still charged)", s.Hops(), total)
	}
}
