package route

import "sort"

// Delegated flood aggregation: the pure kernel behind the can_search_agg
// RPC. A coordinator (or an upstream delegate) hands a contacted node the
// query sphere plus the set of node ids already claimed elsewhere; the
// delegate floods the sphere region reachable from its own zones WITHOUT
// crossing the claimed set, gathers the full view of every node it visits,
// and recursively sub-delegates whole sub-regions to a bounded number of
// neighbors. The gathered views form a pool the coordinator REPLAYS the
// ordinary serial Search machine over — so delegation changes who fetches
// views, never what the answer is. Byte-identity to the serial reference
// follows from two properties this file maintains:
//
//  1. Disjoint claim regions: a sub-delegate receives the delegator's
//     current visited set as its claimed set and pre-marks it, so no node
//     is expanded by two delegates. Residual duplicates (a view returned
//     by two branches through piggybacking) are removed by MergeViews'
//     exact first-wins dedup.
//  2. The pool is advisory: the replay machine decides the visit order and
//     the hops accounting exactly as route.Run does, falling back to a
//     direct fetch for any node the gather missed. Gaps cost extra RPCs,
//     never correctness.

// NewFloodClaimed starts a flood of the sphere (key, radius) rooted at
// root, with every id in claimed pre-marked visited — the flood expands
// only the part of the sphere region reachable from root without crossing
// nodes another delegate has already claimed. The root itself is always
// considered visited.
func NewFloodClaimed(root NodeView, key []float64, radius float64, claimed []int) *Flood {
	f := NewFlood(root, key, radius)
	for _, id := range claimed {
		f.visited[id] = true
	}
	return f
}

// Claim marks id visited without expanding it — the driver learned (from a
// sub-delegate's result) that the node is covered elsewhere. Claiming an
// already-visited id is a no-op.
func (f *Flood) Claim(id int) { f.visited[id] = true }

// Claimed returns the flood's visited set — claimed inputs, the root,
// every expanded node, and every neighbor passed over as non-intersecting —
// sorted ascending for deterministic wire encoding.
func (f *Flood) Claimed() []int {
	out := make([]int, 0, len(f.visited))
	for id := range f.visited {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// DelegateResult is what one delegation returns: every full node view the
// delegate (and its sub-delegates) gathered — the delegate's own view
// first — and the final claimed set of its flood.
type DelegateResult struct {
	Views   []NodeView
	Claimed []int
}

// SubDelegate forwards one sub-delegation: node to (a freshly claimed
// frontier neighbor) should flood the same sphere over the region reachable
// from it avoiding claimed, with depth sub-delegation levels remaining, and
// return everything it gathered. An error means the sub-delegation could
// not run (peer dead, budget exceeded); the delegator falls back to a
// direct fetch of to.
type SubDelegate func(to int, claimed []int, depth int) (DelegateResult, error)

// Delegate floods the sphere (key, radius) from root, avoiding claimed,
// gathering the full view of every node visited. Up to fanout frontier
// claims are forwarded through sub (each with the flood's then-current
// visited set as its claimed set, and depth-1 remaining); the rest are
// fetched directly from src. Sub-delegations run sequentially in claim
// order, so their claim regions are disjoint by construction. A failed
// fetch or failed sub-delegation abandons that visit (Skip) — the region
// behind it is left for the coordinator's replay to fall back on. With
// depth <= 0, sub == nil, or fanout <= 0 no sub-delegation happens and
// Delegate degenerates to a plain gather flood.
func Delegate(root NodeView, key []float64, radius float64, claimed []int, depth, fanout int, src ViewSource, sub SubDelegate) DelegateResult {
	f := NewFloodClaimed(root, key, radius, claimed)
	res := DelegateResult{Views: []NodeView{root}}
	subUsed := 0
	for {
		step := f.Next()
		if step.Kind == StepDone {
			break
		}
		if depth > 0 && fanout > 0 && sub != nil && subUsed < fanout {
			subUsed++
			if r, err := sub(step.To, f.Claimed(), depth-1); err == nil {
				res.Views = append(res.Views, r.Views...)
				for _, id := range r.Claimed {
					f.Claim(id)
				}
				// Expand the target through its returned view so the flood
				// can still reach regions adjacent to it that the
				// sub-delegate's claim set walled off from its own flood.
				if tv, ok := findView(r.Views, step.To); ok {
					f.Feed(tv)
				} else {
					f.Skip()
				}
				continue
			}
			// Sub-delegation failed: fall through to a direct fetch.
		}
		v, err := src.View(step.To)
		if err != nil {
			f.Skip() // unreachable now; the replay will retry or abort
			continue
		}
		res.Views = append(res.Views, v)
		f.Feed(v)
	}
	res.Claimed = f.Claimed()
	return res
}

func findView(views []NodeView, id int) (NodeView, bool) {
	for _, v := range views {
		if v.ID == id {
			return v, true
		}
	}
	return NodeView{}, false
}

// MergeViews merges delegate results into a pool keyed by node id with
// exact first-wins dedup: a view already in the pool is never replaced, so
// repeated piggybacks across delegation branches cannot perturb what the
// replay machine sees. The pool is what makes delegated answers
// byte-identical to the serial reference — the replay consults it before
// issuing any RPC, and every entry is a full node view indistinguishable
// from a direct can_search response.
func MergeViews(pool map[int]NodeView, results ...DelegateResult) {
	for _, r := range results {
		for _, v := range r.Views {
			if _, ok := pool[v.ID]; !ok {
				pool[v.ID] = v
			}
		}
	}
}
