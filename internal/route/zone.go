package route

import (
	"fmt"
	"math"
)

// Zone is an axis-aligned half-open box [Lo, Hi) inside the unit torus.
// Zones produced by binary splits never wrap around the torus boundary.
type Zone struct {
	Lo, Hi []float64
}

// Contains reports whether point p lies inside the zone.
func (z Zone) Contains(p []float64) bool {
	for i := range z.Lo {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the zone's key-space volume.
func (z Zone) Volume() float64 {
	v := 1.0
	for i := range z.Lo {
		v *= z.Hi[i] - z.Lo[i]
	}
	return v
}

// String renders the zone box.
func (z Zone) String() string { return fmt.Sprintf("zone%v-%v", z.Lo, z.Hi) }

// circDist is the distance between two coordinates on the unit circle.
func circDist(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// coordDistToSpan returns the torus distance from coordinate x to the
// interval [lo, hi) on the unit circle.
func coordDistToSpan(x, lo, hi float64) float64 {
	if hi-lo >= 1 { // full axis
		return 0
	}
	if x >= lo && x < hi {
		return 0
	}
	return math.Min(circDist(x, lo), circDist(x, hi))
}

// DistToPoint returns the torus distance from point p to the closest point
// of the zone.
func (z Zone) DistToPoint(p []float64) float64 {
	var s float64
	for i := range z.Lo {
		d := coordDistToSpan(p[i], z.Lo[i], z.Hi[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// IntersectsSphere reports whether a sphere of the given radius centered at
// key touches the zone (under the torus metric).
func (z Zone) IntersectsSphere(key []float64, radius float64) bool {
	return z.DistToPoint(key) <= radius
}

// TorusDist returns the torus (wrap-around) Euclidean distance between two
// key-space points.
func TorusDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := circDist(a[i], b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// ZonesContain reports whether any of the zones contains p. A node may
// manage several zones after a departure takeover; for routing and flood
// purposes the set behaves as their union.
func ZonesContain(zs []Zone, p []float64) bool {
	for _, z := range zs {
		if z.Contains(p) {
			return true
		}
	}
	return false
}

// ZonesDist is the torus distance from p to the closest of the zones
// (infinite for an empty set — a departed node is unroutable).
func ZonesDist(zs []Zone, p []float64) float64 {
	best := math.Inf(1)
	for _, z := range zs {
		if d := z.DistToPoint(p); d < best {
			best = d
		}
	}
	return best
}

// ZonesIntersect reports whether any of the zones touches the query sphere.
func ZonesIntersect(zs []Zone, key []float64, radius float64) bool {
	for _, z := range zs {
		if z.IntersectsSphere(key, radius) {
			return true
		}
	}
	return false
}
