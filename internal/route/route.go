// Package route is the routing core of the CAN overlay: the greedy-route and
// sphere-flood decision logic of Hyper-M's §4 lookup path, extracted into
// pure, transport-agnostic state machines. The machines consume abstract node
// views — a node's zones, its neighbor table, and its stored records — and
// emit explicit decisions (route hop, flood visit, done); *how* a view is
// obtained (an in-memory pointer chase in the simulator, a can_search RPC in
// the serving runtime) and *what* a contact costs (retransmission attempts,
// one RPC) is entirely the driver's business.
//
// Three machines are provided, each advanced one decision at a time:
//
//   - Router greedily routes to the owner of a key: each step names the
//     neighbor whose zones are closest to the target under the torus metric
//     (+1e6 penalty for already-visited nodes, first strict minimum winning
//     ties — neighbor-list order is significant). Two stall outcomes are
//     typed sentinels: ErrLoopLimit (the driver-accounted hop total passed
//     the limit) and ErrNoNeighbor (no neighbor to forward to). Both are
//     unreachable on a healthy topology; a driver with global knowledge (the
//     simulator) resolves them via ResolveOwner, one without (a serving
//     node) surfaces them as request errors.
//   - Flood expands breadth-first from a root over every node whose zones
//     intersect a sphere: visits are emitted in frontier order, each
//     neighbor is claimed (visited) before its zones are tested, and a
//     visit may be Feed (expand) or Skip (message lost — the region goes
//     unexplored), which is how the simulator injects radio loss.
//   - Search composes the two into the full sphere lookup: route to the
//     owner of the query center, then flood the zones the query sphere
//     touches, collecting every record whose own sphere intersects the
//     query, deduplicated by overlay sequence number in arrival order.
//
// Because both the simulator (internal/can) and the serving runtime
// (internal/node) drive these same machines, their routing and flood
// decisions are byte-identical by construction — the property the serving
// determinism oracle used to enforce against a hand-maintained replica.
package route

import (
	"errors"
	"math"

	"hyperm/internal/overlay"
)

// ErrLoopLimit reports that greedy routing consumed its hop budget without
// reaching the owner — a routing loop, impossible on a consistent topology.
var ErrLoopLimit = errors.New("route: routing hop limit exceeded")

// ErrNoNeighbor reports that the current node has no neighbor to forward to —
// a dead end, impossible on a consistent topology with more than one node.
var ErrNoNeighbor = errors.New("route: no routable neighbor")

// Wire detail tokens for the stall sentinels. Serving layers attach these to
// remote errors so clients can count routing stalls separately from
// transport failures.
const (
	DetailLoopLimit  = "route/loop-limit"
	DetailNoNeighbor = "route/no-neighbor"
)

// visitedPenalty is added to the routing distance of already-visited
// neighbors: revisits are strongly avoided but remain a last resort.
const visitedPenalty = 1e6

// RecordView is one stored index record as seen from a node's slice of the
// overlay: the entry plus the overlay-wide sequence number replicas share,
// which is what lets a searcher deduplicate results exactly like the
// in-process flood does.
type RecordView struct {
	Seq   int
	Entry overlay.Entry
}

// NeighborView is the routing-table knowledge a CAN node keeps about one
// neighbor: its id and current zones. Greedy routing and flood-expansion
// decisions are made from this information alone, so a serving node carrying
// its NeighborViews can route without any global state.
type NeighborView struct {
	ID    int
	Zones []Zone
}

// NodeView is a self-contained copy of everything one node holds: its zones,
// its neighbor table (in routing order — order matters, greedy tie-breaks
// and flood visit order follow list position), and its stored records (owned
// first, then replicas, each in storage order). The machines treat views as
// read-only; drivers may share live slices.
type NodeView struct {
	ID        int
	Zones     []Zone
	Neighbors []NeighborView
	Owned     []RecordView
	Replicas  []RecordView
}

// ViewSource supplies node views on demand — the seam between the decision
// machines and whatever substrate holds the actual overlay state. The
// simulator answers from its in-memory nodes; a serving node issues a
// can_search RPC per call.
type ViewSource interface {
	// View returns node id's current view. An error aborts the lookup (only
	// possible for fallible sources; the in-process source never fails).
	View(id int) (NodeView, error)
}

// SourceFunc adapts a function to ViewSource, so drivers can compose sources
// — a view cache consulted in front of an RPC fetcher, a fault injector
// around an in-memory source — without declaring a type per combination.
// Because every composition still yields one view per id, the machines'
// decisions (and therefore the answers) are independent of which layer
// actually produced the view; only the contact cost changes.
type SourceFunc func(id int) (NodeView, error)

// View calls f.
func (f SourceFunc) View(id int) (NodeView, error) { return f(id) }

// StepKind classifies one machine decision.
type StepKind int

const (
	// StepRouteHop asks the driver to contact node To as a greedy routing
	// hop and Feed its view.
	StepRouteHop StepKind = iota
	// StepFloodVisit asks the driver to contact node To as a flood
	// expansion and Feed its view — or Skip it if the message is lost.
	StepFloodVisit
	// StepDone ends the machine; no further contact is required.
	StepDone
)

// Step is one decision emitted by a machine: which node to contact (To) and
// on whose behalf (From — the node whose view produced the decision, which
// is also the message sender for accounting). When Next returns an error,
// only From is meaningful.
type Step struct {
	Kind     StepKind
	From, To int
}

// Router greedily routes to the owner of a key, one hop decision at a time.
type Router struct {
	key     []float64
	limit   int
	hops    int
	cur     NodeView
	visited map[int]bool
	pending bool // a RouteHop awaits Feed
	stalled bool // a stall awaits ResolveOwner
	done    bool
}

// NewRouter starts a route from the start view toward the owner of key.
// hopLimit bounds the driver-accounted hop total before the ErrLoopLimit
// stall fires (the CAN simulator uses 8*nodes+16).
func NewRouter(start NodeView, key []float64, hopLimit int) *Router {
	return &Router{key: key, limit: hopLimit, cur: start, visited: map[int]bool{start.ID: true}}
}

// Next emits the next routing decision: StepDone when the current node owns
// the key, a StepRouteHop to the greedy-best neighbor otherwise. The stall
// outcomes ErrLoopLimit and ErrNoNeighbor must be answered with ResolveOwner
// (or the route abandoned).
func (r *Router) Next() (Step, error) {
	switch {
	case r.pending:
		panic("route: Next before Feed of the pending hop")
	case r.stalled:
		panic("route: Next before ResolveOwner of a stalled route")
	}
	if r.done || ZonesContain(r.cur.Zones, r.key) {
		r.done = true
		return Step{Kind: StepDone, From: r.cur.ID}, nil
	}
	if r.hops > r.limit {
		r.stalled = true
		return Step{From: r.cur.ID}, ErrLoopLimit
	}
	bestID, bestDist := -1, math.Inf(1)
	for _, nb := range r.cur.Neighbors {
		d := ZonesDist(nb.Zones, r.key)
		if r.visited[nb.ID] {
			d += visitedPenalty
		}
		if d < bestDist {
			bestID, bestDist = nb.ID, d
		}
	}
	if bestID < 0 {
		r.stalled = true
		return Step{From: r.cur.ID}, ErrNoNeighbor
	}
	r.pending = true
	return Step{Kind: StepRouteHop, From: r.cur.ID, To: bestID}, nil
}

// Feed delivers the view of the node named by the last StepRouteHop, along
// with the hops the contact cost (1 for an RPC; the attempt count for the
// simulator's retransmitting radio links — the total feeds the loop limit).
func (r *Router) Feed(v NodeView, hops int) {
	if !r.pending {
		panic("route: Feed without a pending hop")
	}
	r.pending = false
	r.hops += hops
	r.cur = v
	r.visited[v.ID] = true
}

// ResolveOwner answers a stall with the owner's view obtained out-of-band
// (the simulator's global scan), charging the given hops for the direct
// message. The route completes on the next Next.
func (r *Router) ResolveOwner(v NodeView, hops int) {
	if !r.stalled {
		panic("route: ResolveOwner without a stalled route")
	}
	r.stalled = false
	r.hops += hops
	r.cur = v
	r.done = true
}

// Owner returns the owner's view after StepDone.
func (r *Router) Owner() NodeView {
	if !r.done {
		panic("route: Owner before the route completed")
	}
	return r.cur
}

// Hops returns the accumulated driver-reported hop total.
func (r *Router) Hops() int { return r.hops }
