package route

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"hyperm/internal/overlay"
)

var errDown = errors.New("route_test: peer down")

func entryOf(key []float64, radius float64, payload int) overlay.Entry {
	return overlay.Entry{Key: key, Radius: radius, Payload: payload}
}

// randomSplitTopology grows a CAN-style tiling of the unit box by repeated
// zone splits (one zone per node, like a join-only history), derives
// neighbor tables from zone adjacency in ascending id order, and scatters
// records with the replication invariant: the owner of a record's key holds
// it as Owned, every other node whose zone the record's sphere touches
// holds it as a Replica.
func randomSplitTopology(rng *rand.Rand, nodes, dim, records int) map[int]NodeView {
	zones := []Zone{unitZone(dim)}
	for id := 1; id < nodes; id++ {
		pick := rng.Intn(len(zones))
		point := make([]float64, dim)
		z := zones[pick]
		for i := range point {
			point[i] = z.Lo[i] + rng.Float64()*(z.Hi[i]-z.Lo[i])
		}
		kept, taken := SplitZone(z, point)
		zones[pick] = kept
		zones = append(zones, taken)
	}
	views := make(map[int]NodeView, nodes)
	for id := 0; id < nodes; id++ {
		v := NodeView{ID: id, Zones: []Zone{zones[id]}}
		for nb := 0; nb < nodes; nb++ {
			if nb != id && ZoneSetsAdjacent(v.Zones, []Zone{zones[nb]}) {
				v.Neighbors = append(v.Neighbors, NeighborView{ID: nb, Zones: []Zone{zones[nb]}})
			}
		}
		views[id] = v
	}
	for seq := 0; seq < records; seq++ {
		key := make([]float64, dim)
		for i := range key {
			key[i] = rng.Float64()
		}
		rec := RecordView{Seq: seq, Entry: entryOf(key, rng.Float64()*0.3, seq)}
		for id := 0; id < nodes; id++ {
			v := views[id]
			switch {
			case zones[id].Contains(key):
				v.Owned = append(v.Owned, rec)
			case zones[id].IntersectsSphere(key, rec.Entry.Radius):
				v.Replicas = append(v.Replicas, rec)
			default:
				continue
			}
			views[id] = v
		}
	}
	return views
}

func unitZone(dim int) Zone {
	z := Zone{Lo: make([]float64, dim), Hi: make([]float64, dim)}
	for i := range z.Hi {
		z.Hi[i] = 1
	}
	return z
}

// failableSource serves views[id], failing for ids in down — the
// fixed-outcome fault injection both the reference and the delegated drive
// see identically.
func failableSource(views map[int]NodeView, down map[int]bool) SourceFunc {
	return func(id int) (NodeView, error) {
		if down[id] {
			return NodeView{}, errDown
		}
		v, ok := views[id]
		if !ok {
			return NodeView{}, errDown
		}
		return v, nil
	}
}

// delegatedLookup runs a sphere lookup the way the serving coordinator's
// delegated mode does: drive the ordinary serial Search machine, consulting
// a pool of gathered views before the fallback source, and on the first
// pool miss of a flood visit delegate the whole remaining region to that
// node (recursively, with the given depth/fanout budgets), merging
// everything it returns into the pool. Routing-phase hops never delegate.
func delegatedLookup(t *testing.T, views map[int]NodeView, down map[int]bool, start int, key []float64, radius float64, depth, fanout int) (entries []RecordView, hops int, err error) {
	t.Helper()
	src := failableSource(views, down)
	var sub SubDelegate
	sub = func(to int, claimed []int, d int) (DelegateResult, error) {
		if down[to] {
			return DelegateResult{}, errDown
		}
		return Delegate(views[to], key, radius, claimed, d, fanout, src, sub), nil
	}
	pool := map[int]NodeView{start: views[start]}
	hopLimit := 8*len(views) + 16
	s := NewSearch(views[start], key, radius, hopLimit)
	for {
		step, serr := s.Next()
		if serr != nil {
			return nil, s.Hops(), serr
		}
		if step.Kind == StepDone {
			out := make([]RecordView, 0, len(s.Results()))
			for _, e := range s.Results() {
				out = append(out, RecordView{Entry: e})
			}
			return out, s.Hops(), nil
		}
		v, ok := pool[step.To]
		if !ok {
			if step.Kind == StepFloodVisit && !down[step.To] {
				claimed := make([]int, 0, len(pool))
				for id := range pool {
					claimed = append(claimed, id)
				}
				r := Delegate(views[step.To], key, radius, claimed, depth, fanout, src, sub)
				MergeViews(pool, r)
				v, ok = pool[step.To]
			}
			if !ok {
				fv, ferr := src.View(step.To)
				if ferr != nil {
					return nil, s.Hops(), ferr
				}
				pool[step.To] = fv
				v = fv
			}
		}
		s.Feed(v, 1)
	}
}

// TestDelegateDifferential proves the delegation kernel's central claim:
// gather-then-replay returns entries, hops, and errors byte-identical to
// the serial route.Run reference, across random split topologies, random
// spheres, random delegation budgets, and injected peer failures.
func TestDelegateDifferential(t *testing.T) {
	for topo := 0; topo < 25; topo++ {
		rng := rand.New(rand.NewSource(int64(9000 + topo)))
		nodes := 2 + rng.Intn(38)
		dim := 2 + rng.Intn(3)
		views := randomSplitTopology(rng, nodes, dim, 4*nodes)
		down := map[int]bool{}
		if topo%3 == 1 { // a third of the topologies have dead peers
			for i := 0; i < 1+nodes/10; i++ {
				down[rng.Intn(nodes)] = true
			}
		}
		for q := 0; q < 8; q++ {
			start := rng.Intn(nodes)
			for down[start] {
				start = rng.Intn(nodes)
			}
			key := make([]float64, dim)
			for i := range key {
				key[i] = rng.Float64()
			}
			radius := rng.Float64() * 0.4
			if q == 0 {
				radius = 0
			}
			depth, fanout := rng.Intn(4), 1+rng.Intn(3)

			hopLimit := 8*len(views) + 16
			src := failableSource(views, down)
			wantEntries, wantHops, wantErr := Run(NewSearch(views[start], key, radius, hopLimit), src)
			gotEntries, gotHops, gotErr := delegatedLookup(t, views, down, start, key, radius, depth, fanout)

			if !errors.Is(gotErr, wantErr) && !(gotErr == nil && wantErr == nil) {
				t.Fatalf("topo %d q %d: err %v, want %v", topo, q, gotErr, wantErr)
			}
			if gotHops != wantHops {
				t.Fatalf("topo %d q %d: hops %d, want %d", topo, q, gotHops, wantHops)
			}
			flat := make([]RecordView, 0, len(wantEntries))
			for _, e := range wantEntries {
				flat = append(flat, RecordView{Entry: e})
			}
			if !(len(gotEntries) == 0 && len(flat) == 0) && !reflect.DeepEqual(gotEntries, flat) {
				t.Fatalf("topo %d q %d: entries diverge\n got %v\nwant %v", topo, q, gotEntries, flat)
			}
		}
	}
}

// TestFloodClaimed checks the claim-set mechanics the delegation protocol
// rides on: pre-claimed ids are never emitted, Claim suppresses future
// visits, and Claimed reports the sorted visited set.
func TestFloodClaimed(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	views := randomSplitTopology(rng, 12, 2, 0)
	key := []float64{0.5, 0.5}
	const radius = 2 // covers the whole box: every node is reachable

	f := NewFloodClaimed(views[0], key, radius, []int{3, 5})
	seen := map[int]bool{}
	for {
		step := f.Next()
		if step.Kind == StepDone {
			break
		}
		seen[step.To] = true
		if step.To == 7 {
			f.Claim(9) // pretend a sub-delegate covered 9
			f.Skip()
			continue
		}
		f.Feed(views[step.To])
	}
	for _, id := range []int{0, 3, 5} {
		if seen[id] {
			t.Fatalf("claimed/root node %d was emitted", id)
		}
	}
	if seen[9] {
		t.Fatalf("node 9 emitted after Claim")
	}
	claimed := f.Claimed()
	for i := 1; i < len(claimed); i++ {
		if claimed[i-1] >= claimed[i] {
			t.Fatalf("Claimed not sorted ascending: %v", claimed)
		}
	}
	for _, id := range []int{0, 3, 5, 9} {
		if !containsInt(claimed, id) {
			t.Fatalf("Claimed missing %d: %v", id, claimed)
		}
	}
}

func containsInt(xs []int, want int) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestMergeViewsFirstWins checks the exact-dedup contract: once a view for
// an id is pooled, later piggybacks (even different copies) never replace
// it, and merge order across results is respected.
func TestMergeViewsFirstWins(t *testing.T) {
	a := NodeView{ID: 1, Owned: []RecordView{{Seq: 10}}}
	b := NodeView{ID: 1, Owned: []RecordView{{Seq: 99}}}
	pool := map[int]NodeView{}
	MergeViews(pool, DelegateResult{Views: []NodeView{a}}, DelegateResult{Views: []NodeView{b, {ID: 2}}})
	if got := pool[1].Owned[0].Seq; got != 10 {
		t.Fatalf("pool[1] replaced: seq %d, want 10", got)
	}
	if _, ok := pool[2]; !ok {
		t.Fatalf("pool missing id 2")
	}
	MergeViews(pool) // no results: no-op
	if len(pool) != 2 {
		t.Fatalf("pool len %d, want 2", len(pool))
	}
}

// FuzzDelegateMerge fuzzes the gather/merge/replay pipeline against the
// serial reference on small random topologies derived from the fuzz input.
func FuzzDelegateMerge(f *testing.F) {
	f.Add([]byte("seed"), uint8(8), uint8(2), uint8(1), uint8(2))
	f.Add([]byte("wide"), uint8(20), uint8(3), uint8(3), uint8(1))
	f.Add([]byte{0xff, 0x01}, uint8(3), uint8(2), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, seed []byte, nodes, dim, depth, fanout uint8) {
		n := 2 + int(nodes)%30
		d := 2 + int(dim)%3
		h := fnv.New64a()
		h.Write(seed)
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		views := randomSplitTopology(rng, n, d, 3*n)
		down := map[int]bool{}
		if rng.Intn(2) == 0 {
			down[rng.Intn(n)] = true
		}
		start := rng.Intn(n)
		if down[start] {
			return
		}
		key := make([]float64, d)
		for i := range key {
			key[i] = rng.Float64()
		}
		radius := rng.Float64() * 0.5
		hopLimit := 8*n + 16
		src := failableSource(views, down)
		wantEntries, wantHops, wantErr := Run(NewSearch(views[start], key, radius, hopLimit), src)
		gotEntries, gotHops, gotErr := delegatedLookup(t, views, down, start, key, radius, int(depth)%4, 1+int(fanout)%3)
		if !errors.Is(gotErr, wantErr) && !(gotErr == nil && wantErr == nil) {
			t.Fatalf("err %v, want %v", gotErr, wantErr)
		}
		if gotHops != wantHops {
			t.Fatalf("hops %d, want %d", gotHops, wantHops)
		}
		flat := make([]RecordView, 0, len(wantEntries))
		for _, e := range wantEntries {
			flat = append(flat, RecordView{Entry: e})
		}
		if !(len(gotEntries) == 0 && len(flat) == 0) && !reflect.DeepEqual(gotEntries, flat) {
			t.Fatalf("entries diverge: got %v want %v", gotEntries, flat)
		}
	})
}
