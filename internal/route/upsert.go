package route

// This file holds the store-mutation rules of streaming incremental publish.
// Like the routing machines, they are shared verbatim by the simulator
// (can.Overlay) and the live runtime (membership.Manager): a streamed delta
// lands in each holder's record store through exactly this code, so the two
// substrates hold byte-identical stores after replaying the same deltas —
// the property the stream differential test asserts.

// UpsertRecord applies one streamed record delta to a node's stores: the
// record with rec.Seq is replaced in place wherever it already lives (owned
// or replica — its storage position, and therefore collection order, is
// preserved), and appended when absent — to owned on the sphere centroid's
// owner, to replicas on every other reached node (the same role rule as
// InsertSphere replication). Returns the updated slices.
func UpsertRecord(owned, replicas []RecordView, rec RecordView, asOwner bool) ([]RecordView, []RecordView) {
	for i := range owned {
		if owned[i].Seq == rec.Seq {
			owned[i] = rec
			return owned, replicas
		}
	}
	for i := range replicas {
		if replicas[i].Seq == rec.Seq {
			replicas[i] = rec
			return owned, replicas
		}
	}
	if asOwner {
		return append(owned, rec), replicas
	}
	return owned, append(replicas, rec)
}

// DeleteRecord removes the record with seq from a node's stores, preserving
// the storage order of the survivors. Reports whether anything was removed.
func DeleteRecord(owned, replicas []RecordView, seq int) ([]RecordView, []RecordView, bool) {
	for i := range owned {
		if owned[i].Seq == seq {
			return append(owned[:i], owned[i+1:]...), replicas, true
		}
	}
	for i := range replicas {
		if replicas[i].Seq == seq {
			return owned, append(replicas[:i], replicas[i+1:]...), true
		}
	}
	return owned, replicas, false
}
