package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire format of the TCP transport (documented in DESIGN.md §8):
//
//	frame    := u32_be(len(payload)) payload          (len <= maxFrame)
//	request  := u8(len(method)) method body
//	response := u8(status) rest
//	            status 0: rest = body
//	            status 1: rest = error message
//	            status 2: rest = u8(len(detail)) detail error-message
//
// Status 2 is a remote error carrying a machine-readable detail token (see
// WithDetail) ahead of the human-readable message. One frame carries exactly
// one request or response; a connection carries a strict request/response
// sequence (no interleaving), and concurrency comes from the per-address
// connection pool.
const (
	maxFrame           = 64 << 20
	statusOK           = 0
	statusRemote       = 1
	statusRemoteDetail = 2
)

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func encodeRequest(req Request) ([]byte, error) {
	if len(req.Method) > 255 {
		return nil, fmt.Errorf("transport: method name %q too long", req.Method)
	}
	out := make([]byte, 0, 1+len(req.Method)+len(req.Body))
	out = append(out, byte(len(req.Method)))
	out = append(out, req.Method...)
	return append(out, req.Body...), nil
}

func decodeRequest(payload []byte) (Request, error) {
	if len(payload) < 1 {
		return Request{}, fmt.Errorf("transport: empty request frame")
	}
	n := int(payload[0])
	if len(payload) < 1+n {
		return Request{}, fmt.Errorf("transport: truncated method name")
	}
	return Request{Method: string(payload[1 : 1+n]), Body: payload[1+n:]}, nil
}

// TCPTransport carries frames over real sockets with per-address connection
// reuse. Implements Transport.
type TCPTransport struct {
	mu     sync.Mutex
	idle   map[string][]net.Conn
	closed bool

	// maxIdle bounds pooled connections per address; extras are closed on
	// release.
	maxIdle int
	// dialTimeout bounds connection establishment when the context allows
	// more (or has no deadline).
	dialTimeout time.Duration
}

// NewTCP builds a TCP transport with a small per-address connection pool.
func NewTCP() *TCPTransport {
	return &TCPTransport{idle: make(map[string][]net.Conn), maxIdle: 4, dialTimeout: time.Second}
}

type tcpServer struct {
	tr      *TCPTransport
	ln      net.Listener
	h       Handler
	ctx     context.Context
	cancel  context.CancelFunc
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	once    sync.Once
	wg      sync.WaitGroup
	stopped bool
}

func (s *tcpServer) Addr() string { return s.ln.Addr().String() }

func (s *tcpServer) Close() error {
	s.once.Do(func() {
		s.mu.Lock()
		s.stopped = true
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		s.ln.Close()
		// Close connections before canceling the handler context: an
		// in-flight handler unblocked by cancelation must not win the race
		// and deliver its response on a connection we are abandoning.
		for _, c := range conns {
			c.Close()
		}
		s.cancel()
		s.wg.Wait()
	})
	return nil
}

// Serve listens on addr ("host:0" picks a free port) and serves each
// connection with a strict read-request/write-response loop.
func (t *TCPTransport) Serve(addr string, h Handler) (Server, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &tcpServer{tr: t, ln: ln, h: h, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv, nil
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // client went away or server closing
		}
		req, err := decodeRequest(payload)
		var out []byte
		if err == nil {
			var resp Response
			resp, err = s.h(s.ctx, req)
			if err == nil {
				out = append([]byte{statusOK}, resp.Body...)
			}
		}
		if err != nil {
			if detail := ErrorDetail(err); detail != "" && len(detail) <= 255 {
				out = append([]byte{statusRemoteDetail, byte(len(detail))}, detail...)
				out = append(out, err.Error()...)
			} else {
				out = append([]byte{statusRemote}, err.Error()...)
			}
		}
		if err := writeFrame(conn, out); err != nil {
			return
		}
	}
}

// Call dials (or reuses) a connection to addr, writes the request frame and
// reads the response frame, honoring ctx's deadline via socket deadlines.
// Any socket failure poisons the connection (it is dropped, not pooled) and
// comes back wrapped in ErrUnavailable; deadline expiry surfaces ctx.Err().
// An ErrUnavailable outcome additionally evicts every idle pooled
// connection to addr: they were dialed to the same (now gone) process, so a
// retry must reach a restarted or replaced node through a fresh dial, not
// through the next stale socket in the pool.
func (t *TCPTransport) Call(ctx context.Context, addr string, req Request) (Response, error) {
	conn, err := t.checkout(ctx, addr)
	if err != nil {
		if errors.Is(err, ErrUnavailable) {
			t.evictIdle(addr)
		}
		return Response{}, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}
	payload, err := encodeRequest(req)
	if err != nil {
		t.release(addr, conn, false)
		return Response{}, err
	}
	if err := writeFrame(conn, payload); err != nil {
		t.release(addr, conn, false)
		err = t.classify(ctx, "write", addr, err)
		if errors.Is(err, ErrUnavailable) {
			t.evictIdle(addr)
		}
		return Response{}, err
	}
	reply, err := readFrame(conn)
	if err != nil {
		t.release(addr, conn, false)
		err = t.classify(ctx, "read", addr, err)
		if errors.Is(err, ErrUnavailable) {
			t.evictIdle(addr)
		}
		return Response{}, err
	}
	t.release(addr, conn, true)
	if len(reply) < 1 {
		return Response{}, fmt.Errorf("transport: empty response frame from %s: %w", addr, ErrUnavailable)
	}
	switch reply[0] {
	case statusOK:
		return Response{Body: reply[1:]}, nil
	case statusRemote:
		return Response{}, &RemoteError{Msg: string(reply[1:])}
	case statusRemoteDetail:
		if len(reply) < 2 || len(reply) < 2+int(reply[1]) {
			return Response{}, fmt.Errorf("transport: truncated detail frame from %s: %w", addr, ErrUnavailable)
		}
		n := int(reply[1])
		return Response{}, &RemoteError{Detail: string(reply[2 : 2+n]), Msg: string(reply[2+n:])}
	default:
		return Response{}, fmt.Errorf("transport: bad response status %d from %s: %w", reply[0], addr, ErrUnavailable)
	}
}

// classify maps a socket error to the transport's failure taxonomy.
func (t *TCPTransport) classify(ctx context.Context, op, addr string, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return context.DeadlineExceeded
	}
	return fmt.Errorf("transport: %s %s: %v: %w", op, addr, err, ErrUnavailable)
}

// checkout returns a pooled connection to addr or dials a fresh one.
func (t *TCPTransport) checkout(ctx context.Context, addr string) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if conns := t.idle[addr]; len(conns) > 0 {
		conn := conns[len(conns)-1]
		t.idle[addr] = conns[:len(conns)-1]
		t.mu.Unlock()
		return conn, nil
	}
	t.mu.Unlock()

	d := net.Dialer{Timeout: t.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, t.classify(ctx, "dial", addr, err)
	}
	return conn, nil
}

// evictIdle closes and forgets every idle pooled connection to addr. Called
// after a call to addr failed at the transport level: the peer process the
// pool dialed is dead, and keeping its sockets would make every retry burn
// one stale connection each before reaching a restarted node.
func (t *TCPTransport) evictIdle(addr string) {
	t.mu.Lock()
	conns := t.idle[addr]
	if t.idle != nil {
		delete(t.idle, addr)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// release returns a healthy connection to the pool and closes broken or
// surplus ones.
func (t *TCPTransport) release(addr string, conn net.Conn, healthy bool) {
	if !healthy {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	t.mu.Lock()
	if t.closed || len(t.idle[addr]) >= t.maxIdle {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.idle[addr] = append(t.idle[addr], conn)
	t.mu.Unlock()
}

// Close tears down the pool. Servers created by Serve are independent and
// must be closed by their owners (the transport does not track them).
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	var conns []net.Conn
	for _, list := range t.idle {
		conns = append(conns, list...)
	}
	t.idle = nil
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return nil
}
