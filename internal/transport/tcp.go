package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire format of the TCP transport, v2 — multiplexed (documented in
// DESIGN.md §11):
//
//	frame    := u32_be(len(rest)) rest                (len <= maxFrame)
//	rest     := u64_be(msgid) payload
//	request  := u8(len(method)) method body           (client → server)
//	response := u8(status) tail                       (server → client)
//	           status 0: tail = body
//	           status 1: tail = error message
//	           status 2: tail = u8(len(detail)) detail error-message
//
// One connection per peer pair carries many concurrent RPCs: requests are
// correlated to responses by the connection-scoped msgid, so a slow response
// never head-of-line-blocks a fast one (the Kademlia read-loop idiom). Each
// side runs a read loop dispatching frames by msgid and a write loop that
// coalesces every frame queued since its last syscall into a single writev —
// under concurrent load (α-parallel lookups, pipelined levels) most frames
// share their syscall with neighbors, which is where the throughput of the
// serving hot path comes from on loopback.
//
// Per-request deadlines are enforced by the caller's context, not by socket
// deadlines (the socket is shared): an expired request abandons its msgid
// and its eventual response frame is dropped on arrival. Transport-level
// failures keep the three-way taxonomy: a broken connection fails exactly
// the requests in flight on it with ErrUnavailable (retryable — the next
// call re-dials), handler refusals cross as *RemoteError, and deadline
// expiry surfaces the context error.
const (
	maxFrame           = 64 << 20
	statusOK           = 0
	statusRemote       = 1
	statusRemoteDetail = 2
)

// appendFrame appends one length-prefixed msgid-tagged frame to buf.
func appendFrame(buf []byte, msgid uint64, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(8+len(payload)))
	buf = binary.BigEndian.AppendUint64(buf, msgid)
	return append(buf, payload...)
}

// readFrame reads one frame and returns its rest (msgid + payload).
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	rest := make([]byte, n)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, err
	}
	return rest, nil
}

func decodeRequest(payload []byte) (Request, error) {
	if len(payload) < 1 {
		return Request{}, fmt.Errorf("transport: empty request frame")
	}
	n := int(payload[0])
	if len(payload) < 1+n {
		return Request{}, fmt.Errorf("transport: truncated method name")
	}
	return Request{Method: string(payload[1 : 1+n]), Body: payload[1+n:]}, nil
}

// encodeStatus builds a response payload from a handler outcome.
func encodeStatus(resp Response, err error) []byte {
	if err == nil {
		out := make([]byte, 1+len(resp.Body))
		out[0] = statusOK
		copy(out[1:], resp.Body)
		return out
	}
	if detail := ErrorDetail(err); detail != "" && len(detail) <= 255 {
		out := append([]byte{statusRemoteDetail, byte(len(detail))}, detail...)
		return append(out, err.Error()...)
	}
	return append([]byte{statusRemote}, err.Error()...)
}

// decodeStatus maps a response payload back to the Call result.
func decodeStatus(payload []byte, addr string) (Response, error) {
	if len(payload) < 1 {
		return Response{}, fmt.Errorf("transport: empty response frame from %s: %w", addr, ErrUnavailable)
	}
	switch payload[0] {
	case statusOK:
		return Response{Body: payload[1:]}, nil
	case statusRemote:
		return Response{}, &RemoteError{Msg: string(payload[1:])}
	case statusRemoteDetail:
		if len(payload) < 2 || len(payload) < 2+int(payload[1]) {
			return Response{}, fmt.Errorf("transport: truncated detail frame from %s: %w", addr, ErrUnavailable)
		}
		n := int(payload[1])
		return Response{}, &RemoteError{Detail: string(payload[2 : 2+n]), Msg: string(payload[2+n:])}
	default:
		return Response{}, fmt.Errorf("transport: bad response status %d from %s: %w", payload[0], addr, ErrUnavailable)
	}
}

// frameWriter serializes frame writes onto one connection, coalescing every
// frame queued since the last syscall into a single write. Both sides of a
// multiplexed connection use one: concurrent requests (client) and
// out-of-order responses (server) each append a frame and return; the writer
// goroutine drains the whole queue per wakeup.
type frameWriter struct {
	conn net.Conn
	mu   sync.Mutex
	buf  []byte
	// spare is the batch the writer goroutine last flushed, handed back for
	// reuse once its conn.Write returns. Two buffers alternate: enqueuers fill
	// one while the syscall drains the other, so steady-state batching costs
	// no allocation.
	spare []byte
	wake  chan struct{}
	stop  chan struct{}
	done  chan struct{}
	err   error
}

// takeBuf returns the current append target, reviving the recycled batch
// buffer when the live one was just handed to the writer goroutine. Callers
// hold w.mu.
func (w *frameWriter) takeBuf() []byte {
	if w.buf == nil && w.spare != nil {
		w.buf, w.spare = w.spare[:0], nil
	}
	return w.buf
}

// maxRecycledBatch bounds the batch buffer kept for reuse; larger one-off
// bursts are left to the garbage collector.
const maxRecycledBatch = 1 << 20

func newFrameWriter(conn net.Conn) *frameWriter {
	w := &frameWriter{conn: conn, wake: make(chan struct{}, 1), stop: make(chan struct{}), done: make(chan struct{})}
	go w.loop()
	return w
}

// enqueue appends one frame for writing. Returns false if the writer has
// failed or stopped (the frame is dropped — the connection is dead anyway).
func (w *frameWriter) enqueue(msgid uint64, payload []byte) bool {
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return false
	}
	w.buf = appendFrame(w.takeBuf(), msgid, payload)
	w.mu.Unlock()
	w.kick()
	return true
}

// enqueueOK appends one success-status response frame, laying the header,
// status byte, and body straight into the writer's buffer — the per-response
// intermediate of the generic enqueue+encodeStatus pair, skipped on the path
// every successful RPC takes.
func (w *frameWriter) enqueueOK(msgid uint64, body []byte) bool {
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return false
	}
	w.buf = binary.BigEndian.AppendUint32(w.takeBuf(), uint32(8+1+len(body)))
	w.buf = binary.BigEndian.AppendUint64(w.buf, msgid)
	w.buf = append(w.buf, statusOK)
	w.buf = append(w.buf, body...)
	w.mu.Unlock()
	w.kick()
	return true
}

// enqueueRequest appends one request frame, laying method and body straight
// into the writer's buffer (the client-side twin of enqueueOK).
func (w *frameWriter) enqueueRequest(msgid uint64, method string, body []byte) bool {
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return false
	}
	w.buf = binary.BigEndian.AppendUint32(w.takeBuf(), uint32(8+1+len(method)+len(body)))
	w.buf = binary.BigEndian.AppendUint64(w.buf, msgid)
	w.buf = append(w.buf, byte(len(method)))
	w.buf = append(w.buf, method...)
	w.buf = append(w.buf, body...)
	w.mu.Unlock()
	w.kick()
	return true
}

// kick wakes the writer goroutine if it is idle.
func (w *frameWriter) kick() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

func (w *frameWriter) loop() {
	defer close(w.done)
	for {
		select {
		case <-w.stop:
			return
		case <-w.wake:
		}
		for {
			w.mu.Lock()
			buf := w.buf
			w.buf = nil
			w.mu.Unlock()
			if len(buf) == 0 {
				break
			}
			if _, err := w.conn.Write(buf); err != nil {
				w.mu.Lock()
				w.err = err
				w.buf = nil
				w.mu.Unlock()
				return
			}
			// Written out; hand the batch back for reuse (bounded, so one
			// burst cannot pin a huge buffer forever).
			if cap(buf) <= maxRecycledBatch {
				w.mu.Lock()
				if w.spare == nil {
					w.spare = buf[:0]
				}
				w.mu.Unlock()
			}
		}
	}
}

// close stops the writer goroutine. Pending unwritten frames are dropped.
func (w *frameWriter) close() {
	w.mu.Lock()
	if w.err == nil {
		w.err = net.ErrClosed
	}
	w.mu.Unlock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// TCPTransport multiplexes frames over one connection per remote address.
// Implements Transport.
type TCPTransport struct {
	mu     sync.Mutex
	conns  map[string]*connSlot
	closed bool
	calls  sync.WaitGroup // in-flight Calls, drained by Close

	// dialTimeout bounds connection establishment when the context allows
	// more (or has no deadline).
	dialTimeout time.Duration
}

// connSlot is the per-address dial rendezvous: the first caller dials while
// later callers wait on ready, so a burst of calls to a new peer produces one
// connection, not one per call.
type connSlot struct {
	ready chan struct{}
	mc    *muxConn
	err   error
}

// NewTCP builds a multiplexed TCP transport.
func NewTCP() *TCPTransport {
	return &TCPTransport{conns: make(map[string]*connSlot), dialTimeout: time.Second}
}

// muxConn is one multiplexed client connection: a write-coalescing sender, a
// read loop dispatching response frames by msgid, and the inflight map
// correlating the two.
type muxConn struct {
	t    *TCPTransport
	addr string
	conn net.Conn
	w    *frameWriter

	mu       sync.Mutex
	inflight map[uint64]chan []byte
	nextID   uint64
	closed   bool
	failErr  error // the classified teardown error inflight requests see
}

// errConnGone signals that a call raced the teardown of its pooled
// connection before its frame was written; the caller retries on a fresh
// dial without burning its retry budget.
var errConnGone = errors.New("transport: connection closed before send")

// Call multiplexes one request over the (possibly shared, possibly fresh)
// connection to addr. See the package wire-format comment for semantics.
func (t *TCPTransport) Call(ctx context.Context, addr string, req Request) (Response, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return Response{}, ErrClosed
	}
	t.calls.Add(1)
	t.mu.Unlock()
	defer t.calls.Done()

	if len(req.Method) > 255 {
		return Response{}, fmt.Errorf("transport: method name %q too long", req.Method)
	}
	// One retry: a pooled connection may have died between lookup and send.
	// Only errConnGone (frame never written) re-dials; a frame that may have
	// reached the wire must fail the call so the caller's retry policy
	// decides.
	for attempt := 0; ; attempt++ {
		mc, err := t.conn(ctx, addr)
		if err != nil {
			return Response{}, err
		}
		resp, err := mc.call(ctx, req)
		if errors.Is(err, errConnGone) && attempt == 0 {
			continue
		}
		if errors.Is(err, errConnGone) {
			return Response{}, fmt.Errorf("transport: %s: %v: %w", addr, err, ErrUnavailable)
		}
		return resp, err
	}
}

// conn returns the live multiplexed connection to addr, dialing one if
// needed. Concurrent callers share a single dial.
func (t *TCPTransport) conn(ctx context.Context, addr string) (*muxConn, error) {
	for {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return nil, ErrClosed
		}
		slot := t.conns[addr]
		if slot == nil {
			slot = &connSlot{ready: make(chan struct{})}
			t.conns[addr] = slot
			t.mu.Unlock()
			d := net.Dialer{Timeout: t.dialTimeout}
			conn, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				slot.err = t.classify(ctx, "dial", addr, err)
				t.dropSlot(addr, slot)
				close(slot.ready)
				return nil, slot.err
			}
			mc := &muxConn{t: t, addr: addr, conn: conn, w: newFrameWriter(conn), inflight: make(map[uint64]chan []byte)}
			slot.mc = mc
			go mc.readLoop()
			close(slot.ready)
			return mc, nil
		}
		t.mu.Unlock()
		select {
		case <-slot.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if slot.err != nil {
			return nil, slot.err
		}
		slot.mc.mu.Lock()
		dead := slot.mc.closed
		slot.mc.mu.Unlock()
		if !dead {
			return slot.mc, nil
		}
		// The shared connection died; make sure its slot is gone and loop to
		// dial a fresh one.
		t.dropSlot(addr, slot)
	}
}

// dropSlot removes slot from the connection table if it is still current.
func (t *TCPTransport) dropSlot(addr string, slot *connSlot) {
	t.mu.Lock()
	if t.conns != nil && t.conns[addr] == slot {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
}

// call registers one msgid, queues the request frame, and waits for the
// correlated response, the context, or the connection's death.
func (c *muxConn) call(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Response{}, errConnGone
	}
	id := c.nextID
	c.nextID++
	ch := make(chan []byte, 1)
	c.inflight[id] = ch
	c.mu.Unlock()

	if !c.w.enqueueRequest(id, req.Method, req.Body) {
		// Writer already failed: the frame was never written.
		c.forget(id)
		return Response{}, errConnGone
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			// Connection torn down mid-request: this msgid's response is lost.
			c.mu.Lock()
			err := c.failErr
			c.mu.Unlock()
			return Response{}, err
		}
		return decodeStatus(reply, c.addr)
	case <-ctx.Done():
		c.forget(id)
		return Response{}, ctx.Err()
	}
}

// forget abandons one msgid; a late response frame is dropped on arrival.
func (c *muxConn) forget(id uint64) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

func (c *muxConn) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		rest, err := readFrame(br)
		if err != nil {
			c.teardown(c.t.classify(context.Background(), "read", c.addr, err))
			return
		}
		if len(rest) < 8 {
			c.teardown(fmt.Errorf("transport: short frame from %s: %w", c.addr, ErrUnavailable))
			return
		}
		id := binary.BigEndian.Uint64(rest)
		c.mu.Lock()
		ch := c.inflight[id]
		delete(c.inflight, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- rest[8:] // buffered; never blocks
		}
	}
}

// teardown fails every in-flight request with err, closes the socket, and
// unregisters the connection so the next call dials fresh — the multiplexed
// equivalent of the v1 pool's evict-idle-on-ErrUnavailable: no later call can
// burn its retry budget on this dead connection.
func (c *muxConn) teardown(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.failErr = err
	waiters := c.inflight
	c.inflight = make(map[uint64]chan []byte)
	c.mu.Unlock()

	t := c.t
	t.mu.Lock()
	if t.conns != nil {
		if slot := t.conns[c.addr]; slot != nil && slot.mc == c {
			delete(t.conns, c.addr)
		}
	}
	t.mu.Unlock()

	c.conn.Close()
	c.w.close()
	for _, ch := range waiters {
		close(ch) // wakes call(); it reads failErr
	}
}

// classify maps a socket error to the transport's failure taxonomy.
func (t *TCPTransport) classify(ctx context.Context, op, addr string, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return ctxErr
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return context.DeadlineExceeded
	}
	return fmt.Errorf("transport: %s %s: %v: %w", op, addr, err, ErrUnavailable)
}

// Close drains and tears down the transport: new calls fail with ErrClosed
// immediately, in-flight calls run to completion (each bounded by its own
// deadline), then every connection is closed. Servers created by Serve are
// independent and must be closed by their owners.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	t.calls.Wait()

	t.mu.Lock()
	slots := make([]*connSlot, 0, len(t.conns))
	for _, s := range t.conns {
		slots = append(slots, s)
	}
	t.conns = nil
	t.mu.Unlock()
	for _, s := range slots {
		// Dials run inside Call, so calls.Wait() above guarantees every
		// slot has resolved by now.
		<-s.ready
		if s.mc != nil {
			s.mc.teardown(ErrClosed)
		}
	}
	return nil
}

type tcpServer struct {
	tr      *TCPTransport
	ln      net.Listener
	h       Handler
	ctx     context.Context
	cancel  context.CancelFunc
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	once    sync.Once
	wg      sync.WaitGroup
	stopped bool
}

func (s *tcpServer) Addr() string { return s.ln.Addr().String() }

func (s *tcpServer) Close() error {
	s.once.Do(func() {
		s.mu.Lock()
		s.stopped = true
		conns := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		s.ln.Close()
		// Close connections before canceling the handler context: an
		// in-flight handler unblocked by cancelation must not win the race
		// and deliver its response on a connection we are abandoning.
		for _, c := range conns {
			c.Close()
		}
		s.cancel()
		s.wg.Wait()
	})
	return nil
}

// Serve listens on addr ("host:0" picks a free port) and serves each
// connection with a multiplexed read loop: every request frame is handled on
// its own goroutine and responses are written in completion order, so one
// slow handler never delays the answers behind it.
func (t *TCPTransport) Serve(addr string, h Handler) (Server, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &tcpServer{tr: t, ln: ln, h: h, ctx: ctx, cancel: cancel, conns: make(map[net.Conn]struct{})}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv, nil
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	w := newFrameWriter(conn)
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		w.close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		rest, err := readFrame(br)
		if err != nil {
			return // client went away or server closing
		}
		if len(rest) < 8 {
			return
		}
		id := binary.BigEndian.Uint64(rest)
		req, err := decodeRequest(rest[8:])
		if err != nil {
			w.enqueue(id, encodeStatus(Response{}, err))
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			resp, err := s.h(s.ctx, req)
			if err == nil {
				w.enqueueOK(id, resp.Body)
			} else {
				w.enqueue(id, encodeStatus(resp, err))
			}
		}()
	}
}
