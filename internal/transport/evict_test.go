package transport

import (
	"context"
	"sync"
	"testing"
	"time"
)

// Regression for stale-socket reuse against crashed peers: when the shared
// multiplexed connection to an address dies, it must be torn down and
// unregistered, so the next attempt reaches a restarted/replaced node
// through a fresh dial instead of burning the retry budget on the dead
// socket.

// warmConn drives n concurrent calls through tr so the multiplexed
// connection to addr is established and has carried traffic before the test
// kills the server behind it.
func warmConn(t *testing.T, tr Transport, addr string, n int, release chan struct{}) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := tr.Call(ctx, addr, Request{Method: "hold"}); err != nil {
				t.Errorf("warm call: %v", err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		release <- struct{}{}
	}
	wg.Wait()
}

func TestEvictStaleConnsOnRestart(t *testing.T) {
	// TCP: establish the shared connection to a server, kill it, restart a
	// new process at the same address, and require a retrying client with a
	// two-attempt budget to get through. Without teardown-and-unregister,
	// every attempt would be multiplexed onto the dead socket and fail.
	t.Run("tcp", func(t *testing.T) {
		tr := NewTCP()
		defer tr.Close()

		release := make(chan struct{})
		barrier := func(ctx context.Context, req Request) (Response, error) {
			<-release
			return Response{Body: []byte("one")}, nil
		}
		srv, err := tr.Serve("127.0.0.1:0", barrier)
		if err != nil {
			t.Fatal(err)
		}
		addr := srv.Addr()
		warmConn(t, tr, addr, 3, release)
		tr.mu.Lock()
		if got := len(tr.conns); got != 1 {
			tr.mu.Unlock()
			t.Fatalf("transport holds %d connections, want 1 multiplexed conn", got)
		}
		tr.mu.Unlock()

		srv.Close()
		srv2, err := tr.Serve(addr, func(ctx context.Context, req Request) (Response, error) {
			return Response{Body: []byte("two")}, nil
		})
		if err != nil {
			t.Fatalf("restart at %s: %v", addr, err)
		}
		defer srv2.Close()

		// Two attempts must suffice: the first either rides the dead conn
		// (failing with ErrUnavailable and tearing it down) or already finds
		// it gone and dials fresh; the second reaches the restarted server.
		client := NewClient(tr, Policy{MaxAttempts: 2, Timeout: 5 * time.Second})
		resp, err := client.Call(context.Background(), addr, Request{Method: "probe"})
		if err != nil {
			t.Fatalf("call after restart: %v", err)
		}
		if string(resp.Body) != "two" {
			t.Fatalf("answer %q from stale connection, want %q from restarted server", resp.Body, "two")
		}
	})

	// Chan: no socket to poison, but the same scenario — endpoint dies, a
	// replacement registers under the same name — must make the replacement
	// reachable on retry.
	t.Run("chan", func(t *testing.T) {
		tr := NewChan()
		defer tr.Close()
		srv, err := tr.Serve("node-0", func(ctx context.Context, req Request) (Response, error) {
			return Response{Body: []byte("one")}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Close()
		srv2, err := tr.Serve("node-0", func(ctx context.Context, req Request) (Response, error) {
			return Response{Body: []byte("two")}, nil
		})
		if err != nil {
			t.Fatalf("re-register: %v", err)
		}
		defer srv2.Close()
		client := NewClient(tr, Policy{MaxAttempts: 2, Timeout: 5 * time.Second})
		resp, err := client.Call(context.Background(), "node-0", Request{Method: "probe"})
		if err != nil {
			t.Fatalf("call after replacement: %v", err)
		}
		if string(resp.Body) != "two" {
			t.Fatalf("answer %q, want %q from the replacement", resp.Body, "two")
		}
	})
}
