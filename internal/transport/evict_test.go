package transport

import (
	"context"
	"sync"
	"testing"
	"time"
)

// Regression for stale-socket reuse against crashed peers: when a call to
// an address fails at the transport level, every idle pooled connection to
// that address must be evicted, so the next attempt reaches a
// restarted/replaced node through a fresh dial instead of burning the retry
// budget on dead sockets one by one.

// poolConns drives n concurrent calls through tr so that n connections to
// addr end up in the idle pool at once (a serial caller would reuse one).
func poolConns(t *testing.T, tr Transport, addr string, n int, release chan struct{}) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := tr.Call(ctx, addr, Request{Method: "hold"}); err != nil {
				t.Errorf("pooling call: %v", err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		release <- struct{}{}
	}
	wg.Wait()
}

func TestEvictStaleConnsOnRestart(t *testing.T) {
	// TCP: pool several connections to a server, kill it, restart a new
	// process at the same address, and require a retrying client with a
	// budget smaller than the old pool to get through. Without eviction,
	// every attempt would consume one stale socket and the call would fail.
	t.Run("tcp", func(t *testing.T) {
		tr := NewTCP()
		defer tr.Close()

		release := make(chan struct{})
		barrier := func(ctx context.Context, req Request) (Response, error) {
			<-release
			return Response{Body: []byte("one")}, nil
		}
		srv, err := tr.Serve("127.0.0.1:0", barrier)
		if err != nil {
			t.Fatal(err)
		}
		addr := srv.Addr()
		const pooled = 3
		poolConns(t, tr, addr, pooled, release)
		tr.mu.Lock()
		if got := len(tr.idle[addr]); got != pooled {
			tr.mu.Unlock()
			t.Fatalf("idle pool holds %d conns, want %d", got, pooled)
		}
		tr.mu.Unlock()

		srv.Close()
		srv2, err := tr.Serve(addr, func(ctx context.Context, req Request) (Response, error) {
			return Response{Body: []byte("two")}, nil
		})
		if err != nil {
			t.Fatalf("restart at %s: %v", addr, err)
		}
		defer srv2.Close()

		// Two attempts must suffice: the first burns one stale socket and
		// evicts the rest; the second dials the restarted server.
		client := NewClient(tr, Policy{MaxAttempts: 2, Timeout: 5 * time.Second})
		resp, err := client.Call(context.Background(), addr, Request{Method: "probe"})
		if err != nil {
			t.Fatalf("call after restart: %v", err)
		}
		if string(resp.Body) != "two" {
			t.Fatalf("answer %q from stale connection, want %q from restarted server", resp.Body, "two")
		}
		tr.mu.Lock()
		left := len(tr.idle[addr])
		tr.mu.Unlock()
		if left > 1 {
			t.Fatalf("%d idle conns survived eviction, want <= 1 (the fresh one)", left)
		}
	})

	// Chan: no pool to poison, but the same scenario — endpoint dies, a
	// replacement registers under the same name — must make the replacement
	// reachable on retry.
	t.Run("chan", func(t *testing.T) {
		tr := NewChan()
		defer tr.Close()
		srv, err := tr.Serve("node-0", func(ctx context.Context, req Request) (Response, error) {
			return Response{Body: []byte("one")}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Close()
		srv2, err := tr.Serve("node-0", func(ctx context.Context, req Request) (Response, error) {
			return Response{Body: []byte("two")}, nil
		})
		if err != nil {
			t.Fatalf("re-register: %v", err)
		}
		defer srv2.Close()
		client := NewClient(tr, Policy{MaxAttempts: 2, Timeout: 5 * time.Second})
		resp, err := client.Call(context.Background(), "node-0", Request{Method: "probe"})
		if err != nil {
			t.Fatalf("call after replacement: %v", err)
		}
		if string(resp.Body) != "two" {
			t.Fatalf("answer %q, want %q from the replacement", resp.Body, "two")
		}
	})
}
