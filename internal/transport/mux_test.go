package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Behavioral tests for the multiplexed substrate. Where a scenario is
// meaningful on both implementations (no head-of-line blocking, drain on
// Close) it runs against both via harnesses(); the mid-request connection
// drop is TCP-only because the chan transport has no shared socket to kill.

// TestNoHeadOfLineBlocking multiplexes a slow request and a fast request
// over the same transport (same connection on TCP) and requires the fast
// response to arrive while the slow handler is still blocked.
func TestNoHeadOfLineBlocking(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			tr := h.mk(t)
			defer tr.Close()
			release := make(chan struct{})
			srv, err := tr.Serve(serveAddr(h), func(ctx context.Context, req Request) (Response, error) {
				if req.Method == "slow" {
					select {
					case <-release:
					case <-ctx.Done():
						return Response{}, ctx.Err()
					}
				}
				return Response{Body: []byte(req.Method)}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			slowDone := make(chan error, 1)
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_, err := tr.Call(ctx, srv.Addr(), Request{Method: "slow"})
				slowDone <- err
			}()

			// The fast call must complete while "slow" is parked in its
			// handler. Generous bound: anything near it means the fast
			// response waited behind the slow one.
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			start := time.Now()
			resp, err := tr.Call(ctx, srv.Addr(), Request{Method: "fast"})
			if err != nil {
				t.Fatalf("fast call blocked behind slow one: %v", err)
			}
			if string(resp.Body) != "fast" {
				t.Fatalf("fast call got %q", resp.Body)
			}
			if d := time.Since(start); d > 2*time.Second {
				t.Fatalf("fast call took %v — head-of-line blocked", d)
			}
			close(release)
			if err := <-slowDone; err != nil {
				t.Fatalf("slow call: %v", err)
			}
		})
	}
}

// TestMidRequestDropFailsOnlyAffected kills the server while several
// requests are multiplexed in flight on one connection. Every in-flight
// request must fail retryably (its response is lost with the socket), and —
// the eviction property — a restarted server at the same address must be
// reachable on the very next dial, with fresh requests unaffected by the
// dead connection's fate.
func TestMidRequestDropFailsOnlyAffected(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()

	entered := make(chan struct{}, 16)
	block := make(chan struct{})
	srv, err := tr.Serve("127.0.0.1:0", func(ctx context.Context, req Request) (Response, error) {
		entered <- struct{}{}
		select {
		case <-block:
		case <-ctx.Done():
		}
		return Response{Body: []byte("old")}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	const inflight = 4
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, err := tr.Call(ctx, addr, Request{Method: "stuck"})
			errs <- err
		}()
	}
	for i := 0; i < inflight; i++ {
		<-entered // all four are inside handlers, responses pending
	}
	srv.Close() // drops the connection with all four msgids unanswered

	for i := 0; i < inflight; i++ {
		err := <-errs
		if err == nil {
			t.Fatalf("in-flight request %d survived the connection drop", i)
		}
		if !Retryable(err) {
			t.Fatalf("in-flight request %d failed non-retryably: %v", i, err)
		}
	}

	// The dead connection must be unregistered: a fresh call dials the
	// restarted server directly, no retry budget spent on the old socket.
	srv2, err := tr.Serve(addr, func(ctx context.Context, req Request) (Response, error) {
		return Response{Body: []byte("new")}, nil
	})
	if err != nil {
		t.Fatalf("restart at %s: %v", addr, err)
	}
	defer srv2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := tr.Call(ctx, addr, Request{Method: "probe"})
	if err != nil {
		t.Fatalf("first call after restart: %v (dead conn not evicted)", err)
	}
	if string(resp.Body) != "new" {
		t.Fatalf("got %q, want %q", resp.Body, "new")
	}
}

// TestDeadlineAbandonsOnlyItsRequest expires one request's deadline while a
// second request shares the connection; the second must complete normally
// and the connection must remain usable (the late response for the
// abandoned msgid is dropped, not misdelivered).
func TestDeadlineAbandonsOnlyItsRequest(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			tr := h.mk(t)
			defer tr.Close()
			var hits atomic.Int64
			release := make(chan struct{})
			srv, err := tr.Serve(serveAddr(h), func(ctx context.Context, req Request) (Response, error) {
				if req.Method == "stall" {
					<-release
					return Response{Body: []byte("late")}, nil
				}
				return Response{Body: []byte(fmt.Sprintf("n%d", hits.Add(1)))}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			_, err = tr.Call(ctx, srv.Addr(), Request{Method: "stall"})
			cancel()
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("stalled call: got %v, want DeadlineExceeded", err)
			}
			// Let the abandoned handler finish and its response frame land;
			// it must be dropped, not delivered to the next msgid.
			close(release)
			for i := 0; i < 3; i++ {
				resp, err := tr.Call(context.Background(), srv.Addr(), Request{Method: "count"})
				if err != nil {
					t.Fatalf("call %d after abandoned request: %v", i, err)
				}
				if want := fmt.Sprintf("n%d", i+1); string(resp.Body) != want {
					t.Fatalf("call %d: got %q, want %q — stale frame misdelivered", i, resp.Body, want)
				}
			}
		})
	}
}

// TestCloseDrainsInflight starts requests, calls Transport.Close
// concurrently, and requires (a) the in-flight requests to complete with
// their real answers, (b) Close to return only after they have, and (c) new
// calls after Close to fail with ErrClosed.
func TestCloseDrainsInflight(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			tr := h.mk(t)
			release := make(chan struct{})
			srv, err := tr.Serve(serveAddr(h), func(ctx context.Context, req Request) (Response, error) {
				<-release
				return Response{Body: []byte("drained")}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			const n = 3
			var wg sync.WaitGroup
			results := make(chan error, n)
			started := make(chan struct{}, n)
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					started <- struct{}{}
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					resp, err := tr.Call(ctx, srv.Addr(), Request{Method: "hold"})
					if err == nil && string(resp.Body) != "drained" {
						err = fmt.Errorf("bad body %q", resp.Body)
					}
					results <- err
				}()
			}
			for i := 0; i < n; i++ {
				<-started
			}
			time.Sleep(20 * time.Millisecond) // let the calls reach the wire

			closed := make(chan struct{})
			go func() {
				tr.Close()
				close(closed)
			}()
			select {
			case <-closed:
				t.Fatal("Close returned while requests were still in flight")
			case <-time.After(50 * time.Millisecond):
			}
			close(release)
			<-closed
			wg.Wait()
			for i := 0; i < n; i++ {
				if err := <-results; err != nil {
					t.Fatalf("drained request %d: %v", i, err)
				}
			}
			if _, err := tr.Call(context.Background(), srv.Addr(), Request{Method: "post"}); !errors.Is(err, ErrClosed) {
				t.Fatalf("call after Close: got %v, want ErrClosed", err)
			}
		})
	}
}

// TestSharedConnUnderConcurrency hammers one address from many goroutines
// and checks every response is correlated to its own request — the msgid
// plumbing under real interleaving. On TCP all traffic rides one connection.
func TestSharedConnUnderConcurrency(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			tr := h.mk(t)
			defer tr.Close()
			srv, err := tr.Serve(serveAddr(h), echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			const workers, per = 8, 50
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						body := fmt.Sprintf("w%d-%d", w, i)
						ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
						resp, err := tr.Call(ctx, srv.Addr(), Request{Method: "echo", Body: []byte(body)})
						cancel()
						if err != nil {
							errc <- fmt.Errorf("w%d call %d: %v", w, i, err)
							return
						}
						if got, want := string(resp.Body), "echo:"+body; got != want {
							errc <- fmt.Errorf("w%d call %d: got %q, want %q (cross-wired response)", w, i, got, want)
							return
						}
					}
					errc <- nil
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if err := <-errc; err != nil {
					t.Fatal(err)
				}
			}
			if h.name == "tcp" {
				ttr := tr.(*TCPTransport)
				ttr.mu.Lock()
				n := len(ttr.conns)
				ttr.mu.Unlock()
				if n != 1 {
					t.Fatalf("%d connections for one address, want 1 (multiplexing)", n)
				}
			}
		})
	}
}
