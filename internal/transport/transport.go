// Package transport is the message-passing layer of the live serving
// runtime: a minimal request/response RPC fabric with per-request deadlines,
// bounded retries (exponential backoff + jitter), and connection reuse.
//
// Two implementations are provided:
//
//   - the channel transport (NewChan): in-process, deterministic, safe under
//     -race — the substrate for unit/integration tests and single-process
//     clusters;
//   - the TCP transport (NewTCP): length-prefixed binary frames over real
//     sockets with a per-address connection pool — the substrate for
//     multi-process deployments (cmd/hyperm-node).
//
// The transport moves opaque method/body pairs; message schemas live with
// their owners (internal/node encodes its RPCs with the Encoder/Decoder
// helpers from this package). Failure classification is part of the
// contract: transport-level faults (endpoint missing, connection broken,
// server stopped) are wrapped in ErrUnavailable and are retryable; handler
// errors come back as *RemoteError and are not; deadline expiry surfaces the
// context error and is not.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Request is one RPC: a method name and an opaque, already-encoded body.
type Request struct {
	Method string
	Body   []byte
}

// Response is the reply to a Request.
type Response struct {
	Body []byte
}

// Handler serves one request. Returning a non-nil error delivers a
// *RemoteError to the caller (the error's message crosses the wire; nothing
// else does).
type Handler func(ctx context.Context, req Request) (Response, error)

// Server is one served endpoint. Close stops accepting new requests and
// tears down the endpoint; in-flight handlers are abandoned (their callers
// see ErrUnavailable).
type Server interface {
	// Addr is the address clients pass to Call to reach this endpoint.
	// For the TCP transport this is the bound host:port (useful when
	// listening on ":0"); for the channel transport it echoes the name
	// registered at Serve time.
	Addr() string
	Close() error
}

// Transport hands out endpoints and performs calls against them.
// Implementations must be safe for concurrent use.
type Transport interface {
	// Serve registers a handler at addr and starts serving. The returned
	// Server's Addr reports the effective address.
	Serve(addr string, h Handler) (Server, error)
	// Call performs one request against addr, honoring ctx's deadline and
	// cancelation. It does not retry — wrap the transport in a Client for
	// retry semantics.
	Call(ctx context.Context, addr string, req Request) (Response, error)
	// Close tears down the transport: every server and pooled connection.
	Close() error
}

// ErrUnavailable marks transport-level faults that a retry may cure: the
// endpoint is not (yet) registered, the connection broke, or the server
// stopped mid-request. Test with errors.Is.
var ErrUnavailable = errors.New("transport: endpoint unavailable")

// ErrClosed is returned by operations on a transport that has been closed.
var ErrClosed = errors.New("transport: closed")

// RemoteError is a handler-returned error delivered across the transport.
// It is not retryable: the request was received and deliberately refused.
// Detail, when non-empty, is a short machine-readable classification token
// the handler attached with WithDetail (e.g. route.DetailLoopLimit) — the
// only structured part of a remote error that crosses the wire, letting
// clients count failure classes without parsing messages.
type RemoteError struct {
	Msg    string
	Detail string
}

func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// detailError carries a detail token alongside a handler error until the
// transport boundary extracts it with ErrorDetail.
type detailError struct {
	err    error
	detail string
}

func (e *detailError) Error() string { return e.err.Error() }
func (e *detailError) Unwrap() error { return e.err }

// WithDetail annotates a handler error with a machine-readable detail token.
// Transports deliver the token in the resulting *RemoteError's Detail field;
// errors.Is/As still see the original error on the server side.
func WithDetail(err error, detail string) error {
	if err == nil {
		return nil
	}
	return &detailError{err: err, detail: detail}
}

// ErrorDetail returns the detail token attached to err: the WithDetail
// annotation on the server side, or the Detail field of a received
// *RemoteError on the client side. Empty when unclassified.
func ErrorDetail(err error) string {
	var de *detailError
	if errors.As(err, &de) {
		return de.detail
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Detail
	}
	return ""
}

// Retryable reports whether err is worth retrying: true exactly for
// transport-level faults (ErrUnavailable). Remote application errors,
// deadline expiry, and cancelation are final.
func Retryable(err error) bool { return errors.Is(err, ErrUnavailable) }

// Policy configures a Client: the per-call deadline and the retry budget.
// The zero value gets sensible defaults from withDefaults.
type Policy struct {
	// MaxAttempts bounds the total tries per Call (first attempt included).
	// Default 3.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// attempt. Default 2ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 100ms.
	MaxDelay time.Duration
	// Jitter spreads each backoff uniformly in [1-Jitter, 1+Jitter] to
	// de-synchronize competing clients. Default 0.2.
	Jitter float64
	// Timeout is the per-call deadline applied when the caller's context has
	// none. Default 2s. Zero after explicit configuration means "apply the
	// default"; use a context deadline for unbounded calls.
	Timeout time.Duration
	// Seed drives the jitter RNG so retry schedules are reproducible in
	// tests. Default 1.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Timeout == 0 {
		p.Timeout = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Client wraps a Transport with deadlines and bounded retries. Safe for
// concurrent use.
type Client struct {
	tr Transport
	p  Policy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a retrying client over tr.
func NewClient(tr Transport, p Policy) *Client {
	p = p.withDefaults()
	return &Client{tr: tr, p: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// Call performs req against addr, retrying retryable failures with
// exponential backoff + jitter until the policy's attempt budget or the
// deadline runs out. The last transport error is wrapped in the final error.
func (c *Client) Call(ctx context.Context, addr string, req Request) (Response, error) {
	if _, ok := ctx.Deadline(); !ok && c.p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.p.Timeout)
		defer cancel()
	}
	var last error
	for attempt := 1; ; attempt++ {
		resp, err := c.tr.Call(ctx, addr, req)
		if err == nil || !Retryable(err) {
			return resp, err
		}
		last = err
		if attempt >= c.p.MaxAttempts {
			break
		}
		select {
		case <-time.After(c.backoff(attempt)):
		case <-ctx.Done():
			return Response{}, fmt.Errorf("transport: retry wait: %w", ctx.Err())
		}
	}
	return Response{}, fmt.Errorf("transport: %d attempts to %s failed: %w", c.p.MaxAttempts, addr, last)
}

// backoff returns the jittered exponential delay before attempt+1
// (attempt counts from 1).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.p.BaseDelay << (attempt - 1)
	if d > c.p.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = c.p.MaxDelay
	}
	c.mu.Lock()
	u := c.rng.Float64()
	c.mu.Unlock()
	jittered := float64(d) * (1 + c.p.Jitter*(2*u-1))
	if jittered < 0 {
		jittered = 0
	}
	return time.Duration(jittered)
}
