package transport

import (
	"context"
	"fmt"
	"sync"
)

// ChanTransport is the in-process transport: endpoints are named entries in
// a registry, and a call runs the handler on a fresh goroutine while the
// caller selects on completion, deadline, and server shutdown. There is no
// serialization loss and no scheduling nondeterminism beyond the handlers'
// own — with serial callers it is fully deterministic — and everything is
// race-detector clean, which is why the cluster oracle tests run on it.
type ChanTransport struct {
	mu      sync.RWMutex
	servers map[string]*chanServer
	closed  bool
	nextID  int
	calls   sync.WaitGroup // in-flight Calls, drained by Close
}

// NewChan builds an empty in-process transport.
func NewChan() *ChanTransport {
	return &ChanTransport{servers: make(map[string]*chanServer)}
}

type chanServer struct {
	t       *ChanTransport
	addr    string
	h       Handler
	stopped chan struct{}
	once    sync.Once
}

func (s *chanServer) Addr() string { return s.addr }

func (s *chanServer) Close() error {
	s.once.Do(func() {
		close(s.stopped)
		s.t.mu.Lock()
		if s.t.servers[s.addr] == s {
			delete(s.t.servers, s.addr)
		}
		s.t.mu.Unlock()
	})
	return nil
}

// Serve registers h under addr. An empty addr auto-assigns a unique name
// (mirroring TCP's ":0"). Registering a taken address fails.
func (t *ChanTransport) Serve(addr string, h Handler) (Server, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if addr == "" {
		addr = fmt.Sprintf("chan-%d", t.nextID)
		t.nextID++
	}
	if _, taken := t.servers[addr]; taken {
		return nil, fmt.Errorf("transport: address %q already served", addr)
	}
	srv := &chanServer{t: t, addr: addr, h: h, stopped: make(chan struct{})}
	t.servers[addr] = srv
	return srv, nil
}

// Call runs the handler registered at addr. Unknown addresses and stopped
// servers are ErrUnavailable (retryable — the endpoint may come up);
// deadline expiry mid-handler surfaces ctx.Err().
func (t *ChanTransport) Call(ctx context.Context, addr string, req Request) (Response, error) {
	t.mu.RLock()
	srv := t.servers[addr]
	closed := t.closed
	if !closed {
		t.calls.Add(1)
		defer t.calls.Done()
	}
	t.mu.RUnlock()
	if closed {
		return Response{}, ErrClosed
	}
	if srv == nil {
		return Response{}, fmt.Errorf("transport: no server at %q: %w", addr, ErrUnavailable)
	}
	select {
	case <-srv.stopped:
		return Response{}, fmt.Errorf("transport: server %q stopped: %w", addr, ErrUnavailable)
	default:
	}

	type outcome struct {
		resp Response
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := srv.h(ctx, req)
		done <- outcome{resp, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			return Response{}, &RemoteError{Msg: o.err.Error(), Detail: ErrorDetail(o.err)}
		}
		return o.resp, nil
	case <-ctx.Done():
		return Response{}, ctx.Err()
	case <-srv.stopped:
		// Server torn down mid-request: the reply is lost even if the
		// handler finishes. Retryable — a restarted endpoint can answer.
		return Response{}, fmt.Errorf("transport: server %q stopped mid-request: %w", addr, ErrUnavailable)
	}
}

// Close drains and tears down the transport: new calls fail with ErrClosed,
// in-flight calls run to completion (each bounded by its own deadline), then
// every registered server is closed.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	t.calls.Wait()

	t.mu.Lock()
	servers := make([]*chanServer, 0, len(t.servers))
	for _, s := range t.servers {
		servers = append(servers, s)
	}
	t.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	return nil
}
