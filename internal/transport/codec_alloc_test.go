package transport

import (
	"fmt"
	"testing"
)

// Allocation fences for the zero-copy decode path. The arena variants exist
// so a message carrying hundreds of short vectors costs a handful of block
// allocations instead of one per vector; these tests pin that ratio so a
// refactor cannot silently reintroduce per-vector garbage. AllocsPerRun
// counts are exact for a fixed code path, so the bounds are tight.

// manyVectorMessage encodes vectors short vectors of dim floats each — the
// shape of a can_search view's record list.
func manyVectorMessage(vectors, dim int) []byte {
	var e Encoder
	for i := 0; i < vectors; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = float64(i*dim + d)
		}
		e.Floats(v)
	}
	return e.Bytes()
}

func TestFloatsSharedAllocFence(t *testing.T) {
	const vectors, dim = 200, 8
	msg := manyVectorMessage(vectors, dim)

	// Per-vector decode: one allocation each, 200 total.
	perVector := testing.AllocsPerRun(50, func() {
		d := NewDecoder(msg)
		for i := 0; i < vectors; i++ {
			if d.Floats() == nil {
				t.Fatal("short decode")
			}
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
	// Arena decode: the decoder itself plus ceil(200*8/arenaBlock) blocks.
	shared := testing.AllocsPerRun(50, func() {
		d := NewDecoder(msg)
		for i := 0; i < vectors; i++ {
			if d.FloatsShared() == nil {
				t.Fatal("short decode")
			}
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("decode of %d vectors: %.0f allocs per-vector, %.0f shared", vectors, perVector, shared)
	if shared > 4 {
		t.Errorf("FloatsShared decode of %d vectors took %.0f allocs, want <= 4 (decoder + arena blocks)", vectors, shared)
	}
	if shared*10 > perVector {
		t.Errorf("arena decode (%.0f allocs) is not >=10x below per-vector decode (%.0f)", shared, perVector)
	}
}

func TestIntsSharedAllocFence(t *testing.T) {
	const lists, n = 100, 10
	var e Encoder
	for i := 0; i < lists; i++ {
		v := make([]int, n)
		for j := range v {
			v[j] = i*n + j
		}
		e.Ints(v)
	}
	msg := e.Bytes()

	shared := testing.AllocsPerRun(50, func() {
		d := NewDecoder(msg)
		for i := 0; i < lists; i++ {
			if d.IntsShared() == nil {
				t.Fatal("short decode")
			}
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
	})
	if shared > 4 {
		t.Errorf("IntsShared decode of %d lists took %.0f allocs, want <= 4", lists, shared)
	}
}

// TestArenaBlockBoundedBySmallMessage pins the retention contract: decoding a
// small message must not allocate an arenaBlock-sized block (a retained slice
// would pin ~32KiB for a few floats), and an oversized sequence gets its own
// exact allocation rather than poisoning the arena.
func TestArenaBlockBoundedBySmallMessage(t *testing.T) {
	var e Encoder
	e.Floats([]float64{1, 2, 3})
	msg := e.Bytes()
	d := NewDecoder(msg)
	v := d.FloatsShared()
	if len(v) != 3 {
		t.Fatalf("decoded %d floats, want 3", len(v))
	}
	if c := cap(d.farena); c > len(msg)/8+1 {
		t.Errorf("small message grew a %d-cap arena block, want <= message-bounded %d", c, len(msg)/8+1)
	}

	big := make([]float64, arenaBlock+1)
	var e2 Encoder
	e2.Floats(big)
	d2 := NewDecoder(e2.Bytes())
	out := d2.FloatsShared()
	if len(out) != arenaBlock+1 {
		t.Fatalf("decoded %d floats, want %d", len(out), arenaBlock+1)
	}
	if d2.farena != nil {
		t.Errorf("oversized sequence leaked into the arena (cap %d)", cap(d2.farena))
	}
}

// TestCountRejectsImplausibleLength pins the fence the fuzzer motivated: a
// count whose minimum encoding exceeds the remaining payload must trip the
// sticky error before anything is allocated.
func TestCountRejectsImplausibleLength(t *testing.T) {
	var e Encoder
	e.U32(1 << 28) // claims ~268M elements in a 4-byte message
	d := NewDecoder(e.Bytes())
	if n := d.Count(16); n != 0 {
		t.Fatalf("Count returned %d for an implausible prefix", n)
	}
	if d.Err() == nil {
		t.Fatal("Count accepted a length exceeding the message")
	}
	for _, minElem := range []int{1, 8, 64} {
		var ok Encoder
		ok.U32(3)
		ok.b = append(ok.b, make([]byte, 3*minElem)...)
		dd := NewDecoder(ok.Bytes())
		if n := dd.Count(minElem); n != 3 || dd.Err() != nil {
			t.Fatalf("Count(minElem=%d) = %d, err %v; want 3, nil", minElem, n, dd.Err())
		}
	}
}

func BenchmarkFloatsSharedDecode(b *testing.B) {
	for _, vectors := range []int{32, 256} {
		msg := manyVectorMessage(vectors, 8)
		b.Run(fmt.Sprintf("vectors=%d", vectors), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(msg)))
			for i := 0; i < b.N; i++ {
				d := NewDecoder(msg)
				for j := 0; j < vectors; j++ {
					d.FloatsShared()
				}
			}
		})
	}
}
