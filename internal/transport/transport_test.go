package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// harness abstracts over the two implementations so every behavioral test
// runs against both.
type harness struct {
	name string
	mk   func(t *testing.T) Transport
	// freeAddr reserves an address that is currently not served but can be
	// served later (late-start scenarios).
	freeAddr func(t *testing.T, tr Transport) string
}

func harnesses() []harness {
	return []harness{
		{
			name:     "chan",
			mk:       func(t *testing.T) Transport { return NewChan() },
			freeAddr: func(t *testing.T, tr Transport) string { return "late-endpoint" },
		},
		{
			name: "tcp",
			mk:   func(t *testing.T) Transport { return NewTCP() },
			freeAddr: func(t *testing.T, tr Transport) string {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				addr := ln.Addr().String()
				ln.Close()
				return addr
			},
		},
	}
}

func echoHandler(ctx context.Context, req Request) (Response, error) {
	return Response{Body: append([]byte("echo:"), req.Body...)}, nil
}

func TestRoundTrip(t *testing.T) {
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			tr := h.mk(t)
			defer tr.Close()
			srv, err := tr.Serve(serveAddr(h), echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			// Repeated calls exercise connection reuse on the TCP transport.
			for i := 0; i < 5; i++ {
				body := fmt.Sprintf("ping-%d", i)
				resp, err := tr.Call(context.Background(), srv.Addr(), Request{Method: "echo", Body: []byte(body)})
				if err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if got, want := string(resp.Body), "echo:"+body; got != want {
					t.Fatalf("call %d: got %q, want %q", i, got, want)
				}
			}
		})
	}
}

func serveAddr(h harness) string {
	if h.name == "tcp" {
		return "127.0.0.1:0"
	}
	return "" // chan transport auto-assigns
}

// TestFailureModes is the table-driven matrix of the satellite requirement:
// deadline exceeded, retry-then-succeed, retry budget exhausted, and server
// stopped mid-request — on both transports.
func TestFailureModes(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			t.Run("deadline exceeded", func(t *testing.T) {
				tr := h.mk(t)
				defer tr.Close()
				srv, err := tr.Serve(serveAddr(h), func(ctx context.Context, req Request) (Response, error) {
					select {
					case <-time.After(2 * time.Second):
					case <-ctx.Done():
					}
					return Response{}, nil
				})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				start := time.Now()
				_, err = tr.Call(ctx, srv.Addr(), Request{Method: "slow"})
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("got %v, want DeadlineExceeded", err)
				}
				if el := time.Since(start); el > time.Second {
					t.Fatalf("deadline ignored: call took %v", el)
				}
				if Retryable(err) {
					t.Fatal("deadline expiry must not be retryable")
				}
			})

			t.Run("retry then succeed", func(t *testing.T) {
				tr := h.mk(t)
				defer tr.Close()
				addr := h.freeAddr(t, tr)
				client := NewClient(tr, Policy{MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Timeout: 5 * time.Second})
				// Bring the endpoint up only after the client has started
				// failing: the first attempts hit nothing, the retry loop
				// must pick the server up once it appears.
				go func() {
					time.Sleep(30 * time.Millisecond)
					if _, err := tr.Serve(addr, echoHandler); err != nil {
						t.Error(err)
					}
				}()
				resp, err := client.Call(context.Background(), addr, Request{Method: "echo", Body: []byte("x")})
				if err != nil {
					t.Fatalf("retries never succeeded: %v", err)
				}
				if string(resp.Body) != "echo:x" {
					t.Fatalf("bad response %q", resp.Body)
				}
			})

			t.Run("retry budget exhausted", func(t *testing.T) {
				tr := h.mk(t)
				defer tr.Close()
				addr := h.freeAddr(t, tr) // never served
				client := NewClient(tr, Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Timeout: 5 * time.Second})
				start := time.Now()
				_, err := client.Call(context.Background(), addr, Request{Method: "echo"})
				if err == nil {
					t.Fatal("call to dead endpoint succeeded")
				}
				if !errors.Is(err, ErrUnavailable) {
					t.Fatalf("got %v, want ErrUnavailable after budget", err)
				}
				if !strings.Contains(err.Error(), "3 attempts") {
					t.Fatalf("error %q does not report the attempt budget", err)
				}
				if el := time.Since(start); el > 2*time.Second {
					t.Fatalf("budget exhaustion took %v", el)
				}
			})

			t.Run("server stopped mid-request", func(t *testing.T) {
				tr := h.mk(t)
				defer tr.Close()
				started := make(chan struct{})
				unblock := make(chan struct{})
				defer close(unblock)
				srv, err := tr.Serve(serveAddr(h), func(ctx context.Context, req Request) (Response, error) {
					close(started)
					select {
					case <-unblock:
					case <-ctx.Done():
					}
					return Response{Body: []byte("too late")}, nil
				})
				if err != nil {
					t.Fatal(err)
				}
				errs := make(chan error, 1)
				go func() {
					_, err := tr.Call(context.Background(), srv.Addr(), Request{Method: "hang"})
					errs <- err
				}()
				<-started
				srv.Close()
				select {
				case err := <-errs:
					if err == nil {
						t.Fatal("call survived server shutdown")
					}
					if !Retryable(err) {
						t.Fatalf("mid-request shutdown not retryable: %v", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("call hung across server shutdown")
				}
				// The endpoint is gone: subsequent calls fail fast and stay
				// retryable.
				if _, err := tr.Call(context.Background(), srv.Addr(), Request{Method: "hang"}); !Retryable(err) {
					t.Fatalf("post-shutdown call: %v", err)
				}
			})

			t.Run("remote errors are not retried", func(t *testing.T) {
				tr := h.mk(t)
				defer tr.Close()
				var calls atomic.Int64
				srv, err := tr.Serve(serveAddr(h), func(ctx context.Context, req Request) (Response, error) {
					calls.Add(1)
					return Response{}, fmt.Errorf("no such method")
				})
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				client := NewClient(tr, Policy{MaxAttempts: 5, BaseDelay: time.Millisecond})
				_, err = client.Call(context.Background(), srv.Addr(), Request{Method: "bogus"})
				var remote *RemoteError
				if !errors.As(err, &remote) {
					t.Fatalf("got %v, want RemoteError", err)
				}
				if !strings.Contains(remote.Msg, "no such method") {
					t.Fatalf("remote message lost: %q", remote.Msg)
				}
				if n := calls.Load(); n != 1 {
					t.Fatalf("handler ran %d times, want 1 (no retry on remote errors)", n)
				}
			})
		})
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.U64(1<<63 + 9)
	e.Int(-42)
	e.F64(3.14159)
	e.Floats([]float64{1.5, -2.5, 0})
	e.Ints([]int{10, -20})
	e.Floats(nil)
	e.String("hello")

	d := NewDecoder(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := d.U64(); v != 1<<63+9 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.Int(); v != -42 {
		t.Fatalf("Int = %d", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Fatalf("F64 = %v", v)
	}
	f := d.Floats()
	if len(f) != 3 || f[0] != 1.5 || f[1] != -2.5 || f[2] != 0 {
		t.Fatalf("Floats = %v", f)
	}
	i := d.Ints()
	if len(i) != 2 || i[0] != 10 || i[1] != -20 {
		t.Fatalf("Ints = %v", i)
	}
	if v := d.Floats(); v != nil {
		t.Fatalf("empty Floats = %v", v)
	}
	if v := d.String(); v != "hello" {
		t.Fatalf("String = %q", v)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}

	// Truncation is caught, errors are sticky, and Finish rejects leftovers.
	d = NewDecoder(e.Bytes()[:3])
	d.U8()
	d.Int()
	if d.Err() == nil {
		t.Fatal("truncated decode not detected")
	}
	if d.Int() != 0 || d.Floats() != nil {
		t.Fatal("sticky error did not zero later reads")
	}
	d = NewDecoder(e.Bytes())
	d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("trailing bytes not detected")
	}
	// A corrupt length prefix must not force a huge allocation.
	var bad Encoder
	bad.U32(1 << 30)
	d = NewDecoder(bad.Bytes())
	if d.Floats() != nil || d.Err() == nil {
		t.Fatal("oversized sequence accepted")
	}
}

// Backoff delays must grow exponentially, stay within the jitter envelope,
// cap at MaxDelay, and be reproducible from the seed.
func TestClientBackoff(t *testing.T) {
	mk := func() *Client {
		return NewClient(NewChan(), Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: 0.2, Seed: 7})
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 8; attempt++ {
		da := a.backoff(attempt)
		if db := b.backoff(attempt); da != db {
			t.Fatalf("attempt %d: same seed, different delays %v vs %v", attempt, da, db)
		}
		nominal := 10 * time.Millisecond << (attempt - 1)
		if nominal > 80*time.Millisecond {
			nominal = 80 * time.Millisecond
		}
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if da < lo || da > hi {
			t.Fatalf("attempt %d: delay %v outside jitter envelope [%v, %v]", attempt, da, lo, hi)
		}
	}
}

// TestRemoteErrorDetail verifies the machine-readable detail token round-trip
// on both transports: a WithDetail-annotated handler error arrives as a
// *RemoteError carrying the token in Detail, readable via ErrorDetail;
// unannotated errors arrive with an empty Detail.
func TestRemoteErrorDetail(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			tr := h.mk(t)
			defer tr.Close()
			srv, err := tr.Serve(serveAddr(h), func(ctx context.Context, req Request) (Response, error) {
				switch req.Method {
				case "classified":
					return Response{}, WithDetail(errors.New("hop budget gone"), "route/loop-limit")
				default:
					return Response{}, errors.New("plain failure")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			_, err = tr.Call(context.Background(), srv.Addr(), Request{Method: "classified"})
			var re *RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("got %v, want *RemoteError", err)
			}
			if re.Detail != "route/loop-limit" {
				t.Fatalf("Detail = %q, want %q", re.Detail, "route/loop-limit")
			}
			if got := ErrorDetail(err); got != "route/loop-limit" {
				t.Fatalf("ErrorDetail = %q, want %q", got, "route/loop-limit")
			}
			if !strings.Contains(re.Msg, "hop budget gone") {
				t.Fatalf("Msg = %q, want the handler message preserved", re.Msg)
			}

			_, err = tr.Call(context.Background(), srv.Addr(), Request{Method: "plain"})
			if !errors.As(err, &re) {
				t.Fatalf("got %v, want *RemoteError", err)
			}
			if re.Detail != "" || ErrorDetail(err) != "" {
				t.Fatalf("unannotated error carried detail %q", re.Detail)
			}
		})
	}
}

// TestWithDetailServerSide verifies the server-side annotation behaves as a
// transparent wrapper: errors.Is still matches, nil stays nil.
func TestWithDetailServerSide(t *testing.T) {
	if WithDetail(nil, "x") != nil {
		t.Fatal("WithDetail(nil) != nil")
	}
	base := errors.New("sentinel")
	wrapped := WithDetail(base, "tok")
	if !errors.Is(wrapped, base) {
		t.Fatal("WithDetail broke errors.Is")
	}
	if ErrorDetail(wrapped) != "tok" {
		t.Fatalf("ErrorDetail = %q, want tok", ErrorDetail(wrapped))
	}
	if ErrorDetail(base) != "" {
		t.Fatal("unannotated error has detail")
	}
}
